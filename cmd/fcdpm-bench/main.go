// Command fcdpm-bench regenerates every table and figure of the paper in
// one shot, writing CSV series and a summary report under -out (default
// ./out). It is the file-producing twin of the root bench_test.go harness.
//
// Artifacts:
//
//	fig2_stack_ivp.csv        Fig 2  — stack I-V-P characteristic
//	fig3_efficiency.csv       Fig 3  — stack/system efficiency curves
//	fig4_motivational.txt     §3.2   — motivational example
//	fig7_load.csv             Fig 7a — camcorder load current profile
//	fig7_asap.csv             Fig 7b — ASAP-DPM FC output profile
//	fig7_fcdpm.csv            Fig 7c — FC-DPM FC output profile
//	table2_exp1.txt           Table 2 — Experiment 1
//	table3_exp2.txt           Table 3 — Experiment 2
//	ablation_*.csv/.txt       DESIGN.md §5 ablations
//	summary.txt               everything, concatenated
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"fcdpm/internal/exp"
	"fcdpm/internal/report"
	"fcdpm/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fcdpm-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	dir := "out"
	seed := uint64(1)
	if len(args) > 0 {
		dir = args[0]
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	summary, err := os.Create(filepath.Join(dir, "summary.txt"))
	if err != nil {
		return err
	}
	defer summary.Close()
	tee := io.MultiWriter(os.Stdout, summary)

	steps := []struct {
		name string
		fn   func(string, uint64, io.Writer) error
	}{
		{"Fig 2", writeFig2},
		{"Fig 3", writeFig3},
		{"Fig 4 / §3.2", writeFig4},
		{"Table 2", writeTable2},
		{"Table 3", writeTable3},
		{"Fig 7", writeFig7},
		{"ablations", writeAblations},
		{"extensions", writeExtensions},
		{"SVG figures", writeSVGs},
	}
	for _, s := range steps {
		if err := s.fn(dir, seed, tee); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	fmt.Fprintf(tee, "\nall artifacts written to %s/\n", dir)
	return nil
}

func writeCSV(path string, headers []string, rows [][]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	c := report.NewCSV(f, headers...)
	for _, r := range rows {
		c.Row(r...)
	}
	return c.Err()
}

func writeFig2(dir string, _ uint64, w io.Writer) error {
	pts := exp.Fig2Series(80)
	rows := make([][]float64, len(pts))
	for i, p := range pts {
		rows[i] = []float64{p.Ifc, p.Vfc, p.Power}
	}
	if err := writeCSV(filepath.Join(dir, "fig2_stack_ivp.csv"),
		[]string{"ifc_a", "vfc_v", "power_w"}, rows); err != nil {
		return err
	}
	var maxP, maxI float64
	for _, p := range pts {
		if p.Power > maxP {
			maxP, maxI = p.Power, p.Ifc
		}
	}
	fmt.Fprintf(w, "Fig 2: stack Voc = %.1f V, max power %.1f W at %.2f A -> fig2_stack_ivp.csv\n",
		pts[0].Vfc, maxP, maxI)
	return nil
}

func writeFig3(dir string, _ uint64, w io.Writer) error {
	pts, err := exp.Fig3Series(80)
	if err != nil {
		return err
	}
	rows := make([][]float64, len(pts))
	for i, p := range pts {
		rows[i] = []float64{p.IF, p.StackEff, p.SystemProportional, p.LinearModel, p.SystemOnOff}
	}
	if err := writeCSV(filepath.Join(dir, "fig3_efficiency.csv"),
		[]string{"if_a", "stack_eff", "system_prop_eff", "linear_model", "system_onoff_eff"}, rows); err != nil {
		return err
	}
	lo, hi := pts[0], pts[len(pts)-1]
	fmt.Fprintf(w, "Fig 3: system η (prop fan) %.3f @ %.2f A -> %.3f @ %.2f A; Eq 2 model 0.45-0.13·IF -> fig3_efficiency.csv\n",
		lo.SystemProportional, lo.IF, hi.SystemProportional, hi.IF)
	return nil
}

func writeFig4(dir string, _ uint64, w io.Writer) error {
	m, err := exp.MotivationalExample()
	if err != nil {
		return err
	}
	tab := report.NewTable("Fig 4 / §3.2 — motivational example", "Setting", "Fuel (A-s)", "Paper")
	tab.AddRow("(a) Conv-DPM", fmt.Sprintf("%.2f", m.ConvFuel), "36 (w/ Ifc≈IF)")
	tab.AddRow("(b) ASAP-DPM", fmt.Sprintf("%.2f", m.ASAPFuel), "16")
	tab.AddRow("(c) FC-DPM", fmt.Sprintf("%.2f", m.FCDPMFuel), "13.45")
	text := tab.String() + fmt.Sprintf(
		"optimal IF=%.3f A (paper 0.53), Ifc=%.3f A (paper 0.448), saving vs ASAP=%s (paper 15.9%%), energy=%.0f J (paper 192)\n",
		m.OptimalIF, m.OptimalIfc, report.Percent(m.SavingVsASAP), m.DeliveredEnergy)
	if err := os.WriteFile(filepath.Join(dir, "fig4_motivational.txt"), []byte(text), 0o644); err != nil {
		return err
	}
	fmt.Fprint(w, text)
	return nil
}

func comparisonText(title string, cmp *exp.Comparison, paper map[string]string) string {
	tab := report.NewTable(title, "DPM policy", "Fuel (A-s)", "Avg Ifc (A)", "Normalized", "Paper")
	for _, r := range cmp.Rows {
		tab.AddRow(r.Name, fmt.Sprintf("%.1f", r.Fuel), fmt.Sprintf("%.4f", r.AvgRate),
			report.Percent(r.Normalized), paper[r.Name])
	}
	return tab.String() + fmt.Sprintf("FC-DPM saving vs ASAP = %s, lifetime extension = %.2fx\n",
		report.Percent(cmp.SavingVsASAP), cmp.LifetimeRatio)
}

func writeTable2(dir string, seed uint64, w io.Writer) error {
	cmp, err := exp.Experiment1(seed)
	if err != nil {
		return err
	}
	text := comparisonText("Table 2 — Experiment 1 (camcorder MPEG trace)", cmp,
		map[string]string{"Conv-DPM": "100%", "ASAP-DPM": "40.8%", "FC-DPM": "30.8%"})
	if err := os.WriteFile(filepath.Join(dir, "table2_exp1.txt"), []byte(text), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, text)
	return nil
}

func writeTable3(dir string, seed uint64, w io.Writer) error {
	cmp, err := exp.Experiment2(seed + 1)
	if err != nil {
		return err
	}
	text := comparisonText("Table 3 — Experiment 2 (synthetic trace)", cmp,
		map[string]string{"Conv-DPM": "100%", "ASAP-DPM": "49.1%", "FC-DPM": "41.5%"})
	if err := os.WriteFile(filepath.Join(dir, "table3_exp2.txt"), []byte(text), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, text)
	return nil
}

func writeFig7(dir string, seed uint64, w io.Writer) error {
	fig, err := exp.Fig7(seed, 300)
	if err != nil {
		return err
	}
	loadRows := make([][]float64, len(fig.Load))
	for i, p := range fig.Load {
		loadRows[i] = []float64{p.T, p.Load}
	}
	if err := writeCSV(filepath.Join(dir, "fig7_load.csv"), []string{"t_s", "load_a"}, loadRows); err != nil {
		return err
	}
	asapRows := make([][]float64, len(fig.ASAP))
	for i, p := range fig.ASAP {
		asapRows[i] = []float64{p.T, p.IF}
	}
	if err := writeCSV(filepath.Join(dir, "fig7_asap.csv"), []string{"t_s", "if_a"}, asapRows); err != nil {
		return err
	}
	fcRows := make([][]float64, len(fig.FCDPM))
	for i, p := range fig.FCDPM {
		fcRows[i] = []float64{p.T, p.IF}
	}
	if err := writeCSV(filepath.Join(dir, "fig7_fcdpm.csv"), []string{"t_s", "if_a"}, fcRows); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nFig 7: 300 s profiles -> fig7_load.csv (%d pts), fig7_asap.csv (%d), fig7_fcdpm.csv (%d)\n",
		len(fig.Load), len(fig.ASAP), len(fig.FCDPM))
	return nil
}

func writeAblations(dir string, seed uint64, w io.Writer) error {
	// Capacity sweep.
	caps, err := exp.CapacitySweep(seed, []float64{1, 2, 3, 6, 12, 24, 60})
	if err != nil {
		return err
	}
	rows := make([][]float64, len(caps))
	for i, p := range caps {
		rows[i] = []float64{p.X, p.FCNormalized, p.SavingVsASAP}
	}
	if err := writeCSV(filepath.Join(dir, "ablation_capacity.csv"),
		[]string{"cmax_as", "fc_vs_conv", "saving_vs_asap"}, rows); err != nil {
		return err
	}
	// Beta sweep.
	betas, err := exp.BetaSweep(seed, []float64{0, 0.05, 0.10, 0.13, 0.20, 0.30})
	if err != nil {
		return err
	}
	rows = make([][]float64, len(betas))
	for i, p := range betas {
		rows[i] = []float64{p.X, p.FCNormalized, p.SavingVsASAP}
	}
	if err := writeCSV(filepath.Join(dir, "ablation_beta.csv"),
		[]string{"beta", "fc_vs_conv", "saving_vs_asap"}, rows); err != nil {
		return err
	}
	// Predictor ablation.
	preds, err := exp.PredictorAblation(seed)
	if err != nil {
		return err
	}
	tab := report.NewTable("Ablation — idle predictors", "Predictor", "MAE", "RMSE", "FC-DPM vs Conv")
	for _, r := range preds {
		tab.AddRow(r.Predictor, fmt.Sprintf("%.2f", r.Accuracy.MAE),
			fmt.Sprintf("%.2f", r.Accuracy.RMSE), report.Percent(r.FCNormalized))
	}
	if err := os.WriteFile(filepath.Join(dir, "ablation_predictors.txt"), []byte(tab.String()), 0o644); err != nil {
		return err
	}
	// Constant-eta ablation.
	linear, constant, err := exp.ConstantEtaAblation(seed)
	if err != nil {
		return err
	}
	text := fmt.Sprintf("constant-eta ablation: linear-η saving vs ASAP = %s, constant-η = %s\n",
		report.Percent(linear.SavingVsASAP), report.Percent(constant.SavingVsASAP))
	if err := os.WriteFile(filepath.Join(dir, "ablation_constant_eta.txt"), []byte(text), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nablations -> ablation_capacity.csv, ablation_beta.csv, ablation_predictors.txt, ablation_constant_eta.txt\n")
	fmt.Fprint(w, text)
	return nil
}

// writeExtensions regenerates the beyond-paper artifacts: Experiment 3,
// the offline DP oracle, the quantized-level sweep, the slew-rate
// ablation, the aggregation ablation, and the hydrogen report.
func writeExtensions(dir string, seed uint64, w io.Writer) error {
	// Experiment 3 + sleep-policy comparison.
	cmp3, err := exp.Experiment3(seed + 2)
	if err != nil {
		return err
	}
	text := comparisonText("Experiment 3 — heavy-tail idle workload (beyond paper)", cmp3, nil)
	rows3, err := exp.Experiment3DPM(seed + 2)
	if err != nil {
		return err
	}
	tab := report.NewTable("Sleep-policy comparison under FC-DPM", "Mode", "Sleeps", "Avg Ifc (A)", "Deficit (A-s)")
	for _, r := range rows3 {
		tab.AddRow(r.Mode, r.Sleeps, fmt.Sprintf("%.4f", r.FCRate), fmt.Sprintf("%.3f", r.Deficit))
	}
	text += tab.String()
	if err := os.WriteFile(filepath.Join(dir, "experiment3.txt"), []byte(text), 0o644); err != nil {
		return err
	}

	// Quantized levels.
	qr, err := exp.QuantizedSweep(seed, []int{2, 3, 4, 8, 16})
	if err != nil {
		return err
	}
	rows := make([][]float64, len(qr))
	for i, r := range qr {
		rows[i] = []float64{float64(r.Levels), r.Fuel, r.FCNormalized, r.GapVsCont}
	}
	if err := writeCSV(filepath.Join(dir, "ablation_levels.csv"),
		[]string{"levels", "fuel_as", "fc_vs_conv", "gap_vs_continuous"}, rows); err != nil {
		return err
	}

	// Slew-rate ablation.
	sr, err := exp.SlewAblation(seed, []float64{0, 0.5, 0.1, 0.05, 0.02})
	if err != nil {
		return err
	}
	rows = make([][]float64, len(sr))
	for i, r := range sr {
		rows[i] = []float64{r.RateAps, r.ASAPRate, r.ASAPDeficit, r.FCRate, r.FCDeficit}
	}
	if err := writeCSV(filepath.Join(dir, "ablation_slew.csv"),
		[]string{"rate_aps", "asap_rate", "asap_deficit", "fc_rate", "fc_deficit"}, rows); err != nil {
		return err
	}

	// Aggregation ablation.
	ar, err := exp.AggregationAblation(seed, []int{1, 2, 4, 8})
	if err != nil {
		return err
	}
	rows = make([][]float64, len(ar))
	for i, r := range ar {
		rows[i] = []float64{float64(r.K), r.MaxDeferral, float64(r.Sleeps), r.FCRate}
	}
	if err := writeCSV(filepath.Join(dir, "ablation_aggregation.csv"),
		[]string{"k", "max_deferral_s", "sleeps", "fc_rate"}, rows); err != nil {
		return err
	}

	// Offline DP oracle + battery-aware contrast, summarized in text.
	offline, online, err := exp.OfflineOracleDP(seed, 48)
	if err != nil {
		return err
	}
	ba, fc, err := exp.BatteryAwareAblation(seed)
	if err != nil {
		return err
	}
	summary := fmt.Sprintf(
		"offline DP oracle: %.4f A; online FC-DPM: %.4f A (gap %s)\n"+
			"battery-aware shaping: %.4f A vs FC-DPM %.4f A (%s more fuel)\n",
		offline.AvgFuelRate(), online.AvgFuelRate(),
		report.Percent(online.AvgFuelRate()/offline.AvgFuelRate()-1),
		ba.AvgFuelRate(), fc.AvgFuelRate(),
		report.Percent(ba.AvgFuelRate()/fc.AvgFuelRate()-1))
	if err := os.WriteFile(filepath.Join(dir, "ablation_bounds.txt"), []byte(summary), 0o644); err != nil {
		return err
	}

	// Hydrogen report.
	cmp1, err := exp.Experiment1(seed)
	if err != nil {
		return err
	}
	hr, err := exp.Hydrogen(cmp1, 10)
	if err != nil {
		return err
	}
	htab := report.NewTable("Hydrogen accounting (10 g cartridge)", "Policy", "H2 (g)", "Life (h)", "End-to-end η")
	for _, r := range hr {
		htab.AddRow(r.Policy, fmt.Sprintf("%.3f", r.Grams), fmt.Sprintf("%.1f", r.LifetimeHours),
			report.Percent(r.EndToEndEff))
	}
	if err := os.WriteFile(filepath.Join(dir, "hydrogen.txt"), []byte(htab.String()), 0o644); err != nil {
		return err
	}

	fmt.Fprintf(w, "\nextensions -> experiment3.txt, ablation_levels.csv, ablation_slew.csv, ablation_aggregation.csv, ablation_bounds.txt, hydrogen.txt\n")
	fmt.Fprint(w, summary)
	return nil
}

// writeSVGs emits the three reproduced figures as standalone SVG documents.
func writeSVGs(dir string, seed uint64, w io.Writer) error {
	// Fig 2.
	fig2 := exp.Fig2Series(80)
	var ifc, vfc, pw []float64
	for _, p := range fig2 {
		ifc = append(ifc, p.Ifc)
		vfc = append(vfc, p.Vfc)
		pw = append(pw, p.Power)
	}
	c2 := report.NewSVGChart("Fig 2 — BCS 20W stack I-V-P characteristic", "stack current (A)", "V / W")
	if err := c2.Line("Vfc (V)", ifc, vfc); err != nil {
		return err
	}
	if err := c2.Line("P (W)", ifc, pw); err != nil {
		return err
	}
	if err := renderSVG(filepath.Join(dir, "fig2.svg"), c2); err != nil {
		return err
	}

	// Fig 3.
	fig3, err := exp.Fig3Series(80)
	if err != nil {
		return err
	}
	var xs, a, b3, lin, cc []float64
	for _, p := range fig3 {
		xs = append(xs, p.IF)
		a = append(a, p.StackEff)
		b3 = append(b3, p.SystemProportional)
		lin = append(lin, p.LinearModel)
		cc = append(cc, p.SystemOnOff)
	}
	c3 := report.NewSVGChart("Fig 3 — efficiency vs FC system output current", "IF (A)", "efficiency")
	for _, s := range []struct {
		name string
		ys   []float64
	}{{"(a) stack", a}, {"(b) system, prop fan", b3}, {"Eq 2 linear model", lin}, {"(c) system, on/off fan", cc}} {
		if err := c3.Line(s.name, xs, s.ys); err != nil {
			return err
		}
	}
	if err := renderSVG(filepath.Join(dir, "fig3.svg"), c3); err != nil {
		return err
	}

	// Fig 7.
	fig7, err := exp.Fig7(seed, 300)
	if err != nil {
		return err
	}
	c7 := report.NewSVGChart("Fig 7 — 300 s current profiles", "time (s)", "current (A)")
	split := func(pts []sim.ProfilePoint, useIF bool) (txs, tys []float64) {
		for _, p := range pts {
			txs = append(txs, p.T)
			if useIF {
				tys = append(tys, p.IF)
			} else {
				tys = append(tys, p.Load)
			}
		}
		return
	}
	lx, ly := split(fig7.Load, false)
	if err := c7.Step("load", lx, ly); err != nil {
		return err
	}
	ax, ay := split(fig7.ASAP, true)
	if err := c7.Step("ASAP-DPM IF", ax, ay); err != nil {
		return err
	}
	fx, fy := split(fig7.FCDPM, true)
	if err := c7.Step("FC-DPM IF", fx, fy); err != nil {
		return err
	}
	if err := renderSVG(filepath.Join(dir, "fig7.svg"), c7); err != nil {
		return err
	}

	fmt.Fprintf(w, "SVG figures -> fig2.svg, fig3.svg, fig7.svg\n")
	return nil
}

func renderSVG(path string, c *report.SVGChart) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.Render(f)
}
