package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestBenchToolWritesAllArtifacts runs the full regeneration into a temp
// directory and checks every promised artifact exists and is non-empty.
func TestBenchToolWritesAllArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact regeneration")
	}
	dir := t.TempDir()
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() {
		os.Stdout = old
		devNull.Close()
	}()
	if err := run([]string{dir}); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"fig2_stack_ivp.csv",
		"fig3_efficiency.csv",
		"fig4_motivational.txt",
		"fig7_load.csv",
		"fig7_asap.csv",
		"fig7_fcdpm.csv",
		"fig2.svg",
		"fig3.svg",
		"fig7.svg",
		"table2_exp1.txt",
		"table3_exp2.txt",
		"ablation_capacity.csv",
		"ablation_beta.csv",
		"ablation_predictors.txt",
		"ablation_constant_eta.txt",
		"ablation_levels.csv",
		"ablation_slew.csv",
		"ablation_aggregation.csv",
		"ablation_bounds.txt",
		"experiment3.txt",
		"hydrogen.txt",
		"summary.txt",
	}
	for _, name := range want {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("%s missing: %v", name, err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	// Spot-check contents.
	data, err := os.ReadFile(filepath.Join(dir, "table2_exp1.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"Conv-DPM", "ASAP-DPM", "FC-DPM", "40.8%"} {
		if !strings.Contains(string(data), sub) {
			t.Errorf("table2_exp1.txt missing %q", sub)
		}
	}
	data, err = os.ReadFile(filepath.Join(dir, "fig2_stack_ivp.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "ifc_a,vfc_v,power_w") {
		t.Error("fig2 CSV header wrong")
	}
}
