package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"fcdpm/internal/devicesim"
)

// cmdDeviceSim runs the fleet-scale load harness: -count virtual
// devices submitting deterministic scenario runs to a `fcdpm serve`
// target for -stop-after seconds, then draining and printing the
// client-side latency/shed/coalesce/cache report. -plan prints the
// deterministic population + submission schedule as NDJSON without
// contacting the server (the byte-reproducibility surface). Sheds are
// counted, not fatal; any non-shed submit error fails the run (exit 1).
func cmdDeviceSim(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("devicesim", flag.ContinueOnError)
	count := fs.Int("count", 100, "number of concurrent virtual devices")
	stopAfter := fs.Float64("stop-after", 30, "scheduling window in seconds; the fleet drains afterwards")
	target := fs.String("target", "http://127.0.0.1:8080", "fcdpm serve base URL")
	cadence := fs.Float64("cadence", 2, "mean per-device submit interval in seconds (jittered 0.5x-1.5x)")
	seed := fs.Uint64("seed", 1, "fleet seed; fixes the population and submission schedule")
	metrics := fs.String("metrics", "", "serve the harness's own /metrics at this address (empty: off)")
	configPath := fs.String("config", "", "device template JSON (default: built-in mix; see scenarios/devicesim.json)")
	plan := fs.Bool("plan", false, "print the deterministic population + schedule as NDJSON and exit")
	jsonOut := fs.String("json", "", "also write the final report as JSON to this file ('-' for stdout)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("devicesim takes no operands")
	}
	if *count <= 0 {
		return usagef("devicesim: -count must be positive, got %d", *count)
	}
	tmpl := devicesim.DefaultTemplate()
	if *configPath != "" {
		var err error
		if tmpl, err = devicesim.LoadTemplateFile(*configPath); err != nil {
			return err
		}
	}
	opts := devicesim.Options{
		Target:    *target,
		Count:     *count,
		Cadence:   secondsFlag(*cadence),
		StopAfter: secondsFlag(*stopAfter),
		Seed:      *seed,
		Template:  tmpl,
		Addr:      *metrics,
		Out:       os.Stdout,
		Logf:      log.New(os.Stderr, "", log.LstdFlags).Printf,
	}
	if *plan {
		return opts.WritePlan(os.Stdout)
	}
	rep, err := devicesim.Run(ctx, opts)
	if err != nil {
		return err
	}
	if *jsonOut != "" {
		w, closeFn, err := outWriter(*jsonOut)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(w); err != nil {
			closeFn()
			return err
		}
		if err := closeFn(); err != nil {
			return err
		}
	}
	if rep.Failed > 0 {
		return fmt.Errorf("devicesim: %d submissions failed for non-shed reasons", rep.Failed)
	}
	return nil
}
