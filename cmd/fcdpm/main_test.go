package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDispatch(t *testing.T) {
	ok := [][]string{
		{"motiv"},
		{"exp1", "-seed", "1"},
		{"exp2", "-seed", "2"},
		{"levels"},
		{"hydrogen", "-cartridge", "5"},
		{"sweep", "-what", "rho"},
		{"curves", "-points", "8"},
		{"stats", "-kind", "heavytail", "-duration", "120"},
		{"verify"},
		{"ablate", "-what", "battery"},
		{"ablate", "-what", "timeout"},
		{"advise", "-kind", "synthetic"},
		{"charge", "-window", "40"},
		{"run", "-policy", "asap", "-duration", "120"},
		{"run", "-policy", "flat", "-flat", "0.5", "-duration", "120"},
		{"help"},
	}
	// Silence stdout during the dispatch tests.
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() {
		os.Stdout = old
		devNull.Close()
	}()
	for _, args := range ok {
		if err := run(context.Background(), args); err != nil {
			t.Errorf("run(%v) = %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	bad := [][]string{
		{},
		{"nope"},
		{"trace", "-kind", "bogus"},
		{"run", "-policy", "bogus"},
		{"trace", "-format", "bogus"},
		{"sweep", "-what", "bogus"},
		{"ablate", "-what", "bogus"},
	}
	for _, args := range bad {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestTraceToFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	if err := run(context.Background(), []string{"trace", "-kind", "synthetic", "-duration", "100", "-out", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "idle_s,active_s,active_current_a") {
		t.Fatalf("missing CSV header: %q", string(data[:40]))
	}
	if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 3 {
		t.Fatal("too few rows")
	}
}

func TestCurvesToDir(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), []string{"curves", "-points", "10", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig2_stack_ivp.csv", "fig3_efficiency.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("%s not written: %v", f, err)
		}
	}
}

func TestJSONTraceRoundTripViaCLI(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	if err := run(context.Background(), []string{"trace", "-kind", "camcorder", "-duration", "60", "-format", "json", "-out", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"slots\"") {
		t.Fatal("JSON trace missing slots field")
	}
}

func TestRunFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	js := `{"name": "test", "trace": {"kind": "synthetic", "duration": 120}, "policy": {"kind": "asap"}}`
	if err := os.WriteFile(path, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() {
		os.Stdout = old
		devNull.Close()
	}()
	if err := run(context.Background(), []string{"runfile", path}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"runfile"}); err == nil {
		t.Error("missing argument accepted")
	}
	if err := run(context.Background(), []string{"runfile", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestPlotCommands(t *testing.T) {
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() {
		os.Stdout = old
		devNull.Close()
	}()
	for _, what := range []string{"fig2", "fig3", "fig7"} {
		if err := run(context.Background(), []string{"plot", "-what", what, "-window", "60"}); err != nil {
			t.Errorf("plot %s: %v", what, err)
		}
	}
	if err := run(context.Background(), []string{"plot", "-what", "bogus"}); err == nil {
		t.Error("unknown chart accepted")
	}
}

func TestBatchAndRobust(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	if err := os.WriteFile(a, []byte(`{"trace":{"kind":"synthetic","duration":120},"policy":{"kind":"asap"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte(`{"trace":{"kind":"synthetic","duration":120},"policy":{"kind":"fcdpm"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() {
		os.Stdout = old
		devNull.Close()
	}()
	if err := run(context.Background(), []string{"batch", a, b}); err != nil {
		t.Fatalf("batch: %v", err)
	}
	if err := run(context.Background(), []string{"batch"}); err == nil {
		t.Error("batch with no files accepted")
	}
	if err := run(context.Background(), []string{"batch", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("batch with missing file should surface the error")
	}
	if err := run(context.Background(), []string{"robust", "-trials", "4"}); err != nil {
		t.Fatalf("robust: %v", err)
	}
}

// TestRunFileBadRhoExitsOne is the regression test for the predictor
// typed-error sweep: a scenario with an out-of-range rho used to reach
// predict's constructor panic; it must now map to a run failure (exit
// code 1), not a crash.
func TestRunFileBadRhoExitsOne(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad-rho.json")
	js := `{"trace": {"kind": "synthetic", "duration": 60}, "predict": {"rho": 1.5}}`
	if err := os.WriteFile(path, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	oldOut, oldErr := os.Stdout, os.Stderr
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout, os.Stderr = devNull, devNull
	defer func() {
		os.Stdout, os.Stderr = oldOut, oldErr
		devNull.Close()
	}()
	err = run(context.Background(), []string{"runfile", path})
	if err == nil {
		t.Fatal("bad-rho scenario accepted")
	}
	if got := exitCode(err); got != 1 {
		t.Fatalf("exitCode = %d, want 1 (err: %v)", got, err)
	}
	if !strings.Contains(err.Error(), "predict.rho") {
		t.Fatalf("error does not name the offending field: %v", err)
	}
}

// TestRunFileBadTraceRecordExitsOne is the regression test for crafted
// trace records reaching the simulator: a scenario pointing at a trace
// file with a NaN duration must fail cleanly with exit code 1 (it used
// to pass validation and poison the run), as must a zero-duration slot.
func TestRunFileBadTraceRecordExitsOne(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "crafted.csv")
	if err := os.WriteFile(trace, []byte("idle_s,active_s,active_current_a\n10,NaN,1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	scen := filepath.Join(dir, "scenario.json")
	js := fmt.Sprintf(`{"trace": {"kind": "file", "file": %q}}`, trace)
	if err := os.WriteFile(scen, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	oldOut, oldErr := os.Stdout, os.Stderr
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout, os.Stderr = devNull, devNull
	defer func() {
		os.Stdout, os.Stderr = oldOut, oldErr
		devNull.Close()
	}()
	err = run(context.Background(), []string{"runfile", scen})
	if err == nil {
		t.Fatal("crafted trace accepted")
	}
	if got := exitCode(err); got != 1 {
		t.Fatalf("exitCode = %d, want 1 (err: %v)", got, err)
	}
}

// TestRunMultiStack: the allocation study runs end to end and its
// -assert gate holds (water-filling strictly below equal-split on the
// degraded mix); bad list flags are usage errors.
func TestRunMultiStack(t *testing.T) {
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() {
		os.Stdout = old
		devNull.Close()
	}()
	args := []string{"multistack", "-k", "2", "-intensity", "2", "-duration", "200", "-assert"}
	if err := run(context.Background(), args); err != nil {
		t.Errorf("run(%v) = %v", args, err)
	}
	for _, bad := range [][]string{
		{"multistack", "-k", "two"},
		{"multistack", "-intensity", ""},
		{"multistack", "extra"},
	} {
		if err := run(context.Background(), bad); exitCode(err) != 2 {
			t.Errorf("run(%v) = %v, want usage error", bad, err)
		}
	}
}

// TestRunFileMultiStackScenario: the shipped multi-stack scenario file
// builds and runs through the runfile path.
func TestRunFileMultiStackScenario(t *testing.T) {
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() {
		os.Stdout = old
		devNull.Close()
	}()
	path := filepath.Join("..", "..", "scenarios", "multistack-surge.json")
	if err := run(context.Background(), []string{"runfile", path}); err != nil {
		t.Errorf("runfile %s: %v", path, err)
	}
}
