package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDispatch(t *testing.T) {
	ok := [][]string{
		{"motiv"},
		{"exp1", "-seed", "1"},
		{"exp2", "-seed", "2"},
		{"levels"},
		{"hydrogen", "-cartridge", "5"},
		{"sweep", "-what", "rho"},
		{"curves", "-points", "8"},
		{"stats", "-kind", "heavytail", "-duration", "120"},
		{"verify"},
		{"ablate", "-what", "battery"},
		{"ablate", "-what", "timeout"},
		{"advise", "-kind", "synthetic"},
		{"charge", "-window", "40"},
		{"run", "-policy", "asap", "-duration", "120"},
		{"run", "-policy", "flat", "-flat", "0.5", "-duration", "120"},
		{"help"},
	}
	// Silence stdout during the dispatch tests.
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() {
		os.Stdout = old
		devNull.Close()
	}()
	for _, args := range ok {
		if err := run(context.Background(), args); err != nil {
			t.Errorf("run(%v) = %v", args, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	bad := [][]string{
		{},
		{"nope"},
		{"trace", "-kind", "bogus"},
		{"run", "-policy", "bogus"},
		{"trace", "-format", "bogus"},
		{"sweep", "-what", "bogus"},
		{"ablate", "-what", "bogus"},
	}
	for _, args := range bad {
		if err := run(context.Background(), args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

func TestTraceToFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	if err := run(context.Background(), []string{"trace", "-kind", "synthetic", "-duration", "100", "-out", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "idle_s,active_s,active_current_a") {
		t.Fatalf("missing CSV header: %q", string(data[:40]))
	}
	if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 3 {
		t.Fatal("too few rows")
	}
}

func TestCurvesToDir(t *testing.T) {
	dir := t.TempDir()
	if err := run(context.Background(), []string{"curves", "-points", "10", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"fig2_stack_ivp.csv", "fig3_efficiency.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("%s not written: %v", f, err)
		}
	}
}

func TestJSONTraceRoundTripViaCLI(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.json")
	if err := run(context.Background(), []string{"trace", "-kind", "camcorder", "-duration", "60", "-format", "json", "-out", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"slots\"") {
		t.Fatal("JSON trace missing slots field")
	}
}

func TestRunFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	js := `{"name": "test", "trace": {"kind": "synthetic", "duration": 120}, "policy": {"kind": "asap"}}`
	if err := os.WriteFile(path, []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() {
		os.Stdout = old
		devNull.Close()
	}()
	if err := run(context.Background(), []string{"runfile", path}); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), []string{"runfile"}); err == nil {
		t.Error("missing argument accepted")
	}
	if err := run(context.Background(), []string{"runfile", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestPlotCommands(t *testing.T) {
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() {
		os.Stdout = old
		devNull.Close()
	}()
	for _, what := range []string{"fig2", "fig3", "fig7"} {
		if err := run(context.Background(), []string{"plot", "-what", what, "-window", "60"}); err != nil {
			t.Errorf("plot %s: %v", what, err)
		}
	}
	if err := run(context.Background(), []string{"plot", "-what", "bogus"}); err == nil {
		t.Error("unknown chart accepted")
	}
}

func TestBatchAndRobust(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	if err := os.WriteFile(a, []byte(`{"trace":{"kind":"synthetic","duration":120},"policy":{"kind":"asap"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(b, []byte(`{"trace":{"kind":"synthetic","duration":120},"policy":{"kind":"fcdpm"}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devNull
	defer func() {
		os.Stdout = old
		devNull.Close()
	}()
	if err := run(context.Background(), []string{"batch", a, b}); err != nil {
		t.Fatalf("batch: %v", err)
	}
	if err := run(context.Background(), []string{"batch"}); err == nil {
		t.Error("batch with no files accepted")
	}
	if err := run(context.Background(), []string{"batch", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("batch with missing file should surface the error")
	}
	if err := run(context.Background(), []string{"robust", "-trials", "4"}); err != nil {
		t.Fatalf("robust: %v", err)
	}
}
