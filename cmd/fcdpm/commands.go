package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"fcdpm/internal/cache"
	"fcdpm/internal/config"
	"fcdpm/internal/device"
	"fcdpm/internal/exp"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/numeric"
	"fcdpm/internal/policy"
	"fcdpm/internal/report"
	"fcdpm/internal/runner"
	"fcdpm/internal/runreport"
	"fcdpm/internal/sim"
	"fcdpm/internal/storage"
	"fcdpm/internal/version"
	"fcdpm/internal/workload"
)

// parseFlags parses args and classifies failures: -h/--help propagates
// flag.ErrHelp (exit 0), anything else — an unknown flag, a malformed
// value — is a usage error (exit 2).
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return err
		}
		return usagef("%s: %v", fs.Name(), err)
	}
	return nil
}

// secondsFlag converts a -timeout style seconds value to a Duration;
// zero or negative means "no deadline".
func secondsFlag(s float64) time.Duration {
	if s <= 0 {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}

// outWriter opens the -out target, defaulting to stdout.
func outWriter(path string) (io.Writer, func() error, error) {
	if path == "" || path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func cmdCurves(args []string) error {
	fs := flag.NewFlagSet("curves", flag.ContinueOnError)
	points := fs.Int("points", 60, "samples per curve")
	dir := fs.String("out", "", "directory for CSV output (default: tables to stdout)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	fig2 := exp.Fig2Series(*points)
	fig3, err := exp.Fig3Series(*points)
	if err != nil {
		return err
	}
	if *dir == "" {
		tab := report.NewTable("Fig 2 — stack I-V-P", "Ifc (A)", "Vfc (V)", "P (W)")
		for _, p := range fig2 {
			tab.AddRow(fmt.Sprintf("%.3f", p.Ifc), fmt.Sprintf("%.2f", p.Vfc), fmt.Sprintf("%.2f", p.Power))
		}
		fmt.Print(tab)
		tab3 := report.NewTable("\nFig 3 — efficiencies", "IF (A)", "stack", "sys prop", "Eq2", "sys on/off")
		for _, p := range fig3 {
			tab3.AddRow(fmt.Sprintf("%.3f", p.IF), report.Percent(p.StackEff),
				report.Percent(p.SystemProportional), report.Percent(p.LinearModel),
				report.Percent(p.SystemOnOff))
		}
		fmt.Print(tab3)
		return nil
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	f2, err := os.Create(filepath.Join(*dir, "fig2_stack_ivp.csv"))
	if err != nil {
		return err
	}
	defer f2.Close()
	c2 := report.NewCSV(f2, "ifc_a", "vfc_v", "power_w")
	for _, p := range fig2 {
		c2.Row(p.Ifc, p.Vfc, p.Power)
	}
	if err := c2.Err(); err != nil {
		return err
	}
	f3, err := os.Create(filepath.Join(*dir, "fig3_efficiency.csv"))
	if err != nil {
		return err
	}
	defer f3.Close()
	c3 := report.NewCSV(f3, "if_a", "stack_eff", "system_prop_eff", "linear_model", "system_onoff_eff")
	for _, p := range fig3 {
		c3.Row(p.IF, p.StackEff, p.SystemProportional, p.LinearModel, p.SystemOnOff)
	}
	if err := c3.Err(); err != nil {
		return err
	}
	fmt.Printf("wrote %s and %s\n", filepath.Join(*dir, "fig2_stack_ivp.csv"), filepath.Join(*dir, "fig3_efficiency.csv"))
	return nil
}

// makeTrace builds a trace from the -kind/-seed/-duration flags.
func makeTrace(kind string, seed uint64, duration float64) (*workload.Trace, *device.Model, error) {
	switch kind {
	case "camcorder":
		cfg := workload.DefaultCamcorderConfig()
		cfg.Seed = seed
		if duration > 0 {
			cfg.Duration = duration
		}
		tr, err := workload.Camcorder(cfg)
		return tr, device.Camcorder(), err
	case "synthetic":
		cfg := workload.DefaultSyntheticConfig()
		cfg.Seed = seed
		if duration > 0 {
			cfg.Duration = duration
		}
		tr, err := workload.Synthetic(cfg)
		return tr, device.Synthetic(), err
	default:
		return nil, nil, fmt.Errorf("unknown trace kind %q (want camcorder or synthetic)", kind)
	}
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	kind := fs.String("kind", "camcorder", "trace kind: camcorder or synthetic")
	seed := fs.Uint64("seed", 1, "generator seed")
	duration := fs.Float64("duration", 0, "trace duration in seconds (0 = paper default)")
	format := fs.String("format", "csv", "output format: csv or json")
	out := fs.String("out", "", "output file (default stdout)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	tr, _, err := makeTrace(*kind, *seed, *duration)
	if err != nil {
		return err
	}
	w, closeFn, err := outWriter(*out)
	if err != nil {
		return err
	}
	defer closeFn()
	switch *format {
	case "csv":
		return tr.WriteCSV(w)
	case "json":
		return tr.WriteJSON(w)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	polName := fs.String("policy", "fcdpm", "policy: conv, asap, fcdpm, or flat")
	kind := fs.String("kind", "camcorder", "trace kind: camcorder or synthetic")
	seed := fs.Uint64("seed", 1, "generator seed")
	duration := fs.Float64("duration", 0, "trace duration in seconds (0 = paper default)")
	cmax := fs.Float64("cmax", 6, "storage capacity in A-s")
	reserve := fs.Float64("reserve", 1, "initial/target storage charge in A-s")
	flatIF := fs.Float64("flat", 0.5, "fixed output for -policy flat, A")
	fuel := fs.Float64("fuel", 3600, "fuel budget for lifetime report, stack A-s")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	tr, dev, err := makeTrace(*kind, *seed, *duration)
	if err != nil {
		return err
	}
	sys := fuelcell.PaperSystem()
	var pol sim.Policy
	switch *polName {
	case "conv":
		pol = policy.NewConv(sys)
	case "asap":
		pol = policy.NewASAP(sys)
	case "fcdpm":
		pol = policy.NewFCDPM(sys, dev)
	case "flat":
		pol = policy.NewFlat(sys, *flatIF)
	default:
		return fmt.Errorf("unknown policy %q", *polName)
	}
	store, err := storage.NewSuperCap(*cmax, *reserve)
	if err != nil {
		return err
	}
	res, err := sim.Run(sim.Config{
		Sys: sys, Dev: dev,
		Store:  store,
		Trace:  tr,
		Policy: pol,
	})
	if err != nil {
		return err
	}
	tab := report.NewTable(fmt.Sprintf("%s over %s (seed %d)", res.Policy, tr.Name, *seed), "Metric", "Value")
	tab.AddRow("slots", res.Slots)
	tab.AddRow("sleep decisions", res.Sleeps)
	tab.AddRow("duration (s)", fmt.Sprintf("%.1f", res.Duration))
	tab.AddRow("fuel (stack A-s)", fmt.Sprintf("%.1f", res.Fuel))
	tab.AddRow("avg stack current (A)", fmt.Sprintf("%.4f", res.AvgFuelRate()))
	tab.AddRow("delivered energy (J)", fmt.Sprintf("%.0f", res.DeliveredEnergy))
	tab.AddRow("load energy (J)", fmt.Sprintf("%.0f", res.LoadEnergy))
	tab.AddRow("bled charge (A-s)", fmt.Sprintf("%.2f", res.Bled))
	tab.AddRow("deficit charge (A-s)", fmt.Sprintf("%.3f", res.Deficit))
	tab.AddRow("final storage (A-s)", fmt.Sprintf("%.2f", res.FinalCharge))
	tab.AddRow(fmt.Sprintf("lifetime @ %.0f A-s fuel (s)", *fuel), fmt.Sprintf("%.0f", res.Lifetime(*fuel)))
	fmt.Print(tab)
	return nil
}

func cmdExp(ctx context.Context, args []string, which int) error {
	fs := flag.NewFlagSet(fmt.Sprintf("exp%d", which), flag.ContinueOnError)
	seed := fs.Uint64("seed", uint64(which), "trace seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	var cmp *exp.Comparison
	var err error
	var paper map[string]string
	var title string
	if which == 1 {
		cmp, err = exp.Experiment1Context(ctx, *seed)
		paper = map[string]string{"Conv-DPM": "100%", "ASAP-DPM": "40.8%", "FC-DPM": "30.8%"}
		title = "Table 2 — Experiment 1 (camcorder MPEG trace)"
	} else {
		cmp, err = exp.Experiment2Context(ctx, *seed)
		paper = map[string]string{"Conv-DPM": "100%", "ASAP-DPM": "49.1%", "FC-DPM": "41.5%"}
		title = "Table 3 — Experiment 2 (synthetic trace)"
	}
	if err != nil {
		return err
	}
	tab := report.NewTable(title, "DPM policy", "Fuel (A-s)", "Avg Ifc (A)", "Normalized", "Paper")
	for _, r := range cmp.Rows {
		tab.AddRow(r.Name, fmt.Sprintf("%.1f", r.Fuel), fmt.Sprintf("%.4f", r.AvgRate),
			report.Percent(r.Normalized), paper[r.Name])
	}
	fmt.Print(tab)
	fmt.Printf("FC-DPM saving vs ASAP-DPM: %s; lifetime extension: %.2fx\n",
		report.Percent(cmp.SavingVsASAP), cmp.LifetimeRatio)
	return nil
}

func cmdMotiv(args []string) error {
	fs := flag.NewFlagSet("motiv", flag.ContinueOnError)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	m, err := exp.MotivationalExample()
	if err != nil {
		return err
	}
	tab := report.NewTable("§3.2 / Fig 4 — motivational example", "Setting", "Fuel (A-s)", "Paper")
	tab.AddRow("(a) Conv-DPM", fmt.Sprintf("%.2f", m.ConvFuel), "36 (w/ Ifc≈IF)")
	tab.AddRow("(b) ASAP-DPM", fmt.Sprintf("%.2f", m.ASAPFuel), "16")
	tab.AddRow("(c) FC-DPM", fmt.Sprintf("%.2f", m.FCDPMFuel), "13.45")
	fmt.Print(tab)
	fmt.Printf("optimal IF = %.3f A, Ifc = %.3f A, saving vs ASAP = %s, vs Conv = %s, energy = %.0f J\n",
		m.OptimalIF, m.OptimalIfc, report.Percent(m.SavingVsASAP),
		report.Percent(m.SavingVsConv), m.DeliveredEnergy)
	return nil
}

func cmdSweep(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	what := fs.String("what", "capacity", "sweep: capacity, beta, or rho")
	seed := fs.Uint64("seed", 1, "trace seed")
	batchN := fs.Int("batch", 1, "lane width for batched execution: >1 runs the sweep's policy rows in lockstep through the batched simulation core, N lanes per trace walk")
	remote := fs.String("remote", "", "dispatcher URL; submit scenario-file operands as a distributed sweep instead of the local ablation")
	name := fs.String("name", "", "sweep name (with -remote)")
	rows := fs.String("rows", "", "write result rows (NDJSON) to this file, or - for stdout (with -remote)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *remote != "" {
		if fs.NArg() == 0 {
			return usagef("usage: fcdpm sweep -remote URL [-name NAME] [-rows FILE] <scenario.json>...")
		}
		return remoteSweep(ctx, *remote, *name, *rows, fs.Args())
	}
	if fs.NArg() != 0 {
		return usagef("scenario operands need -remote; the local ablation sweep takes none")
	}
	var pts []exp.SweepPoint
	var err error
	var xName string
	switch *what {
	case "capacity":
		xs := []float64{1, 2, 3, 6, 12, 24, 60}
		if *batchN > 1 {
			pts, err = exp.CapacitySweepBatched(ctx, *seed, xs, *batchN)
		} else {
			pts, err = exp.CapacitySweepContext(ctx, *seed, xs)
		}
		xName = "Cmax (A-s)"
	case "beta":
		xs := []float64{0, 0.05, 0.10, 0.13, 0.20, 0.30}
		if *batchN > 1 {
			pts, err = exp.BetaSweepBatched(ctx, *seed, xs, *batchN)
		} else {
			pts, err = exp.BetaSweepContext(ctx, *seed, xs)
		}
		xName = "beta"
	case "rho":
		xs := []float64{0, 0.25, 0.5, 0.75, 1}
		if *batchN > 1 {
			pts, err = exp.RhoSweepBatched(ctx, *seed, xs, *batchN)
		} else {
			pts, err = exp.RhoSweepContext(ctx, *seed, xs)
		}
		xName = "rho"
	default:
		return fmt.Errorf("unknown sweep %q", *what)
	}
	if err != nil {
		return err
	}
	tab := report.NewTable(fmt.Sprintf("%s sweep (Experiment 1 setup)", *what), xName, "FC-DPM vs Conv", "Saving vs ASAP")
	for _, p := range pts {
		tab.AddRow(p.X, report.Percent(p.FCNormalized), report.Percent(p.SavingVsASAP))
	}
	fmt.Print(tab)
	return nil
}

func cmdOracle(args []string) error {
	fs := flag.NewFlagSet("oracle", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "trace seed")
	grid := fs.Int("grid", 48, "DP storage-grid intervals")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	offline, online, err := exp.OfflineOracleDP(*seed, *grid)
	if err != nil {
		return err
	}
	tab := report.NewTable("Offline DP oracle vs online FC-DPM (Experiment 1 setup)",
		"Policy", "Fuel (A-s)", "Avg Ifc (A)")
	tab.AddRow(offline.Policy, fmt.Sprintf("%.1f", offline.Fuel), fmt.Sprintf("%.4f", offline.AvgFuelRate()))
	tab.AddRow(online.Policy, fmt.Sprintf("%.1f", online.Fuel), fmt.Sprintf("%.4f", online.AvgFuelRate()))
	fmt.Print(tab)
	fmt.Printf("online prediction cost: %s above the offline bound\n",
		report.Percent(online.AvgFuelRate()/offline.AvgFuelRate()-1))
	return nil
}

func cmdHydrogen(args []string) error {
	fs := flag.NewFlagSet("hydrogen", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "trace seed")
	grams := fs.Float64("cartridge", 10, "H2 cartridge mass in grams")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	cmp, err := exp.Experiment1(*seed)
	if err != nil {
		return err
	}
	rows, err := exp.Hydrogen(cmp, *grams)
	if err != nil {
		return err
	}
	tab := report.NewTable(fmt.Sprintf("Hydrogen accounting (%.0f g cartridge, 20-cell stack)", *grams),
		"Policy", "H2 (g)", "H2 (L STP)", "Cartridge life (h)", "End-to-end η")
	for _, r := range rows {
		tab.AddRow(r.Policy, fmt.Sprintf("%.3f", r.Grams), fmt.Sprintf("%.2f", r.LitresSTP),
			fmt.Sprintf("%.1f", r.LifetimeHours), report.Percent(r.EndToEndEff))
	}
	fmt.Print(tab)
	return nil
}

func cmdLevels(args []string) error {
	fs := flag.NewFlagSet("levels", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "trace seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	rows, err := exp.QuantizedSweep(*seed, []int{2, 3, 4, 8, 16})
	if err != nil {
		return err
	}
	tab := report.NewTable("Discrete FC output levels (multi-level config of [11])",
		"Levels", "Fuel (A-s)", "FC-DPM vs Conv", "Gap vs continuous")
	for _, r := range rows {
		name := fmt.Sprintf("%d", r.Levels)
		if r.Levels == 0 {
			name = "continuous"
		}
		tab.AddRow(name, fmt.Sprintf("%.1f", r.Fuel), report.Percent(r.FCNormalized),
			report.Percent(r.GapVsCont))
	}
	fmt.Print(tab)
	return nil
}

func cmdPlot(args []string) error {
	fs := flag.NewFlagSet("plot", flag.ContinueOnError)
	what := fs.String("what", "fig7", "chart: fig7, fig2, or fig3")
	seed := fs.Uint64("seed", 1, "trace seed (fig7)")
	window := fs.Float64("window", 300, "profile window in seconds (fig7)")
	width := fs.Int("width", 96, "chart width in characters")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	switch *what {
	case "fig7":
		fig, err := exp.Fig7(*seed, *window)
		if err != nil {
			return err
		}
		split := func(pts []sim.ProfilePoint, useIF bool) (xs, ys []float64) {
			for _, p := range pts {
				xs = append(xs, p.T)
				if useIF {
					ys = append(ys, p.IF)
				} else {
					ys = append(ys, p.Load)
				}
			}
			return xs, ys
		}
		c := report.NewChart("Fig 7 — load and FC output current profiles", "time (s)", "current (A)")
		c.Width = *width
		lx, ly := split(fig.Load, false)
		if err := c.Step("load", '.', lx, ly); err != nil {
			return err
		}
		ax, ay := split(fig.ASAP, true)
		if err := c.Step("ASAP IF", 'a', ax, ay); err != nil {
			return err
		}
		fx, fy := split(fig.FCDPM, true)
		if err := c.Step("FC-DPM IF", 'F', fx, fy); err != nil {
			return err
		}
		return c.Render(os.Stdout)
	case "fig2":
		pts := exp.Fig2Series(80)
		var xs, vs, ps []float64
		for _, p := range pts {
			xs = append(xs, p.Ifc)
			vs = append(vs, p.Vfc)
			ps = append(ps, p.Power)
		}
		c := report.NewChart("Fig 2 — stack I-V-P characteristic", "stack current (A)", "V / W")
		c.Width = *width
		if err := c.Line("Vfc (V)", 'v', xs, vs); err != nil {
			return err
		}
		if err := c.Line("P (W)", 'p', xs, ps); err != nil {
			return err
		}
		return c.Render(os.Stdout)
	case "fig3":
		pts, err := exp.Fig3Series(80)
		if err != nil {
			return err
		}
		var xs, a, b, lin, cc []float64
		for _, p := range pts {
			xs = append(xs, p.IF)
			a = append(a, p.StackEff)
			b = append(b, p.SystemProportional)
			lin = append(lin, p.LinearModel)
			cc = append(cc, p.SystemOnOff)
		}
		c := report.NewChart("Fig 3 — efficiency vs FC system output current", "IF (A)", "efficiency")
		c.Width = *width
		if err := c.Line("stack", 's', xs, a); err != nil {
			return err
		}
		if err := c.Line("system prop-fan", 'b', xs, b); err != nil {
			return err
		}
		if err := c.Line("Eq2 linear", 'l', xs, lin); err != nil {
			return err
		}
		if err := c.Line("system on/off", 'c', xs, cc); err != nil {
			return err
		}
		return c.Render(os.Stdout)
	default:
		return fmt.Errorf("unknown chart %q", *what)
	}
}

func cmdRunFile(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("runfile", flag.ContinueOnError)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: fcdpm runfile <scenario.json>")
	}
	scen, err := config.LoadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	cfg, err := scen.Build()
	if err != nil {
		return err
	}
	res, err := sim.RunContext(ctx, cfg)
	if err != nil {
		return err
	}
	title := scen.Name
	if title == "" {
		title = fs.Arg(0)
	}
	tab := report.NewTable(fmt.Sprintf("scenario %q: %s over %s", title, res.Policy, cfg.Trace.Name),
		"Metric", "Value")
	tab.AddRow("slots", res.Slots)
	tab.AddRow("sleep decisions", res.Sleeps)
	tab.AddRow("duration (s)", fmt.Sprintf("%.1f", res.Duration))
	tab.AddRow("fuel (stack A-s)", fmt.Sprintf("%.1f", res.Fuel))
	tab.AddRow("avg stack current (A)", fmt.Sprintf("%.4f", res.AvgFuelRate()))
	tab.AddRow("bled charge (A-s)", fmt.Sprintf("%.2f", res.Bled))
	tab.AddRow("deficit charge (A-s)", fmt.Sprintf("%.3f", res.Deficit))
	tab.AddRow("final storage (A-s)", fmt.Sprintf("%.2f", res.FinalCharge))
	if cfg.Faults != nil || len(cfg.Fallbacks) > 0 {
		tab.AddRow("shed charge (A-s)", fmt.Sprintf("%.3f", res.Shed))
		tab.AddRow("policy fallbacks", res.Fallbacks)
		tab.AddRow("final policy", res.FinalPolicy)
	}
	fmt.Print(tab)
	if len(res.Events) > 0 {
		fmt.Println("\nrun events:")
		for _, e := range res.Events {
			fmt.Printf("  %s\n", e)
		}
	}
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	kind := fs.String("kind", "camcorder", "trace kind: camcorder, synthetic, or heavytail")
	seed := fs.Uint64("seed", 1, "generator seed")
	duration := fs.Float64("duration", 0, "trace duration in seconds (0 = default)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	var tr *workload.Trace
	var err error
	switch *kind {
	case "heavytail":
		cfg := workload.DefaultHeavyTailConfig()
		cfg.Seed = *seed
		if *duration > 0 {
			cfg.Duration = *duration
		}
		tr, err = workload.HeavyTail(cfg)
	default:
		tr, _, err = makeTrace(*kind, *seed, *duration)
	}
	if err != nil {
		return err
	}
	st := tr.Statistics()
	tab := report.NewTable(fmt.Sprintf("trace statistics: %s", tr.Name), "Metric", "Value")
	tab.AddRow("slots", st.Slots)
	tab.AddRow("duration (s)", fmt.Sprintf("%.1f", st.Duration))
	tab.AddRow("active duty cycle", report.Percent(st.ActiveDutyCycle))
	tab.AddRow("idle mean/median (s)", fmt.Sprintf("%.2f / %.2f", st.Idle.Mean, st.Idle.Median))
	tab.AddRow("idle min/max (s)", fmt.Sprintf("%.2f / %.2f", st.Idle.Min, st.Idle.Max))
	tab.AddRow("idle stddev (s)", fmt.Sprintf("%.2f", st.Idle.Stddev))
	tab.AddRow("idle p10/p90 (s)", fmt.Sprintf("%.2f / %.2f", st.Idle.P10, st.Idle.P90))
	tab.AddRow("active mean (s)", fmt.Sprintf("%.2f", st.Active.Mean))
	tab.AddRow("active current mean (A)", fmt.Sprintf("%.3f", st.ActiveCurrent.Mean))
	fmt.Print(tab)
	fmt.Println("\nidle-length distribution:")
	h, err := numeric.NewHistogram(tr.IdleLengths(), 12, st.Idle.Min, st.Idle.Max+1e-9)
	if err != nil {
		return err
	}
	fmt.Print(h.Render(48))
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "trace seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	checks, err := exp.Conformance(*seed)
	if err != nil {
		return err
	}
	tab := report.NewTable("Reproduction conformance suite", "Check", "Measured", "Band", "Paper", "Verdict")
	for _, c := range checks {
		verdict := "PASS"
		if !c.Pass {
			verdict = "FAIL"
		}
		tab.AddRow(c.Name, fmt.Sprintf("%.4g", c.Measured),
			fmt.Sprintf("[%.4g, %.4g]", c.Lo, c.Hi), c.Paper, verdict)
	}
	fmt.Print(tab)
	if !exp.Passed(checks) {
		return fmt.Errorf("conformance suite failed")
	}
	fmt.Println("all checks passed")
	return nil
}

func cmdAblate(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("ablate", flag.ContinueOnError)
	what := fs.String("what", "", "ablation: thermal, actuation, battery, aggregation, calibration, slew, mpc, timeout, storage, dpm")
	seed := fs.Uint64("seed", 1, "trace seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	switch *what {
	case "thermal":
		rows, err := exp.ThermalStressAblation(*seed)
		if err != nil {
			return err
		}
		tab := report.NewTable("Stack thermal stress (post-warm-up)", "Policy", "Mean (°C)", "Swing (°C)", "Cycles")
		for _, r := range rows {
			tab.AddRow(r.Policy, fmt.Sprintf("%.1f", r.Stress.Mean), fmt.Sprintf("%.1f", r.Stress.Swing), r.Stress.CycleCount)
		}
		fmt.Print(tab)
	case "actuation":
		rows, err := exp.ActuationAblationContext(ctx, *seed, []float64{0, 0.02, 0.05, 0.1, 0.2})
		if err != nil {
			return err
		}
		tab := report.NewTable("Actuation dead band", "ε (A)", "Set-point commands", "Avg Ifc (A)")
		for _, r := range rows {
			tab.AddRow(r.Epsilon, r.Setpoints, fmt.Sprintf("%.4f", r.FCRate))
		}
		fmt.Print(tab)
	case "battery":
		ba, fc, err := exp.BatteryAwareAblation(*seed)
		if err != nil {
			return err
		}
		fmt.Printf("battery-aware shaping: %.4f A avg Ifc vs FC-DPM %.4f A (%s more fuel)\n",
			ba.AvgFuelRate(), fc.AvgFuelRate(), report.Percent(ba.AvgFuelRate()/fc.AvgFuelRate()-1))
	case "aggregation":
		rows, err := exp.AggregationAblationContext(ctx, *seed, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		tab := report.NewTable("Idle aggregation ([6, 7])", "k", "Max deferral (s)", "Sleeps", "Avg Ifc (A)")
		for _, r := range rows {
			tab.AddRow(r.K, fmt.Sprintf("%.1f", r.MaxDeferral), r.Sleeps, fmt.Sprintf("%.4f", r.FCRate))
		}
		fmt.Print(tab)
	case "calibration":
		rows, err := exp.CalibrationUncertaintyContext(ctx, *seed, 0.1)
		if err != nil {
			return err
		}
		tab := report.NewTable("±10% calibration box on (α, β)", "α", "β", "FC-DPM vs Conv", "Saving vs ASAP")
		for _, r := range rows {
			tab.AddRow(fmt.Sprintf("%.3f", r.Alpha), fmt.Sprintf("%.3f", r.Beta),
				report.Percent(r.FCNormalized), report.Percent(r.SavingVsASAP))
		}
		fmt.Print(tab)
	case "slew":
		rows, err := exp.SlewAblationContext(ctx, *seed, []float64{0, 0.5, 0.1, 0.05, 0.02})
		if err != nil {
			return err
		}
		tab := report.NewTable("FC output slew-rate limit", "Rate (A/s)", "ASAP Ifc", "ASAP deficit", "FC-DPM Ifc", "FC-DPM deficit")
		for _, r := range rows {
			tab.AddRow(r.RateAps, fmt.Sprintf("%.4f", r.ASAPRate), fmt.Sprintf("%.2f", r.ASAPDeficit),
				fmt.Sprintf("%.4f", r.FCRate), fmt.Sprintf("%.2f", r.FCDeficit))
		}
		fmt.Print(tab)
	case "mpc":
		rows, err := exp.MPCAblationContext(ctx, *seed, []int{1, 2, 3, 5})
		if err != nil {
			return err
		}
		tab := report.NewTable("Receding-horizon FC-DPM", "Horizon", "Avg Ifc (A)", "Deficit (A-s)")
		for _, r := range rows {
			tab.AddRow(r.Horizon, fmt.Sprintf("%.4f", r.FCRate), fmt.Sprintf("%.3f", r.Deficit))
		}
		fmt.Print(tab)
	case "timeout":
		pred, timeout, err := exp.TimeoutAblation(*seed)
		if err != nil {
			return err
		}
		fmt.Printf("predictive %.4f A vs timeout(Tbe) %.4f A (dwell cost %s)\n",
			pred.AvgFuelRate(), timeout.AvgFuelRate(),
			report.Percent(timeout.AvgFuelRate()/pred.AvgFuelRate()-1))
	case "storage":
		super, liion, err := exp.StorageModelAblation(*seed)
		if err != nil {
			return err
		}
		fmt.Printf("supercap FC-DPM %s of Conv; KiBaM Li-ion %s\n",
			report.Percent(super.Row("FC-DPM").Normalized), report.Percent(liion.Row("FC-DPM").Normalized))
	case "dpm":
		modes, err := exp.DPMModeAblationContext(ctx, *seed)
		if err != nil {
			return err
		}
		tab := report.NewTable("Device-side DPM modes (FC-DPM source)", "Mode", "Avg Ifc (A)", "Sleeps")
		for _, name := range []string{"predictive", "oracle-sleep", "always-sleep", "never-sleep"} {
			r := modes[name].Row("FC-DPM")
			tab.AddRow(name, fmt.Sprintf("%.4f", r.AvgRate), r.Sleeps)
		}
		fmt.Print(tab)
	default:
		return fmt.Errorf("unknown ablation %q", *what)
	}
	return nil
}

func cmdAdvise(args []string) error {
	fs := flag.NewFlagSet("advise", flag.ContinueOnError)
	kind := fs.String("kind", "camcorder", "trace kind: camcorder or synthetic")
	seed := fs.Uint64("seed", 1, "generator seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	tr, dev, err := makeTrace(*kind, *seed, 0)
	if err != nil {
		return err
	}
	sys := fuelcell.PaperSystem()
	a, err := exp.Advise(sys, dev, tr)
	if err != nil {
		return err
	}
	tab := report.NewTable(fmt.Sprintf("hybrid sizing advice — %s on %s", tr.Name, dev.Name), "Quantity", "Value")
	tab.AddRow("peak load (A)", fmt.Sprintf("%.3f", a.PeakLoad))
	tab.AddRow("DPM-average load (A)", fmt.Sprintf("%.3f", a.AvgLoad))
	verdict := "yes"
	if !a.RangeOK {
		verdict = "NO — grow the stack or shrink the load"
	}
	tab.AddRow("FC range covers average?", verdict)
	tab.AddRow("min storage for FC-DPM (A-s)", fmt.Sprintf("%.2f", a.StorageNeeded))
	tab.AddRow("recommended Cmax (A-s)", fmt.Sprintf("%.2f", a.RecommendedCmax))
	tab.AddRow("recommended reserve (A-s)", fmt.Sprintf("%.2f", a.RecommendedReserve))
	fmt.Print(tab)
	return nil
}

// batchRow is the JSON-serializable slice of a simulation result that
// the batch table needs; it is also what lands in the checkpoint
// journal, so resumed rows render identically to fresh ones.
type batchRow struct {
	Name    string  `json:"name"`
	Policy  string  `json:"policy"`
	Fuel    float64 `json:"fuel"`
	AvgRate float64 `json:"avgRate"`
	Deficit float64 `json:"deficit"`
	// Row is the rendered runreport body, populated only under -rows.
	// It rides in the journal too, so resumed rows stay byte-identical.
	Row json.RawMessage `json:"row,omitempty"`
}

func cmdBatch(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("batch", flag.ContinueOnError)
	pf := addPoolFlags(fs, "scenario").addJournal(fs, "scenario")
	mf := addMetricsFlag(fs)
	rows := fs.String("rows", "", "write result rows (NDJSON, one runreport body per scenario in operand order) to this file, or - for stdout; byte-identical to the same sweep run remotely")
	batchN := fs.Int("batch", 1, "lane width for batched execution: scenarios sharing a trace run in lockstep through the batched simulation core, up to N lanes per trace walk (1 = scalar path)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	mf.init()
	defer mf.dump()
	paths := fs.Args()
	if len(paths) == 0 {
		return usagef("usage: fcdpm batch [-workers N] [-timeout S] [-retries N] [-journal FILE] <scenario.json>...")
	}
	// Load and validate every scenario up front: malformed files are
	// caller problems, not run failures, and the first runner block found
	// supplies pool defaults that explicit flags then override.
	scens, spec, err := config.LoadFiles(paths)
	if err != nil {
		return err
	}
	pf.overlay(fs, spec)
	engine := version.Engine()
	if *batchN > 1 {
		popts := pf.options()
		popts.Metrics = mf.pool
		return runBatchGrouped(ctx, scens, paths, *batchN, *rows, engine, mf, popts)
	}
	tasks := make([]runner.Task[batchRow], 0, len(paths))
	for i := range scens {
		scen := scens[i]
		path := paths[i]
		name := scen.Name
		if name == "" {
			name = path
		}
		// The row name follows the dispatcher's convention (scenario name,
		// else cell index) so `fcdpm batch -rows` of a spec set is
		// byte-identical to the same set swept through `fcdpm sweep -remote`.
		rowName := scen.Name
		if rowName == "" {
			rowName = fmt.Sprintf("cell-%04d", i)
		}
		var key string
		if *rows != "" {
			if key, err = scen.CacheKey(engine); err != nil {
				return fmt.Errorf("scenario %s: %w", name, err)
			}
		}
		tasks = append(tasks, runner.Task[batchRow]{
			ID:       runner.RunID("batch", "scenario="+path),
			Scenario: path,
			Run: func(ctx context.Context) (batchRow, error) {
				cfg, err := scen.Build()
				if err != nil {
					return batchRow{}, fmt.Errorf("scenario %s: %w", name, err)
				}
				cfg.Metrics = mf.sim
				res, err := sim.RunContext(ctx, cfg)
				if err != nil {
					return batchRow{}, fmt.Errorf("scenario %s: %w", name, err)
				}
				row := batchRow{
					Name: name, Policy: res.Policy, Fuel: res.Fuel,
					AvgRate: res.AvgFuelRate(), Deficit: res.Deficit,
				}
				if *rows != "" {
					if row.Row, err = runreport.Render(rowName, key, engine, res); err != nil {
						return batchRow{}, fmt.Errorf("scenario %s: %w", name, err)
					}
				}
				return row, nil
			},
		})
	}
	popts := pf.options()
	popts.Metrics = mf.pool
	rep, runErr := runner.Run(ctx, popts, tasks)
	if rep == nil {
		return runErr
	}
	tab := report.NewTable("batch results", "Scenario", "Policy", "Fuel (A-s)", "Avg Ifc (A)", "Deficit (A-s)", "Status")
	for _, o := range rep.Outcomes {
		switch o.Status {
		case runner.StatusDone, runner.StatusResumed:
			status := "done"
			if o.Status == runner.StatusResumed {
				status = "resumed"
			}
			r := o.Result
			tab.AddRow(r.Name, r.Policy, fmt.Sprintf("%.1f", r.Fuel),
				fmt.Sprintf("%.4f", r.AvgRate), fmt.Sprintf("%.3f", r.Deficit), status)
		case runner.StatusFailed:
			tab.AddRow(o.Scenario, "ERROR: "+o.Err.Error(), "", "", "", "failed")
		default:
			tab.AddRow(o.Scenario, "", "", "", "", string(o.Status))
		}
	}
	// With -rows - the NDJSON owns stdout; the human table moves to
	// stderr so piped rows stay parseable.
	tabOut := io.Writer(os.Stdout)
	if *rows == "-" {
		tabOut = os.Stderr
	}
	fmt.Fprint(tabOut, tab)
	if rep.Resumed > 0 || rep.Interrupted > 0 {
		fmt.Fprintf(tabOut, "\n%d of %d scenarios resumed from journal, %d interrupted\n",
			rep.Resumed, len(rep.Outcomes), rep.Interrupted)
	}
	if runErr != nil {
		if errors.Is(runErr, runner.ErrInterrupted) && *pf.journal != "" {
			fmt.Fprintf(os.Stderr, "batch interrupted; re-run the same command to resume from %s\n", *pf.journal)
		}
		return runErr
	}
	if err := rep.FirstError(); err != nil {
		return err
	}
	if *rows != "" {
		return writeBatchRows(*rows, rep.Outcomes)
	}
	return nil
}

// writeBatchRows writes the rendered runreport bodies as NDJSON in
// operand order — the same order and bytes a dispatcher serves for the
// equivalent remote sweep.
func writeBatchRows(path string, outcomes []runner.Outcome[batchRow]) error {
	var buf bytes.Buffer
	for _, o := range outcomes {
		if len(o.Result.Row) == 0 {
			return fmt.Errorf("batch: %s resolved without a rendered row (resumed from a journal written without -rows?); delete the journal and re-run", o.Scenario)
		}
		buf.Write(o.Result.Row)
		buf.WriteByte('\n')
	}
	if path == "-" {
		_, err := os.Stdout.Write(buf.Bytes())
		return err
	}
	return cache.AtomicWriteFile(path, buf.Bytes())
}

// laneRows is one batched chunk's outcome: the operand indices it served
// and their rows, in lane order. It round-trips through the journal so
// resumed chunks replay their rows.
type laneRows struct {
	Idx  []int      `json:"idx"`
	Rows []batchRow `json:"rows"`
}

// runBatchGrouped is the -batch N execution path of cmdBatch: scenarios
// whose normalized trace specs agree share one trace walk, in chunks of
// at most width lanes per sim.BatchRunner call. Each chunk is one pool
// task, so -workers/-timeout/-retries/-journal apply per chunk. Rows,
// their names, and their cache keys are identical to the scalar path —
// `fcdpm batch -rows` output is byte-identical at any lane width.
func runBatchGrouped(ctx context.Context, scens []*config.Scenario, paths []string,
	width int, rows, engine string, mf *metricsFlag, popts runner.Options) error {
	// Partition operand indices by normalized trace spec, preserving
	// first-seen order, then chunk each partition to the lane width.
	byTrace := make(map[string][]int)
	var traceOrder []string
	for i, scen := range scens {
		n, err := scen.Normalized()
		if err != nil {
			return fmt.Errorf("scenario %s: %w", paths[i], err)
		}
		tj, err := json.Marshal(n.Trace)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", paths[i], err)
		}
		k := string(tj)
		if _, ok := byTrace[k]; !ok {
			traceOrder = append(traceOrder, k)
		}
		byTrace[k] = append(byTrace[k], i)
	}
	var chunks [][]int
	for _, k := range traceOrder {
		idxs := byTrace[k]
		for s := 0; s < len(idxs); s += width {
			chunks = append(chunks, idxs[s:min(s+width, len(idxs))])
		}
	}

	name := func(i int) string {
		if scens[i].Name != "" {
			return scens[i].Name
		}
		return paths[i]
	}
	tasks := make([]runner.Task[laneRows], len(chunks))
	for ci, chunk := range chunks {
		chunk := chunk
		tasks[ci] = runner.Task[laneRows]{
			ID:       runner.RunID("batch", fmt.Sprintf("chunk=%d", ci)),
			Scenario: paths[chunk[0]],
			Run: func(ctx context.Context) (laneRows, error) {
				lanes := make([]sim.Lane, len(chunk))
				keys := make([]string, len(chunk))
				for li, i := range chunk {
					cfg, err := scens[i].Build()
					if err != nil {
						return laneRows{}, fmt.Errorf("scenario %s: %w", name(i), err)
					}
					cfg.Metrics = mf.sim
					key, err := scens[i].CacheKey(engine)
					if err != nil {
						return laneRows{}, fmt.Errorf("scenario %s: %w", name(i), err)
					}
					keys[li] = key
					// The cache key is the canonical content address, so
					// identical cells collapse to one executing lane.
					lanes[li] = sim.Lane{Cfg: cfg, Key: key}
				}
				b, err := sim.NewBatchRunner(lanes)
				if err != nil {
					return laneRows{}, err
				}
				b.Metrics = mf.batch
				out, err := b.RunContext(ctx)
				if err != nil {
					return laneRows{}, err
				}
				lr := laneRows{Idx: chunk}
				for li, res := range out {
					i := chunk[li]
					if res.Err != nil {
						return laneRows{}, fmt.Errorf("scenario %s: %w", name(i), res.Err)
					}
					row := batchRow{
						Name: name(i), Policy: res.Res.Policy, Fuel: res.Res.Fuel,
						AvgRate: res.Res.AvgFuelRate(), Deficit: res.Res.Deficit,
					}
					if rows != "" {
						rowName := scens[i].Name
						if rowName == "" {
							rowName = fmt.Sprintf("cell-%04d", i)
						}
						if row.Row, err = runreport.Render(rowName, keys[li], engine, res.Res); err != nil {
							return laneRows{}, fmt.Errorf("scenario %s: %w", name(i), err)
						}
					}
					lr.Rows = append(lr.Rows, row)
				}
				return lr, nil
			},
		}
	}

	rep, runErr := runner.Run(ctx, popts, tasks)
	if rep == nil {
		return runErr
	}
	// Scatter chunk outcomes back to operand order.
	rowOf := make([]*batchRow, len(scens))
	statusOf := make([]string, len(scens))
	errOf := make([]error, len(scens))
	for ci, o := range rep.Outcomes {
		switch o.Status {
		case runner.StatusDone, runner.StatusResumed:
			status := "done"
			if o.Status == runner.StatusResumed {
				status = "resumed"
			}
			for k, i := range o.Result.Idx {
				rowOf[i] = &o.Result.Rows[k]
				statusOf[i] = status
			}
		default:
			for _, i := range chunks[ci] {
				statusOf[i] = string(o.Status)
				errOf[i] = o.Err
			}
		}
	}
	tab := report.NewTable("batch results", "Scenario", "Policy", "Fuel (A-s)", "Avg Ifc (A)", "Deficit (A-s)", "Status")
	for i := range scens {
		switch {
		case rowOf[i] != nil:
			r := rowOf[i]
			tab.AddRow(r.Name, r.Policy, fmt.Sprintf("%.1f", r.Fuel),
				fmt.Sprintf("%.4f", r.AvgRate), fmt.Sprintf("%.3f", r.Deficit), statusOf[i])
		case errOf[i] != nil:
			tab.AddRow(paths[i], "ERROR: "+errOf[i].Error(), "", "", "", "failed")
		default:
			tab.AddRow(paths[i], "", "", "", "", statusOf[i])
		}
	}
	tabOut := io.Writer(os.Stdout)
	if rows == "-" {
		tabOut = os.Stderr
	}
	fmt.Fprint(tabOut, tab)
	if rep.Resumed > 0 || rep.Interrupted > 0 {
		fmt.Fprintf(tabOut, "\n%d of %d chunks resumed from journal, %d interrupted\n",
			rep.Resumed, len(rep.Outcomes), rep.Interrupted)
	}
	if runErr != nil {
		return runErr
	}
	if err := rep.FirstError(); err != nil {
		return err
	}
	if rows != "" {
		var buf bytes.Buffer
		for i := range scens {
			if rowOf[i] == nil || len(rowOf[i].Row) == 0 {
				return fmt.Errorf("batch: %s resolved without a rendered row (resumed from a journal written without -rows?); delete the journal and re-run", paths[i])
			}
			buf.Write(rowOf[i].Row)
			buf.WriteByte('\n')
		}
		if rows == "-" {
			_, err := os.Stdout.Write(buf.Bytes())
			return err
		}
		return cache.AtomicWriteFile(rows, buf.Bytes())
	}
	return nil
}

func cmdRobust(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("robust", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "base seed")
	trials := fs.Int("trials", 20, "Monte-Carlo trials")
	pct := fs.Float64("pct", 0.1, "relative perturbation of device/efficiency parameters")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	r, err := exp.RobustnessStudyContext(ctx, *seed, *trials, *pct)
	if err != nil {
		return err
	}
	tab := report.NewTable(fmt.Sprintf("Monte-Carlo robustness (±%.0f%% on device + efficiency, %d trials)",
		*pct*100, r.Trials), "Metric", "Value")
	tab.AddRow("FC-DPM wins", fmt.Sprintf("%d / %d", r.Wins, r.Trials))
	tab.AddRow("saving vs ASAP mean ± std", fmt.Sprintf("%s ± %s",
		report.Percent(r.Saving.Mean), report.Percent(r.Saving.Stddev)))
	tab.AddRow("saving min / max", fmt.Sprintf("%s / %s",
		report.Percent(r.Saving.Min), report.Percent(r.Saving.Max)))
	tab.AddRow("FC-DPM vs Conv mean", report.Percent(r.FCNorm.Mean))
	fmt.Print(tab)
	return nil
}

func cmdCharge(args []string) error {
	fs := flag.NewFlagSet("charge", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "trace seed")
	window := fs.Float64("window", 120, "window in seconds")
	width := fs.Int("width", 96, "chart width in characters")
	polName := fs.String("policy", "fcdpm", "policy: conv, asap, or fcdpm")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	tr, dev, err := makeTrace("camcorder", *seed, 0)
	if err != nil {
		return err
	}
	sys := fuelcell.PaperSystem()
	var pol sim.Policy
	switch *polName {
	case "conv":
		pol = policy.NewConv(sys)
	case "asap":
		pol = policy.NewASAP(sys)
	case "fcdpm":
		pol = policy.NewFCDPM(sys, dev)
	default:
		return fmt.Errorf("unknown policy %q", *polName)
	}
	res, err := sim.Run(sim.Config{
		Sys: sys, Dev: dev,
		Store:         storage.MustSuperCap(6, 1),
		Trace:         tr,
		Policy:        pol,
		RecordProfile: true,
	})
	if err != nil {
		return err
	}
	var ts, qs []float64
	for _, p := range res.Charges {
		if p.T > *window {
			break
		}
		ts = append(ts, p.T)
		qs = append(qs, p.Q)
	}
	c := report.NewChart(fmt.Sprintf("storage charge trajectory — %s (the Fig 4(c) cycle, live)", res.Policy),
		"time (s)", "charge (A-s)")
	c.Width = *width
	if err := c.Step("charge", 'q', ts, qs); err != nil {
		return err
	}
	return c.Render(os.Stdout)
}

// faultClassHelp pairs each fault class with a one-line description for
// the `fcdpm faults -list` output.
var faultClassHelp = []struct{ name, desc string }{
	{"stack-dropout", "FC output cut entirely (stack stall / fuel starvation)"},
	{"stack-derate", "deliverable FC output limited to a fraction of nominal"},
	{"efficiency-degrade", "every delivered amp burns more fuel (membrane dry-out)"},
	{"capacity-fade", "storage capacity shrinks; charge above it is lost"},
	{"dcdc-dropout", "converter brown-out: no power reaches the bus"},
	{"sensor-noise", "predictor inputs corrupted by multiplicative noise"},
	{"load-surge", "embedded-system load scaled beyond the traced workload"},
}

func cmdFaults(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("faults", flag.ContinueOnError)
	seed := fs.Uint64("seed", 1, "trace and sensor-noise seed")
	list := fs.Bool("list", false, "only list the fault classes")
	pf := addPoolFlags(fs, "cell").addJournal(fs, "cell")
	mf := addMetricsFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	mf.init()
	defer mf.dump()
	tab := report.NewTable("fault classes", "Class", "Effect")
	for _, c := range faultClassHelp {
		tab.AddRow(c.name, c.desc)
	}
	fmt.Print(tab)
	if *list {
		return nil
	}
	sweepOpts := pf.sweepOptions()
	sweepOpts.Metrics = mf.pool
	sweepOpts.SimMetrics = mf.sim
	res, err := exp.FaultSweepOpts(ctx, *seed, sweepOpts)
	if err != nil && (res == nil || !errors.Is(err, runner.ErrInterrupted)) {
		return err
	}
	fmt.Println()
	sweep := report.NewTable(res.Scenario,
		"Fault", "Policy", "Fuel (A-s)", "Deficit (A-s)", "Shed (A-s)", "Fallbacks", "Final policy", "Survived")
	for _, r := range res.Rows {
		sweep.AddRow(r.Class, r.Policy,
			fmt.Sprintf("%.1f", r.Fuel),
			fmt.Sprintf("%.3f", r.Deficit),
			fmt.Sprintf("%.3f", r.Shed),
			r.Fallbacks, r.FinalPolicy, r.Survived)
	}
	fmt.Print(sweep)
	fmt.Println("\neach faulted run degrades through its fallback chain " +
		"(FC-DPM -> ASAP -> Conv -> load-shed) when the supervisor trips; " +
		"'survived' means unplanned unmet load stayed under 1 % of the load charge.")
	if res.Resumed > 0 {
		fmt.Printf("\n%d cells resumed from journal %s\n", res.Resumed, *pf.journal)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "fault sweep interrupted with %d cells pending; "+
			"re-run with the same -journal to resume\n", res.Interrupted)
		return err
	}
	return nil
}
