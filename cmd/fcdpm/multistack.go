package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fcdpm/internal/exp"
	"fcdpm/internal/report"
)

// cmdMultiStack runs the K-stack allocation study: equal-split,
// water-filling, and health-rotation racks across rack sizes and
// racksurge intensities, on the batched simulation core.
func cmdMultiStack(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("multistack", flag.ContinueOnError)
	ks := fs.String("k", "2,4", "comma-separated rack sizes")
	intensities := fs.String("intensity", "1.5,2,2.5", "comma-separated surge multipliers (>= 1)")
	degrade := fs.String("degrade", "0,0.3", "comma-separated per-stack degradation cycle in [0, 1); \"0\" for an all-healthy rack")
	seed := fs.Uint64("seed", 0, "racksurge trace seed (0 = generator default)")
	duration := fs.Float64("duration", 0, "trace duration in seconds (0 = generator default)")
	batch := fs.Int("batch", 16, "batched-runner lane width (results identical at any width)")
	asJSON := fs.Bool("json", false, "emit rows as JSON")
	assert := fs.Bool("assert", false, "exit non-zero unless water-filling uses strictly less fuel than equal-split in every cell")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("multistack: unexpected arguments %q", fs.Args())
	}
	kList, err := parseIntList(*ks)
	if err != nil {
		return usagef("multistack: -k: %v", err)
	}
	xList, err := parseFloatList(*intensities)
	if err != nil {
		return usagef("multistack: -intensity: %v", err)
	}
	mix, err := parseFloatList(*degrade)
	if err != nil {
		return usagef("multistack: -degrade: %v", err)
	}
	rows, err := exp.MultiStackStudyContext(ctx, exp.MultiStackConfig{
		Ks:          kList,
		Intensities: xList,
		DegradedMix: mix,
		Seed:        *seed,
		Duration:    *duration,
		Batch:       *batch,
	})
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			return err
		}
	} else {
		tab := report.NewTable("Multi-stack allocation study (racksurge)",
			"Alloc", "K", "Surge", "Fuel (A-s)", "vs equal", "Deficit (A-s)", "Bled (A-s)")
		for _, r := range rows {
			tab.AddRow(r.Alloc, r.K, fmt.Sprintf("x%g", r.Intensity),
				fmt.Sprintf("%.2f", r.Fuel), report.Percent(r.FuelVsEqual-1),
				fmt.Sprintf("%.3f", r.Deficit), fmt.Sprintf("%.2f", r.Bled))
		}
		fmt.Print(tab)
	}
	if *assert {
		fuel := map[string]float64{}
		for _, r := range rows {
			fuel[fmt.Sprintf("%s/%d/%g", r.Alloc, r.K, r.Intensity)] = r.Fuel
		}
		for _, k := range kList {
			for _, x := range xList {
				eq := fuel[fmt.Sprintf("equal-split/%d/%g", k, x)]
				wf := fuel[fmt.Sprintf("water-filling/%d/%g", k, x)]
				if !(wf < eq) {
					return fmt.Errorf("multistack: K=%d x%g: water-filling fuel %.4f not strictly below equal-split %.4f", k, x, wf, eq)
				}
			}
		}
		fmt.Println("assert ok: water-filling strictly below equal-split in every cell")
	}
	return nil
}

// parseIntList parses a comma-separated list of positive integers.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// parseFloatList parses a comma-separated list of floats.
func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
