package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"fcdpm/internal/runner"
)

// TestExitCodeMapping pins the CLI's exit-status contract: 0 ok/help,
// 1 run failure, 2 usage, 3 interrupted-but-resumable — including
// interruptions wrapped by intermediate layers (sweep facade, server
// drain), which must still map to 3 through errors.Is.
func TestExitCodeMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{flag.ErrHelp, 0},
		{usagef("bad flags"), 2},
		{fmt.Errorf("outer: %w", usagef("inner")), 2},
		{errors.New("run blew up"), 1},
		{runner.ErrInterrupted, 3},
		{fmt.Errorf("server: drain: %w", runner.ErrInterrupted), 3},
		{&runner.RunError{ID: "x", Attempts: 1, Err: errors.New("boom")}, 1},
	}
	// exitCode reports on stderr; silence it for the table.
	old := os.Stderr
	devNull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = devNull
	defer func() {
		os.Stderr = old
		devNull.Close()
	}()
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Errorf("exitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestCmdVersion checks both output modes of `fcdpm version`.
func TestCmdVersion(t *testing.T) {
	out := captureStdout(t, func() {
		if err := run(context.Background(), []string{"version"}); err != nil {
			t.Errorf("version: %v", err)
		}
	})
	if !strings.HasPrefix(out, "fcdpm ") {
		t.Fatalf("version output %q", out)
	}
	out = captureStdout(t, func() {
		if err := run(context.Background(), []string{"version", "-json"}); err != nil {
			t.Errorf("version -json: %v", err)
		}
	})
	var info struct {
		Module string `json:"module"`
		Go     string `json:"go"`
	}
	if err := json.Unmarshal([]byte(out), &info); err != nil {
		t.Fatalf("version -json output %q: %v", out, err)
	}
	if info.Module == "" || info.Go == "" {
		t.Fatalf("incomplete build info: %q", out)
	}
}

// TestCmdServeLifecycle drives `fcdpm serve` the way the CI smoke does:
// boot, POST a scenario twice (second must be a cache hit), then cancel
// the context (the SIGTERM path) and require a clean exit.
func TestCmdServeLifecycle(t *testing.T) {
	const addr = "127.0.0.1:38472"
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"serve", "-addr", addr, "-workers", "1"})
	}()
	base := "http://" + addr
	spec := `{"trace":{"kind":"synthetic","seed":5,"duration":120}}`
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			cancel()
			t.Fatalf("serve never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	post := func() (string, string) {
		resp, err := http.Post(base+"/v1/runs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != 200 {
			t.Fatalf("POST: %d %s", resp.StatusCode, b)
		}
		return string(b), resp.Header.Get("X-Fcdpm-Cache")
	}
	b1, c1 := post()
	b2, c2 := post()
	if c1 != "miss" || c2 != "hit" {
		t.Fatalf("cache headers: %q then %q, want miss then hit", c1, c2)
	}
	if b1 != b2 {
		t.Fatal("cached response not byte-identical")
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve drain: %v (exit code %d, want 0)", err, exitCodeSilently(err))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not drain")
	}
	if args := []string{"serve", "extra-operand"}; exitCodeSilently(run(context.Background(), args)) != 2 {
		t.Error("serve with operands should be a usage error")
	}
}

// exitCodeSilently maps err like main does, without writing stderr.
func exitCodeSilently(err error) int {
	old := os.Stderr
	devNull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stderr = devNull
	defer func() {
		os.Stderr = old
		devNull.Close()
	}()
	return exitCode(err)
}

// captureStdout runs fn with stdout redirected to a pipe and returns
// what it wrote.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	fn()
	w.Close()
	os.Stdout = old
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
