package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"fcdpm/internal/report"
	"fcdpm/internal/server"
	"fcdpm/internal/version"
)

// cmdServe runs the simulation service until the signal context cancels
// (Ctrl-C / SIGTERM), then drains: in-flight runs finish, new admissions
// get 503. A clean drain exits 0; a forced one maps to exit 3 through
// the same runner.ErrInterrupted discipline as batch and faults.
func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", server.DefaultAddr, "listen address")
	queue := fs.Int("queue", 0, "admission queue bound (0: 2x workers); overflow is shed with 503")
	cacheMB := fs.Int64("cache-mb", 64, "memory result-cache bound in MiB (negative disables)")
	cacheDir := fs.String("cache-dir", "", "disk result-cache directory; cached reports survive restarts (empty: memory only)")
	drain := fs.Float64("drain", 30, "graceful-shutdown drain budget in seconds")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (exposes runtime internals; keep off in untrusted networks)")
	pf := addPoolFlags(fs, "run")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("serve takes no operands")
	}
	ro := pf.options()
	logger := log.New(os.Stderr, "", log.LstdFlags)
	return server.Serve(ctx, server.Options{
		Addr:         *addr,
		Workers:      ro.Workers,
		Queue:        *queue,
		RunTimeout:   ro.Timeout,
		Retries:      ro.Retries,
		DrainTimeout: secondsFlag(*drain),
		CacheBytes:   *cacheMB << 20,
		CacheDir:     *cacheDir,
		EnablePprof:  *pprofOn,
		Logf:         logger.Printf,
	})
}

// cmdVersion prints the build identity: module version, VCS revision,
// and toolchain — the same facts /healthz serves and the cache key pins.
func cmdVersion(args []string) error {
	fs := flag.NewFlagSet("version", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit build info as JSON")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	info := version.Get()
	if *asJSON {
		b, err := report.StableJSON(info)
		if err != nil {
			return err
		}
		fmt.Println(string(b))
		return nil
	}
	fmt.Println(info.String())
	return nil
}
