package main

import (
	"flag"
	"fmt"

	"fcdpm/internal/perf"
)

// cmdBench runs the benchmark-regression suite (internal/perf): it
// measures the micro- and macro-benchmarks, writes a BENCH_<timestamp>.json
// artifact into -out, and with -compare diffs the fresh run against the
// latest artifact already in -out, failing beyond -threshold.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	out := fs.String("out", "bench", "directory for BENCH_*.json artifacts")
	repeat := fs.Int("repeat", 3, "repetitions per benchmark (best one is kept)")
	short := fs.Bool("short", false, "micro-benchmarks only (skip full-trace runs)")
	compare := fs.Bool("compare", false, "compare against the latest artifact in -out; non-zero exit on regression")
	threshold := fs.Float64("threshold", 0.15, "relative time-regression gate for -compare (0.15 = +15%)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *threshold <= 0 {
		return usagef("bench: -threshold must be positive, got %v", *threshold)
	}

	// Load the baseline before writing the new artifact, so the fresh run
	// never compares against itself.
	baseline, basePath, err := perf.Latest(*out)
	if err != nil {
		return err
	}

	art, err := perf.Run(*repeat, *short)
	if err != nil {
		return err
	}
	path, err := perf.Write(*out, art)
	if err != nil {
		return err
	}

	fmt.Printf("benchmarks (%s, %s/%s, best of %d):\n", art.GoVersion, art.GOOS, art.GOARCH, art.Repeat)
	for _, m := range art.Metrics {
		line := fmt.Sprintf("  %-16s %12.0f ns/op  %6d B/op  %4d allocs/op",
			m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp)
		if m.SlotsPerSec > 0 {
			line += fmt.Sprintf("  %10.0f slots/sec", m.SlotsPerSec)
		}
		fmt.Println(line)
	}
	fmt.Println("wrote", path)

	if !*compare {
		return nil
	}
	if baseline == nil {
		fmt.Println("no previous artifact to compare against; this run is the baseline")
		return nil
	}
	deltas, regressed, err := perf.Compare(baseline, art, *threshold)
	if err != nil {
		// Zero benchmark-name overlap: the gate has nothing to check and
		// must fail loudly rather than pass vacuously.
		return fmt.Errorf("bench: %w (baseline %s)", err, basePath)
	}
	fmt.Println("vs", basePath+":")
	for _, d := range deltas {
		fmt.Println(" ", d)
	}
	if regressed {
		return fmt.Errorf("bench: regression beyond %.0f%% against %s", 100**threshold, basePath)
	}
	return nil
}
