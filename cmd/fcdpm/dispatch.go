package main

import (
	"context"
	"flag"
	"log"
	"os"

	"fcdpm/internal/dispatch"
)

// cmdDispatchd runs the sweep dispatcher until the signal context
// cancels, then drains: admission and leasing answer 503 + Retry-After
// while workers' in-flight completions are still accepted. With -state
// the queue is journaled (fsync + rename) so a restart — graceful or a
// kill -9 — resumes every accepted sweep without losing or duplicating
// a shard.
func cmdDispatchd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("dispatchd", flag.ContinueOnError)
	addr := fs.String("addr", dispatch.DefaultAddr, "listen address")
	state := fs.String("state", "", "durable state directory (journal + result cache); empty runs ephemeral")
	lease := fs.Float64("lease", dispatch.DefaultLeaseTTL.Seconds(), "shard lease TTL in seconds; a worker silent this long forfeits its shards")
	cacheMB := fs.Int64("cache-mb", dispatch.DefaultCacheBytes>>20, "result-cache memory bound in MiB")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("dispatchd takes no operands")
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	return dispatch.Serve(ctx, dispatch.Options{
		Addr:       *addr,
		StateDir:   *state,
		LeaseTTL:   secondsFlag(*lease),
		CacheBytes: *cacheMB << 20,
		Logf:       logger.Printf,
	})
}

// cmdWorkd runs a worker daemon: lease shards from the dispatcher,
// execute them on a local pool, push results at-least-once. On SIGTERM
// it stops leasing, finishes in-flight shards, and delivers (or spools)
// their results before exiting.
func cmdWorkd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("workd", flag.ContinueOnError)
	url := fs.String("dispatcher", "http://"+dispatch.DefaultAddr, "dispatcher base URL")
	name := fs.String("name", "", "worker name reported to the dispatcher (default host-pid)")
	workers := fs.Int("workers", 0, "concurrent shard executions (0: GOMAXPROCS)")
	timeout := fs.Float64("timeout", 0, "per-shard execution timeout in seconds (0: none)")
	spool := fs.String("spool", "", "disk spool directory for results the dispatcher could not accept; empty disables spooling")
	addr := fs.String("addr", "", "metrics listen address (empty: no metrics endpoint)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return usagef("workd takes no operands")
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	return dispatch.RunWorker(ctx, dispatch.WorkerOptions{
		Dispatcher: *url,
		Name:       *name,
		Workers:    *workers,
		RunTimeout: secondsFlag(*timeout),
		SpoolDir:   *spool,
		Addr:       *addr,
		Logf:       logger.Printf,
	})
}

// remoteSweep submits the scenario files to a dispatcher and follows
// the sweep to completion. Progress events stream to stderr as NDJSON;
// -rows writes the final result rows (byte-identical to a local
// `fcdpm batch -rows` of the same specs) to a file or "-" for stdout.
func remoteSweep(ctx context.Context, remote, name, rows string, paths []string) error {
	req := dispatch.SweepRequest{Name: name}
	for _, p := range paths {
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		req.Scenarios = append(req.Scenarios, b)
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	return dispatch.SubmitSweep(ctx, dispatch.ClientOptions{
		Base:   remote,
		Name:   name,
		Rows:   rows,
		Events: os.Stderr,
		Logf:   logger.Printf,
	}, req)
}
