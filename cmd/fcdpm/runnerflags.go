package main

import (
	"flag"

	"fcdpm/internal/config"
	"fcdpm/internal/exp"
	"fcdpm/internal/runner"
)

// poolFlags are the orchestration flags shared by every subcommand that
// runs simulations on the resilient pool (batch, faults, serve), so the
// knobs spell and behave identically everywhere.
type poolFlags struct {
	workers *int
	timeout *float64
	retries *int
	journal *string
}

// addPoolFlags registers -workers/-timeout/-retries on fs. The noun
// ("scenario", "cell", "run") keeps each command's help text concrete.
func addPoolFlags(fs *flag.FlagSet, noun string) *poolFlags {
	return &poolFlags{
		workers: fs.Int("workers", 0, "concurrent "+noun+"s (0: GOMAXPROCS)"),
		timeout: fs.Float64("timeout", 0, "per-"+noun+" wall-clock deadline in seconds (0: none)"),
		retries: fs.Int("retries", 0, "retries per transiently failed "+noun),
	}
}

// addJournal registers the -journal checkpoint flag (batch and faults;
// the server keeps no journal — its cache is the durable artifact).
func (pf *poolFlags) addJournal(fs *flag.FlagSet, noun string) *poolFlags {
	pf.journal = fs.String("journal", "",
		"JSONL checkpoint file; a re-run with the same journal skips finished "+noun+"s")
	return pf
}

// overlay applies a scenario-provided runner block beneath any flags the
// user set explicitly: flags win, the spec fills the rest.
func (pf *poolFlags) overlay(fs *flag.FlagSet, spec config.RunnerSpec) {
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if !set["workers"] && spec.Workers != 0 {
		*pf.workers = spec.Workers
	}
	if !set["timeout"] && spec.TimeoutSec != 0 {
		*pf.timeout = spec.TimeoutSec
	}
	if !set["retries"] && spec.Retries != 0 {
		*pf.retries = spec.Retries
	}
	if pf.journal != nil && !set["journal"] && spec.Journal != "" {
		*pf.journal = spec.Journal
	}
}

// options maps the flags onto runner.Options.
func (pf *poolFlags) options() runner.Options {
	o := runner.Options{
		Workers: *pf.workers,
		Timeout: secondsFlag(*pf.timeout),
		Retries: *pf.retries,
	}
	if pf.journal != nil {
		o.Journal = *pf.journal
	}
	return o
}

// sweepOptions maps the flags onto the fault-sweep facade options.
func (pf *poolFlags) sweepOptions() exp.FaultSweepOptions {
	o := exp.FaultSweepOptions{
		Workers:    *pf.workers,
		TimeoutSec: *pf.timeout,
		Retries:    *pf.retries,
	}
	if pf.journal != nil {
		o.Journal = *pf.journal
	}
	return o
}
