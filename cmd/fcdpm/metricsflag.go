package main

import (
	"flag"
	"os"

	"fcdpm/internal/obs"
)

// metricsFlag wires the -metrics switch shared by batch and faults: when
// enabled it builds a private obs registry with the sim and pool
// instrument sets, and after the command finishes dumps the whole
// registry in Prometheus text format to stderr (stderr so the summary
// never corrupts a piped results table).
type metricsFlag struct {
	enabled *bool
	reg     *obs.Registry
	sim     *obs.SimMetrics
	pool    *obs.PoolMetrics
	batch   *obs.BatchMetrics
}

// addMetricsFlag registers -metrics on fs.
func addMetricsFlag(fs *flag.FlagSet) *metricsFlag {
	return &metricsFlag{
		enabled: fs.Bool("metrics", false,
			"print a Prometheus-text metrics summary to stderr after the run"),
	}
}

// init builds the instrument sets once flags are parsed; no-op (leaving
// every field nil, which the obs instruments treat as "off") when
// -metrics was not given.
func (mf *metricsFlag) init() {
	if !*mf.enabled {
		return
	}
	mf.reg = obs.NewRegistry()
	mf.sim = obs.NewSimMetrics(mf.reg)
	mf.pool = obs.NewPoolMetrics(mf.reg)
	mf.batch = obs.NewBatchMetrics(mf.reg)
}

// dump writes the summary to stderr when -metrics is on.
func (mf *metricsFlag) dump() {
	if mf.reg == nil {
		return
	}
	os.Stderr.WriteString("\n# metrics summary\n")
	mf.reg.WritePrometheus(os.Stderr)
}
