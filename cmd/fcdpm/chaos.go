package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"fcdpm/internal/chaos"
)

// cmdChaos runs the deterministic fault-injection harness: N in-process
// dispatcher + two-worker sweep trials, each under the fault schedule
// its seed fully determines, each ending with the fabric's invariant
// checks. Exit status 1 if any seed fails; a failing seed's scratch
// dir is kept and named so `fcdpm chaos -trials 1 -seed S` reproduces
// the exact schedule.
func cmdChaos(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	trials := fs.Int("trials", 5, "number of seeded trials")
	seed := fs.Uint64("seed", 1, "first seed (trials run seed..seed+trials-1)")
	journal := fs.String("journal", "", "append one JSON line per trial to this file")
	verbose := fs.Bool("v", false, "forward fabric log lines to stderr")
	if err := fs.Parse(args); err != nil {
		return usagef("chaos: %v", err)
	}
	if fs.NArg() != 0 {
		return usagef("chaos: unexpected arguments %q", fs.Args())
	}
	res, err := chaos.Run(ctx, chaos.Options{
		Trials:  *trials,
		Seed:    *seed,
		Journal: *journal,
		Verbose: *verbose,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
		Out: os.Stdout,
	})
	if err != nil {
		return err
	}
	if !res.OK() {
		return fmt.Errorf("chaos: %d of %d seed(s) failed invariants", len(res.Failing), res.Trials)
	}
	return nil
}
