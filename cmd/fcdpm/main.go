// Command fcdpm is the command-line front end of the library: it generates
// workload traces, dumps the fuel-cell characteristic curves, runs single
// policy simulations, and reproduces the paper's experiments.
//
// Usage:
//
//	fcdpm curves   [-points N] [-out dir]
//	fcdpm trace    [-kind camcorder|synthetic] [-seed N] [-duration S] [-format csv|json] [-out file]
//	fcdpm run      [-policy conv|asap|fcdpm|flat] [-kind camcorder|synthetic] [-seed N] [-cmax A-s] [-reserve A-s] [-flat A]
//	fcdpm exp1     [-seed N]
//	fcdpm exp2     [-seed N]
//	fcdpm motiv
//	fcdpm sweep    [-what capacity|beta|rho] [-seed N] | -remote URL [-name NAME] [-rows FILE] <scenario.json>...
//	fcdpm faults   [-seed N] [-list] [-workers N] [-timeout S] [-retries N] [-journal FILE]
//	fcdpm batch    [-workers N] [-timeout S] [-retries N] [-journal FILE] <scenario.json>...
//	fcdpm serve    [-addr HOST:PORT] [-workers N] [-queue N] [-timeout S] [-retries N] [-cache-mb N] [-cache-dir DIR] [-drain S] [-pprof]
//	fcdpm devicesim [-count N] [-stop-after S] [-target URL] [-cadence S] [-seed N] [-metrics HOST:PORT] [-config FILE] [-plan] [-json FILE]
//	fcdpm dispatchd [-addr HOST:PORT] [-state DIR] [-lease S] [-cache-mb N]
//	fcdpm workd    [-dispatcher URL] [-name NAME] [-workers N] [-timeout S] [-spool DIR] [-addr HOST:PORT]
//	fcdpm bench    [-out DIR] [-repeat N] [-short] [-compare] [-threshold F]
//	fcdpm version  [-json]
//
// Exit status: 0 on success, 1 on a run failure, 2 on command-line
// usage errors, 3 when a batch or sweep was interrupted but left a
// checkpoint journal it can resume from.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"fcdpm/internal/runner"
)

// usageError marks command-line misuse — unknown subcommand, malformed
// flags, missing operands. main maps it to exit code 2 so scripts can
// tell "you called me wrong" from "the run failed".
type usageError struct{ msg string }

func (e *usageError) Error() string { return e.msg }

func usagef(format string, args ...any) error {
	return &usageError{msg: fmt.Sprintf(format, args...)}
}

func main() {
	// Ctrl-C / SIGTERM cancels the context; long runs (sweeps, batch
	// scenarios) stop between slots instead of being killed mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := run(ctx, os.Args[1:])
	stop()
	os.Exit(exitCode(err))
}

// exitCode reports err on stderr and maps it to the process exit
// status: 0 success (including explicit -h/--help), 1 run failure,
// 2 usage error, 3 interrupted-but-resumable batch. Run failures print
// with %+v so a panic captured by the run engine shows its stack.
func exitCode(err error) int {
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return 0
	}
	var ue *usageError
	if errors.As(err, &ue) {
		fmt.Fprintln(os.Stderr, "fcdpm:", err)
		return 2
	}
	if errors.Is(err, runner.ErrInterrupted) {
		fmt.Fprintln(os.Stderr, "fcdpm:", err)
		return 3
	}
	fmt.Fprintf(os.Stderr, "fcdpm: %+v\n", err)
	return 1
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		usage()
		return usagef("missing subcommand")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "curves":
		return cmdCurves(rest)
	case "trace":
		return cmdTrace(rest)
	case "run":
		return cmdRun(rest)
	case "exp1":
		return cmdExp(ctx, rest, 1)
	case "exp2":
		return cmdExp(ctx, rest, 2)
	case "motiv":
		return cmdMotiv(rest)
	case "sweep":
		return cmdSweep(ctx, rest)
	case "oracle":
		return cmdOracle(rest)
	case "hydrogen":
		return cmdHydrogen(rest)
	case "levels":
		return cmdLevels(rest)
	case "plot":
		return cmdPlot(rest)
	case "runfile":
		return cmdRunFile(ctx, rest)
	case "faults":
		return cmdFaults(ctx, rest)
	case "stats":
		return cmdStats(rest)
	case "verify":
		return cmdVerify(rest)
	case "ablate":
		return cmdAblate(ctx, rest)
	case "advise":
		return cmdAdvise(rest)
	case "batch":
		return cmdBatch(ctx, rest)
	case "serve":
		return cmdServe(ctx, rest)
	case "devicesim":
		return cmdDeviceSim(ctx, rest)
	case "dispatchd":
		return cmdDispatchd(ctx, rest)
	case "workd":
		return cmdWorkd(ctx, rest)
	case "bench":
		return cmdBench(rest)
	case "chaos":
		return cmdChaos(ctx, rest)
	case "version":
		return cmdVersion(rest)
	case "robust":
		return cmdRobust(ctx, rest)
	case "charge":
		return cmdCharge(rest)
	case "multistack":
		return cmdMultiStack(ctx, rest)
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return usagef("unknown subcommand %q", cmd)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fcdpm <subcommand> [flags]

subcommands:
  curves   dump the FC stack I-V-P curve (Fig 2) and efficiency curves (Fig 3)
  trace    generate a workload trace (camcorder MPEG or Exp 2 synthetic)
  run      simulate one policy over a trace and report fuel/lifetime
  exp1     reproduce Table 2 (Experiment 1, camcorder trace)
  exp2     reproduce Table 3 (Experiment 2, synthetic trace)
  motiv    reproduce the §3.2 / Fig 4 motivational example
  sweep    run an ablation sweep (capacity, beta, or rho); with -remote,
           submit scenario files to a dispatcher as a distributed sweep,
           tail its progress, and fetch the result rows
  oracle   offline dynamic-programming lower bound vs online FC-DPM
  hydrogen Table 2 in physical hydrogen terms (grams, litres, cartridge life)
  levels   discrete FC output-level sweep (multi-level config of [11])
  plot     ASCII chart of fig2, fig3, or fig7 in the terminal
  runfile  run a JSON scenario file (see scenarios/ for examples)
  stats    summary statistics of a generated trace
  verify   run the reproduction conformance suite (paper vs measured)
  ablate   run one ablation (thermal, actuation, battery, aggregation,
           calibration, slew, mpc, timeout, storage, dpm)
  advise   hybrid sizing advice for a workload/device pair
  batch    run several JSON scenarios concurrently and tabulate them;
           with -journal the batch checkpoints each finished scenario
           and a re-run resumes where it was interrupted
  robust   Monte-Carlo robustness of the FC-DPM saving under model
           uncertainty
  serve    run the simulation service: an HTTP/JSON API that executes
           scenario specs on a shared bounded pool, streams progress as
           NDJSON, and answers repeated scenarios byte-identically from
           a content-addressed result cache (see README "Serving")
  devicesim drive a fleet of virtual devices against a serve target:
           -count concurrent device agents with deterministic identities
           submit scenario runs on a jittered cadence, honor 429/503 +
           Retry-After, tail async runs to resolution, export their own
           /metrics, and print a client-side latency/shed/coalesce/
           cache-hit report; -plan prints the seed-reproducible
           population and schedule without contacting the server
  dispatchd run the sweep dispatcher: a durable shard queue that leases
           work to workd daemons, reclaims expired leases, journals
           every transition, and survives restarts mid-sweep
           (see README "Distributed sweeps")
  workd    run a worker daemon: lease shards from a dispatcher, execute
           them locally, push results at-least-once, spool to disk when
           the dispatcher is unreachable
  bench    run the benchmark-regression suite, write a BENCH_*.json
           artifact, and (with -compare) fail on throughput regression
           against the latest stored artifact
  chaos    run seeded fault-injection trials against an in-process
           dispatcher + two-worker fabric (network cuts, 503 storms,
           torn journal appends, disk-full, bit-rot, clock skew, one
           hard restart per trial) and check the fabric's invariants;
           a failing seed reproduces with -trials 1 -seed S
  version  print the build identity (module version, VCS revision, Go)
  charge   ASCII plot of the storage charge trajectory under a policy
  multistack
           K-stack rack allocation study on the datacenter racksurge
           workload: equal-split vs water-filling vs health-rotation
           across rack sizes and surge intensities; -assert fails the
           process unless water-filling strictly beats equal-split
  faults   list fault classes and run the per-policy fault sweep
           (fuel / survival under each fault class, with graceful
           degradation through the FC-DPM -> ASAP -> Conv -> load-shed
           fallback chain); supports -journal resume like batch

exit status: 0 ok, 1 run failure, 2 usage error, 3 interrupted but
resumable (re-run with the same -journal to continue).

run 'fcdpm <subcommand> -h' for flags.`)
}
