// Command fcdpm is the command-line front end of the library: it generates
// workload traces, dumps the fuel-cell characteristic curves, runs single
// policy simulations, and reproduces the paper's experiments.
//
// Usage:
//
//	fcdpm curves   [-points N] [-out dir]
//	fcdpm trace    [-kind camcorder|synthetic] [-seed N] [-duration S] [-format csv|json] [-out file]
//	fcdpm run      [-policy conv|asap|fcdpm|flat] [-kind camcorder|synthetic] [-seed N] [-cmax A-s] [-reserve A-s] [-flat A]
//	fcdpm exp1     [-seed N]
//	fcdpm exp2     [-seed N]
//	fcdpm motiv
//	fcdpm sweep    [-what capacity|beta|rho] [-seed N]
//	fcdpm faults   [-seed N] [-list]
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

func main() {
	// Ctrl-C / SIGTERM cancels the context; long runs (sweeps, batch
	// scenarios) stop between slots instead of being killed mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fcdpm:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "curves":
		return cmdCurves(rest)
	case "trace":
		return cmdTrace(rest)
	case "run":
		return cmdRun(rest)
	case "exp1":
		return cmdExp(rest, 1)
	case "exp2":
		return cmdExp(rest, 2)
	case "motiv":
		return cmdMotiv(rest)
	case "sweep":
		return cmdSweep(rest)
	case "oracle":
		return cmdOracle(rest)
	case "hydrogen":
		return cmdHydrogen(rest)
	case "levels":
		return cmdLevels(rest)
	case "plot":
		return cmdPlot(rest)
	case "runfile":
		return cmdRunFile(ctx, rest)
	case "faults":
		return cmdFaults(ctx, rest)
	case "stats":
		return cmdStats(rest)
	case "verify":
		return cmdVerify(rest)
	case "ablate":
		return cmdAblate(rest)
	case "advise":
		return cmdAdvise(rest)
	case "batch":
		return cmdBatch(rest)
	case "robust":
		return cmdRobust(rest)
	case "charge":
		return cmdCharge(rest)
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fcdpm <subcommand> [flags]

subcommands:
  curves   dump the FC stack I-V-P curve (Fig 2) and efficiency curves (Fig 3)
  trace    generate a workload trace (camcorder MPEG or Exp 2 synthetic)
  run      simulate one policy over a trace and report fuel/lifetime
  exp1     reproduce Table 2 (Experiment 1, camcorder trace)
  exp2     reproduce Table 3 (Experiment 2, synthetic trace)
  motiv    reproduce the §3.2 / Fig 4 motivational example
  sweep    run an ablation sweep (capacity, beta, or rho)
  oracle   offline dynamic-programming lower bound vs online FC-DPM
  hydrogen Table 2 in physical hydrogen terms (grams, litres, cartridge life)
  levels   discrete FC output-level sweep (multi-level config of [11])
  plot     ASCII chart of fig2, fig3, or fig7 in the terminal
  runfile  run a JSON scenario file (see scenarios/ for examples)
  stats    summary statistics of a generated trace
  verify   run the reproduction conformance suite (paper vs measured)
  ablate   run one ablation (thermal, actuation, battery, aggregation,
           calibration, slew, mpc, timeout, storage, dpm)
  advise   hybrid sizing advice for a workload/device pair
  batch    run several JSON scenarios concurrently and tabulate them
  robust   Monte-Carlo robustness of the FC-DPM saving under model
           uncertainty
  charge   ASCII plot of the storage charge trajectory under a policy
  faults   list fault classes and run the per-policy fault sweep
           (fuel / survival under each fault class, with graceful
           degradation through the FC-DPM -> ASAP -> Conv -> load-shed
           fallback chain)

run 'fcdpm <subcommand> -h' for flags.`)
}
