package fcdpm

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md §4 and EXPERIMENTS.md). Each benchmark both
// measures the cost of regenerating the artifact and — once per run —
// prints the same rows/series the paper reports, so
//
//	go test -bench=. -benchmem
//
// doubles as the reproduction harness. cmd/fcdpm-bench writes the same
// artifacts to CSV files; performance regressions are gated separately by
// `fcdpm bench` (internal/perf, DESIGN.md §9), which runs a small stable
// suite repeatedly and compares BENCH_*.json artifacts across commits.

import (
	"fmt"
	"sync"
	"testing"

	"fcdpm/internal/dvs"
	"fcdpm/internal/exp"
	"fcdpm/internal/report"
)

// printOnce gates the human-readable artifact dump to one emission per
// process, so -benchtime iterations do not spam the output.
var printOnce sync.Map

func once(name string, f func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		f()
	}
}

// BenchmarkFig2StackCurve regenerates the stack I-V-P characteristic
// (Fig 2).
func BenchmarkFig2StackCurve(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts := exp.Fig2Series(60)
		if len(pts) == 0 {
			b.Fatal("empty series")
		}
	}
	once("fig2", func() {
		pts := exp.Fig2Series(16)
		tab := report.NewTable("\nFig 2 — BCS 20W stack I-V-P characteristic", "Ifc (A)", "Vfc (V)", "P (W)")
		for _, p := range pts {
			tab.AddRow(fmt.Sprintf("%.2f", p.Ifc), fmt.Sprintf("%.2f", p.Vfc), fmt.Sprintf("%.2f", p.Power))
		}
		fmt.Println(tab)
	})
}

// BenchmarkFig3Efficiency regenerates the three efficiency curves (Fig 3).
func BenchmarkFig3Efficiency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig3Series(60); err != nil {
			b.Fatal(err)
		}
	}
	once("fig3", func() {
		pts, err := exp.Fig3Series(14)
		if err != nil {
			fmt.Println("fig3:", err)
			return
		}
		tab := report.NewTable("\nFig 3 — efficiency vs FC system output current",
			"IF (A)", "(a) stack", "(b) system prop-fan", "Eq 2 linear", "(c) system on/off-fan")
		for _, p := range pts {
			tab.AddRow(fmt.Sprintf("%.2f", p.IF), report.Percent(p.StackEff),
				report.Percent(p.SystemProportional), report.Percent(p.LinearModel),
				report.Percent(p.SystemOnOff))
		}
		fmt.Println(tab)
	})
}

// BenchmarkFig4Motivational regenerates the §3.2 / Fig 4 worked example.
func BenchmarkFig4Motivational(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.MotivationalExample(); err != nil {
			b.Fatal(err)
		}
	}
	once("fig4", func() {
		m, err := exp.MotivationalExample()
		if err != nil {
			fmt.Println("fig4:", err)
			return
		}
		tab := report.NewTable("\n§3.2 / Fig 4 — motivational example (Ti=20s@0.2A, Ta=10s@1.2A)",
			"Setting", "Fuel (A-s)", "Paper")
		tab.AddRow("(a) Conv-DPM", fmt.Sprintf("%.2f", m.ConvFuel), "36 (w/ Ifc≈IF)")
		tab.AddRow("(b) ASAP-DPM", fmt.Sprintf("%.2f", m.ASAPFuel), "16")
		tab.AddRow("(c) FC-DPM", fmt.Sprintf("%.2f", m.FCDPMFuel), "13.45")
		fmt.Println(tab)
		fmt.Printf("optimal IF = %.3f A (paper 0.53), Ifc = %.3f A (paper 0.448), "+
			"saving vs ASAP = %s (paper 15.9%%), delivered energy = %.0f J (paper 192)\n",
			m.OptimalIF, m.OptimalIfc, report.Percent(m.SavingVsASAP), m.DeliveredEnergy)
	})
}

// comparisonTable renders a Table 2/3-style comparison.
func comparisonTable(title string, cmp *exp.Comparison, paperNorm map[string]string) string {
	tab := report.NewTable(title, "DPM policy", "Fuel (A-s)", "Avg Ifc (A)", "Normalized", "Paper")
	for _, r := range cmp.Rows {
		tab.AddRow(r.Name, fmt.Sprintf("%.1f", r.Fuel), fmt.Sprintf("%.4f", r.AvgRate),
			report.Percent(r.Normalized), paperNorm[r.Name])
	}
	return tab.String()
}

// BenchmarkTable2Exp1 regenerates Table 2 (Experiment 1, camcorder trace).
func BenchmarkTable2Exp1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Experiment1(1); err != nil {
			b.Fatal(err)
		}
	}
	once("table2", func() {
		cmp, err := exp.Experiment1(1)
		if err != nil {
			fmt.Println("table2:", err)
			return
		}
		fmt.Println()
		fmt.Print(comparisonTable("Table 2 — normalized fuel consumption, Experiment 1", cmp,
			map[string]string{"Conv-DPM": "100%", "ASAP-DPM": "40.8%", "FC-DPM": "30.8%"}))
		fmt.Printf("FC-DPM saving vs ASAP-DPM = %s (paper 24.4%%), lifetime extension = %.2fx (paper 1.32x)\n",
			report.Percent(cmp.SavingVsASAP), cmp.LifetimeRatio)
	})
}

// BenchmarkTable3Exp2 regenerates Table 3 (Experiment 2, synthetic trace).
func BenchmarkTable3Exp2(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Experiment2(2); err != nil {
			b.Fatal(err)
		}
	}
	once("table3", func() {
		cmp, err := exp.Experiment2(2)
		if err != nil {
			fmt.Println("table3:", err)
			return
		}
		fmt.Println()
		fmt.Print(comparisonTable("Table 3 — normalized fuel consumption, Experiment 2", cmp,
			map[string]string{"Conv-DPM": "100%", "ASAP-DPM": "49.1%", "FC-DPM": "41.5%"}))
		fmt.Printf("FC-DPM saving vs ASAP-DPM = %s (paper 15.5%%)\n", report.Percent(cmp.SavingVsASAP))
	})
}

// BenchmarkFig7Profiles regenerates the 300 s current profiles (Fig 7).
func BenchmarkFig7Profiles(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Fig7(1, 300); err != nil {
			b.Fatal(err)
		}
	}
	once("fig7", func() {
		fig, err := exp.Fig7(1, 300)
		if err != nil {
			fmt.Println("fig7:", err)
			return
		}
		fmt.Printf("\nFig 7 — 300 s current profiles (camcorder trace): "+
			"%d load/ASAP steps, %d FC-DPM steps; first steps:\n", len(fig.ASAP), len(fig.FCDPM))
		n := 8
		if len(fig.ASAP) < n {
			n = len(fig.ASAP)
		}
		tab := report.NewTable("", "t (s)", "load (A)", "ASAP IF (A)")
		for _, p := range fig.ASAP[:n] {
			tab.AddRow(fmt.Sprintf("%.2f", p.T), fmt.Sprintf("%.3f", p.Load), fmt.Sprintf("%.3f", p.IF))
		}
		fmt.Println(tab)
		tab2 := report.NewTable("", "t (s)", "load (A)", "FC-DPM IF (A)")
		m := 8
		if len(fig.FCDPM) < m {
			m = len(fig.FCDPM)
		}
		for _, p := range fig.FCDPM[:m] {
			tab2.AddRow(fmt.Sprintf("%.2f", p.T), fmt.Sprintf("%.3f", p.Load), fmt.Sprintf("%.3f", p.IF))
		}
		fmt.Println(tab2)
	})
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationCapacity sweeps the storage capacity.
func BenchmarkAblationCapacity(b *testing.B) {
	b.ReportAllocs()
	caps := []float64{1, 3, 6, 12, 24, 60}
	for i := 0; i < b.N; i++ {
		if _, err := exp.CapacitySweep(1, caps); err != nil {
			b.Fatal(err)
		}
	}
	once("capacity", func() {
		pts, err := exp.CapacitySweep(1, caps)
		if err != nil {
			fmt.Println("capacity sweep:", err)
			return
		}
		tab := report.NewTable("\nAblation — storage capacity vs FC-DPM advantage",
			"Cmax (A-s)", "FC-DPM vs Conv", "Saving vs ASAP")
		for _, p := range pts {
			tab.AddRow(p.X, report.Percent(p.FCNormalized), report.Percent(p.SavingVsASAP))
		}
		fmt.Println(tab)
	})
}

// BenchmarkAblationBeta sweeps the efficiency slope β.
func BenchmarkAblationBeta(b *testing.B) {
	b.ReportAllocs()
	betas := []float64{0, 0.05, 0.13, 0.20, 0.30}
	for i := 0; i < b.N; i++ {
		if _, err := exp.BetaSweep(1, betas); err != nil {
			b.Fatal(err)
		}
	}
	once("beta", func() {
		pts, err := exp.BetaSweep(1, betas)
		if err != nil {
			fmt.Println("beta sweep:", err)
			return
		}
		tab := report.NewTable("\nAblation — efficiency slope β vs FC-DPM advantage",
			"β", "FC-DPM vs Conv", "Saving vs ASAP")
		for _, p := range pts {
			tab.AddRow(p.X, report.Percent(p.FCNormalized), report.Percent(p.SavingVsASAP))
		}
		fmt.Println(tab)
	})
}

// BenchmarkAblationPredictors compares idle-period predictors.
func BenchmarkAblationPredictors(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.PredictorAblation(1); err != nil {
			b.Fatal(err)
		}
	}
	once("predictors", func() {
		rows, err := exp.PredictorAblation(1)
		if err != nil {
			fmt.Println("predictor ablation:", err)
			return
		}
		tab := report.NewTable("\nAblation — idle-period predictor choice",
			"Predictor", "MAE (s)", "RMSE (s)", "Over-rate", "FC-DPM vs Conv")
		for _, r := range rows {
			tab.AddRow(r.Predictor, fmt.Sprintf("%.2f", r.Accuracy.MAE),
				fmt.Sprintf("%.2f", r.Accuracy.RMSE), report.Percent(r.Accuracy.OverRate),
				report.Percent(r.FCNormalized))
		}
		fmt.Println(tab)
	})
}

// BenchmarkAblationConstantEta reruns Exp 1 under the flat-ηs configuration
// of [10, 11].
func BenchmarkAblationConstantEta(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.ConstantEtaAblation(1); err != nil {
			b.Fatal(err)
		}
	}
	once("consteta", func() {
		linear, constant, err := exp.ConstantEtaAblation(1)
		if err != nil {
			fmt.Println("constant-eta ablation:", err)
			return
		}
		fmt.Printf("\nAblation — efficiency model: linear-η saving vs ASAP = %s, constant-η = %s "+
			"(flattening buys nothing when the fuel map is linear)\n",
			report.Percent(linear.SavingVsASAP), report.Percent(constant.SavingVsASAP))
	})
}

// BenchmarkAblationStorageModel contrasts the ideal supercap with the KiBaM
// Li-ion model.
func BenchmarkAblationStorageModel(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.StorageModelAblation(1); err != nil {
			b.Fatal(err)
		}
	}
	once("storagemodel", func() {
		super, liion, err := exp.StorageModelAblation(1)
		if err != nil {
			fmt.Println("storage ablation:", err)
			return
		}
		fmt.Printf("\nAblation — storage model: supercap FC-DPM = %s of Conv, Li-ion (KiBaM) = %s\n",
			report.Percent(super.Row("FC-DPM").Normalized), report.Percent(liion.Row("FC-DPM").Normalized))
	})
}

// BenchmarkAblationDPMMode compares device-side sleep policies.
func BenchmarkAblationDPMMode(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.DPMModeAblation(1); err != nil {
			b.Fatal(err)
		}
	}
	once("dpmmode", func() {
		modes, err := exp.DPMModeAblation(1)
		if err != nil {
			fmt.Println("dpm ablation:", err)
			return
		}
		tab := report.NewTable("\nAblation — device-side DPM mode (FC-DPM source policy)",
			"Mode", "Avg Ifc (A)", "Sleeps")
		for _, name := range []string{"predictive", "oracle-sleep", "always-sleep", "never-sleep"} {
			r := modes[name].Row("FC-DPM")
			tab.AddRow(name, fmt.Sprintf("%.4f", r.AvgRate), r.Sleeps)
		}
		fmt.Println(tab)
	})
}

// BenchmarkAblationFlatOracle measures FC-DPM's gap to the offline flat
// bound.
func BenchmarkAblationFlatOracle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.FlatOracle(1); err != nil {
			b.Fatal(err)
		}
	}
	once("flatoracle", func() {
		flat, fc, err := exp.FlatOracle(1)
		if err != nil {
			fmt.Println("flat oracle:", err)
			return
		}
		fmt.Printf("\nAblation — offline flat bound: flat avg Ifc = %.4f A, FC-DPM = %.4f A (gap %s)\n",
			flat.AvgFuelRate(), fc.AvgFuelRate(),
			report.Percent(fc.AvgFuelRate()/flat.AvgFuelRate()-1))
	})
}

// --- Micro-benchmarks of the core primitives ---

// BenchmarkOptimizeSlot measures the per-slot optimizer, the operation
// FC-DPM performs online at every idle-period start.
func BenchmarkOptimizeSlot(b *testing.B) {
	sys := PaperSystem()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := OptimizeSlot(sys, 6, OptSlot{
			Ti: 14, IldI: 0.2, Ta: 3.03, IldA: 1.22, Cini: 1, Cend: 1,
			Sleep:    true,
			Overhead: &OptOverhead{TauWU: 0.5, IWU: 0.4, TauPD: 0.5, IPD: 0.4},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateSlotThroughput measures raw simulation throughput in
// slots/op over the camcorder trace, on the steady-state fast path: a
// reused SimRunner at the fuel-only record level (zero allocations per
// run once warm).
func BenchmarkSimulateSlotThroughput(b *testing.B) {
	sys := PaperSystem()
	dev := Camcorder()
	trace, err := CamcorderTrace(1)
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewSimRunner(SimConfig{
		Sys: sys, Dev: dev, Store: MustSuperCap(6, 1),
		Trace: trace, Policy: NewFCDPM(sys, dev),
		Record: RecordFuelOnly,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(trace.Len()), "slots/op")
}

// batchVariantLanes builds K scenario-variant lanes over the Experiment 1
// camcorder trace for the batched core: 8 distinct dynamics (Conv, ASAP,
// FC-DPM, and quantized FC-DPM at 5 level counts) replicated round-robin,
// so at K=64 each dynamics fingerprint carries 8 identical lanes and the
// run-grouping collapses them onto one executing leader.
func batchVariantLanes(b *testing.B, k int) []SimLane {
	b.Helper()
	sys := PaperSystem()
	dev := Camcorder()
	trace, err := CamcorderTrace(1)
	if err != nil {
		b.Fatal(err)
	}
	quant := func(n int) Policy {
		p, err := NewFCDPMQuantized(sys, dev, UniformLevels(sys, n))
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	variants := []func() Policy{
		func() Policy { return NewConv(sys) },
		func() Policy { return NewASAP(sys) },
		func() Policy { return NewFCDPM(sys, dev) },
		func() Policy { return quant(3) },
		func() Policy { return quant(4) },
		func() Policy { return quant(6) },
		func() Policy { return quant(8) },
		func() Policy { return quant(12) },
	}
	lanes := make([]SimLane, k)
	for i := range lanes {
		lanes[i] = SimLane{Cfg: SimConfig{
			Sys: sys, Dev: dev, Store: MustSuperCap(6, 1),
			Trace: trace, Policy: variants[i%len(variants)](),
			Record: RecordFuelOnly,
		}}
	}
	return lanes
}

// BenchmarkBatchSlotThroughput measures the batched core's aggregate
// slot throughput at lane widths 1, 8, and 64 over the Experiment 1
// trace. slots/op counts lane-slots (trace length × K), so ns/op ÷
// slots/op is the per-lane-slot cost — the number that must fall ≥3×
// below the K=1 scalar baseline at K=64, where the 8 recording copies
// per dynamics fingerprint collapse onto 8 executing leaders.
func BenchmarkBatchSlotThroughput(b *testing.B) {
	for _, k := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			lanes := batchVariantLanes(b, k)
			slots := lanes[0].Cfg.Trace.Len() * k
			r, err := NewBatchRunner(lanes)
			if err != nil {
				b.Fatal(err)
			}
			// Warm-up: lazily grown buffers settle on the first pass.
			if _, err := r.Run(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := r.Run()
				if err != nil {
					b.Fatal(err)
				}
				for _, lr := range out {
					if lr.Err != nil {
						b.Fatal(lr.Err)
					}
				}
			}
			b.ReportMetric(float64(slots), "slots/op")
		})
	}
}

// BenchmarkBatchSequentialBaseline is the before picture for
// BenchmarkBatchSlotThroughput/K=64: the same 64 variant lanes executed
// one scalar SimRunner at a time. The acceptance bar is the batched
// ns/op landing at least 3× below this number.
func BenchmarkBatchSequentialBaseline(b *testing.B) {
	lanes := batchVariantLanes(b, 64)
	slots := lanes[0].Cfg.Trace.Len() * len(lanes)
	runners := make([]*SimRunner, len(lanes))
	for i, ln := range lanes {
		r, err := NewSimRunner(ln.Cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.Run(); err != nil {
			b.Fatal(err)
		}
		runners[i] = r
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range runners {
			if _, err := r.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(slots), "slots/op")
}

// BenchmarkStackCurrent measures the Eq 4 fuel map.
func BenchmarkStackCurrent(b *testing.B) {
	b.ReportAllocs()
	sys := PaperSystem()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += sys.StackCurrent(0.1 + float64(i%11)*0.1)
	}
	_ = sink
}

// BenchmarkAblationQuantizedLevels sweeps discrete FC output-level counts
// (the multi-level configuration of [11]).
func BenchmarkAblationQuantizedLevels(b *testing.B) {
	b.ReportAllocs()
	counts := []int{2, 3, 4, 8, 16}
	for i := 0; i < b.N; i++ {
		if _, err := exp.QuantizedSweep(1, counts); err != nil {
			b.Fatal(err)
		}
	}
	once("quantized", func() {
		rows, err := exp.QuantizedSweep(1, counts)
		if err != nil {
			fmt.Println("quantized sweep:", err)
			return
		}
		tab := report.NewTable("\nAblation — discrete FC output levels (multi-level config of [11])",
			"Levels", "Fuel (A-s)", "FC-DPM vs Conv", "Gap vs continuous")
		for _, r := range rows {
			name := fmt.Sprintf("%d", r.Levels)
			if r.Levels == 0 {
				name = "continuous"
			}
			tab.AddRow(name, fmt.Sprintf("%.1f", r.Fuel), report.Percent(r.FCNormalized),
				report.Percent(r.GapVsCont))
		}
		fmt.Println(tab)
	})
}

// BenchmarkAblationOfflineDP measures the dynamic-programming offline
// oracle and FC-DPM's gap to it.
func BenchmarkAblationOfflineDP(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.OfflineOracleDP(1, 48); err != nil {
			b.Fatal(err)
		}
	}
	once("offlinedp", func() {
		offline, online, err := exp.OfflineOracleDP(1, 48)
		if err != nil {
			fmt.Println("offline DP:", err)
			return
		}
		fmt.Printf("\nAblation — offline DP oracle: offline avg Ifc = %.4f A, online FC-DPM = %.4f A (prediction cost %s)\n",
			offline.AvgFuelRate(), online.AvgFuelRate(),
			report.Percent(online.AvgFuelRate()/offline.AvgFuelRate()-1))
	})
}

// BenchmarkAblationTimeoutDPM compares classic timeout DPM to the paper's
// predictive DPM under the FC-DPM source policy.
func BenchmarkAblationTimeoutDPM(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.TimeoutAblation(1); err != nil {
			b.Fatal(err)
		}
	}
	once("timeout", func() {
		pred, timeout, err := exp.TimeoutAblation(1)
		if err != nil {
			fmt.Println("timeout ablation:", err)
			return
		}
		fmt.Printf("\nAblation — device DPM: predictive avg Ifc = %.4f A, timeout(Tbe) = %.4f A (dwell cost %s)\n",
			pred.AvgFuelRate(), timeout.AvgFuelRate(),
			report.Percent(timeout.AvgFuelRate()/pred.AvgFuelRate()-1))
	})
}

// BenchmarkHydrogenReport converts Table 2 into physical hydrogen terms.
func BenchmarkHydrogenReport(b *testing.B) {
	b.ReportAllocs()
	cmp, err := exp.Experiment1(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Hydrogen(cmp, 10); err != nil {
			b.Fatal(err)
		}
	}
	once("hydrogen", func() {
		reports, err := exp.Hydrogen(cmp, 10)
		if err != nil {
			fmt.Println("hydrogen:", err)
			return
		}
		tab := report.NewTable("\nHydrogen accounting — 28-min trace on a 10 g H2 cartridge (20-cell stack)",
			"Policy", "H2 burned (g)", "H2 (L STP)", "Cartridge life (h)", "End-to-end η")
		for _, r := range reports {
			tab.AddRow(r.Policy, fmt.Sprintf("%.3f", r.Grams), fmt.Sprintf("%.2f", r.LitresSTP),
				fmt.Sprintf("%.1f", r.LifetimeHours), report.Percent(r.EndToEndEff))
		}
		fmt.Println(tab)
	})
}

// BenchmarkMultiSeed reports cross-seed reproduction error bars.
func BenchmarkMultiSeed(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.MultiSeed(1, 5); err != nil {
			b.Fatal(err)
		}
	}
	once("multiseed", func() {
		sum, err := exp.MultiSeed(1, 5)
		if err != nil {
			fmt.Println("multi-seed:", err)
			return
		}
		fmt.Printf("\nExperiment 1 across %d seeds: ASAP %.1f%%±%.1f, FC-DPM %.1f%%±%.1f, saving %.1f%%±%.1f (paper: 40.8 / 30.8 / 24.4)\n",
			sum.Seeds,
			100*sum.ASAPNorm.Mean, 100*sum.ASAPNorm.Stddev,
			100*sum.FCNorm.Mean, 100*sum.FCNorm.Stddev,
			100*sum.SavingVsASAP.Mean, 100*sum.SavingVsASAP.Stddev)
	})
}

// BenchmarkAblationSlewRate measures both policies under FC fuel-flow
// slew-rate limits.
func BenchmarkAblationSlewRate(b *testing.B) {
	b.ReportAllocs()
	rates := []float64{0, 0.5, 0.1, 0.02}
	for i := 0; i < b.N; i++ {
		if _, err := exp.SlewAblation(1, rates); err != nil {
			b.Fatal(err)
		}
	}
	once("slew", func() {
		rows, err := exp.SlewAblation(1, rates)
		if err != nil {
			fmt.Println("slew ablation:", err)
			return
		}
		tab := report.NewTable("\nAblation — FC output slew-rate limit (0 = ideal source)",
			"Rate (A/s)", "ASAP Ifc (A)", "ASAP deficit (A-s)", "FC-DPM Ifc (A)", "FC-DPM deficit (A-s)")
		for _, r := range rows {
			tab.AddRow(r.RateAps, fmt.Sprintf("%.4f", r.ASAPRate), fmt.Sprintf("%.2f", r.ASAPDeficit),
				fmt.Sprintf("%.4f", r.FCRate), fmt.Sprintf("%.2f", r.FCDeficit))
		}
		fmt.Println(tab)
	})
}

// BenchmarkDVSStudy runs the prior-work [10] DVS companion study.
func BenchmarkDVSStudy(b *testing.B) {
	b.ReportAllocs()
	proc := dvs.XScale600()
	proc.LeakPower = 1.1
	task := dvs.Task{Cycles: 3e8, Period: 4, Jobs: 50}
	for i := 0; i < b.N; i++ {
		if _, err := exp.RunDVSStudy(proc, task); err != nil {
			b.Fatal(err)
		}
	}
	once("dvs", func() {
		study, err := exp.RunDVSStudy(proc, task)
		if err != nil {
			fmt.Println("dvs study:", err)
			return
		}
		tab := report.NewTable("\nDVS companion study ([10]) — fuel vs processor speed",
			"Level", "Freq (MHz)", "Load (A)", "ASAP Ifc (A)", "FC-DPM Ifc (A)")
		for _, r := range study.Rows {
			tab.AddRow(fmt.Sprintf("L%d", r.Level), fmt.Sprintf("%.0f", r.FreqMHz),
				fmt.Sprintf("%.3f", r.LoadA), fmt.Sprintf("%.4f", r.ASAPRate),
				fmt.Sprintf("%.4f", r.FCRate))
		}
		fmt.Println(tab)
		fmt.Printf("energy optimum L%d; ASAP fuel optimum L%d; FC-DPM fuel optimum L%d\n",
			study.EnergyOptimal, study.ASAPOptimal, study.FCOptimal)
	})
}

// BenchmarkAblationBatteryAware quantifies the paper's §1 claim that
// battery-aware shaping does not transfer to fuel cells.
func BenchmarkAblationBatteryAware(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := exp.BatteryAwareAblation(1); err != nil {
			b.Fatal(err)
		}
	}
	once("batteryaware", func() {
		ba, fc, err := exp.BatteryAwareAblation(1)
		if err != nil {
			fmt.Println("battery-aware ablation:", err)
			return
		}
		fmt.Printf("\nAblation — battery-aware shaping on the FC hybrid: battery-aware avg Ifc = %.4f A vs FC-DPM %.4f A (%s more fuel)\n",
			ba.AvgFuelRate(), fc.AvgFuelRate(),
			report.Percent(ba.AvgFuelRate()/fc.AvgFuelRate()-1))
	})
}

// BenchmarkAblationAggregation measures idle aggregation (task
// procrastination, [6, 7]) under FC-DPM.
func BenchmarkAblationAggregation(b *testing.B) {
	b.ReportAllocs()
	ks := []int{1, 2, 4, 8}
	for i := 0; i < b.N; i++ {
		if _, err := exp.AggregationAblation(1, ks); err != nil {
			b.Fatal(err)
		}
	}
	once("aggregation", func() {
		rows, err := exp.AggregationAblation(1, ks)
		if err != nil {
			fmt.Println("aggregation ablation:", err)
			return
		}
		tab := report.NewTable("\nAblation — idle aggregation / task procrastination ([6, 7])",
			"k", "Max deferral (s)", "Sleeps", "FC-DPM Ifc (A)")
		for _, r := range rows {
			tab.AddRow(r.K, fmt.Sprintf("%.1f", r.MaxDeferral), r.Sleeps, fmt.Sprintf("%.4f", r.FCRate))
		}
		fmt.Println(tab)
	})
}

// BenchmarkExperiment3HeavyTail runs the beyond-paper heavy-tail workload:
// the three source policies plus the sleep-policy comparison where
// reactive timeout beats history-based prediction.
func BenchmarkExperiment3HeavyTail(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Experiment3(3); err != nil {
			b.Fatal(err)
		}
	}
	once("exp3", func() {
		cmp, err := exp.Experiment3(3)
		if err != nil {
			fmt.Println("exp3:", err)
			return
		}
		fmt.Println()
		fmt.Print(comparisonTable("Experiment 3 — heavy-tail idle workload (beyond paper)", cmp, nil))
		rows, err := exp.Experiment3DPM(3)
		if err != nil {
			fmt.Println("exp3 dpm:", err)
			return
		}
		tab := report.NewTable("Sleep-policy comparison under FC-DPM (Pareto idles, Tbe = 10 s)",
			"DPM mode", "Sleeps", "Avg Ifc (A)", "Deficit (A-s)")
		for _, r := range rows {
			tab.AddRow(r.Mode, r.Sleeps, fmt.Sprintf("%.4f", r.FCRate), fmt.Sprintf("%.3f", r.Deficit))
		}
		fmt.Println(tab)
	})
}

// BenchmarkAblationActuation measures the dead-band policy: set-point
// commands vs fuel.
func BenchmarkAblationActuation(b *testing.B) {
	b.ReportAllocs()
	eps := []float64{0, 0.02, 0.05, 0.1, 0.2}
	for i := 0; i < b.N; i++ {
		if _, err := exp.ActuationAblation(1, eps); err != nil {
			b.Fatal(err)
		}
	}
	once("actuation", func() {
		rows, err := exp.ActuationAblation(1, eps)
		if err != nil {
			fmt.Println("actuation ablation:", err)
			return
		}
		tab := report.NewTable("\nAblation — actuation dead band (FC-DPM-band)",
			"ε (A)", "Set-point commands", "Avg Ifc (A)")
		for _, r := range rows {
			tab.AddRow(r.Epsilon, r.Setpoints, fmt.Sprintf("%.4f", r.FCRate))
		}
		fmt.Println(tab)
	})
}

// BenchmarkAblationCalibration propagates ±10 % calibration error in
// (α, β) through Table 2.
func BenchmarkAblationCalibration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.CalibrationUncertainty(1, 0.1); err != nil {
			b.Fatal(err)
		}
	}
	once("calibration", func() {
		rows, err := exp.CalibrationUncertainty(1, 0.1)
		if err != nil {
			fmt.Println("calibration:", err)
			return
		}
		tab := report.NewTable("\nAblation — ±10% calibration uncertainty on (α, β)",
			"α", "β", "FC-DPM vs Conv", "Saving vs ASAP")
		for _, r := range rows {
			tab.AddRow(fmt.Sprintf("%.3f", r.Alpha), fmt.Sprintf("%.3f", r.Beta),
				report.Percent(r.FCNormalized), report.Percent(r.SavingVsASAP))
		}
		fmt.Println(tab)
	})
}

// BenchmarkExperiment4HDD runs the disk-platform generality check.
func BenchmarkExperiment4HDD(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.Experiment4(4); err != nil {
			b.Fatal(err)
		}
	}
	once("exp4", func() {
		cmp, err := exp.Experiment4(4)
		if err != nil {
			fmt.Println("exp4:", err)
			return
		}
		fmt.Println()
		fmt.Print(comparisonTable("Experiment 4 — HDD media player on a 5 W-class FC (beyond paper)", cmp, nil))
	})
}

// BenchmarkAblationThermalStress integrates the lumped stack-temperature
// model over each policy's output profile.
func BenchmarkAblationThermalStress(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.ThermalStressAblation(1); err != nil {
			b.Fatal(err)
		}
	}
	once("thermal", func() {
		rows, err := exp.ThermalStressAblation(1)
		if err != nil {
			fmt.Println("thermal:", err)
			return
		}
		tab := report.NewTable("\nAblation — stack thermal stress (post-warm-up)",
			"Policy", "Mean (°C)", "Swing (°C)", "Cycles")
		for _, r := range rows {
			tab.AddRow(r.Policy, fmt.Sprintf("%.1f", r.Stress.Mean),
				fmt.Sprintf("%.1f", r.Stress.Swing), r.Stress.CycleCount)
		}
		fmt.Println(tab)
	})
}

// BenchmarkAblationMPC measures the receding-horizon variant — the
// documented negative result that lookahead buys nothing at the paper's
// storage scale.
func BenchmarkAblationMPC(b *testing.B) {
	b.ReportAllocs()
	horizons := []int{1, 3, 5}
	for i := 0; i < b.N; i++ {
		if _, err := exp.MPCAblation(1, horizons); err != nil {
			b.Fatal(err)
		}
	}
	once("mpc", func() {
		rows, err := exp.MPCAblation(1, horizons)
		if err != nil {
			fmt.Println("mpc:", err)
			return
		}
		tab := report.NewTable("\nAblation — receding-horizon FC-DPM (negative result: horizon buys nothing here)",
			"Horizon", "Avg Ifc (A)")
		for _, r := range rows {
			tab.AddRow(r.Horizon, fmt.Sprintf("%.4f", r.FCRate))
		}
		fmt.Println(tab)
	})
}

// BenchmarkConformance runs the full paper-vs-measured conformance suite.
func BenchmarkConformance(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		checks, err := exp.Conformance(1)
		if err != nil {
			b.Fatal(err)
		}
		if !exp.Passed(checks) {
			b.Fatal("conformance failed")
		}
	}
	once("conformance", func() {
		checks, _ := exp.Conformance(1)
		pass := 0
		for _, c := range checks {
			if c.Pass {
				pass++
			}
		}
		fmt.Printf("\nConformance: %d/%d paper-vs-measured checks pass (run `fcdpm verify` for the full table)\n",
			pass, len(checks))
	})
}

// BenchmarkBurstyPredictors runs the regime-switching predictor study —
// the workload class where predictor choice finally matters end to end.
func BenchmarkBurstyPredictors(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.BurstyPredictorStudy(4); err != nil {
			b.Fatal(err)
		}
	}
	once("bursty", func() {
		rows, err := exp.BurstyPredictorStudy(4)
		if err != nil {
			fmt.Println("bursty:", err)
			return
		}
		tab := report.NewTable("\nBursty (regime-switching) workload — idle predictor choice under FC-DPM",
			"Predictor", "MAE (s)", "Over-rate", "FC-DPM vs Conv")
		for _, r := range rows {
			tab.AddRow(r.Predictor, fmt.Sprintf("%.2f", r.Accuracy.MAE),
				report.Percent(r.Accuracy.OverRate), report.Percent(r.FCNormalized))
		}
		fmt.Println(tab)
	})
}

// BenchmarkRobustness runs the Monte-Carlo model-uncertainty study.
func BenchmarkRobustness(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exp.RobustnessStudy(1, 10, 0.1); err != nil {
			b.Fatal(err)
		}
	}
	once("robust", func() {
		r, err := exp.RobustnessStudy(1, 20, 0.1)
		if err != nil {
			fmt.Println("robustness:", err)
			return
		}
		fmt.Printf("\nMonte-Carlo robustness (±10%% device+efficiency, %d trials): FC-DPM wins %d/%d, saving %s ± %s (min %s)\n",
			r.Trials, r.Wins, r.Trials, report.Percent(r.Saving.Mean),
			report.Percent(r.Saving.Stddev), report.Percent(r.Saving.Min))
	})
}
