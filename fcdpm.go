// Package fcdpm is a Go reproduction of "Dynamic Power Management with
// Hybrid Power Sources" (Zhuo, Chakrabarti, Lee, Chang — DAC 2007): a
// fuel-efficient dynamic power management policy (FC-DPM) for embedded
// systems powered by a fuel-cell + charge-storage hybrid source, together
// with the full substrate needed to evaluate it — fuel-cell stack and
// system models, DC-DC converter and controller models, charge-storage
// models, a DPM-enabled device model, workload-trace generators, period
// predictors, the per-slot fuel-optimization framework, a trace-driven
// simulator, and the experiment harness that regenerates every table and
// figure of the paper.
//
// This package is the public facade: it re-exports the library's primary
// types and constructors so downstream users need a single import. The
// implementation lives in the internal packages (see DESIGN.md for the
// module map); everything exposed here is a direct alias or thin wrapper.
//
// # Quick start
//
//	sys := fcdpm.PaperSystem()                  // 12 V FC system, ηs = 0.45 − 0.13·IF
//	dev := fcdpm.Camcorder()                    // Fig 6 power-state machine
//	trace, _ := fcdpm.CamcorderTrace(1)         // 28-min MPEG encode/write workload
//	res, _ := fcdpm.Run(fcdpm.SimConfig{
//		Sys: sys, Dev: dev,
//		Store:  fcdpm.NewSuperCap(6, 1),
//		Trace:  trace,
//		Policy: fcdpm.NewFCDPM(sys, dev),
//	})
//	fmt.Println(res.Fuel, res.Lifetime(3600))
//
// See the examples directory for complete programs.
package fcdpm

import (
	"context"

	"fcdpm/internal/device"
	"fcdpm/internal/dvs"
	"fcdpm/internal/exp"
	"fcdpm/internal/fault"
	"fcdpm/internal/fcopt"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/multistack"
	"fcdpm/internal/policy"
	"fcdpm/internal/predict"
	"fcdpm/internal/sim"
	"fcdpm/internal/stochdpm"
	"fcdpm/internal/storage"
	"fcdpm/internal/workload"
)

// Fuel-cell power source types.
type (
	// System is the FC system as the policies see it: regulated voltage,
	// load-following range, efficiency map, and the fuel-rate map
	// Ifc(IF) of Eq 3/4.
	System = fuelcell.System
	// Stack is the Larminie–Dicks polarization model of the FC stack.
	Stack = fuelcell.Stack
	// StackParams parameterizes a Stack.
	StackParams = fuelcell.StackParams
	// EfficiencyModel maps FC output current to system efficiency ηs.
	EfficiencyModel = fuelcell.EfficiencyModel
	// LinearEfficiency is the paper's Eq 2 model ηs = α − β·IF.
	LinearEfficiency = fuelcell.LinearEfficiency
	// ConstantEfficiency is the flat-ηs model of the authors' earlier
	// configuration [10, 11].
	ConstantEfficiency = fuelcell.ConstantEfficiency
	// Converter models a DC-DC converter's efficiency.
	Converter = fuelcell.Converter
	// Controller models the FC balance-of-plant (fans, solenoid, MCU).
	Controller = fuelcell.Controller
	// ChainEfficiency derives ηs from the stack/converter/controller
	// chain.
	ChainEfficiency = fuelcell.ChainEfficiency
	// IVPoint is one sample of the stack I-V-P characteristic (Fig 2).
	IVPoint = fuelcell.IVPoint
)

// Storage types.
type (
	// Storage is the charge buffer between the FC output and the load.
	Storage = storage.Storage
	// SuperCapacitor is the ideal coulomb buffer the paper assumes.
	SuperCapacitor = storage.SuperCap
	// LiIon is a kinetic battery model with rate-capacity and recovery
	// effects, for battery-contrast ablations.
	LiIon = storage.LiIon
	// Flow reports stored/bled/deficit charge from a storage update.
	Flow = storage.Flow
)

// Device and workload types.
type (
	// Device is the DPM-enabled embedded-system power model.
	Device = device.Model
	// PowerState is RUN, STANDBY, or SLEEP.
	PowerState = device.State
	// Trace is a task-slot workload.
	Trace = workload.Trace
	// TraceSlot is one idle+active task slot.
	TraceSlot = workload.Slot
	// CamcorderConfig parameterizes the MPEG trace generator.
	CamcorderConfig = workload.CamcorderConfig
	// SyntheticConfig parameterizes the Experiment 2 trace generator.
	SyntheticConfig = workload.SyntheticConfig
)

// Prediction types.
type (
	// Predictor forecasts the next idle/active period or active current.
	Predictor = predict.Predictor
	// PredictAccuracy reports MAE/RMSE/over-prediction rate.
	PredictAccuracy = predict.Accuracy
)

// Optimization types (the paper's §3 framework).
type (
	// OptSlot specifies one task slot for the fuel optimizer.
	OptSlot = fcopt.Slot
	// OptOverhead carries the §3.3.2 sleep-transition costs.
	OptOverhead = fcopt.Overhead
	// OptSetting is the optimizer's per-slot FC output decision.
	OptSetting = fcopt.Setting
)

// Simulation types.
type (
	// SimConfig assembles one simulation run.
	SimConfig = sim.Config
	// Result summarizes a run (fuel, energy, profiles, lifetime).
	Result = sim.Result
	// Policy is an FC-output control policy.
	Policy = sim.Policy
	// DPMMode selects the device-side sleep policy.
	DPMMode = sim.DPMMode
	// ProfilePoint is one step of a recorded current profile (Fig 7).
	ProfilePoint = sim.ProfilePoint
	// SimRunner is a reusable simulation arena: allocate once with
	// NewSimRunner, call Run repeatedly with zero steady-state
	// allocations (sweeps, benchmarks, services).
	//
	// CAUTION: the *Result returned by SimRunner.Run / RunContext
	// aliases the runner's internal buffers. It is valid only until the
	// next Run call, which rewinds and overwrites those buffers in
	// place. Copy any fields (including slices such as Profile, Charges,
	// and SlotLog) that must outlive the next run. Results from the
	// one-shot Run / RunContext package functions do not alias anything
	// and are safe to retain.
	SimRunner = sim.Runner
	// RecordLevel selects how much per-run detail a simulation records.
	RecordLevel = sim.RecordLevel
	// SimLane is one scenario variant of a batched run: a SimConfig plus
	// an optional grouping key asserting "same simulation as any lane
	// with an equal key".
	SimLane = sim.Lane
	// LaneResult is one lane's outcome from a BatchRunner run. Res
	// aliases the batch runner's internal buffers (same caution as
	// SimRunner results).
	LaneResult = sim.LaneResult
	// BatchRunner executes K scenario variants in lockstep over one
	// trace walk, collapsing identical-dynamics lanes to a single
	// simulation while guaranteeing every lane's Result is bit-identical
	// to a sequential run. Allocate once with NewBatchRunner; Run is
	// allocation-free at steady state on fault-free lanes.
	BatchRunner = sim.BatchRunner
	// BatchKeyer is the optional grouping identity a policy, predictor,
	// or storage element can expose to let BatchRunner group lanes.
	BatchKeyer = sim.BatchKeyer
)

// Recording levels for SimConfig.Record.
const (
	// RecordAuto derives the level from the legacy RecordProfile /
	// RecordSlots booleans.
	RecordAuto = sim.RecordAuto
	// RecordFuelOnly records scalar totals only — the zero-allocation
	// fast path for sweeps that never read Profile/Charges/SlotLog.
	RecordFuelOnly = sim.RecordFuelOnly
	// RecordFull records the Fig 7 profiles and the per-slot audit log.
	RecordFull = sim.RecordFull
)

// Experiment-harness types.
type (
	// Comparison is a Table 2/3-style policy comparison.
	Comparison = exp.Comparison
	// PolicyRow is one line of a Comparison.
	PolicyRow = exp.PolicyRow
	// Scenario bundles a full experiment configuration.
	Scenario = exp.Scenario
	// Motivational is the §3.2 worked example (Fig 4).
	Motivational = exp.Motivational
)

// Device-side DPM modes.
const (
	DPMPredictive  = sim.DPMPredictive
	DPMNeverSleep  = sim.DPMNeverSleep
	DPMAlwaysSleep = sim.DPMAlwaysSleep
	DPMOracle      = sim.DPMOracle
)

// Power states.
const (
	StateRun     = device.Run
	StateStandby = device.Standby
	StateSleep   = device.Sleep
)

// PaperSystem returns the FC system of the paper's experiments: VF = 12 V,
// ζ = 37.5, load-following range [0.1 A, 1.2 A], ηs = 0.45 − 0.13·IF.
func PaperSystem() *System { return fuelcell.PaperSystem() }

// NewSystem builds a custom FC system description.
func NewSystem(vf, zeta, minOut, maxOut float64, eff EfficiencyModel) (*System, error) {
	return fuelcell.NewSystem(vf, zeta, minOut, maxOut, eff)
}

// BCS20W returns the polarization model calibrated to the paper's BCS 20 W
// stack (Fig 2).
func BCS20W() *Stack { return fuelcell.BCS20W() }

// NewStack builds a custom stack model.
func NewStack(p StackParams) (*Stack, error) { return fuelcell.NewStack(p) }

// NewPWMPFMConverter returns the paper's high-efficiency DC-DC converter.
func NewPWMPFMConverter(vout float64) Converter { return fuelcell.NewPWMPFMConverter(vout) }

// NewPWMConverter returns a plain PWM converter (poor light-load
// efficiency), the earlier-work configuration.
func NewPWMConverter(vout float64) Converter { return fuelcell.NewPWMConverter(vout) }

// ProportionalController returns the variable-speed fan controller.
func ProportionalController() Controller { return fuelcell.ProportionalController() }

// OnOffController returns the constant-speed + on/off cooling fan
// controller.
func OnOffController() Controller { return fuelcell.OnOffController() }

// NewChainEfficiency derives an ηs(IF) model from physical components.
func NewChainEfficiency(s *Stack, c Converter, ctrl Controller) (*ChainEfficiency, error) {
	return fuelcell.NewChainEfficiency(s, c, ctrl)
}

// NewSuperCap returns an ideal supercapacitor with capacity cmax A-s
// holding q0, or a typed storage error for a non-positive capacity.
func NewSuperCap(cmax, q0 float64) (*SuperCapacitor, error) { return storage.NewSuperCap(cmax, q0) }

// MustSuperCap is NewSuperCap for compile-time-fixed parameters; it panics
// on the error a literal capacity cannot produce.
func MustSuperCap(cmax, q0 float64) *SuperCapacitor { return storage.MustSuperCap(cmax, q0) }

// PaperSuperCap returns the experiments' 1 F / 100 mA-min supercapacitor,
// full.
func PaperSuperCap() *SuperCapacitor { return storage.PaperSuperCap() }

// NewLiIon returns a KiBaM battery model.
func NewLiIon(cmax, c, k, q0 float64) (*LiIon, error) { return storage.NewLiIon(cmax, c, k, q0) }

// Camcorder returns the paper's DVD-camcorder device model (Fig 6).
func Camcorder() *Device { return device.Camcorder() }

// SyntheticDevice returns the Experiment 2 device model.
func SyntheticDevice() *Device { return device.Synthetic() }

// CamcorderTrace generates the Experiment 1 MPEG encode/write trace with
// the default configuration and the given seed.
func CamcorderTrace(seed uint64) (*Trace, error) {
	cfg := workload.DefaultCamcorderConfig()
	cfg.Seed = seed
	return workload.Camcorder(cfg)
}

// GenerateCamcorderTrace generates an MPEG trace with a custom
// configuration.
func GenerateCamcorderTrace(cfg CamcorderConfig) (*Trace, error) { return workload.Camcorder(cfg) }

// SyntheticTrace generates the Experiment 2 trace with the default
// configuration and the given seed.
func SyntheticTrace(seed uint64) (*Trace, error) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Seed = seed
	return workload.Synthetic(cfg)
}

// GenerateSyntheticTrace generates a synthetic trace with a custom
// configuration.
func GenerateSyntheticTrace(cfg SyntheticConfig) (*Trace, error) { return workload.Synthetic(cfg) }

// DefaultCamcorderConfig returns the Experiment 1 generator configuration.
func DefaultCamcorderConfig() CamcorderConfig { return workload.DefaultCamcorderConfig() }

// DefaultSyntheticConfig returns the Experiment 2 generator configuration.
func DefaultSyntheticConfig() SyntheticConfig { return workload.DefaultSyntheticConfig() }

// PeriodicTrace returns n identical idle/active slots.
func PeriodicTrace(n int, idle, active, activeCurrent float64) *Trace {
	return workload.Periodic(n, idle, active, activeCurrent)
}

// NewExpAverage returns the paper's Eq 14/15 exponential-average
// predictor. An out-of-range rho is a *predict.ConfigError; use
// MustExpAverage for fixed literals.
func NewExpAverage(rho, initial float64) (Predictor, error) {
	return predict.NewExpAverage(rho, initial)
}

// MustExpAverage is NewExpAverage for fixed in-range literals; it panics
// on a construction error.
func MustExpAverage(rho, initial float64) Predictor { return predict.MustExpAverage(rho, initial) }

// NewLastValue returns a last-value predictor.
func NewLastValue(initial float64) Predictor { return predict.NewLastValue(initial) }

// NewRegressionPredictor returns a sliding-window linear-regression
// predictor [2]. A window below 2 is a *predict.ConfigError.
func NewRegressionPredictor(window int, initial float64) (Predictor, error) {
	return predict.NewRegression(window, initial)
}

// MustRegressionPredictor is NewRegressionPredictor for fixed valid
// literals; it panics on a construction error.
func MustRegressionPredictor(window int, initial float64) Predictor {
	return predict.MustRegression(window, initial)
}

// NewTreePredictor returns an adaptive-learning-tree predictor [3].
// Out-of-range parameters are a *predict.ConfigError.
func NewTreePredictor(levels, depth int, lo, hi, initial float64) (Predictor, error) {
	return predict.NewTree(levels, depth, lo, hi, initial)
}

// MustTreePredictor is NewTreePredictor for fixed valid literals; it
// panics on a construction error.
func MustTreePredictor(levels, depth int, lo, hi, initial float64) Predictor {
	return predict.MustTree(levels, depth, lo, hi, initial)
}

// NewMarkovPredictor returns a first-order Markov-chain predictor over
// quantized levels (the stochastic-control modelling of [4, 5]).
// Out-of-range parameters are a *predict.ConfigError.
func NewMarkovPredictor(levels int, lo, hi, initial float64) (Predictor, error) {
	return predict.NewMarkov(levels, lo, hi, initial)
}

// MustMarkovPredictor is NewMarkovPredictor for fixed valid literals; it
// panics on a construction error.
func MustMarkovPredictor(levels int, lo, hi, initial float64) Predictor {
	return predict.MustMarkov(levels, lo, hi, initial)
}

// EvaluatePredictor streams a series through a predictor and reports
// accuracy. An empty series is an error.
func EvaluatePredictor(p Predictor, series []float64) (PredictAccuracy, error) {
	return predict.Evaluate(p, series)
}

// NewConv returns the Conv-DPM baseline policy.
func NewConv(sys *System) Policy { return policy.NewConv(sys) }

// NewASAP returns the ASAP-DPM load-following baseline policy.
func NewASAP(sys *System) Policy { return policy.NewASAP(sys) }

// NewFCDPM returns the paper's FC-DPM policy (Fig 5).
func NewFCDPM(sys *System, dev *Device) Policy { return policy.NewFCDPM(sys, dev) }

// NewFlat returns a fixed-output policy (offline flat oracle).
func NewFlat(sys *System, iF float64) Policy { return policy.NewFlat(sys, iF) }

// OptimizeSlot runs the §3 fuel-optimization framework on one task slot.
func OptimizeSlot(sys *System, cmax float64, s OptSlot) (OptSetting, error) {
	return fcopt.Optimize(sys, cmax, s)
}

// Run executes a trace-driven simulation.
func Run(cfg SimConfig) (*Result, error) { return sim.Run(cfg) }

// RunContext is Run with cancellation: the simulation stops between slots
// when ctx is done and returns a *sim.CanceledError.
func RunContext(ctx context.Context, cfg SimConfig) (*Result, error) {
	return sim.RunContext(ctx, cfg)
}

// NewSimRunner validates cfg and allocates a reusable simulation arena.
// Repeated Run calls reuse every buffer, so steady-state runs are
// allocation-free at RecordFuelOnly. The returned *Result aliases the
// runner's internal buffers and is INVALID after the next Run call —
// copy anything that must survive (see the SimRunner type note).
func NewSimRunner(cfg SimConfig) (*SimRunner, error) { return sim.NewRunner(cfg) }

// NewBatchRunner validates the lanes (which must share one trace), groups
// identical-dynamics lanes, and allocates a reusable batched arena. See
// the BatchRunner type note for the aliasing caution.
func NewBatchRunner(lanes []SimLane) (*BatchRunner, error) { return sim.NewBatchRunner(lanes) }

// Fault-injection types (the robustness subsystem).
type (
	// FaultKind names a fault class (stack dropout, capacity fade, ...).
	FaultKind = fault.Kind
	// FaultEvent is one timed fault on a schedule.
	FaultEvent = fault.Event
	// FaultSchedule is the set of faults injected into a run.
	FaultSchedule = fault.Schedule
	// FaultGenConfig parameterizes the deterministic schedule generator.
	FaultGenConfig = fault.GenConfig
	// RunEvent is one audit-log entry (fault transition, invariant trip,
	// or policy fallback) of a supervised run.
	RunEvent = sim.RunEvent
	// SupervisorConfig tunes the graceful-degradation supervisor.
	SupervisorConfig = sim.SupervisorConfig
	// InvariantError reports a violated simulation invariant.
	InvariantError = sim.InvariantError
)

// GenerateFaults draws a deterministic random fault schedule from a seed.
func GenerateFaults(cfg FaultGenConfig) (*FaultSchedule, error) { return fault.Generate(cfg) }

// Experiment1 reproduces the paper's Table 2 (camcorder MPEG trace).
func Experiment1(seed uint64) (*Comparison, error) { return exp.Experiment1(seed) }

// Experiment2 reproduces the paper's Table 3 (synthetic trace).
func Experiment2(seed uint64) (*Comparison, error) { return exp.Experiment2(seed) }

// MotivationalExample reproduces the §3.2 / Fig 4 worked example.
func MotivationalExample() (*Motivational, error) { return exp.MotivationalExample() }

// Extension types: quantized output, offline oracle, hydrogen accounting.
type (
	// OfflineProblem is a whole-trace fuel-minimization instance solved
	// by dynamic programming (the true offline lower bound).
	OfflineProblem = fcopt.OfflineProblem
	// OfflineSchedule is the DP result: per-slot settings plus fuel.
	OfflineSchedule = fcopt.OfflineSchedule
	// HydrogenAccounting converts stack amp-seconds into physical H2.
	HydrogenAccounting = fuelcell.Hydrogen
)

// NewFCDPMQuantized returns FC-DPM restricted to discrete output levels
// (the multi-level configuration of the authors' companion work [11]),
// or a typed policy error for an empty or out-of-range level set.
func NewFCDPMQuantized(sys *System, dev *Device, levels []float64) (Policy, error) {
	return policy.NewFCDPMQuantized(sys, dev, levels)
}

// NewSchedule returns a policy replaying a precomputed per-slot schedule,
// typically from SolveOffline.
func NewSchedule(sys *System, settings []OptSetting) Policy {
	return policy.NewSchedule(sys, settings)
}

// OptimizeSlotQuantized solves one slot over a discrete output-level set.
func OptimizeSlotQuantized(sys *System, cmax float64, s OptSlot, levels []float64) (OptSetting, error) {
	return fcopt.OptimizeQuantized(sys, cmax, s, levels)
}

// UniformLevels returns n evenly spaced output levels over the system's
// load-following range.
func UniformLevels(sys *System, n int) []float64 { return fcopt.UniformLevels(sys, n) }

// SolveOffline computes the minimum-fuel whole-trace schedule by dynamic
// programming over the storage state.
func SolveOffline(p OfflineProblem) (*OfflineSchedule, error) { return fcopt.SolveOffline(p) }

// PaperHydrogen returns the hydrogen converter for the paper's 20-cell
// stack.
func PaperHydrogen() HydrogenAccounting { return fuelcell.PaperHydrogen() }

// DVS companion types ([10]).
type (
	// DVSProcessor is a DVS-capable processor model.
	DVSProcessor = dvs.Processor
	// DVSLevel is one voltage/frequency operating point.
	DVSLevel = dvs.Level
	// DVSTask is a periodic job: cycles, period, job count.
	DVSTask = dvs.Task
)

// XScale600 returns an XScale-class five-level processor model.
func XScale600() *DVSProcessor { return dvs.XScale600() }

// DVSEnergyOptimalLevel returns the feasible level minimizing load charge
// per period (classic DVS).
func DVSEnergyOptimalLevel(p *DVSProcessor, t DVSTask, idleCurrent float64) int {
	return dvs.EnergyOptimalLevel(p, t, idleCurrent)
}

// DVSFuelOptimalLevel returns the feasible level minimizing fuel per period
// under a load-following source (the [10] objective).
func DVSFuelOptimalLevel(sys *System, p *DVSProcessor, t DVSTask, idleCurrent float64) int {
	return dvs.FuelOptimalLevel(sys, p, t, idleCurrent)
}

// Stochastic-control DPM ([4, 5]) and workload-shaping extensions.

// TimeoutAdapter serves per-slot timeouts for the timeout DPM mode.
type TimeoutAdapter = sim.TimeoutAdapter

// NewAdaptiveTimeout returns a timeout adapter that learns the idle-length
// distribution over a sliding window and serves the expected-cost-optimal
// timeout (the stochastic-control approach of [4, 5]).
func NewAdaptiveTimeout(dev *Device, window int) (TimeoutAdapter, error) {
	return stochdpm.NewAdaptiveTimeout(dev, window)
}

// OptimalTimeout returns the timeout minimizing expected idle-period
// charge over the given idle-length samples.
func OptimalTimeout(dev *Device, samples []float64) float64 {
	return stochdpm.OptimalTimeout(dev, samples)
}

// HeavyTailConfig parameterizes the Pareto-idle stress workload.
type HeavyTailConfig = workload.HeavyTailConfig

// DefaultHeavyTailConfig returns the Experiment 3 configuration.
func DefaultHeavyTailConfig() HeavyTailConfig { return workload.DefaultHeavyTailConfig() }

// HeavyTailTrace generates a Pareto-idle trace.
func HeavyTailTrace(cfg HeavyTailConfig) (*Trace, error) { return workload.HeavyTail(cfg) }

// AggregateTrace merges groups of k consecutive slots (task
// procrastination, [6, 7]); MaxDeferral reports the worst task delay it
// imposes.
func AggregateTrace(t *Trace, k int) (*Trace, error) { return workload.Aggregate(t, k) }

// MaxDeferral reports the worst-case task-completion delay of
// AggregateTrace(t, k).
func MaxDeferral(t *Trace, k int) (float64, error) { return workload.MaxDeferral(t, k) }

// NewBatteryAware returns the battery-centric shaping strategy used by the
// contrast ablation (§1: battery-aware DPM does not transfer to FCs).
func NewBatteryAware(sys *System) Policy { return policy.NewBatteryAware(sys) }

// Thermal stress analysis and additional presets.

// Thermal is the lumped stack-temperature model for post-hoc thermal
// stress analysis of output profiles.
type Thermal = fuelcell.Thermal

// ThermalStress summarizes a temperature trajectory.
type ThermalStress = fuelcell.ThermalStress

// PaperThermal returns thermal parameters for the BCS 20 W-class stack.
func PaperThermal() Thermal { return fuelcell.PaperThermal() }

// HDD returns a 2.5-inch disk-drive device model (spin-up-dominated
// break-even time ≈ 16 s).
func HDD() *Device { return device.HDD() }

// SlotRecord is one entry of the per-slot audit log (SimConfig.RecordSlots).
type SlotRecord = sim.SlotRecord

// SizingAdvice is the hybrid design advisor's output (the §2.2 argument as
// a function): FC range feasibility plus storage-capacity recommendation.
type SizingAdvice = exp.Advice

// Advise analyses a workload/device pair against an FC system and
// recommends the storage sizing FC-DPM needs.
func Advise(sys *System, dev *Device, tr *Trace) (*SizingAdvice, error) {
	return exp.Advise(sys, dev, tr)
}

// BurstyConfig parameterizes the regime-switching (Markov-modulated)
// workload generator.
type BurstyConfig = workload.BurstyConfig

// DefaultBurstyConfig returns the regime-switching study configuration.
func DefaultBurstyConfig() BurstyConfig { return workload.DefaultBurstyConfig() }

// BurstyTrace generates a two-regime workload with correlated idle lengths.
func BurstyTrace(cfg BurstyConfig) (*Trace, error) { return workload.Bursty(cfg) }

// TraceFromEvents converts an activity log (arrival/service/current events)
// into the slot representation the simulator consumes.
func TraceFromEvents(name string, events []workload.Event, leadIn float64) (*Trace, error) {
	return workload.FromEvents(name, events, leadIn)
}

// TraceEvent is one task request in an activity log.
type TraceEvent = workload.Event

// Multi-stack hybrid sources (K stacks behind one storage element).

// Rack is a K-stack hybrid power source aggregated under an allocation
// policy into a single System (see internal/multistack).
type Rack = multistack.Rack

// RackStack is one fuel-cell stack of a Rack: its system description,
// fractional efficiency degradation, and online/offline state.
type RackStack = multistack.Stack

// RackAllocator is a power-allocation policy splitting rack demand
// across stacks.
type RackAllocator = multistack.Allocator

// NewRack validates the stack set and pre-solves the aggregate system.
func NewRack(stacks []RackStack, alloc RackAllocator) (*Rack, error) {
	return multistack.New(stacks, alloc)
}

// UniformRack builds a rack of k identical stacks with a cycled
// degradation mix (nil means all healthy).
func UniformRack(sys *System, k int, alloc RackAllocator, degrade []float64) (*Rack, error) {
	return multistack.Uniform(sys, k, alloc, degrade)
}

// ParseRackAllocator maps a selector ("equal", "waterfill", "rotation")
// to an allocation policy.
func ParseRackAllocator(name string) (RackAllocator, error) {
	return multistack.ParseAllocator(name)
}

// RackAllocators returns the built-in allocation policies in comparison
// order: equal-split, water-filling, health-rotation.
func RackAllocators() []RackAllocator { return multistack.Allocators() }

// RackSurgeConfig parameterizes the datacenter rack workload generator:
// steady service work punctuated by power-surge episodes.
type RackSurgeConfig = workload.RackSurgeConfig

// DefaultRackSurgeConfig returns the surge-study configuration.
func DefaultRackSurgeConfig() RackSurgeConfig { return workload.DefaultRackSurgeConfig() }

// RackSurgeTrace generates the surge-modulated rack workload.
func RackSurgeTrace(cfg RackSurgeConfig) (*Trace, error) { return workload.RackSurge(cfg) }

// MultiStackConfig parameterizes the rack-allocation study.
type MultiStackConfig = exp.MultiStackConfig

// MultiStackRow is one (allocator, rack size, intensity) study cell.
type MultiStackRow = exp.MultiStackRow

// MultiStackStudy compares rack allocation policies across rack sizes
// and surge intensities on the racksurge workload.
func MultiStackStudy(cfg MultiStackConfig) ([]MultiStackRow, error) {
	return exp.MultiStackStudy(cfg)
}
