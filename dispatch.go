package fcdpm

import (
	"context"

	"fcdpm/internal/dispatch"
)

// This file exposes the distributed sweep fabric: the dispatcher behind
// `fcdpm dispatchd`, the worker daemon behind `fcdpm workd`, and the
// remote-sweep client behind `fcdpm sweep -remote` (see DESIGN.md §11).

// DispatchOptions tunes the dispatcher: listen address, durable state
// directory (journal + result cache), and the shard lease TTL. The zero
// value listens on 127.0.0.1:8081 with a 15 s lease.
type DispatchOptions = dispatch.Options

// ServeDispatcher runs the sweep dispatcher until ctx is canceled, then
// drains: leasing and admission stop with 503 + Retry-After while
// in-flight completions are still accepted. All accepted sweeps are
// journaled before they are acknowledged, so a restart — graceful or
// not — resumes them without losing or duplicating a shard.
func ServeDispatcher(ctx context.Context, opts DispatchOptions) error {
	return dispatch.Serve(ctx, opts)
}

// WorkerOptions tunes a worker daemon: the dispatcher URL, local pool
// width, per-shard timeout, and the disk spool used to buffer results
// while the dispatcher is unreachable.
type WorkerOptions = dispatch.WorkerOptions

// RunWorker runs a worker daemon until ctx is canceled, then drains:
// leasing stops, in-flight shards finish, and their results are pushed
// (or spooled to disk if the dispatcher is down).
func RunWorker(ctx context.Context, opts WorkerOptions) error {
	return dispatch.RunWorker(ctx, opts)
}

// RemoteSweepOptions tunes a remote sweep submission: dispatcher URL,
// sweep name, and the path to write the completed result rows to.
type RemoteSweepOptions = dispatch.ClientOptions

// RemoteSweepRequest is the sweep submission body: a name plus the raw
// scenario specs, one shard each.
type RemoteSweepRequest = dispatch.SweepRequest

// SubmitRemoteSweep submits a sweep to a dispatcher, tails its progress
// until it resolves (surviving dispatcher restarts), and downloads the
// result rows — byte-identical to a local batch of the same specs.
func SubmitRemoteSweep(ctx context.Context, opts RemoteSweepOptions, req RemoteSweepRequest) error {
	return dispatch.SubmitSweep(ctx, opts, req)
}
