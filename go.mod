module fcdpm

go 1.22
