package fcdpm_test

import (
	"fmt"

	"fcdpm"
)

// ExampleOptimizeSlot reproduces the paper's §3.2 motivational example:
// the fuel-optimal FC output for a 20 s idle at 0.2 A followed by a 10 s
// active burst at 1.2 A is the demand-weighted average current (Eq 11).
func ExampleOptimizeSlot() {
	sys := fcdpm.PaperSystem()
	set, err := fcdpm.OptimizeSlot(sys, 200, fcdpm.OptSlot{
		Ti: 20, IldI: 0.2,
		Ta: 10, IldA: 1.2,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("IF = %.3f A\n", set.IFi)
	fmt.Printf("Ifc = %.3f A\n", sys.StackCurrent(set.IFi))
	fmt.Printf("fuel = %.2f A-s\n", set.Fuel)
	// Output:
	// IF = 0.533 A
	// Ifc = 0.448 A
	// fuel = 13.45 A-s
}

// ExampleSystem_StackCurrent evaluates the paper's Eq 4 fuel map at the
// top of the load-following range — the Conv-DPM operating point.
func ExampleSystem_StackCurrent() {
	sys := fcdpm.PaperSystem()
	fmt.Printf("Ifc(1.2 A) = %.3f A\n", sys.StackCurrent(1.2))
	fmt.Printf("Ifc(0.2 A) = %.3f A\n", sys.StackCurrent(0.2))
	// Output:
	// Ifc(1.2 A) = 1.306 A
	// Ifc(0.2 A) = 0.151 A
}

// ExampleDevice_BreakEven shows the energy-derived break-even times of
// the paper's two devices.
func ExampleDevice_BreakEven() {
	fmt.Printf("camcorder Tbe = %.0f s\n", fcdpm.Camcorder().BreakEven())
	fmt.Printf("Exp 2 device Tbe = %.0f s\n", fcdpm.SyntheticDevice().BreakEven())
	// Output:
	// camcorder Tbe = 1 s
	// Exp 2 device Tbe = 10 s
}

// ExampleRun simulates one fully deterministic periodic workload under
// FC-DPM and reports the fuel relative to the Conv-DPM baseline.
func ExampleRun() {
	sys := fcdpm.PaperSystem()
	dev := fcdpm.Camcorder()
	trace := fcdpm.PeriodicTrace(50, 14, 3.03, 14.65/12)

	run := func(p fcdpm.Policy) float64 {
		res, err := fcdpm.Run(fcdpm.SimConfig{
			Sys: sys, Dev: dev,
			Store: fcdpm.MustSuperCap(6, 1), Trace: trace, Policy: p,
		})
		if err != nil {
			panic(err)
		}
		return res.AvgFuelRate()
	}
	conv := run(fcdpm.NewConv(sys))
	fc := run(fcdpm.NewFCDPM(sys, dev))
	fmt.Printf("FC-DPM uses %.0f%% of Conv-DPM's fuel\n", 100*fc/conv)
	// Output:
	// FC-DPM uses 30% of Conv-DPM's fuel
}

// ExampleOptimalTimeout shows the distribution-optimal timeout collapsing
// to "sleep immediately" when every idle period is long.
func ExampleOptimalTimeout() {
	dev := fcdpm.Camcorder()
	tau := fcdpm.OptimalTimeout(dev, []float64{120, 90, 300})
	fmt.Printf("optimal timeout = %.0f s\n", tau)
	// Output:
	// optimal timeout = 0 s
}
