package fcdpm

import (
	"context"
	"errors"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"fcdpm/internal/runner"
)

// TestMarkRetryableRoundTrip drives the facade's retry marker through
// the engine: a marked failure is re-attempted until it succeeds, an
// unmarked one fails fast, and the failure surfaces as a *RunError with
// its attempt count.
func TestMarkRetryableRoundTrip(t *testing.T) {
	calls := 0
	rep, err := runner.Run(context.Background(), runner.Options{
		Workers: 1, Retries: 3, BackoffBase: time.Microsecond, BackoffMax: time.Microsecond,
	}, []runner.Task[int]{
		{ID: "flaky", Run: func(context.Context) (int, error) {
			calls++
			if calls < 3 {
				return 0, MarkRetryable(errors.New("transient"))
			}
			return 42, nil
		}},
		{ID: "fatal", Run: func(context.Context) (int, error) {
			return 0, errors.New("deterministic")
		}},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Done != 1 || rep.Failed != 1 {
		t.Fatalf("report: %+v", rep)
	}
	for _, o := range rep.Outcomes {
		switch o.ID {
		case "flaky":
			if o.Status != runner.StatusDone || o.Result != 42 || o.Attempts != 3 {
				t.Fatalf("flaky outcome: %+v", o)
			}
		case "fatal":
			if o.Attempts != 1 {
				t.Fatalf("unmarked error was retried: %+v", o)
			}
			var re *RunError
			if !errors.As(o.Err, &re) || re.Attempts != 1 {
				t.Fatalf("failure not a *RunError: %v", o.Err)
			}
		}
	}
}

// TestFaultSweepOptsPassthrough verifies the facade forwards its
// orchestration options: the sweep journals under the given path, and a
// re-run resumes every cell instead of re-simulating any.
func TestFaultSweepOptsPassthrough(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	first, err := FaultSweepOpts(context.Background(), 3, FaultSweepOptions{
		Workers: 2, Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Rows) == 0 || first.Resumed != 0 {
		t.Fatalf("first pass: %d rows, %d resumed", len(first.Rows), first.Resumed)
	}
	second, err := FaultSweepOpts(context.Background(), 3, FaultSweepOptions{
		Workers: 2, Journal: journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.Resumed != len(second.Rows) {
		t.Fatalf("re-run resumed %d of %d cells", second.Resumed, len(second.Rows))
	}
	// Journaled rows must carry the same physics as fresh ones.
	if len(second.Rows) != len(first.Rows) {
		t.Fatalf("row count drifted: %d vs %d", len(second.Rows), len(first.Rows))
	}
	for i := range first.Rows {
		if first.Rows[i] != second.Rows[i] {
			t.Fatalf("row %d drifted across resume:\n%+v\n%+v", i, first.Rows[i], second.Rows[i])
		}
	}
}

// TestErrSweepInterruptedIdentity pins the facade alias to the engine
// sentinel — the CLI's exit-code-3 contract depends on errors.Is
// working across the boundary.
func TestErrSweepInterruptedIdentity(t *testing.T) {
	if !errors.Is(ErrSweepInterrupted, runner.ErrInterrupted) {
		t.Fatal("ErrSweepInterrupted lost its identity")
	}
	wrapped := &RunError{ID: "x", Err: runner.ErrInterrupted}
	if !errors.Is(wrapped, ErrSweepInterrupted) {
		t.Fatal("wrapped interruption not detected through the facade alias")
	}
}

// TestServeFacade boots the service through the facade, hits /healthz,
// and drains it by canceling the context — the library-level version of
// the CLI's SIGTERM path.
func TestServeFacade(t *testing.T) {
	if Build().Go == "" {
		t.Fatal("Build() missing toolchain")
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Serve(ctx, ServeOptions{Addr: "127.0.0.1:38471", Workers: 1})
	}()
	// Wait for the listener, then check liveness.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://127.0.0.1:38471/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Fatalf("healthz: %d", resp.StatusCode)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not drain")
	}
}
