// DVS demonstrates the companion result of the authors' prior work [10]
// on top of the fcdpm simulator: the processor speed that minimizes the
// embedded system's energy is not the speed that minimizes fuel when the
// FC system's efficiency declines with current.
//
// A periodic task runs at each voltage/frequency level of an XScale-class
// processor; each level's load profile goes through the hybrid source
// under both ASAP-DPM (load following) and FC-DPM (fuel-optimal flat
// output), and the fuel optima are compared against the classic energy
// optimum.
package main

import (
	"fmt"
	"log"

	"fcdpm/internal/dvs"
	"fcdpm/internal/exp"
)

func main() {
	proc := dvs.XScale600()
	proc.LeakPower = 1.1 // enough leakage that racing to idle can pay
	task := dvs.Task{Cycles: 3e8, Period: 4, Jobs: 100}

	study, err := exp.RunDVSStudy(proc, task)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("task: %.0f Mcycles every %.0f s on %s (leak %.2f W)\n\n",
		task.Cycles/1e6, task.Period, proc.Name, proc.LeakPower)
	fmt.Println("level  freq(MHz)  exec(s)  load(A)  charge/period(A-s)  ASAP Ifc(A)  FC-DPM Ifc(A)")
	for _, r := range study.Rows {
		marks := ""
		if r.Level == study.EnergyOptimal {
			marks += "  <- energy optimum"
		}
		if r.Level == study.ASAPOptimal {
			marks += "  <- ASAP fuel optimum"
		}
		if r.Level == study.FCOptimal {
			marks += "  <- FC-DPM fuel optimum"
		}
		fmt.Printf("L%d     %6.0f     %5.2f    %5.3f        %6.3f          %.4f       %.4f%s\n",
			r.Level, r.FreqMHz, r.ExecTime, r.LoadA, r.ChargePer, r.ASAPRate, r.FCRate, marks)
	}

	fmt.Println("\nReading the table:")
	fmt.Printf("- classic DVS (minimize device energy) picks L%d\n", study.EnergyOptimal)
	fmt.Printf("- under a load-following source, fuel is convex in current, so the\n")
	fmt.Printf("  fuel optimum sits at L%d — at or below the energy optimum\n", study.ASAPOptimal)
	fmt.Printf("- under FC-DPM the output is flat and only average charge matters,\n")
	fmt.Printf("  so its optimum L%d coincides with the energy optimum, and its fuel\n", study.FCOptimal)
	fmt.Printf("  is the lowest in every column — DPM and DVS compose cleanly\n")
}
