// Synthetic reproduces the paper's Experiment 2 and then explores how the
// FC-DPM advantage varies with workload randomness — widening the active-
// power spread and the idle-length spread beyond the paper's settings.
package main

import (
	"flag"
	"fmt"
	"log"

	"fcdpm"
)

func main() {
	seed := flag.Uint64("seed", 2, "trace seed")
	flag.Parse()

	cmp, err := fcdpm.Experiment2(*seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Experiment 2 — synthetic embedded-system profile")
	fmt.Println("policy      normalized fuel   paper")
	paper := map[string]string{"Conv-DPM": "100%", "ASAP-DPM": "49.1%", "FC-DPM": "41.5%"}
	for _, r := range cmp.Rows {
		fmt.Printf("%-11s %6.1f%%           %s\n", r.Name, 100*r.Normalized, paper[r.Name])
	}
	fmt.Printf("\nFC-DPM saves %.1f%% vs ASAP-DPM (paper: 15.5%%)\n\n", 100*cmp.SavingVsASAP)

	// Beyond the paper: how does burstiness change the picture? Hold the
	// mean load fixed and widen the idle distribution.
	fmt.Println("idle spread sweep (active U[2,4]s @ U[12,16]W, mean idle 15 s):")
	fmt.Println("idle range    FC-DPM vs Conv   saving vs ASAP")
	for _, spread := range []struct{ lo, hi float64 }{
		{14, 16}, {10, 20}, {5, 25}, {1, 29},
	} {
		saving, norm, err := runSpread(*seed, spread.lo, spread.hi)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%4.0f,%4.0f]s   %6.1f%%          %6.1f%%\n", spread.lo, spread.hi, 100*norm, 100*saving)
	}
}

// runSpread reruns the Experiment 2 setup with a custom idle range.
func runSpread(seed uint64, lo, hi float64) (saving, fcNorm float64, err error) {
	cfg := fcdpm.DefaultSyntheticConfig()
	cfg.Seed = seed
	cfg.IdleMin, cfg.IdleMax = lo, hi
	trace, err := fcdpm.GenerateSyntheticTrace(cfg)
	if err != nil {
		return 0, 0, err
	}
	sys := fcdpm.PaperSystem()
	dev := fcdpm.SyntheticDevice()
	run := func(p fcdpm.Policy) (*fcdpm.Result, error) {
		return fcdpm.Run(fcdpm.SimConfig{
			Sys: sys, Dev: dev,
			Store: fcdpm.MustSuperCap(6, 1), Trace: trace, Policy: p,
			CurrentPredictor: fcdpm.MustExpAverage(1, 1.2), // the paper's fixed 1.2 A estimate
		})
	}
	conv, err := run(fcdpm.NewConv(sys))
	if err != nil {
		return 0, 0, err
	}
	asap, err := run(fcdpm.NewASAP(sys))
	if err != nil {
		return 0, 0, err
	}
	fc, err := run(fcdpm.NewFCDPM(sys, dev))
	if err != nil {
		return 0, 0, err
	}
	return 1 - fc.AvgFuelRate()/asap.AvgFuelRate(), fc.AvgFuelRate() / conv.AvgFuelRate(), nil
}
