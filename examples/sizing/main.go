// Sizing is a design-space exploration the paper's §2.2 motivates: "If we
// use the FC alone, the load following range has to be large enough to
// handle the peak load power... If, however, we utilize a hybrid power
// source, the FC size can be chosen based on the average load, which is a
// lot smaller."
//
// The example sizes an FC stack for the camcorder workload three ways —
// peak-load standalone, average-load hybrid, and the paper's BCS 20 W —
// using the physical polarization chain, then quantifies the storage
// capacity each choice needs.
package main

import (
	"fmt"
	"log"

	"fcdpm"
)

func main() {
	trace, err := fcdpm.CamcorderTrace(1)
	if err != nil {
		log.Fatal(err)
	}
	dev := fcdpm.Camcorder()

	// Workload demand analysis from the trace and device model.
	peakLoad := 14.65 / 12.0 // RUN current, A @ 12 V
	st := trace.Statistics()
	// Average current over a slot cycle: idle in SLEEP (DPM active) plus
	// active at RUN, with transitions.
	avgIdle := st.Idle.Mean
	slotDur := avgIdle + st.Active.Mean + dev.TauWU + dev.TauSR + dev.TauRS
	slotCharge := dev.Islp*avgIdle +
		dev.IPD*dev.TauPD + dev.IWU*dev.TauWU +
		peakLoad*(st.Active.Mean+dev.TauSR+dev.TauRS)
	avgLoad := slotCharge / slotDur

	fmt.Printf("camcorder workload: peak load %.2f A (%.1f W), DPM average %.3f A (%.1f W)\n\n",
		peakLoad, peakLoad*12, avgLoad, avgLoad*12)

	// Size stacks by scaling the BCS-20W loss model: a stack rated for
	// power P is modelled as k parallel BCS-like branches.
	chain, err := fcdpm.NewChainEfficiency(fcdpm.BCS20W(), fcdpm.NewPWMPFMConverter(12), fcdpm.ProportionalController())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BCS 20W-class stack can supply up to %.2f A of system output\n", chain.MaxOutput())

	fmt.Println("\ndesign option            FC sized for   storage needed (A-s)   verdict")
	// Standalone FC: must cover the peak with no storage at all.
	fmt.Printf("standalone FC            %5.1f W        %6.1f                 pessimistic (4x average)\n",
		peakLoad*12/0.85, 0.0)

	// Hybrid options: FC covers a flat output level; storage must absorb
	// the worst-case active-period shortfall.
	for _, opt := range []struct {
		name string
		flat float64
	}{
		{"hybrid @ average load", avgLoad},
		{"hybrid @ paper range top", 1.2},
	} {
		// Worst-case continuous discharge: the longest active stretch at
		// peak load minus the FC contribution.
		activeStretch := st.Active.Max + dev.TauSR + dev.TauRS
		need := (peakLoad - opt.flat) * activeStretch
		if need < 0 {
			need = 0
		}
		fmt.Printf("%-24s %5.1f W        %6.1f                 %s\n",
			opt.name, opt.flat*12/0.85, need, verdict(need))
	}

	// Validate the average-load hybrid by simulation: does a modest
	// supercap actually carry it?
	fmt.Println("\nsimulated fuel per hour of operation (FC-DPM policy):")
	sys := fcdpm.PaperSystem()
	for _, cmax := range []float64{2, 4, 6, 12} {
		res, err := fcdpm.Run(fcdpm.SimConfig{
			Sys: sys, Dev: dev,
			Store:  fcdpm.MustSuperCap(cmax, cmax/6),
			Trace:  trace,
			Policy: fcdpm.NewFCDPM(sys, dev),
		})
		if err != nil {
			log.Fatal(err)
		}
		perHour := res.AvgFuelRate() * 3600
		fmt.Printf("  Cmax %5.1f A-s: %7.0f A-s/h fuel, deficit %.3f A-s\n", cmax, perHour, res.Deficit)
	}
}

func verdict(storageNeed float64) string {
	switch {
	case storageNeed == 0:
		return "no buffering needed"
	case storageNeed <= 6:
		return "fits the paper's 1 F supercap"
	default:
		return "needs a larger buffer"
	}
}
