// Quickstart: build the paper's FC hybrid power source, run the three DPM
// policies over a small periodic workload, and compare fuel consumption —
// the smallest end-to-end use of the public fcdpm API.
package main

import (
	"fmt"
	"log"

	"fcdpm"
)

func main() {
	// The FC system of the paper: 12 V output, ηs = 0.45 − 0.13·IF,
	// load-following range [0.1 A, 1.2 A], fuel map Ifc = 0.32·IF/ηs.
	sys := fcdpm.PaperSystem()

	// The DVD camcorder of Fig 6: RUN 14.65 W, STANDBY 4.84 W, SLEEP
	// 2.4 W, with the measured transition overheads.
	dev := fcdpm.Camcorder()

	// A simple periodic workload: 14 s idle then 3.03 s of DVD writing at
	// the RUN current, repeated 60 times (like a steady MPEG encode).
	trace := fcdpm.PeriodicTrace(60, 14, 3.03, 14.65/12)

	// The hybrid source's charge buffer: the paper's 100 mA-min
	// supercapacitor (6 A-s), held at a 1 A-s reserve so the FC-DPM
	// policy can cycle charge through it.
	newStore := func() fcdpm.Storage { return fcdpm.MustSuperCap(6, 1) }

	policies := []fcdpm.Policy{
		fcdpm.NewConv(sys),       // FC pinned at the top of its range
		fcdpm.NewASAP(sys),       // FC follows the load
		fcdpm.NewFCDPM(sys, dev), // the paper's fuel-optimal policy
	}

	fmt.Println("policy      fuel(A-s)  avg Ifc(A)  lifetime@1h-fuel(s)")
	var base float64
	for _, p := range policies {
		res, err := fcdpm.Run(fcdpm.SimConfig{
			Sys: sys, Dev: dev, Store: newStore(), Trace: trace, Policy: p,
		})
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.AvgFuelRate()
		}
		fmt.Printf("%-11s %8.1f   %.4f      %.0f   (%.1f%% of Conv)\n",
			res.Policy, res.Fuel, res.AvgFuelRate(), res.Lifetime(3600),
			100*res.AvgFuelRate()/base)
	}
}
