// Oracle compares the online FC-DPM policy against two offline lower
// bounds through the public API:
//
//  1. the flat-output bound (best single set point, exact for unlimited
//     storage by convexity), and
//  2. the true capacity-constrained optimum from dynamic programming over
//     the storage state, replayed through the simulator.
//
// The gap between FC-DPM and bound 2 is the total cost of operating
// online (prediction error + per-slot myopia); on the paper's workload it
// is a fraction of a percent.
package main

import (
	"fmt"
	"log"

	"fcdpm"
)

func main() {
	sys := fcdpm.PaperSystem()
	dev := fcdpm.Camcorder()
	trace, err := fcdpm.CamcorderTrace(1)
	if err != nil {
		log.Fatal(err)
	}

	run := func(p fcdpm.Policy) *fcdpm.Result {
		res, err := fcdpm.Run(fcdpm.SimConfig{
			Sys: sys, Dev: dev,
			Store: fcdpm.MustSuperCap(6, 1), Trace: trace, Policy: p,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// Online policy.
	online := run(fcdpm.NewFCDPM(sys, dev))

	// Bound 1: best flat output = total demanded charge / total time,
	// learned from a dry run.
	dry := run(fcdpm.NewConv(sys))
	avgLoad := dry.LoadEnergy / (12 * dry.Duration)
	flat := run(fcdpm.NewFlat(sys, avgLoad))

	// Bound 2: offline DP. Build the slot list the way the simulator will
	// execute it (every camcorder idle sleeps; transitions absorbed into
	// charge-equivalent averages).
	slots := make([]fcdpm.OptSlot, trace.Len())
	for k, s := range trace.Slots {
		ti := s.Idle
		idleCharge := dev.IPD*dev.TauPD + dev.Islp*(ti-dev.TauPD)
		taEff := dev.TauWU + dev.TauSR + s.Active + dev.TauRS
		activeCharge := dev.IWU*dev.TauWU + s.ActiveCurrent*(dev.TauSR+s.Active+dev.TauRS)
		slots[k] = fcdpm.OptSlot{
			Ti: ti, IldI: idleCharge / ti,
			Ta: taEff, IldA: activeCharge / taEff,
		}
	}
	sched, err := fcdpm.SolveOffline(fcdpm.OfflineProblem{
		Sys: sys, Cmax: 6, Slots: slots, Q0: 1, GridN: 48,
	})
	if err != nil {
		log.Fatal(err)
	}
	offline := run(fcdpm.NewSchedule(sys, sched.Settings))

	fmt.Println("policy                       avg Ifc (A)   vs offline DP")
	for _, r := range []*fcdpm.Result{offline, flat, online} {
		fmt.Printf("%-28s %.4f        %+.2f%%\n", r.Policy, r.AvgFuelRate(),
			100*(r.AvgFuelRate()/offline.AvgFuelRate()-1))
	}
	fmt.Println("\nThe online policy's total cost of not knowing the future is the")
	fmt.Println("last column of its row — prediction is nearly free here because")
	fmt.Println("the active-period setting re-plans from actuals every slot (Fig 5).")
	fmt.Printf("\nNote: Flat may appear to edge out the DP because it is allowed to end\n")
	fmt.Printf("below its starting charge (it finished at %.2f A-s of the 1.00 it\n", flat.FinalCharge)
	fmt.Println("started with); the DP and FC-DPM both return the storage to its")
	fmt.Println("starting level, paying for every coulomb they use.")
}
