// Predictors compares the idle-period predictors the DPM literature offers
// — exponential average [1], regression [2], adaptive learning tree [3],
// and simple baselines — on the camcorder MPEG trace, reporting both raw
// prediction accuracy and the end-to-end fuel impact when each drives the
// FC-DPM policy.
package main

import (
	"fmt"
	"log"

	"fcdpm"
)

func main() {
	trace, err := fcdpm.CamcorderTrace(1)
	if err != nil {
		log.Fatal(err)
	}
	idle := trace.IdleLengths()
	sys := fcdpm.PaperSystem()
	dev := fcdpm.Camcorder()

	type entry struct {
		name string
		mk   func() fcdpm.Predictor
	}
	entries := []entry{
		{"exp-average ρ=0.25", func() fcdpm.Predictor { return fcdpm.MustExpAverage(0.25, 14) }},
		{"exp-average ρ=0.50", func() fcdpm.Predictor { return fcdpm.MustExpAverage(0.5, 14) }},
		{"exp-average ρ=0.75", func() fcdpm.Predictor { return fcdpm.MustExpAverage(0.75, 14) }},
		{"last-value", func() fcdpm.Predictor { return fcdpm.NewLastValue(14) }},
		{"regression w=5", func() fcdpm.Predictor { return fcdpm.MustRegressionPredictor(5, 14) }},
		{"learning tree 8x2", func() fcdpm.Predictor { return fcdpm.MustTreePredictor(8, 2, 8, 20, 14) }},
		{"markov chain L=8", func() fcdpm.Predictor { return fcdpm.MustMarkovPredictor(8, 8, 20, 14) }},
	}

	fmt.Println("predictor            MAE(s)  RMSE(s)  over-rate  FC-DPM fuel(A-s)")
	for _, e := range entries {
		acc, err := fcdpm.EvaluatePredictor(e.mk(), idle)
		if err != nil {
			log.Fatal(err)
		}
		res, err := fcdpm.Run(fcdpm.SimConfig{
			Sys: sys, Dev: dev,
			Store:         fcdpm.MustSuperCap(6, 1),
			Trace:         trace,
			Policy:        fcdpm.NewFCDPM(sys, dev),
			IdlePredictor: e.mk(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %5.2f   %5.2f    %5.1f%%     %8.1f\n",
			e.name, acc.MAE, acc.RMSE, 100*acc.OverRate, res.Fuel)
	}

	fmt.Println("\nNote: the camcorder trace's idle periods are weakly correlated")
	fmt.Println("(MPEG scene complexity drifts slowly), so simple predictors land")
	fmt.Println("within a few percent of each other; the fuel optimizer is robust")
	fmt.Println("to modest prediction error because it re-plans IF,a from actuals")
	fmt.Println("at every active-period start (Fig 5).")
}
