// Camcorder reproduces the paper's Experiment 1 end-to-end through the
// public API: generate the 28-minute MPEG encode/write trace, run the
// three policies, print the Table 2 comparison, and dump the first 300 s
// of the Fig 7 current profiles as CSV to stdout-adjacent files.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fcdpm"
)

func main() {
	seed := flag.Uint64("seed", 1, "MPEG trace seed")
	profileOut := flag.String("profiles", "", "optional CSV file for the FC-DPM 300 s profile")
	flag.Parse()

	cmp, err := fcdpm.Experiment1(*seed)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Experiment 1 — DVD camcorder MPEG encoding/writing (28 min)")
	fmt.Println("policy      normalized fuel   paper")
	paper := map[string]string{"Conv-DPM": "100%", "ASAP-DPM": "40.8%", "FC-DPM": "30.8%"}
	for _, r := range cmp.Rows {
		fmt.Printf("%-11s %6.1f%%           %s\n", r.Name, 100*r.Normalized, paper[r.Name])
	}
	fmt.Printf("\nFC-DPM saves %.1f%% fuel vs ASAP-DPM (paper: 24.4%%)\n", 100*cmp.SavingVsASAP)
	fmt.Printf("lifetime extension: %.2fx (paper: 1.32x)\n", cmp.LifetimeRatio)

	// Per-policy detail from the raw results.
	fmt.Println("\npolicy      sleeps  bled(A-s)  deficit(A-s)  final storage(A-s)")
	for _, r := range cmp.Rows {
		res := cmp.Results[r.Name]
		fmt.Printf("%-11s %5d   %8.2f   %10.3f   %8.2f\n",
			r.Name, res.Sleeps, res.Bled, res.Deficit, res.FinalCharge)
	}

	if *profileOut != "" {
		if err := writeProfile(*profileOut, *seed); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote FC-DPM current profile to %s\n", *profileOut)
	}
}

// writeProfile reruns FC-DPM with profile recording and writes t,load,IF.
func writeProfile(path string, seed uint64) error {
	sys := fcdpm.PaperSystem()
	dev := fcdpm.Camcorder()
	trace, err := fcdpm.CamcorderTrace(seed)
	if err != nil {
		return err
	}
	res, err := fcdpm.Run(fcdpm.SimConfig{
		Sys: sys, Dev: dev,
		Store:         fcdpm.MustSuperCap(6, 1),
		Trace:         trace,
		Policy:        fcdpm.NewFCDPM(sys, dev),
		RecordProfile: true,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "t_s,load_a,if_a")
	for _, p := range res.Profile {
		if p.T > 300 {
			break
		}
		fmt.Fprintf(f, "%g,%g,%g\n", p.T, p.Load, p.IF)
	}
	return nil
}
