package fcdpm

// Allocation-budget pins for the hot paths. These are hard gates, not
// benchmarks: the zero-allocation steady state of the simulation core is
// an API guarantee (SimRunner + RecordFuelOnly), and testing.AllocsPerRun
// catches any accidental per-run allocation the day it is introduced.

import (
	"testing"

	"fcdpm/internal/fault"
)

// newThroughputRunner builds the benchmark configuration: FC-DPM over the
// camcorder trace at the fuel-only record level.
func newThroughputRunner(t testing.TB) *SimRunner {
	sys := PaperSystem()
	dev := Camcorder()
	trace, err := CamcorderTrace(1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewSimRunner(SimConfig{
		Sys: sys, Dev: dev, Store: MustSuperCap(6, 1),
		Trace: trace, Policy: NewFCDPM(sys, dev),
		Record: RecordFuelOnly,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSimRunSteadyStateZeroAllocs(t *testing.T) {
	r := newThroughputRunner(t)
	// Warm-up run: lazily grown buffers (idle-length history, event log
	// capacity) settle on the first pass.
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("SimRunner.Run allocates %v times per steady-state run at RecordFuelOnly, want 0", allocs)
	}
}

func TestSimRunMetricsZeroAllocs(t *testing.T) {
	// Instrumentation must not perturb the zero-allocation guarantee:
	// with a SimMetrics bundle attached, steady-state runs still
	// allocate nothing (recording is a handful of atomic adds).
	sys := PaperSystem()
	dev := Camcorder()
	trace, err := CamcorderTrace(1)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewMetricsRegistry()
	m := NewSimMetrics(reg)
	r, err := NewSimRunner(SimConfig{
		Sys: sys, Dev: dev, Store: MustSuperCap(6, 1),
		Trace: trace, Policy: NewFCDPM(sys, dev),
		Record:  RecordFuelOnly,
		Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := r.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("instrumented SimRunner.Run allocates %v times per steady-state run, want 0", allocs)
	}
	if got := m.Runs.Value(); got < 21 {
		t.Fatalf("metrics recorded %v runs, want >= 21", got)
	}
	if m.Slots.Value() <= 0 || m.RunSeconds.Count() == 0 {
		t.Fatal("instrumented runs recorded no slots or wall time")
	}
}

func TestSimRunnerResultsStayIdentical(t *testing.T) {
	// The arena reuse must not leak state between runs: every repeat is
	// the same simulation, so its totals must match the first bit for bit.
	r := newThroughputRunner(t)
	first, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	fuel, deficit, final := first.Fuel, first.Deficit, first.FinalCharge
	for i := 0; i < 3; i++ {
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Fuel != fuel || res.Deficit != deficit || res.FinalCharge != final {
			t.Fatalf("run %d diverged: fuel %v/%v deficit %v/%v final %v/%v",
				i, res.Fuel, fuel, res.Deficit, deficit, res.FinalCharge, final)
		}
	}
}

// newThroughputBatch builds a fault-free multi-lane batch over the
// camcorder trace: three identical-dynamics FC-DPM lanes (one group)
// plus a Conv lane and an ASAP lane, instrumented with a BatchMetrics
// bundle.
func newThroughputBatch(t testing.TB) *BatchRunner {
	sys := PaperSystem()
	dev := Camcorder()
	trace, err := CamcorderTrace(1)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(p Policy, rec RecordLevel) SimLane {
		return SimLane{Cfg: SimConfig{
			Sys: sys, Dev: dev, Store: MustSuperCap(6, 1),
			Trace: trace, Policy: p, Record: rec,
		}}
	}
	b, err := NewBatchRunner([]SimLane{
		mk(NewFCDPM(sys, dev), RecordFuelOnly),
		mk(NewFCDPM(sys, dev), RecordFuelOnly),
		mk(NewFCDPM(sys, dev), RecordFuelOnly),
		mk(NewConv(sys), RecordFuelOnly),
		mk(NewASAP(sys), RecordFuelOnly),
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Metrics = NewBatchMetrics(NewMetricsRegistry())
	return b
}

func TestBatchRunnerZeroAllocs(t *testing.T) {
	b := newThroughputBatch(t)
	if _, err := b.Run(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := b.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("BatchRunner.Run allocates %v times per steady-state run at RecordFuelOnly, want 0", allocs)
	}
}

func TestOptimizeSlotZeroAllocs(t *testing.T) {
	sys := PaperSystem()
	slot := OptSlot{
		Ti: 14, IldI: 0.2, Ta: 3.03, IldA: 1.22, Cini: 1, Cend: 1,
		Sleep:    true,
		Overhead: &OptOverhead{TauWU: 0.5, IWU: 0.4, TauPD: 0.5, IPD: 0.4},
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := OptimizeSlot(sys, 6, slot); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("OptimizeSlot allocates %v times per call, want 0", allocs)
	}
}

func TestSimFaultedRunZeroAllocs(t *testing.T) {
	// Fault injection must ride the same arena-reuse path as clean runs:
	// the injector rewinds its transition list and noise stream in place,
	// and the fade wrapper restores instead of being rebuilt per run.
	// The event magnitudes stay zero (class defaults apply) because a
	// nonzero magnitude formats into the audit log.
	sys := PaperSystem()
	dev := Camcorder()
	trace, err := CamcorderTrace(1)
	if err != nil {
		t.Fatal(err)
	}
	sched := &FaultSchedule{Events: []FaultEvent{
		{Kind: fault.CapacityFade, Start: 200, Dur: 100},
		{Kind: fault.SensorNoise, Start: 400, Dur: 150},
	}}
	r, err := NewSimRunner(SimConfig{
		Sys: sys, Dev: dev, Store: MustSuperCap(6, 1),
		Trace: trace, Policy: NewFCDPM(sys, dev),
		Record: RecordFuelOnly,
		Faults: sched, FaultSeed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	fuel, lost := first.Fuel, first.LostCharge
	allocs := testing.AllocsPerRun(20, func() {
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Fuel != fuel || res.LostCharge != lost {
			t.Fatalf("faulted rerun diverged: fuel %v/%v lost %v/%v",
				res.Fuel, fuel, res.LostCharge, lost)
		}
	})
	if allocs != 0 {
		t.Fatalf("faulted SimRunner.Run allocates %v times per steady-state run, want 0", allocs)
	}
}
