package fcdpm

import (
	"context"

	"fcdpm/internal/devicesim"
)

// This file exposes the fleet-scale load harness behind `fcdpm
// devicesim` (see DESIGN.md §13): thousands of deterministic virtual
// devices driving a serve target through every serving-path behavior
// at once — cache hits, coalescing, shedding, Retry-After backoff.

// FleetOptions tunes a device-fleet run: target URL, device count,
// jittered cadence, scheduling window, the fleet seed (which fixes the
// population and submission schedule byte-for-byte), and the scenario
// template devices mutate.
type FleetOptions = devicesim.Options

// FleetTemplate is the shared scenario template a fleet's variants are
// derived from (scenarios/devicesim.json is the stock one).
type FleetTemplate = devicesim.Template

// FleetReport is the harness's final client-side accounting: latency
// quantiles, shed/coalesce/cache-hit rates, and counters that mirror
// the server's /v1/stats taxonomy one-to-one.
type FleetReport = devicesim.Report

// DefaultFleetTemplate returns the built-in fleet mix: all five
// workload families, 16 scenario variants, an even sync/async split.
func DefaultFleetTemplate() FleetTemplate { return devicesim.DefaultTemplate() }

// RunFleet drives the device fleet until its schedule drains or ctx
// cancels. Sheds are counted, not fatal; a canceled run returns an
// error wrapping ErrSweepInterrupted.
func RunFleet(ctx context.Context, opts FleetOptions) (FleetReport, error) {
	return devicesim.Run(ctx, opts)
}
