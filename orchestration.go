package fcdpm

import (
	"context"

	"fcdpm/internal/exp"
	"fcdpm/internal/runner"
)

// This file exposes the resilient run-orchestration engine behind the
// library's batch entry points: bounded workers, per-run deadlines,
// retry with backoff, per-scenario circuit breakers, and a crash-safe
// checkpoint journal that makes interrupted sweeps resumable.

// ErrSweepInterrupted is returned (wrapped) by batch entry points when
// the context was canceled mid-sweep: the partial result is still
// returned, and re-running with the same journal completes the missing
// cells without re-simulating the finished ones. Test with errors.Is.
var ErrSweepInterrupted = runner.ErrInterrupted

// RunError wraps a task failure from the orchestration engine with its
// run ID, attempt count, and — when the task panicked — the recovered
// value and goroutine stack. Format with %+v to see the stack.
type RunError = runner.RunError

// MarkRetryable wraps err so the orchestration engine's retry policy
// treats it as transient. Unwrapped errors fail fast.
func MarkRetryable(err error) error { return runner.MarkRetryable(err) }

// FaultSweepOptions tunes how a fault sweep's cells are orchestrated:
// worker count, per-cell deadline, retries, and the checkpoint journal
// path. The zero value uses engine defaults (GOMAXPROCS workers, no
// deadline, no retries, no journal).
type FaultSweepOptions = exp.FaultSweepOptions

// FaultSweepResult is the per-policy fuel/survival matrix over the
// canonical fault classes, plus resume accounting.
type FaultSweepResult = exp.FaultSweepResult

// FaultRow is one (fault class, policy) cell of a fault sweep.
type FaultRow = exp.FaultRow

// FaultSweep runs the paper's three policies over the Experiment 2
// synthetic workload under each canonical fault class with default
// orchestration.
func FaultSweep(ctx context.Context, seed uint64) (*FaultSweepResult, error) {
	return exp.FaultSweep(ctx, seed)
}

// FaultSweepOpts is FaultSweep with explicit orchestration options.
// When ctx is canceled mid-sweep it returns the partial result along
// with ErrSweepInterrupted; re-running with the same options.Journal
// resumes where it stopped.
func FaultSweepOpts(ctx context.Context, seed uint64, opts FaultSweepOptions) (*FaultSweepResult, error) {
	return exp.FaultSweepOpts(ctx, seed, opts)
}
