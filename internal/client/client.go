// Package client is the shared submit/stream side of the repo's HTTP
// dialect (internal/httpx is the serve side): typed non-2xx errors that
// carry the Retry-After hint, JSON POST/GET helpers, a retrying submit
// that honors protocol-driven backoff, NDJSON tailing, and a
// tail-until-resolved loop that survives server restarts. The sweep
// dispatcher's worker and `fcdpm sweep -remote` both spoke a private
// copy of this dialect; it now lives here once, and the device
// simulator speaks it too.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"fcdpm/internal/httpx"
	"fcdpm/internal/runner"
)

// Error is a non-2xx response: status code, typed error message, and
// the Retry-After hint when the server sent one. A plain (non-*Error)
// error means the request never got a response (network failure) —
// callers distinguish the two with errors.As.
type Error struct {
	// Code is the HTTP status.
	Code int
	// Msg is the typed error body, or the status text when the body was
	// not a httpx.Error document.
	Msg string
	// RetryAfter is the server's backoff hint (zero when absent).
	RetryAfter time.Duration
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("http %d: %s", e.Code, e.Msg)
}

// Retryable reports whether the response invites another attempt:
// overload and drain speak 503, rate limiting 429 — both transient by
// contract. Everything else is the caller's verdict to make.
func (e *Error) Retryable() bool {
	return e.Code == http.StatusServiceUnavailable || e.Code == http.StatusTooManyRequests
}

// asError classifies a non-2xx response into *Error.
func asError(resp *http.Response, body []byte) *Error {
	e := &Error{Code: resp.StatusCode}
	var typed httpx.Error
	if json.Unmarshal(body, &typed) == nil && typed.Error != "" {
		e.Msg = typed.Error
	} else {
		e.Msg = http.StatusText(resp.StatusCode)
	}
	if d, ok := httpx.RetryAfter(resp); ok {
		e.RetryAfter = d
	}
	return e
}

// postBodyLimit bounds how much of a response body a JSON POST reads.
const postBodyLimit = 1 << 20

// getBodyLimit bounds a JSON GET (sweep results can be large).
const getBodyLimit = 64 << 20

// PostJSON posts v to url and decodes a 2xx response into out (out may
// be nil to discard). Non-2xx responses return *Error; transport
// failures return the underlying error.
func PostJSON(ctx context.Context, hc *http.Client, url string, v, out any) error {
	_, _, err := PostJSONMeta(ctx, hc, url, v, out)
	return err
}

// PostJSONMeta is PostJSON exposing the response status and header on
// 2xx — for callers that read protocol metadata like X-Fcdpm-Cache.
func PostJSONMeta(ctx context.Context, hc *http.Client, url string, v, out any) (int, http.Header, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	return do(hc, req, postBodyLimit, out)
}

// GetJSON fetches url and decodes a 2xx response into out.
func GetJSON(ctx context.Context, hc *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	_, _, err = do(hc, req, getBodyLimit, out)
	return err
}

// do executes the request and decodes or classifies the response. On
// 2xx it returns the status and header alongside the decoded body.
func do(hc *http.Client, req *http.Request, limit int64, out any) (int, http.Header, error) {
	resp, err := hc.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, limit))
	if err != nil {
		return 0, nil, err
	}
	if resp.StatusCode/100 != 2 {
		return 0, nil, asError(resp, body)
	}
	if out == nil {
		return resp.StatusCode, resp.Header, nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, resp.Header, nil
}

// Retry tunes PostJSONRetry. The zero value means 5 attempts with the
// worker-poll backoff window (250 ms – 5 s).
type Retry struct {
	// Attempts bounds total tries (default 5).
	Attempts int
	// Base and Max bound the jittered exponential backoff between tries.
	Base, Max time.Duration
	// ID keys the deterministic backoff jitter (runner.BackoffDelay).
	ID string
}

func (r Retry) withDefaults() Retry {
	if r.Attempts <= 0 {
		r.Attempts = 5
	}
	if r.Base <= 0 {
		r.Base = 250 * time.Millisecond
	}
	if r.Max <= 0 {
		r.Max = 5 * time.Second
	}
	return r
}

// PostJSONRetry posts v, retrying transient refusals: network failures
// and retryable statuses (503, 429) back off with deterministic jitter,
// stretched to the server's Retry-After hint when it is longer. Any
// other HTTP error returns immediately. A canceled ctx returns an error
// wrapping runner.ErrInterrupted.
func PostJSONRetry(ctx context.Context, hc *http.Client, url string, v, out any, retry Retry) error {
	retry = retry.withDefaults()
	for attempt := 1; ; attempt++ {
		err := PostJSON(ctx, hc, url, v, out)
		if err == nil {
			return nil
		}
		var he *Error
		if errors.As(err, &he) && !he.Retryable() {
			return err
		}
		if attempt >= retry.Attempts {
			return err
		}
		delay := runner.BackoffDelay(retry.Base, retry.Max, retry.ID, attempt)
		if he != nil && he.RetryAfter > delay {
			delay = he.RetryAfter
		}
		if !Sleep(ctx, delay) {
			return fmt.Errorf("%w (submitting %s)", runner.ErrInterrupted, url)
		}
	}
}

// Sleep blocks for d or until ctx is done; reports false on cancel.
func Sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// TailNDJSON streams url's NDJSON body, invoking line for each record,
// until the stream closes (the job resolved or the connection was
// lost). A non-200 status returns *Error.
func TailNDJSON(ctx context.Context, hc *http.Client, url string, line func(text string)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return asError(resp, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 4<<20)
	for sc.Scan() {
		if line != nil {
			line(sc.Text())
		}
	}
	return sc.Err()
}

// Follow drives a tail-until-resolved loop that survives server
// restarts: tail the event stream; when it drops, poll the job's
// status; if unresolved, back off and re-tail from the fresh stream.
type Follow struct {
	// Tail streams events until the stream closes (TailNDJSON).
	Tail func(ctx context.Context) error
	// Poll checks resolution after a tail ends. done ends the loop
	// (nil error: resolved). A returned *Error ends the loop too — the
	// server answered but refused (e.g. it forgot the job after a
	// restart without durable state); only transport failures are
	// retried.
	Poll func(ctx context.Context) (done bool, err error)
	// ID keys the backoff jitter; Base and Max bound it (defaults
	// 250 ms – 10 s).
	ID        string
	Base, Max time.Duration
	// OnRetry is invoked once when the loop first starts retrying after
	// a failure (log hook); nil silences it.
	OnRetry func(err error)
}

// Run loops until Poll reports done, the server answers with a typed
// refusal, or ctx cancels (wrapping runner.ErrInterrupted).
func (f Follow) Run(ctx context.Context) error {
	if f.Base <= 0 {
		f.Base = 250 * time.Millisecond
	}
	if f.Max <= 0 {
		f.Max = 10 * time.Second
	}
	fails := 0
	for {
		if ctx.Err() != nil {
			return fmt.Errorf("still running: %w", runner.ErrInterrupted)
		}
		tailErr := f.Tail(ctx)
		done, err := f.Poll(ctx)
		if err == nil {
			if done {
				return nil
			}
			// Stream dropped mid-flight (restart, proxy timeout): back
			// off briefly and re-tail from the fresh stream.
			fails++
		} else {
			var he *Error
			if errors.As(err, &he) {
				return err
			}
			fails++
			if fails == 1 && f.OnRetry != nil {
				f.OnRetry(firstErr(tailErr, err))
			}
		}
		if !Sleep(ctx, runner.BackoffDelay(f.Base, f.Max, f.ID+"/tail", fails)) {
			return fmt.Errorf("still running: %w", runner.ErrInterrupted)
		}
	}
}

// firstErr returns the first non-nil error.
func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
