package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"fcdpm/internal/httpx"
	"fcdpm/internal/runner"
)

func TestPostJSONTypedError(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteUnavailable(w, 7*time.Second, "draining")
	}))
	defer ts.Close()

	err := PostJSON(context.Background(), ts.Client(), ts.URL, map[string]int{"x": 1}, nil)
	var he *Error
	if !errors.As(err, &he) {
		t.Fatalf("err = %v, want *Error", err)
	}
	if he.Code != 503 || he.Msg != "draining" || he.RetryAfter != 7*time.Second {
		t.Fatalf("Error = %+v, want 503/draining/7s", he)
	}
	if !he.Retryable() {
		t.Fatal("503 must be retryable")
	}
}

func TestPostJSONRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	start := time.Now()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// A hint longer than the first backoff step: the client must
			// stretch its delay to it.
			httpx.WriteUnavailable(w, 1*time.Second, "shed")
			return
		}
		httpx.WriteJSON(w, 200, map[string]string{"ok": "yes"})
	}))
	defer ts.Close()

	var out map[string]string
	err := PostJSONRetry(context.Background(), ts.Client(), ts.URL, nil, &out,
		Retry{Attempts: 3, Base: time.Millisecond, Max: 10 * time.Millisecond, ID: "t"})
	if err != nil {
		t.Fatalf("PostJSONRetry: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
	if d := time.Since(start); d < 1*time.Second {
		t.Fatalf("retried after %v, before the 1s Retry-After hint", d)
	}
	if out["ok"] != "yes" {
		t.Fatalf("out = %v", out)
	}
}

func TestPostJSONRetryPermanentErrorFailsFast(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		httpx.WriteErr(w, 400, "malformed")
	}))
	defer ts.Close()

	err := PostJSONRetry(context.Background(), ts.Client(), ts.URL, nil, nil, Retry{ID: "t"})
	var he *Error
	if !errors.As(err, &he) || he.Code != 400 {
		t.Fatalf("err = %v, want http 400", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want exactly 1 (no retry on 400)", calls.Load())
	}
}

func TestPostJSONRetryInterrupted(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteUnavailable(w, 30*time.Second, "shed")
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := PostJSONRetry(ctx, ts.Client(), ts.URL, nil, nil, Retry{ID: "t"})
	if !errors.Is(err, runner.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}

func TestTailNDJSON(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		for i := 0; i < 3; i++ {
			fmt.Fprintf(w, `{"n":%d}`+"\n", i)
		}
	}))
	defer ts.Close()

	var lines []string
	if err := TailNDJSON(context.Background(), ts.Client(), ts.URL, func(l string) {
		lines = append(lines, l)
	}); err != nil {
		t.Fatalf("TailNDJSON: %v", err)
	}
	if len(lines) != 3 || lines[2] != `{"n":2}` {
		t.Fatalf("lines = %q", lines)
	}
}

// TestFollowSurvivesStreamDrops simulates a server restart: the first
// two event streams drop before the job resolves, the status poll says
// "not done", and the third tail sees resolution.
func TestFollowSurvivesStreamDrops(t *testing.T) {
	var tails, polls atomic.Int64
	err := Follow{
		Tail: func(ctx context.Context) error {
			tails.Add(1)
			return nil // stream closed without resolution
		},
		Poll: func(ctx context.Context) (bool, error) {
			return polls.Add(1) >= 3, nil
		},
		ID:   "t",
		Base: time.Millisecond, Max: 2 * time.Millisecond,
	}.Run(context.Background())
	if err != nil {
		t.Fatalf("Follow: %v", err)
	}
	if tails.Load() != 3 || polls.Load() != 3 {
		t.Fatalf("tails = %d, polls = %d, want 3 each", tails.Load(), polls.Load())
	}
}

// TestFollowTypedRefusalStops verifies that a server that answers but
// refuses (unknown job after a stateless restart) ends the loop instead
// of retrying forever.
func TestFollowTypedRefusalStops(t *testing.T) {
	refusal := &Error{Code: 404, Msg: "unknown job"}
	err := Follow{
		Tail: func(ctx context.Context) error { return nil },
		Poll: func(ctx context.Context) (bool, error) { return false, refusal },
		ID:   "t",
		Base: time.Millisecond, Max: 2 * time.Millisecond,
	}.Run(context.Background())
	var he *Error
	if !errors.As(err, &he) || he.Code != 404 {
		t.Fatalf("err = %v, want the typed 404", err)
	}
}

// TestFollowTransportFailureRetries verifies that transport failures
// (no response at all) keep the loop alive with the OnRetry hook fired
// exactly once.
func TestFollowTransportFailureRetries(t *testing.T) {
	var polls, retries atomic.Int64
	err := Follow{
		Tail: func(ctx context.Context) error { return errors.New("conn refused") },
		Poll: func(ctx context.Context) (bool, error) {
			if polls.Add(1) >= 3 {
				return true, nil
			}
			return false, errors.New("conn refused")
		},
		ID:   "t",
		Base: time.Millisecond, Max: 2 * time.Millisecond,
		OnRetry: func(error) { retries.Add(1) },
	}.Run(context.Background())
	if err != nil {
		t.Fatalf("Follow: %v", err)
	}
	if retries.Load() != 1 {
		t.Fatalf("OnRetry fired %d times, want once", retries.Load())
	}
}

func TestFollowInterrupted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Follow{
		Tail: func(ctx context.Context) error { return nil },
		Poll: func(ctx context.Context) (bool, error) { return false, nil },
		ID:   "t",
	}.Run(ctx)
	if !errors.Is(err, runner.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
}
