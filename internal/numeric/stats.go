package numeric

import (
	"fmt"
	"math"
	"sort"
)

// InputError reports invalid arguments to a numeric routine — empty
// samples, mismatched lengths, degenerate ranges. Routines on paths
// reachable from user-supplied data return it instead of panicking.
type InputError struct {
	Fn     string // the routine that rejected its input
	Detail string
}

// Error implements error.
func (e *InputError) Error() string { return "numeric: " + e.Fn + ": " + e.Detail }

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N              int
	Min, Max       float64
	Mean, Stddev   float64
	Median         float64
	P10, P90       float64
	Sum            float64
	SumAbsDev      float64 // sum of |x - mean|
	CoeffVariation float64 // stddev / |mean|, 0 when mean is 0
}

// Summarize computes descriptive statistics over xs. An empty sample yields
// a zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	for _, x := range xs {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
		s.SumAbsDev += math.Abs(d)
	}
	if s.N > 1 {
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	// The sample is non-empty here, so the quantile errors cannot fire.
	s.Median, _ = Quantile(sorted, 0.5)
	s.P10, _ = Quantile(sorted, 0.1)
	s.P90, _ = Quantile(sorted, 0.9)
	if s.Mean != 0 {
		s.CoeffVariation = s.Stddev / math.Abs(s.Mean)
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of an already sorted sample
// using linear interpolation between order statistics. An empty sample is
// an *InputError.
func Quantile(sorted []float64, q float64) (float64, error) {
	if len(sorted) == 0 {
		return 0, &InputError{Fn: "Quantile", Detail: "empty sample"}
	}
	if q <= 0 {
		return sorted[0], nil
	}
	if q >= 1 {
		return sorted[len(sorted)-1], nil
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[i], nil
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac, nil
}

// MeanAbsError returns the mean absolute error between predictions and
// actuals. Mismatched or zero lengths are an *InputError.
func MeanAbsError(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) || len(pred) == 0 {
		return 0, &InputError{Fn: "MeanAbsError",
			Detail: fmt.Sprintf("length mismatch or empty (%d vs %d)", len(pred), len(actual))}
	}
	var sum float64
	for i := range pred {
		sum += math.Abs(pred[i] - actual[i])
	}
	return sum / float64(len(pred)), nil
}

// RootMeanSquareError returns the RMSE between predictions and actuals.
// Mismatched or zero lengths are an *InputError.
func RootMeanSquareError(pred, actual []float64) (float64, error) {
	if len(pred) != len(actual) || len(pred) == 0 {
		return 0, &InputError{Fn: "RootMeanSquareError",
			Detail: fmt.Sprintf("length mismatch or empty (%d vs %d)", len(pred), len(actual))}
	}
	var sum float64
	for i := range pred {
		d := pred[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred))), nil
}
