package numeric

import (
	"math"
	"sort"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N              int
	Min, Max       float64
	Mean, Stddev   float64
	Median         float64
	P10, P90       float64
	Sum            float64
	SumAbsDev      float64 // sum of |x - mean|
	CoeffVariation float64 // stddev / |mean|, 0 when mean is 0
}

// Summarize computes descriptive statistics over xs. An empty sample yields
// a zero Summary.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	for _, x := range xs {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
		s.SumAbsDev += math.Abs(d)
	}
	if s.N > 1 {
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	s.Median = Quantile(sorted, 0.5)
	s.P10 = Quantile(sorted, 0.1)
	s.P90 = Quantile(sorted, 0.9)
	if s.Mean != 0 {
		s.CoeffVariation = s.Stddev / math.Abs(s.Mean)
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of an already sorted sample
// using linear interpolation between order statistics. It panics on an empty
// sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("numeric: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[i]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// MeanAbsError returns the mean absolute error between predictions and
// actuals. The slices must have equal nonzero length.
func MeanAbsError(pred, actual []float64) float64 {
	if len(pred) != len(actual) || len(pred) == 0 {
		panic("numeric: MeanAbsError length mismatch or empty")
	}
	var sum float64
	for i := range pred {
		sum += math.Abs(pred[i] - actual[i])
	}
	return sum / float64(len(pred))
}

// RootMeanSquareError returns the RMSE between predictions and actuals.
func RootMeanSquareError(pred, actual []float64) float64 {
	if len(pred) != len(actual) || len(pred) == 0 {
		panic("numeric: RootMeanSquareError length mismatch or empty")
	}
	var sum float64
	for i := range pred {
		d := pred[i] - actual[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred)))
}
