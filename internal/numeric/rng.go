// Package numeric provides the small numerical toolkit fcdpm is built on:
// a deterministic random number generator, one-dimensional minimization and
// root finding, monotone table interpolation, and summary statistics.
//
// Everything here is deterministic and allocation-free in steady state so
// that simulations are exactly reproducible across runs and platforms.
package numeric

import "math"

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256** seeded through splitmix64. It is not safe for concurrent use;
// each goroutine should own its own RNG.
//
// The zero value is not usable; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed. Two generators constructed
// with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed rewinds the generator in place to the exact stream NewRNG(seed)
// would produce, without allocating — the rewind primitive run-reuse
// machinery needs to restart a deterministic noise stream per run.
func (r *RNG) Reseed(seed uint64) {
	// splitmix64 to spread the seed across all 256 bits of state.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo, hi). It panics if hi < lo.
func (r *RNG) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("numeric: Uniform with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("numeric: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a normally distributed value with the given mean and standard
// deviation, using the Marsaglia polar method.
func (r *RNG) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -mean * math.Log(u)
		}
	}
}

// Split derives an independent generator from the current stream. It is
// used to give each component of an experiment its own stream so that adding
// a consumer does not perturb the values seen by the others.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}
