package numeric

import (
	"errors"
	"math"
)

// ErrNoBracket is returned by Bisect when the supplied interval does not
// bracket a sign change of the function.
var ErrNoBracket = errors.New("numeric: interval does not bracket a root")

// invPhi is 1/phi, the golden-section step ratio.
const invPhi = 0.6180339887498949

// GoldenMin minimizes a unimodal function f on [lo, hi] by golden-section
// search and returns the abscissa of the minimum. tol is the absolute
// interval tolerance; values below 1e-14 are raised to 1e-14.
func GoldenMin(f func(float64) float64, lo, hi, tol float64) float64 {
	if hi < lo {
		lo, hi = hi, lo
	}
	if tol < 1e-14 {
		tol = 1e-14
	}
	a, b := lo, hi
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for b-a > tol {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	return (a + b) / 2
}

// Bisect finds a root of f in [lo, hi] to absolute tolerance tol. The
// function must change sign over the interval, otherwise ErrNoBracket is
// returned.
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	if hi < lo {
		lo, hi = hi, lo
	}
	if tol < 1e-14 {
		tol = 1e-14
	}
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, ErrNoBracket
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// AlmostEqual reports whether a and b agree to within tol absolutely or
// relatively (whichever is looser), the standard comparison used by the
// experiment assertions.
func AlmostEqual(a, b, tol float64) bool {
	d := math.Abs(a - b)
	if d <= tol {
		return true
	}
	return d <= tol*math.Max(math.Abs(a), math.Abs(b))
}
