package numeric

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin histogram over [Lo, Hi]; values outside the
// range are clamped into the edge bins.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram builds a histogram of xs with the given number of bins over
// [lo, hi]. A non-positive bin count or an empty range is an *InputError —
// both can come straight from user-supplied trace statistics.
func NewHistogram(xs []float64, bins int, lo, hi float64) (*Histogram, error) {
	if bins < 1 {
		return nil, &InputError{Fn: "NewHistogram", Detail: fmt.Sprintf("bins %d < 1", bins)}
	}
	if hi <= lo || math.IsNaN(lo) || math.IsNaN(hi) {
		return nil, &InputError{Fn: "NewHistogram", Detail: fmt.Sprintf("range [%v, %v] empty", lo, hi)}
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	for _, x := range xs {
		h.Add(x)
	}
	return h, nil
}

// Add records one value.
func (h *Histogram) Add(x float64) {
	bins := len(h.Counts)
	i := int(math.Floor((x - h.Lo) / (h.Hi - h.Lo) * float64(bins)))
	if i < 0 {
		i = 0
	}
	if i >= bins {
		i = bins - 1
	}
	h.Counts[i]++
	h.N++
}

// BinRange returns the [lo, hi) interval of bin i.
func (h *Histogram) BinRange(i int) (lo, hi float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// Fraction returns bin i's share of the sample.
func (h *Histogram) Fraction(i int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.N)
}

// Render draws the histogram as ASCII bars, one line per bin, with the bar
// width scaled so the fullest bin spans width characters.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		lo, hi := h.BinRange(i)
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&b, "[%7.2f, %7.2f) %s %d\n", lo, hi, strings.Repeat("#", bar), c)
	}
	return b.String()
}
