package numeric

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestRNGUniformRange(t *testing.T) {
	r := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(5, 25)
		if v < 5 || v >= 25 {
			t.Fatalf("Uniform(5,25) out of range: %v", v)
		}
	}
}

func TestRNGUniformMean(t *testing.T) {
	r := NewRNG(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Uniform(5, 25)
	}
	mean := sum / n
	if math.Abs(mean-15) > 0.1 {
		t.Fatalf("Uniform(5,25) mean = %v, want ~15", mean)
	}
}

func TestRNGUniformPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(hi<lo) did not panic")
		}
	}()
	NewRNG(1).Uniform(2, 1)
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn(5) out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Intn(5) only produced %d distinct values", len(seen))
	}
}

func TestRNGNorm(t *testing.T) {
	r := NewRNG(5)
	var sum, ss float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		ss += v * v
	}
	mean := sum / n
	variance := ss/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Norm mean = %v, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("Norm stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestRNGExp(t *testing.T) {
	r := NewRNG(6)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(4)
		if v < 0 {
			t.Fatalf("Exp produced negative value %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-4) > 0.1 {
		t.Fatalf("Exp mean = %v, want ~4", mean)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(99)
	child := r.Split()
	// Child stream should be deterministic given the parent state.
	r2 := NewRNG(99)
	child2 := r2.Split()
	for i := 0; i < 100; i++ {
		if child.Uint64() != child2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestGoldenMinQuadratic(t *testing.T) {
	x := GoldenMin(func(x float64) float64 { return (x - 3) * (x - 3) }, -10, 10, 1e-10)
	if math.Abs(x-3) > 1e-8 {
		t.Fatalf("GoldenMin = %v, want 3", x)
	}
}

func TestGoldenMinReversedBounds(t *testing.T) {
	x := GoldenMin(func(x float64) float64 { return (x - 3) * (x - 3) }, 10, -10, 1e-10)
	if math.Abs(x-3) > 1e-8 {
		t.Fatalf("GoldenMin with reversed bounds = %v, want 3", x)
	}
}

func TestGoldenMinBoundary(t *testing.T) {
	// Monotone decreasing on the interval: minimum at the right edge.
	x := GoldenMin(func(x float64) float64 { return -x }, 0, 5, 1e-10)
	if math.Abs(x-5) > 1e-6 {
		t.Fatalf("GoldenMin boundary = %v, want 5", x)
	}
}

func TestBisect(t *testing.T) {
	x, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-math.Sqrt2) > 1e-10 {
		t.Fatalf("Bisect = %v, want sqrt(2)", x)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-10); err != ErrNoBracket {
		t.Fatalf("err = %v, want ErrNoBracket", err)
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	x, err := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-10)
	if err != nil || x != 0 {
		t.Fatalf("Bisect endpoint root = %v, %v; want 0, nil", x, err)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ x, lo, hi, want float64 }{
		{0.5, 0.1, 1.2, 0.5},
		{0.05, 0.1, 1.2, 0.1},
		{1.5, 0.1, 1.2, 1.2},
	}
	for _, c := range cases {
		if got := Clamp(c.x, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%v,%v,%v) = %v, want %v", c.x, c.lo, c.hi, got, c.want)
		}
	}
}

// Property: GoldenMin on a shifted quadratic recovers the vertex anywhere in
// the bracket.
func TestGoldenMinProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		v := r.Uniform(-50, 50)
		got := GoldenMin(func(x float64) float64 { return (x - v) * (x - v) }, -60, 60, 1e-11)
		return math.Abs(got-v) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableInterpolation(t *testing.T) {
	tab := MustTable([]float64{0, 1, 2}, []float64{0, 10, 0})
	cases := []struct{ x, want float64 }{
		{0, 0}, {0.5, 5}, {1, 10}, {1.5, 5}, {2, 0},
		{-1, 0}, // clamp left
		{3, 0},  // clamp right
		{0.25, 2.5},
	}
	for _, c := range cases {
		if got := tab.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestTableErrors(t *testing.T) {
	if _, err := NewTable([]float64{0, 1}, []float64{0}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewTable([]float64{0}, []float64{0}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := NewTable([]float64{0, 0}, []float64{0, 1}); err == nil {
		t.Error("non-increasing xs accepted")
	}
}

func TestTableArgMax(t *testing.T) {
	tab := MustTable([]float64{0, 1, 2, 3}, []float64{1, 5, 20, 3})
	x, y := tab.ArgMax()
	if x != 2 || y != 20 {
		t.Fatalf("ArgMax = (%v,%v), want (2,20)", x, y)
	}
}

func TestTableDomainAndKnots(t *testing.T) {
	tab := MustTable([]float64{0.1, 1.2}, []float64{1, 2})
	lo, hi := tab.Domain()
	if lo != 0.1 || hi != 1.2 {
		t.Fatalf("Domain = (%v,%v)", lo, hi)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d", tab.Len())
	}
	if x, y := tab.Knot(1); x != 1.2 || y != 2 {
		t.Fatalf("Knot(1) = (%v,%v)", x, y)
	}
}

func TestMustTablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustTable did not panic on bad input")
		}
	}()
	MustTable([]float64{1}, []float64{1})
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Fatalf("Summarize basic stats wrong: %+v", s)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Stddev = %v, want sqrt(2.5)", s.Stddev)
	}
	if s.Sum != 15 {
		t.Fatalf("Sum = %v", s.Sum)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty Summarize = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	if q, err := Quantile(sorted, 0); err != nil || q != 1 {
		t.Fatalf("q0 = %v, %v", q, err)
	}
	if q, err := Quantile(sorted, 1); err != nil || q != 4 {
		t.Fatalf("q1 = %v, %v", q, err)
	}
	if q, err := Quantile(sorted, 0.5); err != nil || math.Abs(q-2.5) > 1e-12 {
		t.Fatalf("q0.5 = %v, %v, want 2.5", q, err)
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("empty sample accepted")
	}
}

func TestErrorMetrics(t *testing.T) {
	pred := []float64{1, 2, 3}
	actual := []float64{1, 3, 5}
	if mae, err := MeanAbsError(pred, actual); err != nil || math.Abs(mae-1) > 1e-12 {
		t.Fatalf("MAE = %v, %v, want 1", mae, err)
	}
	if rmse, err := RootMeanSquareError(pred, actual); err != nil || math.Abs(rmse-math.Sqrt(5.0/3)) > 1e-12 {
		t.Fatalf("RMSE = %v, %v", rmse, err)
	}
	if _, err := MeanAbsError(pred, actual[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := RootMeanSquareError(nil, nil); err == nil {
		t.Fatal("empty sample accepted")
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("near-identical values not equal")
	}
	if AlmostEqual(1.0, 2.0, 1e-9) {
		t.Error("distinct values reported equal")
	}
	if !AlmostEqual(1e9, 1e9+1, 1e-6) {
		t.Error("relative tolerance not applied")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0.5, 1.5, 1.6, 2.5, -1, 99}, 3, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Bins: [0,1): {0.5, clamped -1} = 2; [1,2): {1.5, 1.6} = 2;
	// [2,3): {2.5, clamped 99} = 2.
	for i, want := range []int{2, 2, 2} {
		if h.Counts[i] != want {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], want)
		}
	}
	if h.N != 6 {
		t.Fatalf("N = %d", h.N)
	}
	lo, hi := h.BinRange(1)
	if lo != 1 || hi != 2 {
		t.Fatalf("bin 1 range [%v, %v)", lo, hi)
	}
	if f := h.Fraction(0); math.Abs(f-1.0/3) > 1e-12 {
		t.Fatalf("fraction = %v", f)
	}
	out := h.Render(12)
	if !strings.Contains(out, "#") {
		t.Fatalf("render missing bars:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Fatalf("render lines wrong:\n%s", out)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h, err := NewHistogram(nil, 2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Fraction(0) != 0 {
		t.Fatal("empty fraction")
	}
	if out := h.Render(10); strings.Contains(out, "#") {
		t.Fatal("empty histogram drew bars")
	}
}

func TestHistogramRejectsBadConfig(t *testing.T) {
	for name, f := range map[string]func() (*Histogram, error){
		"bins":  func() (*Histogram, error) { return NewHistogram(nil, 0, 0, 1) },
		"range": func() (*Histogram, error) { return NewHistogram(nil, 2, 1, 1) },
	} {
		if _, err := f(); err == nil {
			t.Errorf("%s: bad histogram accepted", name)
		}
	}
}
