package numeric

import (
	"errors"
	"fmt"
	"sort"
)

// Table is a piecewise-linear interpolation table over strictly increasing
// abscissae. It is the representation used for measured curves such as the
// fuel-cell polarization curve and the DC-DC converter efficiency map.
type Table struct {
	xs, ys []float64
}

// NewTable builds a table from parallel x/y slices. The xs must be strictly
// increasing and both slices must have the same length >= 2.
func NewTable(xs, ys []float64) (*Table, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("numeric: table length mismatch: %d xs vs %d ys", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return nil, errors.New("numeric: table needs at least 2 points")
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("numeric: table xs not strictly increasing at index %d", i)
		}
	}
	t := &Table{xs: make([]float64, len(xs)), ys: make([]float64, len(ys))}
	copy(t.xs, xs)
	copy(t.ys, ys)
	return t, nil
}

// MustTable is NewTable that panics on error; for package-level curve
// literals whose validity is a compile-time fact.
func MustTable(xs, ys []float64) *Table {
	t, err := NewTable(xs, ys)
	if err != nil {
		panic(err)
	}
	return t
}

// At evaluates the table at x with linear interpolation, clamping to the end
// values outside the domain.
func (t *Table) At(x float64) float64 {
	if x <= t.xs[0] {
		return t.ys[0]
	}
	n := len(t.xs)
	if x >= t.xs[n-1] {
		return t.ys[n-1]
	}
	i := sort.SearchFloat64s(t.xs, x)
	// xs[i-1] < x <= xs[i]
	x0, x1 := t.xs[i-1], t.xs[i]
	y0, y1 := t.ys[i-1], t.ys[i]
	return y0 + (y1-y0)*(x-x0)/(x1-x0)
}

// Domain returns the abscissa range covered by the table.
func (t *Table) Domain() (lo, hi float64) { return t.xs[0], t.xs[len(t.xs)-1] }

// Len returns the number of knots.
func (t *Table) Len() int { return len(t.xs) }

// Knot returns the i-th (x, y) pair.
func (t *Table) Knot(i int) (x, y float64) { return t.xs[i], t.ys[i] }

// ArgMax returns the abscissa and value of the maximum table knot. Because
// the table is piecewise linear, the maximum over the domain is attained at
// a knot.
func (t *Table) ArgMax() (x, y float64) {
	x, y = t.xs[0], t.ys[0]
	for i := 1; i < len(t.xs); i++ {
		if t.ys[i] > y {
			x, y = t.xs[i], t.ys[i]
		}
	}
	return x, y
}
