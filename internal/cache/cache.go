// Package cache is the content-addressed result store shared by the
// simulation server and the sweep dispatcher: rendered report bytes
// keyed by the scenario's canonical hash (see config.CacheKey). The
// memory tier is a size-bounded LRU; the optional disk tier persists
// every stored report with the same fsync+atomic-rename discipline as
// the runner's checkpoint journal, so a cached report survives a crash
// at any instant and a restarted process keeps its hits.
//
// The disk tier is also self-healing: a truncated or otherwise corrupt
// blob — a torn write from a crash that beat the rename, or operator
// damage — is treated as a counted miss, evicted, and re-simulated on
// the normal miss path rather than surfacing an error to the caller.
//
// Counters live in the obs registry handed to New, so /metrics,
// /v1/stats, and the cache itself all read one set of numbers.
package cache

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"sync/atomic"

	"fcdpm/internal/obs"
	"fcdpm/internal/vfs"
)

// Store is the two-tier content-addressed result store.
type Store struct {
	mu    sync.Mutex
	max   int64 // memory-tier byte bound; <= 0 disables the memory tier
	size  int64
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element
	dir   string // disk tier root; empty disables it
	fs    vfs.FS

	// diskDown marks the disk tier write-disabled after a disk-full
	// write failure: the store degrades to memory-only (reads of blobs
	// already on disk keep working) instead of hammering a full volume
	// on every put. Counted once in fallbacks.
	diskDown atomic.Bool

	hits   *obs.Counter
	misses *obs.Counter
	// diskHits counts hits served by the disk tier (included in hits);
	// diskErrs counts disk writes/reads that failed (the memory tier and
	// the response are unaffected).
	diskHits *obs.Counter
	diskErrs *obs.Counter
	// corrupt counts disk blobs that failed validation on read; each is
	// deleted and reported as a miss, so the caller re-simulates and the
	// next put overwrites the damage.
	corrupt *obs.Counter
	// oversize counts puts whose blob exceeded the memory-tier bound and
	// was therefore never admitted to memory (the disk tier still takes
	// it). Before this counter existed such a blob was admitted and then
	// pinned forever: the eviction loop refused to drop the last entry,
	// so one oversized report could hold Bytes above MaxBytes for the
	// life of the process.
	oversize *obs.Counter
	// fallbacks counts disk-full degradations: the moment the disk tier
	// was write-disabled and the store fell back to memory-only.
	fallbacks *obs.Counter
}

// entry is one memory-tier resident.
type entry struct {
	key   string
	bytes []byte
}

// keyPattern is the only shape a content address can take; it doubles as
// the path-traversal guard for the disk tier.
var keyPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// New builds the store and registers its series on reg (a nil registry
// gets a private one, for callers that don't export). It runs on the
// real filesystem; NewFS substitutes another (the chaos harness).
func New(maxBytes int64, dir string, reg *obs.Registry) (*Store, error) {
	return NewFS(maxBytes, dir, reg, nil)
}

// NewFS is New with an explicit filesystem; nil means the real one.
func NewFS(maxBytes int64, dir string, reg *obs.Registry, fs vfs.FS) (*Store, error) {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if fs == nil {
		fs = vfs.Default
	}
	c := &Store{
		max: maxBytes, ll: list.New(), byKey: make(map[string]*list.Element), dir: dir, fs: fs,
		hits:      reg.Counter("fcdpm_cache_hits_total", "Result-cache hits (memory or disk tier)."),
		misses:    reg.Counter("fcdpm_cache_misses_total", "Result-cache misses."),
		diskHits:  reg.Counter("fcdpm_cache_disk_hits_total", "Result-cache hits served by the disk tier."),
		diskErrs:  reg.Counter("fcdpm_cache_disk_errors_total", "Result-cache disk reads/writes that failed."),
		corrupt:   reg.Counter("fcdpm_cache_corrupt_total", "Disk-tier blobs that failed validation and were evicted (counted as misses)."),
		oversize:  reg.Counter("fcdpm_cache_oversize_rejects_total", "Puts rejected from the memory tier for exceeding its byte bound."),
		fallbacks: reg.Counter("fcdpm_cache_disk_fallbacks_total", "Disk-full degradations: the disk tier was write-disabled and the store fell back to memory-only."),
	}
	obs.RegisterIOWriteFailures(reg)
	reg.GaugeFunc("fcdpm_cache_disk_write_disabled", "1 while the disk tier is write-disabled after a disk-full failure.", func() float64 {
		if c.diskDown.Load() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("fcdpm_cache_entries", "Memory-tier resident entries.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.ll.Len())
	})
	reg.GaugeFunc("fcdpm_cache_bytes", "Memory-tier resident bytes.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.size)
	})
	reg.GaugeFunc("fcdpm_cache_max_bytes", "Memory-tier byte bound.", func() float64 {
		return float64(maxBytes)
	})
	if dir != "" {
		if err := fs.MkdirAll(dir); err != nil {
			return nil, fmt.Errorf("cache: dir: %w", err)
		}
	}
	return c, nil
}

// Get returns the report stored under key. A memory miss falls through
// to the disk tier and, on a hit there, repopulates memory. A disk blob
// that fails validation (truncated or corrupt JSON) is deleted and
// reported as a miss — the caller re-simulates and overwrites it.
func (c *Store) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		b := el.Value.(*entry).bytes
		c.mu.Unlock()
		c.hits.Inc()
		return b, true
	}
	c.mu.Unlock()
	if c.dir != "" && keyPattern.MatchString(key) {
		b, err := c.fs.ReadFile(c.diskPath(key))
		switch {
		case err == nil && json.Valid(b):
			c.insert(key, b)
			c.hits.Inc()
			c.diskHits.Inc()
			return b, true
		case err == nil:
			// Torn or damaged blob: evict it so the re-simulated result
			// can land cleanly, and count the event.
			c.corrupt.Inc()
			if rmErr := c.fs.Remove(c.diskPath(key)); rmErr != nil && !errors.Is(rmErr, os.ErrNotExist) {
				c.diskErrs.Inc()
			}
		case !errors.Is(err, os.ErrNotExist):
			c.diskErrs.Inc()
		}
	}
	c.misses.Inc()
	return nil, false
}

// Put stores the report under key in both tiers. A blob larger than the
// memory bound skips the memory tier (counted in the stats) but still
// reaches the disk tier, so it is served from disk rather than pinning
// the LRU above its bound. The disk write is atomic (temp + fsync +
// rename) and its failure only surfaces in the stats — the memory tier
// and the caller's bytes are already good. A disk-full failure
// write-disables the disk tier for the rest of the process (counted in
// fallbacks): the store degrades to memory-only rather than paying a
// doomed fsync on every subsequent put.
func (c *Store) Put(key string, b []byte) {
	if c.max > 0 && int64(len(b)) > c.max {
		c.oversize.Inc()
	}
	c.insert(key, b)
	if c.dir == "" || c.diskDown.Load() || !keyPattern.MatchString(key) {
		return
	}
	if err := c.fs.WriteFileAtomic(c.diskPath(key), b); err != nil {
		c.diskErrs.Inc()
		if vfs.IsDiskFull(err) && !c.diskDown.Swap(true) {
			c.fallbacks.Inc()
		}
	}
}

// insert adds (or refreshes) a memory-tier entry and evicts from the LRU
// tail until the byte bound holds again. Blobs that cannot fit even in
// an empty cache are rejected outright — admitting one used to leave it
// pinned, because eviction never drops the final entry.
func (c *Store) insert(key string, b []byte) {
	if c.max <= 0 || int64(len(b)) > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*entry)
		c.size += int64(len(b)) - int64(len(e.bytes))
		e.bytes = b
		c.ll.MoveToFront(el)
	} else {
		c.byKey[key] = c.ll.PushFront(&entry{key: key, bytes: b})
		c.size += int64(len(b))
	}
	for c.size > c.max && c.ll.Len() > 0 {
		el := c.ll.Back()
		e := el.Value.(*entry)
		c.ll.Remove(el)
		delete(c.byKey, e.key)
		c.size -= int64(len(e.bytes))
	}
}

func (c *Store) diskPath(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Stats is the operational snapshot (the /v1/stats cache section), read
// from the same obs counters /metrics renders.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	DiskHits  int64 `json:"diskHits"`
	DiskErrs  int64 `json:"diskErrs"`
	Corrupt   int64 `json:"corrupt"`
	Oversize  int64 `json:"oversize"`
	Fallbacks int64 `json:"diskFallbacks,omitempty"`
	DiskDown  bool  `json:"diskWriteDisabled,omitempty"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	MaxBytes  int64 `json:"maxBytes"`
}

// Stats snapshots the store.
func (c *Store) Stats() Stats {
	c.mu.Lock()
	entries, size := c.ll.Len(), c.size
	c.mu.Unlock()
	return Stats{
		Hits: int64(c.hits.Value()), Misses: int64(c.misses.Value()),
		DiskHits: int64(c.diskHits.Value()), DiskErrs: int64(c.diskErrs.Value()),
		Corrupt:   int64(c.corrupt.Value()),
		Oversize:  int64(c.oversize.Value()),
		Fallbacks: int64(c.fallbacks.Value()),
		DiskDown:  c.diskDown.Load(),
		Entries:   entries, Bytes: size, MaxBytes: c.max,
	}
}

// AtomicWriteFile writes b to path through a temp file, fsync, and
// rename, then best-effort syncs the directory — the same crash-safety
// discipline the runner journal uses. Kept as the package's convenience
// entry point for one-shot writers; durable subsystems that need fault
// injection take a vfs.FS instead.
func AtomicWriteFile(path string, b []byte) error {
	return vfs.Default.WriteFileAtomic(path, b)
}
