package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestCacheLRUEviction(t *testing.T) {
	c, err := New(100, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	key := func(i int) string { return fmt.Sprintf("%064d", i) }
	blob := bytes.Repeat([]byte("x"), 40)
	c.Put(key(1), blob)
	c.Put(key(2), blob)
	// Touch 1 so 2 is the eviction victim.
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("key 1 missing before eviction")
	}
	c.Put(key(3), blob) // 120 bytes > 100: evict LRU (key 2)
	if _, ok := c.Get(key(2)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("recently-used entry evicted")
	}
	if _, ok := c.Get(key(3)); !ok {
		t.Fatal("fresh entry evicted")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Bytes != 80 {
		t.Fatalf("stats after eviction: %+v", st)
	}
}

func TestCacheRejectsOversizeBlob(t *testing.T) {
	// Regression: the eviction loop used to refuse to drop the last
	// resident, so a single blob larger than the bound stayed pinned
	// forever with Bytes > MaxBytes. Oversize blobs must now never enter
	// the memory tier — and must be counted.
	c, _ := New(10, "", nil)
	k := fmt.Sprintf("%064d", 1)
	big := bytes.Repeat([]byte("y"), 50)
	c.Put(k, big)
	if _, ok := c.Get(k); ok {
		t.Fatal("oversize blob admitted to the memory tier")
	}
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversize blob left residue: %+v", st)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("Bytes %d above MaxBytes %d", st.Bytes, st.MaxBytes)
	}
	if st.Oversize != 1 {
		t.Fatalf("oversize reject not counted: %+v", st)
	}
	// The tier still works for blobs that fit.
	small := []byte("12345")
	c.Put(k, small)
	if b, ok := c.Get(k); !ok || !bytes.Equal(b, small) {
		t.Fatal("fitting blob not admitted after oversize reject")
	}
}

func TestCacheOversizeBlobServedFromDisk(t *testing.T) {
	// An oversize blob skips memory but still persists to (and serves
	// from) the disk tier.
	c, _ := New(10, t.TempDir(), nil)
	k := fmt.Sprintf("%064d", 2)
	// A valid-JSON blob (the disk tier validates on read) that exceeds
	// the 10-byte memory bound.
	big := append(append([]byte{'"'}, bytes.Repeat([]byte("z"), 50)...), '"')
	c.Put(k, big)
	if b, ok := c.Get(k); !ok || !bytes.Equal(b, big) {
		t.Fatal("oversize blob not served by the disk tier")
	}
	if st := c.Stats(); st.DiskHits != 1 || st.Entries != 0 {
		t.Fatalf("disk-tier oversize serve miscounted: %+v", st)
	}
}

func TestCachePutMemoryTierDisabled(t *testing.T) {
	// With the memory tier off (zero or negative bound) and no disk
	// tier, puts are silent no-ops: no residue, no panic, stable stats.
	for _, max := range []int64{0, -1} {
		c, err := New(max, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		k := fmt.Sprintf("%064d", 3)
		c.Put(k, []byte("data"))
		if _, ok := c.Get(k); ok {
			t.Fatalf("max=%d: entry admitted with memory tier disabled", max)
		}
		st := c.Stats()
		if st.Entries != 0 || st.Bytes != 0 {
			t.Fatalf("max=%d: residue in disabled tier: %+v", max, st)
		}
		// Not an oversize reject — the tier is off, not too small.
		if st.Oversize != 0 {
			t.Fatalf("max=%d: disabled tier counted oversize: %+v", max, st)
		}
		if st.Misses != 1 {
			t.Fatalf("max=%d: get not counted as miss: %+v", max, st)
		}
	}
}

func TestCacheDiskTierGuardsKeys(t *testing.T) {
	dir := t.TempDir()
	c, err := New(0, dir, nil) // memory tier disabled
	if err != nil {
		t.Fatal(err)
	}
	// A traversal-shaped key must never touch the filesystem.
	c.Put("../escape", []byte("nope"))
	if _, err := os.Stat(filepath.Join(filepath.Dir(dir), "escape.json")); err == nil {
		t.Fatal("path traversal escaped the cache dir")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("unexpected files for invalid key: %v", entries)
	}

	valid := fmt.Sprintf("%064x", 0xabc)
	c.Put(valid, []byte(`{"ok":true}`))
	if b, ok := c.Get(valid); !ok || !bytes.Equal(b, []byte(`{"ok":true}`)) {
		t.Fatal("disk round-trip failed with memory tier disabled")
	}
	if st := c.Stats(); st.DiskHits != 1 {
		t.Fatalf("disk hit not counted: %+v", st)
	}
}

func TestCacheCorruptDiskBlobIsCountedMiss(t *testing.T) {
	// Regression (robustness): a truncated or otherwise corrupt disk
	// blob — a torn write from a crash that beat the rename — must read
	// as a counted miss, not an error or garbage served to the client.
	// The damaged file is evicted so a re-simulated Put lands cleanly.
	dir := t.TempDir()
	c, err := New(0, dir, nil) // memory tier off: force the disk path
	if err != nil {
		t.Fatal(err)
	}
	k := fmt.Sprintf("%064x", 0xdead)
	full := []byte(`{"name":"run","fuelAs":12.5}`)
	c.Put(k, full)

	// Deliberately truncate the blob mid-token.
	path := filepath.Join(dir, k+".json")
	if err := os.WriteFile(path, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	if b, ok := c.Get(k); ok {
		t.Fatalf("corrupt blob served: %q", b)
	}
	st := c.Stats()
	if st.Corrupt != 1 {
		t.Fatalf("corrupt blob not counted: %+v", st)
	}
	if st.Misses != 1 {
		t.Fatalf("corrupt blob not a miss: %+v", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt blob not evicted: %v", err)
	}

	// Re-simulate and overwrite: the store heals.
	c.Put(k, full)
	if b, ok := c.Get(k); !ok || !bytes.Equal(b, full) {
		t.Fatal("overwrite after corruption did not heal the entry")
	}
	if st := c.Stats(); st.Corrupt != 1 || st.DiskHits != 1 {
		t.Fatalf("stats after heal: %+v", st)
	}
}

func TestAtomicWriteFileReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.json")
	if err := AtomicWriteFile(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "v2" {
		t.Fatalf("replace: %q %v", b, err)
	}
	// No temp litter.
	files, _ := filepath.Glob(filepath.Join(dir, ".cache-*"))
	if len(files) != 0 {
		t.Fatalf("temp files left behind: %v", files)
	}
}
