package fcopt

import (
	"math"
	"testing"

	"fcdpm/internal/fuelcell"
)

// FuzzOptimize throws arbitrary slot parameters at the closed-form
// optimizer: it must either reject the slot or return an in-range,
// finite-fuel setting — never panic, never emit NaN.
func FuzzOptimize(f *testing.F) {
	f.Add(20.0, 0.2, 10.0, 1.2, 0.0, 0.0, 6.0, false)
	f.Add(0.0, 0.0, 5.0, 1.0, 3.0, 3.0, 6.0, true)
	f.Add(14.0, 0.2, 3.03, 1.22, 1.0, 1.0, 6.0, true)
	f.Add(-1.0, 0.5, 2.0, 0.5, 0.0, 0.0, 1.0, false)
	f.Add(1e9, 1e9, 1e9, 1e9, 1e9, 1e9, 1e9, true)
	sys := fuelcell.PaperSystem()
	f.Fuzz(func(t *testing.T, ti, ildI, ta, ildA, cini, cend, cmax float64, sleep bool) {
		s := Slot{Ti: ti, IldI: ildI, Ta: ta, IldA: ildA, Cini: cini, Cend: cend, Sleep: sleep}
		if sleep {
			s.Overhead = &Overhead{TauWU: 0.5, IWU: 0.4, TauPD: 0.5, IPD: 0.4}
		}
		set, err := Optimize(sys, cmax, s)
		if err != nil {
			return
		}
		if math.IsNaN(set.IFi) || math.IsNaN(set.IFa) || math.IsNaN(set.Fuel) {
			t.Fatalf("NaN in setting %+v for slot %+v", set, s)
		}
		if !sys.InRange(set.IFi) || !sys.InRange(set.IFa) {
			t.Fatalf("out-of-range setting %+v for slot %+v", set, s)
		}
		if set.Fuel < 0 || math.IsInf(set.Fuel, 0) {
			t.Fatalf("bad fuel %v for slot %+v", set.Fuel, s)
		}
	})
}

// FuzzOptimizeQuantized does the same for the discrete-level solver.
func FuzzOptimizeQuantized(f *testing.F) {
	f.Add(20.0, 0.2, 10.0, 1.2, 0.0, 0.0, 6.0)
	f.Add(5.0, 1.0, 20.0, 1.4, 3.0, 6.0, 6.0)
	sys := fuelcell.PaperSystem()
	levels := UniformLevels(sys, 7)
	f.Fuzz(func(t *testing.T, ti, ildI, ta, ildA, cini, cend, cmax float64) {
		s := Slot{Ti: ti, IldI: ildI, Ta: ta, IldA: ildA, Cini: cini, Cend: cend}
		set, err := OptimizeQuantized(sys, cmax, s, levels)
		if err != nil {
			return
		}
		onGrid := func(x float64) bool {
			for _, l := range levels {
				if x == l {
					return true
				}
			}
			return false
		}
		if !onGrid(set.IFi) || !onGrid(set.IFa) {
			t.Fatalf("off-grid setting %+v", set)
		}
		if math.IsNaN(set.Fuel) || set.Fuel < 0 {
			t.Fatalf("bad fuel %v", set.Fuel)
		}
	})
}
