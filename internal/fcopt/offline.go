package fcopt

import (
	"fmt"
	"math"

	"fcdpm/internal/fuelcell"
)

// OfflineProblem is a whole-trace, capacity-constrained fuel-minimization
// instance: the true offline lower bound the online FC-DPM policy is
// compared against. Slots carry the *actual* (not predicted) parameters;
// the per-slot Cini/Cend fields are ignored — the dynamic program owns the
// storage trajectory.
type OfflineProblem struct {
	Sys   *fuelcell.System
	Cmax  float64
	Slots []Slot
	// Q0 is the storage charge at the start of the trace; the schedule
	// must end at or above FinalMin (defaults to Q0 — no free charge).
	Q0       float64
	FinalMin float64
	// GridN is the number of storage-level intervals in the DP
	// discretization (default 60).
	GridN int
}

// OfflineSchedule is the DP result: one Setting per slot plus the achieved
// total fuel and the storage trajectory at slot boundaries.
type OfflineSchedule struct {
	Settings []Setting
	Fuel     float64
	// Charges holds the storage level at each slot start plus the final
	// level (len = len(Settings)+1).
	Charges []float64
}

// SolveOffline computes the minimum-fuel schedule by dynamic programming
// over a discretized storage state. The transition cost between storage
// levels (q0 → q1) across one slot is the single-slot closed form
// (Optimize with Cini = q0, Cend = q1); because range clamps can make a
// target unreachable, each transition is re-simulated and credited to the
// storage level actually achieved.
//
// Complexity is O(slots · GridN²) closed-form solves — about half a
// million for the paper's 28-minute trace at the default grid, well under
// a second.
func SolveOffline(p OfflineProblem) (*OfflineSchedule, error) {
	switch {
	case p.Sys == nil:
		return nil, fmt.Errorf("fcopt: nil system")
	case p.Cmax <= 0:
		return nil, fmt.Errorf("fcopt: non-positive capacity %v", p.Cmax)
	case len(p.Slots) == 0:
		return nil, fmt.Errorf("fcopt: no slots")
	case p.Q0 < 0 || p.Q0 > p.Cmax:
		return nil, fmt.Errorf("fcopt: Q0 %v outside [0, %v]", p.Q0, p.Cmax)
	}
	gridN := p.GridN
	if gridN <= 0 {
		gridN = 60
	}
	finalMin := p.FinalMin
	if finalMin == 0 {
		finalMin = p.Q0
	}
	n := len(p.Slots)
	levels := gridN + 1
	q := func(i int) float64 { return p.Cmax * float64(i) / float64(gridN) }
	idxOf := func(charge float64) int {
		i := int(math.Floor(charge / p.Cmax * float64(gridN)))
		if i < 0 {
			return 0
		}
		if i > gridN {
			return gridN
		}
		return i
	}

	type cell struct {
		cost float64
		next int // storage index after this slot
		set  Setting
	}
	// value[i] = minimal future fuel from slot k at storage level i.
	value := make([]float64, levels)
	nextVal := make([]float64, levels)
	choice := make([][]cell, n)

	// Terminal condition: require the final charge to be at least
	// finalMin (no ending the trace on borrowed charge).
	for i := 0; i < levels; i++ {
		if q(i)+1e-9 >= finalMin {
			value[i] = 0
		} else {
			value[i] = math.Inf(1)
		}
	}

	for k := n - 1; k >= 0; k-- {
		slot := p.Slots[k]
		choice[k] = make([]cell, levels)
		for i := 0; i < levels; i++ {
			bestCost := math.Inf(1)
			var bestCell cell
			for j := 0; j < levels; j++ {
				s := slot
				s.Cini = q(i)
				s.Cend = q(j)
				set, err := Optimize(p.Sys, p.Cmax, s)
				if err != nil {
					continue
				}
				// Recompute the achieved end charge with bleeder
				// clamping; clamped settings may miss the q(j) target.
				end := achievedEnd(p.Cmax, s, set)
				jj := idxOf(end)
				if math.IsInf(value[jj], 1) {
					continue
				}
				total := set.Fuel + value[jj]
				if total < bestCost {
					bestCost = total
					bestCell = cell{cost: total, next: jj, set: set}
				}
			}
			choice[k][i] = bestCell
			nextVal[i] = bestCost
		}
		value, nextVal = nextVal, value
	}

	start := idxOf(p.Q0)
	if math.IsInf(value[start], 1) {
		return nil, fmt.Errorf("fcopt: offline problem infeasible from Q0=%v", p.Q0)
	}
	out := &OfflineSchedule{Fuel: value[start]}
	i := start
	out.Charges = append(out.Charges, q(i))
	for k := 0; k < n; k++ {
		c := choice[k][i]
		out.Settings = append(out.Settings, c.set)
		i = c.next
		out.Charges = append(out.Charges, q(i))
	}
	return out, nil
}

// achievedEnd computes the slot-end storage charge a setting actually
// produces, with bleeder clamping at Cmax and an empty floor.
func achievedEnd(cmax float64, s Slot, set Setting) float64 {
	taEff, activeCharge := s.demand()
	peak := s.Cini + (set.IFi-s.IldI)*s.Ti
	if peak > cmax {
		peak = cmax
	}
	if peak < 0 {
		peak = 0
	}
	end := peak
	if taEff > 0 {
		end = peak + set.IFa*taEff - activeCharge
		if end > cmax {
			end = cmax
		}
		if end < 0 {
			end = 0
		}
	}
	return end
}
