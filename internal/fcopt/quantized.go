package fcopt

import (
	"fmt"
	"math"
	"sort"

	"fcdpm/internal/fuelcell"
)

// OptimizeQuantized solves the slot problem when the FC system supports
// only a discrete set of output levels — the multi-level configuration of
// the authors' companion work [11] ("the case when the FC supports
// multiple output levels"). Real fuel-flow controllers often quantize the
// set point; this variant shows how much of the continuous optimum
// survives coarse quantization (see the ablation bench).
//
// The solver enumerates all level pairs (IF,i, IF,a), simulates the slot's
// charge trajectory (with bleeder clamping at Cmax), rejects pairs that
// drain the storage below empty or end below the Cend target, and returns
// the feasible pair with minimal fuel. When no pair can reach Cend, the
// pair ending highest is returned (mirroring how the online policy
// degrades: the next slot's Cini ≠ Cend correction absorbs the shortfall).
func OptimizeQuantized(sys *fuelcell.System, cmax float64, s Slot, levels []float64) (Setting, error) {
	if len(levels) == 0 {
		return Setting{}, fmt.Errorf("fcopt: no output levels")
	}
	lv := make([]float64, 0, len(levels))
	for _, l := range levels {
		if !sys.InRange(l) {
			return Setting{}, fmt.Errorf("fcopt: level %v outside load-following range [%v, %v]",
				l, sys.MinOutput, sys.MaxOutput)
		}
		lv = append(lv, l)
	}
	sort.Float64s(lv)
	return OptimizeQuantizedSorted(sys, cmax, s, lv)
}

// OptimizeQuantizedSorted is OptimizeQuantized for callers that have
// already sorted and range-checked the level grid (a policy validates its
// grid once at construction, then plans every slot): the per-call copy,
// sort, and range scan are skipped, keeping repeated planning on the
// zero-allocation path. levels must be ascending and inside the
// load-following range; a violated contract degrades the answer, it does
// not corrupt memory.
func OptimizeQuantizedSorted(sys *fuelcell.System, cmax float64, s Slot, lv []float64) (Setting, error) {
	if err := s.Validate(); err != nil {
		return Setting{}, err
	}
	if cmax <= 0 {
		return Setting{}, fmt.Errorf("fcopt: non-positive storage capacity %v", cmax)
	}
	if len(lv) == 0 {
		return Setting{}, fmt.Errorf("fcopt: no output levels")
	}

	taEff, activeCharge := s.demand()
	best := Setting{TaEff: taEff, Fuel: math.Inf(1)}
	bestFound := false
	// Fallback: the pair that ends with the most charge, used when no
	// pair can reach the Cend target.
	fallback := Setting{TaEff: taEff}
	fallbackEnd := math.Inf(-1)

	for _, ifi := range lv {
		// Idle-phase trajectory with bleeder clamping at Cmax.
		peak := s.Cini + (ifi-s.IldI)*s.Ti
		if peak < -1e-9 {
			continue // storage would run dry during idle
		}
		if peak > cmax {
			peak = cmax // excess bled
		}
		for _, ifa := range lv {
			end := peak
			if taEff > 0 {
				avgA := activeCharge / taEff
				end = peak + (ifa-avgA)*taEff
				if end < -1e-9 {
					continue // dry during active
				}
				if end > cmax {
					end = cmax
				}
			}
			fuel := sys.Fuel(ifi, s.Ti) + sys.Fuel(ifa, taEff)
			if end > fallbackEnd || (end == fallbackEnd && fuel < fallback.Fuel) {
				fallbackEnd = end
				fallback = Setting{IFi: ifi, IFa: ifa, TaEff: taEff, Fuel: fuel, ClampedRange: true}
			}
			if end+1e-9 < s.Cend {
				continue // misses the stability target
			}
			if fuel < best.Fuel {
				best = Setting{IFi: ifi, IFa: ifa, TaEff: taEff, Fuel: fuel}
				bestFound = true
			}
		}
	}
	if !bestFound {
		if math.IsInf(fallbackEnd, -1) {
			return Setting{}, fmt.Errorf("fcopt: no feasible level pair for slot (levels %v)", lv)
		}
		return fallback, nil
	}
	return best, nil
}

// UniformLevels returns n output levels evenly spaced over the system's
// load-following range (inclusive of both ends). n must be at least 2.
func UniformLevels(sys *fuelcell.System, n int) []float64 {
	if n < 2 {
		n = 2
	}
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		out[k] = sys.MinOutput + (sys.MaxOutput-sys.MinOutput)*float64(k)/float64(n-1)
	}
	return out
}
