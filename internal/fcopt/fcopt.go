// Package fcopt implements the paper's §3 optimization framework: choosing
// the FC system output currents (IF,i for the idle period, IF,a for the
// active period) of a single task slot so that fuel consumption is
// minimized subject to charge balance on the storage element, the FC
// load-following range, the storage capacity, and — optionally — the DPM
// sleep-transition overheads (§3.3.2).
//
// The fuel objective is
//
//	O(IF,i, IF,a) = Ifc(IF,i)·Ti + Ifc(IF,a)·Ta'
//
// with Ifc(IF) = VF·IF/(ζ·(α−β·IF)) (Eq 4-5), which is convex and
// increasing over the load-following range. Under the charge-balance
// equality (Eq 6/13) the Lagrange conditions (Eq 8-10) force
// IF,i = IF,a = I*, the demand-weighted average current (Eq 11). The
// constrained cases then follow the paper's §3.3.1 adjustment procedure.
package fcopt

import (
	"fmt"
	"math"

	"fcdpm/internal/fuelcell"
	"fcdpm/internal/numeric"
)

// Slot specifies one task slot for the optimizer. All currents are FC
// system-side amps; all times seconds; all charges amp-seconds.
type Slot struct {
	// Ti and IldI are the idle period length and load current (Isdb or
	// Islp depending on the DPM decision).
	Ti, IldI float64
	// Ta and IldA are the active period length and load current.
	Ta, IldA float64
	// Cini is the storage charge at the start of the slot; Cend is the
	// desired charge at the end (the paper targets Cini of the first slot
	// for stability, §3.3.1 "Cend ≠ Cini").
	Cini, Cend float64
	// Sleep indicates the DPM decision for this idle period (δ in
	// §3.3.2); when true and Overhead is set, wake-up overhead is added.
	Sleep bool
	// Overhead, when non-nil, enables the §3.3.2 transition-overhead
	// formulation.
	Overhead *Overhead
}

// Overhead carries the DPM sleep-transition costs of §3.3.2. The paper
// conservatively charges the *next* slot's power-down (τPD, IPD) to the
// current slot and extends the active period by δ·τWU + τPD at the
// active-period FC setting.
type Overhead struct {
	TauWU, IWU float64
	TauPD, IPD float64
}

// Setting is the optimizer's output for one slot.
type Setting struct {
	// IFi and IFa are the chosen FC system output currents for the idle
	// and (extended) active periods.
	IFi, IFa float64
	// TaEff is the effective active-period length Ta + δ·τWU + τPD the
	// IFa applies to (equals Ta when no overhead is modelled).
	TaEff float64
	// Fuel is the objective value: stack amp-seconds consumed over the
	// slot under this setting.
	Fuel float64
	// ClampedRange and ClampedCapacity record which constraints bound the
	// solution (paper: "set to the closest boundary value" / Eq 12).
	ClampedRange, ClampedCapacity bool
}

// Validate reports whether the slot is well-formed.
func (s Slot) Validate() error {
	switch {
	case s.Ti < 0 || s.Ta < 0:
		return fmt.Errorf("fcopt: negative period (Ti=%v, Ta=%v)", s.Ti, s.Ta)
	case s.Ti+s.Ta == 0:
		return fmt.Errorf("fcopt: empty slot")
	case s.IldI < 0 || s.IldA < 0:
		return fmt.Errorf("fcopt: negative load current")
	case s.Cini < 0 || s.Cend < 0:
		return fmt.Errorf("fcopt: negative storage charge")
	}
	if s.Overhead != nil {
		o := s.Overhead
		if o.TauWU < 0 || o.TauPD < 0 || o.IWU < 0 || o.IPD < 0 {
			return fmt.Errorf("fcopt: negative overhead parameter")
		}
	}
	return nil
}

// demand returns the effective active length Ta' and the total charge the
// load plus transitions will draw during it (paper §3.3.2).
func (s Slot) demand() (taEff, activeCharge float64) {
	taEff = s.Ta
	activeCharge = s.IldA * s.Ta
	if s.Overhead != nil {
		if s.Sleep {
			taEff += s.Overhead.TauWU
			activeCharge += s.Overhead.IWU * s.Overhead.TauWU
		}
		taEff += s.Overhead.TauPD
		activeCharge += s.Overhead.IPD * s.Overhead.TauPD
	}
	return taEff, activeCharge
}

// Optimize computes the fuel-optimal FC output setting for the slot against
// the given FC system and storage capacity cmax, following the paper's
// procedure:
//
//  1. Solve the unconstrained Lagrange system: IF,i = IF,a = I* (Eq 11,
//     generalized to Cend ≠ Cini and transition overheads).
//  2. Clamp I* to the load-following range (§3.3.1).
//  3. If the idle-period charging would overflow the storage (Eq 12),
//     lower IF,i to hit Cmax exactly and re-solve IF,a from the
//     charge-balance constraint (Eq 13), clamping again.
//  4. Symmetrically, if the idle-period setting would drain the storage
//     below empty, raise IF,i to keep the charge non-negative. (The paper
//     does not spell this case out; it is required for physical validity
//     when Cend > Cini cannot be met within range.)
//
// A zero-length idle or active period degenerates gracefully: the setting
// for the missing period is the range-clamped load current.
func Optimize(sys *fuelcell.System, cmax float64, s Slot) (Setting, error) {
	if err := s.Validate(); err != nil {
		return Setting{}, err
	}
	if cmax <= 0 {
		return Setting{}, fmt.Errorf("fcopt: non-positive storage capacity %v", cmax)
	}
	if s.Cini > cmax || s.Cend > cmax {
		return Setting{}, fmt.Errorf("fcopt: charge state beyond capacity (Cini=%v, Cend=%v, Cmax=%v)",
			s.Cini, s.Cend, cmax)
	}

	taEff, activeCharge := s.demand()
	set := Setting{TaEff: taEff}

	switch {
	case s.Ti == 0:
		// Pure active slot: meet demand directly.
		set.IFa = sys.Clamp(activeCharge/taEff + (s.Cend-s.Cini)/taEff)
		set.ClampedRange = !sys.InRange(activeCharge/taEff + (s.Cend-s.Cini)/taEff)
		set.IFi = set.IFa
	case taEff == 0:
		set.IFi = sys.Clamp(s.IldI + (s.Cend-s.Cini)/s.Ti)
		set.ClampedRange = !sys.InRange(s.IldI + (s.Cend-s.Cini)/s.Ti)
		set.IFa = set.IFi
	default:
		optimizeBoth(sys, cmax, s, taEff, activeCharge, &set)
	}

	set.Fuel = sys.Fuel(set.IFi, s.Ti) + sys.Fuel(set.IFa, taEff)
	return set, nil
}

// optimizeBoth handles the general two-period case.
func optimizeBoth(sys *fuelcell.System, cmax float64, s Slot, taEff, activeCharge float64, set *Setting) {
	// Unconstrained optimum (Eq 11 generalized): the total delivered
	// charge must equal total demand plus the desired storage delta.
	istar := (s.IldI*s.Ti + activeCharge + s.Cend - s.Cini) / (s.Ti + taEff)
	ifi := istar
	ifa := istar
	if !sys.InRange(istar) {
		ifi = sys.Clamp(istar)
		ifa = ifi
		set.ClampedRange = true
	}

	// Storage-capacity constraint during the idle period (Eq 12).
	peak := s.Cini + (ifi-s.IldI)*s.Ti
	if peak > cmax+1e-12 {
		// Lower IF,i so the idle period ends exactly full...
		ifi = s.IldI + (cmax-s.Cini)/s.Ti
		set.ClampedCapacity = true
		if !sys.InRange(ifi) {
			// ...unless even the bottom of the range overfills — the
			// paper routes the excess through the bleeder by-pass; the
			// simulator accounts the bleed.
			ifi = sys.Clamp(ifi)
			set.ClampedRange = true
		}
		ifa = rebalanceActive(sys, s, taEff, activeCharge, ifi, set)
	} else if peak < -1e-12 {
		// Symmetric guard: the storage cannot supply the idle deficit.
		ifi = s.IldI - s.Cini/s.Ti
		set.ClampedCapacity = true
		if !sys.InRange(ifi) {
			ifi = sys.Clamp(ifi)
			set.ClampedRange = true
		}
		ifa = rebalanceActive(sys, s, taEff, activeCharge, ifi, set)
	} else if set.ClampedRange {
		// Range clamp alone also breaks charge balance; re-solve the
		// active setting (Eq 13) and re-check capacity.
		ifa = rebalanceActive(sys, s, taEff, activeCharge, ifi, set)
		peak = s.Cini + (ifi-s.IldI)*s.Ti
		if peak > cmax+1e-12 {
			ifi = sys.Clamp(s.IldI + (cmax-s.Cini)/s.Ti)
			set.ClampedCapacity = true
			ifa = rebalanceActive(sys, s, taEff, activeCharge, ifi, set)
		}
	}
	set.IFi = ifi
	set.IFa = ifa
}

// rebalanceActive solves Eq 13 for IF,a given IF,i, then range-clamps.
func rebalanceActive(sys *fuelcell.System, s Slot, taEff, activeCharge, ifi float64, set *Setting) float64 {
	// Cini + (IF,i − Ild,i)·Ti = Cend + activeCharge − IF,a·Ta'
	ifa := (s.Cend + activeCharge - s.Cini - (ifi-s.IldI)*s.Ti) / taEff
	if !sys.InRange(ifa) {
		ifa = sys.Clamp(ifa)
		set.ClampedRange = true
	}
	return ifa
}

// Objective evaluates the §3.3 fuel objective for arbitrary currents — used
// by tests and the numeric cross-check.
func Objective(sys *fuelcell.System, s Slot, ifi, ifa float64) float64 {
	taEff, _ := s.demand()
	return sys.Fuel(ifi, s.Ti) + sys.Fuel(ifa, taEff)
}

// NumericOptimize cross-checks Optimize by direct golden-section search
// over IF,i with IF,a eliminated through the charge-balance constraint and
// both currents clamped to range. It ignores the storage-capacity
// constraint (supply cmax = +Inf situations) and exists to validate the
// closed form; production code should call Optimize.
func NumericOptimize(sys *fuelcell.System, s Slot) (ifi, ifa, fuel float64) {
	taEff, activeCharge := s.demand()
	if s.Ti == 0 || taEff == 0 {
		set, err := Optimize(sys, math.MaxFloat64/4, s)
		if err != nil {
			return 0, 0, math.NaN()
		}
		return set.IFi, set.IFa, set.Fuel
	}
	eval := func(x float64) float64 {
		aRaw := (s.Cend + activeCharge - s.Cini - (x-s.IldI)*s.Ti) / taEff
		a := sys.Clamp(aRaw)
		// Penalize charge-balance violations so the search cannot "win"
		// by under-delivering Cend; the penalty is convex in x, keeping
		// the objective unimodal for golden section.
		return sys.Fuel(x, s.Ti) + sys.Fuel(a, taEff) + 1e6*math.Abs(aRaw-a)
	}
	ifi = numeric.GoldenMin(eval, sys.MinOutput, sys.MaxOutput, 1e-12)
	ifa = sys.Clamp((s.Cend + activeCharge - s.Cini - (ifi-s.IldI)*s.Ti) / taEff)
	return ifi, ifa, eval(ifi)
}
