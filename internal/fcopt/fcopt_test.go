package fcopt

import (
	"math"
	"testing"
	"testing/quick"

	"fcdpm/internal/fuelcell"
	"fcdpm/internal/numeric"
)

// motivSlot is the §3.2 motivational example: Ti = 20 s at 0.2 A idle,
// Ta = 10 s at 1.2 A active, Cmax = 200 A-s, Cini = Cend = 0.
func motivSlot() Slot {
	return Slot{Ti: 20, IldI: 0.2, Ta: 10, IldA: 1.2}
}

func TestMotivationalExampleOptimum(t *testing.T) {
	sys := fuelcell.PaperSystem()
	set, err := Optimize(sys, 200, motivSlot())
	if err != nil {
		t.Fatal(err)
	}
	// Eq 11: IF = (0.2·20 + 1.2·10)/30 = 0.5333 A; paper quotes 0.53 A.
	if math.Abs(set.IFi-16.0/30) > 1e-9 || math.Abs(set.IFa-16.0/30) > 1e-9 {
		t.Fatalf("IF = (%v, %v), want 0.5333", set.IFi, set.IFa)
	}
	// Corresponding Ifc = 0.448 A (paper §3.2) and fuel = 13.45 A-s.
	if ifc := sys.StackCurrent(set.IFi); math.Abs(ifc-0.448) > 0.001 {
		t.Errorf("Ifc = %v, want 0.448", ifc)
	}
	if math.Abs(set.Fuel-13.45) > 0.01 {
		t.Errorf("fuel = %v, want 13.45 A-s", set.Fuel)
	}
	if set.ClampedRange || set.ClampedCapacity {
		t.Errorf("unconstrained case reported clamps: %+v", set)
	}
}

func TestMotivationalExampleComparisons(t *testing.T) {
	sys := fuelcell.PaperSystem()
	s := motivSlot()
	set, err := Optimize(sys, 200, s)
	if err != nil {
		t.Fatal(err)
	}
	asap := Objective(sys, s, 0.2, 1.2) // setting (b): follow the load
	conv := Objective(sys, s, 1.2, 1.2) // setting (a): pinned at range top
	// Paper: ASAP ≈ 16 A-s (exact model: 16.08).
	if math.Abs(asap-16.08) > 0.02 {
		t.Errorf("ASAP fuel = %v, want ≈16.08", asap)
	}
	// Paper reports Conv = 36 using Ifc≈IF; the exact Eq 4 value is 39.18.
	if math.Abs(conv-39.18) > 0.02 {
		t.Errorf("Conv fuel = %v, want ≈39.18", conv)
	}
	// FC-DPM saves ≈16 % vs ASAP (paper: 15.9 %).
	saving := 1 - set.Fuel/asap
	if saving < 0.14 || saving > 0.18 {
		t.Errorf("saving vs ASAP = %v, want ≈0.16", saving)
	}
	// Charge stored during idle = discharge during active = 6.67 A-s.
	stored := (set.IFi - s.IldI) * s.Ti
	drained := (s.IldA - set.IFa) * s.Ta
	if math.Abs(stored-20.0/3) > 1e-9 || math.Abs(stored-drained) > 1e-9 {
		t.Errorf("charge balance: stored %v, drained %v, want 6.67", stored, drained)
	}
}

func TestOptimumBeatsAllAlternatives(t *testing.T) {
	sys := fuelcell.PaperSystem()
	s := motivSlot()
	set, err := Optimize(sys, 200, s)
	if err != nil {
		t.Fatal(err)
	}
	// Scan feasible (IFi, IFa) pairs satisfying charge balance: none may
	// beat the optimizer.
	for ifi := 0.1; ifi <= 1.2; ifi += 0.01 {
		ifa := (s.IldA*s.Ta - (ifi-s.IldI)*s.Ti) / s.Ta
		if ifa < 0.1 || ifa > 1.2 {
			continue
		}
		if f := Objective(sys, s, ifi, ifa); f < set.Fuel-1e-9 {
			t.Fatalf("found better feasible point (%v, %v): %v < %v", ifi, ifa, f, set.Fuel)
		}
	}
}

func TestRangeClampHighDemand(t *testing.T) {
	sys := fuelcell.PaperSystem()
	// Very heavy active load pushes I* above 1.2 A.
	s := Slot{Ti: 5, IldI: 0.4, Ta: 20, IldA: 1.5}
	set, err := Optimize(sys, 1e6, s)
	if err != nil {
		t.Fatal(err)
	}
	if !set.ClampedRange {
		t.Error("expected range clamp")
	}
	if set.IFi != 1.2 && set.IFa != 1.2 {
		t.Errorf("no current at range top: %+v", set)
	}
	if set.IFi > 1.2 || set.IFa > 1.2 {
		t.Errorf("setting out of range: %+v", set)
	}
}

func TestRangeClampLowDemand(t *testing.T) {
	sys := fuelcell.PaperSystem()
	// Tiny loads push I* below 0.1 A.
	s := Slot{Ti: 20, IldI: 0.02, Ta: 5, IldA: 0.05}
	set, err := Optimize(sys, 1e6, s)
	if err != nil {
		t.Fatal(err)
	}
	if !set.ClampedRange {
		t.Error("expected range clamp at bottom")
	}
	if set.IFi < 0.1 || set.IFa < 0.1 {
		t.Errorf("setting below range: %+v", set)
	}
}

func TestCapacityConstraint(t *testing.T) {
	sys := fuelcell.PaperSystem()
	s := motivSlot() // unconstrained would store 6.67 A-s
	set, err := Optimize(sys, 4, s)
	if err != nil {
		t.Fatal(err)
	}
	if !set.ClampedCapacity {
		t.Fatal("expected capacity clamp")
	}
	// Eq 12 equality: idle ends exactly full.
	peak := s.Cini + (set.IFi-s.IldI)*s.Ti
	if math.Abs(peak-4) > 1e-9 {
		t.Errorf("idle-end charge = %v, want Cmax=4", peak)
	}
	// Eq 13: active returns to Cend.
	end := peak + (set.IFa-s.IldA)*set.TaEff
	if math.Abs(end-s.Cend) > 1e-9 {
		t.Errorf("slot-end charge = %v, want %v", end, s.Cend)
	}
	// The capacity-constrained optimum must cost more fuel than the
	// unconstrained one but still beat pure load following.
	free, err := Optimize(sys, 200, s)
	if err != nil {
		t.Fatal(err)
	}
	asap := Objective(sys, s, 0.2, 1.2)
	if set.Fuel < free.Fuel-1e-9 {
		t.Errorf("constrained fuel %v below unconstrained %v", set.Fuel, free.Fuel)
	}
	if set.Fuel > asap {
		t.Errorf("constrained fuel %v worse than ASAP %v", set.Fuel, asap)
	}
}

func TestDepletionGuard(t *testing.T) {
	sys := fuelcell.PaperSystem()
	// Cend target far below what range-limited output can deliver: idle
	// would drain the storage negative without the guard.
	s := Slot{Ti: 30, IldI: 1.0, Ta: 5, IldA: 1.1, Cini: 2, Cend: 2}
	set, err := Optimize(sys, 10, s)
	if err != nil {
		t.Fatal(err)
	}
	peak := s.Cini + (set.IFi-s.IldI)*s.Ti
	if peak < -1e-9 {
		t.Fatalf("idle drains storage negative: %v", peak)
	}
}

func TestCendNotCini(t *testing.T) {
	sys := fuelcell.PaperSystem()
	// Deficit from a previous slot: Cini below target Cend.
	s := Slot{Ti: 20, IldI: 0.2, Ta: 10, IldA: 1.2, Cini: 1, Cend: 5}
	set, err := Optimize(sys, 200, s)
	if err != nil {
		t.Fatal(err)
	}
	// Generalized Eq 11: I* = (0.2·20 + 1.2·10 + (5−1))/30 = 20/30.
	if math.Abs(set.IFi-20.0/30) > 1e-9 {
		t.Fatalf("IFi = %v, want 0.6667", set.IFi)
	}
	end := s.Cini + (set.IFi-s.IldI)*s.Ti + (set.IFa-s.IldA)*set.TaEff
	if math.Abs(end-5) > 1e-9 {
		t.Fatalf("end charge = %v, want Cend=5", end)
	}
}

func TestTransitionOverhead(t *testing.T) {
	sys := fuelcell.PaperSystem()
	oh := &Overhead{TauWU: 0.5, IWU: 0.4, TauPD: 0.5, IPD: 0.4}
	s := Slot{Ti: 20, IldI: 0.2, Ta: 10, IldA: 1.2, Sleep: true, Overhead: oh}
	set, err := Optimize(sys, 200, s)
	if err != nil {
		t.Fatal(err)
	}
	// Ta' = 10 + 0.5 + 0.5 = 11 (§3.3.2).
	if math.Abs(set.TaEff-11) > 1e-12 {
		t.Fatalf("TaEff = %v, want 11", set.TaEff)
	}
	// I* = (0.2·20 + 1.2·10 + 0.4·0.5 + 0.4·0.5)/(20+11) = 16.4/31.
	if math.Abs(set.IFi-16.4/31) > 1e-9 {
		t.Fatalf("IFi = %v, want %v", set.IFi, 16.4/31)
	}
	// Without sleeping, only the conservative power-down charge applies.
	s.Sleep = false
	set2, err := Optimize(sys, 200, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(set2.TaEff-10.5) > 1e-12 {
		t.Fatalf("non-sleep TaEff = %v, want 10.5", set2.TaEff)
	}
	// I* = (0.2·20 + 12 + 0.4·0.5)/(20 + 10.5) without the wake-up charge.
	if math.Abs(set2.IFi-16.2/30.5) > 1e-9 {
		t.Errorf("non-sleep IFi = %v, want %v", set2.IFi, 16.2/30.5)
	}
}

func TestDegenerateSlots(t *testing.T) {
	sys := fuelcell.PaperSystem()
	// Pure active slot.
	set, err := Optimize(sys, 100, Slot{Ta: 10, IldA: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(set.IFa-0.8) > 1e-9 {
		t.Errorf("pure active IFa = %v, want 0.8", set.IFa)
	}
	// Pure idle slot.
	set, err = Optimize(sys, 100, Slot{Ti: 10, IldI: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(set.IFi-0.3) > 1e-9 {
		t.Errorf("pure idle IFi = %v, want 0.3", set.IFi)
	}
}

func TestOptimizeErrors(t *testing.T) {
	sys := fuelcell.PaperSystem()
	cases := []struct {
		name string
		cmax float64
		s    Slot
	}{
		{"negative Ti", 10, Slot{Ti: -1, Ta: 1, IldA: 1}},
		{"empty slot", 10, Slot{}},
		{"negative load", 10, Slot{Ti: 1, Ta: 1, IldI: -1, IldA: 1}},
		{"negative charge", 10, Slot{Ti: 1, Ta: 1, IldA: 1, Cini: -1}},
		{"zero capacity", 0, Slot{Ti: 1, Ta: 1, IldA: 1}},
		{"charge beyond capacity", 10, Slot{Ti: 1, Ta: 1, IldA: 1, Cini: 11}},
		{"negative overhead", 10, Slot{Ti: 1, Ta: 1, IldA: 1, Overhead: &Overhead{TauWU: -1}}},
	}
	for _, c := range cases {
		if _, err := Optimize(sys, c.cmax, c.s); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestAgainstNumericOptimizer cross-validates the closed-form solution
// against golden-section search on random slots (capacity unconstrained).
func TestAgainstNumericOptimizer(t *testing.T) {
	sys := fuelcell.PaperSystem()
	rng := numeric.NewRNG(77)
	for trial := 0; trial < 300; trial++ {
		s := Slot{
			Ti:   rng.Uniform(1, 40),
			IldI: rng.Uniform(0, 0.6),
			Ta:   rng.Uniform(1, 20),
			IldA: rng.Uniform(0.5, 1.4),
			Cini: rng.Uniform(0, 50),
			Cend: rng.Uniform(0, 50),
		}
		set, err := Optimize(sys, 1e9, s)
		if err != nil {
			t.Fatal(err)
		}
		_, _, numFuel := NumericOptimize(sys, s)
		if set.Fuel > numFuel+1e-6 {
			t.Fatalf("trial %d: closed form %v worse than numeric %v (slot %+v)",
				trial, set.Fuel, numFuel, s)
		}
	}
}

// Property: the optimizer's setting always lies within the load-following
// range and never beats the numeric lower bound.
func TestSettingInRangeProperty(t *testing.T) {
	sys := fuelcell.PaperSystem()
	f := func(seed uint64) bool {
		rng := numeric.NewRNG(seed)
		s := Slot{
			Ti:   rng.Uniform(0.5, 30),
			IldI: rng.Uniform(0, 1.5),
			Ta:   rng.Uniform(0.5, 30),
			IldA: rng.Uniform(0, 1.5),
			Cini: rng.Uniform(0, 6),
			Cend: rng.Uniform(0, 6),
		}
		set, err := Optimize(sys, 6, s)
		if err != nil {
			return false
		}
		return sys.InRange(set.IFi) && sys.InRange(set.IFa) && set.Fuel >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: fuel objective is monotone in total demand — raising the active
// load never lowers optimal fuel.
func TestFuelMonotoneInDemand(t *testing.T) {
	sys := fuelcell.PaperSystem()
	f := func(seed uint64) bool {
		rng := numeric.NewRNG(seed)
		s := Slot{
			Ti:   rng.Uniform(5, 30),
			IldI: rng.Uniform(0.1, 0.4),
			Ta:   rng.Uniform(2, 10),
			IldA: rng.Uniform(0.5, 1.0),
		}
		a, err := Optimize(sys, 1e9, s)
		if err != nil {
			return false
		}
		s.IldA += 0.2
		b, err := Optimize(sys, 1e9, s)
		if err != nil {
			return false
		}
		return b.Fuel >= a.Fuel-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestOverheadAgainstNumericOptimizer cross-validates the §3.3.2
// transition-overhead formulation against the golden-section search.
func TestOverheadAgainstNumericOptimizer(t *testing.T) {
	sys := fuelcell.PaperSystem()
	rng := numeric.NewRNG(99)
	oh := &Overhead{TauWU: 0.5, IWU: 0.4, TauPD: 0.5, IPD: 0.4}
	for trial := 0; trial < 200; trial++ {
		s := Slot{
			Ti:       rng.Uniform(2, 30),
			IldI:     rng.Uniform(0.1, 0.5),
			Ta:       rng.Uniform(1, 15),
			IldA:     rng.Uniform(0.5, 1.3),
			Cini:     rng.Uniform(0, 20),
			Cend:     rng.Uniform(0, 20),
			Sleep:    trial%2 == 0,
			Overhead: oh,
		}
		set, err := Optimize(sys, 1e9, s)
		if err != nil {
			t.Fatal(err)
		}
		_, _, numFuel := NumericOptimize(sys, s)
		if set.Fuel > numFuel+1e-6 {
			t.Fatalf("trial %d: closed form %v worse than numeric %v (slot %+v)",
				trial, set.Fuel, numFuel, s)
		}
	}
}
