package fcopt

import (
	"math"
	"testing"

	"fcdpm/internal/fuelcell"
	"fcdpm/internal/numeric"
)

func TestQuantizedMatchesContinuousWithDenseLevels(t *testing.T) {
	sys := fuelcell.PaperSystem()
	s := motivSlot()
	cont, err := Optimize(sys, 200, s)
	if err != nil {
		t.Fatal(err)
	}
	// With a dense level grid, the quantized optimum approaches the
	// continuous one.
	set, err := OptimizeQuantized(sys, 200, s, UniformLevels(sys, 221))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(set.Fuel-cont.Fuel) > 0.05 {
		t.Fatalf("dense quantized fuel %v vs continuous %v", set.Fuel, cont.Fuel)
	}
}

func TestQuantizedCoarseWorseThanFine(t *testing.T) {
	sys := fuelcell.PaperSystem()
	s := motivSlot()
	coarse, err := OptimizeQuantized(sys, 200, s, UniformLevels(sys, 2))
	if err != nil {
		t.Fatal(err)
	}
	fine, err := OptimizeQuantized(sys, 200, s, UniformLevels(sys, 45))
	if err != nil {
		t.Fatal(err)
	}
	if fine.Fuel > coarse.Fuel+1e-9 {
		t.Fatalf("finer grid should not cost more: fine %v vs coarse %v", fine.Fuel, coarse.Fuel)
	}
}

func TestQuantizedRespectsCendTarget(t *testing.T) {
	sys := fuelcell.PaperSystem()
	s := Slot{Ti: 20, IldI: 0.2, Ta: 10, IldA: 1.2, Cini: 1, Cend: 5}
	set, err := OptimizeQuantized(sys, 200, s, UniformLevels(sys, 23))
	if err != nil {
		t.Fatal(err)
	}
	end := achievedEnd(200, s, set)
	if end+1e-9 < 5 {
		t.Fatalf("end charge %v misses Cend=5", end)
	}
}

func TestQuantizedFallbackWhenTargetUnreachable(t *testing.T) {
	sys := fuelcell.PaperSystem()
	// Heavy sustained load: no level pair can end at Cend=6; the solver
	// should return the highest-ending pair rather than fail.
	s := Slot{Ti: 5, IldI: 1.0, Ta: 20, IldA: 1.4, Cini: 3, Cend: 6}
	set, err := OptimizeQuantized(sys, 6, s, UniformLevels(sys, 12))
	if err != nil {
		t.Fatal(err)
	}
	if !set.ClampedRange {
		t.Error("fallback setting should be marked clamped")
	}
	if set.IFa != 1.2 {
		t.Errorf("fallback should push the top level during active, got %v", set.IFa)
	}
}

func TestQuantizedValidation(t *testing.T) {
	sys := fuelcell.PaperSystem()
	s := motivSlot()
	if _, err := OptimizeQuantized(sys, 200, s, nil); err == nil {
		t.Error("empty level set accepted")
	}
	if _, err := OptimizeQuantized(sys, 200, s, []float64{2.0}); err == nil {
		t.Error("out-of-range level accepted")
	}
	if _, err := OptimizeQuantized(sys, 0, s, UniformLevels(sys, 4)); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := OptimizeQuantized(sys, 200, Slot{}, UniformLevels(sys, 4)); err == nil {
		t.Error("empty slot accepted")
	}
}

func TestUniformLevels(t *testing.T) {
	sys := fuelcell.PaperSystem()
	lv := UniformLevels(sys, 12)
	if len(lv) != 12 || lv[0] != 0.1 || lv[11] != 1.2 {
		t.Fatalf("levels = %v", lv)
	}
	if got := UniformLevels(sys, 1); len(got) != 2 {
		t.Fatalf("n<2 should floor to 2 levels, got %v", got)
	}
}

// Property: quantized fuel is always >= the continuous optimum on random
// feasible slots (the continuous solution is a relaxation).
func TestQuantizedNeverBeatsContinuous(t *testing.T) {
	sys := fuelcell.PaperSystem()
	rng := numeric.NewRNG(42)
	levels := UniformLevels(sys, 9)
	for trial := 0; trial < 200; trial++ {
		s := Slot{
			Ti:   rng.Uniform(5, 30),
			IldI: rng.Uniform(0.1, 0.5),
			Ta:   rng.Uniform(2, 10),
			IldA: rng.Uniform(0.6, 1.2),
			Cini: rng.Uniform(0, 3),
			Cend: rng.Uniform(0, 3),
		}
		cont, err := Optimize(sys, 1e6, s)
		if err != nil {
			t.Fatal(err)
		}
		quant, err := OptimizeQuantized(sys, 1e6, s, levels)
		if err != nil {
			t.Fatal(err)
		}
		// Allow tolerance for the fallback path (which may under-deliver
		// Cend and thus legitimately burn less).
		end := achievedEnd(1e6, s, quant)
		if end+1e-6 >= s.Cend && quant.Fuel < cont.Fuel-1e-6 {
			t.Fatalf("trial %d: quantized %v beat continuous %v (slot %+v)",
				trial, quant.Fuel, cont.Fuel, s)
		}
	}
}

func TestSolveOfflineSingleSlotMatchesClosedForm(t *testing.T) {
	sys := fuelcell.PaperSystem()
	s := motivSlot() // Cini = Cend = 0
	sched, err := SolveOffline(OfflineProblem{
		Sys: sys, Cmax: 200, Slots: []Slot{s}, Q0: 0, GridN: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Settings) != 1 {
		t.Fatalf("settings = %d", len(sched.Settings))
	}
	// The DP should find (nearly) the continuous optimum 13.45 A-s.
	if math.Abs(sched.Fuel-13.45) > 0.2 {
		t.Fatalf("offline fuel = %v, want ≈13.45", sched.Fuel)
	}
}

func TestSolveOfflineBeatsGreedyOnAlternatingSlots(t *testing.T) {
	sys := fuelcell.PaperSystem()
	// Two very different slots: a light one then a heavy one. The greedy
	// per-slot policy returns to the reserve after slot 1; the offline
	// optimum can pre-charge during the light slot.
	light := Slot{Ti: 30, IldI: 0.2, Ta: 2, IldA: 0.6}
	heavy := Slot{Ti: 4, IldI: 0.2, Ta: 12, IldA: 1.4}
	slots := []Slot{light, heavy, light, heavy}

	sched, err := SolveOffline(OfflineProblem{Sys: sys, Cmax: 20, Slots: slots, Q0: 1, GridN: 80})
	if err != nil {
		t.Fatal(err)
	}

	// Greedy: per-slot Optimize with Cend pinned to the reserve.
	var greedy float64
	q := 1.0
	for _, s := range slots {
		s.Cini = q
		s.Cend = 1
		set, err := Optimize(sys, 20, s)
		if err != nil {
			t.Fatal(err)
		}
		greedy += set.Fuel
		q = achievedEnd(20, s, set)
	}
	if sched.Fuel > greedy+1e-6 {
		t.Fatalf("offline %v worse than greedy %v", sched.Fuel, greedy)
	}
}

func TestSolveOfflineChargeTrajectoryBounds(t *testing.T) {
	sys := fuelcell.PaperSystem()
	slots := []Slot{
		{Ti: 14, IldI: 0.2, Ta: 5, IldA: 1.22},
		{Ti: 9, IldI: 0.2, Ta: 5, IldA: 1.22},
		{Ti: 19, IldI: 0.2, Ta: 5, IldA: 1.22},
	}
	sched, err := SolveOffline(OfflineProblem{Sys: sys, Cmax: 6, Slots: slots, Q0: 1, GridN: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(sched.Charges) != len(slots)+1 {
		t.Fatalf("charges = %d", len(sched.Charges))
	}
	for i, q := range sched.Charges {
		if q < -1e-9 || q > 6+1e-9 {
			t.Fatalf("charge %d = %v outside [0, 6]", i, q)
		}
	}
	// Terminal condition: end at or above Q0.
	if sched.Charges[len(sched.Charges)-1]+1e-9 < 1 {
		t.Fatalf("final charge %v below Q0", sched.Charges[len(sched.Charges)-1])
	}
}

func TestSolveOfflineValidation(t *testing.T) {
	sys := fuelcell.PaperSystem()
	s := motivSlot()
	cases := []OfflineProblem{
		{Sys: nil, Cmax: 6, Slots: []Slot{s}, Q0: 1},
		{Sys: sys, Cmax: 0, Slots: []Slot{s}, Q0: 1},
		{Sys: sys, Cmax: 6, Slots: nil, Q0: 1},
		{Sys: sys, Cmax: 6, Slots: []Slot{s}, Q0: 99},
	}
	for k, p := range cases {
		if _, err := SolveOffline(p); err == nil {
			t.Errorf("case %d: invalid problem accepted", k)
		}
	}
}
