package fuelcell

import (
	"fmt"
	"math"
)

// Physical constants for hydrogen fuel accounting.
const (
	// FaradayConstant is the charge per mole of electrons, C/mol.
	FaradayConstant = 96485.33212
	// H2MolarMass is the molar mass of H2 in grams per mole.
	H2MolarMass = 2.016
	// H2MolarVolumeSTP is the molar volume of an ideal gas at standard
	// temperature and pressure (0 °C, 100 kPa), litres per mole.
	H2MolarVolumeSTP = 22.711
	// H2LHV is the lower heating value of hydrogen, joules per gram.
	H2LHV = 119.96e3
)

// Hydrogen converts the simulator's fuel measure — integrated stack
// current in amp-seconds — into physical hydrogen quantities for a stack
// with a given cell count. Each H2 molecule supplies two electrons per
// cell pass, and series cells share the same current, so
//
//	mol H2 = Q · cells / (2·F)
//
// The paper's fuel objective (∫Ifc dt) is proportional to all of these, so
// policy comparisons are invariant to the conversion; Hydrogen exists for
// reporting real cartridge lifetimes.
type Hydrogen struct {
	// Cells is the number of series cells in the stack (20 for BCS 20 W).
	Cells int
}

// PaperHydrogen returns the converter for the paper's 20-cell stack.
func PaperHydrogen() Hydrogen { return Hydrogen{Cells: 20} }

// Validate reports whether the converter is usable.
func (h Hydrogen) Validate() error {
	if h.Cells < 1 {
		return fmt.Errorf("fuelcell: hydrogen converter needs >= 1 cell, got %d", h.Cells)
	}
	return nil
}

// Moles returns the hydrogen consumed, in moles, for fuel amp-seconds of
// stack charge.
func (h Hydrogen) Moles(fuelAs float64) float64 {
	return fuelAs * float64(h.Cells) / (2 * FaradayConstant)
}

// Grams returns the hydrogen mass consumed for fuel amp-seconds.
func (h Hydrogen) Grams(fuelAs float64) float64 {
	return h.Moles(fuelAs) * H2MolarMass
}

// LitresSTP returns the hydrogen gas volume at STP for fuel amp-seconds.
func (h Hydrogen) LitresSTP(fuelAs float64) float64 {
	return h.Moles(fuelAs) * H2MolarVolumeSTP
}

// ChemicalEnergy returns the lower-heating-value energy content of the
// consumed hydrogen, in joules.
func (h Hydrogen) ChemicalEnergy(fuelAs float64) float64 {
	return h.Grams(fuelAs) * H2LHV
}

// FuelForGrams inverts Grams: the stack amp-seconds a hydrogen mass can
// sustain.
func (h Hydrogen) FuelForGrams(grams float64) float64 {
	return grams / H2MolarMass * 2 * FaradayConstant / float64(h.Cells)
}

// CartridgeLifetime returns how long a cartridge holding grams of H2 lasts
// at the given average stack current (A), in seconds. It returns +Inf for
// a non-positive rate.
func (h Hydrogen) CartridgeLifetime(grams, avgStackCurrent float64) float64 {
	if avgStackCurrent <= 0 {
		return math.Inf(1)
	}
	return h.FuelForGrams(grams) / avgStackCurrent
}

// EndToEndEfficiency returns delivered electrical energy divided by the
// chemical (LHV) energy of the hydrogen consumed — a whole-system figure
// of merit the paper's ηs approximates from the Gibbs side.
func (h Hydrogen) EndToEndEfficiency(deliveredJoules, fuelAs float64) float64 {
	chem := h.ChemicalEnergy(fuelAs)
	if chem <= 0 {
		return 0
	}
	return deliveredJoules / chem
}
