// Package fuelcell models the fuel-cell hybrid power source of Zhuo et al.
// (DAC 2007): the FC stack polarization behaviour, the DC-DC converter, the
// balance-of-plant controller (fans and purge solenoid), and the resulting
// FC *system* efficiency and fuel-rate characteristics that the FC-DPM
// optimizer consumes.
//
// Two levels of fidelity coexist:
//
//   - LinearEfficiency is the paper's measured characterization
//     ηs(IF) ≈ α − β·IF (α = 0.45, β = 0.13) that every equation in the
//     paper — and therefore the fcopt optimizer — is written against.
//   - Stack + Converter + Controller form a physics-based chain (the
//     Larminie–Dicks polarization form the paper cites) used to regenerate
//     the measured curves of Figs 2 and 3 and for the sizing example.
package fuelcell

import (
	"fmt"
	"math"

	"fcdpm/internal/numeric"
)

// StackParams parameterizes the Larminie–Dicks static polarization model of
// an FC stack:
//
//	V(i) = Voc − A·ln(1 + i/i0) − R·i − M·(exp(N·i) − 1)
//
// where the three loss terms are activation, ohmic, and concentration
// losses. All values describe the whole stack (cell values times Cells).
type StackParams struct {
	// Cells is the number of series cells (informational; the loss terms
	// below are already stack-level).
	Cells int
	// Voc is the open-circuit stack voltage in volts.
	Voc float64
	// A is the activation (Tafel) slope in volts.
	A float64
	// I0 is the exchange-current scale in amperes.
	I0 float64
	// R is the ohmic area resistance of the stack in ohms.
	R float64
	// M and N parameterize the concentration-loss term (volts and 1/A).
	M, N float64
	// Zeta relates fuel energy rate to stack current: ΔE_Gibbs = ζ·Ifc
	// (volts). The paper measures ζ ≈ 37.5 for its setup.
	Zeta float64
}

// Validate reports whether the parameters describe a physically sensible
// stack.
func (p StackParams) Validate() error {
	switch {
	case p.Voc <= 0:
		return fmt.Errorf("fuelcell: Voc must be positive, got %v", p.Voc)
	case p.A < 0 || p.R < 0 || p.M < 0:
		return fmt.Errorf("fuelcell: loss coefficients must be non-negative")
	case p.I0 <= 0:
		return fmt.Errorf("fuelcell: I0 must be positive, got %v", p.I0)
	case p.Zeta <= 0:
		return fmt.Errorf("fuelcell: Zeta must be positive, got %v", p.Zeta)
	}
	return nil
}

// Stack is an immutable FC stack model.
type Stack struct {
	p StackParams
}

// NewStack validates p and returns a stack model.
func NewStack(p StackParams) (*Stack, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Stack{p: p}, nil
}

// BCS20W returns the stack model calibrated to the paper's BCS 20 W,
// 20-cell room-temperature hydrogen stack (Fig 2): open-circuit voltage
// 18.2 V and a maximum-power knee near 1.5 A.
//
// The paper publishes only the measured curve, not model parameters; these
// coefficients were fitted to the anchor points the paper reports (see
// DESIGN.md §2).
func BCS20W() *Stack {
	s, err := NewStack(StackParams{
		Cells: 20,
		Voc:   18.2,
		A:     0.85,
		I0:    0.02,
		R:     0.60,
		M:     3e-4,
		N:     5.5,
		Zeta:  37.5,
	})
	if err != nil {
		panic(err) // fixed literal; cannot fail
	}
	return s
}

// Params returns a copy of the stack parameters.
func (s *Stack) Params() StackParams { return s.p }

// Voltage returns the stack terminal voltage at stack current ifc (amps).
// Negative currents are treated as zero (open circuit); the model is valid
// up to the concentration-limited collapse.
func (s *Stack) Voltage(ifc float64) float64 {
	if ifc <= 0 {
		return s.p.Voc
	}
	v := s.p.Voc -
		s.p.A*math.Log(1+ifc/s.p.I0) -
		s.p.R*ifc -
		s.p.M*(math.Exp(s.p.N*ifc)-1)
	if v < 0 {
		return 0
	}
	return v
}

// Power returns the stack output power V(ifc)·ifc in watts.
func (s *Stack) Power(ifc float64) float64 { return s.Voltage(ifc) * ifc }

// Efficiency returns the stack efficiency Vfc/ζ at stack current ifc —
// the stack output power divided by the Gibbs free-energy rate ζ·Ifc
// (paper §2.3). It follows the same trend as the stack voltage.
func (s *Stack) Efficiency(ifc float64) float64 { return s.Voltage(ifc) / s.p.Zeta }

// MaxPower returns the stack current and power at the maximum-power point,
// which bounds the load-following range (paper Fig 2). It searches the
// unimodal power curve with golden-section.
func (s *Stack) MaxPower() (ifc, power float64) {
	// Power is zero at both i=0 and at voltage collapse; find the collapse
	// current first so the search bracket is sound.
	hi := 0.1
	for s.Voltage(hi) > 0 && hi < 1e3 {
		hi *= 2
	}
	ifc = numeric.GoldenMin(func(i float64) float64 { return -s.Power(i) }, 0, hi, 1e-9)
	return ifc, s.Power(ifc)
}

// CurrentForPower returns the stack current on the low-current (efficient)
// side of the power curve that delivers the requested stack power, or an
// error if the demand exceeds the maximum power capacity.
func (s *Stack) CurrentForPower(watts float64) (float64, error) {
	if watts < 0 {
		return 0, fmt.Errorf("fuelcell: negative power demand %v", watts)
	}
	if watts == 0 {
		return 0, nil
	}
	iMax, pMax := s.MaxPower()
	if watts > pMax {
		return 0, fmt.Errorf("fuelcell: demand %.2f W exceeds stack capacity %.2f W", watts, pMax)
	}
	root, err := numeric.Bisect(func(i float64) float64 { return s.Power(i) - watts }, 0, iMax, 1e-10)
	if err != nil {
		return 0, fmt.Errorf("fuelcell: power solve failed: %w", err)
	}
	return root, nil
}

// IVPoint is one sample of the stack I-V-P characteristic.
type IVPoint struct {
	Ifc   float64 // stack current, A
	Vfc   float64 // stack voltage, V
	Power float64 // stack power, W
}

// IVPCurve samples the stack characteristic at n evenly spaced currents in
// [0, maxI], the series plotted in the paper's Fig 2.
func (s *Stack) IVPCurve(maxI float64, n int) []IVPoint {
	if n < 2 {
		n = 2
	}
	pts := make([]IVPoint, n)
	for k := 0; k < n; k++ {
		i := maxI * float64(k) / float64(n-1)
		pts[k] = IVPoint{Ifc: i, Vfc: s.Voltage(i), Power: s.Power(i)}
	}
	return pts
}
