package fuelcell

import "fmt"

// Converter models a DC-DC converter by its efficiency as a function of
// output power. Output voltage is regulated to a constant.
type Converter interface {
	// Efficiency returns the conversion efficiency at the given output
	// power in watts. Implementations return a value in (0, 1].
	Efficiency(outWatts float64) float64
	// OutputVoltage returns the regulated output voltage in volts.
	OutputVoltage() float64
}

// lossConverter implements the standard two-term converter loss model
//
//	Ploss(Pout) = Pfixed + Kq·Pout²
//	η(Pout)     = Pout / (Pout + Ploss)
//
// Pfixed captures gate-drive/quiescent losses that dominate at light load;
// Kq captures conduction (I²R) losses that dominate at heavy load.
type lossConverter struct {
	vout   float64
	pfixed float64
	kq     float64
	name   string
}

func (c *lossConverter) OutputVoltage() float64 { return c.vout }

func (c *lossConverter) Efficiency(outWatts float64) float64 {
	if outWatts <= 0 {
		return 1 // no load, no transfer; efficiency is moot
	}
	loss := c.pfixed + c.kq*outWatts*outWatts
	return outWatts / (outWatts + loss)
}

func (c *lossConverter) String() string { return c.name }

// NewPWMConverter returns a pulse-width-modulation-only converter. PWM
// converters switch at a fixed frequency, so the fixed loss term is large
// and efficiency collapses at light loads — the configuration used in the
// authors' earlier work [10, 11] where ηs was treated as constant over the
// load-following range.
func NewPWMConverter(vout float64) Converter {
	return &lossConverter{vout: vout, pfixed: 0.9, kq: 0.005, name: "PWM"}
}

// NewPWMPFMConverter returns the paper's PWM-PFM converter: PWM at high
// load, pulse-frequency modulation at light load. PFM scales switching
// activity with load, so the fixed loss is small and the converter holds
// roughly 85 % efficiency over the entire load range (paper §2.1).
func NewPWMPFMConverter(vout float64) Converter {
	return &lossConverter{vout: vout, pfixed: 0.03, kq: 0.012, name: "PWM-PFM"}
}

// NewIdealConverter returns a lossless converter, useful in tests and for
// isolating stack effects in ablations.
func NewIdealConverter(vout float64) Converter {
	return &lossConverter{vout: vout, name: "ideal"}
}

// ConverterEfficiencyCurve samples a converter's efficiency at n points up
// to maxWatts.
func ConverterEfficiencyCurve(c Converter, maxWatts float64, n int) ([]float64, []float64) {
	if n < 2 {
		n = 2
	}
	ps := make([]float64, n)
	es := make([]float64, n)
	for k := 0; k < n; k++ {
		p := maxWatts * float64(k+1) / float64(n)
		ps[k] = p
		es[k] = c.Efficiency(p)
	}
	return ps, es
}

// Controller models the FC balance-of-plant: cathode air-blow fan, cooling
// fan, purge-valve solenoid, and microcontroller. Its current draw comes
// off the DC-DC output before the load sees it: IF = Idc − Ictrl.
type Controller struct {
	// Base is the always-on draw (microcontroller + solenoid duty), amps.
	Base float64
	// FanGain scales fan current with FC system output current when
	// Proportional is set (variable-speed fans, the paper's §2.3
	// configuration "fan speed proportional to the load current").
	FanGain float64
	// Proportional selects variable-speed fan control. When false the
	// controller models the constant-speed cathode fan plus an on/off
	// cooling fan that engages above CoolingOnAt amps (the Fig 3(c)
	// configuration).
	Proportional bool
	// FanConst is the constant-speed fan draw used when !Proportional.
	FanConst float64
	// CoolingOnAt and CoolingDraw describe the on/off cooling fan used
	// when !Proportional.
	CoolingOnAt, CoolingDraw float64
}

// Current returns the controller draw in amps at FC system output iF.
func (c Controller) Current(iF float64) float64 {
	if c.Proportional {
		return c.Base + c.FanGain*iF
	}
	draw := c.Base + c.FanConst
	if iF >= c.CoolingOnAt {
		draw += c.CoolingDraw
	}
	return draw
}

// ProportionalController returns the paper's variable-speed fan controller.
func ProportionalController() Controller {
	return Controller{Base: 0.005, FanGain: 0.06, Proportional: true}
}

// OnOffController returns the constant-speed + on/off cooling fan
// controller of the authors' earlier configuration (Fig 3(c)); the cooling
// fan kicks in around 0.6 A, producing the efficiency notch visible in the
// figure.
func OnOffController() Controller {
	return Controller{Base: 0.02, FanConst: 0.08, CoolingOnAt: 0.6, CoolingDraw: 0.06}
}

var _ fmt.Stringer = (*lossConverter)(nil)
