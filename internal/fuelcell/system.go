package fuelcell

import (
	"fmt"
	"math"

	"fcdpm/internal/numeric"
)

// EfficiencyModel maps FC system output current IF (amps) to the FC system
// efficiency ηs = VF·IF / ΔE_Gibbs (paper Eq 1).
type EfficiencyModel interface {
	// Eta returns the system efficiency at output current iF. Values are
	// in (0, 1); implementations clamp rather than return non-positive
	// efficiencies.
	Eta(iF float64) float64
}

// LinearEfficiency is the paper's measured linear characterization
// ηs ≈ α − β·IF (Eq 2), valid over the load-following range. The paper's
// setup measures α = 0.45 and β = 0.13.
type LinearEfficiency struct {
	Alpha, Beta float64
}

// Eta implements EfficiencyModel; the value is floored at a small positive
// epsilon so the fuel map stays finite outside the calibrated range.
func (l LinearEfficiency) Eta(iF float64) float64 {
	eta := l.Alpha - l.Beta*iF
	if eta < 1e-3 {
		return 1e-3
	}
	return eta
}

// PaperEfficiency returns the paper's measured coefficients α=0.45, β=0.13.
func PaperEfficiency() LinearEfficiency { return LinearEfficiency{Alpha: 0.45, Beta: 0.13} }

// ConstantEfficiency models the on/off-fan + PWM configuration of the
// authors' earlier work [10, 11], where ηs is treated as constant (±3 %)
// over the load-following range. Under a constant ηs the fuel map is linear
// in IF and FC-DPM's flattening advantage disappears — the ablation
// `exp.ConstantEtaAblation` demonstrates exactly that.
type ConstantEfficiency struct{ Value float64 }

// Eta implements EfficiencyModel.
func (c ConstantEfficiency) Eta(float64) float64 {
	if c.Value < 1e-3 {
		return 1e-3
	}
	return c.Value
}

// TableEfficiency interpolates a measured (IF, ηs) table.
type TableEfficiency struct{ T *numeric.Table }

// Eta implements EfficiencyModel.
func (t TableEfficiency) Eta(iF float64) float64 {
	eta := t.T.At(iF)
	if eta < 1e-3 {
		return 1e-3
	}
	return eta
}

// ChainEfficiency computes ηs from the physical component chain: the stack
// polarization curve, the DC-DC converter loss model, and the controller
// draw. For a requested system output IF it solves the power balance
//
//	Vfc(Ifc)·Ifc·η_dc = Vdc·(IF + Ictrl(IF))
//
// for the stack current Ifc on the efficient side of the power curve, then
// returns ηs = Vdc·IF / (ζ·Ifc).
type ChainEfficiency struct {
	Stack *Stack
	Conv  Converter
	Ctrl  Controller
	// cache of the solved curve, built lazily on first use.
	cache *numeric.Table
}

// NewChainEfficiency assembles the chain and pre-solves the ηs(IF) curve on
// a fine grid so Eta is a cheap interpolation.
func NewChainEfficiency(stack *Stack, conv Converter, ctrl Controller) (*ChainEfficiency, error) {
	c := &ChainEfficiency{Stack: stack, Conv: conv, Ctrl: ctrl}
	if err := c.build(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *ChainEfficiency) build() error {
	const (
		gridLo = 0.01
		gridHi = 1.4
		nGrid  = 140
	)
	xs := make([]float64, 0, nGrid)
	ys := make([]float64, 0, nGrid)
	for k := 0; k < nGrid; k++ {
		iF := gridLo + (gridHi-gridLo)*float64(k)/float64(nGrid-1)
		eta, err := c.solve(iF)
		if err != nil {
			// Beyond stack capacity: stop the table here.
			break
		}
		xs = append(xs, iF)
		ys = append(ys, eta)
	}
	if len(xs) < 2 {
		return fmt.Errorf("fuelcell: chain infeasible even at light load")
	}
	tab, err := numeric.NewTable(xs, ys)
	if err != nil {
		return err
	}
	c.cache = tab
	return nil
}

// solve computes ηs at one output current from first principles.
func (c *ChainEfficiency) solve(iF float64) (float64, error) {
	vdc := c.Conv.OutputVoltage()
	pOut := vdc * (iF + c.Ctrl.Current(iF)) // DC-DC output power incl. controller
	// The converter efficiency depends on its own output power, which is
	// known; the required stack power follows directly.
	pStack := pOut / c.Conv.Efficiency(pOut)
	ifc, err := c.Stack.CurrentForPower(pStack)
	if err != nil {
		return 0, err
	}
	if ifc <= 0 {
		return 0, fmt.Errorf("fuelcell: degenerate stack current at IF=%v", iF)
	}
	return vdc * iF / (c.Stack.Params().Zeta * ifc), nil
}

// Eta implements EfficiencyModel via the pre-solved table.
func (c *ChainEfficiency) Eta(iF float64) float64 {
	eta := c.cache.At(iF)
	if eta < 1e-3 {
		return 1e-3
	}
	return eta
}

// MaxOutput returns the largest system output current the chain can supply,
// i.e. where the stack hits its maximum power capacity.
func (c *ChainEfficiency) MaxOutput() float64 {
	_, hi := c.cache.Domain()
	return hi
}

// LinearFit least-squares-fits ηs ≈ α − β·IF over [lo, hi], reproducing the
// paper's Eq 2 calibration step from the chain model.
func (c *ChainEfficiency) LinearFit(lo, hi float64, n int) (alpha, beta float64) {
	if n < 2 {
		n = 2
	}
	var sx, sy, sxx, sxy float64
	for k := 0; k < n; k++ {
		x := lo + (hi-lo)*float64(k)/float64(n-1)
		y := c.Eta(x)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	fn := float64(n)
	slope := (fn*sxy - sx*sy) / (fn*sxx - sx*sx)
	intercept := (sy - slope*sx) / fn
	return intercept, -slope
}

// System is the FC system as seen by the rest of fcdpm: a regulated-voltage
// source with a bounded load-following range, an efficiency map, and the
// fuel-rate map Ifc(IF) (Eq 3/4) derived from it.
type System struct {
	// VF is the regulated output voltage (12 V in the paper).
	VF float64
	// Zeta is the Gibbs coefficient: ΔE_Gibbs = ζ·Ifc (≈ 37.5 measured).
	Zeta float64
	// MinOutput and MaxOutput bound the load-following range
	// ([0.1 A, 1.2 A] in the paper).
	MinOutput, MaxOutput float64
	// Eff maps output current to system efficiency.
	Eff EfficiencyModel
}

// NewSystem validates and returns an FC system description.
func NewSystem(vf, zeta, minOut, maxOut float64, eff EfficiencyModel) (*System, error) {
	switch {
	case vf <= 0:
		return nil, fmt.Errorf("fuelcell: VF must be positive, got %v", vf)
	case zeta <= 0:
		return nil, fmt.Errorf("fuelcell: zeta must be positive, got %v", zeta)
	case minOut < 0 || maxOut <= minOut:
		return nil, fmt.Errorf("fuelcell: bad load-following range [%v, %v]", minOut, maxOut)
	case eff == nil:
		return nil, fmt.Errorf("fuelcell: nil efficiency model")
	}
	return &System{VF: vf, Zeta: zeta, MinOutput: minOut, MaxOutput: maxOut, Eff: eff}, nil
}

// PaperSystem returns the FC system exactly as the paper's experiments use
// it: VF = 12 V, ζ = 37.5, load-following range [0.1 A, 1.2 A], and the
// linear efficiency ηs = 0.45 − 0.13·IF. With these values Eq 4 holds:
// Ifc = 0.32·IF/(0.45 − 0.13·IF).
func PaperSystem() *System {
	s, err := NewSystem(12, 37.5, 0.1, 1.2, PaperEfficiency())
	if err != nil {
		panic(err) // fixed literal; cannot fail
	}
	return s
}

// Efficiency returns ηs at output current iF.
func (s *System) Efficiency(iF float64) float64 { return s.Eff.Eta(iF) }

// StackCurrent returns the stack (fuel-rate) current Ifc for a system
// output iF per Eq 3: Ifc = VF·IF / (ζ·ηs(IF)). The fuel consumed over a
// duration is StackCurrent·dt in amp-seconds, proportional to moles of H2.
// Zero and negative outputs consume no fuel.
func (s *System) StackCurrent(iF float64) float64 {
	if iF <= 0 {
		return 0
	}
	return s.VF * iF / (s.Zeta * s.Eff.Eta(iF))
}

// Fuel returns the fuel consumed (A·s of stack current) by holding output
// iF for dt seconds.
func (s *System) Fuel(iF, dt float64) float64 { return s.StackCurrent(iF) * dt }

// Clamp limits a requested output current to the load-following range.
func (s *System) Clamp(iF float64) float64 {
	return numeric.Clamp(iF, s.MinOutput, s.MaxOutput)
}

// InRange reports whether iF lies within the load-following range.
func (s *System) InRange(iF float64) bool {
	return iF >= s.MinOutput-1e-12 && iF <= s.MaxOutput+1e-12
}

// IsConvexFuel numerically verifies that the fuel map Ifc(IF) is convex
// over the load-following range — the property FC-DPM's flattening argument
// rests on (Jensen's inequality). It is exposed for tests and for guarding
// exotic efficiency models.
func (s *System) IsConvexFuel(n int) bool {
	if n < 3 {
		n = 3
	}
	lo, hi := s.MinOutput, s.MaxOutput
	prev := math.Inf(-1)
	for k := 0; k < n-1; k++ {
		x0 := lo + (hi-lo)*float64(k)/float64(n-1)
		x1 := lo + (hi-lo)*float64(k+1)/float64(n-1)
		slope := (s.StackCurrent(x1) - s.StackCurrent(x0)) / (x1 - x0)
		if slope < prev-1e-9 {
			return false
		}
		prev = slope
	}
	return true
}

// EffPoint is one sample of an efficiency curve.
type EffPoint struct {
	IF  float64 // FC system output current, A
	Eta float64 // efficiency, 0..1
}

// EfficiencyCurve samples ηs(IF) at n points over [lo, hi], the series
// plotted in the paper's Fig 3.
func (s *System) EfficiencyCurve(lo, hi float64, n int) []EffPoint {
	if n < 2 {
		n = 2
	}
	pts := make([]EffPoint, n)
	for k := 0; k < n; k++ {
		iF := lo + (hi-lo)*float64(k)/float64(n-1)
		pts[k] = EffPoint{IF: iF, Eta: s.Eff.Eta(iF)}
	}
	return pts
}

// BatchKey implements the batch runner's lane-grouping capability with a
// content fingerprint: two Systems with equal keys have identical
// electrical parameters and efficiency maps, so lanes that differ only
// in which System *instance* they hold still collapse onto one executing
// simulation. Efficiency models the switch does not recognize key by the
// System's own identity — conservative (equal-content instances stay in
// separate groups) but sound.
func (s *System) BatchKey() string {
	var eff string
	switch e := s.Eff.(type) {
	case interface{ BatchKey() string }:
		eff = e.BatchKey()
	case LinearEfficiency:
		eff = fmt.Sprintf("lin|%x|%x", math.Float64bits(e.Alpha), math.Float64bits(e.Beta))
	case ConstantEfficiency:
		eff = fmt.Sprintf("const|%x", math.Float64bits(e.Value))
	default:
		eff = fmt.Sprintf("id=%p", s)
	}
	return fmt.Sprintf("sys|%x|%x|%x|%x|%s",
		math.Float64bits(s.VF), math.Float64bits(s.Zeta),
		math.Float64bits(s.MinOutput), math.Float64bits(s.MaxOutput), eff)
}
