package fuelcell

import (
	"math"
	"testing"
	"testing/quick"

	"fcdpm/internal/numeric"
)

// TestPaperEq4 pins the paper's worked values of Eq 4:
// Ifc = 0.32·IF/(0.45 − 0.13·IF).
func TestPaperEq4(t *testing.T) {
	sys := PaperSystem()
	cases := []struct {
		iF, want, tol float64
	}{
		{1.2, 1.3, 0.01},        // §3.2 setting (a)/(b) active value "1.3 A"
		{0.2, 0.15, 0.002},      // §3.2 setting (b) idle value "0.15 A"
		{0.53333, 0.448, 0.001}, // §3.2 setting (c) "0.448 A"
	}
	for _, c := range cases {
		got := sys.StackCurrent(c.iF)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("StackCurrent(%v) = %v, want %v ± %v", c.iF, got, c.want, c.tol)
		}
	}
}

func TestPaperEq4Coefficient(t *testing.T) {
	sys := PaperSystem()
	// VF/ζ = 12/37.5 = 0.32 exactly.
	if got := sys.VF / sys.Zeta; math.Abs(got-0.32) > 1e-12 {
		t.Fatalf("VF/zeta = %v, want 0.32", got)
	}
}

func TestStackCurrentZeroAndNegative(t *testing.T) {
	sys := PaperSystem()
	if sys.StackCurrent(0) != 0 {
		t.Error("zero output should consume no fuel")
	}
	if sys.StackCurrent(-0.5) != 0 {
		t.Error("negative output should consume no fuel")
	}
}

func TestFuelIsCurrentTimesTime(t *testing.T) {
	sys := PaperSystem()
	want := sys.StackCurrent(0.6) * 30
	if got := sys.Fuel(0.6, 30); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Fuel = %v, want %v", got, want)
	}
}

func TestLinearEfficiencyValues(t *testing.T) {
	eff := PaperEfficiency()
	cases := []struct{ iF, want float64 }{
		{0.1, 0.437},
		{0.2, 0.424},
		{1.2, 0.294},
	}
	for _, c := range cases {
		if got := eff.Eta(c.iF); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Eta(%v) = %v, want %v", c.iF, got, c.want)
		}
	}
}

func TestLinearEfficiencyFloor(t *testing.T) {
	eff := LinearEfficiency{Alpha: 0.45, Beta: 0.13}
	if got := eff.Eta(100); got != 1e-3 {
		t.Fatalf("Eta far out of range = %v, want floor 1e-3", got)
	}
}

func TestConstantEfficiency(t *testing.T) {
	eff := ConstantEfficiency{Value: 0.37}
	if eff.Eta(0.1) != 0.37 || eff.Eta(1.2) != 0.37 {
		t.Error("ConstantEfficiency not constant")
	}
	if got := (ConstantEfficiency{Value: 0}).Eta(0.5); got != 1e-3 {
		t.Errorf("zero constant efficiency = %v, want floor", got)
	}
}

func TestFuelMapConvex(t *testing.T) {
	sys := PaperSystem()
	if !sys.IsConvexFuel(200) {
		t.Fatal("paper fuel map must be convex over the load-following range")
	}
}

func TestConstantEtaFuelMapLinearIsConvex(t *testing.T) {
	sys, err := NewSystem(12, 37.5, 0.1, 1.2, ConstantEfficiency{Value: 0.37})
	if err != nil {
		t.Fatal(err)
	}
	if !sys.IsConvexFuel(100) {
		t.Fatal("linear fuel map should pass convexity check")
	}
}

// TestJensenGap verifies the paper's central claim directly: for a convex
// fuel map, the flat profile consumes less fuel than any load-following
// split with the same average.
func TestJensenGap(t *testing.T) {
	sys := PaperSystem()
	f := func(seedA, seedB uint64) bool {
		// Two output levels within range and a mixing weight.
		a := 0.1 + float64(seedA%1000)/1000*1.1
		b := 0.1 + float64(seedB%1000)/1000*1.1
		w := float64(seedA%97) / 97
		avg := w*a + (1-w)*b
		flat := sys.StackCurrent(avg)
		split := w*sys.StackCurrent(a) + (1-w)*sys.StackCurrent(b)
		return flat <= split+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSystemClampAndInRange(t *testing.T) {
	sys := PaperSystem()
	if got := sys.Clamp(0.05); got != 0.1 {
		t.Errorf("Clamp(0.05) = %v", got)
	}
	if got := sys.Clamp(2.0); got != 1.2 {
		t.Errorf("Clamp(2.0) = %v", got)
	}
	if got := sys.Clamp(0.7); got != 0.7 {
		t.Errorf("Clamp(0.7) = %v", got)
	}
	if !sys.InRange(0.1) || !sys.InRange(1.2) || sys.InRange(1.3) || sys.InRange(0.05) {
		t.Error("InRange boundary behaviour wrong")
	}
}

func TestNewSystemValidation(t *testing.T) {
	eff := PaperEfficiency()
	if _, err := NewSystem(0, 37.5, 0.1, 1.2, eff); err == nil {
		t.Error("zero VF accepted")
	}
	if _, err := NewSystem(12, 0, 0.1, 1.2, eff); err == nil {
		t.Error("zero zeta accepted")
	}
	if _, err := NewSystem(12, 37.5, 1.2, 0.1, eff); err == nil {
		t.Error("inverted range accepted")
	}
	if _, err := NewSystem(12, 37.5, 0.1, 1.2, nil); err == nil {
		t.Error("nil efficiency model accepted")
	}
}

func TestEfficiencyCurve(t *testing.T) {
	sys := PaperSystem()
	pts := sys.EfficiencyCurve(0.1, 1.2, 12)
	if len(pts) != 12 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].IF != 0.1 || pts[11].IF != 1.2 {
		t.Errorf("endpoints: %v, %v", pts[0].IF, pts[11].IF)
	}
	for k := 1; k < len(pts); k++ {
		if pts[k].Eta >= pts[k-1].Eta {
			t.Errorf("efficiency not strictly declining at %d", k)
		}
	}
}

func TestChainEfficiencyShape(t *testing.T) {
	chain, err := NewChainEfficiency(BCS20W(), NewPWMPFMConverter(12), ProportionalController())
	if err != nil {
		t.Fatal(err)
	}
	// The chain-derived system efficiency must decline with output current
	// over the load-following range (Fig 3(b) trend).
	if chain.Eta(1.0) >= chain.Eta(0.2) {
		t.Errorf("chain efficiency not declining: η(0.2)=%v η(1.0)=%v",
			chain.Eta(0.2), chain.Eta(1.0))
	}
	// And must be meaningfully positive inside the range.
	for _, iF := range []float64{0.1, 0.5, 1.0, 1.2} {
		if eta := chain.Eta(iF); eta < 0.05 || eta > 0.7 {
			t.Errorf("chain Eta(%v) = %v, implausible", iF, eta)
		}
	}
}

func TestChainLinearFit(t *testing.T) {
	chain, err := NewChainEfficiency(BCS20W(), NewPWMPFMConverter(12), ProportionalController())
	if err != nil {
		t.Fatal(err)
	}
	alpha, beta := chain.LinearFit(0.1, 1.2, 50)
	// The physical chain should reproduce the *form* of the paper's Eq 2:
	// positive intercept, positive slope of decline, same order of
	// magnitude as the measured α=0.45, β=0.13.
	if alpha < 0.2 || alpha > 0.6 {
		t.Errorf("fitted alpha = %v, outside plausible band", alpha)
	}
	if beta < 0.02 || beta > 0.3 {
		t.Errorf("fitted beta = %v, outside plausible band", beta)
	}
}

func TestChainMaxOutputCoversPaperRange(t *testing.T) {
	chain, err := NewChainEfficiency(BCS20W(), NewPWMPFMConverter(12), ProportionalController())
	if err != nil {
		t.Fatal(err)
	}
	if got := chain.MaxOutput(); got < 1.2 {
		t.Fatalf("chain max output %v A cannot cover the paper's 1.2 A range", got)
	}
}

func TestOnOffControllerNotch(t *testing.T) {
	ctrl := OnOffController()
	below := ctrl.Current(0.5)
	above := ctrl.Current(0.7)
	if above <= below {
		t.Error("cooling fan should raise controller draw above the threshold")
	}
}

func TestProportionalControllerScales(t *testing.T) {
	ctrl := ProportionalController()
	if ctrl.Current(1.0) <= ctrl.Current(0.1) {
		t.Error("proportional fan draw should grow with load")
	}
}

func TestConverterEfficiencies(t *testing.T) {
	pwm := NewPWMConverter(12)
	pfm := NewPWMPFMConverter(12)
	// PWM collapses at light load; PWM-PFM holds up (paper §2.1).
	if pwm.Efficiency(1.5) >= pfm.Efficiency(1.5) {
		t.Errorf("PWM light-load η %v should be below PWM-PFM %v",
			pwm.Efficiency(1.5), pfm.Efficiency(1.5))
	}
	// PWM-PFM ~85 % over the load range (1.5 W .. 16 W here).
	for _, p := range []float64{1.5, 5, 10, 16} {
		if eta := pfm.Efficiency(p); eta < 0.78 || eta > 0.97 {
			t.Errorf("PWM-PFM η(%v W) = %v, want roughly 0.85", p, eta)
		}
	}
	if got := pfm.Efficiency(0); got != 1 {
		t.Errorf("zero-load efficiency = %v, want 1 (moot)", got)
	}
	ideal := NewIdealConverter(12)
	if ideal.Efficiency(10) != 1 {
		t.Error("ideal converter should be lossless")
	}
	if pfm.OutputVoltage() != 12 {
		t.Error("output voltage not preserved")
	}
}

func TestConverterEfficiencyCurve(t *testing.T) {
	ps, es := ConverterEfficiencyCurve(NewPWMPFMConverter(12), 16, 8)
	if len(ps) != 8 || len(es) != 8 {
		t.Fatalf("lengths %d, %d", len(ps), len(es))
	}
	if ps[7] != 16 {
		t.Errorf("last power = %v", ps[7])
	}
}

func TestTableEfficiency(t *testing.T) {
	chain, err := NewChainEfficiency(BCS20W(), NewPWMPFMConverter(12), ProportionalController())
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip the chain through a measurement table.
	pts := make([]float64, 0, 20)
	etas := make([]float64, 0, 20)
	for k := 0; k < 20; k++ {
		iF := 0.1 + 1.1*float64(k)/19
		pts = append(pts, iF)
		etas = append(etas, chain.Eta(iF))
	}
	tab := TableEfficiency{T: numeric.MustTable(pts, etas)}
	for _, iF := range []float64{0.15, 0.6, 1.1} {
		if math.Abs(tab.Eta(iF)-chain.Eta(iF)) > 0.01 {
			t.Errorf("table vs chain at %v: %v vs %v", iF, tab.Eta(iF), chain.Eta(iF))
		}
	}
}
