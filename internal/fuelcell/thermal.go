package fuelcell

import (
	"fmt"
	"math"
)

// Thermal is a lumped thermal model of the FC stack: everything the fuel
// brings in that does not leave as electricity heats the stack, and the
// stack sheds heat to ambient through a (fan-assisted) conductance:
//
//	C_th·dT/dt = P_loss(IF) − H·(T − T_amb)
//	P_loss(IF) = ζ·Ifc(IF) − VF·IF = VF·IF·(1/ηs − 1)
//
// Policies do not see temperature (the paper's efficiency model is
// isothermal); Thermal is a post-hoc stress analysis: output profiles that
// swing the current also cycle the stack thermally, and thermal cycling is
// the dominant PEM membrane ageing mechanism. The ThermalStress experiment
// compares the policies' temperature trajectories.
type Thermal struct {
	// Cth is the stack heat capacity in J/K (hundreds of J/K for a small
	// 20-cell air-cooled stack).
	Cth float64
	// H is the heat conductance to ambient in W/K.
	H float64
	// Ambient is the surroundings temperature in °C.
	Ambient float64
}

// PaperThermal returns parameters plausible for the BCS 20 W class stack:
// ~0.4 kg of active graphite/membrane mass at ~1 J/(g·K) and a
// fan-assisted conductance giving a ~35 °C rise at full load, for a
// thermal time constant of ~400 s.
func PaperThermal() Thermal {
	return Thermal{Cth: 400, H: 1.0, Ambient: 25}
}

// Validate reports whether the parameters are physical.
func (th Thermal) Validate() error {
	if th.Cth <= 0 || th.H <= 0 {
		return fmt.Errorf("fuelcell: non-positive thermal parameter (Cth=%v, H=%v)", th.Cth, th.H)
	}
	return nil
}

// LossPower returns the stack heat generation in watts at output iF.
func (th Thermal) LossPower(sys *System, iF float64) float64 {
	if iF <= 0 {
		return 0
	}
	return sys.Zeta*sys.StackCurrent(iF) - sys.VF*iF
}

// SteadyTemp returns the equilibrium stack temperature at a constant
// output iF.
func (th Thermal) SteadyTemp(sys *System, iF float64) float64 {
	return th.Ambient + th.LossPower(sys, iF)/th.H
}

// TempPoint is one sample of a temperature trajectory.
type TempPoint struct {
	T    float64 // time, s
	Temp float64 // stack temperature, °C
}

// Trajectory integrates the stack temperature under a piecewise-constant
// output profile given as (time, IF) steps: ifs[k] holds from ts[k] to
// ts[k+1] (the final step holds for endHold seconds). The ODE is linear
// within each step, so each segment is integrated exactly:
//
//	T(t) = T_ss + (T_0 − T_ss)·exp(−H·t/C_th).
//
// The trajectory starts at ambient.
func (th Thermal) Trajectory(sys *System, ts, ifs []float64, endHold float64) ([]TempPoint, error) {
	if err := th.Validate(); err != nil {
		return nil, err
	}
	if len(ts) != len(ifs) || len(ts) == 0 {
		return nil, fmt.Errorf("fuelcell: thermal profile length mismatch (%d vs %d)", len(ts), len(ifs))
	}
	out := make([]TempPoint, 0, len(ts)+1)
	temp := th.Ambient
	tau := th.Cth / th.H
	for k := range ts {
		out = append(out, TempPoint{T: ts[k], Temp: temp})
		var dur float64
		if k+1 < len(ts) {
			dur = ts[k+1] - ts[k]
			if dur < 0 {
				return nil, fmt.Errorf("fuelcell: thermal profile times not sorted at %d", k)
			}
		} else {
			dur = endHold
		}
		tss := th.SteadyTemp(sys, ifs[k])
		temp = tss + (temp-tss)*math.Exp(-dur/tau)
	}
	out = append(out, TempPoint{T: ts[len(ts)-1] + endHold, Temp: temp})
	return out, nil
}

// ThermalStress summarizes a temperature trajectory for ageing comparison.
type ThermalStress struct {
	Mean, Min, Max float64
	// Swing is max − min, the depth thermal-cycling damage scales with.
	Swing float64
	// CycleCount is the number of mean-crossing pairs — how often the
	// stack is cycled through its mean temperature.
	CycleCount int
}

// Stress computes the summary over a trajectory. An empty trajectory
// yields a zero value.
func Stress(traj []TempPoint) ThermalStress {
	var s ThermalStress
	if len(traj) == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	var sum float64
	for _, p := range traj {
		sum += p.Temp
		s.Min = math.Min(s.Min, p.Temp)
		s.Max = math.Max(s.Max, p.Temp)
	}
	s.Mean = sum / float64(len(traj))
	s.Swing = s.Max - s.Min
	crossings := 0
	for k := 1; k < len(traj); k++ {
		a := traj[k-1].Temp - s.Mean
		b := traj[k].Temp - s.Mean
		if a*b < 0 {
			crossings++
		}
	}
	s.CycleCount = crossings / 2
	return s
}
