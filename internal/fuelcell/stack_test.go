package fuelcell

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBCS20WOpenCircuit(t *testing.T) {
	s := BCS20W()
	if got := s.Voltage(0); got != 18.2 {
		t.Fatalf("open-circuit voltage = %v, want 18.2 (paper §2.1)", got)
	}
	if got := s.Voltage(-1); got != 18.2 {
		t.Fatalf("negative current voltage = %v, want open-circuit 18.2", got)
	}
}

func TestBCS20WVoltageMonotoneDecreasing(t *testing.T) {
	s := BCS20W()
	prev := s.Voltage(0)
	for i := 0.01; i <= 1.6; i += 0.01 {
		v := s.Voltage(i)
		if v > prev {
			t.Fatalf("voltage increased at i=%v: %v > %v", i, v, prev)
		}
		prev = v
	}
}

func TestBCS20WMaxPower(t *testing.T) {
	s := BCS20W()
	ifc, p := s.MaxPower()
	// Fig 2: maximum power capacity of the 20 W-class stack lies near the
	// right edge of the plotted range (~1.4-1.5 A).
	if ifc < 1.2 || ifc > 1.8 {
		t.Errorf("max-power current = %v A, want in [1.2, 1.8]", ifc)
	}
	if p < 14 || p > 22 {
		t.Errorf("max power = %v W, want ~20 W class", p)
	}
	// It is a genuine maximum.
	if s.Power(ifc-0.05) > p || s.Power(ifc+0.05) > p {
		t.Errorf("MaxPower is not a local max: P(%v)=%v", ifc, p)
	}
}

func TestBCS20WPowerRisesThenFalls(t *testing.T) {
	s := BCS20W()
	iStar, _ := s.MaxPower()
	if s.Power(0.1) >= s.Power(iStar/2) {
		t.Error("power not increasing on the left branch")
	}
	if s.Power(iStar+0.3) >= s.Power(iStar) {
		t.Error("power not decreasing past the knee")
	}
}

func TestCurrentForPower(t *testing.T) {
	s := BCS20W()
	for _, want := range []float64{1, 5, 10, 15} {
		i, err := s.CurrentForPower(want)
		if err != nil {
			t.Fatalf("CurrentForPower(%v): %v", want, err)
		}
		if got := s.Power(i); math.Abs(got-want) > 1e-6 {
			t.Errorf("Power(CurrentForPower(%v)) = %v", want, got)
		}
	}
}

func TestCurrentForPowerEdgeCases(t *testing.T) {
	s := BCS20W()
	if i, err := s.CurrentForPower(0); err != nil || i != 0 {
		t.Errorf("zero power: i=%v err=%v", i, err)
	}
	if _, err := s.CurrentForPower(-1); err == nil {
		t.Error("negative power accepted")
	}
	if _, err := s.CurrentForPower(1e6); err == nil {
		t.Error("excess power accepted")
	}
}

func TestCurrentForPowerPicksEfficientBranch(t *testing.T) {
	s := BCS20W()
	iStar, _ := s.MaxPower()
	i, err := s.CurrentForPower(5)
	if err != nil {
		t.Fatal(err)
	}
	if i >= iStar {
		t.Errorf("solver picked the inefficient branch: i=%v >= knee %v", i, iStar)
	}
}

func TestStackEfficiencyTracksVoltage(t *testing.T) {
	s := BCS20W()
	// ηstack = Vfc/ζ (paper §2.3): check the identity and the declining
	// trend.
	for _, i := range []float64{0.1, 0.5, 1.0} {
		want := s.Voltage(i) / s.Params().Zeta
		if got := s.Efficiency(i); math.Abs(got-want) > 1e-12 {
			t.Errorf("Efficiency(%v) = %v, want %v", i, got, want)
		}
	}
	if s.Efficiency(1.0) >= s.Efficiency(0.1) {
		t.Error("stack efficiency should decline with current")
	}
}

func TestStackParamsValidate(t *testing.T) {
	bad := []StackParams{
		{Voc: 0, I0: 1, Zeta: 1},
		{Voc: 10, I0: 0, Zeta: 1},
		{Voc: 10, I0: 1, Zeta: 0},
		{Voc: 10, I0: 1, Zeta: 1, A: -1},
	}
	for k, p := range bad {
		if _, err := NewStack(p); err == nil {
			t.Errorf("case %d: invalid params accepted", k)
		}
	}
	if _, err := NewStack(BCS20W().Params()); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestIVPCurve(t *testing.T) {
	s := BCS20W()
	pts := s.IVPCurve(1.5, 16)
	if len(pts) != 16 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].Ifc != 0 || pts[0].Vfc != 18.2 {
		t.Errorf("first point = %+v", pts[0])
	}
	if pts[15].Ifc != 1.5 {
		t.Errorf("last current = %v", pts[15].Ifc)
	}
	for k := 1; k < len(pts); k++ {
		if pts[k].Vfc > pts[k-1].Vfc {
			t.Errorf("voltage not monotone at point %d", k)
		}
	}
}

// Property: voltage is non-negative and never exceeds open circuit.
func TestStackVoltageBounds(t *testing.T) {
	s := BCS20W()
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		i := math.Abs(math.Mod(raw, 10))
		v := s.Voltage(i)
		return v >= 0 && v <= 18.2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
