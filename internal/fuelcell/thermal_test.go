package fuelcell

import (
	"math"
	"testing"
)

func TestLossPowerPositiveAndGrowing(t *testing.T) {
	th := PaperThermal()
	sys := PaperSystem()
	if got := th.LossPower(sys, 0); got != 0 {
		t.Fatalf("no-load loss = %v", got)
	}
	prev := 0.0
	for _, iF := range []float64{0.1, 0.4, 0.8, 1.2} {
		p := th.LossPower(sys, iF)
		if p <= prev {
			t.Fatalf("loss not increasing at %v: %v", iF, p)
		}
		prev = p
	}
	// Sanity: loss = VF·IF·(1/ηs − 1).
	iF := 0.6
	eta := sys.Efficiency(iF)
	want := sys.VF * iF * (1/eta - 1)
	if got := th.LossPower(sys, iF); math.Abs(got-want) > 1e-9 {
		t.Fatalf("loss = %v, want %v", got, want)
	}
}

func TestSteadyTempPlausible(t *testing.T) {
	th := PaperThermal()
	sys := PaperSystem()
	cold := th.SteadyTemp(sys, 0)
	if cold != 25 {
		t.Fatalf("no-load steady temp = %v, want ambient", cold)
	}
	hot := th.SteadyTemp(sys, 1.2)
	// A small PEM stack runs warm but below boiling.
	if hot < 40 || hot > 95 {
		t.Fatalf("full-load steady temp = %v °C, implausible", hot)
	}
}

func TestTrajectoryConvergesToSteady(t *testing.T) {
	th := PaperThermal()
	sys := PaperSystem()
	// Hold 0.6 A for many thermal time constants.
	traj, err := th.Trajectory(sys, []float64{0}, []float64{0.6}, 20*th.Cth/th.H)
	if err != nil {
		t.Fatal(err)
	}
	final := traj[len(traj)-1].Temp
	if want := th.SteadyTemp(sys, 0.6); math.Abs(final-want) > 0.01 {
		t.Fatalf("final temp = %v, want steady %v", final, want)
	}
	// Starts at ambient.
	if traj[0].Temp != 25 {
		t.Fatalf("initial temp = %v", traj[0].Temp)
	}
}

func TestTrajectoryExactExponential(t *testing.T) {
	th := PaperThermal()
	sys := PaperSystem()
	tau := th.Cth / th.H
	traj, err := th.Trajectory(sys, []float64{0, tau}, []float64{1.0, 1.0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// After exactly one time constant: T = Tss + (T0−Tss)/e.
	tss := th.SteadyTemp(sys, 1.0)
	want := tss + (25-tss)/math.E
	if math.Abs(traj[1].Temp-want) > 1e-9 {
		t.Fatalf("T(tau) = %v, want %v", traj[1].Temp, want)
	}
}

func TestTrajectoryErrors(t *testing.T) {
	th := PaperThermal()
	sys := PaperSystem()
	if _, err := th.Trajectory(sys, []float64{0, 1}, []float64{1}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := th.Trajectory(sys, nil, nil, 0); err == nil {
		t.Error("empty profile accepted")
	}
	if _, err := th.Trajectory(sys, []float64{1, 0}, []float64{1, 1}, 0); err == nil {
		t.Error("unsorted times accepted")
	}
	bad := Thermal{Cth: 0, H: 1}
	if _, err := bad.Trajectory(sys, []float64{0}, []float64{1}, 1); err == nil {
		t.Error("invalid thermal parameters accepted")
	}
}

func TestStressSummary(t *testing.T) {
	traj := []TempPoint{{0, 30}, {1, 50}, {2, 30}, {3, 50}, {4, 30}}
	s := Stress(traj)
	if s.Min != 30 || s.Max != 50 || s.Swing != 20 {
		t.Fatalf("stress = %+v", s)
	}
	if math.Abs(s.Mean-38) > 1e-9 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.CycleCount != 2 {
		t.Fatalf("cycles = %d, want 2", s.CycleCount)
	}
	if z := Stress(nil); z.CycleCount != 0 || z.Mean != 0 {
		t.Fatalf("empty stress = %+v", z)
	}
}

func TestFlatProfileNoCycling(t *testing.T) {
	th := PaperThermal()
	sys := PaperSystem()
	ts := make([]float64, 50)
	ifs := make([]float64, 50)
	for k := range ts {
		ts[k] = float64(k) * 10
		ifs[k] = 0.5
	}
	traj, err := th.Trajectory(sys, ts, ifs, 10)
	if err != nil {
		t.Fatal(err)
	}
	s := Stress(traj)
	// Pure warm-up: monotone rise, no cycling after the mean crossing.
	if s.CycleCount > 1 {
		t.Fatalf("flat profile cycles %d times", s.CycleCount)
	}
}
