package fuelcell

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHydrogenMoles(t *testing.T) {
	h := PaperHydrogen()
	// 1 A for 2·F/20 seconds consumes exactly 1 mol of H2.
	fuel := 2 * FaradayConstant / 20
	if got := h.Moles(fuel); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Moles = %v, want 1", got)
	}
}

func TestHydrogenMassAndVolume(t *testing.T) {
	h := Hydrogen{Cells: 1}
	fuel := 2 * FaradayConstant // 1 mol
	if got := h.Grams(fuel); math.Abs(got-2.016) > 1e-9 {
		t.Errorf("Grams = %v, want 2.016", got)
	}
	if got := h.LitresSTP(fuel); math.Abs(got-22.711) > 1e-9 {
		t.Errorf("LitresSTP = %v, want 22.711", got)
	}
}

func TestHydrogenEnergy(t *testing.T) {
	h := Hydrogen{Cells: 1}
	fuel := 2 * FaradayConstant // 1 mol = 2.016 g
	want := 2.016 * H2LHV
	if got := h.ChemicalEnergy(fuel); math.Abs(got-want) > 1e-6 {
		t.Fatalf("ChemicalEnergy = %v, want %v", got, want)
	}
}

func TestFuelForGramsRoundTrip(t *testing.T) {
	h := PaperHydrogen()
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		g := math.Abs(math.Mod(raw, 1000))
		back := h.Grams(h.FuelForGrams(g))
		return math.Abs(back-g) <= 1e-9*math.Max(1, g)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCartridgeLifetime(t *testing.T) {
	h := PaperHydrogen()
	// A cartridge holding the fuel for 1000 A-s, drawn at 0.5 A, lasts
	// 2000 s.
	grams := h.Grams(1000)
	if got := h.CartridgeLifetime(grams, 0.5); math.Abs(got-2000) > 1e-6 {
		t.Fatalf("lifetime = %v, want 2000", got)
	}
	if got := h.CartridgeLifetime(grams, 0); !math.IsInf(got, 1) {
		t.Fatalf("zero-draw lifetime = %v, want +Inf", got)
	}
}

func TestEndToEndEfficiency(t *testing.T) {
	h := PaperHydrogen()
	// The system efficiency chain should land the end-to-end value in a
	// physically sensible band: delivering VF·IF·t J while burning
	// Ifc(IF)·t A-s of stack charge.
	sys := PaperSystem()
	iF := 0.5
	dt := 100.0
	delivered := sys.VF * iF * dt
	fuel := sys.Fuel(iF, dt)
	eta := h.EndToEndEfficiency(delivered, fuel)
	if eta < 0.1 || eta > 0.9 {
		t.Fatalf("end-to-end efficiency = %v, implausible", eta)
	}
	if got := h.EndToEndEfficiency(100, 0); got != 0 {
		t.Fatalf("zero-fuel efficiency = %v, want 0", got)
	}
}

func TestHydrogenValidate(t *testing.T) {
	if err := (Hydrogen{Cells: 0}).Validate(); err == nil {
		t.Error("zero cells accepted")
	}
	if err := PaperHydrogen().Validate(); err != nil {
		t.Errorf("paper converter rejected: %v", err)
	}
}

// Property: all hydrogen measures are linear in fuel.
func TestHydrogenLinearity(t *testing.T) {
	h := PaperHydrogen()
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		q := math.Abs(math.Mod(raw, 1e6))
		return math.Abs(h.Moles(2*q)-2*h.Moles(q)) <= 1e-9*math.Max(1, h.Moles(2*q)) &&
			math.Abs(h.Grams(3*q)-3*h.Grams(q)) <= 1e-9*math.Max(1, h.Grams(3*q))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
