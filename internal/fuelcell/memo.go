package fuelcell

import "math"

// memoSize is the number of direct-mapped memo slots. Power of two so the
// index reduction is a shift; 256 slots comfortably hold the handful of
// distinct set points a policy emits over a run (FC-DPM re-plans per slot
// but the optimizer lands on a small recurring set, Conv/ASAP on fewer).
const memoSize = 256

// Memo caches a System's efficiency and stack-current (Eq 3/4) maps
// behind a direct-mapped, exact-key lookup. A hit requires the queried
// output current to match a cached key bit-for-bit; anything else falls
// back to the analytic model and caches the freshly computed value. Both
// paths evaluate the identical expression, so a memoized simulation is
// bit-identical to an unmemoized one — the memo only skips re-evaluating
// the efficiency model (interpolation search for table/chain models).
//
// A Memo is NOT safe for concurrent use: each simulation run owns its own
// (the System itself stays shared and read-only). It assumes the System
// is not mutated while the memo is live.
type Memo struct {
	sys *System

	keys [memoSize]uint64
	full [memoSize]bool
	eta  [memoSize]float64
	sc   [memoSize]float64

	hits, misses uint64
}

// NewMemo returns an empty memo over sys.
func NewMemo(sys *System) *Memo { return &Memo{sys: sys} }

// memoIndex maps float bits to a slot (Fibonacci hashing keeps nearby
// currents from clustering into the same slot).
func memoIndex(bits uint64) int {
	return int((bits * 0x9E3779B97F4A7C15) >> 56)
}

// lookup returns the cached (eta, stackCurrent) pair for iF, computing
// and caching it on a miss. iF must be positive.
func (m *Memo) lookup(iF float64) (eta, sc float64) {
	bits := math.Float64bits(iF)
	i := memoIndex(bits)
	if m.full[i] && m.keys[i] == bits {
		m.hits++
		return m.eta[i], m.sc[i]
	}
	m.misses++
	eta = m.sys.Eff.Eta(iF)
	// The same expression as System.StackCurrent, so hit and miss agree
	// bit-for-bit.
	sc = m.sys.VF * iF / (m.sys.Zeta * eta)
	m.keys[i], m.full[i], m.eta[i], m.sc[i] = bits, true, eta, sc
	return eta, sc
}

// Eta returns ηs(iF), memoized.
func (m *Memo) Eta(iF float64) float64 {
	if iF <= 0 {
		return m.sys.Eff.Eta(iF)
	}
	eta, _ := m.lookup(iF)
	return eta
}

// StackCurrent returns the stack current Ifc(iF) per Eq 3, memoized.
// Like System.StackCurrent, non-positive outputs consume no fuel.
func (m *Memo) StackCurrent(iF float64) float64 {
	if iF <= 0 {
		return 0
	}
	_, sc := m.lookup(iF)
	return sc
}

// Fuel returns the fuel (A·s of stack current) consumed by holding iF for
// dt seconds, memoized.
func (m *Memo) Fuel(iF, dt float64) float64 { return m.StackCurrent(iF) * dt }

// System returns the underlying system description.
func (m *Memo) System() *System { return m.sys }

// Stats reports lookup hits and misses (for tests and perf diagnostics).
func (m *Memo) Stats() (hits, misses uint64) { return m.hits, m.misses }
