package fuelcell

import (
	"math"
	"testing"

	"fcdpm/internal/numeric"
)

// memoSystems returns efficiency models worth validating the memo
// against: the paper's linear fit, a constant, and a measured table.
func memoSystems(t *testing.T) map[string]*System {
	t.Helper()
	tab, err := numeric.NewTable(
		[]float64{0.1, 0.3, 0.6, 0.9, 1.2},
		[]float64{0.44, 0.41, 0.37, 0.33, 0.29},
	)
	if err != nil {
		t.Fatalf("table efficiency: %v", err)
	}
	mustSys := func(eff EfficiencyModel) *System {
		s, err := NewSystem(12, 37.5, 0.1, 1.2, eff)
		if err != nil {
			t.Fatalf("system: %v", err)
		}
		return s
	}
	return map[string]*System{
		"linear":   PaperSystem(),
		"constant": mustSys(ConstantEfficiency{Value: 0.4}),
		"table":    mustSys(TableEfficiency{T: tab}),
	}
}

// TestMemoMatchesAnalytic validates the memoized maps against the
// analytic path: every lookup — first (miss) and repeated (hit) — must
// reproduce System.StackCurrent and Efficiency exactly, since hit and
// miss evaluate the identical expression.
func TestMemoMatchesAnalytic(t *testing.T) {
	for name, sys := range memoSystems(t) {
		t.Run(name, func(t *testing.T) {
			m := NewMemo(sys)
			// Dense sweep plus awkward values: below range, zero,
			// negative, and repeats to exercise the hit path.
			var currents []float64
			for k := 0; k <= 1000; k++ {
				currents = append(currents, 1.4*float64(k)/1000)
			}
			currents = append(currents, -0.5, 0, 1e-300, 0.7499999999999999, math.Pi/4)
			currents = append(currents, currents...) // hits
			for _, iF := range currents {
				if got, want := m.StackCurrent(iF), sys.StackCurrent(iF); got != want {
					t.Fatalf("StackCurrent(%v) = %v, analytic %v", iF, got, want)
				}
				if got, want := m.Eta(iF), sys.Efficiency(iF); got != want {
					t.Fatalf("Eta(%v) = %v, analytic %v", iF, got, want)
				}
				if got, want := m.Fuel(iF, 2.5), sys.Fuel(iF, 2.5); got != want {
					t.Fatalf("Fuel(%v, 2.5) = %v, analytic %v", iF, got, want)
				}
			}
			hits, misses := m.Stats()
			if hits == 0 || misses == 0 {
				t.Fatalf("expected both hits and misses, got hits=%d misses=%d", hits, misses)
			}
		})
	}
}

// TestMemoSlotCollisionEvicts pins the direct-mapped eviction contract:
// two distinct currents hashing to the same slot must displace each other
// (the newcomer wins, the previous key becomes a miss again) while both
// keep returning values bit-identical to the analytic model throughout
// the evict/recompute churn.
func TestMemoSlotCollisionEvicts(t *testing.T) {
	sys := PaperSystem()
	m := NewMemo(sys)

	// Find a second in-range current that collides with x1's slot.
	x1 := 0.4382
	slot := memoIndex(math.Float64bits(x1))
	x2 := 0.0
	for k := 1; k <= 2_000_000; k++ {
		c := 0.1 + 1.1*float64(k)/2_000_000
		if c != x1 && memoIndex(math.Float64bits(c)) == slot {
			x2 = c
			break
		}
	}
	if x2 == 0 {
		t.Skip("no colliding current found in range; hash layout changed")
	}

	check := func(iF float64) {
		t.Helper()
		if got, want := m.StackCurrent(iF), sys.StackCurrent(iF); got != want {
			t.Fatalf("StackCurrent(%v) = %v, analytic %v", iF, got, want)
		}
	}

	check(x1) // miss, fills the slot
	check(x1) // hit
	check(x2) // collision: evicts x1, miss
	check(x2) // hit
	check(x1) // evicted earlier, so a miss again — and still exact
	hits, misses := m.Stats()
	if misses != 3 {
		t.Fatalf("expected 3 misses (fill, evict, re-fill), got %d (hits %d)", misses, hits)
	}
	if hits != 2 {
		t.Fatalf("expected 2 hits, got %d (misses %d)", hits, misses)
	}
}

// TestMemoHitsRepeatedSetpoints checks the memo actually serves the
// steady-state pattern it exists for: a handful of recurring set points.
func TestMemoHitsRepeatedSetpoints(t *testing.T) {
	m := NewMemo(PaperSystem())
	setpoints := []float64{0.1, 0.4382, 0.53, 1.2}
	for round := 0; round < 1000; round++ {
		for _, iF := range setpoints {
			m.StackCurrent(iF)
		}
	}
	hits, misses := m.Stats()
	if misses > uint64(len(setpoints)) {
		t.Fatalf("expected at most %d misses, got %d", len(setpoints), misses)
	}
	if hits != 1000*uint64(len(setpoints))-misses {
		t.Fatalf("hit accounting off: hits=%d misses=%d", hits, misses)
	}
}
