// Package runreport renders one completed simulation as the stable JSON
// body every serving surface agrees on. The simulation server, the sweep
// dispatcher's workers, and `fcdpm batch -rows` all render through this
// one function, which is what makes "byte-identical" a meaningful
// guarantee: a result computed on a remote worker, served from the
// content-addressed cache, or produced by a local batch of the same spec
// is the same bytes.
package runreport

import (
	"fcdpm/internal/report"
	"fcdpm/internal/sim"
)

// Report is the JSON body served for one completed run. It is rendered
// exactly once with report.StableJSON and the rendered bytes are what
// the content-addressed cache stores — a cache hit is byte-identical to
// the run that populated it.
type Report struct {
	Name   string `json:"name"`
	Key    string `json:"key"`
	Engine string `json:"engine"`
	Policy string `json:"policy"`
	// FinalPolicy differs from Policy when the supervisor degraded.
	FinalPolicy string  `json:"finalPolicy"`
	Slots       int     `json:"slots"`
	Sleeps      int     `json:"sleeps"`
	DurationS   float64 `json:"durationS"`
	// FuelAs is the paper's objective: stack charge consumed, A-s.
	FuelAs        float64  `json:"fuelAs"`
	AvgIfcA       float64  `json:"avgIfcA"`
	DeliveredJ    float64  `json:"deliveredJ"`
	LoadJ         float64  `json:"loadJ"`
	BledAs        float64  `json:"bledAs"`
	DeficitAs     float64  `json:"deficitAs"`
	ShedAs        float64  `json:"shedAs"`
	FinalChargeAs float64  `json:"finalChargeAs"`
	Fallbacks     int      `json:"fallbacks"`
	Events        []string `json:"events,omitempty"`
}

// Render builds and stably encodes the response body for one completed
// simulation.
func Render(name, key, engine string, res *sim.Result) ([]byte, error) {
	rr := Report{
		Name: name, Key: key, Engine: engine,
		Policy: res.Policy, FinalPolicy: res.FinalPolicy,
		Slots: res.Slots, Sleeps: res.Sleeps,
		DurationS: res.Duration, FuelAs: res.Fuel, AvgIfcA: res.AvgFuelRate(),
		DeliveredJ: res.DeliveredEnergy, LoadJ: res.LoadEnergy,
		BledAs: res.Bled, DeficitAs: res.Deficit, ShedAs: res.Shed,
		FinalChargeAs: res.FinalCharge, Fallbacks: res.Fallbacks,
	}
	for _, ev := range res.Events {
		rr.Events = append(rr.Events, ev.String())
	}
	return report.StableJSON(rr)
}
