package device

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCamcorderCurrents(t *testing.T) {
	m := Camcorder()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Fig 6 powers at 12 V.
	if math.Abs(m.Isdb*12-4.84) > 1e-9 {
		t.Errorf("STANDBY power = %v W, want 4.84", m.Isdb*12)
	}
	if math.Abs(m.Islp*12-2.40) > 1e-9 {
		t.Errorf("SLEEP power = %v W, want 2.40", m.Islp*12)
	}
	if math.Abs(CamcorderRunCurrent*12-14.65) > 1e-9 {
		t.Errorf("RUN power = %v W, want 14.65", CamcorderRunCurrent*12)
	}
	if math.Abs(m.IPD*12-4.8) > 1e-6 {
		t.Errorf("transition power = %v W, want ~4.8 (paper: 4.65-4.8 W @ 0.40 A)", m.IPD*12)
	}
}

func TestCamcorderBreakEven(t *testing.T) {
	// Paper §5.1: "the break-even time is Tbe = τPD + τWU = 1 s".
	if got := Camcorder().BreakEven(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("camcorder Tbe = %v, want 1", got)
	}
}

func TestSyntheticBreakEven(t *testing.T) {
	// Paper §5.2: "the break-even time is 10 s".
	if got := Synthetic().BreakEven(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("synthetic Tbe = %v, want 10 (override)", got)
	}
	// The energy-derived value should itself land near 10 s, which is why
	// the paper could quote it: (1.2·1 + 1.2·1 − 0.2·2) / (0.4033 − 0.2) ≈ 9.84.
	m := Synthetic()
	m.TbeOverride = 0
	if got := m.BreakEven(); math.Abs(got-9.84) > 0.05 {
		t.Fatalf("energy-derived synthetic Tbe = %v, want ≈9.84", got)
	}
}

func TestCamcorderActivePeriod(t *testing.T) {
	// 16 MB at 5.28 MB/s ≈ 3.03 s (paper §5.1).
	if math.Abs(CamcorderActivePeriod-3.03) > 0.01 {
		t.Fatalf("active period = %v, want ≈3.03", CamcorderActivePeriod)
	}
}

func TestBreakEvenFloorsAtTransitionTime(t *testing.T) {
	m := &Model{
		V: 12, Isdb: 1.0, Islp: 0.1,
		TauPD: 2, IPD: 0.1, TauWU: 2, IWU: 0.1,
	}
	// Energy break-even would be tiny (transitions cost nothing extra),
	// but the device physically needs 4 s to round-trip.
	if got := m.BreakEven(); got != 4 {
		t.Fatalf("Tbe = %v, want floor 4", got)
	}
}

func TestBreakEvenNoSavings(t *testing.T) {
	m := &Model{V: 12, Isdb: 0.2, Islp: 0.2, TauPD: 1, TauWU: 1}
	if got := m.BreakEven(); !math.IsInf(got, 1) {
		t.Fatalf("Tbe with Islp==Isdb = %v, want +Inf", got)
	}
}

func TestIdleCurrent(t *testing.T) {
	m := Camcorder()
	if got := m.IdleCurrent(true); got != m.Islp {
		t.Errorf("sleeping idle current = %v", got)
	}
	if got := m.IdleCurrent(false); got != m.Isdb {
		t.Errorf("standby idle current = %v", got)
	}
}

func TestSleepCheaperBeyondBreakEven(t *testing.T) {
	for _, m := range []*Model{Camcorder(), Synthetic()} {
		m := *m
		m.TbeOverride = 0
		tbe := m.BreakEven()
		eps := 0.01 * tbe
		if m.SleepEnergyCharge(tbe+eps) >= m.StandbyEnergyCharge(tbe+eps) {
			t.Errorf("%s: sleeping past Tbe should be cheaper", m.Name)
		}
		if tau := m.TauPD + m.TauWU; tbe > tau {
			if m.SleepEnergyCharge(tbe-eps) <= m.StandbyEnergyCharge(tbe-eps) {
				t.Errorf("%s: sleeping before Tbe should be costlier", m.Name)
			}
		}
	}
}

func TestSleepEnergyChargeShortIdle(t *testing.T) {
	m := Camcorder()
	// Idle shorter than the transition round trip: cost is prorated and
	// continuous at the boundary.
	tau := m.TauPD + m.TauWU
	full := m.SleepEnergyCharge(tau)
	half := m.SleepEnergyCharge(tau / 2)
	if math.Abs(half-full/2) > 1e-9 {
		t.Errorf("prorated transition charge: got %v, want %v", half, full/2)
	}
	just := m.SleepEnergyCharge(tau + 1e-9)
	if math.Abs(just-full) > 1e-6 {
		t.Errorf("discontinuity at tau: %v vs %v", just, full)
	}
}

func TestSleepEnergyChargeZeroTransition(t *testing.T) {
	m := &Model{V: 12, Isdb: 0.4, Islp: 0.2}
	if got := m.SleepEnergyCharge(0); got != 0 {
		t.Fatalf("zero idle zero transitions: %v", got)
	}
	if got := m.SleepEnergyCharge(10); math.Abs(got-2) > 1e-12 {
		t.Fatalf("pure sleep charge = %v, want 2", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []Model{
		{V: 0, Isdb: 0.4, Islp: 0.2},
		{V: 12, Isdb: -0.4, Islp: 0.2},
		{V: 12, Isdb: 0.4, Islp: 0.2, TauPD: -1},
		{V: 12, Isdb: 0.2, Islp: 0.4}, // sleep above standby
	}
	for k := range bad {
		if err := bad[k].Validate(); err == nil {
			t.Errorf("case %d: invalid model accepted", k)
		}
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Run: "RUN", Standby: "STANDBY", Sleep: "SLEEP"} {
		if got := s.String(); got != want {
			t.Errorf("State %d = %q, want %q", int(s), got, want)
		}
	}
	if got := State(9).String(); !strings.Contains(got, "9") {
		t.Errorf("unknown state = %q", got)
	}
}

// Property: for any idle length above the transition round trip, the sleep
// charge equals transitions plus linear sleep tail — monotone increasing.
func TestSleepEnergyMonotone(t *testing.T) {
	m := Camcorder()
	f := func(araw, braw float64) bool {
		if math.IsNaN(araw) || math.IsNaN(braw) || math.IsInf(araw, 0) || math.IsInf(braw, 0) {
			return true
		}
		a := math.Abs(math.Mod(araw, 100))
		b := math.Abs(math.Mod(braw, 100))
		if a > b {
			a, b = b, a
		}
		return m.SleepEnergyCharge(a) <= m.SleepEnergyCharge(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHDDPreset(t *testing.T) {
	m := HDD()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Spin-up dominates: the break-even time is an order of magnitude
	// above the transition time, landing in the tens of seconds that the
	// disk-DPM literature reports.
	tbe := m.BreakEven()
	if tbe < 8 || tbe > 40 {
		t.Fatalf("HDD Tbe = %v s, want O(10 s)", tbe)
	}
	if tbe <= m.TauPD+m.TauWU {
		t.Fatal("HDD break-even should exceed the bare transition time")
	}
	// Sleeping a 60 s idle must beat standby.
	if m.SleepEnergyCharge(60) >= m.StandbyEnergyCharge(60) {
		t.Fatal("long idle should favour spin-down")
	}
}
