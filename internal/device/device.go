// Package device models the DPM-enabled embedded system: its power states
// (RUN / STANDBY / SLEEP), the state-transition overheads, and the
// break-even time that decides when sleeping pays off.
//
// The camcorder preset reproduces the paper's Fig 6 exactly; Synthetic
// reproduces the Experiment 2 configuration.
package device

import (
	"fmt"
	"math"
)

// State is an embedded-system power state.
type State int

// Power states of the DPM-enabled system (paper §3.1).
const (
	Run State = iota
	Standby
	Sleep
)

// String returns the paper's name for the state.
func (s State) String() string {
	switch s {
	case Run:
		return "RUN"
	case Standby:
		return "STANDBY"
	case Sleep:
		return "SLEEP"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Model describes a DPM-enabled embedded system powered at a regulated
// voltage. All currents are amperes at voltage V; all durations seconds.
// The RUN-mode current is task-dependent and carried by the workload trace,
// not the model.
type Model struct {
	// Name identifies the model in reports.
	Name string
	// V is the supply voltage (12 V in the paper).
	V float64
	// Isdb and Islp are the STANDBY and SLEEP mode currents.
	Isdb, Islp float64
	// TauPD and IPD are the delay and current when entering SLEEP
	// (power-down).
	TauPD, IPD float64
	// TauWU and IWU are the delay and current when exiting SLEEP
	// (wake-up).
	TauWU, IWU float64
	// TauSR and TauRS are the STANDBY→RUN and RUN→STANDBY transition
	// delays, performed at the RUN-mode current. The paper absorbs these
	// into the active period (§3.3.2 assumption 2); the simulator models
	// them as explicit RUN-current segments bracketing the active period.
	TauSR, TauRS float64
	// TbeOverride, when positive, fixes the DPM break-even time instead
	// of the energy-derived value (Experiment 2 cites Tbe = 10 s from the
	// survey [4]).
	TbeOverride float64
}

// Validate reports whether the model is self-consistent.
func (m *Model) Validate() error {
	switch {
	case m.V <= 0:
		return fmt.Errorf("device: non-positive supply voltage %v", m.V)
	case m.Isdb < 0 || m.Islp < 0 || m.IPD < 0 || m.IWU < 0:
		return fmt.Errorf("device: negative mode current")
	case m.TauPD < 0 || m.TauWU < 0 || m.TauSR < 0 || m.TauRS < 0:
		return fmt.Errorf("device: negative transition delay")
	case m.Islp >= m.Isdb:
		return fmt.Errorf("device: SLEEP current %v not below STANDBY current %v", m.Islp, m.Isdb)
	}
	return nil
}

// BreakEven returns the DPM break-even time Tbe: the minimum idle duration
// for which entering SLEEP saves energy over staying in STANDBY, never less
// than the total transition delay. For an idle period of length T,
// sleeping costs
//
//	IPD·τPD + IWU·τWU + Islp·(T − τPD − τWU)
//
// against STANDBY's Isdb·T; equating the two and flooring at τPD+τWU gives
//
//	Tbe = max(τPD+τWU, (IPD·τPD + IWU·τWU − Islp·(τPD+τWU)) / (Isdb − Islp))
//
// This reproduces both of the paper's quoted values: 1 s for the camcorder
// and ~10 s for the Experiment 2 configuration. TbeOverride wins when set.
func (m *Model) BreakEven() float64 {
	if m.TbeOverride > 0 {
		return m.TbeOverride
	}
	tau := m.TauPD + m.TauWU
	denom := m.Isdb - m.Islp
	if denom <= 0 {
		return math.Inf(1) // sleeping never pays
	}
	te := (m.IPD*m.TauPD + m.IWU*m.TauWU - m.Islp*tau) / denom
	return math.Max(tau, te)
}

// IdleCurrent returns the steady idle current for the chosen idle state.
func (m *Model) IdleCurrent(sleeping bool) float64 {
	if sleeping {
		return m.Islp
	}
	return m.Isdb
}

// SleepEnergyCharge returns the total charge (A·s) consumed by an idle
// period of length ti spent in SLEEP, including both transitions. When the
// idle period is shorter than the transition time the device cannot
// complete the round trip; the cost is the transition charge prorated over
// ti (a modelling convenience — DPM policies never choose this region).
func (m *Model) SleepEnergyCharge(ti float64) float64 {
	tau := m.TauPD + m.TauWU
	if ti <= tau {
		if tau == 0 {
			return 0
		}
		return (m.IPD*m.TauPD + m.IWU*m.TauWU) * ti / tau
	}
	return m.IPD*m.TauPD + m.IWU*m.TauWU + m.Islp*(ti-tau)
}

// StandbyEnergyCharge returns the charge consumed by an idle period of
// length ti spent in STANDBY.
func (m *Model) StandbyEnergyCharge(ti float64) float64 { return m.Isdb * ti }

// Camcorder returns the paper's DVD-camcorder model (Fig 6):
//
//	RUN     14.65 W  (current carried by the trace: 1.2208 A @ 12 V)
//	STANDBY  4.84 W  → 0.4033 A
//	SLEEP    2.40 W  → 0.2000 A
//	SLEEP↔STANDBY: 0.5 s at 0.40 A each way
//	STANDBY→RUN: 1.5 s, RUN→STANDBY: 0.5 s, at RUN current
//
// Its energy break-even time evaluates to 1 s, matching the paper.
func Camcorder() *Model {
	return &Model{
		Name:  "DVD camcorder",
		V:     12,
		Isdb:  4.84 / 12,
		Islp:  2.40 / 12,
		TauPD: 0.5, IPD: 0.40,
		TauWU: 0.5, IWU: 0.40,
		TauSR: 1.5, TauRS: 0.5,
	}
}

// CamcorderRunCurrent is the camcorder's RUN-mode load current:
// 14.65 W at 12 V.
const CamcorderRunCurrent = 14.65 / 12.0

// CamcorderActivePeriod is the fixed DVD-writing active-period length:
// 16 MB buffer at 5.28 MB/s ≈ 3.03 s.
const CamcorderActivePeriod = 16.0 / 5.28

// Synthetic returns the Experiment 2 device: same mode currents as the
// camcorder, but τPD = τWU = 1 s at IPD = IWU = 1.2 A, no explicit
// STANDBY↔RUN transitions, and the survey break-even time Tbe = 10 s.
func Synthetic() *Model {
	return &Model{
		Name:  "synthetic (Exp 2)",
		V:     12,
		Isdb:  4.84 / 12,
		Islp:  2.40 / 12,
		TauPD: 1, IPD: 1.2,
		TauWU: 1, IWU: 1.2,
		TbeOverride: 10,
	}
}

// HDD returns a 2.5-inch hard-disk-drive model in the class the DPM
// literature classically evaluates (IBM Travelstar-era figures, restated
// as currents on the 12 V rail): active ~2.3 W, performance-idle ~0.95 W,
// standby (spun down) ~0.23 W, with a costly multi-second spin-up. The
// drive's "idle" (spinning, not transferring) maps to STANDBY and its
// spun-down state to SLEEP; reads/writes are RUN-mode work carried by the
// trace.
//
// Its energy break-even time evaluates to ≈ 16 s, the right order for
// drives of that class.
func HDD() *Model {
	return &Model{
		Name:  "2.5\" HDD",
		V:     12,
		Isdb:  0.95 / 12,
		Islp:  0.23 / 12,
		TauPD: 0.8, IPD: 1.0 / 12, // park + spin-down
		TauWU: 2.2, IWU: 5.5 / 12, // spin-up surge
		TauSR: 0.0, TauRS: 0.0,
	}
}
