package config

import (
	"strings"
	"testing"
)

func mustKey(t *testing.T, js string) string {
	t.Helper()
	s, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatalf("load %s: %v", js, err)
	}
	key, err := s.CacheKey("test-engine")
	if err != nil {
		t.Fatalf("key %s: %v", js, err)
	}
	return key
}

func TestCacheKeyEquivalentSpecs(t *testing.T) {
	// The same simulation spelled three ways: omitted defaults, explicit
	// defaults, and mixed selector casing must content-address alike.
	a := mustKey(t, `{}`)
	b := mustKey(t, `{"trace":{"kind":"camcorder","seed":1,"duration":1680},
		"policy":{"kind":"fcdpm"},"storage":{"kind":"supercap","capacityAs":6,"initialAs":1},
		"system":{"vf":12,"zeta":37.5,"minOutput":0.1,"maxOutput":1.2,"alpha":0.45,"beta":0.13},
		"device":{"kind":"camcorder"},"dpm":{"mode":"predictive"},
		"predict":{"rho":0.5,"sigma":0.5}}`)
	c := mustKey(t, `{"trace":{"kind":"Camcorder"},"policy":{"kind":"FCDPM"}}`)
	if a != b || a != c {
		t.Fatalf("equivalent specs diverged: %s / %s / %s", a, b, c)
	}
}

func TestCacheKeyIgnoresRunnerBlock(t *testing.T) {
	a := mustKey(t, `{"trace":{"kind":"synthetic"}}`)
	b := mustKey(t, `{"trace":{"kind":"synthetic"},"runner":{"workers":7,"retries":2,"journal":"x.jsonl"}}`)
	if a != b {
		t.Fatal("orchestration tuning leaked into the cache key")
	}
}

func TestCacheKeyIgnoresInertFields(t *testing.T) {
	// flatIF only parameterizes the "flat" policy; under fcdpm it is inert.
	a := mustKey(t, `{"policy":{"kind":"fcdpm"}}`)
	b := mustKey(t, `{"policy":{"kind":"fcdpm","flatIF":0.9}}`)
	if a != b {
		t.Fatal("inert policy parameter leaked into the cache key")
	}
	// An empty fault block's seed cannot matter.
	c := mustKey(t, `{"faults":{"seed":99}}`)
	d := mustKey(t, `{}`)
	if c != d {
		t.Fatal("inert fault seed leaked into the cache key")
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	base := mustKey(t, `{"trace":{"kind":"synthetic","seed":1}}`)
	for name, js := range map[string]string{
		"seed":    `{"trace":{"kind":"synthetic","seed":2}}`,
		"policy":  `{"trace":{"kind":"synthetic","seed":1},"policy":{"kind":"asap"}}`,
		"name":    `{"name":"other","trace":{"kind":"synthetic","seed":1}}`,
		"storage": `{"trace":{"kind":"synthetic","seed":1},"storage":{"capacityAs":12}}`,
		"faults": `{"trace":{"kind":"synthetic","seed":1},
			"faults":{"events":[{"kind":"stack-dropout","start":100,"duration":50}]}}`,
	} {
		if mustKey(t, js) == base {
			t.Errorf("%s change did not move the cache key", name)
		}
	}
	// And the engine tag itself is part of the address.
	s, err := Load(strings.NewReader(`{"trace":{"kind":"synthetic","seed":1}}`))
	if err != nil {
		t.Fatal(err)
	}
	other, err := s.CacheKey("other-engine")
	if err != nil {
		t.Fatal(err)
	}
	if other == base {
		t.Error("engine tag did not move the cache key")
	}
}

func TestCanonicalRejectsInvalid(t *testing.T) {
	s, err := Load(strings.NewReader(`{"predict":{"rho":1.5}}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Canonical(); err == nil {
		t.Fatal("invalid spec canonicalized")
	}
	if _, err := s.CacheKey("e"); err == nil {
		t.Fatal("invalid spec keyed")
	}
}

func TestNormalizedDoesNotMutateReceiver(t *testing.T) {
	s, err := Load(strings.NewReader(`{"trace":{"kind":"Synthetic"},"fallbacks":["ASAP"]}`))
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if s.Trace.Kind != "Synthetic" || s.Fallbacks[0] != "ASAP" {
		t.Fatal("receiver mutated by Normalized")
	}
	if n.Trace.Kind != "synthetic" || n.Fallbacks[0] != "asap" {
		t.Fatalf("copy not normalized: %+v", n)
	}
	if n.Trace.Seed != 2 {
		t.Fatalf("synthetic default seed not resolved: %d", n.Trace.Seed)
	}
}

// TestCacheKeyNewTraceKinds: generator defaults resolve per kind, and the
// DVS level knob is inert everywhere else.
func TestCacheKeyNewTraceKinds(t *testing.T) {
	// Bursty and heavy-tail resolve their generators' default seeds.
	if a, b := mustKey(t, `{"trace":{"kind":"bursty"}}`),
		mustKey(t, `{"trace":{"kind":"bursty","seed":4,"duration":1680}}`); a != b {
		t.Fatal("bursty defaults did not normalize")
	}
	if a, b := mustKey(t, `{"trace":{"kind":"heavytail"}}`),
		mustKey(t, `{"trace":{"kind":"heavytail","seed":3,"duration":1680}}`); a != b {
		t.Fatal("heavytail defaults did not normalize")
	}
	// The DVS trace is deterministic: its seed is inert, its level is not.
	if a, b := mustKey(t, `{"trace":{"kind":"dvs"}}`),
		mustKey(t, `{"trace":{"kind":"dvs","seed":99}}`); a != b {
		t.Fatal("inert DVS seed leaked into the cache key")
	}
	if a, b := mustKey(t, `{"trace":{"kind":"dvs","level":0}}`),
		mustKey(t, `{"trace":{"kind":"dvs","level":3}}`); a == b {
		t.Fatal("DVS level did not move the cache key")
	}
	// Level is inert for every other kind.
	if a, b := mustKey(t, `{"trace":{"kind":"synthetic"}}`),
		mustKey(t, `{"trace":{"kind":"synthetic","level":3}}`); a != b {
		t.Fatal("inert level leaked into a non-DVS cache key")
	}
}

func TestCacheKeyPredictorKinds(t *testing.T) {
	// Tuning fields for unselected predictor kinds are inert: rho only
	// parameterizes expavg, window only movingavg/regression, and the
	// quantizer bounds only tree/markov.
	a := mustKey(t, `{"predict":{"kind":"tree"}}`)
	b := mustKey(t, `{"predict":{"kind":"tree","rho":0.9,"window":7}}`)
	if a != b {
		t.Fatal("inert predictor tuning leaked into the cache key")
	}
	c := mustKey(t, `{"predict":{"kind":"expavg"}}`)
	d := mustKey(t, `{"predict":{"kind":"expavg","window":9,"levels":3,"depth":4,"hi":10}}`)
	if c != d {
		t.Fatal("inert quantizer fields leaked into the expavg cache key")
	}
	// Explicit defaults normalize to the omitted spelling.
	e := mustKey(t, `{"predict":{"kind":"movingavg"}}`)
	f := mustKey(t, `{"predict":{"kind":"movingavg","window":5}}`)
	if e != f {
		t.Fatal("explicit default window diverged from omitted")
	}
	// Live fields must still distinguish simulations.
	g := mustKey(t, `{"predict":{"kind":"tree","levels":16}}`)
	if a == g {
		t.Fatal("tree levels did not reach the cache key")
	}
	if c == a || c == e {
		t.Fatal("predictor kind did not reach the cache key")
	}
}

func TestCacheKeyMultiStack(t *testing.T) {
	// Racksurge resolves its generator defaults (seed 5, 28 min, x2).
	if a, b := mustKey(t, `{"trace":{"kind":"racksurge"}}`),
		mustKey(t, `{"trace":{"kind":"racksurge","seed":5,"duration":1680,"intensity":2}}`); a != b {
		t.Fatal("racksurge defaults did not normalize")
	}
	// Intensity is inert for every other kind.
	if a, b := mustKey(t, `{"trace":{"kind":"synthetic"}}`),
		mustKey(t, `{"trace":{"kind":"synthetic","intensity":3}}`); a != b {
		t.Fatal("inert intensity leaked into a non-racksurge cache key")
	}
	if a, b := mustKey(t, `{"trace":{"kind":"racksurge","intensity":2}}`),
		mustKey(t, `{"trace":{"kind":"racksurge","intensity":3}}`); a == b {
		t.Fatal("racksurge intensity did not move the cache key")
	}
	// Allocator selector aliases collapse; the degradation cycle expands
	// to per-stack entries.
	if a, b := mustKey(t, `{"system":{"stacks":4,"alloc":"waterfill","degrade":[0,0.3]}}`),
		mustKey(t, `{"system":{"stacks":4,"alloc":"Water-Filling","degrade":[0,0.3,0,0.3]}}`); a != b {
		t.Fatal("equivalent rack specs keyed apart")
	}
	if a, b := mustKey(t, `{"system":{"stacks":4}}`),
		mustKey(t, `{"system":{"stacks":4,"alloc":"waterfill"}}`); a == b {
		t.Fatal("allocator did not move the cache key")
	}
	// Rack fields are inert on a single-stack system; an all-healthy
	// degrade list is the empty list.
	if a, b := mustKey(t, `{}`),
		mustKey(t, `{"system":{"stacks":1,"degrade":[0.2]}}`); a != b {
		t.Fatal("inert rack fields leaked into a single-stack cache key")
	}
	if a, b := mustKey(t, `{"system":{"stacks":2}}`),
		mustKey(t, `{"system":{"stacks":2,"degrade":[0,0]}}`); a != b {
		t.Fatal("all-healthy degrade list keyed apart from none")
	}
}
