package config

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"fcdpm/internal/sim"
	"fcdpm/internal/workload"
)

func TestMinimalScenarioUsesPaperDefaults(t *testing.T) {
	s, err := Load(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Sys.VF != 12 || cfg.Sys.Zeta != 37.5 {
		t.Errorf("system defaults wrong: %+v", cfg.Sys)
	}
	if cfg.Sys.MinOutput != 0.1 || cfg.Sys.MaxOutput != 1.2 {
		t.Errorf("range defaults wrong")
	}
	if cfg.Dev.Name != "DVD camcorder" {
		t.Errorf("device default = %q", cfg.Dev.Name)
	}
	if cfg.Store.Capacity() != 6 || cfg.Store.Charge() != 1 {
		t.Errorf("storage defaults: cmax=%v q=%v", cfg.Store.Capacity(), cfg.Store.Charge())
	}
	if cfg.Policy.Name() != "FC-DPM" {
		t.Errorf("policy default = %q", cfg.Policy.Name())
	}
	// The built config must actually run.
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fuel <= 0 {
		t.Fatal("degenerate run")
	}
}

func TestScenarioOverrides(t *testing.T) {
	js := `{
		"name": "custom",
		"system": {"alpha": 0.5, "beta": 0.1, "maxOutput": 1.5},
		"device": {"kind": "synthetic"},
		"storage": {"kind": "liion", "capacityAs": 12, "initialAs": 3},
		"trace": {"kind": "synthetic", "seed": 7, "duration": 300},
		"policy": {"kind": "quantized", "levels": 4},
		"dpm": {"mode": "timeout", "timeout": 8},
		"slewRate": 0.5
	}`
	s, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Sys.MaxOutput != 1.5 {
		t.Errorf("max output = %v", cfg.Sys.MaxOutput)
	}
	if cfg.Sys.Efficiency(0) != 0.5 {
		t.Errorf("alpha not applied: %v", cfg.Sys.Efficiency(0))
	}
	if cfg.Dev.Name != "synthetic (Exp 2)" {
		t.Errorf("device = %q", cfg.Dev.Name)
	}
	if cfg.Store.Capacity() != 12 || cfg.Store.Charge() != 3 {
		t.Errorf("storage: %v/%v", cfg.Store.Charge(), cfg.Store.Capacity())
	}
	if cfg.Policy.Name() != "FC-DPM-q4" {
		t.Errorf("policy = %q", cfg.Policy.Name())
	}
	if cfg.DPM != sim.DPMTimeout || cfg.Timeout != 8 {
		t.Errorf("dpm = %v timeout %v", cfg.DPM, cfg.Timeout)
	}
	if cfg.SlewRate != 0.5 {
		t.Errorf("slew = %v", cfg.SlewRate)
	}
	if _, err := sim.Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestConstantEtaSystem(t *testing.T) {
	s, err := Load(strings.NewReader(`{"system": {"constantEta": 0.37}}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Sys.Efficiency(0.1) != 0.37 || cfg.Sys.Efficiency(1.2) != 0.37 {
		t.Error("constant efficiency not applied")
	}
}

func TestTraceFromFile(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "trace.csv")
	csv := "idle_s,active_s,active_current_a\n10,3,1.2\n12,3,1.1\n"
	if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	js := `{"trace": {"kind": "file", "file": ` + quote(csvPath) + `}}`
	s, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Trace.Len() != 2 {
		t.Fatalf("trace slots = %d", cfg.Trace.Len())
	}

	jsonPath := filepath.Join(dir, "trace.json")
	if err := os.WriteFile(jsonPath,
		[]byte(`{"name":"t","slots":[{"idle":5,"active":2,"activeCurrent":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(strings.NewReader(`{"trace": {"kind": "file", "file": ` + quote(jsonPath) + `}}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg2, err := s2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Trace.Len() != 1 {
		t.Fatalf("json trace slots = %d", cfg2.Trace.Len())
	}
}

func quote(s string) string { return `"` + strings.ReplaceAll(s, `\`, `\\`) + `"` }

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"polcy": {}}`)); err == nil {
		t.Fatal("typo field accepted")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []string{
		`{"device": {"kind": "toaster"}}`,
		`{"storage": {"kind": "flywheel"}}`,
		`{"trace": {"kind": "nope"}}`,
		`{"trace": {"kind": "file"}}`,
		`{"trace": {"kind": "file", "file": "/nonexistent/x.csv"}}`,
		`{"policy": {"kind": "nope"}}`,
		`{"policy": {"kind": "quantized", "levels": 1}}`,
		`{"dpm": {"mode": "nope"}}`,
		`{"storage": {"capacityAs": -1}}`,
	}
	for _, js := range cases {
		s, err := Load(strings.NewReader(js))
		if err != nil {
			t.Fatalf("Load(%s): %v", js, err)
		}
		if _, err := s.Build(); err == nil {
			t.Errorf("Build accepted %s", js)
		}
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scenario.json")
	if err := os.WriteFile(path, []byte(`{"name": "from file"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "from file" {
		t.Fatalf("name = %q", s.Name)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestValidateRejectsBadFields(t *testing.T) {
	cases := []string{
		`{"predict": {"rho": 1.5}}`,
		`{"predict": {"rho": -0.1}}`,
		`{"predict": {"sigma": 2}}`,
		`{"predict": {"idleInitial": -1}}`,
		`{"slewRate": -0.5}`,
		`{"deficitLimit": -1}`,
		`{"dpm": {"timeout": -3}}`,
		`{"faults": {"random": -2}}`,
		`{"faults": {"events": [{"kind": "meteor-strike"}]}}`,
		`{"faults": {"random": 2, "kinds": ["nope"]}}`,
		`{"fallbacks": ["asap", "nope"]}`,
		`{"runner": {"workers": -1}}`,
		`{"runner": {"timeoutSec": -5}}`,
		`{"runner": {"retries": -2}}`,
	}
	for _, js := range cases {
		s, err := Load(strings.NewReader(js))
		if err != nil {
			t.Fatalf("Load(%s): %v", js, err)
		}
		if _, err := s.Build(); err == nil {
			t.Errorf("Build accepted %s", js)
		}
	}
	var ve *ValidationError
	s, _ := Load(strings.NewReader(`{"predict": {"rho": 1.5}}`))
	if _, err := s.Build(); !errors.As(err, &ve) || ve.Field != "predict.rho" {
		t.Fatalf("want *ValidationError on predict.rho, got %v", err)
	}
}

func TestRunnerSpecParses(t *testing.T) {
	js := `{"runner": {"workers": 4, "timeoutSec": 60, "retries": 2, "journal": "/tmp/j.jsonl"}}`
	s, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	want := RunnerSpec{Workers: 4, TimeoutSec: 60, Retries: 2, Journal: "/tmp/j.jsonl"}
	if s.Runner != want {
		t.Fatalf("runner spec = %+v, want %+v", s.Runner, want)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("valid runner spec rejected: %v", err)
	}
}

func TestFaultSpecBuilds(t *testing.T) {
	js := `{
		"trace": {"kind": "synthetic", "duration": 400},
		"fallbacks": ["asap", "conv"],
		"deficitLimit": 0.8,
		"faults": {
			"seed": 9,
			"events": [{"kind": "stack-dropout", "start": 100, "duration": 30}],
			"random": 4,
			"kinds": ["load-surge", "sensor-noise"]
		}
	}`
	s, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Faults == nil || len(cfg.Faults.Events) != 5 {
		t.Fatalf("fault schedule = %v", cfg.Faults)
	}
	if cfg.FaultSeed != 9 || len(cfg.Fallbacks) != 2 {
		t.Fatalf("seed %d, fallbacks %d", cfg.FaultSeed, len(cfg.Fallbacks))
	}
	if cfg.Supervisor.DeficitLimit != 0.8 {
		t.Fatalf("deficit limit %v", cfg.Supervisor.DeficitLimit)
	}
	// The whole config must run end to end under supervision.
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalPolicy == "" {
		t.Fatal("final policy not reported")
	}
	// And byte-identically on a rebuild.
	cfg2, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sim.Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatal("rebuilt scenario produced different results")
	}
}

// TestTraceKindFamilies: every generator family reachable from a scenario
// builds a runnable, non-degenerate trace.
func TestTraceKindFamilies(t *testing.T) {
	cases := []struct {
		name string
		js   string
	}{
		{"bursty", `{"trace":{"kind":"bursty","seed":11,"duration":300}}`},
		{"heavytail", `{"trace":{"kind":"heavytail","seed":12,"duration":300}}`},
		{"dvs-default-level", `{"trace":{"kind":"dvs","duration":120}}`},
		{"dvs-top-level", `{"trace":{"kind":"dvs","duration":120,"level":4}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := Load(strings.NewReader(tc.js))
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := s.Build()
			if err != nil {
				t.Fatal(err)
			}
			if len(cfg.Trace.Slots) == 0 {
				t.Fatal("empty trace")
			}
			res, err := sim.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Fuel <= 0 {
				t.Fatal("degenerate run")
			}
		})
	}
}

// TestTraceDVSLevelValidation: out-of-range operating points fail as
// typed validation errors before any model is built.
func TestTraceDVSLevelValidation(t *testing.T) {
	for _, js := range []string{
		`{"trace":{"kind":"dvs","level":-1}}`,
		`{"trace":{"kind":"dvs","level":5}}`,
	} {
		s, err := Load(strings.NewReader(js))
		if err != nil {
			t.Fatal(err)
		}
		_, err = s.Build()
		var ve *ValidationError
		if !errors.As(err, &ve) || ve.Field != "trace.level" {
			t.Fatalf("%s: err = %v, want trace.level validation error", js, err)
		}
	}
}

// TestTraceDVSDeterministic: the DVS generator has no randomness, so two
// builds at the same level produce identical slot sequences.
func TestTraceDVSDeterministic(t *testing.T) {
	build := func() *workload.Trace {
		s, err := Load(strings.NewReader(`{"trace":{"kind":"dvs","duration":60,"level":1}}`))
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := s.Build()
		if err != nil {
			t.Fatal(err)
		}
		return cfg.Trace
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a.Slots, b.Slots) {
		t.Fatal("DVS trace not deterministic")
	}
}

// TestLoadValidatedBadRhoTypedError pins the PR 2 typed-error sweep end
// to end: a bad rho must surface from predict's own constructor as a
// *ValidationError through LoadValidated — not a panic, and not a
// generic string error.
func TestLoadValidatedBadRhoTypedError(t *testing.T) {
	for _, js := range []string{
		`{"predict": {"rho": 1.5}}`,
		`{"predict": {"rho": -0.1}}`,
	} {
		_, err := LoadValidated(strings.NewReader(js))
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Fatalf("LoadValidated(%s): want *ValidationError, got %v", js, err)
		}
		if ve.Field != "predict.rho" {
			t.Fatalf("LoadValidated(%s): field = %q, want predict.rho", js, ve.Field)
		}
	}
}

// TestPredictorKindsBuild exercises every predictor kind through the
// spec layer and pins the field each bad parameter is reported under.
func TestPredictorKindsBuild(t *testing.T) {
	good := []string{
		`{"predict": {"kind": "expavg", "rho": 0.3}}`,
		`{"predict": {"kind": "lastvalue"}}`,
		`{"predict": {"kind": "movingavg", "window": 3}}`,
		`{"predict": {"kind": "regression", "window": 4}}`,
		`{"predict": {"kind": "tree", "levels": 4, "depth": 2, "hi": 30}}`,
		`{"predict": {"kind": "markov", "levels": 4, "hi": 30}}`,
	}
	for _, js := range good {
		s, err := Load(strings.NewReader(js))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Build(); err != nil {
			t.Errorf("Build(%s): %v", js, err)
		}
	}
	bad := map[string]string{
		`{"predict": {"kind": "movingavg", "window": -2}}`:  "predict.window",
		`{"predict": {"kind": "regression", "window": -1}}`: "predict.window",
		`{"predict": {"kind": "tree", "levels": -3}}`:       "predict.levels",
		`{"predict": {"kind": "tree", "depth": -1}}`:        "predict.depth",
		`{"predict": {"kind": "tree", "lo": 9, "hi": 1}}`:   "predict.hi",
		`{"predict": {"kind": "markov", "lo": 9, "hi": 1}}`: "predict.hi",
		`{"predict": {"kind": "psychic"}}`:                  "predict.kind",
	}
	for js, field := range bad {
		s, err := Load(strings.NewReader(js))
		if err != nil {
			t.Fatal(err)
		}
		var ve *ValidationError
		if err := s.Validate(); !errors.As(err, &ve) || ve.Field != field {
			t.Errorf("Validate(%s): got %v, want *ValidationError on %s", js, err, field)
		}
	}
}

// TestMultiStackSystemBuilds: a K-stack spec builds an aggregate system
// whose range is the sum of the per-stack ceilings, and runs end to end
// on the racksurge workload.
func TestMultiStackSystemBuilds(t *testing.T) {
	js := `{
		"system": {"stacks": 4, "alloc": "waterfill", "degrade": [0, 0.3]},
		"storage": {"capacityAs": 24, "initialAs": 4},
		"trace": {"kind": "racksurge", "duration": 300, "intensity": 2},
		"policy": {"kind": "asap"}
	}`
	s, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Sys.MaxOutput != 4*1.2 {
		t.Fatalf("aggregate max = %v, want 4.8", cfg.Sys.MaxOutput)
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fuel <= 0 {
		t.Fatal("degenerate run")
	}
}

func TestMultiStackValidation(t *testing.T) {
	bad := map[string]string{
		`{"system": {"stacks": -1}}`:                         "system.stacks",
		`{"system": {"stacks": 4, "alloc": "psychic"}}`:      "system.alloc",
		`{"system": {"alloc": "psychic"}}`:                   "system.alloc",
		`{"system": {"stacks": 2, "degrade": [0.2, 1.5]}}`:   "system.degrade",
		`{"system": {"stacks": 2, "degrade": [-0.1]}}`:       "system.degrade",
		`{"trace": {"kind": "racksurge", "intensity": 0.5}}`: "trace.intensity",
	}
	for js, field := range bad {
		s, err := Load(strings.NewReader(js))
		if err != nil {
			t.Fatal(err)
		}
		var ve *ValidationError
		if err := s.Validate(); !errors.As(err, &ve) || ve.Field != field {
			t.Errorf("Validate(%s): got %v, want *ValidationError on %s", js, err, field)
		}
	}
}
