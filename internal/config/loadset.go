package config

import (
	"fmt"
	"io"
)

// LoadValidated parses a scenario and validates it in one step. It is
// the shared admission path: the CLI batch commands and the HTTP server
// both reject a bad spec here, before any simulation state exists.
func LoadValidated(r io.Reader) (*Scenario, error) {
	s, err := Load(r)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// LoadFiles loads and validates every scenario file up front — a
// malformed or invalid file is a caller problem, not a run failure —
// and returns, alongside the scenarios, the first non-zero Runner block
// found, which supplies pool defaults that explicit flags override.
func LoadFiles(paths []string) ([]*Scenario, RunnerSpec, error) {
	scens := make([]*Scenario, len(paths))
	var spec RunnerSpec
	for i, path := range paths {
		s, err := LoadFile(path)
		if err != nil {
			return nil, RunnerSpec{}, err
		}
		if err := s.Validate(); err != nil {
			return nil, RunnerSpec{}, fmt.Errorf("%s: %w", path, err)
		}
		scens[i] = s
		if spec == (RunnerSpec{}) {
			spec = s.Runner
		}
	}
	return scens, spec, nil
}
