package config

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"fcdpm/internal/fault"
	"fcdpm/internal/multistack"
)

// This file gives a validated scenario a canonical form, so the serving
// subsystem can content-address results: two specs that describe the
// same simulation — whatever cosmetic freedom they used (field casing,
// omitted defaults, orchestration-only settings) — normalize to the same
// bytes and therefore the same cache key.

// Normalized returns a canonical copy of the scenario: it validates,
// lowercases every kind/mode selector, writes the paper defaults into
// zero-valued fields exactly as Build would resolve them, zeroes fields
// the selected kind ignores, and drops the runner block (orchestration
// tuning cannot change a simulation's result). The receiver is not
// modified.
//
// The normalization is value-level, not behavioral: a predictor seeded
// explicitly with the device's break-even time still hashes differently
// from one left to default, because resolving that would need the device
// model itself.
func (s *Scenario) Normalized() (*Scenario, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := *s
	n.Runner = RunnerSpec{}

	// System: Build ignores alpha/beta under a constant-efficiency model.
	n.System.VF = defaultF(n.System.VF, 12)
	n.System.Zeta = defaultF(n.System.Zeta, 37.5)
	n.System.MinOutput = defaultF(n.System.MinOutput, 0.1)
	n.System.MaxOutput = defaultF(n.System.MaxOutput, 1.2)
	if n.System.ConstantEta > 0 {
		n.System.Alpha, n.System.Beta = 0, 0
	} else {
		n.System.ConstantEta = 0
		n.System.Alpha = defaultF(n.System.Alpha, 0.45)
		n.System.Beta = defaultF(n.System.Beta, 0.13)
	}
	// Rack fields: a single-stack system has no allocator or degradation
	// mix; a rack resolves its allocator's canonical name and expands the
	// degradation cycle to one entry per stack (so [0, 0.3] on 4 stacks
	// and [0, 0.3, 0, 0.3] hash identically), dropping an all-healthy mix.
	if n.System.Stacks < 2 {
		n.System.Stacks, n.System.Alloc, n.System.Degrade = 0, "", nil
	} else {
		alloc, err := multistack.ParseAllocator(n.System.Alloc)
		if err != nil {
			return nil, &ValidationError{Field: "system.alloc", Detail: err.Error()}
		}
		n.System.Alloc = alloc.Name()
		if len(n.System.Degrade) > 0 {
			mix := make([]float64, n.System.Stacks)
			healthy := true
			for i := range mix {
				mix[i] = n.System.Degrade[i%len(n.System.Degrade)]
				if mix[i] != 0 {
					healthy = false
				}
			}
			if healthy {
				n.System.Degrade = nil
			} else {
				n.System.Degrade = mix
			}
		} else {
			n.System.Degrade = nil
		}
	}

	n.Device.Kind = defaultKind(n.Device.Kind, "camcorder")
	if n.Device.TbeOverride <= 0 {
		n.Device.TbeOverride = 0
	}

	// Storage: the KiBaM parameters only exist for "liion".
	n.Storage.Kind = defaultKind(n.Storage.Kind, "supercap")
	n.Storage.CapacityAs = defaultF(n.Storage.CapacityAs, 6)
	n.Storage.InitialAs = defaultF(n.Storage.InitialAs, 1)
	if n.Storage.Kind == "liion" {
		n.Storage.WellFraction = defaultF(n.Storage.WellFraction, 0.6)
		n.Storage.RateConstant = defaultF(n.Storage.RateConstant, 0.05)
	} else {
		n.Storage.WellFraction, n.Storage.RateConstant = 0, 0
	}

	// Trace: generator kinds resolve their generator's default seed and
	// duration; a file trace has neither.
	n.Trace.Kind = defaultKind(n.Trace.Kind, "camcorder")
	switch n.Trace.Kind {
	case "camcorder":
		n.Trace.File = ""
		if n.Trace.Seed == 0 {
			n.Trace.Seed = 1
		}
		n.Trace.Duration = defaultF(n.Trace.Duration, 28*60)
	case "synthetic":
		n.Trace.File = ""
		if n.Trace.Seed == 0 {
			n.Trace.Seed = 2
		}
		n.Trace.Duration = defaultF(n.Trace.Duration, 28*60)
	case "bursty":
		n.Trace.File = ""
		if n.Trace.Seed == 0 {
			n.Trace.Seed = 4
		}
		n.Trace.Duration = defaultF(n.Trace.Duration, 28*60)
	case "heavytail":
		n.Trace.File = ""
		if n.Trace.Seed == 0 {
			n.Trace.Seed = 3
		}
		n.Trace.Duration = defaultF(n.Trace.Duration, 28*60)
	case "racksurge":
		n.Trace.File = ""
		if n.Trace.Seed == 0 {
			n.Trace.Seed = 5
		}
		n.Trace.Duration = defaultF(n.Trace.Duration, 28*60)
		n.Trace.Intensity = defaultF(n.Trace.Intensity, 2)
	case "dvs":
		// The DVS trace is deterministic: only duration and level matter.
		n.Trace.File = ""
		n.Trace.Seed = 0
		n.Trace.Duration = defaultF(n.Trace.Duration, 28*60)
	case "file":
		n.Trace.Seed = 0
		n.Trace.Duration = 0
	}
	// Only "dvs" reads the operating-point index; only "racksurge" reads
	// the surge multiplier.
	if n.Trace.Kind != "dvs" {
		n.Trace.Level = 0
	}
	if n.Trace.Kind != "racksurge" {
		n.Trace.Intensity = 0
	}

	// Policy: parameters beyond the selected kind are inert.
	n.Policy.Kind = defaultKind(n.Policy.Kind, "fcdpm")
	if n.Policy.Kind == "flat" {
		n.Policy.FlatIF = defaultF(n.Policy.FlatIF, 0.5)
	} else {
		n.Policy.FlatIF = 0
	}
	if n.Policy.Kind == "quantized" {
		if n.Policy.Levels == 0 {
			n.Policy.Levels = 8
		}
	} else {
		n.Policy.Levels = 0
	}

	n.DPM.Mode = defaultKind(n.DPM.Mode, "predictive")
	if n.DPM.Mode != "timeout" {
		n.DPM.Timeout = 0
	}

	// Predictor: the selected kind determines which tuning fields are
	// live; the rest are inert and must not reach the hash.
	n.Predict.Kind = defaultKind(n.Predict.Kind, "expavg")
	n.Predict.Sigma = defaultF(n.Predict.Sigma, 0.5)
	n.Predict.Rho, n.Predict.Window = 0, 0
	n.Predict.Levels, n.Predict.Depth = 0, 0
	n.Predict.Lo, n.Predict.Hi = 0, 0
	switch n.Predict.Kind {
	case "expavg":
		n.Predict.Rho = defaultF(s.Predict.Rho, 0.5)
	case "movingavg", "regression":
		n.Predict.Window = defaultI(s.Predict.Window, 5)
	case "tree":
		n.Predict.Levels = defaultI(s.Predict.Levels, 8)
		n.Predict.Depth = defaultI(s.Predict.Depth, 2)
		n.Predict.Lo = s.Predict.Lo
		n.Predict.Hi = defaultF(s.Predict.Hi, 60)
	case "markov":
		n.Predict.Levels = defaultI(s.Predict.Levels, 8)
		n.Predict.Lo = s.Predict.Lo
		n.Predict.Hi = defaultF(s.Predict.Hi, 60)
	}

	// Faults: canonical class spelling; an empty schedule is the zero
	// spec, so its seed and class filter cannot leak into the hash.
	if len(n.Faults.Events) == 0 && n.Faults.Random == 0 {
		n.Faults = FaultsSpec{}
	} else {
		events := make([]FaultEventSpec, len(n.Faults.Events))
		for i, e := range n.Faults.Events {
			k, err := fault.ParseKind(e.Kind)
			if err != nil {
				return nil, &ValidationError{Field: fmt.Sprintf("faults.events[%d].kind", i), Detail: err.Error()}
			}
			e.Kind = k.String()
			events[i] = e
		}
		n.Faults.Events = events
		kinds := make([]string, len(n.Faults.Kinds))
		for i, name := range n.Faults.Kinds {
			k, err := fault.ParseKind(name)
			if err != nil {
				return nil, &ValidationError{Field: "faults.kinds", Detail: err.Error()}
			}
			kinds[i] = k.String()
		}
		if len(kinds) == 0 {
			kinds = nil
		}
		n.Faults.Kinds = kinds
		if n.Faults.Random == 0 {
			// Only explicit events: the generator seed is inert.
			n.Faults.Seed = 0
			n.Faults.Kinds = nil
		}
	}

	if len(n.Fallbacks) > 0 {
		fallbacks := make([]string, len(n.Fallbacks))
		for i, name := range n.Fallbacks {
			fallbacks[i] = strings.ToLower(name)
		}
		n.Fallbacks = fallbacks
	} else {
		n.Fallbacks = nil
	}
	return &n, nil
}

// Canonical returns the canonical JSON bytes of the normalized scenario.
// Equal simulations yield equal bytes; the serving subsystem hashes them
// (together with the engine build tag) into the result-cache address.
func (s *Scenario) Canonical() ([]byte, error) {
	n, err := s.Normalized()
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(n)
	if err != nil {
		return nil, fmt.Errorf("config: canonical encode: %w", err)
	}
	return b, nil
}

// CacheKey returns the content address of this scenario's result under
// the given engine build tag: the hex SHA-256 of the tag and the
// canonical spec bytes. Identical specs evaluated by different engine
// builds get different addresses.
func (s *Scenario) CacheKey(engine string) (string, error) {
	canon, err := s.Canonical()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(engine))
	h.Write([]byte{'\n'})
	h.Write(canon)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// defaultKind lowercases a selector and substitutes def for empty.
func defaultKind(kind, def string) string {
	k := strings.ToLower(strings.TrimSpace(kind))
	if k == "" {
		return def
	}
	return k
}
