// Package config loads simulation scenarios from JSON so experiments can
// be described declaratively and run with `fcdpm runfile`. Every field has
// a paper-faithful default; a minimal file like
//
//	{"trace": {"kind": "camcorder"}, "policy": {"kind": "fcdpm"}}
//
// reproduces the Experiment 1 FC-DPM run.
package config

import (
	"errors"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"fcdpm/internal/device"
	"fcdpm/internal/dvs"
	"fcdpm/internal/fault"
	"fcdpm/internal/fcopt"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/multistack"
	"fcdpm/internal/policy"
	"fcdpm/internal/predict"
	"fcdpm/internal/sim"
	"fcdpm/internal/storage"
	"fcdpm/internal/workload"
)

// ValidationError pinpoints the scenario field that failed validation.
type ValidationError struct {
	Field  string
	Detail string
}

// Error implements error.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("config: %s: %s", e.Field, e.Detail)
}

// Scenario is the JSON schema of one simulation run.
type Scenario struct {
	Name    string        `json:"name"`
	System  SystemSpec    `json:"system"`
	Device  DeviceSpec    `json:"device"`
	Storage StorageSpec   `json:"storage"`
	Trace   TraceSpec     `json:"trace"`
	Policy  PolicySpec    `json:"policy"`
	DPM     DPMSpec       `json:"dpm"`
	Predict PredictorSpec `json:"predict"`
	// SlewRate limits FC output changes, A/s (0 = ideal).
	SlewRate float64 `json:"slewRate"`
	// RecordProfile enables profile capture.
	RecordProfile bool `json:"recordProfile"`
	// Faults injects a fault schedule into the run (see FaultsSpec).
	Faults FaultsSpec `json:"faults"`
	// Fallbacks names the graceful-degradation chain the supervisor walks
	// when invariants trip (policy kinds, e.g. ["asap", "conv"]). The
	// run's main policy heads the chain and load-shed is always appended.
	Fallbacks []string `json:"fallbacks"`
	// DeficitLimit overrides the supervisor's per-stage unmet-charge
	// budget, A-s (0 = default).
	DeficitLimit float64 `json:"deficitLimit"`
	// Runner tunes the batch-orchestration engine when this scenario runs
	// as part of a batch (`fcdpm batch`); single runs ignore it.
	Runner RunnerSpec `json:"runner"`
}

// RunnerSpec tunes the run-orchestration engine for batch execution. Zero
// values mean engine defaults (GOMAXPROCS workers, no deadline, no
// retries, no journal). CLI flags override a scenario's runner block.
type RunnerSpec struct {
	// Workers bounds concurrently executing scenarios.
	Workers int `json:"workers"`
	// TimeoutSec is the per-run attempt deadline in seconds.
	TimeoutSec float64 `json:"timeoutSec"`
	// Retries re-attempts transiently failed runs with exponential
	// backoff.
	Retries int `json:"retries"`
	// Journal is a JSONL checkpoint path; completed runs recorded there
	// are skipped when the batch is re-invoked (crash-safe resume).
	Journal string `json:"journal"`
}

// FaultsSpec describes the injected faults: explicit events, randomly
// drawn events, or both.
type FaultsSpec struct {
	// Events lists explicit fault events.
	Events []FaultEventSpec `json:"events"`
	// Random, when positive, draws that many additional seed-reproducible
	// events over the trace duration.
	Random int `json:"random"`
	// Seed drives random event generation and the sensor-noise stream.
	Seed uint64 `json:"seed"`
	// Kinds restricts random event classes (names per `fcdpm faults`,
	// e.g. "stack-dropout"); empty means all classes.
	Kinds []string `json:"kinds"`
}

// FaultEventSpec is one explicit fault event.
type FaultEventSpec struct {
	// Kind is a fault-class name, e.g. "stack-dropout" (see `fcdpm
	// faults` for the list).
	Kind string `json:"kind"`
	// Start is the onset in simulated seconds; Duration <= 0 means the
	// fault is permanent.
	Start    float64 `json:"start"`
	Duration float64 `json:"duration"`
	// Magnitude is the class-specific severity; 0 picks the class
	// default.
	Magnitude float64 `json:"magnitude"`
}

// SystemSpec describes the FC system; zero values mean "paper defaults".
// With Stacks >= 2 the electrical fields describe one stack of a K-stack
// rack aggregated under the Alloc power-allocation policy.
type SystemSpec struct {
	VF        float64 `json:"vf"`
	Zeta      float64 `json:"zeta"`
	MinOutput float64 `json:"minOutput"`
	MaxOutput float64 `json:"maxOutput"`
	Alpha     float64 `json:"alpha"`
	Beta      float64 `json:"beta"`
	// ConstantEta, when positive, replaces the linear model with a flat
	// efficiency (the [10, 11] configuration).
	ConstantEta float64 `json:"constantEta"`
	// Stacks, when >= 2, replicates the system into a K-stack rack
	// (multistack.Uniform) aggregated behind the shared storage element.
	Stacks int `json:"stacks"`
	// Alloc selects the rack's power-allocation policy: "equal" (default),
	// "waterfill", or "rotation". Ignored when Stacks <= 1.
	Alloc string `json:"alloc"`
	// Degrade lists per-stack fractional efficiency losses in [0, 1),
	// cycled across the rack ([0, 0.3] on 4 stacks degrades stacks 1 and
	// 3). Empty means all healthy. Ignored when Stacks <= 1.
	Degrade []float64 `json:"degrade"`
}

// DeviceSpec selects a device preset or overrides its parameters.
type DeviceSpec struct {
	// Kind is "camcorder" (default) or "synthetic".
	Kind string `json:"kind"`
	// TbeOverride, when positive, replaces the break-even time.
	TbeOverride float64 `json:"tbeOverride"`
}

// StorageSpec describes the charge buffer.
type StorageSpec struct {
	// Kind is "supercap" (default) or "liion".
	Kind string `json:"kind"`
	// CapacityAs defaults to the paper's 6 A-s; InitialAs to 1 A-s.
	CapacityAs float64 `json:"capacityAs"`
	InitialAs  float64 `json:"initialAs"`
	// KiBaM parameters for "liion" (defaults c=0.6, k=0.05).
	WellFraction float64 `json:"wellFraction"`
	RateConstant float64 `json:"rateConstant"`
}

// TraceSpec selects the workload.
type TraceSpec struct {
	// Kind is "camcorder" (default), "synthetic", "bursty", "heavytail",
	// "racksurge", "dvs", or "file".
	Kind string `json:"kind"`
	// Seed drives the generators (defaults per kind; "dvs" and "file" are
	// deterministic and ignore it).
	Seed uint64 `json:"seed"`
	// Duration overrides the generator's default length, seconds.
	Duration float64 `json:"duration"`
	// File is a CSV or JSON trace path for kind "file" (format inferred
	// from the extension).
	File string `json:"file"`
	// Level selects the DVS operating point for kind "dvs": an index into
	// the xscale-class processor's table (0 = 150 MHz .. 4 = 600 MHz). The
	// reference task (1e8 cycles per 1 s period) is feasible at every
	// level. Other kinds ignore it.
	Level int `json:"level"`
	// Intensity is the surge multiplier for kind "racksurge" (default 2;
	// must be >= 1). Other kinds ignore it.
	Intensity float64 `json:"intensity"`
}

// PolicySpec selects the source policy.
type PolicySpec struct {
	// Kind is "fcdpm" (default), "conv", "asap", "flat", or "quantized".
	Kind string `json:"kind"`
	// FlatIF is the fixed output for "flat" (default 0.5 A).
	FlatIF float64 `json:"flatIF"`
	// Levels is the grid size for "quantized" (default 8).
	Levels int `json:"levels"`
}

// DPMSpec selects the device-side sleep policy.
type DPMSpec struct {
	// Mode is "predictive" (default), "never", "always", "oracle", or
	// "timeout".
	Mode string `json:"mode"`
	// Timeout is the dwell for mode "timeout"; 0 means the break-even
	// time.
	Timeout float64 `json:"timeout"`
}

// PredictorSpec selects and tunes the idle-period predictor and sets the
// prediction factors (paper: ρ = σ = 0.5).
type PredictorSpec struct {
	// Kind selects the idle-period predictor: "expavg" (default),
	// "lastvalue", "movingavg", "regression", "tree", or "markov". The
	// active-period and active-current predictors always use the paper's
	// exponential average with factor Sigma.
	Kind        string  `json:"kind"`
	Rho         float64 `json:"rho"`
	Sigma       float64 `json:"sigma"`
	IdleInitial float64 `json:"idleInitial"`
	// Window sizes the sliding history for "movingavg" and "regression"
	// (default 5).
	Window int `json:"window"`
	// Levels is the quantizer size for "tree" and "markov" (default 8).
	Levels int `json:"levels"`
	// Depth is the context length for "tree" (default 2).
	Depth int `json:"depth"`
	// Lo and Hi bound the quantizer input range for "tree" and "markov"
	// (defaults 0 and 60 s of idle time).
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Load parses a scenario from JSON. Unknown fields are rejected so typos
// fail loudly.
func Load(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return &s, nil
}

// LoadFile parses a scenario from a file.
func LoadFile(path string) (*Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Validate checks every user-tunable numeric field before any model is
// constructed, so malformed scenarios surface as *ValidationError instead
// of reaching panicking constructors deeper in the stack.
func (s *Scenario) Validate() error {
	checkUnit := func(field string, v float64) error {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return &ValidationError{Field: field, Detail: fmt.Sprintf("%v outside [0, 1]", v)}
		}
		return nil
	}
	checkNonNeg := func(field string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return &ValidationError{Field: field, Detail: fmt.Sprintf("%v is not a non-negative finite number", v)}
		}
		return nil
	}
	if err := checkUnit("predict.sigma", s.Predict.Sigma); err != nil {
		return err
	}
	if err := checkNonNeg("predict.idleInitial", s.Predict.IdleInitial); err != nil {
		return err
	}
	// The predictor parameters (rho, window, levels, depth, bounds) are
	// validated by the predict constructors themselves: a dry-run
	// construction surfaces their *predict.ConfigError as the
	// *ValidationError naming the scenario field, so no predictor
	// parameter reachable from a scenario file panics.
	if _, err := buildIdlePredictor(s.Predict, defaultF(s.Predict.IdleInitial, 1)); err != nil {
		return err
	}
	if err := checkNonNeg("slewRate", s.SlewRate); err != nil {
		return err
	}
	if err := checkNonNeg("deficitLimit", s.DeficitLimit); err != nil {
		return err
	}
	if err := checkNonNeg("dpm.timeout", s.DPM.Timeout); err != nil {
		return err
	}
	if err := checkNonNeg("policy.flatIF", s.Policy.FlatIF); err != nil {
		return err
	}
	if err := checkNonNeg("storage.capacityAs", s.Storage.CapacityAs); err != nil {
		return err
	}
	if err := checkNonNeg("storage.initialAs", s.Storage.InitialAs); err != nil {
		return err
	}
	if s.Faults.Random < 0 {
		return &ValidationError{Field: "faults.random", Detail: fmt.Sprintf("negative event count %d", s.Faults.Random)}
	}
	for i, e := range s.Faults.Events {
		if _, err := fault.ParseKind(e.Kind); err != nil {
			return &ValidationError{Field: fmt.Sprintf("faults.events[%d].kind", i), Detail: err.Error()}
		}
	}
	for _, name := range s.Faults.Kinds {
		if _, err := fault.ParseKind(name); err != nil {
			return &ValidationError{Field: "faults.kinds", Detail: err.Error()}
		}
	}
	if s.Runner.Workers < 0 {
		return &ValidationError{Field: "runner.workers", Detail: fmt.Sprintf("negative worker count %d", s.Runner.Workers)}
	}
	if err := checkNonNeg("runner.timeoutSec", s.Runner.TimeoutSec); err != nil {
		return err
	}
	if s.Runner.Retries < 0 {
		return &ValidationError{Field: "runner.retries", Detail: fmt.Sprintf("negative retry count %d", s.Runner.Retries)}
	}
	if s.Trace.Level < 0 {
		return &ValidationError{Field: "trace.level", Detail: fmt.Sprintf("negative DVS level %d", s.Trace.Level)}
	}
	if v := s.Trace.Intensity; v != 0 && (math.IsNaN(v) || math.IsInf(v, 0) || v < 1) {
		return &ValidationError{Field: "trace.intensity", Detail: fmt.Sprintf("surge intensity %v must be >= 1", v)}
	}
	if s.System.Stacks < 0 {
		return &ValidationError{Field: "system.stacks", Detail: fmt.Sprintf("negative stack count %d", s.System.Stacks)}
	}
	if s.System.Stacks >= 2 || s.System.Alloc != "" {
		if _, err := multistack.ParseAllocator(s.System.Alloc); err != nil {
			return &ValidationError{Field: "system.alloc", Detail: err.Error()}
		}
	}
	for i, d := range s.System.Degrade {
		if math.IsNaN(d) || d < 0 || d >= 1 {
			return &ValidationError{Field: "system.degrade",
				Detail: fmt.Sprintf("degradation [%d] = %v outside [0, 1)", i, d)}
		}
	}
	return nil
}

// Build assembles a runnable simulation configuration, applying paper
// defaults for every unset field.
func (s *Scenario) Build() (sim.Config, error) {
	var cfg sim.Config
	if err := s.Validate(); err != nil {
		return cfg, err
	}
	sys, err := s.buildSystem()
	if err != nil {
		return cfg, err
	}
	dev, err := s.buildDevice()
	if err != nil {
		return cfg, err
	}
	store, err := s.buildStorage()
	if err != nil {
		return cfg, err
	}
	trace, err := s.buildTrace()
	if err != nil {
		return cfg, err
	}
	pol, err := s.buildPolicy(sys, dev)
	if err != nil {
		return cfg, err
	}
	mode, err := s.buildDPM()
	if err != nil {
		return cfg, err
	}
	faults, err := s.buildFaults(trace)
	if err != nil {
		return cfg, err
	}
	fallbacks, err := s.buildFallbacks(sys, dev)
	if err != nil {
		return cfg, err
	}
	cfg = sim.Config{
		Sys: sys, Dev: dev, Store: store, Trace: trace, Policy: pol,
		DPM: mode, Timeout: s.DPM.Timeout,
		SlewRate:      s.SlewRate,
		RecordProfile: s.RecordProfile,
		Faults:        faults,
		FaultSeed:     s.Faults.Seed,
		Fallbacks:     fallbacks,
		Supervisor:    sim.SupervisorConfig{DeficitLimit: s.DeficitLimit},
	}
	sigma := defaultF(s.Predict.Sigma, 0.5)
	idleInit := defaultF(s.Predict.IdleInitial, dev.BreakEven())
	cfg.IdlePredictor, err = buildIdlePredictor(s.Predict, idleInit)
	if err != nil {
		return cfg, err
	}
	if len(trace.Slots) > 0 {
		// Sigma passed Validate's unit check, so these cannot fail.
		cfg.ActivePredictor = predict.MustExpAverage(sigma, trace.Slots[0].Active)
		cfg.CurrentPredictor = predict.MustExpAverage(sigma, trace.Slots[0].ActiveCurrent)
	}
	return cfg, nil
}

// buildIdlePredictor constructs the idle-period predictor the spec
// selects. Constructor *predict.ConfigError values surface as
// *ValidationError naming the scenario field.
func buildIdlePredictor(spec PredictorSpec, idleInit float64) (predict.Predictor, error) {
	window := defaultI(spec.Window, 5)
	levels := defaultI(spec.Levels, 8)
	depth := defaultI(spec.Depth, 2)
	hi := defaultF(spec.Hi, 60)
	switch defaultKind(spec.Kind, "expavg") {
	case "expavg":
		p, err := predict.NewExpAverage(defaultF(spec.Rho, 0.5), idleInit)
		return wrapPredictor(p, err)
	case "lastvalue":
		return predict.NewLastValue(idleInit), nil
	case "movingavg":
		p, err := predict.NewMovingAverage(window, idleInit)
		return wrapPredictor(p, err)
	case "regression":
		p, err := predict.NewRegression(window, idleInit)
		return wrapPredictor(p, err)
	case "tree":
		p, err := predict.NewTree(levels, depth, spec.Lo, hi, idleInit)
		return wrapPredictor(p, err)
	case "markov":
		p, err := predict.NewMarkov(levels, spec.Lo, hi, idleInit)
		return wrapPredictor(p, err)
	default:
		return nil, &ValidationError{Field: "predict.kind",
			Detail: fmt.Sprintf("unknown predictor kind %q", spec.Kind)}
	}
}

// wrapPredictor converts a predict constructor result to the Predictor
// interface, mapping its *ConfigError onto the scenario field.
func wrapPredictor[P predict.Predictor](p P, err error) (predict.Predictor, error) {
	if err != nil {
		var ce *predict.ConfigError
		if errors.As(err, &ce) {
			return nil, &ValidationError{Field: "predict." + ce.Param, Detail: ce.Detail}
		}
		return nil, err
	}
	return p, nil
}

func defaultI(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func defaultF(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

func (s *Scenario) buildSystem() (*fuelcell.System, error) {
	vf := defaultF(s.System.VF, 12)
	zeta := defaultF(s.System.Zeta, 37.5)
	lo := defaultF(s.System.MinOutput, 0.1)
	hi := defaultF(s.System.MaxOutput, 1.2)
	var eff fuelcell.EfficiencyModel
	if s.System.ConstantEta > 0 {
		eff = fuelcell.ConstantEfficiency{Value: s.System.ConstantEta}
	} else {
		eff = fuelcell.LinearEfficiency{
			Alpha: defaultF(s.System.Alpha, 0.45),
			Beta:  defaultF(s.System.Beta, 0.13),
		}
	}
	sys, err := fuelcell.NewSystem(vf, zeta, lo, hi, eff)
	if err != nil || s.System.Stacks < 2 {
		return sys, err
	}
	// K-stack rack: the spec's electrical fields describe one stack; the
	// aggregate System (pre-solved under the allocation policy) plugs into
	// the simulation in its place.
	alloc, err := multistack.ParseAllocator(s.System.Alloc)
	if err != nil {
		return nil, &ValidationError{Field: "system.alloc", Detail: err.Error()}
	}
	rack, err := multistack.Uniform(sys, s.System.Stacks, alloc, s.System.Degrade)
	if err != nil {
		return nil, &ValidationError{Field: "system.stacks", Detail: err.Error()}
	}
	return rack.System(), nil
}

func (s *Scenario) buildDevice() (*device.Model, error) {
	var dev *device.Model
	switch strings.ToLower(s.Device.Kind) {
	case "", "camcorder":
		dev = device.Camcorder()
	case "synthetic":
		dev = device.Synthetic()
	default:
		return nil, fmt.Errorf("config: unknown device kind %q", s.Device.Kind)
	}
	if s.Device.TbeOverride > 0 {
		dev.TbeOverride = s.Device.TbeOverride
	}
	return dev, dev.Validate()
}

func (s *Scenario) buildStorage() (storage.Storage, error) {
	cmax := defaultF(s.Storage.CapacityAs, 6)
	q0 := defaultF(s.Storage.InitialAs, 1)
	switch strings.ToLower(s.Storage.Kind) {
	case "", "supercap":
		// The constructor's typed ConfigError (e.g. non-positive capacity)
		// flows through as the validation failure.
		sc, err := storage.NewSuperCap(cmax, q0)
		if err != nil {
			return nil, &ValidationError{Field: "storage.capacity_as", Detail: err.Error()}
		}
		return sc, nil
	case "liion":
		return storage.NewLiIon(cmax,
			defaultF(s.Storage.WellFraction, 0.6),
			defaultF(s.Storage.RateConstant, 0.05), q0)
	default:
		return nil, fmt.Errorf("config: unknown storage kind %q", s.Storage.Kind)
	}
}

func (s *Scenario) buildTrace() (*workload.Trace, error) {
	switch strings.ToLower(s.Trace.Kind) {
	case "", "camcorder":
		cfg := workload.DefaultCamcorderConfig()
		if s.Trace.Seed != 0 {
			cfg.Seed = s.Trace.Seed
		}
		if s.Trace.Duration > 0 {
			cfg.Duration = s.Trace.Duration
		}
		return workload.Camcorder(cfg)
	case "synthetic":
		cfg := workload.DefaultSyntheticConfig()
		if s.Trace.Seed != 0 {
			cfg.Seed = s.Trace.Seed
		}
		if s.Trace.Duration > 0 {
			cfg.Duration = s.Trace.Duration
		}
		return workload.Synthetic(cfg)
	case "bursty":
		cfg := workload.DefaultBurstyConfig()
		if s.Trace.Seed != 0 {
			cfg.Seed = s.Trace.Seed
		}
		if s.Trace.Duration > 0 {
			cfg.Duration = s.Trace.Duration
		}
		return workload.Bursty(cfg)
	case "heavytail":
		cfg := workload.DefaultHeavyTailConfig()
		if s.Trace.Seed != 0 {
			cfg.Seed = s.Trace.Seed
		}
		if s.Trace.Duration > 0 {
			cfg.Duration = s.Trace.Duration
		}
		return workload.HeavyTail(cfg)
	case "racksurge":
		cfg := workload.DefaultRackSurgeConfig()
		if s.Trace.Seed != 0 {
			cfg.Seed = s.Trace.Seed
		}
		if s.Trace.Duration > 0 {
			cfg.Duration = s.Trace.Duration
		}
		if s.Trace.Intensity != 0 {
			cfg.Intensity = s.Trace.Intensity
		}
		return workload.RackSurge(cfg)
	case "dvs":
		proc := dvs.XScale600()
		if s.Trace.Level < 0 || s.Trace.Level >= len(proc.Levels) {
			return nil, &ValidationError{Field: "trace.level",
				Detail: fmt.Sprintf("DVS level %d outside [0, %d]", s.Trace.Level, len(proc.Levels)-1)}
		}
		dur := s.Trace.Duration
		if dur <= 0 {
			dur = 28 * 60
		}
		// One 1e8-cycle job per 1 s period: feasible at every operating
		// point (worst case 0.67 s at 150 MHz), so the level knob only
		// moves the duty cycle and rail current, never the deadline.
		task := dvs.Task{Cycles: 1e8, Period: 1, Jobs: int(math.Ceil(dur))}
		return proc.Trace(task, s.Trace.Level)
	case "file":
		if s.Trace.File == "" {
			return nil, fmt.Errorf("config: trace kind \"file\" needs a file path")
		}
		f, err := os.Open(s.Trace.File)
		if err != nil {
			return nil, fmt.Errorf("config: %w", err)
		}
		defer f.Close()
		if strings.HasSuffix(strings.ToLower(s.Trace.File), ".json") {
			return workload.ReadJSON(f)
		}
		return workload.ReadCSV(f)
	default:
		return nil, fmt.Errorf("config: unknown trace kind %q", s.Trace.Kind)
	}
}

func (s *Scenario) buildPolicy(sys *fuelcell.System, dev *device.Model) (sim.Policy, error) {
	return buildPolicyFrom(s.Policy, sys, dev)
}

func buildPolicyFrom(spec PolicySpec, sys *fuelcell.System, dev *device.Model) (sim.Policy, error) {
	switch strings.ToLower(spec.Kind) {
	case "", "fcdpm":
		return policy.NewFCDPM(sys, dev), nil
	case "conv":
		return policy.NewConv(sys), nil
	case "asap":
		return policy.NewASAP(sys), nil
	case "flat":
		return policy.NewFlat(sys, defaultF(spec.FlatIF, 0.5)), nil
	case "quantized":
		n := spec.Levels
		if n == 0 {
			n = 8
		}
		if n < 2 {
			return nil, &ValidationError{Field: "policy.levels",
				Detail: fmt.Sprintf("quantized policy needs >= 2 levels, got %d", n)}
		}
		q, err := policy.NewFCDPMQuantized(sys, dev, fcopt.UniformLevels(sys, n))
		if err != nil {
			return nil, &ValidationError{Field: "policy.levels", Detail: err.Error()}
		}
		return q, nil
	default:
		return nil, fmt.Errorf("config: unknown policy kind %q", spec.Kind)
	}
}

// buildFallbacks resolves the named degradation chain. Each name is a
// policy kind; parameters beyond the kind use their defaults.
func (s *Scenario) buildFallbacks(sys *fuelcell.System, dev *device.Model) ([]sim.Policy, error) {
	var out []sim.Policy
	for i, name := range s.Fallbacks {
		p, err := buildPolicyFrom(PolicySpec{Kind: name}, sys, dev)
		if err != nil {
			return nil, fmt.Errorf("config: fallbacks[%d]: %w", i, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// buildFaults assembles the fault schedule: explicit events first, then
// any requested random draw over the trace duration.
func (s *Scenario) buildFaults(trace *workload.Trace) (*fault.Schedule, error) {
	spec := s.Faults
	if len(spec.Events) == 0 && spec.Random == 0 {
		return nil, nil
	}
	sched := &fault.Schedule{}
	for i, e := range spec.Events {
		k, err := fault.ParseKind(e.Kind)
		if err != nil {
			return nil, fmt.Errorf("config: faults.events[%d]: %w", i, err)
		}
		sched.Events = append(sched.Events, fault.Event{
			Kind: k, Start: e.Start, Dur: e.Duration, Magnitude: e.Magnitude,
		})
	}
	if spec.Random > 0 {
		var kinds []fault.Kind
		for _, name := range spec.Kinds {
			k, err := fault.ParseKind(name)
			if err != nil {
				return nil, fmt.Errorf("config: faults.kinds: %w", err)
			}
			kinds = append(kinds, k)
		}
		gen, err := fault.Generate(fault.GenConfig{
			Seed:    spec.Seed,
			Horizon: trace.Statistics().Duration,
			Events:  spec.Random,
			Kinds:   kinds,
		})
		if err != nil {
			return nil, fmt.Errorf("config: faults: %w", err)
		}
		sched.Events = append(sched.Events, gen.Events...)
	}
	if err := sched.Validate(); err != nil {
		return nil, fmt.Errorf("config: faults: %w", err)
	}
	return sched, nil
}

func (s *Scenario) buildDPM() (sim.DPMMode, error) {
	switch strings.ToLower(s.DPM.Mode) {
	case "", "predictive":
		return sim.DPMPredictive, nil
	case "never":
		return sim.DPMNeverSleep, nil
	case "always":
		return sim.DPMAlwaysSleep, nil
	case "oracle":
		return sim.DPMOracle, nil
	case "timeout":
		return sim.DPMTimeout, nil
	default:
		return 0, fmt.Errorf("config: unknown DPM mode %q", s.DPM.Mode)
	}
}
