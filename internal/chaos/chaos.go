// Package chaos is the deterministic fault-injection harness for the
// distributed sweep fabric. One seed drives every injection decision in
// a trial — network faults on the worker→dispatcher and
// client→dispatcher paths, filesystem faults under the WAL, the result
// spool, and the cache's disk tier, and clock skew on worker
// heartbeats — through the same FNV-hash schedule idiom the runner uses
// for backoff jitter and the fault package uses for trace generation.
// A surviving seed is a reproducible claim ("the fabric converges to
// byte-identical results under this schedule"); a failing seed is a
// reproducible bug report.
//
// The package has three layers:
//
//   - injectors: Plan.Transport (an http.RoundTripper), Plan.FS (a
//     vfs.FS), and Clock (a runner.Clock and a dispatcher time source);
//   - Trial: one full in-process dispatcher + two-worker sweep under a
//     seeded schedule, including one hard dispatcher restart;
//   - Check: the invariants asserted after every trial — every accepted
//     shard reaches exactly one terminal state and none fails, result
//     rows are byte-identical to the local simulation oracle, a post-heal
//     resubmission re-simulates nothing, and the WAL replays into a
//     dispatcher that agrees with the one that wrote it.
package chaos

import (
	"encoding/binary"
	"hash/fnv"
	"sync/atomic"
	"time"
)

// Plan is one trial's fault schedule: a seed plus an on/off switch. All
// injectors derived from a Plan make their decisions by hashing
// (seed, surface, op, call-index), so two runs of the same seed inject
// the same faults at the same call positions; Stop turns every injector
// into a pass-through so the fabric can heal and converge.
type Plan struct {
	seed   uint64
	active atomic.Bool
	start  time.Time

	// The trial's single network partition window, anchored at wall time
	// start: both transports fail every call inside it.
	partStart, partDur time.Duration
}

// NewPlan builds the schedule for one seed, anchored at the current
// wall clock, with injection enabled.
func NewPlan(seed uint64) *Plan {
	p := &Plan{seed: seed, start: time.Now()}
	p.active.Store(true)
	p.partStart = 300*time.Millisecond +
		time.Duration(p.fraction("partition", "start", 0)*float64(500*time.Millisecond))
	p.partDur = 80*time.Millisecond +
		time.Duration(p.fraction("partition", "dur", 0)*float64(220*time.Millisecond))
	return p
}

// Stop disables all injection: every injector becomes a pass-through.
func (p *Plan) Stop() { p.active.Store(false) }

// Active reports whether the plan is still injecting.
func (p *Plan) Active() bool { return p.active.Load() }

// fraction hashes (seed, surface, op, n) into [0, 1) — the schedule's
// only source of randomness, fully determined by the seed.
func (p *Plan) fraction(surface, op string, n uint64) float64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], p.seed)
	h.Write(b[:])
	h.Write([]byte(surface))
	h.Write([]byte{0})
	h.Write([]byte(op))
	binary.LittleEndian.PutUint64(b[:], n)
	h.Write(b[:])
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// decide is one schedule draw: true with probability prob for this
// (surface, op, call-index), always false once the plan stops.
func (p *Plan) decide(surface, op string, n uint64, prob float64) bool {
	return p.Active() && p.fraction(surface, op, n) < prob
}

// inPartition reports whether the wall clock is inside the trial's
// partition window (and the plan is still active).
func (p *Plan) inPartition() bool {
	if !p.Active() {
		return false
	}
	elapsed := time.Since(p.start)
	return elapsed >= p.partStart && elapsed < p.partStart+p.partDur
}
