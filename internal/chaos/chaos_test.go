package chaos

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fcdpm/internal/vfs"
)

func TestScheduleDeterministic(t *testing.T) {
	a, b := NewPlan(42), NewPlan(42)
	other := NewPlan(43)
	var diverged bool
	for n := uint64(0); n < 1000; n++ {
		fa, fb := a.fraction("s", "op", n), b.fraction("s", "op", n)
		if fa != fb {
			t.Fatalf("same seed diverged at call %d: %v vs %v", n, fa, fb)
		}
		if fa < 0 || fa >= 1 {
			t.Fatalf("fraction %v outside [0,1)", fa)
		}
		if fa != other.fraction("s", "op", n) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
	if a.fraction("client", "cut", 7) == a.fraction("worker-1", "cut", 7) {
		t.Fatal("different surfaces share a schedule")
	}
}

func TestTransportInjectsAndHeals(t *testing.T) {
	var hits int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	plan := NewPlan(7)
	plan.partStart = time.Hour // keep the partition window out of the way
	client := &http.Client{Transport: plan.Transport("t", nil)}

	const calls = 400
	var failures, storms int
	for i := 0; i < calls; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			failures++
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			storms++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("injected 503 lacks Retry-After")
			}
		}
		resp.Body.Close()
	}
	if failures == 0 || storms == 0 {
		t.Fatalf("schedule injected no faults over %d calls (failures=%d storms=%d)", calls, failures, storms)
	}

	// Healed: zero faults, every request reaches the server.
	plan.Stop()
	before := hits
	for i := 0; i < 50; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatalf("fault after Stop: %v", err)
		}
		resp.Body.Close()
	}
	if hits-before != 50 {
		t.Fatalf("stopped transport reached the server %d/50 times", hits-before)
	}
}

func TestTransportPartition(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer srv.Close()
	plan := NewPlan(1)
	plan.partStart, plan.partDur = 0, time.Hour // the whole trial is partitioned
	client := &http.Client{Transport: plan.Transport("t", nil)}
	_, err := client.Get(srv.URL)
	if err == nil || !errors.Is(err, ErrInjectedCut) {
		t.Fatalf("partitioned call returned %v, want ErrInjectedCut", err)
	}
}

func TestFSFaults(t *testing.T) {
	dir := t.TempDir()
	plan := NewPlan(11)
	fs := plan.FS(nil, func(path string) bool { return strings.HasSuffix(path, ".json") })

	// Atomic writes: some draw ENOSPC (typed, classified by IsDiskFull),
	// the rest land.
	var enospc, landed int
	for i := 0; i < 200; i++ {
		err := fs.WriteFileAtomic(filepath.Join(dir, "blob.json"), []byte(`{"v":1}`))
		switch {
		case err == nil:
			landed++
		case vfs.IsDiskFull(err):
			enospc++
		default:
			t.Fatalf("unexpected write error: %v", err)
		}
	}
	if enospc == 0 || landed == 0 {
		t.Fatalf("over 200 writes: enospc=%d landed=%d, want both > 0", enospc, landed)
	}

	// Rot: reads of matching paths eventually come back truncated —
	// detectably invalid, never silently wrong.
	full := []byte(`{"key":"value","n":123}`)
	os.WriteFile(filepath.Join(dir, "rot.json"), full, 0o644)
	var rotted bool
	for i := 0; i < 400 && !rotted; i++ {
		b, err := fs.ReadFile(filepath.Join(dir, "rot.json"))
		if err != nil {
			t.Fatal(err)
		}
		if len(b) < len(full) {
			rotted = true
		}
	}
	if !rotted {
		t.Fatal("rot filter matched but no read ever rotted")
	}
	// Non-matching paths never rot.
	os.WriteFile(filepath.Join(dir, "dispatch.wal"), full, 0o644)
	for i := 0; i < 400; i++ {
		b, _ := fs.ReadFile(filepath.Join(dir, "dispatch.wal"))
		if len(b) != len(full) {
			t.Fatal("rot hit a path outside the filter")
		}
	}

	// Torn appends leave a real prefix on disk and report a typed error.
	af, err := fs.OpenAppend(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer af.Close()
	rec := []byte(`{"op":"x","data":"0123456789abcdef"}` + "\n")
	var torn bool
	for i := 0; i < 400 && !torn; i++ {
		if err := af.Append(rec); err != nil {
			var we *vfs.WriteError
			if !errors.As(err, &we) {
				t.Fatalf("append fault is not a *vfs.WriteError: %v", err)
			}
			if !vfs.IsDiskFull(err) {
				torn = true // the torn-fsync variant
			}
		}
	}
	if !torn {
		t.Fatal("no torn append over 400 draws")
	}
	st, err := os.Stat(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size()%int64(len(rec)) == 0 {
		t.Logf("journal size %d is a clean multiple of the record size; torn prefix may have aligned", st.Size())
	}
}

func TestClockSkew(t *testing.T) {
	c := NewClock(0.5)
	time.Sleep(40 * time.Millisecond)
	skewed := c.Now().Sub(c.base)
	if skewed < 10*time.Millisecond || skewed > 35*time.Millisecond {
		t.Fatalf("rate-0.5 clock advanced %v over ~40ms real, want ~20ms", skewed)
	}
	start := time.Now()
	if err := c.Sleep(context.Background(), 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if real := time.Since(start); real < 15*time.Millisecond {
		t.Fatalf("10ms skewed sleep took %v real, want ~20ms", real)
	}
}

// TestTrialShort runs one full seeded trial — the whole fabric, fault
// schedule, hard restart, convergence, and every invariant check. Seed
// 5 is one of the faster schedules (~1s).
func TestTrialShort(t *testing.T) {
	if testing.Short() {
		t.Skip("full fabric trial")
	}
	res := RunTrial(context.Background(), TrialOptions{Seed: 5, Logf: t.Logf})
	if !res.OK() {
		t.Fatalf("seed 5 failed invariants: %v (dir %s)", res.Violations, res.Dir)
	}
	if res.Executed == 0 {
		t.Fatal("trial executed nothing")
	}
}
