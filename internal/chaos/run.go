package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"
)

// Options configures a chaos run: Trials consecutive seeds starting at
// Seed, each one full RunTrial.
type Options struct {
	// Trials is the number of seeded trials (seeds Seed..Seed+Trials-1).
	Trials int
	// Seed is the first seed.
	Seed uint64
	// Journal, when set, appends one JSON line per trial (the
	// TrialResult) — the artifact a nightly CI job uploads.
	Journal string
	// Verbose forwards fabric log lines to Logf; otherwise only the
	// per-trial verdicts are reported.
	Verbose bool
	// Logf receives progress and verdicts; nil silences them.
	Logf func(format string, args ...any)
	// Out receives the human-readable per-trial verdict lines; nil
	// discards them.
	Out io.Writer
}

// Result summarizes a chaos run.
type Result struct {
	Trials   int
	Survived int
	Failing  []TrialResult
}

// OK reports whether every seed survived.
func (r *Result) OK() bool { return len(r.Failing) == 0 }

// Run executes opts.Trials seeded trials and reports which seeds
// survived. A failing seed's scratch dir (state dir, WAL, spools, rows)
// is kept on disk for inspection and named in the verdict line, so
// `fcdpm chaos -trials 1 -seed S` plus that dir is a complete bug
// report.
func Run(ctx context.Context, opts Options) (Result, error) {
	if opts.Trials <= 0 {
		opts.Trials = 1
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	out := opts.Out
	if out == nil {
		out = io.Discard
	}
	var journal *os.File
	if opts.Journal != "" {
		f, err := os.OpenFile(opts.Journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return Result{}, fmt.Errorf("chaos: journal: %w", err)
		}
		journal = f
		defer journal.Close()
	}

	res := Result{Trials: opts.Trials}
	topts := TrialOptions{}
	if opts.Verbose {
		topts.Logf = opts.Logf
	}
	start := time.Now()
	for i := 0; i < opts.Trials; i++ {
		if ctx.Err() != nil {
			return res, ctx.Err()
		}
		topts.Seed = opts.Seed + uint64(i)
		tr := RunTrial(ctx, topts)
		if journal != nil {
			line, _ := json.Marshal(tr)
			journal.Write(append(line, '\n'))
		}
		if tr.OK() {
			res.Survived++
			fmt.Fprintf(out, "seed %-6d ok    %5.1fs  sweeps=%d executed=%d reexecuted=%d\n",
				tr.Seed, tr.Duration.Seconds(), tr.Sweeps, tr.Executed, tr.Reexecuted)
			continue
		}
		res.Failing = append(res.Failing, tr)
		fmt.Fprintf(out, "seed %-6d FAIL  %5.1fs  dir=%s\n", tr.Seed, tr.Duration.Seconds(), tr.Dir)
		for _, violation := range tr.Violations {
			fmt.Fprintf(out, "  - %s\n", violation)
		}
	}
	fmt.Fprintf(out, "chaos: %d/%d seed(s) survived in %s\n",
		res.Survived, res.Trials, time.Since(start).Round(time.Millisecond))
	return res, nil
}
