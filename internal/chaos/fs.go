package chaos

import (
	"fmt"
	"sync/atomic"

	"fcdpm/internal/vfs"
)

// counter is a shared atomic call index.
type counter struct{ n atomic.Uint64 }

func (c *counter) next() uint64 { return c.n.Add(1) }

// FS is a fault-injecting vfs.FS. Writes can fail with a typed
// disk-full error (atomic publications and journal appends), journal
// appends can tear (half the record lands, then the fsync "fails"),
// and reads of blob files can return rotted bytes. Rot is modeled as
// truncation — detectable corruption — because the fabric's corruption
// contract is validation-based (json.Valid), not checksum-based:
// undetectable in-band corruption is explicitly outside it. The rot
// filter restricts read faults to self-healing blob stores (cache and
// spool entries); the WAL's durability contract does not include
// tolerating interior rot, so it is excluded.
type FS struct {
	plan  *Plan
	inner vfs.FS
	// rot gates read corruption by path; nil disables read faults.
	rot   func(path string) bool
	calls counter
}

// FS wraps inner (nil means the real filesystem) with the plan's
// schedule.
func (p *Plan) FS(inner vfs.FS, rot func(path string) bool) *FS {
	if inner == nil {
		inner = vfs.Default
	}
	return &FS{plan: p, inner: inner, rot: rot}
}

func (f *FS) ReadFile(path string) ([]byte, error) {
	b, err := f.inner.ReadFile(path)
	if err != nil || f.rot == nil || !f.rot(path) || len(b) < 2 {
		return b, err
	}
	if f.plan.decide("fs", "rot", f.calls.next(), 0.06) {
		return b[:len(b)/2], nil
	}
	return b, nil
}

func (f *FS) WriteFileAtomic(path string, data []byte) error {
	if f.plan.decide("fs", "enospc", f.calls.next(), 0.08) {
		return &vfs.WriteError{Op: "write-atomic", Path: path, Err: vfs.ErrDiskFull}
	}
	return f.inner.WriteFileAtomic(path, data)
}

func (f *FS) OpenAppend(path string) (vfs.AppendFile, error) {
	af, err := f.inner.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &appendFile{fs: f, path: path, inner: af}, nil
}

func (f *FS) Remove(path string) error              { return f.inner.Remove(path) }
func (f *FS) MkdirAll(path string) error            { return f.inner.MkdirAll(path) }
func (f *FS) ReadDir(path string) ([]string, error) { return f.inner.ReadDir(path) }

// appendFile injects journal-append faults: a clean ENOSPC (no bytes
// land) or a torn append (a prefix lands, then the write "fails") —
// the two ways a real fsync-per-record journal write dies. Truncate is
// never faulted: it is the repair step, and a repair that cannot ever
// succeed would just wedge the trial rather than prove anything.
type appendFile struct {
	fs    *FS
	path  string
	inner vfs.AppendFile
}

func (a *appendFile) Append(b []byte) error {
	n := a.fs.calls.next()
	p := a.fs.plan
	switch {
	case p.decide("fs", "append-enospc", n, 0.04):
		return &vfs.WriteError{Op: "append", Path: a.path, Err: vfs.ErrDiskFull}
	case p.decide("fs", "append-torn", n, 0.04) && len(b) > 1:
		a.inner.Append(b[:len(b)/2]) // the torn prefix really lands
		return &vfs.WriteError{Op: "append", Path: a.path,
			Err: fmt.Errorf("chaos: injected fsync failure (torn append)")}
	}
	return a.inner.Append(b)
}

func (a *appendFile) Truncate(size int64) error { return a.inner.Truncate(size) }
func (a *appendFile) Close() error              { return a.inner.Close() }
