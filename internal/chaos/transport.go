package chaos

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Injected network failures. They satisfy errors.Is against themselves
// so tests can classify what the transport did.
var (
	// ErrInjectedCut is a connection that never reached the server.
	ErrInjectedCut = errors.New("chaos: injected connection reset")
	// ErrInjectedDrop is a response lost after the server processed the
	// request — the duplication-generating fault.
	ErrInjectedDrop = errors.New("chaos: injected response drop")
)

// Transport is a fault-injecting http.RoundTripper. Per call, by
// schedule draw, it can add latency, cut the connection before the
// request is sent, drop the response after the server processed the
// request (so the caller retries work that already happened — the
// at-least-once stressor), duplicate the request (both copies reach the
// server), or answer with a synthesized 503 + Retry-After storm. During
// the plan's partition window every call fails.
type Transport struct {
	plan    *Plan
	surface string
	inner   http.RoundTripper
	calls   counter
}

// Transport wraps inner (nil means http.DefaultTransport) with the
// plan's schedule; surface names the path ("client", "worker-1") so
// different callers draw independent decisions.
func (p *Plan) Transport(surface string, inner http.RoundTripper) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{plan: p, surface: surface, inner: inner}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	p := t.plan
	if !p.Active() {
		return t.inner.RoundTrip(req)
	}
	n := t.calls.next()
	if p.inPartition() {
		return nil, fmt.Errorf("chaos: partition (%s call %d): %w", t.surface, n, ErrInjectedCut)
	}
	if p.decide(t.surface, "latency", n, 0.15) {
		d := time.Duration(1+p.fraction(t.surface, "latms", n)*19) * time.Millisecond
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if p.decide(t.surface, "cut", n, 0.05) {
		return nil, fmt.Errorf("chaos: cut (%s call %d): %w", t.surface, n, ErrInjectedCut)
	}
	if p.decide(t.surface, "storm", n, 0.03) {
		return storm503(req), nil
	}
	if p.decide(t.surface, "dup", n, 0.04) && req.GetBody != nil {
		// First copy reaches the server; its response is discarded and
		// the request is re-sent. The server sees two deliveries — the
		// fabric's dedup rules must absorb the second.
		if resp, err := t.inner.RoundTrip(req); err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
		}
		body, err := req.GetBody()
		if err != nil {
			return nil, err
		}
		clone := req.Clone(req.Context())
		clone.Body = body
		return t.inner.RoundTrip(clone)
	}
	if p.decide(t.surface, "drop", n, 0.04) {
		// The server processes the request; the response never arrives.
		resp, err := t.inner.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
		}
		return nil, fmt.Errorf("chaos: drop (%s call %d): %w", t.surface, n, ErrInjectedDrop)
	}
	return t.inner.RoundTrip(req)
}

// storm503 synthesizes an overload answer without touching the server:
// 503, Retry-After: 1, typed JSON error body — exactly the shape the
// dispatcher sheds with, so client backoff paths can't tell the
// difference.
func storm503(req *http.Request) *http.Response {
	if req.Body != nil {
		req.Body.Close()
	}
	return &http.Response{
		Status:     "503 Service Unavailable",
		StatusCode: http.StatusServiceUnavailable,
		Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
		Header: http.Header{
			"Retry-After":  []string{"1"},
			"Content-Type": []string{"application/json"},
		},
		Body:    io.NopCloser(strings.NewReader(`{"error":"chaos: injected 503 storm"}`)),
		Request: req,
	}
}
