package chaos

import (
	"context"
	"time"
)

// Clock is a runner.Clock that runs at Rate relative to the wall
// clock: 1.0 is true time, 0.7 is a clock 30% slow. A slow worker
// clock stretches its heartbeat cadence in real terms, which is
// exactly the lease-TTL skew the dispatcher's SkewGrace must tolerate:
// at the TTL/3 heartbeat cadence and the default grace of TTL/3, any
// rate above 0.25 must never lose a lease to skew alone.
type Clock struct {
	base time.Time
	rate float64
}

// NewClock anchors a skewed clock at the current instant.
func NewClock(rate float64) *Clock {
	if rate <= 0 {
		rate = 1
	}
	return &Clock{base: time.Now(), rate: rate}
}

// Now returns the skewed time: base + elapsed·rate.
func (c *Clock) Now() time.Time {
	return c.base.Add(time.Duration(float64(time.Since(c.base)) * c.rate))
}

// Sleep blocks until d has passed on this clock (d/rate of real time)
// or ctx is done.
func (c *Clock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(time.Duration(float64(d) / c.rate))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
