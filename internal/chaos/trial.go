package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fcdpm/internal/config"
	"fcdpm/internal/dispatch"
	"fcdpm/internal/runreport"
	"fcdpm/internal/sim"
	"fcdpm/internal/version"
)

// Trial tuning. The fabric runs hot — short leases, fast polls — so a
// whole trial (fault phase, hard restart, convergence, invariant
// checks) finishes in a few seconds.
const (
	trialShards   = 7 // 6 distinct cells + 1 duplicate spec (dedup coverage)
	trialLeaseTTL = 900 * time.Millisecond
	trialTimeout  = 45 * time.Second
	// skewRate is worker 2's clock rate: 30% slow, inside the bound
	// SkewGrace must absorb at the TTL/3 heartbeat cadence.
	skewRate = 0.7
)

// TrialOptions configures one chaos trial.
type TrialOptions struct {
	// Seed drives the entire fault schedule.
	Seed uint64
	// Dir is the trial's scratch root (state dir, spools, row files);
	// empty means a temp dir that is removed when the trial survives and
	// kept for inspection when it fails.
	Dir string
	// Logf receives fabric and harness log lines; nil silences them.
	Logf func(format string, args ...any)
}

// TrialResult is one trial's verdict: the seed, the invariant
// violations (empty means the seed survived), and enough accounting to
// judge how much chaos the schedule actually caused.
type TrialResult struct {
	Seed       uint64        `json:"seed"`
	Violations []string      `json:"violations,omitempty"`
	Sweeps     int           `json:"sweeps"`
	Executed   int64         `json:"executed"`
	Reexecuted int64         `json:"reexecuted"`
	Duration   time.Duration `json:"durationNs"`
	Dir        string        `json:"dir,omitempty"`
}

// OK reports whether every invariant held.
func (r *TrialResult) OK() bool { return len(r.Violations) == 0 }

// trialSpec builds shard i's scenario for a seed: small synthetic
// traces whose seeds derive from the trial seed, with the last shard a
// byte-identical duplicate of the first (its result must come from the
// cache, never a second simulation... at least once the first lands).
func trialSpec(seed uint64, i int) json.RawMessage {
	if i == trialShards-1 {
		i = 0
	}
	return json.RawMessage(fmt.Sprintf(
		`{"name":"cell-%04d","trace":{"kind":"synthetic","seed":%d,"duration":60},"policy":{"kind":"fcdpm"}}`,
		i, seed*31+uint64(i)+1))
}

// oracleRow computes the exact bytes the fabric must produce for spec —
// the same load/build/run/render pipeline `fcdpm batch` uses locally.
func oracleRow(spec json.RawMessage) ([]byte, error) {
	scen, err := config.LoadValidated(bytes.NewReader(spec))
	if err != nil {
		return nil, err
	}
	key, err := scen.CacheKey(version.Engine())
	if err != nil {
		return nil, err
	}
	cfg, err := scen.Build()
	if err != nil {
		return nil, err
	}
	res, err := sim.RunContext(context.Background(), cfg)
	if err != nil {
		return nil, err
	}
	return runreport.Render(scen.Name, key, version.Engine(), res)
}

// dispatcherProc is one in-process dispatcher instance: the Dispatcher,
// its HTTP server, and its lease-reclamation ticker.
type dispatcherProc struct {
	d           *dispatch.Dispatcher
	hs          *http.Server
	stopReclaim context.CancelFunc
	addr        string
}

// startDispatcher builds a dispatcher on opts and serves it at addr
// ("127.0.0.1:0" picks a port; a concrete addr retries the bind briefly
// so a restart can reclaim the port the previous instance just freed).
func startDispatcher(addr string, opts dispatch.Options) (*dispatcherProc, error) {
	d, err := dispatch.New(opts)
	if err != nil {
		return nil, err
	}
	var ln net.Listener
	deadline := time.Now().Add(3 * time.Second)
	for {
		ln, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			d.Close()
			return nil, fmt.Errorf("chaos: listen %s: %w", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	p := &dispatcherProc{d: d, addr: ln.Addr().String()}
	p.hs = &http.Server{Handler: d.Handler()}
	go p.hs.Serve(ln)
	rctx, cancel := context.WithCancel(context.Background())
	p.stopReclaim = cancel
	go func() {
		t := time.NewTicker(trialLeaseTTL / 3)
		defer t.Stop()
		for {
			select {
			case <-rctx.Done():
				return
			case <-t.C:
				d.ReclaimExpired()
			}
		}
	}()
	return p, nil
}

// hardStop kills the dispatcher the way a crash would: the HTTP server
// closes without draining and the WAL handle is simply abandoned.
func (p *dispatcherProc) hardStop() {
	p.stopReclaim()
	p.hs.Close()
}

// RunTrial runs one full chaos trial: an in-process dispatcher and two
// workers (one with a slow clock), a client sweep, the seed's fault
// schedule on every network and filesystem surface, one hard
// dispatcher restart mid-flight, then heal, convergence, and the
// invariant checks.
func RunTrial(ctx context.Context, opts TrialOptions) TrialResult {
	start := time.Now()
	res := TrialResult{Seed: opts.Seed}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	dir := opts.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", fmt.Sprintf("fcdpm-chaos-%d-", opts.Seed))
		if err != nil {
			res.Violations = append(res.Violations, "setup: "+err.Error())
			return res
		}
	}
	res.Dir = dir
	ctx, cancel := context.WithTimeout(ctx, trialTimeout)
	defer cancel()

	// The oracle: what every result row must be, byte for byte.
	specs := make([]json.RawMessage, trialShards)
	var oracle bytes.Buffer
	for i := range specs {
		specs[i] = trialSpec(opts.Seed, i)
		row, err := oracleRow(specs[i])
		if err != nil {
			res.Violations = append(res.Violations, "oracle: "+err.Error())
			return res
		}
		oracle.Write(row)
		oracle.WriteByte('\n')
	}

	plan := NewPlan(opts.Seed)
	fabricFS := plan.FS(nil, func(path string) bool {
		// Rot only self-healing blob stores: cache blobs and spool
		// entries validate on read and re-simulate or re-dispatch. The
		// WAL (dispatch.wal) is excluded — interior rot is outside its
		// torn-tail durability contract.
		return strings.HasSuffix(path, ".json")
	})

	dopts := dispatch.Options{
		Addr:     "127.0.0.1:0",
		StateDir: filepath.Join(dir, "state"),
		LeaseTTL: trialLeaseTTL,
		FS:       fabricFS,
		Logf:     logf,
	}
	disp, err := startDispatcher(dopts.Addr, dopts)
	if err != nil {
		res.Violations = append(res.Violations, "start dispatcher: "+err.Error())
		return res
	}
	dopts.Addr = disp.addr
	base := "http://" + disp.addr

	// Two workers: chaos transports on both, a 30%-slow clock on the
	// second (the skew SkewGrace exists for), the chaos FS under both
	// spools.
	workers := make([]*dispatch.Worker, 2)
	wstop := make([]context.CancelFunc, 2)
	wdone := make([]chan error, 2)
	for i := range workers {
		wopts := dispatch.WorkerOptions{
			Dispatcher:      base,
			Name:            fmt.Sprintf("chaos-w%d", i+1),
			Workers:         2,
			PollMin:         5 * time.Millisecond,
			PollMax:         150 * time.Millisecond,
			SpoolDir:        filepath.Join(dir, fmt.Sprintf("spool-%d", i+1)),
			SpoolShedPeriod: 200 * time.Millisecond,
			Logf:            logf,
			Client: &http.Client{
				Transport: plan.Transport(fmt.Sprintf("worker-%d", i+1), nil),
				Timeout:   10 * time.Second,
			},
			FS: fabricFS,
		}
		if i == 1 {
			wopts.Clock = NewClock(skewRate)
		}
		w, err := dispatch.NewWorker(wopts)
		if err != nil {
			res.Violations = append(res.Violations, "start worker: "+err.Error())
			return res
		}
		workers[i] = w
		wctx, cancel := context.WithCancel(context.Background())
		wstop[i] = cancel
		done := make(chan error, 1)
		wdone[i] = done
		go func() { done <- w.Run(wctx) }()
	}
	stopWorkers := func() {
		for i := range workers {
			wstop[i]()
		}
		for i := range workers {
			if err := <-wdone[i]; err != nil {
				res.Violations = append(res.Violations,
					fmt.Sprintf("worker %d exited with error: %v", i+1, err))
			}
		}
	}

	// The hard restart, at a seeded instant mid-sweep: the server dies
	// without draining, a new dispatcher replays the same state dir and
	// takes over the same port.
	restartAt := 350*time.Millisecond + time.Duration(plan.fraction("trial", "restart", 0)*float64(400*time.Millisecond))
	restartDone := make(chan error, 1)
	go func() {
		select {
		case <-ctx.Done():
			restartDone <- nil
			return
		case <-time.After(restartAt):
		}
		disp.hardStop()
		time.Sleep(20 * time.Millisecond) // let severed handlers unwind
		nd, err := startDispatcher(dopts.Addr, dopts)
		if err != nil {
			restartDone <- fmt.Errorf("restart: %w", err)
			return
		}
		disp = nd
		logf("chaos: dispatcher hard-restarted on %s", dopts.Addr)
		restartDone <- nil
	}()

	// End the fault phase a seeded while after the restart, then let the
	// fabric heal.
	faultsFor := 1300*time.Millisecond + time.Duration(plan.fraction("trial", "faults", 0)*float64(700*time.Millisecond))
	go func() {
		select {
		case <-ctx.Done():
		case <-time.After(faultsFor):
		}
		plan.Stop()
		logf("chaos: fault phase over after %s", faultsFor.Round(time.Millisecond))
	}()

	// Submit through the chaos transport and wait for resolution. A
	// dropped submit response or a duplicated submit creates orphan
	// sweeps server-side; they run the same shards (idempotent by
	// content address) and the convergence check covers them via global
	// shard-state accounting.
	rows := filepath.Join(dir, "rows.ndjson")
	req := dispatch.SweepRequest{Name: "chaos", Scenarios: specs}
	copts := dispatch.ClientOptions{
		Base: base, Rows: rows, Logf: logf,
		Client: &http.Client{Transport: plan.Transport("client", nil)},
	}
	var submitErr error
	for attempt := 1; attempt <= 5; attempt++ {
		submitErr = dispatch.SubmitSweep(ctx, copts, req)
		if submitErr == nil || ctx.Err() != nil {
			break
		}
		if strings.Contains(submitErr.Error(), "shards failed") {
			break // a genuine invariant violation, not client weather
		}
		logf("chaos: sweep attempt %d: %v", attempt, submitErr)
	}
	if rerr := <-restartDone; rerr != nil {
		res.Violations = append(res.Violations, rerr.Error())
	}
	if submitErr != nil {
		res.Violations = append(res.Violations, "sweep: "+submitErr.Error())
	}
	plan.Stop() // in case the sweep resolved before the fault window closed

	// Convergence and invariant checks.
	res.Violations = append(res.Violations, Check(ctx, checkEnv{
		base:    base,
		dir:     dir,
		rows:    rows,
		oracle:  oracle.Bytes(),
		specs:   specs,
		workers: workers,
		logf:    logf,
	})...)

	// Post-trial accounting, then the WAL-replay check against a fresh
	// dispatcher on the same (now quiescent) state dir.
	stats, _ := fetchStats(ctx, base)
	if stats != nil {
		res.Sweeps = stats.Sweeps
	}
	for _, w := range workers {
		res.Executed += w.Stats().Executed
	}
	if n := int64(trialShards); res.Executed > n {
		res.Reexecuted = res.Executed - n
	}
	stopWorkers()
	disp.hardStop()
	disp.d.Close()
	res.Violations = append(res.Violations, CheckReplay(dopts.StateDir)...)

	res.Duration = time.Since(start)
	if res.OK() && opts.Dir == "" {
		os.RemoveAll(dir)
		res.Dir = ""
	}
	return res
}
