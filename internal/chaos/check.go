package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"fcdpm/internal/dispatch"
)

// checkEnv is everything the post-trial invariant checks need.
type checkEnv struct {
	base    string
	dir     string
	rows    string
	oracle  []byte
	specs   []json.RawMessage
	workers []*dispatch.Worker
	logf    func(format string, args ...any)
}

// statsDoc mirrors the dispatcher's /v1/stats payload (the fields the
// checks read).
type statsDoc struct {
	Sweeps int            `json:"sweeps"`
	Queue  int            `json:"queue"`
	Shards map[string]int `json:"shards"`
	Cache  struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	} `json:"cache"`
}

// cleanClient is the checks' HTTP client: no chaos, short timeout.
var cleanClient = &http.Client{Timeout: 5 * time.Second}

func fetchStats(ctx context.Context, base string) (*statsDoc, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := cleanClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return nil, fmt.Errorf("stats: HTTP %d", resp.StatusCode)
	}
	var doc statsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// nonTerminal counts shards still in flight.
func (s *statsDoc) nonTerminal() int {
	return s.Shards["queued"] + s.Shards["leased"] + s.Shards["executing"]
}

// Check runs the post-trial invariants and returns one violation string
// per broken invariant (empty slice: the seed survived).
//
//  1. Convergence: every shard of every sweep — including orphan sweeps
//     created by dropped or duplicated submissions — reaches exactly one
//     terminal state, and none of them is "failed".
//  2. Oracle: the client's result rows are byte-identical to local
//     simulation of the same specs.
//  3. No re-simulation: resubmitting the identical sweep post-heal
//     completes entirely from the cache — the workers execute nothing.
//  4. (Separately, CheckReplay:) the WAL replays into a dispatcher that
//     agrees with the one that wrote it.
func Check(ctx context.Context, env checkEnv) []string {
	var v []string

	stats, err := waitConverged(ctx, env.base)
	if err != nil {
		v = append(v, "convergence: "+err.Error())
		return v // everything downstream assumes a quiescent fabric
	}
	if n := stats.Shards["failed"]; n > 0 {
		v = append(v, fmt.Sprintf("terminal state: %d shard(s) failed; chaos faults must only delay, never fail work", n))
	}
	if stats.Shards["completed"] < trialShards {
		v = append(v, fmt.Sprintf("terminal state: %d shard(s) completed, want >= %d",
			stats.Shards["completed"], trialShards))
	}

	got, err := os.ReadFile(env.rows)
	if err != nil {
		v = append(v, "rows: "+err.Error())
	} else if !bytes.Equal(got, env.oracle) {
		v = append(v, fmt.Sprintf("oracle: result rows differ from local simulation (%d vs %d bytes)",
			len(got), len(env.oracle)))
	}

	// Post-heal resubmission of the identical sweep: idempotent by
	// content address, so it must resolve from the cache without a single
	// new worker execution.
	before := workerExecs(env.workers)
	rows2 := filepath.Join(env.dir, "rows-resubmit.ndjson")
	err = dispatch.SubmitSweep(ctx, dispatch.ClientOptions{
		Base: env.base, Name: "chaos-resubmit", Rows: rows2, Logf: env.logf,
		Client: cleanClient,
	}, dispatch.SweepRequest{Name: "chaos-resubmit", Scenarios: env.specs})
	if err != nil {
		v = append(v, "resubmit: "+err.Error())
	} else {
		if delta := workerExecs(env.workers) - before; delta != 0 {
			v = append(v, fmt.Sprintf("cache: post-heal resubmission re-simulated %d shard(s); cache hits must never re-execute", delta))
		}
		if got2, err := os.ReadFile(rows2); err != nil {
			v = append(v, "resubmit rows: "+err.Error())
		} else if !bytes.Equal(got2, env.oracle) {
			v = append(v, "oracle: resubmitted rows differ from local simulation")
		}
	}
	return v
}

func workerExecs(ws []*dispatch.Worker) int64 {
	var n int64
	for _, w := range ws {
		n += w.Stats().Executed
	}
	return n
}

// waitConverged polls /v1/stats until the fabric is quiescent — no
// queued, leased, or executing shards across all sweeps, stable for
// three consecutive polls — tolerating unreachable windows (the
// dispatcher may be mid-restart when the wait begins).
func waitConverged(ctx context.Context, base string) (*statsDoc, error) {
	var last *statsDoc
	stable := 0
	for {
		stats, err := fetchStats(ctx, base)
		if err == nil && stats.Sweeps > 0 && stats.Queue == 0 && stats.nonTerminal() == 0 {
			stable++
			if stable >= 3 {
				return stats, nil
			}
		} else {
			stable = 0
		}
		if err == nil {
			last = stats
		}
		select {
		case <-ctx.Done():
			if last != nil {
				return nil, fmt.Errorf("fabric did not quiesce: queue=%d shards=%v: %w",
					last.Queue, last.Shards, ctx.Err())
			}
			return nil, fmt.Errorf("fabric did not quiesce: %w", ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// CheckReplay opens a fresh dispatcher on the (now quiescent) state dir
// with the real filesystem and asserts the replayed state is coherent:
// the WAL parses, no shard resurrects into a leased or executing state,
// and no shard has flipped to failed. Completed shards whose cache body
// rotted away may legally requeue (re-simulation is the designed
// response to lost blobs) — a hole would show up as "failed" or as an
// unreplayable WAL, both of which this catches.
func CheckReplay(stateDir string) []string {
	d, err := dispatch.New(dispatch.Options{
		StateDir: stateDir,
		LeaseTTL: trialLeaseTTL,
	})
	if err != nil {
		return []string{"wal replay: " + err.Error()}
	}
	defer d.Close()
	rec := httptest.NewRecorder()
	d.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/stats", nil))
	if rec.Code != 200 {
		return []string{fmt.Sprintf("wal replay: stats HTTP %d", rec.Code)}
	}
	var stats statsDoc
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		return []string{"wal replay: " + err.Error()}
	}
	var v []string
	if n := stats.Shards["leased"] + stats.Shards["executing"]; n > 0 {
		v = append(v, fmt.Sprintf("wal replay: %d shard(s) resurrected in a leased/executing state", n))
	}
	if n := stats.Shards["failed"]; n > 0 {
		v = append(v, fmt.Sprintf("wal replay: %d shard(s) flipped to failed", n))
	}
	return v
}
