package sim

import (
	"fmt"
	"math"

	"fcdpm/internal/fuelcell"
)

// SupervisionMode selects whether the run-time watchdog is armed.
type SupervisionMode int

// Supervision modes.
const (
	// SuperviseAuto arms the watchdog exactly when the run injects
	// faults or configures a fallback chain; plain runs keep the classic
	// fail-fast error behavior.
	SuperviseAuto SupervisionMode = iota
	// SuperviseOn always arms the watchdog.
	SuperviseOn
	// SuperviseOff never arms it, even under fault injection (for
	// experiments that want raw failure behavior).
	SuperviseOff
)

// SupervisorConfig tunes the graceful-degradation watchdog.
type SupervisorConfig struct {
	Mode SupervisionMode
	// DeficitLimit is the unmet-load charge (A-s) the supervisor
	// tolerates per degradation stage before falling back to the next
	// policy in the chain. Default 0.5 A-s.
	DeficitLimit float64
	// Tolerance is the relative slack of the charge-balance invariant.
	// Default 1e-6.
	Tolerance float64
}

// DefaultDeficitLimit is the per-stage unmet-charge budget before the
// supervisor degrades to the next policy.
const DefaultDeficitLimit = 0.5

// EventKind classifies entries of the run event log.
type EventKind string

// Run event kinds.
const (
	// EventFaultStart and EventFaultEnd bracket an injected fault.
	EventFaultStart EventKind = "fault-start"
	EventFaultEnd   EventKind = "fault-end"
	// EventInvariant records a violated runtime invariant.
	EventInvariant EventKind = "invariant"
	// EventFallback records the supervisor switching to the next policy
	// in the degradation chain.
	EventFallback EventKind = "fallback"
)

// RunEvent is one entry of the run's audit log: injected faults, violated
// invariants, and policy fallbacks, in time order.
type RunEvent struct {
	T      float64
	Kind   EventKind
	Detail string
}

// String formats the event for logs.
func (e RunEvent) String() string {
	return fmt.Sprintf("t=%.3fs %s: %s", e.T, e.Kind, e.Detail)
}

// InvariantError is returned (in unsupervised runs) or logged (in
// supervised runs) when a runtime invariant is violated.
type InvariantError struct {
	T      float64 // simulated time of detection, seconds
	Slot   int     // slot index
	Check  string  // which invariant: "charge-balance", "finite", "piece", "fc-range"
	Detail string
}

// Error implements error.
func (e *InvariantError) Error() string {
	return fmt.Sprintf("sim: invariant %s violated at t=%.3fs (slot %d): %s",
		e.Check, e.T, e.Slot, e.Detail)
}

// CanceledError wraps a context cancellation with the simulated time
// reached, so interrupted sweeps can report partial progress.
type CanceledError struct {
	T    float64
	Slot int
	Err  error
}

// Error implements error.
func (e *CanceledError) Error() string {
	return fmt.Sprintf("sim: run canceled at t=%.3fs (slot %d): %v", e.T, e.Slot, e.Err)
}

// Unwrap exposes the context error for errors.Is(ctx.Err()).
func (e *CanceledError) Unwrap() error { return e.Err }

// loadShed is the implicit last resort of every degradation chain: follow
// the load within the FC range and keep the system alive on whatever can
// be delivered. While it is active the supervisor accounts unmet load as
// intentionally shed charge (Result.Shed) rather than deficit, and no
// further degradation is possible.
type loadShed struct{ sys *fuelcell.System }

// Name implements Policy.
func (l loadShed) Name() string { return "load-shed" }

// Reset implements Policy.
func (l loadShed) Reset(cmax, chargeTarget float64) {}

// PlanIdle implements Policy.
func (l loadShed) PlanIdle(SlotInfo) {}

// PlanActive implements Policy.
func (l loadShed) PlanActive(SlotInfo) {}

// SegmentPlan implements Policy.
func (l loadShed) SegmentPlan(seg Segment, charge float64) []Piece {
	return l.SegmentPlanInto(seg, charge, nil)
}

// SegmentPlanInto implements PiecePlanner.
func (l loadShed) SegmentPlanInto(seg Segment, charge float64, buf []Piece) []Piece {
	return append(buf, Piece{IF: l.sys.Clamp(seg.Load), Dur: seg.Dur})
}

// supervised reports whether the watchdog is armed for this run.
func (s *state) supervised() bool {
	switch s.cfg.Supervisor.Mode {
	case SuperviseOn:
		return true
	case SuperviseOff:
		return false
	default:
		return s.cfg.Faults != nil || len(s.cfg.Fallbacks) > 0
	}
}

// deficitLimit returns the per-stage unmet-charge budget.
func (s *state) deficitLimit() float64 {
	if s.cfg.Supervisor.DeficitLimit > 0 {
		return s.cfg.Supervisor.DeficitLimit
	}
	return DefaultDeficitLimit
}

// chargeTol returns the absolute slack of the charge-balance invariant.
func (s *state) chargeTol() float64 {
	rel := s.cfg.Supervisor.Tolerance
	if rel <= 0 {
		rel = 1e-6
	}
	return rel * math.Max(1, s.store.Capacity())
}

// shedding reports whether the run has degraded all the way to load-shed.
func (s *state) shedding() bool { return s.chainIdx == len(s.chain)-1 }

// logEvent appends one entry to the run's audit log.
func (s *state) logEvent(kind EventKind, detail string) {
	s.res.Events = append(s.res.Events, RunEvent{T: s.t, Kind: kind, Detail: detail})
}

// drainFaults moves injector transitions up to the current time into the
// event log.
func (s *state) drainFaults() {
	if s.inj == nil {
		return
	}
	for _, tr := range s.inj.Drain(s.t) {
		kind := EventFaultStart
		if !tr.On {
			kind = EventFaultEnd
		}
		detail := tr.Event.Kind.String()
		if tr.Event.Magnitude != 0 {
			detail = fmt.Sprintf("%s (magnitude %.4g)", detail, tr.Event.Magnitude)
		}
		s.res.Events = append(s.res.Events, RunEvent{T: tr.T, Kind: kind, Detail: detail})
	}
}

// degrade advances the fallback chain after a supervisor trip. It reports
// whether a further stage was available; at the end of the chain the trip
// is logged but nothing changes.
func (s *state) degrade(reason string) bool {
	if s.shedding() {
		s.logEvent(EventInvariant, fmt.Sprintf("%s (already at %s; no further fallback)", reason, s.pol.Name()))
		return false
	}
	from := s.pol.Name()
	s.setPolicy(s.chainIdx + 1)
	cap := s.store.Capacity()
	s.pol.Reset(cap, math.Min(s.chargeTarget, cap))
	s.tripDeficit = 0
	s.res.Fallbacks++
	s.logEvent(EventFallback, fmt.Sprintf("%s -> %s: %s", from, s.pol.Name(), reason))
	return true
}

// checkPieces validates a policy's segment plan. The basic sanity checks
// (finite, non-negative, exact tiling) always apply; the FC-range check is
// a supervised-only invariant because the classic simulator accepted
// out-of-range requests and clamping behavior is policy-specific.
func (s *state) checkPieces(seg Segment, pieces []Piece) *InvariantError {
	var total float64
	for _, p := range pieces {
		if p.Dur < 0 || math.IsNaN(p.Dur) || math.IsInf(p.Dur, 0) {
			return &InvariantError{T: s.t, Slot: s.res.Slots, Check: "piece",
				Detail: fmt.Sprintf("policy %s returned piece duration %v", s.pol.Name(), p.Dur)}
		}
		if p.IF < 0 || math.IsNaN(p.IF) || math.IsInf(p.IF, 0) {
			return &InvariantError{T: s.t, Slot: s.res.Slots, Check: "piece",
				Detail: fmt.Sprintf("policy %s returned piece current %v", s.pol.Name(), p.IF)}
		}
		if s.supervised() && p.IF > s.cfg.Sys.MaxOutput*(1+1e-9) {
			return &InvariantError{T: s.t, Slot: s.res.Slots, Check: "fc-range",
				Detail: fmt.Sprintf("policy %s requested %v A above the load-following ceiling %v A",
					s.pol.Name(), p.IF, s.cfg.Sys.MaxOutput)}
		}
		total += p.Dur
	}
	if math.Abs(total-seg.Dur) > 1e-6*math.Max(1, seg.Dur) {
		return &InvariantError{T: s.t, Slot: s.res.Slots, Check: "piece",
			Detail: fmt.Sprintf("policy %s pieces cover %v s of a %v s segment", s.pol.Name(), total, seg.Dur)}
	}
	return nil
}

// postChecks verifies the always-on run invariants after a segment: the
// storage level stays within [0, Cmax] (within tolerance) and every
// accumulated quantity is finite.
func (s *state) postChecks() *InvariantError {
	q, cap := s.store.Charge(), s.store.Capacity()
	tol := s.chargeTol()
	if math.IsNaN(q) || math.IsInf(q, 0) || q < -tol || q > cap+tol {
		return &InvariantError{T: s.t, Slot: s.res.Slots, Check: "charge-balance",
			Detail: fmt.Sprintf("storage charge %v outside [0, %v]", q, cap)}
	}
	if math.IsNaN(s.res.Fuel) || math.IsInf(s.res.Fuel, 0) {
		return &InvariantError{T: s.t, Slot: s.res.Slots, Check: "finite",
			Detail: fmt.Sprintf("fuel total %v", s.res.Fuel)}
	}
	if math.IsNaN(s.res.Deficit) || math.IsInf(s.res.Deficit, 0) ||
		math.IsNaN(s.res.Bled) || math.IsInf(s.res.Bled, 0) {
		return &InvariantError{T: s.t, Slot: s.res.Slots, Check: "finite",
			Detail: fmt.Sprintf("deficit %v / bled %v", s.res.Deficit, s.res.Bled)}
	}
	return nil
}
