package sim

import (
	"math"
	"testing"

	"fcdpm/internal/device"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/storage"
	"fcdpm/internal/workload"
)

func TestSlewZeroIsIdeal(t *testing.T) {
	cfg := baseConfig(&followPolicy{fuelcell.PaperSystem()})
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SlewRate = 0
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fuel != b.Fuel {
		t.Fatalf("zero slew rate changed fuel: %v vs %v", a.Fuel, b.Fuel)
	}
}

func TestSlewPreservesDuration(t *testing.T) {
	cfg := baseConfig(&followPolicy{fuelcell.PaperSystem()})
	ideal, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SlewRate = 0.2
	slew, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ideal.Duration-slew.Duration) > 1e-6 {
		t.Fatalf("slew changed duration: %v vs %v", ideal.Duration, slew.Duration)
	}
}

func TestSlewCausesTrackingDeficit(t *testing.T) {
	// A load-following policy with a tiny storage and a slow FC: the
	// up-ramp into each active period under-delivers and the storage
	// must cover it; with the storage nearly empty, deficits appear.
	sys := fuelcell.PaperSystem()
	trace := workload.Periodic(10, 14, 3.03, device.CamcorderRunCurrent)
	run := func(rate float64) *Result {
		cfg := baseConfig(&followPolicy{sys})
		cfg.Trace = trace
		cfg.Store = smallStore()
		cfg.SlewRate = rate
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ideal := run(0)
	slew := run(0.1) // 0.1 A/s: a 1 A swing takes 10 s
	if slew.Deficit <= ideal.Deficit {
		t.Fatalf("slew-limited tracking should strand the load: deficit %v vs ideal %v",
			slew.Deficit, ideal.Deficit)
	}
}

func TestSlewBarelyAffectsFlatPolicy(t *testing.T) {
	// A flat-output policy never ramps after startup: slew limiting must
	// leave its fuel essentially unchanged.
	sys := fuelcell.PaperSystem()
	flat := &flatPolicy{iF: 0.5}
	cfg := baseConfig(flat)
	ideal, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SlewRate = 0.05
	slewed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(slewed.Fuel-ideal.Fuel) / ideal.Fuel; rel > 1e-9 {
		t.Fatalf("flat policy fuel changed by %v under slew", rel)
	}
	_ = sys
}

// flatPolicy holds one constant output (local to slew tests).
type flatPolicy struct{ iF float64 }

func (p *flatPolicy) Name() string                     { return "flat-test" }
func (p *flatPolicy) Reset(cmax, chargeTarget float64) {}
func (p *flatPolicy) PlanIdle(SlotInfo)                {}
func (p *flatPolicy) PlanActive(SlotInfo)              {}
func (p *flatPolicy) SegmentPlan(seg Segment, charge float64) []Piece {
	return []Piece{{IF: p.iF, Dur: seg.Dur}}
}

// smallStore returns a 1 A-s supercap starting at 0.5.
func smallStore() storage.Storage { return storage.MustSuperCap(1, 0.5) }

func TestSlewRampProfileIsMonotone(t *testing.T) {
	cfg := baseConfig(&followPolicy{fuelcell.PaperSystem()})
	cfg.Trace = workload.Periodic(2, 10, 3, 1.2)
	cfg.SlewRate = 0.3
	cfg.RecordProfile = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find the first large upward transition and check the recorded ramp
	// is staircase-monotone rather than a step.
	sawRamp := false
	for i := 1; i < len(res.Profile); i++ {
		d := res.Profile[i].IF - res.Profile[i-1].IF
		if d > 0 && d < 0.3 { // sub-step increments, not a full jump
			sawRamp = true
			break
		}
	}
	if !sawRamp {
		t.Fatal("no ramp sub-steps recorded in the profile")
	}
}
