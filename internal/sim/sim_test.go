package sim

import (
	"math"
	"testing"

	"fcdpm/internal/device"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/predict"
	"fcdpm/internal/storage"
	"fcdpm/internal/workload"
)

// maxPolicy pins the FC at the top of the range (Conv-DPM behaviour,
// re-implemented locally to keep sim tests free of the policy package).
type maxPolicy struct{ sys *fuelcell.System }

func (p *maxPolicy) Name() string                     { return "max" }
func (p *maxPolicy) Reset(cmax, chargeTarget float64) {}
func (p *maxPolicy) PlanIdle(SlotInfo)                {}
func (p *maxPolicy) PlanActive(SlotInfo)              {}
func (p *maxPolicy) SegmentPlan(seg Segment, charge float64) []Piece {
	return []Piece{{IF: p.sys.MaxOutput, Dur: seg.Dur}}
}

// followPolicy tracks the load within range.
type followPolicy struct{ sys *fuelcell.System }

func (p *followPolicy) Name() string                     { return "follow" }
func (p *followPolicy) Reset(cmax, chargeTarget float64) {}
func (p *followPolicy) PlanIdle(SlotInfo)                {}
func (p *followPolicy) PlanActive(SlotInfo)              {}
func (p *followPolicy) SegmentPlan(seg Segment, charge float64) []Piece {
	return []Piece{{IF: p.sys.Clamp(seg.Load), Dur: seg.Dur}}
}

// badPolicy returns pieces that do not tile the segment.
type badPolicy struct{}

func (p *badPolicy) Name() string                     { return "bad" }
func (p *badPolicy) Reset(cmax, chargeTarget float64) {}
func (p *badPolicy) PlanIdle(SlotInfo)                {}
func (p *badPolicy) PlanActive(SlotInfo)              {}
func (p *badPolicy) SegmentPlan(seg Segment, charge float64) []Piece {
	return []Piece{{IF: 0.5, Dur: seg.Dur / 2}}
}

// recorder captures planning callbacks for structural assertions.
type recorder struct {
	followPolicy
	idleInfos, activeInfos []SlotInfo
}

func (r *recorder) Name() string { return "recorder" }
func (r *recorder) Reset(cmax, chargeTarget float64) {
	r.idleInfos = nil
	r.activeInfos = nil
}
func (r *recorder) PlanIdle(i SlotInfo)   { r.idleInfos = append(r.idleInfos, i) }
func (r *recorder) PlanActive(i SlotInfo) { r.activeInfos = append(r.activeInfos, i) }

func baseConfig(p Policy) Config {
	return Config{
		Sys:    fuelcell.PaperSystem(),
		Dev:    device.Camcorder(),
		Store:  storage.PaperSuperCap(),
		Trace:  workload.Periodic(10, 14, 3.03, device.CamcorderRunCurrent),
		Policy: p,
	}
}

func TestRunBasicAccounting(t *testing.T) {
	sys := fuelcell.PaperSystem()
	cfg := baseConfig(&maxPolicy{sys})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Slots != 10 {
		t.Fatalf("slots = %d", res.Slots)
	}
	// Every idle exceeds Tbe=1 s, so all slots sleep, adding τPD+τWU per
	// slot to the duration.
	if res.Sleeps != 10 {
		t.Fatalf("sleeps = %d, want 10", res.Sleeps)
	}
	wantDur := 10*(14+3.03+1.5+0.5) + 10*0.5 // trace + SR/RS + τWU (τPD inside idle)
	if math.Abs(res.Duration-wantDur) > 1e-6 {
		t.Fatalf("duration = %v, want %v", res.Duration, wantDur)
	}
	// Max policy burns Ifc(1.2) for the entire duration.
	wantFuel := sys.StackCurrent(1.2) * res.Duration
	if math.Abs(res.Fuel-wantFuel) > 1e-6 {
		t.Fatalf("fuel = %v, want %v", res.Fuel, wantFuel)
	}
	// Pinned at max with mostly light loads: heavy bleed, no deficit.
	if res.Bled <= 0 {
		t.Error("max policy should bleed")
	}
	if res.Deficit > 0.5 {
		t.Errorf("deficit = %v, want ~0 (storage covers the 1.22 A peaks)", res.Deficit)
	}
}

func TestFollowPolicyCheaperThanMax(t *testing.T) {
	a, err := Run(baseConfig(&maxPolicy{fuelcell.PaperSystem()}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig(&followPolicy{fuelcell.PaperSystem()}))
	if err != nil {
		t.Fatal(err)
	}
	if b.Fuel >= a.Fuel {
		t.Fatalf("follow fuel %v should beat max %v", b.Fuel, a.Fuel)
	}
	if n := b.NormalizedFuel(a); n <= 0 || n >= 1 {
		t.Fatalf("normalized fuel = %v, want in (0,1)", n)
	}
}

func TestEnergyAccountingConsistency(t *testing.T) {
	res, err := Run(baseConfig(&followPolicy{fuelcell.PaperSystem()}))
	if err != nil {
		t.Fatal(err)
	}
	// Delivered = load + storage delta + bleed - deficit (all ×VF).
	sys := fuelcell.PaperSystem()
	lhs := res.DeliveredEnergy
	deltaQ := res.FinalCharge - 6 // started full
	rhs := res.LoadEnergy + sys.VF*(deltaQ+res.Bled-res.Deficit)
	if math.Abs(lhs-rhs) > 1e-6*math.Max(1, math.Abs(lhs)) {
		t.Fatalf("energy balance broken: delivered %v vs accounted %v", lhs, rhs)
	}
}

func TestSleepDecisionModes(t *testing.T) {
	mk := func(mode DPMMode, trace *workload.Trace) *Result {
		cfg := baseConfig(&followPolicy{fuelcell.PaperSystem()})
		cfg.Trace = trace
		cfg.DPM = mode
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	long := workload.Periodic(5, 14, 3, 1.2)
	short := workload.Periodic(5, 0.4, 3, 1.2) // under camcorder Tbe=1
	if r := mk(DPMNeverSleep, long); r.Sleeps != 0 {
		t.Errorf("never-sleep slept %d times", r.Sleeps)
	}
	if r := mk(DPMAlwaysSleep, short); r.Sleeps != 5 {
		t.Errorf("always-sleep slept %d times, want 5", r.Sleeps)
	}
	if r := mk(DPMOracle, short); r.Sleeps != 0 {
		t.Errorf("oracle slept %d times on sub-Tbe idles", r.Sleeps)
	}
	if r := mk(DPMOracle, long); r.Sleeps != 5 {
		t.Errorf("oracle slept %d times, want 5", r.Sleeps)
	}
}

func TestPredictiveSleepUsesPrediction(t *testing.T) {
	// First slot: predictor initialized at Tbe ⇒ sleeps. Feed a trace of
	// short idles; the exponential average learns and stops sleeping.
	cfg := baseConfig(&followPolicy{fuelcell.PaperSystem()})
	cfg.Trace = workload.Periodic(6, 0.3, 3, 1.2)
	cfg.IdlePredictor = predict.MustExpAverage(0.5, 10) // optimistic start
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sleeps == 0 || res.Sleeps == 6 {
		t.Fatalf("sleeps = %d, want some but not all (prediction adapting)", res.Sleeps)
	}
}

func TestPlanCallbacks(t *testing.T) {
	rec := &recorder{followPolicy: followPolicy{fuelcell.PaperSystem()}}
	cfg := baseConfig(rec)
	cfg.Trace = workload.Periodic(4, 14, 3.03, device.CamcorderRunCurrent)
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(rec.idleInfos) != 4 || len(rec.activeInfos) != 4 {
		t.Fatalf("callbacks: %d idle, %d active", len(rec.idleInfos), len(rec.activeInfos))
	}
	// Idle planning sees predictions only; active planning sees actuals.
	if rec.idleInfos[0].ActualActive != 0 {
		t.Error("idle info leaked actuals")
	}
	if rec.activeInfos[0].ActualActive != 3.03 {
		t.Errorf("active info actual = %v", rec.activeInfos[0].ActualActive)
	}
	if rec.activeInfos[0].ActualActiveCurrent != device.CamcorderRunCurrent {
		t.Error("active info missing actual current")
	}
	// Slot indices increase.
	for k, info := range rec.idleInfos {
		if info.K != k {
			t.Fatalf("slot index %d at position %d", info.K, k)
		}
	}
	// Charge target is the initial charge (full supercap).
	if rec.idleInfos[0].ChargeTarget != 6 {
		t.Errorf("charge target = %v", rec.idleInfos[0].ChargeTarget)
	}
	// Predictors train: after several identical slots, prediction
	// approaches the actual idle length.
	last := rec.idleInfos[3]
	if math.Abs(last.PredIdle-14) > 7 {
		t.Errorf("idle prediction not converging: %v", last.PredIdle)
	}
}

func TestProfileRecording(t *testing.T) {
	cfg := baseConfig(&followPolicy{fuelcell.PaperSystem()})
	cfg.RecordProfile = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profile) == 0 || len(res.Charges) == 0 {
		t.Fatal("profile not recorded")
	}
	// Times strictly increase and start at 0.
	if res.Profile[0].T != 0 {
		t.Errorf("first profile point at t=%v", res.Profile[0].T)
	}
	for k := 1; k < len(res.Profile); k++ {
		if res.Profile[k].T <= res.Profile[k-1].T {
			t.Fatalf("profile times not increasing at %d", k)
		}
	}
	// Off by default.
	cfg.RecordProfile = false
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profile) != 0 {
		t.Error("profile recorded when disabled")
	}
}

func TestBadPolicyRejected(t *testing.T) {
	cfg := baseConfig(&badPolicy{})
	if _, err := Run(cfg); err == nil {
		t.Fatal("non-tiling piece plan accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	good := baseConfig(&maxPolicy{fuelcell.PaperSystem()})
	cases := []func(*Config){
		func(c *Config) { c.Sys = nil },
		func(c *Config) { c.Dev = nil },
		func(c *Config) { c.Store = nil },
		func(c *Config) { c.Trace = nil },
		func(c *Config) { c.Trace = &workload.Trace{} },
		func(c *Config) { c.Policy = nil },
	}
	for k, mutate := range cases {
		cfg := good
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", k)
		}
	}
}

func TestStorageNotMutated(t *testing.T) {
	store := storage.MustSuperCap(6, 3)
	cfg := baseConfig(&maxPolicy{fuelcell.PaperSystem()})
	cfg.Store = store
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if store.Charge() != 3 {
		t.Fatalf("original storage mutated: %v", store.Charge())
	}
}

func TestLifetimeAndRates(t *testing.T) {
	res := &Result{Fuel: 100, Duration: 50}
	if got := res.AvgFuelRate(); got != 2 {
		t.Errorf("rate = %v", got)
	}
	if got := res.Lifetime(1000); got != 500 {
		t.Errorf("lifetime = %v", got)
	}
	empty := &Result{}
	if got := empty.AvgFuelRate(); got != 0 {
		t.Errorf("empty rate = %v", got)
	}
	if !math.IsInf(empty.Lifetime(100), 1) {
		t.Error("zero-fuel lifetime should be infinite")
	}
	if !math.IsInf(res.NormalizedFuel(empty), 1) {
		t.Error("normalizing against zero baseline should be infinite")
	}
}

func TestShortIdleTruncatesPowerDown(t *testing.T) {
	// Idle shorter than τPD with forced sleep: power-down segment is
	// truncated, no negative sleep segment.
	cfg := baseConfig(&followPolicy{fuelcell.PaperSystem()})
	cfg.Trace = workload.Periodic(3, 0.2, 3, 1.2)
	cfg.DPM = DPMAlwaysSleep
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Duration = 3 slots × (0.2 idle + 0.5 WU + 1.5 SR + 3 active + 0.5 RS).
	want := 3 * (0.2 + 0.5 + 1.5 + 3 + 0.5)
	if math.Abs(res.Duration-want) > 1e-9 {
		t.Fatalf("duration = %v, want %v", res.Duration, want)
	}
}

func TestSegmentKindStrings(t *testing.T) {
	kinds := []SegmentKind{SegPowerDown, SegSleep, SegStandby, SegWakeUp, SegStartup, SegActive, SegShutdown}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad name %q", int(k), s)
		}
		seen[s] = true
	}
	if SegmentKind(99).String() == "" {
		t.Error("unknown kind has empty name")
	}
	if !SegPowerDown.IdlePhase() || !SegSleep.IdlePhase() || !SegStandby.IdlePhase() {
		t.Error("idle-phase kinds misclassified")
	}
	if SegWakeUp.IdlePhase() || SegActive.IdlePhase() {
		t.Error("active-phase kinds misclassified")
	}
	if DPMPredictive.String() == "" || DPMMode(99).String() == "" {
		t.Error("DPM mode names missing")
	}
}

func TestSlotLogRecording(t *testing.T) {
	cfg := baseConfig(&followPolicy{fuelcell.PaperSystem()})
	cfg.RecordSlots = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SlotLog) != res.Slots {
		t.Fatalf("slot log entries = %d, slots = %d", len(res.SlotLog), res.Slots)
	}
	var fuelSum float64
	for k, rec := range res.SlotLog {
		if rec.K != k {
			t.Fatalf("record %d has K=%d", k, rec.K)
		}
		if rec.Idle != 14 || rec.Active != 3.03 {
			t.Fatalf("record %d slot params wrong: %+v", k, rec)
		}
		if !rec.Slept {
			t.Fatalf("record %d should have slept", k)
		}
		if rec.Fuel <= 0 {
			t.Fatalf("record %d fuel = %v", k, rec.Fuel)
		}
		fuelSum += rec.Fuel
		if k > 0 && res.SlotLog[k-1].ChargeEnd != rec.ChargeStart {
			t.Fatalf("charge not continuous at record %d", k)
		}
	}
	if math.Abs(fuelSum-res.Fuel) > 1e-9 {
		t.Fatalf("slot fuel sum %v != total %v", fuelSum, res.Fuel)
	}
	// Off by default.
	cfg.RecordSlots = false
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SlotLog) != 0 {
		t.Fatal("slot log recorded when disabled")
	}
}
