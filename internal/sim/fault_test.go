package sim_test

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"

	"fcdpm/internal/device"
	"fcdpm/internal/fault"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/policy"
	"fcdpm/internal/sim"
	"fcdpm/internal/storage"
	"fcdpm/internal/workload"
)

// faultTrace builds a deterministic synthetic trace long enough for
// mid-run faults.
func faultTrace(slots int) *workload.Trace {
	tr := &workload.Trace{}
	for i := 0; i < slots; i++ {
		idle := 4.0 + float64(i%7)
		active := 2.0 + float64(i%3)
		tr.Slots = append(tr.Slots, workload.Slot{Idle: idle, Active: active, ActiveCurrent: 1.0})
	}
	return tr
}

// faultConfig assembles a supervised run with the standard fallback chain
// FC-DPM -> ASAP -> Conv (+ implicit load-shed).
func faultConfig(sched *fault.Schedule) sim.Config {
	sys := fuelcell.PaperSystem()
	dev := device.Synthetic()
	return sim.Config{
		Sys:    sys,
		Dev:    dev,
		Store:  storage.MustSuperCap(6, 3),
		Trace:  faultTrace(60),
		Policy: policy.NewFCDPM(sys, dev),
		Fallbacks: []sim.Policy{
			policy.NewASAP(sys),
			policy.NewConv(sys),
		},
		Faults:    sched,
		FaultSeed: 17,
	}
}

// TestStackDropoutGracefulDegradation is the issue's acceptance scenario:
// a seeded run with a mid-trace FC stack dropout completes without panic,
// logs the fault and fallback events, and finishes on a fallback policy.
func TestStackDropoutGracefulDegradation(t *testing.T) {
	sched := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.StackDropout, Start: 120, Dur: 80},
	}}
	res, err := sim.Run(faultConfig(sched))
	if err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	var sawStart, sawEnd, sawFallback bool
	for _, e := range res.Events {
		switch e.Kind {
		case sim.EventFaultStart:
			sawStart = true
		case sim.EventFaultEnd:
			sawEnd = true
		case sim.EventFallback:
			sawFallback = true
		}
	}
	if !sawStart || !sawEnd {
		t.Fatalf("fault transitions missing from event log: %+v", res.Events)
	}
	if !sawFallback || res.Fallbacks == 0 {
		t.Fatalf("dropout starved the buffer but no fallback fired: %+v", res.Events)
	}
	if res.FinalPolicy == res.Policy {
		t.Fatalf("run should finish on a fallback policy, still on %s", res.FinalPolicy)
	}
	if math.IsNaN(res.Fuel) || math.IsInf(res.Fuel, 0) || res.Fuel <= 0 {
		t.Fatalf("bad fuel total %v", res.Fuel)
	}
	if res.Deficit+res.Shed <= 0 {
		t.Fatal("an 80 s total dropout must cost unmet or shed load")
	}
}

// TestFaultRunDeterministic re-runs the acceptance scenario and demands a
// byte-identical Result, including the event log and noise-perturbed
// trajectories.
func TestFaultRunDeterministic(t *testing.T) {
	sched := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.StackDropout, Start: 120, Dur: 80},
		{Kind: fault.SensorNoise, Start: 30, Dur: 200, Magnitude: 0.4},
		{Kind: fault.CapacityFade, Start: 40, Dur: 0, Magnitude: 0.3},
		{Kind: fault.EfficiencyDegrade, Start: 50, Dur: 100, Magnitude: 0.3},
		{Kind: fault.LoadSurge, Start: 90, Dur: 40, Magnitude: 1.8},
	}}
	a, err := sim.Run(faultConfig(sched))
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(faultConfig(sched))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different results:\n%+v\nvs\n%+v", a, b)
	}
	if a.LostCharge <= 0 {
		t.Fatalf("capacity fade to 0.3 with a charged buffer must destroy charge, got %v", a.LostCharge)
	}
}

// TestEfficiencyDegradeInflatesFuel compares fuel with and without a
// permanent efficiency-degradation fault.
func TestEfficiencyDegradeInflatesFuel(t *testing.T) {
	base, err := sim.Run(faultConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	degraded, err := sim.Run(faultConfig(&fault.Schedule{Events: []fault.Event{
		{Kind: fault.EfficiencyDegrade, Start: 0, Dur: 0, Magnitude: 0.25},
	}}))
	if err != nil {
		t.Fatal(err)
	}
	want := base.Fuel / (1 - 0.25)
	if math.Abs(degraded.Fuel-want) > 1e-6*want {
		t.Fatalf("degraded fuel %v, want %v (base %v scaled by 1/0.75)", degraded.Fuel, want, base.Fuel)
	}
}

// TestNominalFaultPathMatchesPlain guards the exactness claim: an empty
// schedule (injector disabled) and a schedule with no events must not
// perturb results relative to a plain run.
func TestNominalFaultPathMatchesPlain(t *testing.T) {
	plainCfg := faultConfig(nil)
	plainCfg.Fallbacks = nil
	plain, err := sim.Run(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	withChain, err := sim.Run(faultConfig(&fault.Schedule{}))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Fuel != withChain.Fuel || plain.FinalCharge != withChain.FinalCharge ||
		plain.Deficit != withChain.Deficit || plain.Bled != withChain.Bled {
		t.Fatalf("supervision without faults changed physics: %+v vs %+v", plain, withChain)
	}
	if withChain.Fallbacks != 0 || len(withChain.Events) != 0 {
		t.Fatalf("spurious supervisor activity: %+v", withChain.Events)
	}
}

// TestChargeBalanceInvariantAlwaysOn verifies the watchdog's charge
// invariant fires as a typed error in unsupervised runs when a broken
// storage model leaks charge out of range.
func TestChargeBalanceInvariantAlwaysOn(t *testing.T) {
	cfg := faultConfig(nil)
	cfg.Fallbacks = nil
	cfg.Store = brokenStore{SuperCap: storage.MustSuperCap(6, 3)}
	_, err := sim.Run(cfg)
	var inv *sim.InvariantError
	if !errors.As(err, &inv) {
		t.Fatalf("want *sim.InvariantError, got %v", err)
	}
	if inv.Check != "charge-balance" {
		t.Fatalf("want charge-balance violation, got %q: %v", inv.Check, inv)
	}
}

// brokenStore violates the storage contract by reporting a charge above
// capacity.
type brokenStore struct{ *storage.SuperCap }

func (b brokenStore) Charge() float64 { return b.Capacity() + 1 }
func (b brokenStore) Clone() storage.Storage {
	return brokenStore{SuperCap: b.SuperCap.Clone().(*storage.SuperCap)}
}

// badPolicy returns pieces that do not tile the segment.
type badPolicy struct{ sim.Policy }

func (badPolicy) Name() string { return "bad" }
func (badPolicy) SegmentPlan(seg sim.Segment, charge float64) []sim.Piece {
	return []sim.Piece{{IF: 0.5, Dur: seg.Dur / 2}}
}

// TestBadPlanFallsBack verifies a policy returning an invalid plan trips
// the supervisor, which replans the same segment with the next stage.
func TestBadPlanFallsBack(t *testing.T) {
	sys := fuelcell.PaperSystem()
	cfg := faultConfig(&fault.Schedule{})
	cfg.Policy = badPolicy{Policy: policy.NewConv(sys)}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("supervised run must absorb the bad plan: %v", err)
	}
	if res.Fallbacks == 0 || res.FinalPolicy == "bad" {
		t.Fatalf("expected fallback away from bad policy: %+v", res)
	}
	// Unsupervised, the same plan is a typed error.
	cfg.Faults = nil
	cfg.Fallbacks = nil
	_, err = sim.Run(cfg)
	var inv *sim.InvariantError
	if !errors.As(err, &inv) || inv.Check != "piece" {
		t.Fatalf("want piece invariant error, got %v", err)
	}
}

// TestRunContextCancel verifies cancellation stops the run with a typed
// error that unwraps to the context cause.
func TestRunContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sim.RunContext(ctx, faultConfig(nil))
	var ce *sim.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("want *sim.CanceledError, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation cause lost: %v", err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel2()
	time.Sleep(time.Millisecond)
	if _, err := sim.RunContext(ctx2, faultConfig(nil)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
}

// TestLoadShedLastResort drives the whole chain into load-shed with a
// permanent dropout and checks unmet load is reclassified as Shed.
func TestLoadShedLastResort(t *testing.T) {
	res, err := sim.Run(faultConfig(&fault.Schedule{Events: []fault.Event{
		{Kind: fault.StackDropout, Start: 10, Dur: 0}, // permanent
	}}))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalPolicy != "load-shed" {
		t.Fatalf("permanent dropout should exhaust the chain, ended on %s", res.FinalPolicy)
	}
	if res.Shed <= 0 {
		t.Fatalf("load-shed stage must record shed charge, got %v", res.Shed)
	}
	if want := 3; res.Fallbacks != want {
		t.Fatalf("fallbacks = %d, want %d (fcdpm->asap->conv->load-shed)", res.Fallbacks, want)
	}
}
