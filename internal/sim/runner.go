package sim

import (
	"context"
	"time"
)

// RecordLevel selects how much per-run history the simulator keeps.
type RecordLevel int

// Record levels.
const (
	// RecordAuto (the zero value) derives the level from the legacy
	// Config.RecordProfile / Config.RecordSlots booleans, so existing
	// configurations keep their behavior.
	RecordAuto RecordLevel = iota
	// RecordFuelOnly keeps scalar totals only — no Profile, Charges, or
	// SlotLog appends regardless of the booleans. Experiment comparisons
	// and the server cache path need nothing more, and it is the level
	// at which a Runner's steady-state runs allocate nothing.
	RecordFuelOnly
	// RecordFull records the per-piece profile, the charge trajectory,
	// and the per-slot audit log.
	RecordFull
)

// String names the record level.
func (l RecordLevel) String() string {
	switch l {
	case RecordAuto:
		return "auto"
	case RecordFuelOnly:
		return "fuel-only"
	case RecordFull:
		return "full"
	default:
		return "RecordLevel(?)"
	}
}

// PiecePlanner is the optional allocation-free face of a Policy:
// SegmentPlanInto appends the segment's pieces to buf and returns the
// extended slice, letting the simulator reuse one scratch buffer across
// segments instead of receiving a freshly allocated plan per call. The
// semantics must match SegmentPlan exactly; the simulator prefers this
// interface whenever the active policy implements it.
type PiecePlanner interface {
	SegmentPlanInto(seg Segment, charge float64, buf []Piece) []Piece
}

// Runner executes one fixed configuration repeatedly without per-run
// allocations: the scratch arena (segment and piece buffers, the result
// and its slices, the policy chain, default predictors, the storage
// working copy, and the fuel-map memo) is sized once at construction and
// rewound by an explicit reset before every run.
//
// At RecordFuelOnly with no fault schedule, steady-state calls to Run
// allocate nothing (pinned by a testing.AllocsPerRun regression test);
// fault-injected runs rebuild the injector per run so the noise stream
// stays seed-deterministic.
//
// The *Result returned by Run aliases the Runner's internal buffers: it
// is valid until the next Run call. Callers that keep results across
// runs must copy what they need. A Runner is not safe for concurrent
// use; run one per goroutine. Stateful collaborators handed in via the
// configuration (policies, predictors, the timeout adapter) are reset
// through their own Reset hooks where the interface provides one — the
// TimeoutAdapter interface does not, so an adapter keeps learning across
// runs exactly as it does across separate sim.Run calls today.
type Runner struct {
	st state
}

// NewRunner validates the configuration and builds the reusable run
// state. The configuration (including the trace) must not be mutated
// while the Runner is in use.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	r := &Runner{}
	r.st.init(cfg)
	return r, nil
}

// Run executes one simulation over the configured trace.
func (r *Runner) Run() (*Result, error) {
	return r.RunContext(context.Background())
}

// RunContext is Run under a context: cancellation or deadline expiry
// stops the run between slots with a *CanceledError.
func (r *Runner) RunContext(ctx context.Context) (*Result, error) {
	m := r.st.cfg.Metrics
	if m == nil {
		r.st.reset()
		return r.st.run(ctx)
	}
	start := time.Now()
	hits0, misses0 := r.st.memo.Stats()
	r.st.reset()
	res, err := r.st.run(ctx)
	if err != nil {
		return nil, err
	}
	hits1, misses1 := r.st.memo.Stats()
	m.RecordRun(res.Slots, res.Fuel, hits1-hits0, misses1-misses0, time.Since(start))
	return res, nil
}
