package sim

import (
	"math"
	"testing"

	"fcdpm/internal/device"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/workload"
)

func TestTimeoutModeReactiveSleep(t *testing.T) {
	cfg := baseConfig(&followPolicy{fuelcell.PaperSystem()})
	cfg.DPM = DPMTimeout
	cfg.Timeout = 5
	// Half the slots outlast the timeout, half do not.
	cfg.Trace = &workload.Trace{Slots: []workload.Slot{
		{Idle: 3, Active: 3, ActiveCurrent: 1.2},
		{Idle: 10, Active: 3, ActiveCurrent: 1.2},
		{Idle: 4, Active: 3, ActiveCurrent: 1.2},
		{Idle: 20, Active: 3, ActiveCurrent: 1.2},
	}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sleeps != 2 {
		t.Fatalf("sleeps = %d, want 2 (only idles > 5 s)", res.Sleeps)
	}
	// Timeout dwell burns STANDBY fuel even on sleeping slots.
	if res.FuelByKind[SegStandby] <= 0 {
		t.Error("timeout mode must spend standby dwell")
	}
	if res.FuelByKind[SegSleep] <= 0 {
		t.Error("long idles should reach sleep")
	}
}

func TestTimeoutModeDuration(t *testing.T) {
	cfg := baseConfig(&followPolicy{fuelcell.PaperSystem()})
	cfg.DPM = DPMTimeout
	cfg.Timeout = 4
	cfg.Trace = workload.Periodic(1, 10, 3, 1.2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Idle 10 = 4 standby + 0.5 PD + 5.5 sleep; then WU 0.5 + SR 1.5 +
	// active 3 + RS 0.5.
	want := 10 + 0.5 + 1.5 + 3 + 0.5
	if math.Abs(res.Duration-want) > 1e-9 {
		t.Fatalf("duration = %v, want %v", res.Duration, want)
	}
}

func TestTimeoutDefaultsToBreakEven(t *testing.T) {
	cfg := baseConfig(&followPolicy{fuelcell.PaperSystem()})
	cfg.DPM = DPMTimeout
	// Camcorder Tbe = 1 s; idles of 0.8 s should never sleep, 2 s always.
	cfg.Trace = workload.Periodic(3, 0.8, 3, 1.2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sleeps != 0 {
		t.Fatalf("sub-timeout idles slept %d times", res.Sleeps)
	}
	cfg.Trace = workload.Periodic(3, 2, 3, 1.2)
	res, err = Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sleeps != 3 {
		t.Fatalf("post-timeout idles slept %d times, want 3", res.Sleeps)
	}
}

func TestTimeoutCostsMoreThanOracle(t *testing.T) {
	// The classic result: a timeout policy pays the dwell; the oracle
	// sleeps immediately. Same trace, same source policy.
	trace := workload.Periodic(20, 14, 3.03, device.CamcorderRunCurrent)
	run := func(mode DPMMode) *Result {
		cfg := baseConfig(&followPolicy{fuelcell.PaperSystem()})
		cfg.Trace = trace
		cfg.DPM = mode
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	timeout := run(DPMTimeout)
	oracle := run(DPMOracle)
	if timeout.AvgFuelRate() <= oracle.AvgFuelRate() {
		t.Fatalf("timeout rate %v should exceed oracle %v",
			timeout.AvgFuelRate(), oracle.AvgFuelRate())
	}
}

func TestFuelBreakdownSumsToTotal(t *testing.T) {
	cfg := baseConfig(&followPolicy{fuelcell.PaperSystem()})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range res.FuelByKind {
		sum += v
	}
	if math.Abs(sum-res.Fuel) > 1e-9*math.Max(1, res.Fuel) {
		t.Fatalf("breakdown sum %v != total %v", sum, res.Fuel)
	}
	// The camcorder trace sleeps every slot: expect fuel in sleep, wake,
	// startup, active, shutdown, and power-down kinds.
	for _, k := range []SegmentKind{SegPowerDown, SegSleep, SegWakeUp, SegStartup, SegActive, SegShutdown} {
		if res.FuelByKind[k] <= 0 {
			t.Errorf("no fuel recorded for %v", k)
		}
	}
	if res.FuelByKind[SegStandby] != 0 {
		t.Errorf("unexpected standby fuel %v on an always-sleeping trace", res.FuelByKind[SegStandby])
	}
}
