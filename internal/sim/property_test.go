package sim

import (
	"math"
	"testing"
	"testing/quick"

	"fcdpm/internal/device"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/numeric"
	"fcdpm/internal/storage"
	"fcdpm/internal/workload"
)

// TestEnergyBalanceProperty verifies the fundamental conservation law on
// randomized configurations: delivered energy equals load energy plus the
// storage delta, bleed, and deficit corrections — for every policy shape,
// DPM mode, and slew rate.
func TestEnergyBalanceProperty(t *testing.T) {
	sys := fuelcell.PaperSystem()
	f := func(seed uint64) bool {
		rng := numeric.NewRNG(seed)
		// Random small trace.
		n := 2 + rng.Intn(8)
		tr := &workload.Trace{Name: "prop"}
		for k := 0; k < n; k++ {
			tr.Slots = append(tr.Slots, workload.Slot{
				Idle:          rng.Uniform(0.5, 25),
				Active:        rng.Uniform(0.5, 6),
				ActiveCurrent: rng.Uniform(0.3, 1.4),
			})
		}
		q0 := rng.Uniform(0, 6)
		var pol Policy
		switch rng.Intn(2) {
		case 0:
			pol = &maxPolicy{sys}
		default:
			pol = &followPolicy{sys}
		}
		cfg := Config{
			Sys:    sys,
			Dev:    device.Camcorder(),
			Store:  storage.MustSuperCap(6, q0),
			Trace:  tr,
			Policy: pol,
			DPM:    DPMMode(rng.Intn(5)),
		}
		if rng.Intn(2) == 0 {
			cfg.SlewRate = rng.Uniform(0.05, 1)
		}
		res, err := Run(cfg)
		if err != nil {
			return false
		}
		lhs := res.DeliveredEnergy
		rhs := res.LoadEnergy + sys.VF*((res.FinalCharge-q0)+res.Bled-res.Deficit)
		if !numeric.AlmostEqual(lhs, rhs, 1e-6) {
			t.Logf("seed %d: delivered %v vs accounted %v", seed, lhs, rhs)
			return false
		}
		// Fuel breakdown always sums to the total.
		var sum float64
		for _, v := range res.FuelByKind {
			sum += v
		}
		if !numeric.AlmostEqual(sum, res.Fuel, 1e-9) {
			t.Logf("seed %d: breakdown %v vs fuel %v", seed, sum, res.Fuel)
			return false
		}
		// Duration covers at least the trace time.
		if res.Duration < tr.Duration()-1e-9 {
			t.Logf("seed %d: duration %v below trace %v", seed, res.Duration, tr.Duration())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestChargeBoundsProperty: the storage trajectory never escapes [0, Cmax]
// under random programs (checked through recorded charge samples).
func TestChargeBoundsProperty(t *testing.T) {
	sys := fuelcell.PaperSystem()
	f := func(seed uint64) bool {
		rng := numeric.NewRNG(seed ^ 0xabcdef)
		tr := &workload.Trace{Name: "prop"}
		for k := 0; k < 5; k++ {
			tr.Slots = append(tr.Slots, workload.Slot{
				Idle:          rng.Uniform(1, 20),
				Active:        rng.Uniform(1, 5),
				ActiveCurrent: rng.Uniform(0.2, 1.4),
			})
		}
		cfg := Config{
			Sys:           sys,
			Dev:           device.Synthetic(),
			Store:         storage.MustSuperCap(4, rng.Uniform(0, 4)),
			Trace:         tr,
			Policy:        &maxPolicy{sys},
			RecordProfile: true,
		}
		res, err := Run(cfg)
		if err != nil {
			return false
		}
		for _, c := range res.Charges {
			if c.Q < -1e-9 || c.Q > 4+1e-9 {
				return false
			}
		}
		return !math.IsNaN(res.Fuel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
