package sim_test

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"fcdpm/internal/device"
	"fcdpm/internal/fault"
	"fcdpm/internal/fcopt"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/policy"
	"fcdpm/internal/predict"
	"fcdpm/internal/sim"
	"fcdpm/internal/storage"
	"fcdpm/internal/workload"
)

// The batch oracle: every lane of a BatchRunner must produce a Result
// byte-identical to a sequential sim.Runner run of the same Config —
// whatever mix of policies, predictors, record levels, DPM modes, and
// fault schedules the lanes carry. These tests drive that contract
// directly; the grouping machinery is only allowed to make runs cheaper,
// never different.

// assertResultEqual compares two results field for field with exact
// (bit-level) float equality. Slices and the fuel map compare by content
// so a nil buffer and an emptied-but-allocated one are interchangeable.
func assertResultEqual(t *testing.T, label string, got, want *sim.Result) {
	t.Helper()
	g, w := *got, *want
	g.FuelByKind, w.FuelByKind = nil, nil
	g.Events, w.Events = nil, nil
	g.Profile, w.Profile = nil, nil
	g.Charges, w.Charges = nil, nil
	g.SlotLog, w.SlotLog = nil, nil
	if !reflect.DeepEqual(g, w) {
		t.Fatalf("%s: scalar fields differ:\n got %+v\nwant %+v", label, g, w)
	}
	if len(got.FuelByKind) != len(want.FuelByKind) {
		t.Fatalf("%s: FuelByKind sizes differ: %v vs %v", label, got.FuelByKind, want.FuelByKind)
	}
	for k, v := range want.FuelByKind {
		if gv, ok := got.FuelByKind[k]; !ok || gv != v {
			t.Fatalf("%s: FuelByKind[%v] = %v, want %v", label, k, got.FuelByKind[k], v)
		}
	}
	if !slicesEq(got.Events, want.Events) {
		t.Fatalf("%s: Events differ:\n got %v\nwant %v", label, got.Events, want.Events)
	}
	if !slicesEq(got.Profile, want.Profile) {
		t.Fatalf("%s: Profile differs (%d vs %d points)", label, len(got.Profile), len(want.Profile))
	}
	if !slicesEq(got.Charges, want.Charges) {
		t.Fatalf("%s: Charges differ (%d vs %d points)", label, len(got.Charges), len(want.Charges))
	}
	if !slicesEq(got.SlotLog, want.SlotLog) {
		t.Fatalf("%s: SlotLog differs (%d vs %d records)", label, len(got.SlotLog), len(want.SlotLog))
	}
}

func slicesEq[T comparable](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// batchOracleCheck runs the lanes batched and each lane sequentially,
// and fails unless every lane matches its sequential twin exactly.
func batchOracleCheck(t *testing.T, lanes []sim.Lane) *sim.BatchRunner {
	t.Helper()
	b, err := sim.NewBatchRunner(lanes)
	if err != nil {
		t.Fatalf("NewBatchRunner: %v", err)
	}
	got, batchErr := b.Run()
	if batchErr != nil {
		t.Fatalf("batch run: %v", batchErr)
	}
	for i := range lanes {
		want, seqErr := sim.Run(lanes[i].Cfg)
		if (got[i].Err == nil) != (seqErr == nil) {
			t.Fatalf("lane %d: batch err %v, sequential err %v", i, got[i].Err, seqErr)
		}
		if seqErr != nil {
			continue
		}
		assertResultEqual(t, labelLane(i, &lanes[i].Cfg), got[i].Res, want)
	}
	return b
}

func labelLane(i int, cfg *sim.Config) string {
	name := "<nil>"
	if cfg.Policy != nil {
		name = cfg.Policy.Name()
	}
	return "lane " + string(rune('0'+i%10)) + " (" + name + ")"
}

// randomLane draws one scenario variant: policy family, storage size,
// predictors, DPM mode, record level, slew rate, faults, and fallback
// chain all vary. Shared pointers (sys, dev, schedules) are the same
// objects across lanes, exactly as sweep and server consumers build them.
func randomLane(t *testing.T, rng *rand.Rand, sys *fuelcell.System, dev *device.Model,
	tr *workload.Trace, scheds []*fault.Schedule) sim.Lane {
	t.Helper()
	cfg := sim.Config{Sys: sys, Dev: dev, Trace: tr}

	switch rng.Intn(4) {
	case 0:
		cfg.Policy = policy.NewConv(sys)
	case 1:
		cfg.Policy = policy.NewASAP(sys)
	case 2:
		cfg.Policy = policy.NewFCDPM(sys, dev)
	default:
		q, err := policy.NewFCDPMQuantized(sys, dev, fcopt.UniformLevels(sys, 4+rng.Intn(3)))
		if err != nil {
			t.Fatalf("quantized policy: %v", err)
		}
		cfg.Policy = q
	}

	caps := []float64{6, 8}
	cmax := caps[rng.Intn(len(caps))]
	cfg.Store = storage.MustSuperCap(cmax, cmax/2)

	switch rng.Intn(3) {
	case 0: // defaults
	case 1:
		cfg.IdlePredictor = predict.MustExpAverage(0.5, 4)
		cfg.ActivePredictor = predict.MustExpAverage(0.5, 2)
	default:
		cfg.IdlePredictor = predict.NewLastValue(4)
		cfg.CurrentPredictor = predict.MustExpAverage(0.3, 1)
	}

	switch rng.Intn(4) {
	case 0:
		cfg.DPM = sim.DPMPredictive
	case 1:
		cfg.DPM = sim.DPMAlwaysSleep
	case 2:
		cfg.DPM = sim.DPMNeverSleep
	default:
		cfg.DPM = sim.DPMTimeout
		if rng.Intn(2) == 0 {
			cfg.Timeout = 1.5
		}
	}

	switch rng.Intn(3) {
	case 0:
		cfg.Record = sim.RecordFuelOnly
	case 1:
		cfg.Record = sim.RecordFull
	default:
		cfg.RecordProfile = rng.Intn(2) == 0
		cfg.RecordSlots = rng.Intn(2) == 0
	}

	if rng.Intn(3) == 0 {
		cfg.SlewRate = 2.0
	}
	if rng.Intn(3) == 0 {
		cfg.Faults = scheds[rng.Intn(len(scheds))]
		cfg.FaultSeed = uint64(17 + rng.Intn(2)*6)
		cfg.Fallbacks = []sim.Policy{policy.NewASAP(sys), policy.NewConv(sys)}
	}
	return sim.Lane{Cfg: cfg}
}

// TestBatchRunnerOracleProperty is the property test the issue asks for:
// random variant sets across policies × seeds × record levels × fault
// schedules, every lane compared byte-for-byte against a sequential run.
func TestBatchRunnerOracleProperty(t *testing.T) {
	sys := fuelcell.PaperSystem()
	dev := device.Synthetic()
	tr := faultTrace(80)
	scheds := []*fault.Schedule{
		{Events: []fault.Event{
			{Kind: fault.SensorNoise, Start: 30, Dur: 100, Magnitude: 0.4},
			{Kind: fault.EfficiencyDegrade, Start: 50, Dur: 60, Magnitude: 0.3},
		}},
		{Events: []fault.Event{
			{Kind: fault.StackDropout, Start: 120, Dur: 40},
			{Kind: fault.CapacityFade, Start: 40, Dur: 0, Magnitude: 0.2},
		}},
	}

	for round := 0; round < 12; round++ {
		rng := rand.New(rand.NewSource(int64(1000 + round)))
		lanes := make([]sim.Lane, 1+rng.Intn(8))
		for i := range lanes {
			lanes[i] = randomLane(t, rng, sys, dev, tr, scheds)
		}
		batchOracleCheck(t, lanes)
	}
}

// TestBatchRunnerGroupsDuplicates verifies identical-dynamics lanes
// collapse to one executing group regardless of record level, and that
// distinct dynamics stay apart.
func TestBatchRunnerGroupsDuplicates(t *testing.T) {
	sys := fuelcell.PaperSystem()
	dev := device.Synthetic()
	tr := faultTrace(60)
	mk := func(cmax float64, rec sim.RecordLevel) sim.Lane {
		return sim.Lane{Cfg: sim.Config{
			Sys: sys, Dev: dev, Trace: tr,
			Store:  storage.MustSuperCap(cmax, cmax/2),
			Policy: policy.NewFCDPM(sys, dev),
			Record: rec,
		}}
	}
	lanes := []sim.Lane{
		mk(6, sim.RecordFuelOnly),
		mk(6, sim.RecordFull),
		mk(6, sim.RecordFuelOnly),
		mk(8, sim.RecordFuelOnly), // different capacity: own group
	}
	b := batchOracleCheck(t, lanes)
	if b.Groups() != 2 {
		t.Fatalf("want 2 run groups, got %d", b.Groups())
	}
	if b.GroupOf(0) != b.GroupOf(1) || b.GroupOf(0) != b.GroupOf(2) {
		t.Fatalf("identical-dynamics lanes split: groups %d/%d/%d",
			b.GroupOf(0), b.GroupOf(1), b.GroupOf(2))
	}
	if b.GroupOf(3) == b.GroupOf(0) {
		t.Fatalf("different-capacity lane joined group %d", b.GroupOf(0))
	}
}

// unkeyedPolicy hides the inner policy's BatchKey, modelling a policy
// the fingerprint cannot identify.
type unkeyedPolicy struct{ sim.Policy }

// TestBatchRunnerLaneKeyGroups verifies an explicit Lane.Key groups
// lanes the component fingerprint cannot, and that without it unkeyable
// lanes fall back to singleton (scalar-path) groups.
func TestBatchRunnerLaneKeyGroups(t *testing.T) {
	sys := fuelcell.PaperSystem()
	mk := func(key string) sim.Lane {
		return sim.Lane{Key: key, Cfg: sim.Config{
			Sys: sys, Dev: device.Synthetic(), Trace: faultTrace(40),
			Store:  storage.MustSuperCap(6, 3),
			Policy: unkeyedPolicy{policy.NewConv(sys)},
		}}
	}
	keyed := []sim.Lane{mk("cell-abc"), mk("cell-abc")}
	b := batchOracleCheck(t, keyed)
	if b.Groups() != 1 {
		t.Fatalf("equal lane keys must group: got %d groups", b.Groups())
	}
	unkeyed := []sim.Lane{mk(""), mk("")}
	b = batchOracleCheck(t, unkeyed)
	if b.Groups() != 2 {
		t.Fatalf("unkeyable lanes must stay singleton: got %d groups", b.Groups())
	}
}

// TestBatchRunnerSharedCollaboratorRejected verifies one mutable policy
// object appearing in two executing groups is a construction error, not
// a silent corruption.
func TestBatchRunnerSharedCollaboratorRejected(t *testing.T) {
	sys := fuelcell.PaperSystem()
	dev := device.Synthetic()
	tr := faultTrace(40)
	shared := policy.NewFCDPM(sys, dev)
	lanes := []sim.Lane{
		{Cfg: sim.Config{Sys: sys, Dev: dev, Trace: tr,
			Store: storage.MustSuperCap(6, 3), Policy: shared}},
		{Cfg: sim.Config{Sys: sys, Dev: dev, Trace: tr,
			Store: storage.MustSuperCap(8, 4), Policy: shared}},
	}
	if _, err := sim.NewBatchRunner(lanes); err == nil {
		t.Fatal("want shared-collaborator error, got nil")
	}
}

// TestBatchRunnerTraceRules: all lanes must walk one trace — pointer
// identity is not required, slot-for-slot equality is.
func TestBatchRunnerTraceRules(t *testing.T) {
	sys := fuelcell.PaperSystem()
	dev := device.Synthetic()
	mk := func(tr *workload.Trace) sim.Lane {
		return sim.Lane{Cfg: sim.Config{
			Sys: sys, Dev: dev, Trace: tr,
			Store: storage.MustSuperCap(6, 3), Policy: policy.NewConv(sys),
		}}
	}
	if _, err := sim.NewBatchRunner([]sim.Lane{mk(faultTrace(40)), mk(faultTrace(41))}); err == nil {
		t.Fatal("want trace-mismatch error, got nil")
	}
	// A value-equal copy is the same walk.
	b, err := sim.NewBatchRunner([]sim.Lane{mk(faultTrace(40)), mk(faultTrace(40))})
	if err != nil {
		t.Fatalf("value-equal traces rejected: %v", err)
	}
	if b.Groups() != 1 {
		t.Fatalf("want 1 group across value-equal traces, got %d", b.Groups())
	}
}

// TestBatchRunnerLaneErrorIsolation verifies a failing lane carries its
// own error while its batchmates complete and still match sequential.
func TestBatchRunnerLaneErrorIsolation(t *testing.T) {
	sys := fuelcell.PaperSystem()
	dev := device.Synthetic()
	tr := faultTrace(60)
	good := func(p sim.Policy) sim.Lane {
		return sim.Lane{Cfg: sim.Config{Sys: sys, Dev: dev, Trace: tr,
			Store: storage.MustSuperCap(8, 4), Policy: p}}
	}
	bad := sim.Lane{Cfg: sim.Config{Sys: sys, Dev: dev, Trace: tr,
		Store:  brokenStore{SuperCap: storage.MustSuperCap(6, 3)},
		Policy: policy.NewConv(sys)}}
	lanes := []sim.Lane{good(policy.NewConv(sys)), bad, good(policy.NewFCDPM(sys, dev))}

	b, err := sim.NewBatchRunner(lanes)
	if err != nil {
		t.Fatalf("NewBatchRunner: %v", err)
	}
	got, batchErr := b.Run()
	if batchErr != nil {
		t.Fatalf("lane failures must not abort the batch: %v", batchErr)
	}
	var inv *sim.InvariantError
	if !errors.As(got[1].Err, &inv) {
		t.Fatalf("broken lane: want *sim.InvariantError, got %v", got[1].Err)
	}
	if got[1].Res != nil {
		t.Fatal("failed lane must carry a nil Result")
	}
	for _, i := range []int{0, 2} {
		if got[i].Err != nil {
			t.Fatalf("healthy lane %d errored: %v", i, got[i].Err)
		}
		want, seqErr := sim.Run(lanes[i].Cfg)
		if seqErr != nil {
			t.Fatalf("sequential lane %d: %v", i, seqErr)
		}
		assertResultEqual(t, labelLane(i, &lanes[i].Cfg), got[i].Res, want)
	}
}

// TestBatchRunnerCancel verifies cancellation lands on every lane as a
// typed error that unwraps to the context cause.
func TestBatchRunnerCancel(t *testing.T) {
	sys := fuelcell.PaperSystem()
	lanes := []sim.Lane{
		{Cfg: sim.Config{Sys: sys, Dev: device.Synthetic(), Trace: faultTrace(40),
			Store: storage.MustSuperCap(6, 3), Policy: policy.NewConv(sys)}},
		{Cfg: sim.Config{Sys: sys, Dev: device.Synthetic(), Trace: faultTrace(40),
			Store: storage.MustSuperCap(8, 4), Policy: policy.NewASAP(sys)}},
	}
	b, err := sim.NewBatchRunner(lanes)
	if err != nil {
		t.Fatalf("NewBatchRunner: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, batchErr := b.RunContext(ctx)
	if !errors.Is(batchErr, context.Canceled) {
		t.Fatalf("want context.Canceled batch error, got %v", batchErr)
	}
	for i := range got {
		var ce *sim.CanceledError
		if !errors.As(got[i].Err, &ce) || !errors.Is(got[i].Err, context.Canceled) {
			t.Fatalf("lane %d: want *sim.CanceledError wrapping Canceled, got %v", i, got[i].Err)
		}
	}
}

// TestBatchRunnerReuse verifies a BatchRunner is reusable: the second
// run reuses every buffer yet reproduces the first bit for bit.
func TestBatchRunnerReuse(t *testing.T) {
	sys := fuelcell.PaperSystem()
	dev := device.Synthetic()
	tr := faultTrace(60)
	lanes := []sim.Lane{
		{Cfg: sim.Config{Sys: sys, Dev: dev, Trace: tr,
			Store: storage.MustSuperCap(6, 3), Policy: policy.NewFCDPM(sys, dev),
			Record: sim.RecordFull}},
		{Cfg: sim.Config{Sys: sys, Dev: dev, Trace: tr,
			Store: storage.MustSuperCap(6, 3), Policy: policy.NewFCDPM(sys, dev),
			Record: sim.RecordFuelOnly}},
	}
	b, err := sim.NewBatchRunner(lanes)
	if err != nil {
		t.Fatalf("NewBatchRunner: %v", err)
	}
	first, err := b.Run()
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	snap := make([]sim.Result, len(first))
	for i := range first {
		snap[i] = cloneResult(first[i].Res)
	}
	second, err := b.Run()
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	for i := range second {
		assertResultEqual(t, labelLane(i, &lanes[i].Cfg), second[i].Res, &snap[i])
	}
	// A fuel-only lane's projection must not leak its group leader's
	// richer recording.
	if len(second[1].Res.Profile) != 0 || len(second[1].Res.SlotLog) != 0 {
		t.Fatalf("fuel-only lane kept history: %d profile, %d slots",
			len(second[1].Res.Profile), len(second[1].Res.SlotLog))
	}
	if len(second[0].Res.Profile) == 0 || len(second[0].Res.SlotLog) == 0 {
		t.Fatal("full-record lane lost history")
	}
}

// cloneResult deep-copies a result out of the runner's reusable buffers.
func cloneResult(r *sim.Result) sim.Result {
	c := *r
	c.FuelByKind = make(map[sim.SegmentKind]float64, len(r.FuelByKind))
	for k, v := range r.FuelByKind {
		c.FuelByKind[k] = v
	}
	c.Events = append([]sim.RunEvent(nil), r.Events...)
	c.Profile = append([]sim.ProfilePoint(nil), r.Profile...)
	c.Charges = append([]sim.ChargePoint(nil), r.Charges...)
	c.SlotLog = append([]sim.SlotRecord(nil), r.SlotLog...)
	return c
}
