package sim_test

import (
	"reflect"
	"strings"
	"testing"

	"fcdpm/internal/fault"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/policy"
	"fcdpm/internal/sim"
	"fcdpm/internal/storage"
)

// TestFallbackExhaustion drives the supervisor past the end of its
// degradation chain: a storage model that keeps violating the charge
// invariant forces a fallback to load-shed, and the next violation finds
// no further stage. The run must log the exhaustion instead of erroring
// or looping.
func TestFallbackExhaustion(t *testing.T) {
	sys := fuelcell.PaperSystem()
	cfg := faultConfig(nil)
	cfg.Policy = policy.NewConv(sys)
	cfg.Fallbacks = nil // chain is just [conv, load-shed]
	cfg.Supervisor = sim.SupervisorConfig{Mode: sim.SuperviseOn}
	cfg.Store = brokenStore{SuperCap: storage.MustSuperCap(6, 3)}

	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("supervised run must absorb invariant violations: %v", err)
	}
	if res.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want exactly 1 (conv -> load-shed)", res.Fallbacks)
	}
	if res.FinalPolicy != "load-shed" {
		t.Fatalf("final policy = %q, want load-shed", res.FinalPolicy)
	}
	var exhausted int
	for _, e := range res.Events {
		if e.Kind == sim.EventInvariant && strings.Contains(e.Detail, "no further fallback") {
			exhausted++
		}
	}
	if exhausted == 0 {
		t.Fatalf("exhaustion never logged; events: %+v", res.Events)
	}
}

// TestFallbackExhaustionBadPlan covers the other exhaustion path: when
// the last-resort stage itself returns an invalid plan, the simulator
// rides the segment out at zero output instead of looping on replans.
func TestFallbackExhaustionBadPlan(t *testing.T) {
	sys := fuelcell.PaperSystem()
	cfg := faultConfig(nil)
	// The primary policy misplans every segment and there are no
	// fallbacks, so the chain lands on load-shed after one trip; further
	// segments plan fine, but make the store force another trip too.
	cfg.Policy = badPolicy{Policy: policy.NewConv(sys)}
	cfg.Fallbacks = nil
	cfg.Supervisor = sim.SupervisorConfig{Mode: sim.SuperviseOn}

	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatalf("supervised run must absorb the bad plan: %v", err)
	}
	if res.FinalPolicy != "load-shed" {
		t.Fatalf("final policy = %q, want load-shed", res.FinalPolicy)
	}
	if res.Duration <= 0 || res.Slots == 0 {
		t.Fatalf("run did not cover the trace: %+v", res)
	}
}

// TestFaultOnSegmentBoundary places a fault transition exactly on a slot
// boundary (slot 0 is idle 4 s + active 2 s, so t = 6 s starts slot 1)
// and checks the transitions land in the event log at exactly those
// times, once each, with the run deterministic.
func TestFaultOnSegmentBoundary(t *testing.T) {
	sched := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.StackDropout, Start: 6, Dur: 6}, // [6 s, 12 s): exactly slots 1..
	}}
	run := func() *sim.Result {
		res, err := sim.Run(faultConfig(sched))
		if err != nil {
			t.Fatalf("boundary fault run failed: %v", err)
		}
		return res
	}
	res := run()
	var starts, ends []float64
	for _, e := range res.Events {
		switch e.Kind {
		case sim.EventFaultStart:
			starts = append(starts, e.T)
		case sim.EventFaultEnd:
			ends = append(ends, e.T)
		}
	}
	if len(starts) != 1 || starts[0] != 6 {
		t.Fatalf("fault-start events = %v, want exactly [6]", starts)
	}
	if len(ends) != 1 || ends[0] != 12 {
		t.Fatalf("fault-end events = %v, want exactly [12]", ends)
	}
	if again := run(); !reflect.DeepEqual(res, again) {
		t.Fatalf("boundary fault run nondeterministic:\n%+v\nvs\n%+v", res, again)
	}

	// A zero-length window starting on the boundary must still produce a
	// start transition (permanent fault) without breaking the run.
	permanent := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.StackDropout, Start: 6, Dur: 0},
	}}
	res2, err := sim.Run(faultConfig(permanent))
	if err != nil {
		t.Fatal(err)
	}
	if res2.FinalPolicy != "load-shed" {
		t.Fatalf("permanent boundary dropout should exhaust the chain, ended on %s", res2.FinalPolicy)
	}
}
