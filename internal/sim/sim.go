// Package sim is the trace-driven simulator of the FC-hybrid-powered
// embedded system. It expands each task slot into the exact sequence of
// piecewise-constant-current segments implied by the device power-state
// machine and the DPM decision, asks the source policy for the FC output
// over each segment, and integrates charge, fuel, and energy analytically
// (no time stepping — results are exact for the model).
package sim

import (
	"context"
	"fmt"
	"math"

	"fcdpm/internal/device"
	"fcdpm/internal/fault"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/obs"
	"fcdpm/internal/predict"
	"fcdpm/internal/storage"
	"fcdpm/internal/workload"
)

// SegmentKind identifies what the embedded system is doing during a
// segment.
type SegmentKind int

// Segment kinds, in the order they can occur within one task slot.
const (
	SegPowerDown SegmentKind = iota // entering SLEEP (τPD at IPD)
	SegSleep                        // SLEEP mode
	SegStandby                      // STANDBY mode
	SegWakeUp                       // exiting SLEEP (τWU at IWU)
	SegStartup                      // STANDBY→RUN transition at RUN current
	SegActive                       // RUN mode, task executing
	SegShutdown                     // RUN→STANDBY transition at RUN current
)

// String names the segment kind.
func (k SegmentKind) String() string {
	switch k {
	case SegPowerDown:
		return "power-down"
	case SegSleep:
		return "sleep"
	case SegStandby:
		return "standby"
	case SegWakeUp:
		return "wake-up"
	case SegStartup:
		return "startup"
	case SegActive:
		return "active"
	case SegShutdown:
		return "shutdown"
	default:
		return fmt.Sprintf("SegmentKind(%d)", int(k))
	}
}

// IdlePhase reports whether the segment belongs to the idle phase of a slot
// (FC output planned from predictions) rather than the active phase (FC
// output planned from actuals).
func (k SegmentKind) IdlePhase() bool {
	switch k {
	case SegPowerDown, SegSleep, SegStandby:
		return true
	default:
		return false
	}
}

// Segment is one constant-load interval.
type Segment struct {
	Kind SegmentKind
	Dur  float64 // seconds
	Load float64 // embedded-system current, A
}

// Piece is one constant FC-output interval within a segment, returned by a
// policy. Pieces of a segment must tile its duration exactly.
type Piece struct {
	IF  float64 // FC system output current, A
	Dur float64 // seconds
}

// SlotInfo is the context handed to policies at planning points.
type SlotInfo struct {
	// K is the slot index (0-based).
	K int
	// Sleeping is the DPM decision for this idle period.
	Sleeping bool
	// PredIdle, PredActive, PredActiveCurrent are the predictor outputs
	// for this slot (valid at PlanIdle).
	PredIdle, PredActive, PredActiveCurrent float64
	// ActualIdle, ActualActive, ActualActiveCurrent are the realized slot
	// parameters (valid at PlanActive; the task reveals its demands when
	// it arrives, per Fig 5 "using actual Ta and Ild,a").
	ActualIdle, ActualActive, ActualActiveCurrent float64
	// IdleLoad is the embedded-system current during the idle period
	// (Isdb or Islp per the sleep decision).
	IdleLoad float64
	// Charge and Cmax describe the storage element right now.
	Charge, Cmax float64
	// ChargeTarget is the Cend the policy should steer back to (the
	// paper's Cini(1) stability target).
	ChargeTarget float64
}

// Policy decides the FC system output. Implementations live in the policy
// package; they are stateful per simulation run.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Reset prepares the policy for a fresh run.
	Reset(cmax, chargeTarget float64)
	// PlanIdle is called at the start of each slot's idle period with
	// predictions only.
	PlanIdle(info SlotInfo)
	// PlanActive is called when the active period's demands are revealed
	// (just before the wake-up transition when sleeping).
	PlanActive(info SlotInfo)
	// SegmentPlan returns the FC output pieces covering the segment,
	// given the current storage charge. Piece durations must sum to
	// seg.Dur.
	SegmentPlan(seg Segment, charge float64) []Piece
}

// DPMMode selects how the device-side sleep decision is made.
type DPMMode int

// Device-side DPM modes.
const (
	// DPMPredictive sleeps when the predicted idle period meets the
	// break-even time (the paper's policy, Fig 5).
	DPMPredictive DPMMode = iota
	// DPMNeverSleep keeps the device in STANDBY through every idle
	// period.
	DPMNeverSleep
	// DPMAlwaysSleep sleeps on every idle period regardless of length.
	DPMAlwaysSleep
	// DPMOracle sleeps exactly when the *actual* idle period meets the
	// break-even time.
	DPMOracle
	// DPMTimeout is the classic reactive policy: the device waits in
	// STANDBY for Config.Timeout seconds and sleeps only if the idle
	// period outlasts the timeout. No prediction is involved in the
	// sleep decision itself (source policies still receive predictions).
	DPMTimeout
)

// String names the DPM mode.
func (m DPMMode) String() string {
	switch m {
	case DPMPredictive:
		return "predictive"
	case DPMNeverSleep:
		return "never-sleep"
	case DPMAlwaysSleep:
		return "always-sleep"
	case DPMOracle:
		return "oracle-sleep"
	case DPMTimeout:
		return "timeout"
	default:
		return fmt.Sprintf("DPMMode(%d)", int(m))
	}
}

// TimeoutAdapter serves per-slot timeouts for DPMTimeout and learns from
// realized idle lengths (see the stochdpm package).
type TimeoutAdapter interface {
	// NextTimeout returns the dwell to use for the upcoming idle period.
	NextTimeout() float64
	// Observe feeds the realized idle length after the slot completes.
	Observe(idle float64)
}

// Config assembles one simulation run.
type Config struct {
	Sys    *fuelcell.System
	Dev    *device.Model
	Store  storage.Storage // cloned; the original is not mutated
	Trace  *workload.Trace
	Policy Policy
	// DPM selects the device-side sleep policy (default: predictive).
	DPM DPMMode
	// Timeout is the STANDBY dwell before sleeping under DPMTimeout, in
	// seconds. It defaults to the device break-even time, the classic
	// 2-competitive choice.
	Timeout float64
	// TimeoutAdapter, when set with DPMTimeout, supplies a fresh timeout
	// before each slot and is fed the realized idle length afterwards —
	// the hook for distribution-learning (stochastic-control) policies.
	TimeoutAdapter TimeoutAdapter
	// IdlePredictor, ActivePredictor, CurrentPredictor forecast the slot
	// parameters. Nil fields get exponential-average defaults with
	// ρ = σ = 0.5 seeded from the device break-even time and the first
	// slot's values.
	IdlePredictor, ActivePredictor, CurrentPredictor predict.Predictor
	// RecordProfile enables per-piece current/charge traces in the
	// result (needed for Fig 7; off for bulk sweeps).
	RecordProfile bool
	// RecordSlots enables the per-slot audit log in the result — the
	// slot-level view of what the policy decided and what it cost.
	RecordSlots bool
	// Record selects how much per-run history the simulator keeps,
	// overriding the two booleans above when not RecordAuto. Fuel-only
	// runs (experiment comparisons, the server cache path) skip every
	// Profile/Charges/SlotLog append — the steady-state zero-allocation
	// path of Runner.
	Record RecordLevel
	// SlewRate limits how fast the FC system output can change, in amps
	// per second; 0 means ideal (instantaneous) steps. Real fuel-flow
	// controllers ramp: the blower, pump, and stack gas dynamics give
	// seconds-scale settling. Load-following policies pay for every ramp
	// (the storage must cover the tracking error); flat-output policies
	// barely notice — an FC-DPM advantage the paper's ideal-source model
	// hides.
	SlewRate float64
	// Faults, when non-nil, injects the scheduled perturbations into the
	// fuel-cell / storage / workload models mid-run. Integration splits
	// exactly at fault boundaries, so results stay analytical and
	// seed-reproducible.
	Faults *fault.Schedule
	// FaultSeed drives the sensor-noise stream of the fault injector.
	FaultSeed uint64
	// Fallbacks is the graceful-degradation chain the supervisor walks
	// when invariants trip: Policy, then each fallback in order, then an
	// implicit last-resort load-shed stage. Degradation is one-way.
	Fallbacks []Policy
	// Supervisor tunes the run-time watchdog (see SupervisorConfig). With
	// the zero value, supervision arms automatically when Faults or
	// Fallbacks are configured.
	Supervisor SupervisorConfig
	// Metrics, when non-nil, receives one RecordRun per completed run:
	// slots simulated, fuel consumed, memo hit/miss deltas, and wall
	// time. Recording is a handful of atomic adds after the run — the
	// zero-allocation hot path is untouched.
	Metrics *obs.SimMetrics
}

// validate checks the configuration.
func (c *Config) validate() error {
	switch {
	case c.Sys == nil:
		return fmt.Errorf("sim: nil fuel-cell system")
	case c.Dev == nil:
		return fmt.Errorf("sim: nil device model")
	case c.Store == nil:
		return fmt.Errorf("sim: nil storage")
	case c.Trace == nil || c.Trace.Len() == 0:
		return fmt.Errorf("sim: empty trace")
	case c.Policy == nil:
		return fmt.Errorf("sim: nil policy")
	}
	if err := c.Dev.Validate(); err != nil {
		return err
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	for i, p := range c.Fallbacks {
		if p == nil {
			return fmt.Errorf("sim: nil fallback policy at index %d", i)
		}
	}
	sup := c.Supervisor
	if math.IsNaN(sup.DeficitLimit) || math.IsInf(sup.DeficitLimit, 0) || sup.DeficitLimit < 0 {
		return fmt.Errorf("sim: bad supervisor deficit limit %v", sup.DeficitLimit)
	}
	if math.IsNaN(sup.Tolerance) || math.IsInf(sup.Tolerance, 0) || sup.Tolerance < 0 {
		return fmt.Errorf("sim: bad supervisor tolerance %v", sup.Tolerance)
	}
	return c.Trace.Validate()
}

// ProfilePoint is one step of the recorded current profile.
type ProfilePoint struct {
	T    float64 // segment-piece start time, s
	Load float64 // embedded-system current, A
	IF   float64 // FC system output current, A
}

// ChargePoint is one sample of the storage trajectory.
type ChargePoint struct {
	T float64
	Q float64
}

// Result summarizes one simulation run.
type Result struct {
	Policy string
	// Fuel is the total stack charge consumed, ∫Ifc dt in A-s —
	// proportional to hydrogen consumed; the paper's objective.
	Fuel float64
	// Duration is the simulated wall time in seconds (trace time plus
	// sleep-transition overheads).
	Duration float64
	// DeliveredEnergy is the energy the FC system output supplied (J);
	// LoadEnergy is what the embedded system consumed (J). They differ
	// by storage round-tripping, bleed, and deficit.
	DeliveredEnergy, LoadEnergy float64
	// Bled is charge dissipated through the bleeder by-pass (A-s);
	// Deficit is unmet load charge (A-s, should be ~0 for sane policies).
	Bled, Deficit float64
	// Slots and Sleeps count task slots and sleep decisions.
	Slots, Sleeps int
	// FuelByKind breaks the fuel total down by what the device was doing
	// when it was burned.
	FuelByKind map[SegmentKind]float64
	// SetpointChanges counts how often the FC output set point moved —
	// each change exercises the fuel-flow actuator (valve, blower), so
	// policies that re-command constantly age the plant faster.
	SetpointChanges int
	// Shed is load charge intentionally not served while the supervisor's
	// last-resort load-shed stage was active (A-s). Deficit, by contrast,
	// is unmet load that no stage decided to drop.
	Shed float64
	// Fallbacks counts supervisor policy downgrades; FinalPolicy names
	// the policy active when the run ended (equal to Policy unless the
	// run degraded).
	Fallbacks   int
	FinalPolicy string
	// Events is the run audit log: fault onsets/clears, invariant
	// violations, and fallbacks, in time order.
	Events []RunEvent
	// LostCharge is storage charge destroyed by capacity-fade faults
	// (A-s).
	LostCharge float64
	// FinalCharge is the storage charge at the end of the run.
	FinalCharge float64
	// Profile and Charges are recorded when Config.RecordProfile is set.
	Profile []ProfilePoint
	Charges []ChargePoint
	// SlotLog is recorded when Config.RecordSlots is set.
	SlotLog []SlotRecord
}

// SlotRecord is one task slot's audit entry.
type SlotRecord struct {
	K                      int
	Idle, Active           float64
	ActiveCurrent          float64
	Slept                  bool
	PredIdle               float64 // what the predictor believed at idle start
	ChargeStart, ChargeEnd float64
	Fuel                   float64 // stack A-s burned during the slot
}

// Reset clears the result for reuse, keeping the backing storage of its
// slices and map so a Runner's steady-state runs allocate nothing.
func (r *Result) Reset() {
	m := r.FuelByKind
	if m != nil {
		clear(m)
	}
	*r = Result{
		FuelByKind: m,
		Events:     r.Events[:0],
		Profile:    r.Profile[:0],
		Charges:    r.Charges[:0],
		SlotLog:    r.SlotLog[:0],
	}
}

// AvgFuelRate returns the mean stack current over the run (A).
func (r *Result) AvgFuelRate() float64 {
	if r.Duration == 0 {
		return 0
	}
	return r.Fuel / r.Duration
}

// Lifetime returns how long the system would run on fuelBudget amp-seconds
// of stack charge at this run's average fuel rate. Infinite when the run
// consumed no fuel.
func (r *Result) Lifetime(fuelBudget float64) float64 {
	rate := r.AvgFuelRate()
	if rate == 0 {
		return math.Inf(1)
	}
	return fuelBudget / rate
}

// NormalizedFuel returns this run's fuel relative to a baseline run over
// the same trace — the paper's Tables 2 and 3 metric. Fuel totals are
// normalized by duration first so that policies with different transition
// overheads compare fairly.
func (r *Result) NormalizedFuel(baseline *Result) float64 {
	base := baseline.AvgFuelRate()
	if base == 0 {
		return math.Inf(1)
	}
	return r.AvgFuelRate() / base
}

// Run executes the simulation and returns the result.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes the simulation under a context: cancellation or
// deadline expiry stops the run between slots with a CanceledError that
// records the simulated time reached.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	r, err := NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	return r.RunContext(ctx)
}

// numSegmentKinds sizes the per-kind fuel accumulator array.
const numSegmentKinds = int(SegShutdown) + 1

// state carries one run's mutable simulation state plus the scratch
// buffers a Runner reuses across runs. One-time setup lives in init,
// per-run rewinding in reset.
type state struct {
	cfg   Config
	store storage.Storage
	res   *Result
	t     float64
	tbe   float64

	predIdle, predActive, predCurrent predict.Predictor
	chargeTarget                      float64

	// lastIF tracks the FC output for slew-rate limiting; negative means
	// "not yet set" (the first piece starts wherever it asks).
	lastIF float64

	// pol is the currently active policy; chain is the full degradation
	// sequence [Config.Policy, fallbacks..., load-shed] and chainIdx the
	// position of pol within it. planInto is pol's optional allocation-free
	// planning face, re-resolved whenever pol changes.
	pol      Policy
	planInto PiecePlanner
	chain    []Policy
	chainIdx int
	// tripDeficit accumulates unmet load since the last degradation; the
	// supervisor falls back when it exceeds the deficit budget.
	tripDeficit float64

	// inj and fade are set only under fault injection.
	inj  *fault.Injector
	fade *fault.FadeStore

	// Reuse machinery (see Runner). base is the working storage clone,
	// snap a pristine snapshot base rewinds to; baseTimeout is the
	// resolved Timeout before any adapter overwrote it; polName caches
	// Config.Policy.Name() (a Name() may format). recProfile/recSlots are
	// the Record level resolved against the legacy booleans. fuelKind
	// accumulates per-kind fuel in an array so the hot loop never touches
	// the result map; memo caches the Eq 3/4 evaluations.
	base        storage.Storage
	snap        storage.Storage
	baseTimeout float64
	polName     string
	recProfile  bool
	recSlots    bool
	memo        *fuelcell.Memo
	fuelKind    [numSegmentKinds]float64
	fuelSeen    [numSegmentKinds]bool

	// Fixed-size scratch buffers: policies return at most a handful of
	// pieces per segment (2 today; the buffer grows transparently if
	// exceeded). dec is the per-slot decode scratch; batch lanes that
	// share their decode inputs read another state's decode instead.
	pieceBuf [8]Piece
	dec      slotDecode
}

// init performs the one-time setup: every allocation a run needs happens
// here so reset and the run itself can stay allocation-free.
func (st *state) init(cfg Config) {
	st.cfg = cfg
	st.base = cfg.Store.Clone()
	st.snap = cfg.Store.Clone()
	st.res = &Result{FuelByKind: make(map[SegmentKind]float64, numSegmentKinds)}
	st.polName = cfg.Policy.Name()
	st.tbe = cfg.Dev.BreakEven()
	if st.cfg.Timeout <= 0 {
		st.cfg.Timeout = st.tbe
	}
	st.baseTimeout = st.cfg.Timeout
	st.chargeTarget = st.base.Charge() // the paper's Cini(1) stability target
	switch cfg.Record {
	case RecordFuelOnly:
		st.recProfile, st.recSlots = false, false
	case RecordFull:
		st.recProfile, st.recSlots = true, true
	default:
		st.recProfile, st.recSlots = cfg.RecordProfile, cfg.RecordSlots
	}
	first := cfg.Trace.Slots[0]
	st.predIdle = cfg.IdlePredictor
	if st.predIdle == nil {
		st.predIdle = predict.MustExpAverage(0.5, st.tbe)
	}
	st.predActive = cfg.ActivePredictor
	if st.predActive == nil {
		st.predActive = predict.MustExpAverage(0.5, first.Active)
	}
	st.predCurrent = cfg.CurrentPredictor
	if st.predCurrent == nil {
		st.predCurrent = predict.MustExpAverage(0.5, first.ActiveCurrent)
	}
	st.memo = fuelcell.NewMemo(cfg.Sys)
	if cfg.Faults != nil && !cfg.Faults.Empty() {
		// Built once; reset rewinds both in place so faulted runs stay on
		// the allocation-free reuse path.
		st.inj = fault.NewInjector(cfg.Faults, cfg.FaultSeed)
		st.fade = fault.NewFadeStore(st.base)
	}
	st.chain = make([]Policy, 0, len(cfg.Fallbacks)+2)
	st.chain = append(st.chain, cfg.Policy)
	st.chain = append(st.chain, cfg.Fallbacks...)
	st.chain = append(st.chain, loadShed{sys: cfg.Sys})
}

// reset rewinds the state for a fresh run, allocation-free: under fault
// injection the injector and fade wrapper rewind in place so the noise
// stream and fade accounting restart deterministically without rebuilds.
func (st *state) reset() {
	st.res.Reset()
	st.res.Policy = st.polName
	st.t = 0
	st.lastIF = -1
	st.tripDeficit = 0
	st.cfg.Timeout = st.baseTimeout
	if r, ok := st.base.(storage.Restorer); !ok || !r.RestoreFrom(st.snap) {
		st.base = st.snap.Clone()
	}
	st.store = st.base
	if st.inj != nil {
		st.inj.Reset()
		// st.base may have been replaced by a fresh Clone above (when the
		// storage kind implements no Restorer), so re-point the wrapper.
		st.fade.Reset(st.base)
		st.store = st.fade
	}
	st.predIdle.Reset()
	st.predActive.Reset()
	st.predCurrent.Reset()
	st.fuelKind = [numSegmentKinds]float64{}
	st.fuelSeen = [numSegmentKinds]bool{}
	st.setPolicy(0)
	st.pol.Reset(st.store.Capacity(), st.chargeTarget)
}

// setPolicy activates chain[i] and re-resolves its planning fast path.
func (st *state) setPolicy(i int) {
	st.chainIdx = i
	st.pol = st.chain[i]
	st.planInto, _ = st.pol.(PiecePlanner)
}

// run executes the trace and finalizes the result.
func (st *state) run(ctx context.Context) (*Result, error) {
	for k, slot := range st.cfg.Trace.Slots {
		if err := ctx.Err(); err != nil {
			return nil, &CanceledError{T: st.t, Slot: k, Err: err}
		}
		if err := st.runSlot(k, slot); err != nil {
			return nil, err
		}
	}
	return st.finalize(), nil
}

// finalize folds the accumulators into the result after the last slot.
func (st *state) finalize() *Result {
	st.drainFaults()
	for k, seen := range st.fuelSeen {
		if seen {
			st.res.FuelByKind[SegmentKind(k)] = st.fuelKind[k]
		}
	}
	st.res.FinalCharge = st.store.Charge()
	if st.chainIdx == 0 {
		st.res.FinalPolicy = st.polName
	} else {
		st.res.FinalPolicy = st.pol.Name()
	}
	if st.fade != nil {
		st.res.LostCharge = st.fade.Lost
	}
	return st.res
}

// sleepDecision applies the configured DPM mode at planning time. Under
// DPMTimeout the *execution* decision is reactive (made inside the idle
// period once the timeout elapses); the planning decision returned here is
// the best forecast of it.
func (s *state) sleepDecision(predIdle, actualIdle float64) bool {
	switch s.cfg.DPM {
	case DPMNeverSleep:
		return false
	case DPMAlwaysSleep:
		return true
	case DPMOracle:
		return actualIdle >= s.tbe
	case DPMTimeout:
		return predIdle > s.cfg.Timeout
	default:
		return predIdle >= s.tbe
	}
}

// slotDecode is the trace-side expansion of one slot: the predictor
// outputs, the sleep decision, the planner's idle-load view, and the
// segment sequences — everything derived from the trace, the device
// model, the DPM mode, and the predictors, but nothing that depends on
// the storage level or the source policy. The scalar path decodes into
// its own scratch; batch lanes whose decode inputs match share one
// decode per slot and hand it to every lane before advancing.
type slotDecode struct {
	// info carries K, Sleeping (the planning decision), the predictions,
	// and IdleLoad. The storage-dependent fields (Charge, Cmax,
	// ChargeTarget) are filled per lane by runDecoded.
	info       SlotInfo
	didSleep   bool
	idleSegs   []Segment
	activeSegs []Segment

	// Fixed scratch arrays backing the segment slices: a slot expands to
	// at most 3 idle and 4 active segments, so decoding never allocates.
	idleArr   [3]Segment
	activeArr [4]Segment
}

// decodeSlot expands one slot into d. It reads the predictors and — under
// DPMTimeout with an adapter — refreshes cfg.Timeout, but leaves the
// storage, policy, and result untouched.
func (s *state) decodeSlot(k int, slot workload.Slot, d *slotDecode) {
	dev := s.cfg.Dev
	d.info = SlotInfo{
		K:                 k,
		PredIdle:          s.predIdle.Predict(),
		PredActive:        s.predActive.Predict(),
		PredActiveCurrent: s.predCurrent.Predict(),
	}
	if s.cfg.DPM == DPMTimeout && s.cfg.TimeoutAdapter != nil {
		s.cfg.Timeout = s.cfg.TimeoutAdapter.NextTimeout()
	}
	planSleep := s.sleepDecision(d.info.PredIdle, slot.Idle)
	d.didSleep = planSleep
	if s.cfg.DPM == DPMTimeout {
		// Reactive execution: sleep happens only if the idle period
		// actually outlasts the timeout dwell.
		d.didSleep = slot.Idle > s.cfg.Timeout
	}
	d.info.Sleeping = planSleep
	d.info.IdleLoad = dev.IdleCurrent(planSleep)
	if s.cfg.DPM == DPMTimeout && planSleep && d.info.PredIdle > 0 {
		// Timeout idles are a STANDBY dwell followed by SLEEP; give the
		// planner the charge-equivalent average current.
		dwell := math.Min(s.cfg.Timeout, d.info.PredIdle)
		d.info.IdleLoad = (dev.Isdb*dwell + dev.Islp*(d.info.PredIdle-dwell)) / d.info.PredIdle
	}

	// Idle phase. The segment slices are backed by fixed scratch arrays
	// sized for the worst-case slot shape, so building them never
	// allocates.
	idleSegs := d.idleArr[:0]
	switch {
	case s.cfg.DPM == DPMTimeout:
		dwell := math.Min(s.cfg.Timeout, slot.Idle)
		if dwell > 0 {
			idleSegs = append(idleSegs, Segment{SegStandby, dwell, dev.Isdb})
		}
		if d.didSleep {
			pd := math.Min(dev.TauPD, slot.Idle-dwell)
			if pd > 0 {
				idleSegs = append(idleSegs, Segment{SegPowerDown, pd, dev.IPD})
			}
			if rest := slot.Idle - dwell - pd; rest > 0 {
				idleSegs = append(idleSegs, Segment{SegSleep, rest, dev.Islp})
			}
		}
	case d.didSleep:
		pd := math.Min(dev.TauPD, slot.Idle)
		if pd > 0 {
			idleSegs = append(idleSegs, Segment{SegPowerDown, pd, dev.IPD})
		}
		if rest := slot.Idle - pd; rest > 0 {
			idleSegs = append(idleSegs, Segment{SegSleep, rest, dev.Islp})
		}
	case slot.Idle > 0:
		idleSegs = append(idleSegs, Segment{SegStandby, slot.Idle, dev.Isdb})
	}
	d.idleSegs = idleSegs

	// Active phase: wake-up (after a real sleep), startup, the task
	// itself, shutdown.
	activeSegs := d.activeArr[:0]
	if d.didSleep && dev.TauWU > 0 {
		activeSegs = append(activeSegs, Segment{SegWakeUp, dev.TauWU, dev.IWU})
	}
	if dev.TauSR > 0 {
		activeSegs = append(activeSegs, Segment{SegStartup, dev.TauSR, slot.ActiveCurrent})
	}
	if slot.Active > 0 {
		activeSegs = append(activeSegs, Segment{SegActive, slot.Active, slot.ActiveCurrent})
	}
	if dev.TauRS > 0 {
		activeSegs = append(activeSegs, Segment{SegShutdown, dev.TauRS, slot.ActiveCurrent})
	}
	d.activeSegs = activeSegs
}

// runDecoded simulates one task slot from its decode. The decode may come
// from this lane's own decodeSlot call or from a batch sibling with
// identical decode inputs; either way the lane trains its own predictors
// on the realized slot, so every lane of a shared-decode group holds
// identical predictor state and any of them can produce the next slot's
// decode — which is what makes the sharing byte-exact even when the
// producing lane drops out mid-run.
func (s *state) runDecoded(k int, slot workload.Slot, d *slotDecode) error {
	fuelBefore := s.res.Fuel
	chargeBefore := s.store.Charge()
	info := d.info
	info.Cmax = s.store.Capacity()
	info.ChargeTarget = s.chargeTarget
	info.Charge = s.store.Charge()
	if d.didSleep {
		s.res.Sleeps++
	}
	s.pol.PlanIdle(info)
	for _, seg := range d.idleSegs {
		if err := s.applySegment(seg); err != nil {
			return fmt.Errorf("slot %d idle: %w", k, err)
		}
	}

	// Active phase: the arriving task reveals its actual demands. The
	// Sleeping flag now reflects what actually happened, since the
	// wake-up transition occurs only after a real sleep.
	info.Sleeping = d.didSleep
	info.ActualIdle = slot.Idle
	info.ActualActive = slot.Active
	info.ActualActiveCurrent = slot.ActiveCurrent
	info.Charge = s.store.Charge()
	s.pol.PlanActive(info)
	for _, seg := range d.activeSegs {
		if err := s.applySegment(seg); err != nil {
			return fmt.Errorf("slot %d active: %w", k, err)
		}
	}

	// Train the predictors on the realized slot. Under a sensor-noise
	// fault the predictors (and the timeout learner) see corrupted
	// measurements; the physical simulation above always uses the truth.
	obsIdle, obsActive, obsCurrent := slot.Idle, slot.Active, slot.ActiveCurrent
	if s.inj != nil {
		if sigma := s.inj.StateAt(s.t).SensorSigma; sigma > 0 {
			obsIdle = s.inj.Noisy(obsIdle, sigma)
			obsActive = s.inj.Noisy(obsActive, sigma)
			obsCurrent = s.inj.Noisy(obsCurrent, sigma)
		}
	}
	s.predIdle.Observe(obsIdle)
	s.predActive.Observe(obsActive)
	s.predCurrent.Observe(obsCurrent)
	if s.cfg.DPM == DPMTimeout && s.cfg.TimeoutAdapter != nil {
		s.cfg.TimeoutAdapter.Observe(obsIdle)
	}
	if s.recSlots {
		s.res.SlotLog = append(s.res.SlotLog, SlotRecord{
			K:             k,
			Idle:          slot.Idle,
			Active:        slot.Active,
			ActiveCurrent: slot.ActiveCurrent,
			Slept:         d.didSleep,
			PredIdle:      d.info.PredIdle,
			ChargeStart:   chargeBefore,
			ChargeEnd:     s.store.Charge(),
			Fuel:          s.res.Fuel - fuelBefore,
		})
	}
	s.res.Slots++
	return nil
}

// runSlot simulates one task slot: decode, then execute. Batch lanes call
// the two halves separately so fingerprint-equal lanes share one decode.
func (s *state) runSlot(k int, slot workload.Slot) error {
	s.decodeSlot(k, slot, &s.dec)
	return s.runDecoded(k, slot, &s.dec)
}

// applySegment integrates one segment under the active policy's piece
// plan. In supervised runs an invalid plan degrades to the next policy in
// the chain and replans the same segment; invariant violations detected
// after integration degrade for future segments. Unsupervised runs keep
// the classic fail-fast behavior and return a typed *InvariantError.
func (s *state) applySegment(seg Segment) error {
	if seg.Dur <= 0 {
		return nil
	}
	for {
		// Prefer the policy's allocation-free face: the plan is appended
		// into a scratch buffer reused across segments. Policies without
		// one fall back to the classic allocating SegmentPlan.
		var pieces []Piece
		if s.planInto != nil {
			pieces = s.planInto.SegmentPlanInto(seg, s.store.Charge(), s.pieceBuf[:0])
		} else {
			pieces = s.pol.SegmentPlan(seg, s.store.Charge())
		}
		inv := s.checkPieces(seg, pieces)
		if inv == nil {
			for _, p := range pieces {
				if p.Dur == 0 {
					continue
				}
				s.applyPiece(seg, p)
			}
			break
		}
		if !s.supervised() {
			return inv
		}
		s.logEvent(EventInvariant, inv.Detail)
		if !s.degrade("invalid segment plan") {
			// The last-resort stage itself misplanned; ride the segment
			// out at zero output rather than looping.
			s.integrateConst(seg, 0, seg.Dur)
			break
		}
	}
	s.drainFaults()
	if inv := s.postChecks(); inv != nil {
		if !s.supervised() {
			return inv
		}
		s.logEvent(EventInvariant, inv.Detail)
		s.degrade("invariant " + inv.Check + " violated")
	} else if s.supervised() && !s.shedding() && s.tripDeficit > s.deficitLimit() {
		s.degrade(fmt.Sprintf("unmet load %.3g A-s exceeds budget %.3g A-s",
			s.tripDeficit, s.deficitLimit()))
	}
	return nil
}

// applyPiece integrates one constant-output piece, inserting a slew ramp
// from the previous output level when a rate limit is configured.
func (s *state) applyPiece(seg Segment, p Piece) {
	if s.lastIF >= 0 && p.IF != s.lastIF {
		s.res.SetpointChanges++
	}
	rate := s.cfg.SlewRate
	remain := p.Dur
	if rate > 0 && s.lastIF >= 0 && s.lastIF != p.IF {
		delta := p.IF - s.lastIF
		rampDur := math.Abs(delta) / rate
		if rampDur >= remain {
			// The whole piece is spent ramping; the target is not
			// reached.
			reached := s.lastIF + math.Copysign(rate*remain, delta)
			s.integrateRamp(seg, s.lastIF, reached, remain)
			s.lastIF = reached
			return
		}
		s.integrateRamp(seg, s.lastIF, p.IF, rampDur)
		remain -= rampDur
	}
	s.lastIF = p.IF
	if remain > 0 {
		s.integrateConst(seg, p.IF, remain)
	}
}

// integrateConst advances the simulation by dur seconds at a constant FC
// output iF against the segment load. Under fault injection it splits the
// interval exactly at fault boundaries so each step sees one composed
// fault state and the analytical integration stays exact.
func (s *state) integrateConst(seg Segment, iF, dur float64) {
	if s.inj == nil {
		s.integrateStep(seg, iF, dur, fault.Nominal())
		return
	}
	for dur > 0 {
		st := s.inj.StateAt(s.t)
		step := dur
		if next := s.inj.NextBoundary(s.t); next-s.t < step {
			step = next - s.t
			if step <= 0 || step < 1e-12*math.Max(1, s.t) {
				// Floating-point guard: a boundary indistinguishable from
				// the current instant cannot split the interval.
				step = dur
			}
		}
		if s.fade != nil {
			s.fade.SetScale(st.CapacityScale)
		}
		s.integrateStep(seg, iF, step, st)
		dur -= step
	}
}

// integrateStep is one constant interval under one fault state: the FC
// delivers the requested output capped by the derated stack ceiling, the
// load is scaled by any active surge, and fuel cost is inflated by any
// efficiency degradation.
func (s *state) integrateStep(seg Segment, iF, dur float64, st fault.State) {
	load := seg.Load * st.LoadScale
	deliver := iF
	if st.DeliveryScale < 1 {
		if ceil := s.cfg.Sys.MaxOutput * st.DeliveryScale; deliver > ceil {
			deliver = ceil
		}
	}
	if s.recProfile {
		s.res.Profile = append(s.res.Profile, ProfilePoint{T: s.t, Load: load, IF: deliver})
		s.res.Charges = append(s.res.Charges, ChargePoint{T: s.t, Q: s.store.Charge()})
	}
	flow := s.store.Apply(deliver-load, dur)
	fuel := s.memo.Fuel(deliver, dur) * st.FuelScale
	s.res.Fuel += fuel
	s.fuelKind[seg.Kind] += fuel
	s.fuelSeen[seg.Kind] = true
	s.res.DeliveredEnergy += s.cfg.Sys.VF * deliver * dur
	s.res.LoadEnergy += s.cfg.Sys.VF * load * dur
	s.res.Bled += flow.Bled
	if flow.Deficit > 0 {
		if s.shedding() {
			s.res.Shed += flow.Deficit
		} else {
			s.res.Deficit += flow.Deficit
			s.tripDeficit += flow.Deficit
		}
	}
	s.t += dur
	s.res.Duration = s.t
}

// integrateRamp approximates a linear output ramp with midpoint sub-steps.
// Eight sub-steps keep the fuel error of the convex Ifc map under 0.1 %
// for any ramp within the load-following range.
func (s *state) integrateRamp(seg Segment, from, to, dur float64) {
	const sub = 8
	h := dur / sub
	for i := 0; i < sub; i++ {
		mid := from + (to-from)*(float64(i)+0.5)/sub
		s.integrateConst(seg, mid, h)
	}
}
