package sim

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"strings"
	"time"

	"fcdpm/internal/fuelcell"
	"fcdpm/internal/obs"
	"fcdpm/internal/workload"
)

// BatchKeyer is the optional grouping face of a policy, predictor, or
// storage element. BatchKey returns a stable identity string: two
// components may return equal keys only if they start every run in
// identical states and evolve identically under identical inputs, so two
// batch lanes whose components all agree are guaranteed to produce
// bit-identical simulations. Components without a BatchKey still run in a
// batch — each such lane simply executes on its own, ungrouped.
type BatchKeyer interface {
	BatchKey() string
}

// TimeoutAdapterCloner is the optional cloning face of a TimeoutAdapter:
// CloneTimeoutAdapter returns an independent adapter with identical
// learned state, so each lane of a batched timeout study can own its
// adaptation instead of forcing the whole sweep serial.
type TimeoutAdapterCloner interface {
	CloneTimeoutAdapter() TimeoutAdapter
}

// Lane is one scenario variant of a batch.
type Lane struct {
	// Cfg is the lane's simulation configuration. All lanes of a batch
	// must share one trace (pointer-equal or slot-for-slot equal).
	Cfg Config
	// Key, when non-empty, asserts that two lanes with equal keys
	// describe the *same simulation* — typically the content address a
	// scenario spec already carries (config.Scenario.CacheKey). Equal
	// keys group lanes even when their components expose no BatchKey;
	// an incorrect assertion yields silently wrong results, so only
	// derive keys from canonical spec content.
	Key string
}

// LaneResult is one lane's outcome. Res aliases the BatchRunner's
// internal buffers and is valid until the next Run call, mirroring the
// scalar Runner contract; it is nil when Err is set.
type LaneResult struct {
	Res *Result
	Err error
}

// batchLane is the per-lane bookkeeping: which run group executes it and
// how much of the group's recording it keeps.
type batchLane struct {
	res        *Result
	group      int
	recProfile bool
	recSlots   bool
	metrics    *obs.SimMetrics
}

// batchGroup is one executing simulation: the leader state plus every
// lane it stands in for. Groups are formed at construction from the
// lanes' dynamics fingerprints and never split mid-run — a lane that can
// diverge from its siblings (a timeout adapter, an unkeyed component)
// gets a group of its own up front and follows the plain scalar path.
type batchGroup struct {
	st      *state
	members []int // lane indices, in submission order
	err     error
}

// batchDecode is one shared trace decode: the groups whose predictors,
// device model, and DPM mode agree, so each slot is expanded once and
// handed to all of them before advancing.
type batchDecode struct {
	groups []int // group indices, in construction order
	dec    slotDecode
}

// BatchRunner executes K scenario variants in lockstep over one trace
// walk. Lanes whose dynamics fingerprints agree form a run group: the
// group leader simulates once — at the union of the members' record
// levels — and every member receives a projected copy of the result, so
// N identical-dynamics variants (ablation siblings differing only in
// recording, coalesced server requests, devicesim fleets) cost one
// simulation instead of N. Groups whose trace-side inputs also agree
// share the per-slot decode (predictions, sleep decision, segment
// expansion). Lanes that can diverge — per-lane timeout adapters, fault
// schedules with distinct identities, components without a BatchKey —
// are their own group from the start and execute on the existing scalar
// path, so batching never changes a single bit of any lane's Result
// relative to a sequential Runner run of the same configuration.
//
// Like Runner, a BatchRunner is reusable and not safe for concurrent
// use; steady-state Run calls on fault-free lanes allocate nothing.
type BatchRunner struct {
	// Metrics, when non-nil, receives one RecordBatch per completed run:
	// the lane width and how many slot executions follower lanes
	// inherited from their group leaders. Per-lane Config.Metrics sinks
	// still receive their RecordRun as if the lanes had run sequentially
	// (memo deltas are batch-wide and folded into the first instrumented
	// lane; wall time is the batch total split evenly across lanes).
	Metrics *obs.BatchMetrics

	lanes   []batchLane
	groups  []batchGroup
	decodes []batchDecode
	trace   *workload.Trace
	results []LaneResult
	memos   []*fuelcell.Memo
}

// NewBatchRunner validates the lanes, groups them, and builds the
// reusable run states. The configurations (including the shared trace)
// must not be mutated while the BatchRunner is in use.
func NewBatchRunner(lanes []Lane) (*BatchRunner, error) {
	if len(lanes) == 0 {
		return nil, fmt.Errorf("sim: batch with no lanes")
	}
	for i := range lanes {
		if err := lanes[i].Cfg.validate(); err != nil {
			return nil, fmt.Errorf("sim: batch lane %d: %w", i, err)
		}
	}
	trace := lanes[0].Cfg.Trace
	for i := 1; i < len(lanes); i++ {
		if !sameTrace(trace, lanes[i].Cfg.Trace) {
			return nil, fmt.Errorf("sim: batch lane %d trace differs from lane 0; a batch walks one trace", i)
		}
	}

	b := &BatchRunner{
		lanes:   make([]batchLane, len(lanes)),
		trace:   trace,
		results: make([]LaneResult, len(lanes)),
	}

	// Group lanes by dynamics fingerprint. An empty fingerprint means
	// "ungroupable": the lane gets a singleton group and runs scalar.
	groupOf := make(map[string]int, len(lanes))
	for i := range lanes {
		cfg := &lanes[i].Cfg
		key := lanes[i].Key
		if key != "" {
			key = "lane-key:" + key
		} else {
			key, _ = dynamicsKey(cfg)
		}
		gi := -1
		if key != "" {
			if prev, ok := groupOf[key]; ok {
				gi = prev
			}
		}
		if gi < 0 {
			gi = len(b.groups)
			b.groups = append(b.groups, batchGroup{st: &state{}})
			b.groups[gi].st.init(*cfg)
			if key != "" {
				groupOf[key] = gi
			}
		}
		g := &b.groups[gi]
		g.members = append(g.members, i)

		recProfile, recSlots := resolveRecord(cfg)
		b.lanes[i] = batchLane{
			res:        &Result{FuelByKind: make(map[SegmentKind]float64, numSegmentKinds)},
			group:      gi,
			recProfile: recProfile,
			recSlots:   recSlots,
			metrics:    cfg.Metrics,
		}
		// The leader records the union of its members' levels; each
		// member's projection keeps only what its own level asked for.
		g.st.recProfile = g.st.recProfile || recProfile
		g.st.recSlots = g.st.recSlots || recSlots
	}

	// Lanes of different groups run interleaved in lockstep, so a
	// mutable collaborator shared across two executing configurations
	// would corrupt both. Within one group only the leader's objects
	// ever execute, so sharing with (or among) followers is harmless.
	seen := make(map[any]int)
	for gi := range b.groups {
		cfg := &b.groups[gi].st.cfg
		if err := checkShared(seen, gi, cfg.Policy, "policy"); err != nil {
			return nil, err
		}
		for _, p := range cfg.Fallbacks {
			if err := checkShared(seen, gi, p, "fallback policy"); err != nil {
				return nil, err
			}
		}
		for _, pr := range []any{cfg.IdlePredictor, cfg.ActivePredictor, cfg.CurrentPredictor} {
			if err := checkShared(seen, gi, pr, "predictor"); err != nil {
				return nil, err
			}
		}
		if err := checkShared(seen, gi, cfg.TimeoutAdapter, "timeout adapter"); err != nil {
			return nil, err
		}
	}

	// Share one fuel-map memo per fuel-cell system across groups: the
	// memo is exact-bit-keyed, so a hit returns precisely what a miss
	// would compute and sharing cannot perturb any lane.
	memoBySys := make(map[*fuelcell.System]*fuelcell.Memo)
	for gi := range b.groups {
		st := b.groups[gi].st
		if m, ok := memoBySys[st.cfg.Sys]; ok {
			st.memo = m
		} else {
			memoBySys[st.cfg.Sys] = st.memo
			b.memos = append(b.memos, st.memo)
		}
	}

	// Form decode groups among the run-group leaders.
	decodeOf := make(map[string]int)
	for gi := range b.groups {
		key, ok := decodeKey(&b.groups[gi].st.cfg)
		di := -1
		if ok {
			if prev, found := decodeOf[key]; found {
				di = prev
			}
		}
		if di < 0 {
			di = len(b.decodes)
			b.decodes = append(b.decodes, batchDecode{})
			if ok {
				decodeOf[key] = di
			}
		}
		b.decodes[di].groups = append(b.decodes[di].groups, gi)
	}
	return b, nil
}

// Lanes returns the batch width.
func (b *BatchRunner) Lanes() int { return len(b.lanes) }

// Groups returns how many distinct simulations the batch executes — the
// lane count minus the duplicates the grouping collapsed.
func (b *BatchRunner) Groups() int { return len(b.groups) }

// GroupOf returns the run-group index executing lane i, for tests and
// consumers that want to inspect the grouping.
func (b *BatchRunner) GroupOf(i int) int { return b.lanes[i].group }

// Run executes every lane over the shared trace.
func (b *BatchRunner) Run() ([]LaneResult, error) {
	return b.RunContext(context.Background())
}

// RunContext is Run under a context. Cancellation stops the walk between
// slots: every unfinished lane gets a *CanceledError and the context
// error is returned as the batch error. Per-lane simulation failures do
// not abort the batch — the failing group drops out of lockstep and its
// lanes carry the error while the rest complete.
//
// The returned slice and the *Results inside it alias the BatchRunner's
// internal buffers: they are valid until the next Run call.
func (b *BatchRunner) RunContext(ctx context.Context) ([]LaneResult, error) {
	start := time.Now()
	memoHits0, memoMisses0 := b.memoStats()
	for gi := range b.groups {
		g := &b.groups[gi]
		g.err = nil
		g.st.reset()
	}

	var planGroupHits uint64
	live := len(b.groups)
	var batchErr error
	for k, slot := range b.trace.Slots {
		if live == 0 {
			break
		}
		if err := ctx.Err(); err != nil {
			for gi := range b.groups {
				g := &b.groups[gi]
				if g.err == nil {
					g.err = &CanceledError{T: g.st.t, Slot: k, Err: err}
				}
			}
			batchErr = err
			break
		}
		for di := range b.decodes {
			d := &b.decodes[di]
			decoded := false
			for _, gi := range d.groups {
				g := &b.groups[gi]
				if g.err != nil {
					continue
				}
				if !decoded {
					// The first live group expands the slot; all lanes
					// of a decode group hold identical predictor state,
					// so the producer is interchangeable.
					g.st.decodeSlot(k, slot, &d.dec)
					decoded = true
				}
				if err := g.st.runDecoded(k, slot, &d.dec); err != nil {
					g.err = err
					live--
					continue
				}
				planGroupHits += uint64(len(g.members) - 1)
			}
		}
	}

	for gi := range b.groups {
		g := &b.groups[gi]
		if g.err == nil {
			g.st.finalize()
		}
	}
	for i := range b.lanes {
		ln := &b.lanes[i]
		g := &b.groups[ln.group]
		if g.err != nil {
			b.results[i] = LaneResult{Err: g.err}
			continue
		}
		projectResult(ln.res, g.st.res, ln.recProfile, ln.recSlots)
		b.results[i] = LaneResult{Res: ln.res}
	}

	// Per-lane metrics, as if the lanes had run sequentially: slots and
	// fuel are exact per lane; the shared memos make hit/miss deltas a
	// batch-wide quantity, folded into the first instrumented lane; wall
	// time is the batch total split evenly.
	memoHits1, memoMisses1 := b.memoStats()
	dh, dm := memoHits1-memoHits0, memoMisses1-memoMisses0
	wall := time.Since(start) / time.Duration(len(b.lanes))
	for i := range b.lanes {
		ln := &b.lanes[i]
		if ln.metrics == nil || b.results[i].Err != nil {
			continue
		}
		res := b.results[i].Res
		ln.metrics.RecordRun(res.Slots, res.Fuel, dh, dm, wall)
		dh, dm = 0, 0
	}
	b.Metrics.RecordBatch(len(b.lanes), planGroupHits)
	return b.results, batchErr
}

// memoStats sums hit/miss counters across the batch's distinct memos.
func (b *BatchRunner) memoStats() (hits, misses uint64) {
	for _, m := range b.memos {
		h, ms := m.Stats()
		hits += h
		misses += ms
	}
	return hits, misses
}

// resolveRecord mirrors state.init's record-level resolution without
// building a state.
func resolveRecord(cfg *Config) (profile, slots bool) {
	switch cfg.Record {
	case RecordFuelOnly:
		return false, false
	case RecordFull:
		return true, true
	default:
		return cfg.RecordProfile, cfg.RecordSlots
	}
}

// projectResult copies a group leader's result into a lane's buffer,
// keeping only the history the lane's own record level asked for. The
// copy reuses dst's backing storage, so steady-state batch runs allocate
// nothing once the buffers have grown to size.
func projectResult(dst, src *Result, wantProfile, wantSlots bool) {
	m := dst.FuelByKind
	clear(m)
	events := dst.Events[:0]
	profile := dst.Profile[:0]
	charges := dst.Charges[:0]
	slotLog := dst.SlotLog[:0]

	*dst = *src
	dst.FuelByKind = m
	for k, v := range src.FuelByKind {
		m[k] = v
	}
	dst.Events = append(events, src.Events...)
	if wantProfile {
		dst.Profile = append(profile, src.Profile...)
		dst.Charges = append(charges, src.Charges...)
	} else {
		dst.Profile, dst.Charges = profile, charges
	}
	if wantSlots {
		dst.SlotLog = append(slotLog, src.SlotLog...)
	} else {
		dst.SlotLog = slotLog
	}
}

// sameTrace reports whether two traces drive identical walks. Pointer
// equality is the fast path; otherwise the slots are compared value for
// value (the name is cosmetic).
func sameTrace(a, b *workload.Trace) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || len(a.Slots) != len(b.Slots) {
		return false
	}
	for i := range a.Slots {
		if a.Slots[i] != b.Slots[i] {
			return false
		}
	}
	return true
}

// checkShared rejects a mutable collaborator appearing in two executing
// configurations. Only pointer-typed components can alias shared state;
// value-typed ones are copied into each config and cannot interfere.
func checkShared(seen map[any]int, gi int, v any, what string) error {
	if v == nil {
		return nil
	}
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return nil
	}
	if prev, dup := seen[v]; dup && prev != gi {
		return fmt.Errorf("sim: batch lanes share one %s object (%T) across two executing groups; give each lane its own instance", what, v)
	}
	seen[v] = gi
	return nil
}

// fpBits formats a float for a fingerprint: exact bits, so two lanes
// group only when the values are identical, not merely close.
func fpBits(v float64) uint64 { return math.Float64bits(v) }

// keyOf returns a component's grouping identity: "-" for absent, its
// BatchKey when it has one, and failure otherwise.
func keyOf(v any) (string, bool) {
	if v == nil {
		return "-", true
	}
	if k, ok := v.(BatchKeyer); ok {
		return k.BatchKey(), true
	}
	return "", false
}

// dynamicsKey fingerprints everything that shapes a lane's dynamics —
// and deliberately nothing that only shapes its recording (Record,
// RecordProfile, RecordSlots, Metrics), since recording appends history
// without feeding back into the simulation. Two lanes with equal keys
// run bit-identical simulations; a lane whose components cannot be
// keyed reports false and executes ungrouped. Fault schedules are
// compared by identity (plus seed): conservative, but sound.
func dynamicsKey(cfg *Config) (string, bool) {
	if cfg.TimeoutAdapter != nil {
		// A timeout adapter learns per lane; such lanes never group.
		return "", false
	}
	pol, ok := keyOf(cfg.Policy)
	if !ok {
		return "", false
	}
	sto, ok := keyOf(cfg.Store)
	if !ok {
		return "", false
	}
	pi, ok := keyOf(cfg.IdlePredictor)
	if !ok {
		return "", false
	}
	pa, ok := keyOf(cfg.ActivePredictor)
	if !ok {
		return "", false
	}
	pc, ok := keyOf(cfg.CurrentPredictor)
	if !ok {
		return "", false
	}
	var fb strings.Builder
	for _, p := range cfg.Fallbacks {
		k, ok := keyOf(p)
		if !ok {
			return "", false
		}
		fb.WriteString(k)
		fb.WriteByte(';')
	}
	faults := "-"
	if cfg.Faults != nil {
		faults = fmt.Sprintf("%p/%d", cfg.Faults, cfg.FaultSeed)
	}
	// The system is fingerprinted by content, not pointer: distinct
	// instances with identical parameters (e.g. per-lane multistack racks
	// built from the same stack mix) still group.
	return fmt.Sprintf("sys=%s|dev=%p|pol=%s|sto=%s|dpm=%d|to=%x|slew=%x|pi=%s|pa=%s|pc=%s|faults=%s|sup=%d/%x/%x|fb=%s",
		cfg.Sys.BatchKey(), cfg.Dev, pol, sto, cfg.DPM, fpBits(cfg.Timeout), fpBits(cfg.SlewRate),
		pi, pa, pc, faults,
		cfg.Supervisor.Mode, fpBits(cfg.Supervisor.DeficitLimit), fpBits(cfg.Supervisor.Tolerance),
		fb.String()), true
}

// decodeKey fingerprints the trace-side decode inputs: the device model,
// the DPM mode and timeout, and the predictors. The storage and policy
// are deliberately absent — the decode never reads them — which is what
// lets a capacity or policy sweep expand each slot once for all its
// lanes. Fault schedules perturb the observed slot values, and a timeout
// adapter the per-slot dwell, so either one keeps a lane on its own
// decode.
func decodeKey(cfg *Config) (string, bool) {
	if cfg.TimeoutAdapter != nil || cfg.Faults != nil {
		return "", false
	}
	pi, ok := keyOf(cfg.IdlePredictor)
	if !ok {
		return "", false
	}
	pa, ok := keyOf(cfg.ActivePredictor)
	if !ok {
		return "", false
	}
	pc, ok := keyOf(cfg.CurrentPredictor)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("dev=%p|dpm=%d|to=%x|pi=%s|pa=%s|pc=%s",
		cfg.Dev, cfg.DPM, fpBits(cfg.Timeout), pi, pa, pc), true
}
