package devicesim

import (
	"bytes"
	"testing"
	"time"
)

func planOpts(seed uint64) Options {
	return Options{
		Count:     50,
		Cadence:   500 * time.Millisecond,
		StopAfter: 5 * time.Second,
		Seed:      seed,
		Template:  DefaultTemplate(),
	}
}

// TestPlanByteReproducible is the determinism acceptance check: a fixed
// seed reproduces the exact population and submission schedule, byte
// for byte, and a different seed does not.
func TestPlanByteReproducible(t *testing.T) {
	var a, b, c bytes.Buffer
	if err := planOpts(42).WritePlan(&a); err != nil {
		t.Fatal(err)
	}
	if err := planOpts(42).WritePlan(&b); err != nil {
		t.Fatal(err)
	}
	if err := planOpts(43).WritePlan(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different plans")
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical plans")
	}
	if a.Len() == 0 {
		t.Fatal("empty plan")
	}
}

// TestPopulationVariants: devices of the same variant render
// byte-identical specs (the cache/coalescing collision devicesim
// exists to exercise), and every spec is valid and content-addressable.
func TestPopulationVariants(t *testing.T) {
	tmpl := DefaultTemplate()
	tmpl.Variants = 8
	devices := BuildPopulation(tmpl, 64, 7)
	if len(devices) != 64 {
		t.Fatalf("population size %d", len(devices))
	}
	keys := map[int]string{}
	for _, d := range devices {
		key, err := d.Scenario(tmpl.Policy).CacheKey("engine")
		if err != nil {
			t.Fatalf("%s: invalid spec: %v", d.ID, err)
		}
		if prev, ok := keys[d.Variant]; ok && prev != key {
			t.Fatalf("variant %d renders two cache keys", d.Variant)
		}
		keys[d.Variant] = key
	}
	if len(keys) != 8 {
		t.Fatalf("got %d variants, want 8", len(keys))
	}
	// Distinct variants must not collide onto one scenario.
	seen := map[string]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	if len(seen) < 2 {
		t.Fatalf("all variants share a cache key")
	}
}

// TestPopulationMixesModes: the default template yields both sync and
// async devices, and at least two workload families.
func TestPopulationMixesModes(t *testing.T) {
	devices := BuildPopulation(DefaultTemplate(), 200, 1)
	families := map[string]int{}
	asyncs := 0
	for _, d := range devices {
		families[d.Family]++
		if d.Async {
			asyncs++
		}
	}
	if len(families) < 2 {
		t.Fatalf("families = %v, want a mix", families)
	}
	if asyncs == 0 || asyncs == len(devices) {
		t.Fatalf("async count %d of %d, want a mix", asyncs, len(devices))
	}
}

// TestScheduleShape: sorted, inside the window, jitter within the
// documented [0.5, 1.5) x cadence envelope per device.
func TestScheduleShape(t *testing.T) {
	devices := BuildPopulation(DefaultTemplate(), 20, 3)
	cadence := 200 * time.Millisecond
	window := 2 * time.Second
	subs := Schedule(devices, cadence, window, 3)
	if len(subs) == 0 {
		t.Fatal("empty schedule")
	}
	last := map[int]time.Duration{}
	for i, s := range subs {
		if s.At < 0 || s.At >= window {
			t.Fatalf("submission %d outside window: %v", i, s.At)
		}
		if i > 0 && subs[i].At < subs[i-1].At {
			t.Fatal("schedule not sorted")
		}
		if prev, ok := last[s.Device]; ok {
			gap := s.At - prev
			if gap < cadence/2 || gap >= cadence*3/2 {
				t.Fatalf("device %d gap %v outside [%v, %v)", s.Device, gap, cadence/2, cadence*3/2)
			}
		}
		last[s.Device] = s.At
	}
}
