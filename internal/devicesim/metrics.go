package devicesim

import (
	"net"
	"net/http"

	"fcdpm/internal/obs"
)

// fleetMetrics is the harness's own observability surface — the
// client-side mirror of the server's counters, measured independently
// so the two can be cross-checked.
type fleetMetrics struct {
	reg      *obs.Registry
	inflight *obs.Gauge

	submitted *obs.Counter
	completed *obs.Counter
	failed    *obs.Counter
	shed      *obs.Counter
	retries   *obs.Counter

	cacheHits *obs.Counter
	misses    *obs.Counter
	coalesced *obs.Counter

	// latency is the client-observed submit-to-resolution time.
	latency *obs.Histogram
}

func newFleetMetrics() *fleetMetrics {
	reg := obs.NewRegistry()
	return &fleetMetrics{
		reg:      reg,
		inflight: reg.Gauge("fcdpm_devicesim_inflight", "Submissions currently awaiting resolution."),
		submitted: reg.Counter("fcdpm_devicesim_submitted_total",
			"Runs submitted by the fleet."),
		completed: reg.Counter("fcdpm_devicesim_completed_total",
			"Runs the fleet saw resolve successfully."),
		failed: reg.Counter("fcdpm_devicesim_failed_total",
			"Runs that failed for a non-shed reason (harness-side errors)."),
		shed: reg.Counter("fcdpm_devicesim_shed_total",
			"Submissions the server shed (503/429)."),
		retries: reg.Counter("fcdpm_devicesim_retry_waits_total",
			"Retry-After backoff waits honored."),
		cacheHits: reg.Counter("fcdpm_devicesim_cache_hits_total",
			"Submissions answered from the server's result cache."),
		misses: reg.Counter("fcdpm_devicesim_cache_misses_total",
			"Submissions that caused a fresh simulation."),
		coalesced: reg.Counter("fcdpm_devicesim_coalesced_total",
			"Submissions coalesced onto an identical in-flight run."),
		latency: reg.Histogram("fcdpm_devicesim_latency_seconds",
			"Client-observed submit-to-resolution latency.", obs.DurationBuckets),
	}
}

// serveMetrics exposes the fleet registry at addr (/metrics, /healthz)
// for the duration of the run. Returns the bound address and a stop
// function, or an error if the listener could not bind.
func (m *fleetMetrics) serve(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		m.reg.WritePrometheus(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
