// Package devicesim is the fleet-scale load harness: thousands of
// virtual devices, each an independent agent with a deterministic
// identity, submitting scenario runs to `fcdpm serve` and following
// them to resolution. The fleet exercises every serving-path behavior
// at once — cache hits, in-flight coalescing, admission shedding,
// Retry-After backoff — while exporting its own client-side metrics,
// so a single harness run cross-checks the server's accounting against
// an independent observer.
//
// Determinism is the design invariant: a fixed seed reproduces the
// exact same device population and submission schedule, byte for byte
// (the FNV-hash schedule idiom shared with internal/chaos). Wall-clock
// outcomes (which submissions shed, what latency they saw) depend on
// the server, but *what* the fleet asks for never does.
package devicesim

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
)

// FamilyWeight weights one workload family in the population draw.
type FamilyWeight struct {
	// Kind is a trace kind: "camcorder", "synthetic", "bursty",
	// "heavytail", or "dvs".
	Kind string `json:"kind"`
	// Weight is the relative draw weight (> 0).
	Weight float64 `json:"weight"`
}

// Template is the shared scenario template every variant mutates
// deterministically (scenarios/devicesim.json). Devices collapse onto
// Variants distinct scenarios; members of a variant submit
// byte-identical specs, which is what drives cache hits and in-flight
// coalescing under load.
type Template struct {
	// Families weights the workload families devices draw from.
	Families []FamilyWeight `json:"families"`
	// DurationMin and DurationMax bound the per-variant trace-length
	// jitter, in simulated seconds (drawn uniformly, rounded to whole
	// seconds so variant specs stay canonical).
	DurationMin float64 `json:"durationMin"`
	DurationMax float64 `json:"durationMax"`
	// Variants is how many distinct scenarios the population collapses
	// to. 0 means every device gets its own (no sharing, so no cache
	// hits — useful for pure-throughput runs).
	Variants int `json:"variants"`
	// AsyncFraction of submissions use ?async=1 + event tailing instead
	// of a blocking POST (drawn per device).
	AsyncFraction float64 `json:"asyncFraction"`
	// SeedBase offsets the per-variant trace seeds, so two fleets with
	// different bases never share cache keys.
	SeedBase uint64 `json:"seedBase"`
	// Policy is the policy kind every scenario runs (default "fcdpm").
	Policy string `json:"policy"`
}

// DefaultTemplate is the fleet mix used when no config file is given:
// all five families, half-minute-scale traces, 16 variants, an even
// sync/async split.
func DefaultTemplate() Template {
	return Template{
		Families: []FamilyWeight{
			{Kind: "camcorder", Weight: 2},
			{Kind: "synthetic", Weight: 2},
			{Kind: "bursty", Weight: 1},
			{Kind: "heavytail", Weight: 1},
			{Kind: "dvs", Weight: 1},
		},
		DurationMin:   120,
		DurationMax:   600,
		Variants:      16,
		AsyncFraction: 0.5,
		SeedBase:      1000,
		Policy:        "fcdpm",
	}
}

// knownFamilies are the trace kinds a template may weight.
var knownFamilies = map[string]bool{
	"camcorder": true, "synthetic": true, "bursty": true,
	"heavytail": true, "dvs": true,
}

// Validate rejects templates that would build unusable populations.
func (t Template) Validate() error {
	if len(t.Families) == 0 {
		return fmt.Errorf("devicesim: template needs at least one family")
	}
	total := 0.0
	for i, f := range t.Families {
		if !knownFamilies[f.Kind] {
			return fmt.Errorf("devicesim: families[%d]: unknown kind %q", i, f.Kind)
		}
		if math.IsNaN(f.Weight) || f.Weight <= 0 {
			return fmt.Errorf("devicesim: families[%d] (%s): non-positive weight %v", i, f.Kind, f.Weight)
		}
		total += f.Weight
	}
	if total <= 0 {
		return fmt.Errorf("devicesim: family weights sum to %v", total)
	}
	if t.DurationMin < 1 || t.DurationMax < t.DurationMin {
		return fmt.Errorf("devicesim: bad duration bounds [%v, %v]", t.DurationMin, t.DurationMax)
	}
	if t.Variants < 0 {
		return fmt.Errorf("devicesim: negative variant count %d", t.Variants)
	}
	if math.IsNaN(t.AsyncFraction) || t.AsyncFraction < 0 || t.AsyncFraction > 1 {
		return fmt.Errorf("devicesim: async fraction %v outside [0, 1]", t.AsyncFraction)
	}
	return nil
}

// LoadTemplate reads a template from JSON; unknown fields are rejected
// so typos in a knob name fail loudly instead of silently defaulting.
func LoadTemplate(r io.Reader) (Template, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var t Template
	if err := dec.Decode(&t); err != nil {
		return Template{}, fmt.Errorf("devicesim: %w", err)
	}
	if t.Policy == "" {
		t.Policy = "fcdpm"
	}
	return t, t.Validate()
}

// LoadTemplateFile reads a template from a file.
func LoadTemplateFile(path string) (Template, error) {
	f, err := os.Open(path)
	if err != nil {
		return Template{}, fmt.Errorf("devicesim: %w", err)
	}
	defer f.Close()
	return LoadTemplate(f)
}
