package devicesim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"fcdpm/internal/client"
	"fcdpm/internal/runner"
)

// Options tunes a fleet run.
type Options struct {
	// Target is the `fcdpm serve` base URL.
	Target string
	// Count is the number of concurrent virtual devices.
	Count int
	// Cadence is the mean per-device submit interval; each interval is
	// jittered deterministically into [0.5, 1.5) × Cadence.
	Cadence time.Duration
	// StopAfter is the scheduling window: no submission starts after
	// it, then the fleet drains whatever is still in flight.
	StopAfter time.Duration
	// Seed determines the population and schedule (byte-reproducible).
	Seed uint64
	// Template is the scenario template (DefaultTemplate if zero-ish;
	// callers should pass a validated one).
	Template Template
	// Addr, when non-empty, serves the harness's own /metrics there.
	Addr string
	// Out receives the final human-readable report (nil: none).
	Out io.Writer
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
	// HTTPClient overrides the pooled default (tests).
	HTTPClient *http.Client
}

func (o Options) withDefaults() Options {
	if o.Count <= 0 {
		o.Count = 100
	}
	if o.Cadence <= 0 {
		o.Cadence = 2 * time.Second
	}
	if o.StopAfter <= 0 {
		o.StopAfter = 30 * time.Second
	}
	if o.Target == "" {
		o.Target = "http://127.0.0.1:8080"
	}
	o.Target = strings.TrimRight(o.Target, "/")
	if len(o.Template.Families) == 0 {
		o.Template = DefaultTemplate()
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// fleetTransport sizes the connection pool for thousands of concurrent
// devices against one host; the stdlib default of 2 idle conns per
// host would thrash.
func fleetTransport() *http.Client {
	t := http.DefaultTransport.(*http.Transport).Clone()
	t.MaxIdleConns = 512
	t.MaxIdleConnsPerHost = 512
	return &http.Client{Transport: t}
}

// Run drives the fleet: every device is an independent agent walking
// its deterministic submission schedule, submitting runs (sync or
// async per its identity), honoring 429/503 Retry-After, and tailing
// async runs to resolution. Returns the final report; sheds are
// counted, not fatal — only ctx cancellation is an error.
func Run(ctx context.Context, o Options) (Report, error) {
	o = o.withDefaults()
	if err := o.Template.Validate(); err != nil {
		return Report{}, err
	}
	devices := BuildPopulation(o.Template, o.Count, o.Seed)
	sched := Schedule(devices, o.Cadence, o.StopAfter, o.Seed)
	perDev := make([][]Submission, len(devices))
	for _, s := range sched {
		perDev[s.Device] = append(perDev[s.Device], s)
	}
	m := newFleetMetrics()
	if o.Addr != "" {
		addr, stop, err := m.serve(o.Addr)
		if err != nil {
			return Report{}, fmt.Errorf("devicesim: metrics listener: %w", err)
		}
		defer stop()
		o.Logf("devicesim: metrics at http://%s/metrics", addr)
	}
	hc := o.HTTPClient
	if hc == nil {
		hc = fleetTransport()
	}
	f := &fleet{opts: o, hc: hc, m: m}
	o.Logf("devicesim: %d devices, %d submissions over %s (seed %d)",
		len(devices), len(sched), o.StopAfter, o.Seed)

	start := time.Now()
	var wg sync.WaitGroup
	for i := range devices {
		if len(perDev[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(d Device, subs []Submission) {
			defer wg.Done()
			f.agent(ctx, d, subs, start)
		}(devices[i], perDev[i])
	}
	wg.Wait()

	rep := buildReport(m, len(devices), len(sched), time.Since(start).Seconds())
	if o.Out != nil {
		rep.Write(o.Out)
	}
	if ctx.Err() != nil {
		return rep, fmt.Errorf("devicesim: %w", runner.ErrInterrupted)
	}
	return rep, nil
}

// fleet is the shared state of one Run.
type fleet struct {
	opts Options
	hc   *http.Client
	m    *fleetMetrics
}

// agent is one device's life: sleep until each scheduled submission,
// submit, follow to resolution, repeat. A device is a serial client —
// if a run resolves late, the next submission fires immediately rather
// than piling up.
func (f *fleet) agent(ctx context.Context, d Device, subs []Submission, start time.Time) {
	spec := d.Scenario(f.opts.Template.Policy)
	for _, s := range subs {
		if !client.Sleep(ctx, time.Until(start.Add(s.At))) {
			return
		}
		f.submitOne(ctx, d, spec)
		if ctx.Err() != nil {
			return
		}
	}
}

// asyncDoc is the 202 body of POST /v1/runs?async=1.
type asyncDoc struct {
	ID     string `json:"id"`
	Cache  string `json:"cache"`
	Events string `json:"events"`
}

// submitOne performs one scheduled submission and classifies the
// outcome into the fleet's counters. Never returns an error: sheds and
// failures are counted, and the agent moves to its next slot.
func (f *fleet) submitOne(ctx context.Context, d Device, spec any) {
	f.m.inflight.Add(1)
	defer f.m.inflight.Add(-1)
	f.m.submitted.Inc()
	begin := time.Now()
	if d.Async {
		f.submitAsync(ctx, d, spec, begin)
		return
	}
	_, hdr, err := client.PostJSONMeta(ctx, f.hc, f.opts.Target+"/v1/runs", spec, nil)
	if err != nil {
		f.classifyError(ctx, d, err)
		return
	}
	f.countCacheTag(hdr.Get("X-Fcdpm-Cache"))
	f.m.completed.Inc()
	f.m.latency.Observe(time.Since(begin).Seconds())
}

// submitAsync submits with ?async=1 and tails the run's event stream
// to resolution; client-observed latency spans the whole arc.
func (f *fleet) submitAsync(ctx context.Context, d Device, spec any, begin time.Time) {
	var doc asyncDoc
	status, hdr, err := client.PostJSONMeta(ctx, f.hc, f.opts.Target+"/v1/runs?async=1", spec, &doc)
	if err != nil {
		f.classifyError(ctx, d, err)
		return
	}
	tag := hdr.Get("X-Fcdpm-Cache")
	f.countCacheTag(tag)
	if status == http.StatusOK {
		// The cache answered before admission: resolved already.
		f.m.completed.Inc()
		f.m.latency.Observe(time.Since(begin).Seconds())
		return
	}
	resolved := ""
	follow := client.Follow{
		Tail: func(ctx context.Context) error {
			return client.TailNDJSON(ctx, f.hc, f.opts.Target+doc.Events, func(line string) {
				var ev struct {
					Kind   string `json:"kind"`
					Status string `json:"status"`
				}
				if json.Unmarshal([]byte(line), &ev) == nil && ev.Kind == "resolved" {
					resolved = ev.Status
				}
			})
		},
		Poll: func(ctx context.Context) (bool, error) {
			var st struct {
				Status string `json:"status"`
			}
			if err := client.GetJSON(ctx, f.hc, f.opts.Target+"/v1/runs/"+doc.ID, &st); err != nil {
				return false, err
			}
			// A queued job reports {"status":"queued"}; a done job's body
			// is the result report, which has no status field.
			return st.Status != "queued", nil
		},
		ID: d.ID,
	}
	err = follow.Run(ctx)
	switch {
	case resolved == "done" || (err == nil && resolved == ""):
		f.m.completed.Inc()
		f.m.latency.Observe(time.Since(begin).Seconds())
	case resolved == "shed":
		f.m.shed.Inc()
	case errors.Is(err, runner.ErrInterrupted):
		// Canceled mid-flight: not a device outcome.
	case resolved != "":
		f.opts.Logf("devicesim: %s: run %s resolved %s", d.ID, doc.ID, resolved)
		f.m.failed.Inc()
	default:
		// Follow ended on a typed refusal (e.g. the job's status GET
		// reported the failure) with no resolved event observed.
		f.classifyError(ctx, d, err)
	}
}

// countCacheTag maps the server's cache taxonomy onto the fleet's
// counters.
func (f *fleet) countCacheTag(tag string) {
	switch tag {
	case "hit":
		f.m.cacheHits.Inc()
	case "coalesced":
		f.m.coalesced.Inc()
	default:
		f.m.misses.Inc()
	}
}

// classifyError buckets a submission error: retryable refusals (503
// shed, 429) are counted as sheds and their Retry-After hint honored
// before the agent's next slot; cancellation is silent; anything else
// is a harness-visible failure.
func (f *fleet) classifyError(ctx context.Context, d Device, err error) {
	var he *client.Error
	if errors.As(err, &he) && he.Retryable() {
		f.m.shed.Inc()
		if he.RetryAfter > 0 {
			f.m.retries.Inc()
			client.Sleep(ctx, he.RetryAfter)
		}
		return
	}
	if ctx.Err() != nil || errors.Is(err, runner.ErrInterrupted) {
		return
	}
	f.m.failed.Inc()
	f.opts.Logf("devicesim: %s: submit failed: %v", d.ID, err)
}
