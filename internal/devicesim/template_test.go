package devicesim

import (
	"strings"
	"testing"
)

func TestDefaultTemplateValid(t *testing.T) {
	if err := DefaultTemplate().Validate(); err != nil {
		t.Fatalf("default template invalid: %v", err)
	}
}

func TestLoadTemplate(t *testing.T) {
	js := `{
		"families": [{"kind": "synthetic", "weight": 3}, {"kind": "dvs", "weight": 1}],
		"durationMin": 60, "durationMax": 120,
		"variants": 4, "asyncFraction": 0.25, "seedBase": 7
	}`
	tmpl, err := LoadTemplate(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmpl.Families) != 2 || tmpl.Variants != 4 || tmpl.SeedBase != 7 {
		t.Fatalf("template = %+v", tmpl)
	}
	if tmpl.Policy != "fcdpm" {
		t.Fatalf("policy default = %q, want fcdpm", tmpl.Policy)
	}
}

func TestLoadTemplateRejects(t *testing.T) {
	cases := []struct {
		name string
		js   string
	}{
		{"unknown-field", `{"families":[{"kind":"synthetic","weight":1}],"durationMin":60,"durationMax":120,"typo":1}`},
		{"no-families", `{"durationMin":60,"durationMax":120}`},
		{"unknown-kind", `{"families":[{"kind":"quantum","weight":1}],"durationMin":60,"durationMax":120}`},
		{"zero-weight", `{"families":[{"kind":"synthetic","weight":0}],"durationMin":60,"durationMax":120}`},
		{"inverted-bounds", `{"families":[{"kind":"synthetic","weight":1}],"durationMin":120,"durationMax":60}`},
		{"tiny-duration", `{"families":[{"kind":"synthetic","weight":1}],"durationMin":0,"durationMax":60}`},
		{"negative-variants", `{"families":[{"kind":"synthetic","weight":1}],"durationMin":60,"durationMax":120,"variants":-1}`},
		{"async-over-one", `{"families":[{"kind":"synthetic","weight":1}],"durationMin":60,"durationMax":120,"asyncFraction":1.5}`},
	}
	for _, tc := range cases {
		if _, err := LoadTemplate(strings.NewReader(tc.js)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestStockTemplateFile: the checked-in scenarios/devicesim.json loads
// and validates — the file the CLI and CI smoke job point at.
func TestStockTemplateFile(t *testing.T) {
	tmpl, err := LoadTemplateFile("../../scenarios/devicesim.json")
	if err != nil {
		t.Fatalf("stock template: %v", err)
	}
	if len(tmpl.Families) != 5 || tmpl.Variants != 16 {
		t.Fatalf("stock template drifted from the documented mix: %+v", tmpl)
	}
}
