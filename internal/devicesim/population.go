package devicesim

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"time"

	"fcdpm/internal/config"
	"fcdpm/internal/dvs"
)

// fraction hashes (seed, surface, op, n) into [0, 1) — the population
// and schedule's only source of randomness, fully determined by the
// seed (the same idiom internal/chaos uses for its fault schedule).
func fraction(seed uint64, surface, op string, n uint64) float64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], seed)
	h.Write(b[:])
	h.Write([]byte(surface))
	h.Write([]byte{0})
	h.Write([]byte(op))
	binary.LittleEndian.PutUint64(b[:], n)
	h.Write(b[:])
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// Device is one virtual device's immutable identity: which scenario
// variant it submits, how it submits (sync or async), and the jitter
// phase of its cadence. Everything here is a pure function of
// (template, fleet seed, index).
type Device struct {
	// Index is the device's position in the population, ID its name.
	Index int    `json:"index"`
	ID    string `json:"id"`
	// Variant is the scenario-variant index this device submits.
	Variant int `json:"variant"`
	// Family, Seed, Duration, and Level describe the variant's trace
	// (Level only for family "dvs").
	Family   string  `json:"family"`
	Seed     uint64  `json:"seed"`
	Duration float64 `json:"duration"`
	Level    int     `json:"level,omitempty"`
	// Async devices submit with ?async=1 and tail the event stream.
	Async bool `json:"async"`
}

// Scenario renders the device's submission spec. Devices of the same
// variant produce byte-identical specs (the name is variant-keyed), so
// they share a cache key — the collision that exercises the server's
// cache and coalescing paths.
func (d Device) Scenario(policy string) *config.Scenario {
	s := &config.Scenario{Name: fmt.Sprintf("fleet-v%03d", d.Variant)}
	s.Trace.Kind = d.Family
	s.Trace.Seed = d.Seed
	s.Trace.Duration = d.Duration
	s.Trace.Level = d.Level
	s.Policy.Kind = policy
	return s
}

// BuildPopulation derives count devices from the template and fleet
// seed. Deterministic: equal inputs give an identical population.
func BuildPopulation(tmpl Template, count int, seed uint64) []Device {
	total := 0.0
	for _, f := range tmpl.Families {
		total += f.Weight
	}
	levels := len(dvs.XScale600().Levels)
	devices := make([]Device, count)
	for i := range devices {
		variant := i
		if tmpl.Variants > 0 {
			variant = i % tmpl.Variants
		}
		v := uint64(variant)
		// Family: a weighted draw keyed on the variant, so every member
		// of a variant asks for the same trace.
		pick := fraction(seed, "variant", "family", v) * total
		family := tmpl.Families[len(tmpl.Families)-1].Kind
		for _, f := range tmpl.Families {
			if pick < f.Weight {
				family = f.Kind
				break
			}
			pick -= f.Weight
		}
		// Trace-length jitter, rounded to whole seconds so the variant's
		// canonical spec stays tidy.
		dur := tmpl.DurationMin +
			fraction(seed, "variant", "duration", v)*(tmpl.DurationMax-tmpl.DurationMin)
		d := Device{
			Index:    i,
			ID:       fmt.Sprintf("dev-%05d", i),
			Variant:  variant,
			Family:   family,
			Seed:     tmpl.SeedBase + v + 1,
			Duration: float64(int(dur)),
			Async:    fraction(seed, "device", "async", uint64(i)) < tmpl.AsyncFraction,
		}
		if family == "dvs" {
			// The DVS trace is deterministic; its seed is inert and the
			// operating point carries the variant's identity instead.
			d.Level = int(fraction(seed, "variant", "level", v) * float64(levels))
			if d.Level >= levels {
				d.Level = levels - 1
			}
			d.Seed = 0
		}
		devices[i] = d
	}
	return devices
}

// Submission is one scheduled submit: device dev's seq'th run, due At
// after harness start.
type Submission struct {
	At     time.Duration
	Device int
	Seq    int
}

// Schedule lays out every device's submission times across the run
// window: each device starts at a seed-determined phase within its
// first cadence interval, then repeats with per-interval jitter in
// [0.5, 1.5) × cadence. The merged schedule is sorted by (At, Device)
// — a total order, so fixed inputs give identical bytes.
func Schedule(devices []Device, cadence, window time.Duration, seed uint64) []Submission {
	var subs []Submission
	for _, d := range devices {
		n := uint64(d.Index)
		at := time.Duration(fraction(seed, "sched", "phase", n) * float64(cadence))
		for seq := 0; at < window; seq++ {
			subs = append(subs, Submission{At: at, Device: d.Index, Seq: seq})
			step := 0.5 + fraction(seed, "sched", d.ID, uint64(seq))
			at += time.Duration(step * float64(cadence))
		}
	}
	sort.Slice(subs, func(i, j int) bool {
		if subs[i].At != subs[j].At {
			return subs[i].At < subs[j].At
		}
		return subs[i].Device < subs[j].Device
	})
	return subs
}

// WritePlan renders the deterministic population + schedule as NDJSON:
// a header line, one line per device (with its rendered spec), one per
// scheduled submission. Byte-reproducible for fixed inputs — the
// harness's dry-run surface and the determinism acceptance check.
func (o Options) WritePlan(w io.Writer) error {
	o = o.withDefaults()
	if err := o.Template.Validate(); err != nil {
		return err
	}
	devices := BuildPopulation(o.Template, o.Count, o.Seed)
	subs := Schedule(devices, o.Cadence, o.StopAfter, o.Seed)
	enc := json.NewEncoder(w)
	header := map[string]any{
		"plan": "devicesim", "count": o.Count, "seed": o.Seed,
		"cadenceMs": o.Cadence.Milliseconds(), "windowMs": o.StopAfter.Milliseconds(),
		"variants": o.Template.Variants, "submissions": len(subs),
	}
	if err := enc.Encode(header); err != nil {
		return err
	}
	for _, d := range devices {
		spec, err := json.Marshal(d.Scenario(o.Template.Policy))
		if err != nil {
			return err
		}
		if err := enc.Encode(map[string]any{
			"device": d, "spec": json.RawMessage(spec),
		}); err != nil {
			return err
		}
	}
	for _, s := range subs {
		if err := enc.Encode(map[string]any{
			"at": s.At.Milliseconds(), "device": s.Device, "seq": s.Seq,
		}); err != nil {
			return err
		}
	}
	return nil
}
