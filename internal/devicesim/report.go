package devicesim

import (
	"encoding/json"
	"fmt"
	"io"
)

// Report is the harness's final accounting: what the fleet submitted,
// what came back, and what the client side observed about latency. The
// counter fields mirror the server's /v1/stats taxonomy one-to-one so
// the two can be diffed (see TestFleetCrossCheck).
type Report struct {
	Devices     int   `json:"devices"`
	Submissions int   `json:"submissions"`
	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Failed      int64 `json:"failed"`
	Shed        int64 `json:"shed"`
	RetryWaits  int64 `json:"retryWaits"`

	CacheHits   int64 `json:"cacheHits"`
	CacheMisses int64 `json:"cacheMisses"`
	Coalesced   int64 `json:"coalesced"`

	// Client-observed submit-to-resolution latency, milliseconds.
	P50Ms float64 `json:"p50Ms"`
	P95Ms float64 `json:"p95Ms"`
	P99Ms float64 `json:"p99Ms"`

	// Rates are fractions of Submitted (0 when nothing was submitted).
	ShedRate     float64 `json:"shedRate"`
	CoalesceRate float64 `json:"coalesceRate"`
	CacheHitRate float64 `json:"cacheHitRate"`

	ElapsedSeconds float64 `json:"elapsedSeconds"`
}

// buildReport snapshots the fleet metrics into a Report.
func buildReport(m *fleetMetrics, devices, submissions int, elapsed float64) Report {
	r := Report{
		Devices:        devices,
		Submissions:    submissions,
		Submitted:      int64(m.submitted.Value()),
		Completed:      int64(m.completed.Value()),
		Failed:         int64(m.failed.Value()),
		Shed:           int64(m.shed.Value()),
		RetryWaits:     int64(m.retries.Value()),
		CacheHits:      int64(m.cacheHits.Value()),
		CacheMisses:    int64(m.misses.Value()),
		Coalesced:      int64(m.coalesced.Value()),
		ElapsedSeconds: elapsed,
	}
	qs := m.latency.Quantiles(0.5, 0.95, 0.99)
	r.P50Ms, r.P95Ms, r.P99Ms = qs[0]*1e3, qs[1]*1e3, qs[2]*1e3
	if r.Submitted > 0 {
		n := float64(r.Submitted)
		r.ShedRate = float64(r.Shed) / n
		r.CoalesceRate = float64(r.Coalesced) / n
		r.CacheHitRate = float64(r.CacheHits) / n
	}
	return r
}

// Write renders the human-readable report.
func (r Report) Write(w io.Writer) error {
	_, err := fmt.Fprintf(w, `devicesim report
  devices       %d
  submitted     %d (of %d scheduled)
  completed     %d
  failed        %d
  shed          %d (rate %.3f)
  retry waits   %d
  cache hits    %d (rate %.3f)
  cache misses  %d
  coalesced     %d (rate %.3f)
  latency p50   %.1f ms
  latency p95   %.1f ms
  latency p99   %.1f ms
  elapsed       %.1f s
`,
		r.Devices, r.Submitted, r.Submissions, r.Completed, r.Failed,
		r.Shed, r.ShedRate, r.RetryWaits,
		r.CacheHits, r.CacheHitRate, r.CacheMisses,
		r.Coalesced, r.CoalesceRate,
		r.P50Ms, r.P95Ms, r.P99Ms, r.ElapsedSeconds)
	return err
}

// WriteJSON renders the report as one JSON document (the CI artifact).
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
