package devicesim

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fcdpm/internal/runner"
	"fcdpm/internal/server"
)

// fleetTestServer starts a real serving stack for the fleet to hit.
func fleetTestServer(t *testing.T, opts server.Options) *httptest.Server {
	t.Helper()
	if opts.Workers == 0 {
		opts.Workers = 4
	}
	s, err := server.New(opts)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts
}

// quickTemplate keeps simulated traces tiny so a fleet run finishes in
// test time.
func quickTemplate() Template {
	return Template{
		Families: []FamilyWeight{
			{Kind: "synthetic", Weight: 2},
			{Kind: "bursty", Weight: 1},
			{Kind: "dvs", Weight: 1},
		},
		DurationMin:   60,
		DurationMax:   120,
		Variants:      4,
		AsyncFraction: 0.5,
		SeedBase:      500,
		Policy:        "fcdpm",
	}
}

// TestFleetCrossCheck is the tentpole acceptance test: the fleet's
// client-side accounting must agree with the server's /v1/stats — an
// independent observer confirming the server's cache, coalescing, and
// shed counters.
func TestFleetCrossCheck(t *testing.T) {
	ts := fleetTestServer(t, server.Options{Workers: 4, Queue: 64})
	var logBuf bytes.Buffer
	rep, err := Run(context.Background(), Options{
		Target:    ts.URL,
		Count:     24,
		Cadence:   150 * time.Millisecond,
		StopAfter: 1200 * time.Millisecond,
		Seed:      11,
		Template:  quickTemplate(),
		Out:       &logBuf,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Submitted == 0 {
		t.Fatal("fleet submitted nothing")
	}
	if rep.Failed != 0 {
		t.Fatalf("harness-side failures: %d\n%s", rep.Failed, logBuf.String())
	}
	// Every submission resolves into exactly one cache class.
	if got := rep.CacheHits + rep.CacheMisses + rep.Coalesced + rep.Shed; got != rep.Submitted {
		t.Fatalf("cache classes (%d) != submitted (%d): %+v", got, rep.Submitted, rep)
	}
	if rep.Completed+rep.Shed != rep.Submitted {
		t.Fatalf("completions (%d) + sheds (%d) != submitted (%d)", rep.Completed, rep.Shed, rep.Submitted)
	}
	// With 4 variants over 24 devices the cache and coalescer must both
	// have fired — that's the load pattern the harness exists to create.
	if rep.CacheHits == 0 {
		t.Fatalf("no cache hits across the fleet: %+v", rep)
	}
	// The latency quantiles must be populated and ordered.
	if rep.P50Ms <= 0 || rep.P50Ms > rep.P95Ms || rep.P95Ms > rep.P99Ms {
		t.Fatalf("latency quantiles not positive/monotone: %+v", rep)
	}

	// Cross-check against the server's own books. The queue was sized so
	// nothing shed; with that, the per-class counters must match 1:1.
	var st struct {
		Runs struct {
			Submitted, Done, Failed, Shed, Coalesced int64
		} `json:"runs"`
		Cache struct {
			Hits int64 `json:"hits"`
		} `json:"cache"`
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Runs.Shed != rep.Shed {
		t.Fatalf("shed: server %d, fleet %d", st.Runs.Shed, rep.Shed)
	}
	if st.Runs.Submitted != rep.CacheMisses {
		t.Fatalf("fresh submissions: server %d, fleet misses %d", st.Runs.Submitted, rep.CacheMisses)
	}
	if st.Runs.Coalesced != rep.Coalesced {
		t.Fatalf("coalesced: server %d, fleet %d", st.Runs.Coalesced, rep.Coalesced)
	}
	if st.Cache.Hits != rep.CacheHits {
		t.Fatalf("cache hits: server %d, fleet %d", st.Cache.Hits, rep.CacheHits)
	}

	// The human report mentions its headline numbers.
	out := logBuf.String()
	for _, want := range []string{"latency p50", "latency p99", "cache hits", "coalesced"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestFleetShedsAreNotFatal: a starved server sheds most of the fleet;
// the harness counts the sheds and still exits cleanly.
func TestFleetShedsAreNotFatal(t *testing.T) {
	ts := fleetTestServer(t, server.Options{Workers: 1, Queue: 1})
	tmpl := quickTemplate()
	// Unique long-ish scenarios: no variant sharing, so no cache relief.
	tmpl.Variants = 0
	tmpl.DurationMin, tmpl.DurationMax = 2e6, 4e6
	tmpl.AsyncFraction = 0 // sync 503s exercise the Retry-After path
	// Two slots per device: each shed costs a full 1 s Retry-After wait,
	// so a deeper schedule would stretch the test into many seconds.
	rep, err := Run(context.Background(), Options{
		Target:    ts.URL,
		Count:     16,
		Cadence:   300 * time.Millisecond,
		StopAfter: 600 * time.Millisecond,
		Seed:      5,
		Template:  tmpl,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Shed == 0 {
		t.Fatalf("starved server shed nothing: %+v", rep)
	}
	if rep.Failed != 0 {
		t.Fatalf("sheds were misclassified as failures: %+v", rep)
	}
	if rep.RetryWaits == 0 {
		t.Fatalf("no Retry-After hints honored: %+v", rep)
	}
}

// TestFleetMetricsEndpoint: the harness serves its own Prometheus
// surface while running.
func TestFleetMetricsEndpoint(t *testing.T) {
	m := newFleetMetrics()
	addr, stop, err := m.serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	m.submitted.Inc()
	m.latency.Observe(0.02)
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"fcdpm_devicesim_submitted_total 1",
		"fcdpm_devicesim_latency_seconds_bucket",
		"fcdpm_devicesim_inflight",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestFleetInterrupted: cancellation mid-run returns the interruption
// error discipline without counting phantom failures.
func TestFleetInterrupted(t *testing.T) {
	ts := fleetTestServer(t, server.Options{Workers: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	rep, err := Run(ctx, Options{
		Target:    ts.URL,
		Count:     8,
		Cadence:   100 * time.Millisecond,
		StopAfter: 30 * time.Second,
		Seed:      2,
		Template:  quickTemplate(),
	})
	if !errors.Is(err, runner.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if rep.Failed != 0 {
		t.Fatalf("cancellation counted as failures: %+v", rep)
	}
}
