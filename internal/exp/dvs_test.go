package exp

import (
	"testing"

	"fcdpm/internal/dvs"
)

func dvsTask() dvs.Task { return dvs.Task{Cycles: 3e8, Period: 4, Jobs: 50} }

func TestRunDVSStudy(t *testing.T) {
	proc := dvs.XScale600()
	proc.LeakPower = 1.1 // interior energy optimum
	study, err := RunDVSStudy(proc, dvsTask())
	if err != nil {
		t.Fatal(err)
	}
	if len(study.Rows) != len(proc.Levels) {
		t.Fatalf("rows = %d, want %d (all levels feasible)", len(study.Rows), len(proc.Levels))
	}
	if study.EnergyOptimal < 0 || study.ASAPOptimal < 0 || study.FCOptimal < 0 {
		t.Fatalf("missing optima: %+v", study)
	}
	// The [10] thesis on the full simulator: under load following, the
	// fuel optimum sits at or below the energy optimum.
	if study.ASAPOptimal > study.EnergyOptimal {
		t.Errorf("ASAP fuel optimum L%d above energy optimum L%d",
			study.ASAPOptimal, study.EnergyOptimal)
	}
	// Under FC-DPM (flat output) fuel tracks average charge, so its
	// optimum matches the energy optimum.
	if study.FCOptimal != study.EnergyOptimal {
		t.Errorf("FC-DPM fuel optimum L%d should equal energy optimum L%d",
			study.FCOptimal, study.EnergyOptimal)
	}
	// FC-DPM at least matches ASAP at every speed.
	for _, r := range study.Rows {
		if r.FCRate > r.ASAPRate*1.001 {
			t.Errorf("L%d: FC-DPM rate %v above ASAP %v", r.Level, r.FCRate, r.ASAPRate)
		}
	}
}

func TestRunDVSStudyInfeasible(t *testing.T) {
	proc := dvs.XScale600()
	if _, err := RunDVSStudy(proc, dvs.Task{Cycles: 1e12, Period: 0.01, Jobs: 1}); err == nil {
		t.Fatal("infeasible task accepted")
	}
	if _, err := RunDVSStudy(proc, dvs.Task{}); err == nil {
		t.Fatal("invalid task accepted")
	}
	if _, err := RunDVSStudy(&dvs.Processor{}, dvsTask()); err == nil {
		t.Fatal("invalid processor accepted")
	}
}
