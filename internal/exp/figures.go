package exp

import (
	"fmt"

	"fcdpm/internal/fcopt"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/sim"
)

// Fig2Series regenerates the stack I-V-P characteristic of Fig 2 from the
// calibrated BCS 20 W polarization model.
func Fig2Series(n int) []fuelcell.IVPoint {
	// Sample past the maximum-power knee (~1.5 A for the calibrated
	// stack) so the capacity point is visible, as in the paper's figure.
	return fuelcell.BCS20W().IVPCurve(1.7, n)
}

// Fig3Point is one abscissa of the Fig 3 efficiency comparison.
type Fig3Point struct {
	IF float64 // FC system output current, A
	// StackEff is curve (a): the stack efficiency at the stack current
	// feeding this output point (proportional-fan chain).
	StackEff float64
	// SystemProportional is curve (b): system efficiency with
	// variable-speed fans (physical chain).
	SystemProportional float64
	// LinearModel is the paper's Eq 2 fit of curve (b): 0.45 − 0.13·IF.
	LinearModel float64
	// SystemOnOff is curve (c): system efficiency with constant-speed +
	// on/off cooling fan and a plain PWM converter.
	SystemOnOff float64
}

// Fig3Series regenerates the three measured efficiency curves of Fig 3.
func Fig3Series(n int) ([]Fig3Point, error) {
	stack := fuelcell.BCS20W()
	prop, err := fuelcell.NewChainEfficiency(stack, fuelcell.NewPWMPFMConverter(12), fuelcell.ProportionalController())
	if err != nil {
		return nil, fmt.Errorf("exp: proportional chain: %w", err)
	}
	onoff, err := fuelcell.NewChainEfficiency(stack, fuelcell.NewPWMConverter(12), fuelcell.OnOffController())
	if err != nil {
		return nil, fmt.Errorf("exp: on/off chain: %w", err)
	}
	linear := fuelcell.PaperEfficiency()
	if n < 2 {
		n = 2
	}
	const lo, hi = 0.05, 1.3
	pts := make([]Fig3Point, n)
	zeta := stack.Params().Zeta
	for k := 0; k < n; k++ {
		iF := lo + (hi-lo)*float64(k)/float64(n-1)
		etaProp := prop.Eta(iF)
		// Recover the stack current from ηs = Vdc·IF/(ζ·Ifc).
		ifc := 12 * iF / (zeta * etaProp)
		pts[k] = Fig3Point{
			IF:                 iF,
			StackEff:           stack.Efficiency(ifc),
			SystemProportional: etaProp,
			LinearModel:        linear.Eta(iF),
			SystemOnOff:        onoff.Eta(iF),
		}
	}
	return pts, nil
}

// Motivational reproduces the §3.2 worked example (Fig 4): the three FC
// output settings for the Ti = 20 s @ 0.2 A / Ta = 10 s @ 1.2 A slot with
// Cmax = 200 A-s.
type Motivational struct {
	// ConvFuel is setting (a) with the exact Eq 4 model (39.18 A-s);
	// ConvFuelPaper is the value the paper reports (36 A-s), which
	// corresponds to Ifc ≈ IF — see EXPERIMENTS.md.
	ConvFuel, ConvFuelPaper float64
	// ASAPFuel is setting (b): perfect load following (≈16 A-s).
	ASAPFuel float64
	// FCDPMFuel is setting (c): the optimal flat output (13.45 A-s).
	FCDPMFuel float64
	// OptimalIF is the Eq 11 setting (0.533 A) and OptimalIfc the
	// corresponding stack current (0.448 A).
	OptimalIF, OptimalIfc float64
	// SavingVsConv and SavingVsASAP are fractional fuel savings of
	// setting (c) over (a) and (b).
	SavingVsConv, SavingVsASAP float64
	// DeliveredEnergy is VF·(IF,i·Ti + IF,a·Ta) for settings (b) and (c),
	// identical by charge balance (192 J in the paper).
	DeliveredEnergy float64
}

// MotivationalExample computes the §3.2 comparison.
func MotivationalExample() (*Motivational, error) {
	sys := fuelcell.PaperSystem()
	slot := fcopt.Slot{Ti: 20, IldI: 0.2, Ta: 10, IldA: 1.2}
	set, err := fcopt.Optimize(sys, 200, slot)
	if err != nil {
		return nil, err
	}
	m := &Motivational{
		ConvFuel:        fcopt.Objective(sys, slot, 1.2, 1.2),
		ConvFuelPaper:   1.2 * (slot.Ti + slot.Ta),
		ASAPFuel:        fcopt.Objective(sys, slot, 0.2, 1.2),
		FCDPMFuel:       set.Fuel,
		OptimalIF:       set.IFi,
		OptimalIfc:      sys.StackCurrent(set.IFi),
		DeliveredEnergy: sys.VF * (set.IFi*slot.Ti + set.IFa*slot.Ta),
	}
	m.SavingVsConv = 1 - m.FCDPMFuel/m.ConvFuel
	m.SavingVsASAP = 1 - m.FCDPMFuel/m.ASAPFuel
	return m, nil
}

// Fig7Series extracts the first window seconds of the Experiment 1 current
// profiles: the load profile (identical under every policy) and the FC
// system output profiles of ASAP-DPM and FC-DPM — the three panels of
// Fig 7.
type Fig7Series struct {
	Load, ASAP, FCDPM []sim.ProfilePoint
}

// Fig7 runs Experiment 1 with profile recording and clips the profiles.
func Fig7(seed uint64, window float64) (*Fig7Series, error) {
	sc, err := Experiment1Scenario(seed)
	if err != nil {
		return nil, err
	}
	sc.RecordProfile = true
	cmp, err := sc.Compare(sc.Policies())
	if err != nil {
		return nil, err
	}
	clip := func(pts []sim.ProfilePoint) []sim.ProfilePoint {
		out := make([]sim.ProfilePoint, 0, len(pts))
		for _, p := range pts {
			if p.T > window {
				break
			}
			out = append(out, p)
		}
		return out
	}
	asap := cmp.Results["ASAP-DPM"]
	fc := cmp.Results["FC-DPM"]
	return &Fig7Series{
		Load:  clip(asap.Profile), // Load field carries the common load profile
		ASAP:  clip(asap.Profile),
		FCDPM: clip(fc.Profile),
	}, nil
}
