package exp

import (
	"context"
	"fmt"

	"fcdpm/internal/device"
	"fcdpm/internal/fcopt"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/numeric"
	"fcdpm/internal/policy"
	"fcdpm/internal/predict"
	"fcdpm/internal/runner"
	"fcdpm/internal/sim"
	"fcdpm/internal/workload"
)

// QuantizedRow is one line of the output-level ablation.
type QuantizedRow struct {
	Levels       int     // 0 marks the continuous reference
	Fuel         float64 // A-s over the Experiment 1 trace
	FCNormalized float64 // vs Conv-DPM
	GapVsCont    float64 // fractional fuel above the continuous policy
}

// QuantizedSweep runs Experiment 1's FC-DPM with discrete output-level
// grids of increasing resolution (the multi-level configuration of [11])
// against the continuous policy.
func QuantizedSweep(seed uint64, levelCounts []int) ([]QuantizedRow, error) {
	return QuantizedSweepContext(context.Background(), seed, levelCounts)
}

// QuantizedSweepContext is QuantizedSweep under a context.
func QuantizedSweepContext(ctx context.Context, seed uint64, levelCounts []int) ([]QuantizedRow, error) {
	sc, err := Experiment1Scenario(seed)
	if err != nil {
		return nil, err
	}
	conv, err := sc.runOneCtx(ctx, policy.NewConv(sc.Sys))
	if err != nil {
		return nil, err
	}
	cont, err := sc.runOneCtx(ctx, policy.NewFCDPM(sc.Sys, sc.Dev))
	if err != nil {
		return nil, err
	}
	rows := []QuantizedRow{{
		Levels:       0,
		Fuel:         cont.Fuel,
		FCNormalized: cont.NormalizedFuel(conv),
	}}
	// The scenario is shared read-only across level runs (each run clones
	// the storage and builds a fresh policy), so the levels fan out.
	lvlRows, err := fanOut(ctx, "quantized", levelCounts, func(ctx context.Context, n int) (QuantizedRow, error) {
		if n < 2 {
			return QuantizedRow{}, fmt.Errorf("exp: level count %d < 2", n)
		}
		p, err := policy.NewFCDPMQuantized(sc.Sys, sc.Dev, fcopt.UniformLevels(sc.Sys, n))
		if err != nil {
			return QuantizedRow{}, err
		}
		res, err := sc.runOneCtx(ctx, p)
		if err != nil {
			return QuantizedRow{}, err
		}
		return QuantizedRow{
			Levels:       n,
			Fuel:         res.Fuel,
			FCNormalized: res.NormalizedFuel(conv),
			GapVsCont:    res.Fuel/cont.Fuel - 1,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return append(rows, lvlRows...), nil
}

// OfflineOracleDP solves the Experiment 1 trace offline with the
// capacity-constrained dynamic program and replays the schedule through
// the simulator, returning (offline, online FC-DPM) results. It is the
// true lower bound, tightening the flat-output bound of FlatOracle.
func OfflineOracleDP(seed uint64, gridN int) (offline, online *sim.Result, err error) {
	sc, err := Experiment1Scenario(seed)
	if err != nil {
		return nil, nil, err
	}
	dev := sc.Dev
	tbe := dev.BreakEven()
	slots := make([]fcopt.Slot, sc.Trace.Len())
	for k, s := range sc.Trace.Slots {
		// Mirror the simulator's segment structure with charge-equivalent
		// average currents. All camcorder idles exceed Tbe, but handle
		// the general case.
		sleeping := s.Idle >= tbe
		var ildI float64
		if sleeping && s.Idle > 0 {
			pd := minF(dev.TauPD, s.Idle)
			ildI = (dev.IPD*pd + dev.Islp*(s.Idle-pd)) / s.Idle
		} else {
			ildI = dev.Isdb
		}
		taEff := dev.TauSR + s.Active + dev.TauRS
		activeCharge := s.ActiveCurrent * taEff
		if sleeping {
			taEff += dev.TauWU
			activeCharge += dev.IWU * dev.TauWU
		}
		slots[k] = fcopt.Slot{Ti: s.Idle, IldI: ildI, Ta: taEff, IldA: activeCharge / taEff}
	}
	sched, err := fcopt.SolveOffline(fcopt.OfflineProblem{
		Sys:   sc.Sys,
		Cmax:  sc.Store.Capacity(),
		Slots: slots,
		Q0:    sc.Store.Charge(),
		GridN: gridN,
	})
	if err != nil {
		return nil, nil, err
	}
	if offline, err = sc.runOne(policy.NewSchedule(sc.Sys, sched.Settings)); err != nil {
		return nil, nil, err
	}
	if online, err = sc.runOne(policy.NewFCDPM(sc.Sys, sc.Dev)); err != nil {
		return nil, nil, err
	}
	return offline, online, nil
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// TimeoutAblation compares the predictive DPM against classic timeout DPM
// (dwell = Tbe) under the FC-DPM source policy on Experiment 1.
func TimeoutAblation(seed uint64) (predictive, timeout *sim.Result, err error) {
	sc, err := Experiment1Scenario(seed)
	if err != nil {
		return nil, nil, err
	}
	if predictive, err = sc.runOne(policy.NewFCDPM(sc.Sys, sc.Dev)); err != nil {
		return nil, nil, err
	}
	sc2, err := Experiment1Scenario(seed)
	if err != nil {
		return nil, nil, err
	}
	sc2.DPM = sim.DPMTimeout
	if timeout, err = sc2.runOne(policy.NewFCDPM(sc2.Sys, sc2.Dev)); err != nil {
		return nil, nil, err
	}
	return predictive, timeout, nil
}

// HydrogenReport converts an Experiment 1 comparison into physical
// hydrogen terms for a cartridge of the given H2 mass.
type HydrogenReport struct {
	Policy        string
	Grams         float64 // H2 burned over the trace
	LitresSTP     float64
	LifetimeHours float64 // on the cartridge
	EndToEndEff   float64 // delivered J / LHV J
}

// Hydrogen expands a comparison into hydrogen units using the 20-cell
// stack conversion.
func Hydrogen(cmp *Comparison, cartridgeGrams float64) ([]HydrogenReport, error) {
	if cartridgeGrams <= 0 {
		return nil, fmt.Errorf("exp: non-positive cartridge mass %v", cartridgeGrams)
	}
	h := fuelcell.PaperHydrogen()
	out := make([]HydrogenReport, 0, len(cmp.Rows))
	for _, row := range cmp.Rows {
		res := cmp.Results[row.Name]
		out = append(out, HydrogenReport{
			Policy:        row.Name,
			Grams:         h.Grams(res.Fuel),
			LitresSTP:     h.LitresSTP(res.Fuel),
			LifetimeHours: h.CartridgeLifetime(cartridgeGrams, res.AvgFuelRate()) / 3600,
			EndToEndEff:   h.EndToEndEfficiency(res.DeliveredEnergy, res.Fuel),
		})
	}
	return out, nil
}

// SeedSummary aggregates a metric across seeds.
type SeedSummary struct {
	Seeds        int
	ASAPNorm     numeric.Summary
	FCNorm       numeric.Summary
	SavingVsASAP numeric.Summary
}

// MultiSeed reruns Experiment 1 (which == 1) or Experiment 2 (which == 2)
// across n seeds and summarizes the normalized-fuel metrics, giving the
// reproduction error bars the paper's single trace cannot. Seeds run on
// the run engine (bounded workers, panic isolation) — each run owns its
// trace, storage clone, and policy state, so tasks share nothing.
func MultiSeed(which int, n int) (*SeedSummary, error) {
	return MultiSeedContext(context.Background(), which, n)
}

// MultiSeedContext is MultiSeed under a context.
func MultiSeedContext(ctx context.Context, which int, n int) (*SeedSummary, error) {
	if n < 1 {
		return nil, fmt.Errorf("exp: need at least one seed")
	}
	if which != 1 && which != 2 {
		return nil, fmt.Errorf("exp: unknown experiment %d", which)
	}
	tasks := make([]runner.Task[*Comparison], n)
	for i := 0; i < n; i++ {
		seed := uint64(i + 1)
		tasks[i] = runner.Task[*Comparison]{
			ID: runner.RunID("multiseed", fmt.Sprintf("exp=%d", which), fmt.Sprintf("seed=%d", seed)),
			Run: func(tctx context.Context) (*Comparison, error) {
				if which == 1 {
					return Experiment1Context(tctx, seed)
				}
				return Experiment2Context(tctx, seed)
			},
		}
	}
	rep, err := runner.Run(ctx, runner.Options{}, tasks)
	if err != nil {
		return nil, err
	}
	if err := rep.FirstError(); err != nil {
		return nil, err
	}
	var asap, fc, saving []float64
	for _, o := range rep.Outcomes {
		cmp := o.Result
		asap = append(asap, cmp.Row("ASAP-DPM").Normalized)
		fc = append(fc, cmp.Row("FC-DPM").Normalized)
		saving = append(saving, cmp.SavingVsASAP)
	}
	return &SeedSummary{
		Seeds:        n,
		ASAPNorm:     numeric.Summarize(asap),
		FCNorm:       numeric.Summarize(fc),
		SavingVsASAP: numeric.Summarize(saving),
	}, nil
}

// SlewRow is one point of the slew-rate ablation.
type SlewRow struct {
	RateAps     float64 // FC output slew limit, A/s (0 = ideal)
	ASAPRate    float64 // avg stack current under ASAP-DPM
	ASAPDeficit float64 // unmet load charge under ASAP-DPM, A-s
	FCRate      float64 // avg stack current under FC-DPM
	FCDeficit   float64 // unmet load charge under FC-DPM, A-s
}

// SlewAblation reruns Experiment 1 with FC output slew-rate limits. Real
// fuel-flow controllers settle over seconds; load following pays for every
// ramp (the storage covers tracking error, eventually browning out), while
// FC-DPM's flat per-slot profile barely moves — a robustness advantage the
// paper's ideal-source model does not surface.
func SlewAblation(seed uint64, rates []float64) ([]SlewRow, error) {
	return SlewAblationContext(context.Background(), seed, rates)
}

// SlewAblationContext is SlewAblation under a context.
func SlewAblationContext(ctx context.Context, seed uint64, rates []float64) ([]SlewRow, error) {
	return fanOut(ctx, "slew", rates, func(ctx context.Context, rate float64) (SlewRow, error) {
		if rate < 0 {
			return SlewRow{}, fmt.Errorf("exp: negative slew rate %v", rate)
		}
		sc, err := Experiment1Scenario(seed)
		if err != nil {
			return SlewRow{}, err
		}
		runWith := func(p sim.Policy) (*sim.Result, error) {
			cfg := sim.Config{
				Sys: sc.Sys, Dev: sc.Dev, Store: sc.Store, Trace: sc.Trace,
				Policy: p, SlewRate: rate,
			}
			if sc.IdlePred != nil {
				cfg.IdlePredictor = sc.IdlePred()
			}
			if sc.ActivePred != nil {
				cfg.ActivePredictor = sc.ActivePred()
			}
			if sc.CurrentPred != nil {
				cfg.CurrentPredictor = sc.CurrentPred()
			}
			return sim.RunContext(ctx, cfg)
		}
		asap, err := runWith(policy.NewASAP(sc.Sys))
		if err != nil {
			return SlewRow{}, err
		}
		fc, err := runWith(policy.NewFCDPM(sc.Sys, sc.Dev))
		if err != nil {
			return SlewRow{}, err
		}
		return SlewRow{
			RateAps:     rate,
			ASAPRate:    asap.AvgFuelRate(),
			ASAPDeficit: asap.Deficit,
			FCRate:      fc.AvgFuelRate(),
			FCDeficit:   fc.Deficit,
		}, nil
	})
}

// BatteryAwareAblation reproduces the paper's §1 claim that battery-aware
// DPM strategies do not transfer to fuel cells: the battery-centric
// shaping policy (max output when loaded, recharge-then-rest when idle)
// against FC-DPM on the Experiment 1 setup.
func BatteryAwareAblation(seed uint64) (batteryAware, fcdpm *sim.Result, err error) {
	sc, err := Experiment1Scenario(seed)
	if err != nil {
		return nil, nil, err
	}
	if batteryAware, err = sc.runOne(policy.NewBatteryAware(sc.Sys)); err != nil {
		return nil, nil, err
	}
	if fcdpm, err = sc.runOne(policy.NewFCDPM(sc.Sys, sc.Dev)); err != nil {
		return nil, nil, err
	}
	return batteryAware, fcdpm, nil
}

// AggregationRow is one point of the idle-aggregation ([6, 7]) ablation.
type AggregationRow struct {
	K           int     // slots merged per group
	MaxDeferral float64 // worst task-completion delay, s
	Sleeps      int     // sleep transitions under FC-DPM
	FCRate      float64 // avg stack current under FC-DPM
}

// AggregationAblation applies idle aggregation (task procrastination) to
// the Experiment 1 trace at increasing factors and reruns FC-DPM: fewer,
// longer idles amortize the sleep-transition overhead at the price of
// task-completion latency.
func AggregationAblation(seed uint64, ks []int) ([]AggregationRow, error) {
	return AggregationAblationContext(context.Background(), seed, ks)
}

// AggregationAblationContext is AggregationAblation under a context.
func AggregationAblationContext(ctx context.Context, seed uint64, ks []int) ([]AggregationRow, error) {
	base, err := Experiment1Scenario(seed)
	if err != nil {
		return nil, err
	}
	return fanOut(ctx, "aggregation", ks, func(ctx context.Context, k int) (AggregationRow, error) {
		agg, err := workload.Aggregate(base.Trace, k)
		if err != nil {
			return AggregationRow{}, err
		}
		defer0, err := workload.MaxDeferral(base.Trace, k)
		if err != nil {
			return AggregationRow{}, err
		}
		sc, err := Experiment1Scenario(seed)
		if err != nil {
			return AggregationRow{}, err
		}
		sc.Trace = agg
		res, err := sc.runOneCtx(ctx, policy.NewFCDPM(sc.Sys, sc.Dev))
		if err != nil {
			return AggregationRow{}, err
		}
		return AggregationRow{
			K:           k,
			MaxDeferral: defer0,
			Sleeps:      res.Sleeps,
			FCRate:      res.AvgFuelRate(),
		}, nil
	})
}

// ActuationRow is one point of the dead-band ablation.
type ActuationRow struct {
	Epsilon   float64 // dead band, A (0 = plain FC-DPM)
	Setpoints int     // FC set-point commands over the trace
	FCRate    float64 // avg stack current
}

// ActuationAblation reruns Experiment 1's FC-DPM with actuation dead bands:
// how much fuel does it cost to command the fuel-flow actuator less often?
func ActuationAblation(seed uint64, epsilons []float64) ([]ActuationRow, error) {
	return ActuationAblationContext(context.Background(), seed, epsilons)
}

// ActuationAblationContext is ActuationAblation under a context.
func ActuationAblationContext(ctx context.Context, seed uint64, epsilons []float64) ([]ActuationRow, error) {
	return fanOut(ctx, "actuation", epsilons, func(ctx context.Context, eps float64) (ActuationRow, error) {
		if eps < 0 {
			return ActuationRow{}, fmt.Errorf("exp: negative dead band %v", eps)
		}
		sc, err := Experiment1Scenario(seed)
		if err != nil {
			return ActuationRow{}, err
		}
		banded, err := policy.NewFCDPMBanded(sc.Sys, sc.Dev, eps)
		if err != nil {
			return ActuationRow{}, err
		}
		res, err := sc.runOneCtx(ctx, banded)
		if err != nil {
			return ActuationRow{}, err
		}
		return ActuationRow{
			Epsilon:   eps,
			Setpoints: res.SetpointChanges,
			FCRate:    res.AvgFuelRate(),
		}, nil
	})
}

// CalibrationRow is one corner of the efficiency-calibration uncertainty
// study.
type CalibrationRow struct {
	Alpha, Beta  float64
	FCNormalized float64 // FC-DPM vs Conv-DPM under the same (α, β)
	SavingVsASAP float64
}

// CalibrationUncertainty propagates measurement uncertainty in the Eq 2
// coefficients through Experiment 1: it reruns the comparison at the four
// corners of a ±relErr box around (α = 0.45, β = 0.13) plus the centre.
// The paper reports single measured values; this bounds how much the
// conclusions depend on them.
func CalibrationUncertainty(seed uint64, relErr float64) ([]CalibrationRow, error) {
	return CalibrationUncertaintyContext(context.Background(), seed, relErr)
}

// CalibrationUncertaintyContext is CalibrationUncertainty under a context.
func CalibrationUncertaintyContext(ctx context.Context, seed uint64, relErr float64) ([]CalibrationRow, error) {
	if relErr < 0 || relErr >= 1 {
		return nil, fmt.Errorf("exp: relative error %v outside [0, 1)", relErr)
	}
	const alpha0, beta0 = 0.45, 0.13
	points := [][2]float64{
		{alpha0, beta0},
		{alpha0 * (1 - relErr), beta0 * (1 - relErr)},
		{alpha0 * (1 - relErr), beta0 * (1 + relErr)},
		{alpha0 * (1 + relErr), beta0 * (1 - relErr)},
		{alpha0 * (1 + relErr), beta0 * (1 + relErr)},
	}
	return fanOut(ctx, "calibration", points, func(ctx context.Context, p [2]float64) (CalibrationRow, error) {
		sys, err := fuelcell.NewSystem(12, 37.5, 0.1, 1.2,
			fuelcell.LinearEfficiency{Alpha: p[0], Beta: p[1]})
		if err != nil {
			return CalibrationRow{}, err
		}
		sc, err := Experiment1Scenario(seed)
		if err != nil {
			return CalibrationRow{}, err
		}
		sc.Sys = sys
		cmp, err := sc.CompareContext(ctx, sc.Policies())
		if err != nil {
			return CalibrationRow{}, err
		}
		return CalibrationRow{
			Alpha: p[0], Beta: p[1],
			FCNormalized: cmp.Row("FC-DPM").Normalized,
			SavingVsASAP: cmp.SavingVsASAP,
		}, nil
	})
}

// ThermalRow summarizes one policy's stack-temperature trajectory.
type ThermalRow struct {
	Policy string
	Stress fuelcell.ThermalStress
}

// ThermalStressAblation integrates the lumped stack-temperature model over
// each policy's Experiment 1 output profile. Flat profiles warm up once
// and hold; load-following profiles cycle the stack thermally every slot —
// the dominant PEM ageing mechanism, and a durability advantage of FC-DPM
// that the paper's isothermal model cannot express.
func ThermalStressAblation(seed uint64) ([]ThermalRow, error) {
	sc, err := Experiment1Scenario(seed)
	if err != nil {
		return nil, err
	}
	sc.RecordProfile = true
	cmp, err := sc.Compare(sc.Policies())
	if err != nil {
		return nil, err
	}
	th := fuelcell.PaperThermal()
	out := make([]ThermalRow, 0, len(cmp.Rows))
	for _, row := range cmp.Rows {
		res := cmp.Results[row.Name]
		ts := make([]float64, len(res.Profile))
		ifs := make([]float64, len(res.Profile))
		for i, p := range res.Profile {
			ts[i] = p.T
			ifs[i] = p.IF
		}
		traj, err := th.Trajectory(sc.Sys, ts, ifs, 1)
		if err != nil {
			return nil, err
		}
		// Skip the warm-up transient: stress over the second half.
		out = append(out, ThermalRow{Policy: row.Name, Stress: fuelcell.Stress(traj[len(traj)/2:])})
	}
	return out, nil
}

// MPCRow is one point of the receding-horizon ablation.
type MPCRow struct {
	Horizon int
	FCRate  float64
	Deficit float64
}

// MPCAblation runs the receding-horizon FC-DPM variant at increasing
// horizons on Experiment 1. On this workload the per-slot policy already
// sits ~0.1 % from the clairvoyant optimum, so the expected (and measured)
// result is "the horizon buys nothing" — an honest negative result
// bounding what lookahead can contribute at the paper's storage scale.
func MPCAblation(seed uint64, horizons []int) ([]MPCRow, error) {
	return MPCAblationContext(context.Background(), seed, horizons)
}

// MPCAblationContext is MPCAblation under a context.
func MPCAblationContext(ctx context.Context, seed uint64, horizons []int) ([]MPCRow, error) {
	return fanOut(ctx, "mpc", horizons, func(ctx context.Context, h int) (MPCRow, error) {
		if h < 1 {
			return MPCRow{}, fmt.Errorf("exp: horizon %d < 1", h)
		}
		sc, err := Experiment1Scenario(seed)
		if err != nil {
			return MPCRow{}, err
		}
		mpc, err := policy.NewMPC(sc.Sys, sc.Dev, h)
		if err != nil {
			return MPCRow{}, err
		}
		res, err := sc.runOneCtx(ctx, mpc)
		if err != nil {
			return MPCRow{}, err
		}
		return MPCRow{Horizon: h, FCRate: res.AvgFuelRate(), Deficit: res.Deficit}, nil
	})
}

// Robustness is the Monte-Carlo model-uncertainty study: FC-DPM's saving
// vs ASAP measured across trials that jointly perturb the device currents,
// transition overheads, and efficiency coefficients by ±pct and redraw the
// trace — the strongest form of "the conclusion does not hinge on any one
// calibration number".
type Robustness struct {
	Trials int
	Pct    float64
	Saving numeric.Summary
	FCNorm numeric.Summary
	// Wins counts trials where FC-DPM strictly beat ASAP-DPM.
	Wins int
}

// robustnessTrial is one perturbed trial's metrics.
type robustnessTrial struct {
	Saving float64
	Norm   float64
}

// RobustnessStudy runs n perturbed Experiment 1 trials on the run engine.
func RobustnessStudy(seed uint64, n int, pct float64) (*Robustness, error) {
	return RobustnessStudyContext(context.Background(), seed, n, pct)
}

// RobustnessStudyContext is RobustnessStudy under a context.
func RobustnessStudyContext(ctx context.Context, seed uint64, n int, pct float64) (*Robustness, error) {
	if n < 1 {
		return nil, fmt.Errorf("exp: need at least one trial")
	}
	if pct <= 0 || pct >= 0.5 {
		return nil, fmt.Errorf("exp: perturbation %v outside (0, 0.5)", pct)
	}
	tasks := make([]runner.Task[robustnessTrial], n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = runner.Task[robustnessTrial]{
			ID: runner.RunID("robustness", fmt.Sprintf("seed=%d", seed), fmt.Sprintf("trial=%d", i)),
			Run: func(tctx context.Context) (robustnessTrial, error) {
				rng := numeric.NewRNG(seed + uint64(i)*7919)
				perturb := func(v float64) float64 { return v * (1 + pct*(2*rng.Float64()-1)) }

				sc, err := Experiment1Scenario(seed + uint64(i))
				if err != nil {
					return robustnessTrial{}, err
				}
				// Perturb the device model.
				dev := *sc.Dev
				dev.Isdb = perturb(dev.Isdb)
				dev.Islp = perturb(dev.Islp)
				if dev.Islp >= dev.Isdb {
					dev.Islp = dev.Isdb * 0.6
				}
				dev.IPD = perturb(dev.IPD)
				dev.IWU = perturb(dev.IWU)
				dev.TauPD = perturb(dev.TauPD)
				dev.TauWU = perturb(dev.TauWU)
				sc.Dev = &dev
				// Perturb the efficiency coefficients.
				sys, err := fuelcell.NewSystem(12, 37.5, 0.1, 1.2, fuelcell.LinearEfficiency{
					Alpha: perturb(0.45),
					Beta:  perturb(0.13),
				})
				if err != nil {
					return robustnessTrial{}, err
				}
				sc.Sys = sys
				cmp, err := sc.CompareContext(tctx, sc.Policies())
				if err != nil {
					return robustnessTrial{}, err
				}
				return robustnessTrial{Saving: cmp.SavingVsASAP, Norm: cmp.Row("FC-DPM").Normalized}, nil
			},
		}
	}
	rep, err := runner.Run(ctx, runner.Options{}, tasks)
	if err != nil {
		return nil, err
	}
	if err := rep.FirstError(); err != nil {
		return nil, err
	}
	savings := make([]float64, n)
	norms := make([]float64, n)
	for i, o := range rep.Outcomes {
		savings[i] = o.Result.Saving
		norms[i] = o.Result.Norm
	}
	r := &Robustness{Trials: n, Pct: pct, Saving: numeric.Summarize(savings), FCNorm: numeric.Summarize(norms)}
	for _, s := range savings {
		if s > 0 {
			r.Wins++
		}
	}
	return r, nil
}

// BurstyPredictorStudy runs FC-DPM on the regime-switching workload under
// each idle predictor. With correlated idles and a 10 s break-even time,
// the sleep decision is exactly a regime-detection problem: predictors
// that model history (Markov chain, last-value) beat the paper's
// exponential average, which smears across regime boundaries — the
// workload class where predictor choice finally matters end to end.
func BurstyPredictorStudy(seed uint64) ([]PredictorRow, error) {
	return BurstyPredictorStudyContext(context.Background(), seed)
}

// BurstyPredictorStudyContext is BurstyPredictorStudy under a context.
func BurstyPredictorStudyContext(ctx context.Context, seed uint64) ([]PredictorRow, error) {
	cfg := workload.DefaultBurstyConfig()
	cfg.Seed = seed
	trace, err := workload.Bursty(cfg)
	if err != nil {
		return nil, err
	}
	idle := trace.IdleLengths()
	makeScenario := func() *Scenario {
		return &Scenario{
			Name:        "bursty predictor study",
			Sys:         fuelcell.PaperSystem(),
			Dev:         device.Synthetic(),
			Store:       scenarioStore(),
			Trace:       trace,
			ActivePred:  expAvg(0.5, 3),
			CurrentPred: frozen(1.2),
		}
	}
	preds := []func() predict.Predictor{
		expAvg(0.5, 10),
		func() predict.Predictor { return predict.NewLastValue(10) },
		func() predict.Predictor { return predict.MustMarkov(8, 2, 40, 10) },
		func() predict.Predictor { return predict.MustTree(8, 2, 2, 40, 10) },
		func() predict.Predictor { return predict.NewOracle(idle, 10) },
	}
	return fanOut(ctx, "bursty-predictor", preds, func(ctx context.Context, mk func() predict.Predictor) (PredictorRow, error) {
		sc := makeScenario()
		sc.IdlePred = mk
		conv, err := sc.runOneCtx(ctx, policy.NewConv(sc.Sys))
		if err != nil {
			return PredictorRow{}, err
		}
		fc, err := sc.runOneCtx(ctx, policy.NewFCDPM(sc.Sys, sc.Dev))
		if err != nil {
			return PredictorRow{}, err
		}
		acc, err := predict.Evaluate(mk(), idle)
		if err != nil {
			return PredictorRow{}, err
		}
		return PredictorRow{
			Predictor:    mk().Name(),
			Accuracy:     acc,
			FCNormalized: fc.NormalizedFuel(conv),
		}, nil
	})
}
