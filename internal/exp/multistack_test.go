package exp

import (
	"fmt"
	"testing"
)

// TestMultiStackStudyWaterFillDominates is the PR's acceptance check:
// on heterogeneous (degraded-mix) racks, water-filling uses strictly
// less fuel than equal-split in every (K, intensity) cell, and the row
// set is byte-stable across batch widths.
func TestMultiStackStudyWaterFillDominates(t *testing.T) {
	cfg := MultiStackConfig{
		Ks:          []int{2, 4},
		Intensities: []float64{1.5, 2.5},
		Duration:    400,
		Batch:       1,
	}
	rows, err := MultiStackStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*2*3 {
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	fuel := map[string]float64{}
	for _, r := range rows {
		if r.Fuel <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
		fuel[fmt.Sprintf("%s/%d/%g", r.Alloc, r.K, r.Intensity)] = r.Fuel
	}
	for _, k := range cfg.Ks {
		for _, x := range cfg.Intensities {
			eq := fuel[fmt.Sprintf("equal-split/%d/%g", k, x)]
			wf := fuel[fmt.Sprintf("water-filling/%d/%g", k, x)]
			if wf >= eq {
				t.Errorf("K=%d x%g: water-filling %v not strictly below equal-split %v", k, x, wf, eq)
			}
		}
	}

	// Same study at a different lane width must be bit-identical.
	cfg.Batch = 64
	wide, err := MultiStackStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		if rows[i] != wide[i] {
			t.Fatalf("row %d differs across batch widths:\n  batch 1:  %+v\n  batch 64: %+v", i, rows[i], wide[i])
		}
	}
}

// TestMultiStackStudyHomogeneousTies: with an all-healthy rack the even
// split is already optimal, so water-filling matches equal-split to
// solver tolerance, and no allocator beats it — health-rotation's
// greedy concentration pays a convexity penalty instead.
func TestMultiStackStudyHomogeneousTies(t *testing.T) {
	rows, err := MultiStackStudy(MultiStackConfig{
		Ks:          []int{2},
		Intensities: []float64{2},
		DegradedMix: []float64{0},
		Duration:    300,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.FuelVsEqual < 0.999 {
			t.Errorf("homogeneous rack: %s below equal-split fuel (%v×)", r.Alloc, r.FuelVsEqual)
		}
		if r.Alloc == "water-filling" && r.FuelVsEqual > 1.001 {
			t.Errorf("homogeneous rack: water-filling at %v× equal-split fuel", r.FuelVsEqual)
		}
	}
}
