package exp

import (
	"context"
	"fmt"

	"fcdpm/internal/device"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/policy"
	"fcdpm/internal/sim"
	"fcdpm/internal/stochdpm"
	"fcdpm/internal/workload"
)

// Experiment3Scenario is a beyond-paper stress case: the Experiment 2
// device under a Pareto-idle workload whose *median* idle is below the
// 10 s break-even time while the heavy tail carries most of the sleeping
// opportunity. The paper's two workloads are benign (every camcorder idle
// is sleep-worthy; the synthetic idles are uniform around 15 s); this one
// makes the DPM decision genuinely hard and separates the sleep policies.
func Experiment3Scenario(seed uint64) (*Scenario, error) {
	cfg := workload.DefaultHeavyTailConfig()
	cfg.Seed = seed
	trace, err := workload.HeavyTail(cfg)
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Name:        "Experiment 3 (heavy-tail idle, beyond paper)",
		Sys:         fuelcell.PaperSystem(),
		Dev:         device.Synthetic(),
		Store:       scenarioStore(),
		Trace:       trace,
		IdlePred:    expAvg(0.5, 8),
		ActivePred:  expAvg(0.5, 3),
		CurrentPred: frozen(1.2),
	}, nil
}

// Experiment3 compares the three source policies on the heavy-tail
// workload.
func Experiment3(seed uint64) (*Comparison, error) {
	return Experiment3Context(context.Background(), seed)
}

// Experiment3Context is Experiment3 under a context.
func Experiment3Context(ctx context.Context, seed uint64) (*Comparison, error) {
	sc, err := Experiment3Scenario(seed)
	if err != nil {
		return nil, err
	}
	return sc.CompareContext(ctx, sc.Policies())
}

// DPMRow is one device-side sleep policy's outcome under FC-DPM.
type DPMRow struct {
	Mode    string
	Sleeps  int
	FCRate  float64 // avg stack current
	Deficit float64
}

// Experiment3DPM runs FC-DPM under each sleep policy on the heavy-tail
// workload. On i.i.d. heavy-tailed idles, history-based prediction has
// nothing to learn — the exponential average hovers near the sub-Tbe mean
// and rarely sleeps — while the reactive timeout policy (the classic
// 2-competitive strategy) catches exactly the tail. The oracle bounds both.
func Experiment3DPM(seed uint64) ([]DPMRow, error) {
	return Experiment3DPMContext(context.Background(), seed)
}

// Experiment3DPMContext is Experiment3DPM under a context.
func Experiment3DPMContext(ctx context.Context, seed uint64) ([]DPMRow, error) {
	modes := []sim.DPMMode{sim.DPMPredictive, sim.DPMTimeout, sim.DPMOracle, sim.DPMNeverSleep, sim.DPMAlwaysSleep}
	out, err := fanOut(ctx, "exp3-dpm", modes, func(ctx context.Context, mode sim.DPMMode) (DPMRow, error) {
		sc, err := Experiment3Scenario(seed)
		if err != nil {
			return DPMRow{}, err
		}
		sc.DPM = mode
		res, err := sc.runOneCtx(ctx, policy.NewFCDPM(sc.Sys, sc.Dev))
		if err != nil {
			return DPMRow{}, fmt.Errorf("exp: experiment 3 %s: %w", mode, err)
		}
		return DPMRow{
			Mode:    mode.String(),
			Sleeps:  res.Sleeps,
			FCRate:  res.AvgFuelRate(),
			Deficit: res.Deficit,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	// The stochastic-control entry ([4, 5]): a timeout adapted online to
	// the learned idle distribution.
	sc, err := Experiment3Scenario(seed)
	if err != nil {
		return nil, err
	}
	sc.DPM = sim.DPMTimeout
	adapter, err := stochdpm.NewAdaptiveTimeout(sc.Dev, 100)
	if err != nil {
		return nil, err
	}
	sc.TimeoutAdapter = adapter
	res, err := sc.runOneCtx(ctx, policy.NewFCDPM(sc.Sys, sc.Dev))
	if err != nil {
		return nil, fmt.Errorf("exp: experiment 3 adaptive timeout: %w", err)
	}
	out = append(out, DPMRow{
		Mode:    "adaptive-timeout",
		Sleeps:  res.Sleeps,
		FCRate:  res.AvgFuelRate(),
		Deficit: res.Deficit,
	})
	return out, nil
}
