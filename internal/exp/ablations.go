package exp

import (
	"context"
	"fmt"
	"math"

	"fcdpm/internal/fuelcell"
	"fcdpm/internal/policy"
	"fcdpm/internal/predict"
	"fcdpm/internal/runner"
	"fcdpm/internal/sim"
	"fcdpm/internal/storage"
)

// SweepPoint is one abscissa of an ablation sweep.
type SweepPoint struct {
	X            float64 // swept parameter value
	SavingVsASAP float64 // FC-DPM fuel saving over ASAP-DPM at this point
	FCNormalized float64 // FC-DPM fuel normalized to Conv-DPM
}

// CapacitySweep reruns Experiment 1 across storage capacities (in A-s),
// quantifying how much buffer FC-DPM's flattening needs. The paper's
// supercap is 6 A-s.
func CapacitySweep(seed uint64, capacities []float64) ([]SweepPoint, error) {
	return CapacitySweepContext(context.Background(), seed, capacities)
}

// CapacitySweepContext is CapacitySweep under a context.
func CapacitySweepContext(ctx context.Context, seed uint64, capacities []float64) ([]SweepPoint, error) {
	return sweepParallel(ctx, capacities, func(ctx context.Context, cmax float64) (SweepPoint, error) {
		sc, err := Experiment1Scenario(seed)
		if err != nil {
			return SweepPoint{}, err
		}
		// Start (and target) at the reserve operating point so FC-DPM has
		// idle-charging headroom at every capacity; see ReserveCharge.
		// A non-positive capacity surfaces as the storage ConfigError.
		store, err := storage.NewSuperCap(cmax, math.Min(ReserveCharge, cmax/2))
		if err != nil {
			return SweepPoint{}, err
		}
		sc.Store = store
		cmp, err := sc.CompareContext(ctx, sc.Policies())
		if err != nil {
			return SweepPoint{}, err
		}
		return SweepPoint{X: cmax, SavingVsASAP: cmp.SavingVsASAP,
			FCNormalized: cmp.Row("FC-DPM").Normalized}, nil
	})
}

// sweepParallel evaluates f at each abscissa on the run engine (bounded
// workers, panic isolation), preserving order. Each evaluation builds its
// own scenario, so nothing is shared.
func sweepParallel(ctx context.Context, xs []float64, f func(ctx context.Context, x float64) (SweepPoint, error)) ([]SweepPoint, error) {
	return fanOut(ctx, "ablation", xs, f)
}

// fanOut evaluates f at each input concurrently on the run engine (bounded
// workers, panic isolation) and returns the rows in input order, so sweep
// tables stay deterministic regardless of completion order. Inputs must
// not share mutable state across evaluations — build a fresh scenario (or
// share only read-only ones) inside f. Each evaluation receives the
// task's context (derived from ctx), so canceling ctx interrupts the
// whole fan-out — sweeps launched through the server or an interrupted
// CLI no longer run to completion unobserved.
func fanOut[T, R any](ctx context.Context, name string, inputs []T, f func(ctx context.Context, in T) (R, error)) ([]R, error) {
	tasks := make([]runner.Task[R], len(inputs))
	for i, in := range inputs {
		in := in
		tasks[i] = runner.Task[R]{
			ID:  runner.RunID(name, fmt.Sprintf("i=%d", i)),
			Run: func(tctx context.Context) (R, error) { return f(tctx, in) },
		}
	}
	rep, err := runner.Run(ctx, runner.Options{}, tasks)
	if err != nil {
		if rep != nil && rep.FirstError() != nil {
			return nil, rep.FirstError()
		}
		return nil, err
	}
	if err := rep.FirstError(); err != nil {
		return nil, err
	}
	out := make([]R, len(inputs))
	for i, o := range rep.Outcomes {
		out[i] = o.Result
	}
	return out, nil
}

// BetaSweep reruns Experiment 1 across efficiency slopes β (with α fixed at
// the paper's 0.45). At β = 0 the fuel map is linear and flattening brings
// nothing; the paper's measured β = 0.13 is where FC-DPM earns its keep.
func BetaSweep(seed uint64, betas []float64) ([]SweepPoint, error) {
	return BetaSweepContext(context.Background(), seed, betas)
}

// BetaSweepContext is BetaSweep under a context.
func BetaSweepContext(ctx context.Context, seed uint64, betas []float64) ([]SweepPoint, error) {
	return sweepParallel(ctx, betas, func(ctx context.Context, beta float64) (SweepPoint, error) {
		if beta < 0 {
			return SweepPoint{}, fmt.Errorf("exp: negative beta %v", beta)
		}
		sys, err := fuelcell.NewSystem(12, 37.5, 0.1, 1.2, fuelcell.LinearEfficiency{Alpha: 0.45, Beta: beta})
		if err != nil {
			return SweepPoint{}, err
		}
		sc, err := Experiment1Scenario(seed)
		if err != nil {
			return SweepPoint{}, err
		}
		sc.Sys = sys
		cmp, err := sc.CompareContext(ctx, sc.Policies())
		if err != nil {
			return SweepPoint{}, err
		}
		return SweepPoint{X: beta, SavingVsASAP: cmp.SavingVsASAP,
			FCNormalized: cmp.Row("FC-DPM").Normalized}, nil
	})
}

// RhoSweep reruns Experiment 1 across idle-prediction factors ρ (Eq 14).
func RhoSweep(seed uint64, rhos []float64) ([]SweepPoint, error) {
	return RhoSweepContext(context.Background(), seed, rhos)
}

// RhoSweepContext is RhoSweep under a context.
func RhoSweepContext(ctx context.Context, seed uint64, rhos []float64) ([]SweepPoint, error) {
	return sweepParallel(ctx, rhos, func(ctx context.Context, rho float64) (SweepPoint, error) {
		if rho < 0 || rho > 1 {
			return SweepPoint{}, fmt.Errorf("exp: rho %v outside [0,1]", rho)
		}
		sc, err := Experiment1Scenario(seed)
		if err != nil {
			return SweepPoint{}, err
		}
		sc.IdlePred = expAvg(rho, 14)
		cmp, err := sc.CompareContext(ctx, sc.Policies())
		if err != nil {
			return SweepPoint{}, err
		}
		return SweepPoint{X: rho, SavingVsASAP: cmp.SavingVsASAP,
			FCNormalized: cmp.Row("FC-DPM").Normalized}, nil
	})
}

// PredictorRow is one line of the predictor ablation.
type PredictorRow struct {
	Predictor    string
	Accuracy     predict.Accuracy // on the idle-period series
	FCNormalized float64          // FC-DPM fuel normalized to Conv-DPM
}

// PredictorAblation runs Experiment 1's FC-DPM under different idle-period
// predictors and reports both prediction accuracy and fuel impact.
func PredictorAblation(seed uint64) ([]PredictorRow, error) {
	return PredictorAblationContext(context.Background(), seed)
}

// PredictorAblationContext is PredictorAblation under a context.
func PredictorAblationContext(ctx context.Context, seed uint64) ([]PredictorRow, error) {
	sc, err := Experiment1Scenario(seed)
	if err != nil {
		return nil, err
	}
	idle := sc.Trace.IdleLengths()
	preds := []func() predict.Predictor{
		expAvg(0.5, 14),
		func() predict.Predictor { return predict.NewLastValue(14) },
		func() predict.Predictor { return predict.NewMovingAverage(5, 14) },
		func() predict.Predictor { return predict.NewRegression(5, 14) },
		func() predict.Predictor { return predict.NewTree(8, 2, 8, 20, 14) },
		func() predict.Predictor { return predict.NewMarkov(8, 8, 20, 14) },
		func() predict.Predictor { return predict.NewOracle(idle, 14) },
	}
	return fanOut(ctx, "predictor", preds, func(ctx context.Context, mk func() predict.Predictor) (PredictorRow, error) {
		sc, err := Experiment1Scenario(seed)
		if err != nil {
			return PredictorRow{}, err
		}
		sc.IdlePred = mk
		cmp, err := sc.CompareContext(ctx, sc.Policies())
		if err != nil {
			return PredictorRow{}, err
		}
		acc, err := predict.Evaluate(mk(), idle)
		if err != nil {
			return PredictorRow{}, err
		}
		return PredictorRow{
			Predictor:    mk().Name(),
			Accuracy:     acc,
			FCNormalized: cmp.Row("FC-DPM").Normalized,
		}, nil
	})
}

// ConstantEtaAblation reruns Experiment 1 with the constant-efficiency
// (on/off-fan, [10,11]) system. With a flat ηs the fuel map is linear, so
// FC-DPM's flattening advantage over ASAP should collapse toward zero —
// the structural reason the paper needed the PWM-PFM + variable-fan
// configuration.
func ConstantEtaAblation(seed uint64) (linear, constant *Comparison, err error) {
	if linear, err = Experiment1(seed); err != nil {
		return nil, nil, err
	}
	sysConst, err := fuelcell.NewSystem(12, 37.5, 0.1, 1.2, fuelcell.ConstantEfficiency{Value: 0.37})
	if err != nil {
		return nil, nil, err
	}
	sc, err := Experiment1Scenario(seed)
	if err != nil {
		return nil, nil, err
	}
	sc.Sys = sysConst
	constant, err = sc.Compare(sc.Policies())
	if err != nil {
		return nil, nil, err
	}
	return linear, constant, nil
}

// StorageModelAblation runs Experiment 1's FC-DPM on the ideal supercap
// versus the KiBaM Li-ion model, exposing how battery non-linearities
// (which the FC-DPM planner does not model) perturb the outcome.
func StorageModelAblation(seed uint64) (super, liion *Comparison, err error) {
	if super, err = Experiment1(seed); err != nil {
		return nil, nil, err
	}
	batt, err := storage.NewLiIon(6, 0.6, 0.05, ReserveCharge)
	if err != nil {
		return nil, nil, err
	}
	sc, err := Experiment1Scenario(seed)
	if err != nil {
		return nil, nil, err
	}
	sc.Store = batt
	liion, err = sc.Compare(sc.Policies())
	if err != nil {
		return nil, nil, err
	}
	return super, liion, nil
}

// DPMModeAblation reruns Experiment 1 under each device-side sleep policy.
func DPMModeAblation(seed uint64) (map[string]*Comparison, error) {
	return DPMModeAblationContext(context.Background(), seed)
}

// DPMModeAblationContext is DPMModeAblation under a context.
func DPMModeAblationContext(ctx context.Context, seed uint64) (map[string]*Comparison, error) {
	modes := []sim.DPMMode{sim.DPMPredictive, sim.DPMNeverSleep, sim.DPMAlwaysSleep, sim.DPMOracle}
	cmps, err := fanOut(ctx, "dpm-mode", modes, func(ctx context.Context, mode sim.DPMMode) (*Comparison, error) {
		sc, err := Experiment1Scenario(seed)
		if err != nil {
			return nil, err
		}
		sc.DPM = mode
		return sc.CompareContext(ctx, sc.Policies())
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]*Comparison, len(modes))
	for i, mode := range modes {
		out[mode.String()] = cmps[i]
	}
	return out, nil
}

// FlatOracle runs the offline best *fixed* FC output over the Experiment 1
// trace — by convexity the capacity-unconstrained lower bound — and
// returns it alongside FC-DPM for a gap analysis. The flat setting is the
// total demanded charge divided by total time, computed from a Conv-DPM
// dry run's load accounting.
func FlatOracle(seed uint64) (flat *sim.Result, fcdpm *sim.Result, err error) {
	sc, err := Experiment1Scenario(seed)
	if err != nil {
		return nil, nil, err
	}
	// Dry run to learn total load charge and duration.
	dry, err := sc.runOne(policy.NewConv(sc.Sys))
	if err != nil {
		return nil, nil, err
	}
	avgLoad := dry.LoadEnergy / (sc.Sys.VF * dry.Duration)
	flatPol := policy.NewFlat(sc.Sys, avgLoad)
	if flat, err = sc.runOne(flatPol); err != nil {
		return nil, nil, err
	}
	if fcdpm, err = sc.runOne(policy.NewFCDPM(sc.Sys, sc.Dev)); err != nil {
		return nil, nil, err
	}
	return flat, fcdpm, nil
}
