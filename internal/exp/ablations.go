package exp

import (
	"context"
	"fmt"
	"math"

	"fcdpm/internal/fuelcell"
	"fcdpm/internal/policy"
	"fcdpm/internal/predict"
	"fcdpm/internal/runner"
	"fcdpm/internal/sim"
	"fcdpm/internal/storage"
)

// SweepPoint is one abscissa of an ablation sweep.
type SweepPoint struct {
	X            float64 // swept parameter value
	SavingVsASAP float64 // FC-DPM fuel saving over ASAP-DPM at this point
	FCNormalized float64 // FC-DPM fuel normalized to Conv-DPM
}

// CapacitySweep reruns Experiment 1 across storage capacities (in A-s),
// quantifying how much buffer FC-DPM's flattening needs. The paper's
// supercap is 6 A-s.
func CapacitySweep(seed uint64, capacities []float64) ([]SweepPoint, error) {
	return CapacitySweepContext(context.Background(), seed, capacities)
}

// CapacitySweepContext is CapacitySweep under a context.
func CapacitySweepContext(ctx context.Context, seed uint64, capacities []float64) ([]SweepPoint, error) {
	return sweepParallel(ctx, capacities, func(ctx context.Context, cmax float64) (SweepPoint, error) {
		sc, err := capacityScenario(seed, cmax)
		if err != nil {
			return SweepPoint{}, err
		}
		cmp, err := sc.CompareContext(ctx, sc.Policies())
		if err != nil {
			return SweepPoint{}, err
		}
		return SweepPoint{X: cmax, SavingVsASAP: cmp.SavingVsASAP,
			FCNormalized: cmp.Row("FC-DPM").Normalized}, nil
	})
}

// CapacitySweepBatched is the capacity sweep on the batched simulation
// core: all points' policy rows run in lockstep over one trace walk, in
// chunks of at most laneWidth lanes.
func CapacitySweepBatched(ctx context.Context, seed uint64, capacities []float64, laneWidth int) ([]SweepPoint, error) {
	return sweepBatched(ctx, capacities, laneWidth, func(cmax float64) (*Scenario, error) {
		return capacityScenario(seed, cmax)
	})
}

// capacityScenario builds one capacity-sweep point: Experiment 1 with the
// supercap resized to cmax. Start (and target) at the reserve operating
// point so FC-DPM has idle-charging headroom at every capacity; see
// ReserveCharge. A non-positive capacity surfaces as the storage
// ConfigError.
func capacityScenario(seed uint64, cmax float64) (*Scenario, error) {
	sc, err := Experiment1Scenario(seed)
	if err != nil {
		return nil, err
	}
	store, err := storage.NewSuperCap(cmax, math.Min(ReserveCharge, cmax/2))
	if err != nil {
		return nil, err
	}
	sc.Store = store
	return sc, nil
}

// sweepParallel evaluates f at each abscissa on the run engine (bounded
// workers, panic isolation), preserving order. Each evaluation builds its
// own scenario, so nothing is shared.
func sweepParallel(ctx context.Context, xs []float64, f func(ctx context.Context, x float64) (SweepPoint, error)) ([]SweepPoint, error) {
	return fanOut(ctx, "ablation", xs, f)
}

// sweepBatched evaluates the sweep on the batched simulation core: every
// point's policy rows become lanes of one trace walk, executed in
// sim.BatchRunner chunks of at most laneWidth lanes. All points of an
// ablation share the generated trace (same seed, same generator), so the
// per-slot decode is shared wherever the lanes' predictors agree and the
// fuel-map memo is shared across each chunk. scen must build an
// independent scenario per point — the lanes run interleaved, not
// serially.
func sweepBatched(ctx context.Context, xs []float64, laneWidth int, scen func(x float64) (*Scenario, error)) ([]SweepPoint, error) {
	if laneWidth < 1 {
		laneWidth = 1
	}
	type laneRef struct{ point, row int }
	var lanes []sim.Lane
	var refs []laneRef
	scs := make([]*Scenario, len(xs))
	results := make([][]*sim.Result, len(xs))
	for i, x := range xs {
		sc, err := scen(x)
		if err != nil {
			return nil, err
		}
		pols := sc.Policies()
		scs[i] = sc
		results[i] = make([]*sim.Result, len(pols))
		for j, p := range pols {
			lanes = append(lanes, sim.Lane{Cfg: sc.simConfig(p)})
			refs = append(refs, laneRef{point: i, row: j})
		}
	}
	for start := 0; start < len(lanes); start += laneWidth {
		end := min(start+laneWidth, len(lanes))
		b, err := sim.NewBatchRunner(lanes[start:end])
		if err != nil {
			return nil, fmt.Errorf("exp: batched sweep: %w", err)
		}
		out, err := b.RunContext(ctx)
		if err != nil {
			return nil, fmt.Errorf("exp: batched sweep: %w", err)
		}
		for k, lr := range out {
			r := refs[start+k]
			if lr.Err != nil {
				return nil, fmt.Errorf("exp: %s: %w", scs[r.point].Name, lr.Err)
			}
			// Each chunk's runner is executed exactly once, so the
			// aliased results stay valid after it is abandoned.
			results[r.point][r.row] = lr.Res
		}
	}
	pts := make([]SweepPoint, len(xs))
	for i := range xs {
		cmp := buildComparison(scs[i].Name, results[i])
		pts[i] = SweepPoint{X: xs[i], SavingVsASAP: cmp.SavingVsASAP,
			FCNormalized: cmp.Row("FC-DPM").Normalized}
	}
	return pts, nil
}

// fanOut evaluates f at each input concurrently on the run engine (bounded
// workers, panic isolation) and returns the rows in input order, so sweep
// tables stay deterministic regardless of completion order. Inputs must
// not share mutable state across evaluations — build a fresh scenario (or
// share only read-only ones) inside f. Each evaluation receives the
// task's context (derived from ctx), so canceling ctx interrupts the
// whole fan-out — sweeps launched through the server or an interrupted
// CLI no longer run to completion unobserved.
func fanOut[T, R any](ctx context.Context, name string, inputs []T, f func(ctx context.Context, in T) (R, error)) ([]R, error) {
	tasks := make([]runner.Task[R], len(inputs))
	for i, in := range inputs {
		in := in
		tasks[i] = runner.Task[R]{
			ID:  runner.RunID(name, fmt.Sprintf("i=%d", i)),
			Run: func(tctx context.Context) (R, error) { return f(tctx, in) },
		}
	}
	rep, err := runner.Run(ctx, runner.Options{}, tasks)
	if err != nil {
		if rep != nil && rep.FirstError() != nil {
			return nil, rep.FirstError()
		}
		return nil, err
	}
	if err := rep.FirstError(); err != nil {
		return nil, err
	}
	out := make([]R, len(inputs))
	for i, o := range rep.Outcomes {
		out[i] = o.Result
	}
	return out, nil
}

// BetaSweep reruns Experiment 1 across efficiency slopes β (with α fixed at
// the paper's 0.45). At β = 0 the fuel map is linear and flattening brings
// nothing; the paper's measured β = 0.13 is where FC-DPM earns its keep.
func BetaSweep(seed uint64, betas []float64) ([]SweepPoint, error) {
	return BetaSweepContext(context.Background(), seed, betas)
}

// BetaSweepContext is BetaSweep under a context.
func BetaSweepContext(ctx context.Context, seed uint64, betas []float64) ([]SweepPoint, error) {
	return sweepParallel(ctx, betas, func(ctx context.Context, beta float64) (SweepPoint, error) {
		sc, err := betaScenario(seed, beta)
		if err != nil {
			return SweepPoint{}, err
		}
		cmp, err := sc.CompareContext(ctx, sc.Policies())
		if err != nil {
			return SweepPoint{}, err
		}
		return SweepPoint{X: beta, SavingVsASAP: cmp.SavingVsASAP,
			FCNormalized: cmp.Row("FC-DPM").Normalized}, nil
	})
}

// BetaSweepBatched is the efficiency-slope sweep on the batched
// simulation core (see CapacitySweepBatched).
func BetaSweepBatched(ctx context.Context, seed uint64, betas []float64, laneWidth int) ([]SweepPoint, error) {
	return sweepBatched(ctx, betas, laneWidth, func(beta float64) (*Scenario, error) {
		return betaScenario(seed, beta)
	})
}

// betaScenario builds one beta-sweep point: Experiment 1 with the
// efficiency slope replaced (α fixed at the paper's 0.45).
func betaScenario(seed uint64, beta float64) (*Scenario, error) {
	if beta < 0 {
		return nil, fmt.Errorf("exp: negative beta %v", beta)
	}
	sys, err := fuelcell.NewSystem(12, 37.5, 0.1, 1.2, fuelcell.LinearEfficiency{Alpha: 0.45, Beta: beta})
	if err != nil {
		return nil, err
	}
	sc, err := Experiment1Scenario(seed)
	if err != nil {
		return nil, err
	}
	sc.Sys = sys
	return sc, nil
}

// RhoSweep reruns Experiment 1 across idle-prediction factors ρ (Eq 14).
func RhoSweep(seed uint64, rhos []float64) ([]SweepPoint, error) {
	return RhoSweepContext(context.Background(), seed, rhos)
}

// RhoSweepContext is RhoSweep under a context.
func RhoSweepContext(ctx context.Context, seed uint64, rhos []float64) ([]SweepPoint, error) {
	return sweepParallel(ctx, rhos, func(ctx context.Context, rho float64) (SweepPoint, error) {
		sc, err := rhoScenario(seed, rho)
		if err != nil {
			return SweepPoint{}, err
		}
		cmp, err := sc.CompareContext(ctx, sc.Policies())
		if err != nil {
			return SweepPoint{}, err
		}
		return SweepPoint{X: rho, SavingVsASAP: cmp.SavingVsASAP,
			FCNormalized: cmp.Row("FC-DPM").Normalized}, nil
	})
}

// RhoSweepBatched is the prediction-factor sweep on the batched
// simulation core (see CapacitySweepBatched).
func RhoSweepBatched(ctx context.Context, seed uint64, rhos []float64, laneWidth int) ([]SweepPoint, error) {
	return sweepBatched(ctx, rhos, laneWidth, func(rho float64) (*Scenario, error) {
		return rhoScenario(seed, rho)
	})
}

// rhoScenario builds one rho-sweep point: Experiment 1 with the idle
// exponential-average factor replaced.
func rhoScenario(seed uint64, rho float64) (*Scenario, error) {
	if math.IsNaN(rho) || rho < 0 || rho > 1 {
		return nil, fmt.Errorf("exp: rho %v outside [0,1]", rho)
	}
	sc, err := Experiment1Scenario(seed)
	if err != nil {
		return nil, err
	}
	sc.IdlePred = expAvg(rho, 14)
	return sc, nil
}

// PredictorRow is one line of the predictor ablation.
type PredictorRow struct {
	Predictor    string
	Accuracy     predict.Accuracy // on the idle-period series
	FCNormalized float64          // FC-DPM fuel normalized to Conv-DPM
}

// PredictorAblation runs Experiment 1's FC-DPM under different idle-period
// predictors and reports both prediction accuracy and fuel impact.
func PredictorAblation(seed uint64) ([]PredictorRow, error) {
	return PredictorAblationContext(context.Background(), seed)
}

// PredictorAblationContext is PredictorAblation under a context.
func PredictorAblationContext(ctx context.Context, seed uint64) ([]PredictorRow, error) {
	sc, err := Experiment1Scenario(seed)
	if err != nil {
		return nil, err
	}
	idle := sc.Trace.IdleLengths()
	preds := []func() predict.Predictor{
		expAvg(0.5, 14),
		func() predict.Predictor { return predict.NewLastValue(14) },
		func() predict.Predictor { return predict.MustMovingAverage(5, 14) },
		func() predict.Predictor { return predict.MustRegression(5, 14) },
		func() predict.Predictor { return predict.MustTree(8, 2, 8, 20, 14) },
		func() predict.Predictor { return predict.MustMarkov(8, 8, 20, 14) },
		func() predict.Predictor { return predict.NewOracle(idle, 14) },
	}
	return fanOut(ctx, "predictor", preds, func(ctx context.Context, mk func() predict.Predictor) (PredictorRow, error) {
		sc, err := Experiment1Scenario(seed)
		if err != nil {
			return PredictorRow{}, err
		}
		sc.IdlePred = mk
		cmp, err := sc.CompareContext(ctx, sc.Policies())
		if err != nil {
			return PredictorRow{}, err
		}
		acc, err := predict.Evaluate(mk(), idle)
		if err != nil {
			return PredictorRow{}, err
		}
		return PredictorRow{
			Predictor:    mk().Name(),
			Accuracy:     acc,
			FCNormalized: cmp.Row("FC-DPM").Normalized,
		}, nil
	})
}

// ConstantEtaAblation reruns Experiment 1 with the constant-efficiency
// (on/off-fan, [10,11]) system. With a flat ηs the fuel map is linear, so
// FC-DPM's flattening advantage over ASAP should collapse toward zero —
// the structural reason the paper needed the PWM-PFM + variable-fan
// configuration.
func ConstantEtaAblation(seed uint64) (linear, constant *Comparison, err error) {
	if linear, err = Experiment1(seed); err != nil {
		return nil, nil, err
	}
	sysConst, err := fuelcell.NewSystem(12, 37.5, 0.1, 1.2, fuelcell.ConstantEfficiency{Value: 0.37})
	if err != nil {
		return nil, nil, err
	}
	sc, err := Experiment1Scenario(seed)
	if err != nil {
		return nil, nil, err
	}
	sc.Sys = sysConst
	constant, err = sc.Compare(sc.Policies())
	if err != nil {
		return nil, nil, err
	}
	return linear, constant, nil
}

// StorageModelAblation runs Experiment 1's FC-DPM on the ideal supercap
// versus the KiBaM Li-ion model, exposing how battery non-linearities
// (which the FC-DPM planner does not model) perturb the outcome.
func StorageModelAblation(seed uint64) (super, liion *Comparison, err error) {
	if super, err = Experiment1(seed); err != nil {
		return nil, nil, err
	}
	batt, err := storage.NewLiIon(6, 0.6, 0.05, ReserveCharge)
	if err != nil {
		return nil, nil, err
	}
	sc, err := Experiment1Scenario(seed)
	if err != nil {
		return nil, nil, err
	}
	sc.Store = batt
	liion, err = sc.Compare(sc.Policies())
	if err != nil {
		return nil, nil, err
	}
	return super, liion, nil
}

// DPMModeAblation reruns Experiment 1 under each device-side sleep policy.
func DPMModeAblation(seed uint64) (map[string]*Comparison, error) {
	return DPMModeAblationContext(context.Background(), seed)
}

// DPMModeAblationContext is DPMModeAblation under a context.
func DPMModeAblationContext(ctx context.Context, seed uint64) (map[string]*Comparison, error) {
	modes := []sim.DPMMode{sim.DPMPredictive, sim.DPMNeverSleep, sim.DPMAlwaysSleep, sim.DPMOracle}
	cmps, err := fanOut(ctx, "dpm-mode", modes, func(ctx context.Context, mode sim.DPMMode) (*Comparison, error) {
		sc, err := Experiment1Scenario(seed)
		if err != nil {
			return nil, err
		}
		sc.DPM = mode
		return sc.CompareContext(ctx, sc.Policies())
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]*Comparison, len(modes))
	for i, mode := range modes {
		out[mode.String()] = cmps[i]
	}
	return out, nil
}

// FlatOracle runs the offline best *fixed* FC output over the Experiment 1
// trace — by convexity the capacity-unconstrained lower bound — and
// returns it alongside FC-DPM for a gap analysis. The flat setting is the
// total demanded charge divided by total time, computed from a Conv-DPM
// dry run's load accounting.
func FlatOracle(seed uint64) (flat *sim.Result, fcdpm *sim.Result, err error) {
	sc, err := Experiment1Scenario(seed)
	if err != nil {
		return nil, nil, err
	}
	// Dry run to learn total load charge and duration.
	dry, err := sc.runOne(policy.NewConv(sc.Sys))
	if err != nil {
		return nil, nil, err
	}
	avgLoad := dry.LoadEnergy / (sc.Sys.VF * dry.Duration)
	flatPol := policy.NewFlat(sc.Sys, avgLoad)
	if flat, err = sc.runOne(flatPol); err != nil {
		return nil, nil, err
	}
	if fcdpm, err = sc.runOne(policy.NewFCDPM(sc.Sys, sc.Dev)); err != nil {
		return nil, nil, err
	}
	return flat, fcdpm, nil
}
