package exp

import (
	"fmt"

	"fcdpm/internal/device"
	"fcdpm/internal/dvs"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/policy"
	"fcdpm/internal/sim"
	"fcdpm/internal/storage"
)

// DVSRow is one operating point of the DVS study.
type DVSRow struct {
	Level     int
	FreqMHz   float64
	ExecTime  float64 // s per job
	LoadA     float64 // active rail current
	ChargePer float64 // load A-s per period
	ASAPRate  float64 // avg stack current under ASAP-DPM
	FCRate    float64 // avg stack current under FC-DPM
}

// DVSStudy reproduces the prior-work [10] observation on top of the full
// simulator: it runs a periodic task at every feasible processor speed
// under both ASAP-DPM and FC-DPM and reports where each source policy's
// fuel optimum lands relative to the classic energy optimum.
type DVSStudy struct {
	Rows []DVSRow
	// EnergyOptimal is the level minimizing load charge per period.
	EnergyOptimal int
	// ASAPOptimal and FCOptimal are the levels minimizing measured fuel
	// under each source policy.
	ASAPOptimal, FCOptimal int
}

// dvsDevice is the embedded platform hosting the DVS processor: modest
// standby/sleep currents and quick transitions, so the speed choice —
// not the sleep machinery — dominates the comparison.
func dvsDevice() *device.Model {
	return &device.Model{
		Name:  "dvs platform",
		V:     12,
		Isdb:  0.25,
		Islp:  0.05,
		TauPD: 0.2, IPD: 0.25,
		TauWU: 0.2, IWU: 0.25,
	}
}

// RunDVSStudy executes the study for the given processor and task.
func RunDVSStudy(proc *dvs.Processor, task dvs.Task) (*DVSStudy, error) {
	if err := proc.Validate(); err != nil {
		return nil, err
	}
	if err := task.Validate(); err != nil {
		return nil, err
	}
	dev := dvsDevice()
	sys := fuelcell.PaperSystem()
	study := &DVSStudy{EnergyOptimal: -1, ASAPOptimal: -1, FCOptimal: -1}
	study.EnergyOptimal = dvs.EnergyOptimalLevel(proc, task, dev.Islp)

	bestASAP, bestFC := -1.0, -1.0
	for k := range proc.Levels {
		if !proc.Feasible(task, k) {
			continue
		}
		trace, err := proc.Trace(task, k)
		if err != nil {
			return nil, err
		}
		run := func(p sim.Policy) (*sim.Result, error) {
			return sim.Run(sim.Config{
				Sys: sys, Dev: dev,
				Store:  storage.MustSuperCap(6, 1),
				Trace:  trace,
				Policy: p,
			})
		}
		asap, err := run(policy.NewASAP(sys))
		if err != nil {
			return nil, fmt.Errorf("exp: dvs level %d ASAP: %w", k, err)
		}
		fc, err := run(policy.NewFCDPM(sys, dev))
		if err != nil {
			return nil, fmt.Errorf("exp: dvs level %d FC-DPM: %w", k, err)
		}
		row := DVSRow{
			Level:     k,
			FreqMHz:   proc.Levels[k].Freq / 1e6,
			ExecTime:  proc.ExecTime(task, k),
			LoadA:     proc.Current(k),
			ChargePer: proc.ChargePerPeriod(task, k, dev.Islp),
			ASAPRate:  asap.AvgFuelRate(),
			FCRate:    fc.AvgFuelRate(),
		}
		study.Rows = append(study.Rows, row)
		if bestASAP < 0 || row.ASAPRate < bestASAP {
			bestASAP = row.ASAPRate
			study.ASAPOptimal = k
		}
		if bestFC < 0 || row.FCRate < bestFC {
			bestFC = row.FCRate
			study.FCOptimal = k
		}
	}
	if len(study.Rows) == 0 {
		return nil, fmt.Errorf("exp: no feasible DVS level for the task")
	}
	return study, nil
}
