// Package exp is the experiment harness: it wires systems, devices,
// traces, predictors, and policies together to regenerate every table and
// figure of the paper's evaluation (see DESIGN.md §4 for the index), plus
// the ablation studies DESIGN.md §5 calls out.
package exp

import (
	"context"
	"fmt"

	"fcdpm/internal/device"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/policy"
	"fcdpm/internal/predict"
	"fcdpm/internal/sim"
	"fcdpm/internal/storage"
	"fcdpm/internal/workload"
)

// PolicyRow is one line of a Table 2 / Table 3 style comparison.
type PolicyRow struct {
	Name       string
	Fuel       float64 // stack A-s consumed
	AvgRate    float64 // stack A (fuel / duration)
	Normalized float64 // avg rate relative to Conv-DPM (the paper's metric)
	Duration   float64
	Bled       float64
	Deficit    float64
	Sleeps     int
}

// Comparison is the outcome of running all policies over one scenario.
type Comparison struct {
	Name string
	Rows []PolicyRow
	// SavingVsASAP is the fuel FC-DPM saves relative to ASAP-DPM
	// (paper: 24.4 % in Exp 1, 15.5 % in Exp 2).
	SavingVsASAP float64
	// LifetimeRatio is ASAP's normalized fuel over FC-DPM's — the
	// lifetime-extension factor (paper: 1.32 in Exp 1).
	LifetimeRatio float64
	// Results holds the raw simulation results keyed by policy name.
	Results map[string]*sim.Result
}

// Row returns the row for the named policy, or nil.
func (c *Comparison) Row(name string) *PolicyRow {
	for i := range c.Rows {
		if c.Rows[i].Name == name {
			return &c.Rows[i]
		}
	}
	return nil
}

// Scenario bundles everything needed to run one policy comparison.
type Scenario struct {
	Name  string
	Sys   *fuelcell.System
	Dev   *device.Model
	Store storage.Storage
	Trace *workload.Trace
	// Predictor factories (fresh state per run); nil gets sim defaults.
	IdlePred, ActivePred, CurrentPred func() predict.Predictor
	DPM                               sim.DPMMode
	// TimeoutAdapter supplies per-slot timeouts under sim.DPMTimeout.
	TimeoutAdapter sim.TimeoutAdapter
	RecordProfile  bool
}

// Policies returns fresh instances of the paper's three policies for the
// scenario.
func (sc *Scenario) Policies() []sim.Policy {
	return []sim.Policy{
		policy.NewConv(sc.Sys),
		policy.NewASAP(sc.Sys),
		policy.NewFCDPM(sc.Sys, sc.Dev),
	}
}

// runOne executes a single policy over the scenario.
func (sc *Scenario) runOne(p sim.Policy) (*sim.Result, error) {
	return sc.runOneCtx(context.Background(), p)
}

// runOneCtx is runOne under a context: cancellation stops the simulation
// between slots.
func (sc *Scenario) runOneCtx(ctx context.Context, p sim.Policy) (*sim.Result, error) {
	return sim.RunContext(ctx, sc.simConfig(p))
}

// simConfig assembles the simulation configuration for one policy row.
// Predictor factories run here, so every call yields fresh per-run state.
func (sc *Scenario) simConfig(p sim.Policy) sim.Config {
	cfg := sim.Config{
		Sys:            sc.Sys,
		Dev:            sc.Dev,
		Store:          sc.Store,
		Trace:          sc.Trace,
		Policy:         p,
		DPM:            sc.DPM,
		TimeoutAdapter: sc.TimeoutAdapter,
		RecordProfile:  sc.RecordProfile,
	}
	if !sc.RecordProfile {
		// Scalar totals are all a comparison table reads; skipping the
		// Fig 7 profile keeps sweep runs on the zero-allocation path.
		cfg.Record = sim.RecordFuelOnly
	}
	if sc.IdlePred != nil {
		cfg.IdlePredictor = sc.IdlePred()
	}
	if sc.ActivePred != nil {
		cfg.ActivePredictor = sc.ActivePred()
	}
	if sc.CurrentPred != nil {
		cfg.CurrentPredictor = sc.CurrentPred()
	}
	return cfg
}

// Compare runs the given policies over the scenario and builds the
// comparison table, normalizing against the first policy (Conv-DPM by
// convention).
func (sc *Scenario) Compare(policies []sim.Policy) (*Comparison, error) {
	return sc.CompareContext(context.Background(), policies)
}

// CompareContext is Compare under a context: cancellation interrupts
// both the serial rows and the fanned-out run engine, so a comparison
// launched from a server handler or an interrupted CLI stops promptly.
func (sc *Scenario) CompareContext(ctx context.Context, policies []sim.Policy) (*Comparison, error) {
	if len(policies) == 0 {
		return nil, fmt.Errorf("exp: no policies to compare")
	}
	results := make([]*sim.Result, len(policies))
	cloner, cloneable := sc.TimeoutAdapter.(sim.TimeoutAdapterCloner)
	if (sc.TimeoutAdapter != nil && !cloneable) || len(policies) == 1 {
		// A non-cloneable timeout adapter is shared mutable state; the
		// rows stay serial (and its adaptation leaks from row to row —
		// implement sim.TimeoutAdapterCloner to batch with independent
		// per-row adaptation instead).
		for i, p := range policies {
			res, err := sc.runOneCtx(ctx, p)
			if err != nil {
				return nil, fmt.Errorf("exp: %s / %s: %w", sc.Name, p.Name(), err)
			}
			results[i] = res
		}
	} else {
		// The rows share one trace, so they batch into a single
		// BatchRunner walk: the per-slot trace decode is shared where the
		// rows' predictors agree and the fuel-map memo is shared across
		// all of them. A cloneable timeout adapter gives every row its
		// own adaptation, started from the same learned state. Lane order
		// is submission order, keeping the table rows (and the Conv-DPM
		// normalization base) deterministic.
		lanes := make([]sim.Lane, len(policies))
		for i, p := range policies {
			cfg := sc.simConfig(p)
			if cloneable {
				cfg.TimeoutAdapter = cloner.CloneTimeoutAdapter()
			}
			lanes[i] = sim.Lane{Cfg: cfg}
		}
		b, err := sim.NewBatchRunner(lanes)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", sc.Name, err)
		}
		out, err := b.RunContext(ctx)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", sc.Name, err)
		}
		for i, lr := range out {
			if lr.Err != nil {
				return nil, fmt.Errorf("exp: %s / %s: %w", sc.Name, policies[i].Name(), lr.Err)
			}
			results[i] = lr.Res
		}
	}
	return buildComparison(sc.Name, results), nil
}

// buildComparison assembles the comparison table from per-policy results,
// normalizing against the first row (Conv-DPM by convention).
func buildComparison(name string, results []*sim.Result) *Comparison {
	cmp := &Comparison{Name: name, Results: make(map[string]*sim.Result)}
	base := results[0]
	for _, res := range results {
		cmp.Results[res.Policy] = res
		cmp.Rows = append(cmp.Rows, PolicyRow{
			Name:       res.Policy,
			Fuel:       res.Fuel,
			AvgRate:    res.AvgFuelRate(),
			Normalized: res.NormalizedFuel(base),
			Duration:   res.Duration,
			Bled:       res.Bled,
			Deficit:    res.Deficit,
			Sleeps:     res.Sleeps,
		})
	}
	if asap, fc := cmp.Results["ASAP-DPM"], cmp.Results["FC-DPM"]; asap != nil && fc != nil {
		a, f := asap.AvgFuelRate(), fc.AvgFuelRate()
		if a > 0 {
			cmp.SavingVsASAP = 1 - f/a
		}
		if f > 0 {
			cmp.LifetimeRatio = a / f
		}
	}
	return cmp
}

// ReserveCharge is the initial (and per-slot target) storage charge used by
// the experiment scenarios, in amp-seconds. The paper does not state the
// supercapacitor's initial state; FC-DPM's per-slot charge balance steers
// back to Cini(1) every slot (§3.3.1), so the initial state is also the
// operating point. Starting the 6 A-s buffer nearly full would leave no
// room for idle-period charging and degenerate FC-DPM to load following;
// a low reserve (1 A-s ≈ 17 %) leaves the buffer free for the
// charge-during-idle / discharge-during-active cycle of Fig 4(c) while
// still covering clamping shortfalls. See EXPERIMENTS.md.
const ReserveCharge = 1.0

// scenarioStore returns the experiments' 100 mA-min supercapacitor at the
// reserve operating point.
func scenarioStore() storage.Storage {
	return storage.MustSuperCap(storage.PaperSuperCap().Capacity(), ReserveCharge)
}

// frozen returns a predictor pinned at a constant — the paper's "no
// prediction necessary" (fixed camcorder active period) and "Ild,a is
// estimated as 1.2 A" (Exp 2) cases.
func frozen(v float64) func() predict.Predictor {
	return func() predict.Predictor { return predict.MustExpAverage(1, v) }
}

// expAvg returns an exponential-average predictor factory. Callers pass
// fixed in-range literals or pre-validated sweep parameters (see
// rhoScenario), so construction cannot fail.
func expAvg(rho, initial float64) func() predict.Predictor {
	return func() predict.Predictor { return predict.MustExpAverage(rho, initial) }
}

// Experiment1Scenario builds the paper's Experiment 1: the 28-minute MPEG
// encode/write camcorder trace, BCS 20 W system (linear ηs), 100 mA-min
// supercapacitor, ρ = 0.5 idle prediction, fixed active period and current.
func Experiment1Scenario(seed uint64) (*Scenario, error) {
	cfg := workload.DefaultCamcorderConfig()
	cfg.Seed = seed
	trace, err := workload.Camcorder(cfg)
	if err != nil {
		return nil, err
	}
	mid := (cfg.MinIdle + cfg.MaxIdle) / 2
	return &Scenario{
		Name:        "Experiment 1 (camcorder MPEG trace)",
		Sys:         fuelcell.PaperSystem(),
		Dev:         device.Camcorder(),
		Store:       scenarioStore(),
		Trace:       trace,
		IdlePred:    expAvg(0.5, mid),
		ActivePred:  frozen(device.CamcorderActivePeriod),
		CurrentPred: frozen(device.CamcorderRunCurrent),
	}, nil
}

// Experiment1 reproduces Table 2.
func Experiment1(seed uint64) (*Comparison, error) {
	return Experiment1Context(context.Background(), seed)
}

// Experiment1Context is Experiment1 under a context.
func Experiment1Context(ctx context.Context, seed uint64) (*Comparison, error) {
	sc, err := Experiment1Scenario(seed)
	if err != nil {
		return nil, err
	}
	return sc.CompareContext(ctx, sc.Policies())
}

// Experiment2Scenario builds the paper's Experiment 2: the synthetic
// uniform-random trace on the Exp 2 device (τ = 1 s transitions at 1.2 A,
// Tbe = 10 s), ρ = σ = 0.5, active current estimated as 1.2 A.
func Experiment2Scenario(seed uint64) (*Scenario, error) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Seed = seed
	trace, err := workload.Synthetic(cfg)
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Name:        "Experiment 2 (synthetic trace)",
		Sys:         fuelcell.PaperSystem(),
		Dev:         device.Synthetic(),
		Store:       scenarioStore(),
		Trace:       trace,
		IdlePred:    expAvg(0.5, (cfg.IdleMin+cfg.IdleMax)/2),
		ActivePred:  expAvg(0.5, (cfg.ActiveMin+cfg.ActiveMax)/2),
		CurrentPred: frozen(1.2),
	}, nil
}

// Experiment2 reproduces Table 3.
func Experiment2(seed uint64) (*Comparison, error) {
	return Experiment2Context(context.Background(), seed)
}

// Experiment2Context is Experiment2 under a context.
func Experiment2Context(ctx context.Context, seed uint64) (*Comparison, error) {
	sc, err := Experiment2Scenario(seed)
	if err != nil {
		return nil, err
	}
	return sc.CompareContext(ctx, sc.Policies())
}
