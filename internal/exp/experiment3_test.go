package exp

import "testing"

func TestExperiment3Ordering(t *testing.T) {
	cmp, err := Experiment3(3)
	if err != nil {
		t.Fatal(err)
	}
	asap, fc := cmp.Row("ASAP-DPM"), cmp.Row("FC-DPM")
	if !(fc.Normalized < asap.Normalized && asap.Normalized < 1) {
		t.Fatalf("ordering broken: asap=%v fc=%v", asap.Normalized, fc.Normalized)
	}
	// The saving survives but shrinks on this hostile workload (short,
	// unpredictable idles give the optimizer less room than the paper's
	// benign traces).
	if cmp.SavingVsASAP <= 0 {
		t.Errorf("saving = %v, want positive", cmp.SavingVsASAP)
	}
	cmp1, err := Experiment1(1)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.SavingVsASAP >= cmp1.SavingVsASAP {
		t.Errorf("heavy-tail saving %v should be below Experiment 1's %v",
			cmp.SavingVsASAP, cmp1.SavingVsASAP)
	}
}

func TestExperiment3DPMModes(t *testing.T) {
	rows, err := Experiment3DPM(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (incl. adaptive timeout)", len(rows))
	}
	byMode := map[string]DPMRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
	}
	oracle, timeout := byMode["oracle-sleep"], byMode["timeout"]
	pred, never := byMode["predictive"], byMode["never-sleep"]
	always := byMode["always-sleep"]
	adaptive := byMode["adaptive-timeout"]
	// The learned-distribution timeout serves the load without brownouts
	// and lands in the band between the oracle and the naive policies.
	if adaptive.Deficit > 0.5 {
		t.Errorf("adaptive timeout deficit = %v", adaptive.Deficit)
	}
	if adaptive.FCRate < oracle.FCRate-1e-9 || adaptive.FCRate > always.FCRate {
		t.Errorf("adaptive rate %v outside [oracle %v, always-sleep %v]",
			adaptive.FCRate, oracle.FCRate, always.FCRate)
	}
	// The oracle lower-bounds every realizable policy.
	for _, r := range rows {
		if r.FCRate < oracle.FCRate-1e-9 {
			t.Errorf("%s rate %v below oracle %v", r.Mode, r.FCRate, oracle.FCRate)
		}
	}
	// The classic heavy-tail result: reactive timeout beats history-based
	// prediction — i.i.d. Pareto idles give the exponential average
	// nothing to learn, so it hovers near the sub-Tbe mean and misses the
	// tail.
	if timeout.FCRate > pred.FCRate+1e-9 {
		t.Errorf("timeout rate %v should not exceed predictive %v",
			timeout.FCRate, pred.FCRate)
	}
	// Sleeping indiscriminately on mostly-short idles wastes transition
	// energy: always-sleep must be the worst.
	if always.FCRate < never.FCRate && always.FCRate < pred.FCRate {
		t.Errorf("always-sleep rate %v implausibly good", always.FCRate)
	}
	// The oracle and timeout catch the tail (more sleeps than the timid
	// predictive policy, far fewer than always-sleep).
	if !(pred.Sleeps <= timeout.Sleeps && timeout.Sleeps <= oracle.Sleeps+2 &&
		oracle.Sleeps < always.Sleeps) {
		t.Errorf("sleep counts off: pred=%d timeout=%d oracle=%d always=%d",
			pred.Sleeps, timeout.Sleeps, oracle.Sleeps, always.Sleeps)
	}
}
