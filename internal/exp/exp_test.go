package exp

import (
	"math"
	"testing"
)

// TestExperiment1Shape asserts the paper's Table 2 shape: FC-DPM < ASAP-DPM
// < Conv-DPM, with FC-DPM in the paper's ballpark (paper: ASAP 40.8 %,
// FC-DPM 30.8 %, saving 24.4 %, lifetime ×1.32; our trace substitute lands
// at ASAP ≈ 35 %, FC-DPM ≈ 30 %, saving ≈ 16 %, lifetime ≈ ×1.19 — see
// EXPERIMENTS.md).
func TestExperiment1Shape(t *testing.T) {
	cmp, err := Experiment1(1)
	if err != nil {
		t.Fatal(err)
	}
	conv, asap, fc := cmp.Row("Conv-DPM"), cmp.Row("ASAP-DPM"), cmp.Row("FC-DPM")
	if conv == nil || asap == nil || fc == nil {
		t.Fatal("missing policy rows")
	}
	if conv.Normalized != 1 {
		t.Errorf("Conv normalized = %v, want 1", conv.Normalized)
	}
	// Ordering: FC < ASAP < Conv.
	if !(fc.Normalized < asap.Normalized && asap.Normalized < 1) {
		t.Fatalf("ordering broken: conv=1, asap=%v, fc=%v", asap.Normalized, fc.Normalized)
	}
	// Both load-following policies land well under half of Conv (paper:
	// 40.8 % and 30.8 %).
	if asap.Normalized < 0.25 || asap.Normalized > 0.55 {
		t.Errorf("ASAP normalized = %v, outside paper ballpark", asap.Normalized)
	}
	if fc.Normalized < 0.20 || fc.Normalized > 0.45 {
		t.Errorf("FC-DPM normalized = %v, outside paper ballpark", fc.Normalized)
	}
	// FC-DPM saves a double-digit fraction vs ASAP (paper: 24.4 %).
	if cmp.SavingVsASAP < 0.10 || cmp.SavingVsASAP > 0.35 {
		t.Errorf("saving vs ASAP = %v, outside [0.10, 0.35]", cmp.SavingVsASAP)
	}
	// Lifetime extension > 1.1× (paper: 1.32×).
	if cmp.LifetimeRatio < 1.1 {
		t.Errorf("lifetime ratio = %v, want > 1.1", cmp.LifetimeRatio)
	}
	// No brownouts under any policy.
	for _, r := range cmp.Rows {
		if r.Deficit > 0.5 {
			t.Errorf("%s deficit = %v A-s", r.Name, r.Deficit)
		}
	}
	// Conv-DPM at a pinned maximum burns Ifc(1.2)=1.306 A continuously.
	if math.Abs(conv.AvgRate-1.306) > 0.001 {
		t.Errorf("Conv rate = %v, want 1.306", conv.AvgRate)
	}
}

// TestExperiment2Shape asserts Table 3's shape (paper: ASAP 49.1 %, FC-DPM
// 41.5 %, saving 15.5 %) and the paper's cross-experiment observation that
// the Exp 2 saving is smaller than Exp 1's.
func TestExperiment2Shape(t *testing.T) {
	cmp2, err := Experiment2(2)
	if err != nil {
		t.Fatal(err)
	}
	asap, fc := cmp2.Row("ASAP-DPM"), cmp2.Row("FC-DPM")
	if !(fc.Normalized < asap.Normalized && asap.Normalized < 1) {
		t.Fatalf("ordering broken: asap=%v, fc=%v", asap.Normalized, fc.Normalized)
	}
	if cmp2.SavingVsASAP < 0.05 || cmp2.SavingVsASAP > 0.30 {
		t.Errorf("saving vs ASAP = %v, outside [0.05, 0.30]", cmp2.SavingVsASAP)
	}
	cmp1, err := Experiment1(1)
	if err != nil {
		t.Fatal(err)
	}
	// §5.2: "The savings of FC-DPM compared to ASAP-DPM is 15.5 %, which
	// is less than the savings in Experiment 1 (24.4 %)".
	if cmp2.SavingVsASAP >= cmp1.SavingVsASAP {
		t.Errorf("Exp2 saving %v should be below Exp1 saving %v",
			cmp2.SavingVsASAP, cmp1.SavingVsASAP)
	}
}

// TestExperimentsAcrossSeeds checks the ordering is not a seed artifact.
func TestExperimentsAcrossSeeds(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		c1, err := Experiment1(seed)
		if err != nil {
			t.Fatal(err)
		}
		if c1.SavingVsASAP <= 0 {
			t.Errorf("seed %d: Exp1 FC-DPM does not beat ASAP (saving %v)", seed, c1.SavingVsASAP)
		}
		c2, err := Experiment2(seed)
		if err != nil {
			t.Fatal(err)
		}
		if c2.SavingVsASAP <= 0 {
			t.Errorf("seed %d: Exp2 FC-DPM does not beat ASAP (saving %v)", seed, c2.SavingVsASAP)
		}
	}
}

func TestMotivationalExampleNumbers(t *testing.T) {
	m, err := MotivationalExample()
	if err != nil {
		t.Fatal(err)
	}
	// §3.2's worked values.
	if math.Abs(m.FCDPMFuel-13.45) > 0.01 {
		t.Errorf("FC-DPM fuel = %v, want 13.45", m.FCDPMFuel)
	}
	if math.Abs(m.ASAPFuel-16.08) > 0.02 {
		t.Errorf("ASAP fuel = %v, want ≈16 (exact 16.08)", m.ASAPFuel)
	}
	if math.Abs(m.ConvFuelPaper-36) > 1e-9 {
		t.Errorf("paper-style Conv fuel = %v, want 36", m.ConvFuelPaper)
	}
	if math.Abs(m.ConvFuel-39.18) > 0.02 {
		t.Errorf("exact Conv fuel = %v, want 39.18", m.ConvFuel)
	}
	if math.Abs(m.OptimalIF-16.0/30) > 1e-9 {
		t.Errorf("optimal IF = %v, want 0.533", m.OptimalIF)
	}
	if math.Abs(m.OptimalIfc-0.448) > 0.001 {
		t.Errorf("optimal Ifc = %v, want 0.448", m.OptimalIfc)
	}
	// "the energy delivered from the FC system in Setting (b) and (c) are
	// the same (VF×(IF,i·Ti + IF,a·Ta) = 192 J)".
	if math.Abs(m.DeliveredEnergy-192) > 1e-6 {
		t.Errorf("delivered energy = %v J, want 192", m.DeliveredEnergy)
	}
	// Savings: 15.9 % vs ASAP per the paper (exact model: ≈16.4 %);
	// 62.6 % vs the paper's Conv figure (exact model: ≈65.7 %).
	if m.SavingVsASAP < 0.15 || m.SavingVsASAP > 0.18 {
		t.Errorf("saving vs ASAP = %v", m.SavingVsASAP)
	}
	if m.SavingVsConv < 0.60 || m.SavingVsConv > 0.70 {
		t.Errorf("saving vs Conv = %v", m.SavingVsConv)
	}
}

func TestFig2Series(t *testing.T) {
	pts := Fig2Series(31)
	if len(pts) != 31 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].Vfc != 18.2 {
		t.Errorf("open-circuit voltage = %v", pts[0].Vfc)
	}
	// Power rises then falls across the plotted range (the Fig 2 knee).
	var maxP float64
	var maxIdx int
	for i, p := range pts {
		if p.Power > maxP {
			maxP, maxIdx = p.Power, i
		}
	}
	if maxIdx == 0 || maxIdx == len(pts)-1 {
		t.Errorf("power knee at edge (idx %d) — no maximum-power point in range", maxIdx)
	}
	if maxP < 14 || maxP > 22 {
		t.Errorf("max power = %v, want ~20 W class", maxP)
	}
}

func TestFig3Series(t *testing.T) {
	pts, err := Fig3Series(26)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 26 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		// Fig 3 ordering within the load-following range: stack (a) on
		// top, proportional-fan system (b) in the middle, on/off-fan
		// system (c) at the bottom.
		if p.IF < 0.1 || p.IF > 1.2 {
			continue
		}
		if !(p.StackEff > p.SystemProportional) {
			t.Errorf("IF=%v: stack %v not above system %v", p.IF, p.StackEff, p.SystemProportional)
		}
		if !(p.SystemProportional > p.SystemOnOff) {
			t.Errorf("IF=%v: proportional %v not above on/off %v", p.IF, p.SystemProportional, p.SystemOnOff)
		}
	}
	// The linear model matches the paper's coefficients at the ends of the
	// load-following range.
	for _, p := range pts {
		want := 0.45 - 0.13*p.IF
		if want > 1e-3 && math.Abs(p.LinearModel-want) > 1e-9 {
			t.Fatalf("linear model at %v = %v, want %v", p.IF, p.LinearModel, want)
		}
	}
	// Curve (b) declines over the load-following range; curve (c) is much
	// flatter there — "treated as a constant in the load following range
	// 0.3 A-1.2 A (±3)" per §2.3.
	spanIn := func(get func(Fig3Point) float64) (lo, hi float64) {
		lo, hi = math.Inf(1), math.Inf(-1)
		for _, p := range pts {
			if p.IF < 0.3 || p.IF > 1.1 {
				continue
			}
			v := get(p)
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		return lo, hi
	}
	pLo, pHi := spanIn(func(p Fig3Point) float64 { return p.SystemProportional })
	oLo, oHi := spanIn(func(p Fig3Point) float64 { return p.SystemOnOff })
	if pHi-pLo <= 0.03 {
		t.Errorf("proportional-fan efficiency too flat: span %v", pHi-pLo)
	}
	if oHi-oLo >= pHi-pLo {
		t.Errorf("on/off span %v should be flatter than proportional span %v",
			oHi-oLo, pHi-pLo)
	}
}

func TestFig7Profiles(t *testing.T) {
	fig, err := Fig7(1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.ASAP) == 0 || len(fig.FCDPM) == 0 {
		t.Fatal("empty profiles")
	}
	for _, p := range fig.ASAP {
		if p.T > 300 {
			t.Fatalf("profile point beyond window: %v", p.T)
		}
	}
	// ASAP follows the load: within range, IF == load.
	for _, p := range fig.ASAP {
		clamped := math.Min(math.Max(p.Load, 0.1), 1.2)
		if math.Abs(p.IF-clamped) > 0.35 {
			// Allow the recharge transient right after start.
			if p.T > 30 {
				t.Fatalf("ASAP not following load at t=%v: IF=%v load=%v", p.T, p.IF, p.Load)
			}
		}
	}
	// The paper's observation: FC-DPM's output is much flatter than
	// ASAP's. Compare the variance of the two IF profiles (a shape check,
	// so duration weighting is unnecessary).
	varOf := func(vals []float64) float64 {
		var mean float64
		for _, v := range vals {
			mean += v
		}
		mean /= float64(len(vals))
		var ss float64
		for _, v := range vals {
			ss += (v - mean) * (v - mean)
		}
		return ss / float64(len(vals))
	}
	var asapIF, fcIF []float64
	for _, p := range fig.ASAP {
		asapIF = append(asapIF, p.IF)
	}
	for _, p := range fig.FCDPM {
		fcIF = append(fcIF, p.IF)
	}
	if varOf(fcIF) >= varOf(asapIF) {
		t.Errorf("FC-DPM profile (var %v) should be flatter than ASAP (var %v)",
			varOf(fcIF), varOf(asapIF))
	}
}

func TestCapacitySweep(t *testing.T) {
	pts, err := CapacitySweep(1, []float64{0.5, 6, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	// A starved buffer cannot flatten: saving grows with capacity.
	if !(pts[0].SavingVsASAP < pts[2].SavingVsASAP) {
		t.Errorf("saving should grow with capacity: %v vs %v",
			pts[0].SavingVsASAP, pts[2].SavingVsASAP)
	}
	if _, err := CapacitySweep(1, []float64{0}); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestBetaSweep(t *testing.T) {
	pts, err := BetaSweep(1, []float64{0, 0.13})
	if err != nil {
		t.Fatal(err)
	}
	// With a flat efficiency (β=0) the fuel map is linear and flattening
	// buys nothing; savings should be (near) zero and grow with β.
	if math.Abs(pts[0].SavingVsASAP) > 0.03 {
		t.Errorf("β=0 saving = %v, want ≈0", pts[0].SavingVsASAP)
	}
	if pts[1].SavingVsASAP <= pts[0].SavingVsASAP {
		t.Errorf("saving should grow with β: %v vs %v", pts[0].SavingVsASAP, pts[1].SavingVsASAP)
	}
	if _, err := BetaSweep(1, []float64{-0.1}); err == nil {
		t.Error("negative beta accepted")
	}
}

func TestRhoSweep(t *testing.T) {
	pts, err := RhoSweep(1, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.SavingVsASAP <= 0 {
			t.Errorf("ρ=%v: FC-DPM should still beat ASAP (saving %v)", p.X, p.SavingVsASAP)
		}
	}
	if _, err := RhoSweep(1, []float64{2}); err == nil {
		t.Error("rho out of range accepted")
	}
}

func TestPredictorAblation(t *testing.T) {
	rows, err := PredictorAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	var oracle, exp *PredictorRow
	for i := range rows {
		switch rows[i].Predictor {
		case "oracle":
			oracle = &rows[i]
		case "exp-average(ρ=0.50)":
			exp = &rows[i]
		}
	}
	if oracle == nil || exp == nil {
		t.Fatalf("missing rows: %+v", rows)
	}
	if oracle.Accuracy.MAE != 0 {
		t.Errorf("oracle MAE = %v", oracle.Accuracy.MAE)
	}
	// Perfect prediction should be at least as fuel-efficient as the
	// exponential average (small tolerance for tie).
	if oracle.FCNormalized > exp.FCNormalized+0.01 {
		t.Errorf("oracle fuel %v worse than exp-average %v", oracle.FCNormalized, exp.FCNormalized)
	}
}

func TestConstantEtaAblation(t *testing.T) {
	linear, constant, err := ConstantEtaAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	// With flat ηs, FC-DPM's edge over ASAP collapses (the structural
	// claim behind the paper's §2.3 configuration change).
	if constant.SavingVsASAP > 0.03 {
		t.Errorf("constant-η saving = %v, want ≈0", constant.SavingVsASAP)
	}
	if linear.SavingVsASAP <= constant.SavingVsASAP {
		t.Errorf("linear-η saving %v should exceed constant-η %v",
			linear.SavingVsASAP, constant.SavingVsASAP)
	}
}

func TestStorageModelAblation(t *testing.T) {
	super, liion, err := StorageModelAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	// Both orderings hold, but the battery's non-linear losses shift the
	// absolute numbers.
	for name, cmp := range map[string]*Comparison{"supercap": super, "liion": liion} {
		fc, asap := cmp.Row("FC-DPM"), cmp.Row("ASAP-DPM")
		if fc == nil || asap == nil {
			t.Fatalf("%s: missing rows", name)
		}
		if fc.Normalized >= 1 {
			t.Errorf("%s: FC-DPM not beating Conv", name)
		}
	}
}

func TestDPMModeAblation(t *testing.T) {
	modes, err := DPMModeAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != 4 {
		t.Fatalf("modes = %d", len(modes))
	}
	// Sleeping during the long camcorder idles saves fuel: never-sleep
	// must be the worst FC-DPM configuration.
	never := modes["never-sleep"].Row("FC-DPM").AvgRate
	pred := modes["predictive"].Row("FC-DPM").AvgRate
	oracle := modes["oracle-sleep"].Row("FC-DPM").AvgRate
	if never <= pred {
		t.Errorf("never-sleep rate %v should exceed predictive %v", never, pred)
	}
	if oracle > pred+1e-9 {
		t.Errorf("oracle sleep rate %v should not exceed predictive %v", oracle, pred)
	}
}

func TestFlatOracleBound(t *testing.T) {
	flat, fcdpm, err := FlatOracle(1)
	if err != nil {
		t.Fatal(err)
	}
	// The offline flat setting ignores the capacity constraint, so it can
	// undercut FC-DPM — but not the other way around by much more than
	// the capacity/prediction losses.
	if fcdpm.AvgFuelRate() < flat.AvgFuelRate()*0.95 {
		t.Errorf("FC-DPM rate %v implausibly beats the flat oracle %v",
			fcdpm.AvgFuelRate(), flat.AvgFuelRate())
	}
	// And FC-DPM should be within ~35 % of the bound on this workload.
	if fcdpm.AvgFuelRate() > flat.AvgFuelRate()*1.35 {
		t.Errorf("FC-DPM rate %v too far from flat bound %v",
			fcdpm.AvgFuelRate(), flat.AvgFuelRate())
	}
}

func TestComparisonRowLookup(t *testing.T) {
	cmp := &Comparison{Rows: []PolicyRow{{Name: "A"}, {Name: "B"}}}
	if cmp.Row("B") == nil || cmp.Row("missing") != nil {
		t.Fatal("Row lookup broken")
	}
}

func TestCompareRequiresPolicies(t *testing.T) {
	sc, err := Experiment1Scenario(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Compare(nil); err == nil {
		t.Fatal("empty policy list accepted")
	}
}
