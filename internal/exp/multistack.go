package exp

import (
	"context"
	"fmt"

	"fcdpm/internal/device"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/multistack"
	"fcdpm/internal/policy"
	"fcdpm/internal/sim"
	"fcdpm/internal/storage"
	"fcdpm/internal/workload"
)

// MultiStackConfig parameterizes the multi-stack allocation study.
// Zero-valued fields take the defaults below.
type MultiStackConfig struct {
	// Ks lists the rack sizes to compare (default {2, 4}).
	Ks []int
	// Intensities lists the racksurge surge multipliers (default
	// {1.5, 2, 2.5}).
	Intensities []float64
	// DegradedMix is the per-stack efficiency-degradation cycle (default
	// {0, 0.3}: every second stack 30 % degraded — the heterogeneous
	// rack where allocation policy matters).
	DegradedMix []float64
	// Seed and Duration override the racksurge generator defaults.
	Seed     uint64
	Duration float64
	// Batch bounds the batched-runner lane width (default 16). Results
	// are identical at every width; the knob only trades memory for
	// trace-walk sharing.
	Batch int
}

func (c MultiStackConfig) withDefaults() MultiStackConfig {
	if len(c.Ks) == 0 {
		c.Ks = []int{2, 4}
	}
	if len(c.Intensities) == 0 {
		c.Intensities = []float64{1.5, 2, 2.5}
	}
	if c.DegradedMix == nil {
		c.DegradedMix = []float64{0, 0.3}
	}
	if c.Batch < 1 {
		c.Batch = 16
	}
	return c
}

// MultiStackRow is one (allocation policy, rack size, surge intensity)
// cell of the study.
type MultiStackRow struct {
	Alloc     string  // allocation policy name
	K         int     // rack size
	Intensity float64 // surge multiplier
	Fuel      float64 // fuel-rate integral, A-s
	Deficit   float64 // unmet load charge, A-s (brownout exposure)
	Bled      float64 // charge dissipated through the bleeder, A-s
	// FuelVsEqual is this row's fuel normalized to the equal-split row
	// of the same (K, intensity) cell; 1 for equal-split itself.
	FuelVsEqual float64
}

// MultiStackStudy compares the rack allocation policies (equal-split,
// water-filling, health-rotation) across rack sizes and surge
// intensities on the datacenter racksurge workload. Each rack runs the
// ASAP policy — the source decision then depends only on charge and
// load, never on the fuel map, so every allocator sees the identical
// output trajectory and the fuel column isolates pure allocation
// efficiency: water-filling's pointwise-optimal split strictly
// dominates equal-split whenever the degradation mix makes the rack
// heterogeneous.
func MultiStackStudy(cfg MultiStackConfig) ([]MultiStackRow, error) {
	return MultiStackStudyContext(context.Background(), cfg)
}

// MultiStackStudyContext is MultiStackStudy under a context.
func MultiStackStudyContext(ctx context.Context, cfg MultiStackConfig) ([]MultiStackRow, error) {
	cfg = cfg.withDefaults()
	allocs := multistack.Allocators()
	var rows []MultiStackRow
	// Lanes are grouped per intensity: a batch walks one trace.
	for _, intensity := range cfg.Intensities {
		wcfg := workload.DefaultRackSurgeConfig()
		if cfg.Seed != 0 {
			wcfg.Seed = cfg.Seed
		}
		if cfg.Duration > 0 {
			wcfg.Duration = cfg.Duration
		}
		wcfg.Intensity = intensity
		trace, err := workload.RackSurge(wcfg)
		if err != nil {
			return nil, err
		}
		var lanes []sim.Lane
		for _, k := range cfg.Ks {
			for _, alloc := range allocs {
				rack, err := multistack.Uniform(fuelcell.PaperSystem(), k, alloc, cfg.DegradedMix)
				if err != nil {
					return nil, fmt.Errorf("exp: multistack K=%d: %w", k, err)
				}
				sys := rack.System()
				// Storage scales with the rack: the paper's 6 A-s supercap
				// per stack, started at the per-stack initial charge.
				store, err := storage.NewSuperCap(6*float64(k), float64(k))
				if err != nil {
					return nil, err
				}
				lanes = append(lanes, sim.Lane{Cfg: sim.Config{
					Sys:    sys,
					Dev:    device.Synthetic(),
					Store:  store,
					Trace:  trace,
					Policy: policy.NewASAP(sys),
				}})
			}
		}
		results := make([]*sim.Result, len(lanes))
		for start := 0; start < len(lanes); start += cfg.Batch {
			end := min(start+cfg.Batch, len(lanes))
			b, err := sim.NewBatchRunner(lanes[start:end])
			if err != nil {
				return nil, fmt.Errorf("exp: multistack: %w", err)
			}
			out, err := b.RunContext(ctx)
			if err != nil {
				return nil, fmt.Errorf("exp: multistack: %w", err)
			}
			for j, lr := range out {
				if lr.Err != nil {
					return nil, fmt.Errorf("exp: multistack lane %d: %w", start+j, lr.Err)
				}
				results[start+j] = lr.Res
			}
		}
		for ki, k := range cfg.Ks {
			base := ki * len(allocs)
			equalFuel := results[base].Fuel
			for ai, alloc := range allocs {
				res := results[base+ai]
				rows = append(rows, MultiStackRow{
					Alloc:       alloc.Name(),
					K:           k,
					Intensity:   intensity,
					Fuel:        res.Fuel,
					Deficit:     res.Deficit,
					Bled:        res.Bled,
					FuelVsEqual: res.Fuel / equalFuel,
				})
			}
		}
	}
	return rows, nil
}
