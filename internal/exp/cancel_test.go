package exp

import (
	"context"
	"errors"
	"testing"
	"time"

	"fcdpm/internal/runner"
)

// Regression: the sweep fan-out used to hardcode context.Background(), so
// a sweep launched under a canceled (or server-request) context ran every
// cell to completion unobserved. A pre-canceled context must now abort the
// sweep with a cancellation error instead of returning rows.
func TestSweepHonorsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	start := time.Now()
	rows, err := BetaSweepContext(ctx, 1, []float64{0, 0.05, 0.13, 0.25})
	elapsed := time.Since(start)

	if err == nil {
		t.Fatalf("BetaSweepContext(canceled) = %d rows, nil error; want cancellation", len(rows))
	}
	if !errors.Is(err, context.Canceled) && !errors.Is(err, runner.ErrInterrupted) {
		t.Fatalf("BetaSweepContext(canceled) error = %v; want context.Canceled or ErrInterrupted", err)
	}
	// "Promptly" here just means it did not simulate the whole sweep: a full
	// four-point sweep takes seconds, aborting takes milliseconds.
	if elapsed > 5*time.Second {
		t.Fatalf("canceled sweep still took %s", elapsed)
	}
}

// CompareContext must propagate cancellation on the serial path too (the
// timeout-adapter path bypasses the run engine).
func TestCompareContextCanceledSerial(t *testing.T) {
	sc, err := Experiment1Scenario(1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sc.CompareContext(ctx, sc.Policies()[:1]); err == nil {
		t.Fatal("CompareContext(canceled) on the serial path returned nil error")
	}
}
