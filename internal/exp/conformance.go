package exp

import (
	"math"
	"sync"

	"fcdpm/internal/device"
)

// Check is one reproduction conformance criterion: a measured quantity, the
// band it must fall in for the reproduction to count as faithful, and the
// paper's reported value for reference.
type Check struct {
	Name     string
	Measured float64
	Lo, Hi   float64 // acceptance band
	Paper    string  // the paper's reported value, for the report
	Pass     bool
}

// Conformance runs the full reproduction conformance suite: every paper
// quantity with a quantitative expectation, each measured fresh and tested
// against its acceptance band (exact for closed-form §3.2 values, shape
// bands for the trace-driven tables — see EXPERIMENTS.md for the
// rationale behind each band). The checks are independent and run
// concurrently.
func Conformance(seed uint64) ([]Check, error) {
	jobs := []func() ([]Check, error){
		func() ([]Check, error) { return motivationalChecks() },
		func() ([]Check, error) { return table2Checks(seed) },
		func() ([]Check, error) { return table3Checks(seed + 1) },
		func() ([]Check, error) { return figureChecks() },
		func() ([]Check, error) { return deviceChecks() },
	}
	results := make([][]Check, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	for i, fn := range jobs {
		wg.Add(1)
		go func(i int, fn func() ([]Check, error)) {
			defer wg.Done()
			results[i], errs[i] = fn()
		}(i, fn)
	}
	wg.Wait()
	var out []Check
	for i := range jobs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		out = append(out, results[i]...)
	}
	for i := range out {
		out[i].Pass = out[i].Measured >= out[i].Lo-1e-12 && out[i].Measured <= out[i].Hi+1e-12
	}
	return out, nil
}

// Passed reports whether every check passed.
func Passed(checks []Check) bool {
	for _, c := range checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

func motivationalChecks() ([]Check, error) {
	m, err := MotivationalExample()
	if err != nil {
		return nil, err
	}
	return []Check{
		{Name: "§3.2 FC-DPM fuel (A-s)", Measured: m.FCDPMFuel, Lo: 13.44, Hi: 13.46, Paper: "13.45"},
		{Name: "§3.2 ASAP fuel (A-s)", Measured: m.ASAPFuel, Lo: 16.0, Hi: 16.2, Paper: "16"},
		{Name: "§3.2 optimal IF (A)", Measured: m.OptimalIF, Lo: 0.533, Hi: 0.534, Paper: "0.53"},
		{Name: "§3.2 optimal Ifc (A)", Measured: m.OptimalIfc, Lo: 0.447, Hi: 0.449, Paper: "0.448"},
		{Name: "§3.2 delivered energy (J)", Measured: m.DeliveredEnergy, Lo: 191.99, Hi: 192.01, Paper: "192"},
		{Name: "§3.2 saving vs ASAP", Measured: m.SavingVsASAP, Lo: 0.14, Hi: 0.18, Paper: "15.9%"},
	}, nil
}

func table2Checks(seed uint64) ([]Check, error) {
	cmp, err := Experiment1(seed)
	if err != nil {
		return nil, err
	}
	return []Check{
		{Name: "Table 2 ASAP normalized", Measured: cmp.Row("ASAP-DPM").Normalized, Lo: 0.28, Hi: 0.52, Paper: "40.8%"},
		{Name: "Table 2 FC-DPM normalized", Measured: cmp.Row("FC-DPM").Normalized, Lo: 0.22, Hi: 0.44, Paper: "30.8%"},
		{Name: "Table 2 saving vs ASAP", Measured: cmp.SavingVsASAP, Lo: 0.10, Hi: 0.35, Paper: "24.4%"},
		{Name: "Table 2 lifetime extension", Measured: cmp.LifetimeRatio, Lo: 1.10, Hi: 1.55, Paper: "1.32x"},
		{Name: "Exp 1 Conv avg Ifc (A)", Measured: cmp.Row("Conv-DPM").AvgRate, Lo: 1.30, Hi: 1.31, Paper: "1.3 (Ifc@1.2A)"},
	}, nil
}

func table3Checks(seed uint64) ([]Check, error) {
	cmp2, err := Experiment2(seed)
	if err != nil {
		return nil, err
	}
	cmp1, err := Experiment1(seed)
	if err != nil {
		return nil, err
	}
	return []Check{
		{Name: "Table 3 ASAP normalized", Measured: cmp2.Row("ASAP-DPM").Normalized, Lo: 0.28, Hi: 0.60, Paper: "49.1%"},
		{Name: "Table 3 FC-DPM normalized", Measured: cmp2.Row("FC-DPM").Normalized, Lo: 0.22, Hi: 0.52, Paper: "41.5%"},
		{Name: "Table 3 saving vs ASAP", Measured: cmp2.SavingVsASAP, Lo: 0.05, Hi: 0.30, Paper: "15.5%"},
		// §5.2's cross-experiment observation, encoded as the saving gap.
		{Name: "Exp1 saving − Exp2 saving", Measured: cmp1.SavingVsASAP - cmp2.SavingVsASAP, Lo: 0, Hi: 0.30, Paper: "24.4% − 15.5% > 0"},
	}, nil
}

func figureChecks() ([]Check, error) {
	fig2 := Fig2Series(80)
	var maxP float64
	for _, p := range fig2 {
		maxP = math.Max(maxP, p.Power)
	}
	fig3, err := Fig3Series(40)
	if err != nil {
		return nil, err
	}
	// Linear fit over the load-following range of the chain-model curve.
	var sx, sy, sxx, sxy float64
	n := 0.0
	for _, p := range fig3 {
		if p.IF < 0.1 || p.IF > 1.2 {
			continue
		}
		sx += p.IF
		sy += p.SystemProportional
		sxx += p.IF * p.IF
		sxy += p.IF * p.SystemProportional
		n++
	}
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	intercept := (sy - slope*sx) / n
	return []Check{
		{Name: "Fig 2 open-circuit voltage (V)", Measured: fig2[0].Vfc, Lo: 18.19, Hi: 18.21, Paper: "18.2"},
		{Name: "Fig 2 max stack power (W)", Measured: maxP, Lo: 14, Hi: 22, Paper: "~20 (BCS 20W)"},
		{Name: "Fig 3 chain-model α (fit)", Measured: intercept, Lo: 0.30, Hi: 0.55, Paper: "0.45"},
		{Name: "Fig 3 chain-model β (fit)", Measured: -slope, Lo: 0.05, Hi: 0.25, Paper: "0.13"},
	}, nil
}

func deviceChecks() ([]Check, error) {
	cam := camcorderTbe()
	syn := syntheticEnergyTbe()
	return []Check{
		{Name: "camcorder Tbe (s)", Measured: cam, Lo: 0.99, Hi: 1.01, Paper: "1"},
		{Name: "Exp 2 energy-derived Tbe (s)", Measured: syn, Lo: 9.5, Hi: 10.5, Paper: "10"},
	}, nil
}

// camcorderTbe and syntheticEnergyTbe isolate the device-side checks.
func camcorderTbe() float64 { return device.Camcorder().BreakEven() }

func syntheticEnergyTbe() float64 {
	m := device.Synthetic()
	m.TbeOverride = 0
	return m.BreakEven()
}
