package exp

import (
	"fcdpm/internal/device"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/storage"
	"fcdpm/internal/workload"
)

// Experiment4Scenario is a generality check beyond the paper's platform: a
// portable-media-player disk drive on a proportionally smaller FC hybrid.
// The FC is a ~5 W-class system whose load-following range [0.033, 0.4] A
// and efficiency span mirror the paper's system at one third scale
// (ηs = 0.437 at the range bottom, 0.294 at the top, via β = 0.39); the
// storage is a 2 A-s supercap; the device is the HDD preset whose
// spin-up-dominated break-even time is ~16 s; the workload is a heavy-tail
// disk-access pattern.
//
// The point: nothing in FC-DPM is camcorder-specific — the same ordering
// emerges on a completely different device, scale, and workload.
func Experiment4Scenario(seed uint64) (*Scenario, error) {
	sys, err := fuelcell.NewSystem(12, 37.5, 0.033, 0.4,
		fuelcell.LinearEfficiency{Alpha: 0.45, Beta: 0.39})
	if err != nil {
		return nil, err
	}
	cfg := workload.HeavyTailConfig{
		Duration: 28 * 60,
		IdleXm:   8, IdleAlpha: 1.7, IdleCap: 300,
		ActiveMin: 0.5, ActiveMax: 3,
		PowerMin: 2.0, PowerMax: 2.6, // disk transfer power band
		V:    12,
		Seed: seed,
	}
	trace, err := workload.HeavyTail(cfg)
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Name:        "Experiment 4 (HDD media player, beyond paper)",
		Sys:         sys,
		Dev:         device.HDD(),
		Store:       storage.MustSuperCap(2, 0.4),
		Trace:       trace,
		IdlePred:    expAvg(0.5, 20),
		ActivePred:  expAvg(0.5, 1.5),
		CurrentPred: frozen(2.3 / 12),
	}, nil
}

// Experiment4 compares the three source policies on the disk platform.
func Experiment4(seed uint64) (*Comparison, error) {
	sc, err := Experiment4Scenario(seed)
	if err != nil {
		return nil, err
	}
	return sc.Compare(sc.Policies())
}
