package exp

import (
	"math"
	"testing"

	"fcdpm/internal/storage"
)

func TestQuantizedSweep(t *testing.T) {
	rows, err := QuantizedSweep(1, []int{2, 4, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || rows[0].Levels != 0 {
		t.Fatalf("rows = %+v", rows)
	}
	// The gap to the continuous policy shrinks with level count.
	if rows[1].GapVsCont < rows[3].GapVsCont-1e-9 {
		t.Errorf("2-level gap %v should be >= 16-level gap %v",
			rows[1].GapVsCont, rows[3].GapVsCont)
	}
	// 16 levels should be within 3 % of continuous.
	if rows[3].GapVsCont > 0.03 {
		t.Errorf("16-level gap = %v", rows[3].GapVsCont)
	}
	// Even 2 levels beats Conv clearly.
	if rows[1].FCNormalized > 0.6 {
		t.Errorf("2-level normalized = %v", rows[1].FCNormalized)
	}
	if _, err := QuantizedSweep(1, []int{1}); err == nil {
		t.Error("level count 1 accepted")
	}
}

func TestOfflineOracleDP(t *testing.T) {
	offline, online, err := OfflineOracleDP(1, 48)
	if err != nil {
		t.Fatal(err)
	}
	// The DP bound should not be meaningfully above the online policy
	// (grid error allows a small excess), and the online policy should
	// be within ~10 % of it — the gap quantifies prediction cost.
	if offline.AvgFuelRate() > online.AvgFuelRate()*1.03 {
		t.Errorf("offline rate %v above online %v", offline.AvgFuelRate(), online.AvgFuelRate())
	}
	if online.AvgFuelRate() > offline.AvgFuelRate()*1.10 {
		t.Errorf("online rate %v too far above offline bound %v",
			online.AvgFuelRate(), offline.AvgFuelRate())
	}
	if offline.Deficit > 0.5 {
		t.Errorf("offline deficit = %v", offline.Deficit)
	}
}

func TestTimeoutAblation(t *testing.T) {
	pred, timeout, err := TimeoutAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	// The camcorder idles (8-20 s) all exceed the 1 s timeout, so the
	// timeout policy sleeps on every slot too — but it pays the standby
	// dwell first, so it burns at least as much fuel.
	if timeout.Sleeps != pred.Sleeps {
		t.Errorf("sleeps: timeout %d vs predictive %d", timeout.Sleeps, pred.Sleeps)
	}
	if timeout.AvgFuelRate() < pred.AvgFuelRate()-1e-9 {
		t.Errorf("timeout rate %v below predictive %v", timeout.AvgFuelRate(), pred.AvgFuelRate())
	}
	if timeout.FuelByKind == nil {
		t.Fatal("fuel breakdown missing")
	}
}

func TestHydrogenReport(t *testing.T) {
	cmp, err := Experiment1(1)
	if err != nil {
		t.Fatal(err)
	}
	reports, err := Hydrogen(cmp, 10) // a 10 g H2 cartridge
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 3 {
		t.Fatalf("reports = %d", len(reports))
	}
	byName := map[string]HydrogenReport{}
	for _, r := range reports {
		byName[r.Policy] = r
		if r.Grams <= 0 || r.LitresSTP <= 0 || r.LifetimeHours <= 0 {
			t.Errorf("%s: degenerate report %+v", r.Policy, r)
		}
		if r.EndToEndEff < 0.05 || r.EndToEndEff > 0.9 {
			t.Errorf("%s: implausible end-to-end efficiency %v", r.Policy, r.EndToEndEff)
		}
	}
	// FC-DPM lives longest on the cartridge.
	if !(byName["FC-DPM"].LifetimeHours > byName["ASAP-DPM"].LifetimeHours &&
		byName["ASAP-DPM"].LifetimeHours > byName["Conv-DPM"].LifetimeHours) {
		t.Errorf("lifetime ordering broken: %+v", byName)
	}
	if _, err := Hydrogen(cmp, 0); err == nil {
		t.Error("zero cartridge accepted")
	}
}

func TestMultiSeed(t *testing.T) {
	sum, err := MultiSeed(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Seeds != 3 || sum.FCNorm.N != 3 {
		t.Fatalf("summary = %+v", sum)
	}
	// Mean ordering matches the single-seed observations.
	if !(sum.FCNorm.Mean < sum.ASAPNorm.Mean) {
		t.Errorf("FC mean %v not below ASAP mean %v", sum.FCNorm.Mean, sum.ASAPNorm.Mean)
	}
	if sum.SavingVsASAP.Min <= 0 {
		t.Errorf("saving dipped non-positive: %v", sum.SavingVsASAP.Min)
	}
	// Seed-to-seed variation should be modest (< 10 % stddev of mean).
	if sum.FCNorm.Mean > 0 && sum.FCNorm.Stddev/sum.FCNorm.Mean > 0.3 {
		t.Errorf("excessive spread: %v / %v", sum.FCNorm.Stddev, sum.FCNorm.Mean)
	}
	if _, err := MultiSeed(3, 2); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := MultiSeed(1, 0); err == nil {
		t.Error("zero seeds accepted")
	}
	if math.IsNaN(sum.SavingVsASAP.Mean) {
		t.Error("NaN summary")
	}
}

func TestSlewAblation(t *testing.T) {
	rows, err := SlewAblation(1, []float64{0, 0.5, 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	ideal, moderate, slow := rows[0], rows[1], rows[2]
	// Ideal source: no deficits for either policy.
	if ideal.ASAPDeficit > 0.5 || ideal.FCDeficit > 0.5 {
		t.Errorf("ideal-source deficits: %+v", ideal)
	}
	// A slow FC (0.02 A/s — a 1 A swing takes 50 s) breaks load following:
	// the storage cannot cover the tracking error and the load browns out.
	// FC-DPM's flat per-slot output is unaffected.
	if slow.ASAPDeficit < 5 {
		t.Errorf("slow FC should strand ASAP's load: deficit %v", slow.ASAPDeficit)
	}
	if slow.FCDeficit > 0.5 {
		t.Errorf("FC-DPM deficit under slow FC = %v, want ~0", slow.FCDeficit)
	}
	// FC-DPM's fuel rate barely changes under any slew limit.
	for _, r := range []SlewRow{moderate, slow} {
		if rel := math.Abs(r.FCRate-ideal.FCRate) / ideal.FCRate; rel > 0.005 {
			t.Errorf("FC-DPM fuel moved %v at %v A/s", rel, r.RateAps)
		}
	}
	if _, err := SlewAblation(1, []float64{-1}); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestBatteryAwareAblation(t *testing.T) {
	ba, fc, err := BatteryAwareAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's §1 claim, quantified: the battery-centric strategy
	// burns substantially more fuel than FC-DPM on the FC hybrid.
	if ba.AvgFuelRate() < fc.AvgFuelRate()*1.2 {
		t.Errorf("battery-aware rate %v should clearly exceed FC-DPM %v",
			ba.AvgFuelRate(), fc.AvgFuelRate())
	}
	// It still keeps the load served (that is not where it fails).
	if ba.Deficit > 0.5 {
		t.Errorf("battery-aware deficit = %v", ba.Deficit)
	}
}

func TestAggregationAblation(t *testing.T) {
	rows, err := AggregationAblation(1, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Aggregation reduces sleep transitions roughly by the factor k.
	if rows[1].Sleeps >= rows[0].Sleeps || rows[2].Sleeps >= rows[1].Sleeps {
		t.Errorf("sleeps not decreasing: %d, %d, %d",
			rows[0].Sleeps, rows[1].Sleeps, rows[2].Sleeps)
	}
	// Fewer transitions means at most marginally more fuel — aggregation
	// must not hurt by more than a percent, and usually helps.
	if rows[2].FCRate > rows[0].FCRate*1.01 {
		t.Errorf("aggregation increased fuel: %v -> %v", rows[0].FCRate, rows[2].FCRate)
	}
	// Deferral grows with k.
	if !(rows[0].MaxDeferral == 0 && rows[1].MaxDeferral < rows[2].MaxDeferral) {
		t.Errorf("deferral not growing: %+v", rows)
	}
	if _, err := AggregationAblation(1, []int{0}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestActuationAblation(t *testing.T) {
	rows, err := ActuationAblation(1, []float64{0, 0.05, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Wider bands command the actuator less often.
	if !(rows[2].Setpoints < rows[1].Setpoints && rows[1].Setpoints < rows[0].Setpoints) {
		t.Errorf("set points not decreasing: %d, %d, %d",
			rows[0].Setpoints, rows[1].Setpoints, rows[2].Setpoints)
	}
	// And cost at most a few percent of fuel even at 0.2 A.
	if rows[2].FCRate > rows[0].FCRate*1.06 {
		t.Errorf("0.2 A band fuel %v too far above plain %v", rows[2].FCRate, rows[0].FCRate)
	}
	if _, err := ActuationAblation(1, []float64{-1}); err == nil {
		t.Error("negative epsilon accepted")
	}
}

func TestCalibrationUncertainty(t *testing.T) {
	rows, err := CalibrationUncertainty(1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The qualitative conclusion survives every corner of a ±10 %
	// calibration box: FC-DPM still beats ASAP.
	for _, r := range rows {
		if r.SavingVsASAP <= 0 {
			t.Errorf("α=%v β=%v: saving %v non-positive", r.Alpha, r.Beta, r.SavingVsASAP)
		}
		if r.FCNormalized <= 0 || r.FCNormalized >= 1 {
			t.Errorf("α=%v β=%v: normalized %v out of (0,1)", r.Alpha, r.Beta, r.FCNormalized)
		}
	}
	// The saving is driven by β: the high-β corners save more than the
	// low-β corners.
	var loBeta, hiBeta float64
	for _, r := range rows[1:] {
		if r.Beta < 0.13 {
			loBeta = math.Max(loBeta, r.SavingVsASAP)
		} else {
			hiBeta = math.Max(hiBeta, r.SavingVsASAP)
		}
	}
	if hiBeta <= loBeta {
		t.Errorf("high-β saving %v should exceed low-β %v", hiBeta, loBeta)
	}
	if _, err := CalibrationUncertainty(1, 1.5); err == nil {
		t.Error("relErr out of range accepted")
	}
}

func TestThermalStressAblation(t *testing.T) {
	rows, err := ThermalStressAblation(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]ThermalRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	conv := byName["Conv-DPM"].Stress
	asap := byName["ASAP-DPM"].Stress
	fc := byName["FC-DPM"].Stress
	// Conv holds a constant output: minimal swing after warm-up.
	if conv.Swing > 5 {
		t.Errorf("Conv swing = %v °C, want ~0 (constant output)", conv.Swing)
	}
	// FC-DPM's near-flat profile cycles the stack far less than ASAP's
	// load following.
	if fc.Swing >= asap.Swing {
		t.Errorf("FC-DPM swing %v should be below ASAP %v", fc.Swing, asap.Swing)
	}
	if fc.CycleCount > asap.CycleCount {
		t.Errorf("FC-DPM cycles %d should not exceed ASAP %d", fc.CycleCount, asap.CycleCount)
	}
	// All trajectories stay in a physical band.
	for _, r := range rows {
		if r.Stress.Min < 20 || r.Stress.Max > 100 {
			t.Errorf("%s: implausible temperatures [%v, %v]", r.Policy, r.Stress.Min, r.Stress.Max)
		}
	}
}

func TestMPCAblation(t *testing.T) {
	rows, err := MPCAblation(1, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Get the plain FC-DPM reference.
	sc, err := Experiment1Scenario(1)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sc.Compare(sc.Policies())
	if err != nil {
		t.Fatal(err)
	}
	ref := plain.Row("FC-DPM").AvgRate
	for _, r := range rows {
		// The negative result: lookahead changes fuel by under 1 % either
		// way on the paper's workload.
		if rel := math.Abs(r.FCRate-ref) / ref; rel > 0.01 {
			t.Errorf("horizon %d moved fuel by %v", r.Horizon, rel)
		}
		if r.Deficit > 0.5 {
			t.Errorf("horizon %d deficit = %v", r.Horizon, r.Deficit)
		}
	}
	if _, err := MPCAblation(1, []int{0}); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestEnergyDensityComparison(t *testing.T) {
	// 100 g package at the camcorder's average FC operating point.
	e, err := EnergyDensityComparison(100, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's intro claims 4-10x; the model should land inside it.
	if e.Ratio < 4 || e.Ratio > 10 {
		t.Errorf("FC/battery ratio = %v, paper claims 4-10x", e.Ratio)
	}
	if e.FCHours <= e.BatteryHours {
		t.Errorf("FC hours %v should exceed battery hours %v", e.FCHours, e.BatteryHours)
	}
	// Higher current → worse efficiency → lower ratio.
	hi, err := EnergyDensityComparison(100, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if hi.Ratio >= e.Ratio {
		t.Errorf("ratio should fall with current: %v vs %v", hi.Ratio, e.Ratio)
	}
	if _, err := EnergyDensityComparison(0, 0.5); err == nil {
		t.Error("zero mass accepted")
	}
	if _, err := EnergyDensityComparison(100, 5); err == nil {
		t.Error("out-of-range current accepted")
	}
}

func TestAdviseCamcorder(t *testing.T) {
	sc, err := Experiment1Scenario(1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Advise(sc.Sys, sc.Dev, sc.Trace)
	if err != nil {
		t.Fatal(err)
	}
	// Camcorder peak is 1.22 A (above range top — that's the hybrid
	// argument) and the DPM average sits far below it.
	if math.Abs(a.PeakLoad-14.65/12) > 1e-9 {
		t.Errorf("peak = %v", a.PeakLoad)
	}
	if a.AvgLoad >= a.PeakLoad/2 {
		t.Errorf("average %v should be well below peak %v", a.AvgLoad, a.PeakLoad)
	}
	if !a.RangeOK {
		t.Error("paper FC range should cover the camcorder average")
	}
	// The recommendation lands in the ballpark of the paper's 6 A-s cap:
	// below it (the cap has slack) but well above 1 A-s.
	if a.RecommendedCmax < 1 || a.RecommendedCmax > 12 {
		t.Errorf("recommended Cmax = %v A-s, implausible vs the paper's 6", a.RecommendedCmax)
	}
	if a.StorageNeeded <= 0 || a.StorageNeeded > 8 {
		t.Errorf("storage needed = %v", a.StorageNeeded)
	}
	if a.RecommendedReserve <= 0 || a.RecommendedReserve >= a.RecommendedCmax {
		t.Errorf("reserve = %v of %v", a.RecommendedReserve, a.RecommendedCmax)
	}
	// Verify the recommendation actually works: run FC-DPM with it.
	sc2, err := Experiment1Scenario(1)
	if err != nil {
		t.Fatal(err)
	}
	sc2.Store = storage.MustSuperCap(a.RecommendedCmax, a.RecommendedReserve)
	cmp, err := sc2.Compare(sc2.Policies())
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Results["FC-DPM"].Deficit > 0.5 {
		t.Errorf("recommended sizing browns out: %v", cmp.Results["FC-DPM"].Deficit)
	}
	if cmp.SavingVsASAP <= 0.1 {
		t.Errorf("recommended sizing loses the FC-DPM edge: %v", cmp.SavingVsASAP)
	}
}

func TestAdviseErrors(t *testing.T) {
	sc, err := Experiment1Scenario(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Advise(sc.Sys, sc.Dev, nil); err == nil {
		t.Error("nil trace accepted")
	}
	bad := *sc.Dev
	bad.V = 0
	if _, err := Advise(sc.Sys, &bad, sc.Trace); err == nil {
		t.Error("invalid device accepted")
	}
}

func TestRobustnessStudy(t *testing.T) {
	r, err := RobustnessStudy(1, 12, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Trials != 12 || r.Saving.N != 12 {
		t.Fatalf("study = %+v", r)
	}
	// FC-DPM wins every perturbed trial.
	if r.Wins != 12 {
		t.Errorf("FC-DPM won only %d/12 perturbed trials (min saving %v)", r.Wins, r.Saving.Min)
	}
	if r.Saving.Mean < 0.08 || r.Saving.Mean > 0.30 {
		t.Errorf("mean saving = %v, implausible", r.Saving.Mean)
	}
	if _, err := RobustnessStudy(1, 0, 0.1); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := RobustnessStudy(1, 2, 0.9); err == nil {
		t.Error("excess perturbation accepted")
	}
}

func TestBurstyPredictorStudy(t *testing.T) {
	rows, err := BurstyPredictorStudy(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]PredictorRow{}
	for _, r := range rows {
		byName[r.Predictor] = r
	}
	oracle := byName["oracle"]
	expavg := byName["exp-average(ρ=0.50)"]
	// Unlike the camcorder trace (where every predictor landed within
	// 0.1 % of each other), the regime-switching workload separates them:
	// perfect regime knowledge is worth more than a full point of
	// normalized fuel over the paper's exponential average.
	if expavg.FCNormalized-oracle.FCNormalized < 0.005 {
		t.Errorf("bursty workload should separate predictors: oracle %v vs exp-average %v",
			oracle.FCNormalized, expavg.FCNormalized)
	}
	// The oracle lower-bounds every realizable predictor, and none falls
	// apart (within 5 points of the oracle).
	for _, r := range rows {
		if r.FCNormalized < oracle.FCNormalized-1e-9 {
			t.Errorf("%s beats the oracle: %v < %v", r.Predictor, r.FCNormalized, oracle.FCNormalized)
		}
		if r.FCNormalized > oracle.FCNormalized+0.05 {
			t.Errorf("%s collapses on bursty input: %v", r.Predictor, r.FCNormalized)
		}
	}
	if oracle.Accuracy.MAE != 0 {
		t.Errorf("oracle MAE = %v", oracle.Accuracy.MAE)
	}
}
