package exp

import (
	"context"
	"testing"

	"fcdpm/internal/sim"
	"fcdpm/internal/stochdpm"
)

// TestCompareBatchesCloneableAdapter pins the fix for the old serial
// fallback: a scenario with a cloneable timeout adapter now batches with
// one independent adapter clone per row, so each row's result equals a
// standalone run with its own fresh adapter — no row sees another row's
// learned idle history.
func TestCompareBatchesCloneableAdapter(t *testing.T) {
	sc, err := Experiment2Scenario(7)
	if err != nil {
		t.Fatal(err)
	}
	sc.DPM = sim.DPMTimeout
	adapter, err := stochdpm.NewAdaptiveTimeout(sc.Dev, 50)
	if err != nil {
		t.Fatal(err)
	}
	sc.TimeoutAdapter = adapter

	policies := sc.Policies()
	cmp, err := sc.CompareContext(context.Background(), policies)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range policies {
		// The oracle: the same row run alone with its own fresh adapter.
		solo, err := Experiment2Scenario(7)
		if err != nil {
			t.Fatal(err)
		}
		solo.DPM = sim.DPMTimeout
		soloAdapter, err := stochdpm.NewAdaptiveTimeout(solo.Dev, 50)
		if err != nil {
			t.Fatal(err)
		}
		solo.TimeoutAdapter = soloAdapter
		want, err := solo.runOne(solo.Policies()[i])
		if err != nil {
			t.Fatal(err)
		}
		got := cmp.Results[p.Name()]
		if got == nil {
			t.Fatalf("row %s missing from comparison", p.Name())
		}
		if got.Fuel != want.Fuel || got.Sleeps != want.Sleeps || got.Deficit != want.Deficit {
			t.Fatalf("row %s leaked adaptation: fuel %v/%v sleeps %d/%d deficit %v/%v",
				p.Name(), got.Fuel, want.Fuel, got.Sleeps, want.Sleeps, got.Deficit, want.Deficit)
		}
	}
	// The shared adapter itself must be untouched: only clones ran.
	if tau := adapter.NextTimeout(); tau != sc.Dev.BreakEven() {
		t.Fatalf("scenario adapter learned during compare: timeout %v, want pristine break-even %v",
			tau, sc.Dev.BreakEven())
	}
}

// nonCloneableAdapter is a TimeoutAdapter without the cloner face.
type nonCloneableAdapter struct{ tau float64 }

func (a *nonCloneableAdapter) NextTimeout() float64 { return a.tau }
func (a *nonCloneableAdapter) Observe(float64)      {}

// TestCompareSerialFallbackNonCloneable keeps the safety net: an adapter
// that cannot be cloned still forces the serial path and completes.
func TestCompareSerialFallbackNonCloneable(t *testing.T) {
	sc, err := Experiment2Scenario(7)
	if err != nil {
		t.Fatal(err)
	}
	sc.DPM = sim.DPMTimeout
	sc.TimeoutAdapter = &nonCloneableAdapter{tau: sc.Dev.BreakEven()}
	cmp, err := sc.CompareContext(context.Background(), sc.Policies())
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(cmp.Rows))
	}
}

// TestBatchedSweepMatchesParallel pins the batched sweep engine to the
// fan-out engine bit for bit, at lane widths that split chunks mid-point
// and that swallow the whole sweep.
func TestBatchedSweepMatchesParallel(t *testing.T) {
	ctx := context.Background()
	caps := []float64{2, 6, 24}
	want, err := CapacitySweepContext(ctx, 1, caps)
	if err != nil {
		t.Fatal(err)
	}
	for _, width := range []int{1, 4, 64} {
		got, err := CapacitySweepBatched(ctx, 1, caps, width)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if len(got) != len(want) {
			t.Fatalf("width %d: %d points, want %d", width, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("width %d point %d: %+v, want %+v", width, i, got[i], want[i])
			}
		}
	}
}
