package exp

import (
	"fmt"

	"fcdpm/internal/fuelcell"
)

// EnergyDensity quantifies the paper's opening claim — "an FC package is
// expected to generate power longer (4 to 10X) than a battery package of
// the same size and weight" — for a given package mass budget and load.
type EnergyDensity struct {
	PackageGrams float64
	// BatteryWh is the electrical energy a Li-ion pack of that mass holds.
	BatteryWh float64
	// FCWh is the electrical energy the FC system extracts from the
	// hydrogen the package carries, at the end-to-end efficiency of the
	// given operating point.
	FCWh float64
	// Ratio is FCWh / BatteryWh — the paper claims 4–10.
	Ratio float64
	// BatteryHours and FCHours are runtimes at the given average load.
	BatteryHours, FCHours float64
}

// EnergyDensityComparison computes the FC-vs-battery runtime ratio for a
// package of packageGrams total mass operated at avgIF amps.
//
// Assumptions (documented era-typical constants):
//   - Li-ion pack: 200 Wh/kg at pack level.
//   - H2 storage: 8 % of the package mass is hydrogen (metal-hydride /
//     compressed cartridge mass fraction), LHV 33.3 Wh/g.
//   - FC electrical conversion at the system efficiency of the operating
//     point (the paper's ηs at avgIF).
func EnergyDensityComparison(packageGrams, avgIF float64) (*EnergyDensity, error) {
	if packageGrams <= 0 {
		return nil, fmt.Errorf("exp: non-positive package mass %v", packageGrams)
	}
	sys := fuelcell.PaperSystem()
	if avgIF <= 0 || avgIF > sys.MaxOutput {
		return nil, fmt.Errorf("exp: average output %v outside (0, %v]", avgIF, sys.MaxOutput)
	}
	const (
		liIonWhPerKg   = 200.0
		h2MassFraction = 0.08
	)
	e := &EnergyDensity{PackageGrams: packageGrams}
	e.BatteryWh = packageGrams / 1000 * liIonWhPerKg
	h2Grams := packageGrams * h2MassFraction
	// Electrical yield per gram of H2 through the actual fuel map at this
	// operating point: delivered W over fuel grams per hour.
	h := fuelcell.PaperHydrogen()
	gramsPerHour := h.Grams(sys.StackCurrent(avgIF) * 3600)
	whPerHour := sys.VF * avgIF // delivered watts = Wh per hour
	e.FCWh = h2Grams / gramsPerHour * whPerHour
	if e.BatteryWh > 0 {
		e.Ratio = e.FCWh / e.BatteryWh
	}
	loadW := sys.VF * avgIF
	e.BatteryHours = e.BatteryWh / loadW
	e.FCHours = e.FCWh / loadW
	return e, nil
}
