package exp

import "testing"

func TestExperiment4Ordering(t *testing.T) {
	for _, seed := range []uint64{4, 5, 6} {
		cmp, err := Experiment4(seed)
		if err != nil {
			t.Fatal(err)
		}
		asap, fc := cmp.Row("ASAP-DPM"), cmp.Row("FC-DPM")
		// The paper's ordering carries to the disk platform.
		if !(fc.Normalized < asap.Normalized && asap.Normalized < 1) {
			t.Errorf("seed %d: ordering broken: asap=%v fc=%v",
				seed, asap.Normalized, fc.Normalized)
		}
		if cmp.SavingVsASAP <= 0 {
			t.Errorf("seed %d: saving = %v", seed, cmp.SavingVsASAP)
		}
		// The disk mostly sleeps: load-following dives far below Conv
		// (the drive idles near the bottom of the FC range).
		if asap.Normalized > 0.35 {
			t.Errorf("seed %d: ASAP normalized = %v, want deep savings on a sleepy disk",
				seed, asap.Normalized)
		}
		// Nobody browns out.
		for _, r := range cmp.Rows {
			if r.Deficit > 0.2 {
				t.Errorf("seed %d: %s deficit = %v", seed, r.Name, r.Deficit)
			}
		}
	}
}

func TestExperiment4SleepsThroughTails(t *testing.T) {
	cmp, err := Experiment4(4)
	if err != nil {
		t.Fatal(err)
	}
	res := cmp.Results["FC-DPM"]
	// The HDD's ~16 s break-even against Pareto(8, 1.7) idles: a real
	// mix of sleeping and staying spun up.
	if res.Sleeps == 0 || res.Sleeps == res.Slots {
		t.Fatalf("sleeps = %d of %d, want a genuine mix", res.Sleeps, res.Slots)
	}
}
