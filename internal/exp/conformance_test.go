package exp

import "testing"

func TestConformanceSuitePasses(t *testing.T) {
	checks, err := Conformance(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 15 {
		t.Fatalf("only %d checks", len(checks))
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("FAIL %s: measured %v outside [%v, %v] (paper %s)",
				c.Name, c.Measured, c.Lo, c.Hi, c.Paper)
		}
		if c.Name == "" || c.Paper == "" {
			t.Errorf("check missing metadata: %+v", c)
		}
		if c.Lo > c.Hi {
			t.Errorf("%s: inverted band [%v, %v]", c.Name, c.Lo, c.Hi)
		}
	}
	if !Passed(checks) {
		t.Error("Passed() disagrees with individual checks")
	}
}

func TestPassedDetectsFailure(t *testing.T) {
	checks := []Check{{Pass: true}, {Pass: false}}
	if Passed(checks) {
		t.Fatal("Passed ignored a failing check")
	}
	if !Passed(nil) {
		t.Fatal("empty suite should pass vacuously")
	}
}

func TestConformanceAcrossSeeds(t *testing.T) {
	// The bands must hold for other trace seeds too — the reproduction is
	// not tuned to one trace.
	for _, seed := range []uint64{2, 3} {
		checks, err := Conformance(seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range checks {
			if !c.Pass {
				t.Errorf("seed %d: FAIL %s: %v outside [%v, %v]",
					seed, c.Name, c.Measured, c.Lo, c.Hi)
			}
		}
	}
}
