package exp

import (
	"context"
	"reflect"
	"testing"
)

func TestFaultSweep(t *testing.T) {
	res, err := FaultSweep(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// nominal + 7 fault classes, 3 policies each.
	if want := 8 * 3; len(res.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(res.Rows), want)
	}
	for _, r := range res.ClassRows("nominal") {
		if r.Fallbacks != 0 || r.Deficit != 0 || r.Shed != 0 || !r.Survived {
			t.Fatalf("nominal row not clean: %+v", r)
		}
	}
	drop := res.ClassRows("stack-dropout")
	if len(drop) != 3 {
		t.Fatalf("dropout rows: %d", len(drop))
	}
	for _, r := range drop {
		if r.FinalPolicy != "load-shed" {
			t.Fatalf("a total dropout must end in load-shed: %+v", r)
		}
		if r.Shed <= 0 {
			t.Fatalf("dropout without shed charge: %+v", r)
		}
	}
	// The sweep is seed-reproducible.
	res2, err := FaultSweep(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Rows, res2.Rows) {
		t.Fatal("same seed produced different sweep rows")
	}
}

func TestFaultSweepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FaultSweep(ctx, 1); err == nil {
		t.Fatal("canceled sweep returned no error")
	}
}
