package exp

import (
	"fmt"
	"sort"

	"fcdpm/internal/device"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/workload"
)

// Advice is the design advisor's output: for a workload and device, is a
// given FC system adequately sized, and how much charge storage does
// FC-DPM need to earn its keep? It packages the §2.2 hybrid-sizing
// argument (FC sized for the average, storage for the peaks) as a tested
// library function.
type Advice struct {
	// PeakLoad and AvgLoad are the trace's extreme and DPM-average rail
	// currents (amps), the latter assuming every sleep-worthy idle sleeps.
	PeakLoad, AvgLoad float64
	// RangeOK reports whether the FC range top covers the average load
	// with headroom; a standalone FC would instead need to cover PeakLoad.
	RangeOK bool
	// StorageNeeded is the worst-case single-slot discharge when the FC
	// holds the per-slot optimal flat level — the minimum buffer for
	// FC-DPM to avoid brownouts (A-s).
	StorageNeeded float64
	// RecommendedCmax adds 50 % margin over the 95th-percentile slot
	// swing, the knee of the capacity sweep.
	RecommendedCmax float64
	// RecommendedReserve is the suggested initial/target charge.
	RecommendedReserve float64
}

// Advise analyses a workload against a device and FC system.
func Advise(sys *fuelcell.System, dev *device.Model, tr *workload.Trace) (*Advice, error) {
	if tr == nil || tr.Len() == 0 {
		return nil, fmt.Errorf("exp: empty trace")
	}
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	tbe := dev.BreakEven()
	a := &Advice{}
	var totalCharge, totalTime float64
	swings := make([]float64, 0, tr.Len())
	for _, s := range tr.Slots {
		if s.ActiveCurrent > a.PeakLoad {
			a.PeakLoad = s.ActiveCurrent
		}
		sleeping := s.Idle >= tbe
		var idleCharge float64
		if sleeping {
			idleCharge = dev.SleepEnergyCharge(s.Idle)
		} else {
			idleCharge = dev.StandbyEnergyCharge(s.Idle)
		}
		taEff := dev.TauSR + s.Active + dev.TauRS
		activeCharge := s.ActiveCurrent * taEff
		if sleeping {
			taEff += dev.TauWU
			activeCharge += dev.IWU * dev.TauWU
		}
		slotTime := s.Idle + taEff
		slotCharge := idleCharge + activeCharge
		totalCharge += slotCharge
		totalTime += slotTime
		// Per-slot flat level and the discharge it implies during the
		// active phase.
		flat := sys.Clamp(slotCharge / slotTime)
		swing := activeCharge - flat*taEff
		if swing < 0 {
			swing = 0
		}
		swings = append(swings, swing)
	}
	a.AvgLoad = totalCharge / totalTime
	a.RangeOK = sys.MaxOutput >= a.AvgLoad*1.1
	sort.Float64s(swings)
	a.StorageNeeded = swings[len(swings)-1]
	p95 := swings[int(0.95*float64(len(swings)-1))]
	a.RecommendedCmax = 1.5 * p95
	if a.RecommendedCmax < a.StorageNeeded {
		a.RecommendedCmax = a.StorageNeeded
	}
	a.RecommendedReserve = 0.2 * a.RecommendedCmax
	return a, nil
}
