package exp

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fcdpm/internal/device"
	"fcdpm/internal/fault"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/obs"
	"fcdpm/internal/policy"
	"fcdpm/internal/predict"
	"fcdpm/internal/runner"
	"fcdpm/internal/sim"
	"fcdpm/internal/workload"
)

// FaultRow is one (fault class, policy) cell of a fault sweep.
type FaultRow struct {
	Class       string
	Policy      string
	Fuel        float64
	AvgRate     float64
	Deficit     float64 // unmet load nobody decided to drop, A-s
	Shed        float64 // load intentionally dropped by load-shed, A-s
	Fallbacks   int
	FinalPolicy string
	Events      int // audit-log length (faults + invariants + fallbacks)
	// Survived means the run completed with unplanned unmet load below
	// 1 % of the total load charge — the service held through the fault,
	// possibly on a fallback policy.
	Survived bool
}

// FaultSweepResult is the per-policy fuel/survival matrix over the
// canonical fault classes.
type FaultSweepResult struct {
	Scenario string
	Schedule map[string]*fault.Schedule
	Rows     []FaultRow
	// Resumed counts rows restored from the checkpoint journal instead of
	// re-simulated; Interrupted counts cells the batch was stopped before
	// finishing (the sweep is partial and resumable).
	Resumed     int
	Interrupted int
}

// ClassRows returns the rows of one fault class in policy order.
func (r *FaultSweepResult) ClassRows(class string) []FaultRow {
	var out []FaultRow
	for _, row := range r.Rows {
		if row.Class == class {
			out = append(out, row)
		}
	}
	return out
}

// canonicalFaults builds one representative schedule per fault class over
// a trace of the given duration: onset at one third of the trace, lasting
// a sixth of it, at the class's default severity. The nominal (no-fault)
// schedule is included under "nominal" as the baseline row.
func canonicalFaults(duration float64) (map[string]*fault.Schedule, []string) {
	start, dur := duration/3, duration/6
	sched := map[string]*fault.Schedule{"nominal": {}}
	order := []string{"nominal"}
	for _, k := range fault.Kinds() {
		sched[k.String()] = &fault.Schedule{Events: []fault.Event{
			{Kind: k, Start: start, Dur: dur},
		}}
		order = append(order, k.String())
	}
	return sched, order
}

// FaultSweepOptions tunes how the sweep's cells are orchestrated by the
// run engine. The zero value runs with the engine defaults: GOMAXPROCS
// workers, no deadline, no retries, no journal.
type FaultSweepOptions struct {
	// Workers bounds concurrent cells.
	Workers int
	// TimeoutSec is the per-cell deadline in seconds (0: none).
	TimeoutSec float64
	// Retries re-attempts transiently failed cells.
	Retries int
	// Journal checkpoints each completed cell to this JSONL file; an
	// interrupted sweep re-invoked with the same journal skips completed
	// cells.
	Journal string
	// Metrics, when non-nil, instruments the run engine (queue depth,
	// retries, breaker transitions) for the sweep's tasks.
	Metrics *obs.PoolMetrics
	// SimMetrics, when non-nil, instruments every cell's simulation run
	// (runs, slots, fuel, memo hits/misses, wall time).
	SimMetrics *obs.SimMetrics
}

// FaultSweep runs the paper's three policies over the Experiment 2
// synthetic workload under each canonical fault class with default
// orchestration. See FaultSweepOpts for resumable/tuned sweeps.
func FaultSweep(ctx context.Context, seed uint64) (*FaultSweepResult, error) {
	return FaultSweepOpts(ctx, seed, FaultSweepOptions{})
}

// FaultSweepOpts runs the fault sweep on the run-orchestration engine:
// each (class, policy) cell is one task, grouped per fault class for
// circuit breaking, with the standard degradation chain (FC-DPM -> ASAP
// -> Conv -> load-shed, truncated for policies already further down).
// Cell order in the result is deterministic regardless of worker count.
// When the context is canceled mid-sweep the partial result is returned
// along with runner.ErrInterrupted; with a journal configured, re-running
// the same sweep completes the missing cells without re-simulating the
// finished ones.
func FaultSweepOpts(ctx context.Context, seed uint64, opts FaultSweepOptions) (*FaultSweepResult, error) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Seed = seed
	trace, err := workload.Synthetic(cfg)
	if err != nil {
		return nil, err
	}
	sys := fuelcell.PaperSystem()
	dev := device.Synthetic()
	schedules, order := canonicalFaults(trace.Statistics().Duration)
	out := &FaultSweepResult{
		Scenario: fmt.Sprintf("fault sweep over Experiment 2 synthetic trace (seed %d)", seed),
		Schedule: schedules,
	}
	// Per-policy fallback chains: each policy degrades toward the
	// simpler, more conservative stages below it.
	runs := []struct {
		mk        func() sim.Policy
		fallbacks func() []sim.Policy
	}{
		{
			mk: func() sim.Policy { return policy.NewFCDPM(sys, dev) },
			fallbacks: func() []sim.Policy {
				return []sim.Policy{policy.NewASAP(sys), policy.NewConv(sys)}
			},
		},
		{
			mk:        func() sim.Policy { return policy.NewASAP(sys) },
			fallbacks: func() []sim.Policy { return []sim.Policy{policy.NewConv(sys)} },
		},
		{
			mk:        func() sim.Policy { return policy.NewConv(sys) },
			fallbacks: func() []sim.Policy { return nil },
		},
	}
	var tasks []runner.Task[FaultRow]
	for _, class := range order {
		for _, r := range runs {
			class, r := class, r
			name := r.mk().Name()
			tasks = append(tasks, runner.Task[FaultRow]{
				ID: runner.RunID("faults", fmt.Sprintf("seed=%d", seed),
					"class="+class, "policy="+name),
				Scenario: class,
				Run: func(ctx context.Context) (FaultRow, error) {
					p := r.mk()
					res, err := sim.RunContext(ctx, sim.Config{
						Sys:              sys,
						Dev:              dev,
						Store:            scenarioStore(),
						Trace:            trace,
						Policy:           p,
						Fallbacks:        r.fallbacks(),
						Faults:           schedules[class],
						FaultSeed:        seed,
						Supervisor:       sim.SupervisorConfig{Mode: sim.SuperviseOn},
						IdlePredictor:    predict.MustExpAverage(0.5, (cfg.IdleMin+cfg.IdleMax)/2),
						ActivePredictor:  predict.MustExpAverage(0.5, (cfg.ActiveMin+cfg.ActiveMax)/2),
						CurrentPredictor: predict.MustExpAverage(1, 1.2),
						Metrics:          opts.SimMetrics,
					})
					if err != nil {
						return FaultRow{}, fmt.Errorf("exp: fault sweep %s / %s: %w", class, p.Name(), err)
					}
					loadCharge := res.LoadEnergy / sys.VF
					return FaultRow{
						Class:       class,
						Policy:      res.Policy,
						Fuel:        res.Fuel,
						AvgRate:     res.AvgFuelRate(),
						Deficit:     res.Deficit,
						Shed:        res.Shed,
						Fallbacks:   res.Fallbacks,
						FinalPolicy: res.FinalPolicy,
						Events:      len(res.Events),
						Survived:    res.Deficit <= 0.01*loadCharge,
					}, nil
				},
			})
		}
	}
	rep, runErr := runner.Run(ctx, runner.Options{
		Workers: opts.Workers,
		Timeout: secondsToDuration(opts.TimeoutSec),
		Retries: opts.Retries,
		Journal: opts.Journal,
		Metrics: opts.Metrics,
	}, tasks)
	if rep == nil {
		return nil, runErr
	}
	for _, o := range rep.Outcomes {
		switch o.Status {
		case runner.StatusDone:
			out.Rows = append(out.Rows, o.Result)
		case runner.StatusResumed:
			out.Rows = append(out.Rows, o.Result)
			out.Resumed++
		case runner.StatusFailed:
			return nil, o.Err
		case runner.StatusInterrupted:
			out.Interrupted++
		}
	}
	if runErr != nil && !errors.Is(runErr, runner.ErrInterrupted) {
		return nil, runErr
	}
	return out, runErr
}

// secondsToDuration converts a seconds count (the unit scenario specs and
// CLI flags use) to a time.Duration.
func secondsToDuration(s float64) time.Duration {
	if s <= 0 {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}
