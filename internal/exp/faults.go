package exp

import (
	"context"
	"fmt"

	"fcdpm/internal/device"
	"fcdpm/internal/fault"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/policy"
	"fcdpm/internal/predict"
	"fcdpm/internal/sim"
	"fcdpm/internal/workload"
)

// FaultRow is one (fault class, policy) cell of a fault sweep.
type FaultRow struct {
	Class       string
	Policy      string
	Fuel        float64
	AvgRate     float64
	Deficit     float64 // unmet load nobody decided to drop, A-s
	Shed        float64 // load intentionally dropped by load-shed, A-s
	Fallbacks   int
	FinalPolicy string
	Events      int // audit-log length (faults + invariants + fallbacks)
	// Survived means the run completed with unplanned unmet load below
	// 1 % of the total load charge — the service held through the fault,
	// possibly on a fallback policy.
	Survived bool
}

// FaultSweepResult is the per-policy fuel/survival matrix over the
// canonical fault classes.
type FaultSweepResult struct {
	Scenario string
	Schedule map[string]*fault.Schedule
	Rows     []FaultRow
}

// ClassRows returns the rows of one fault class in policy order.
func (r *FaultSweepResult) ClassRows(class string) []FaultRow {
	var out []FaultRow
	for _, row := range r.Rows {
		if row.Class == class {
			out = append(out, row)
		}
	}
	return out
}

// canonicalFaults builds one representative schedule per fault class over
// a trace of the given duration: onset at one third of the trace, lasting
// a sixth of it, at the class's default severity. The nominal (no-fault)
// schedule is included under "nominal" as the baseline row.
func canonicalFaults(duration float64) (map[string]*fault.Schedule, []string) {
	start, dur := duration/3, duration/6
	sched := map[string]*fault.Schedule{"nominal": {}}
	order := []string{"nominal"}
	for _, k := range fault.Kinds() {
		sched[k.String()] = &fault.Schedule{Events: []fault.Event{
			{Kind: k, Start: start, Dur: dur},
		}}
		order = append(order, k.String())
	}
	return sched, order
}

// FaultSweep runs the paper's three policies over the Experiment 2
// synthetic workload under each canonical fault class, with the standard
// degradation chain (FC-DPM -> ASAP -> Conv -> load-shed, truncated for
// policies already further down), and reports fuel and survival per cell.
func FaultSweep(ctx context.Context, seed uint64) (*FaultSweepResult, error) {
	cfg := workload.DefaultSyntheticConfig()
	cfg.Seed = seed
	trace, err := workload.Synthetic(cfg)
	if err != nil {
		return nil, err
	}
	sys := fuelcell.PaperSystem()
	dev := device.Synthetic()
	schedules, order := canonicalFaults(trace.Statistics().Duration)
	out := &FaultSweepResult{
		Scenario: fmt.Sprintf("fault sweep over Experiment 2 synthetic trace (seed %d)", seed),
		Schedule: schedules,
	}
	// Per-policy fallback chains: each policy degrades toward the
	// simpler, more conservative stages below it.
	runs := []struct {
		mk        func() sim.Policy
		fallbacks func() []sim.Policy
	}{
		{
			mk: func() sim.Policy { return policy.NewFCDPM(sys, dev) },
			fallbacks: func() []sim.Policy {
				return []sim.Policy{policy.NewASAP(sys), policy.NewConv(sys)}
			},
		},
		{
			mk:        func() sim.Policy { return policy.NewASAP(sys) },
			fallbacks: func() []sim.Policy { return []sim.Policy{policy.NewConv(sys)} },
		},
		{
			mk:        func() sim.Policy { return policy.NewConv(sys) },
			fallbacks: func() []sim.Policy { return nil },
		},
	}
	for _, class := range order {
		for _, r := range runs {
			p := r.mk()
			res, err := sim.RunContext(ctx, sim.Config{
				Sys:        sys,
				Dev:        dev,
				Store:      scenarioStore(),
				Trace:      trace,
				Policy:     p,
				Fallbacks:  r.fallbacks(),
				Faults:     schedules[class],
				FaultSeed:  seed,
				Supervisor: sim.SupervisorConfig{Mode: sim.SuperviseOn},
				IdlePredictor:    predict.NewExpAverage(0.5, (cfg.IdleMin+cfg.IdleMax)/2),
				ActivePredictor:  predict.NewExpAverage(0.5, (cfg.ActiveMin+cfg.ActiveMax)/2),
				CurrentPredictor: predict.NewExpAverage(1, 1.2),
			})
			if err != nil {
				return nil, fmt.Errorf("exp: fault sweep %s / %s: %w", class, p.Name(), err)
			}
			loadCharge := res.LoadEnergy / sys.VF
			out.Rows = append(out.Rows, FaultRow{
				Class:       class,
				Policy:      res.Policy,
				Fuel:        res.Fuel,
				AvgRate:     res.AvgFuelRate(),
				Deficit:     res.Deficit,
				Shed:        res.Shed,
				Fallbacks:   res.Fallbacks,
				FinalPolicy: res.FinalPolicy,
				Events:      len(res.Events),
				Survived:    res.Deficit <= 0.01*loadCharge,
			})
		}
	}
	return out, nil
}
