package storage

import "fmt"

// LiIon is a kinetic battery model (KiBaM) of a Li-ion cell pack. KiBaM
// splits the stored charge into an available well (directly usable) and a
// bound well that replenishes the available well through a rate-limited
// diffusion term:
//
//	y1' = -I + k·(h2 - h1)      (available charge)
//	y2' =     -k·(h2 - h1)      (bound charge)
//
// with h1 = y1/c, h2 = y2/(1-c). This captures the two battery
// non-linearities the paper contrasts fuel cells against (§1): the
// rate-capacity effect (high discharge currents strand bound charge) and
// the recovery effect (resting lets the available well refill). Fuel cells
// have neither, which is why battery-aware DPM policies do not transfer.
//
// LiIon is used only by ablation experiments; the paper's own evaluation
// uses the ideal SuperCap.
type LiIon struct {
	cmax float64 // total capacity, A-s
	c    float64 // available-well fraction
	k    float64 // diffusion rate constant, 1/s
	y1   float64 // available charge, A-s
	y2   float64 // bound charge, A-s
}

// NewLiIon returns a KiBaM battery with total capacity cmax amp-seconds,
// available-well fraction c in (0, 1), diffusion constant k (1/s), starting
// at charge q0 distributed proportionally between the wells.
func NewLiIon(cmax, c, k, q0 float64) (*LiIon, error) {
	if cmax <= 0 {
		return nil, fmt.Errorf("storage: non-positive capacity %v", cmax)
	}
	if c <= 0 || c >= 1 {
		return nil, fmt.Errorf("storage: well fraction %v outside (0,1)", c)
	}
	if k <= 0 {
		return nil, fmt.Errorf("storage: non-positive rate constant %v", k)
	}
	b := &LiIon{cmax: cmax, c: c, k: k}
	b.SetCharge(q0)
	return b, nil
}

// Capacity implements Storage.
func (b *LiIon) Capacity() float64 { return b.cmax }

// Charge implements Storage; it reports total stored charge (available +
// bound). Use Available to see only the immediately usable part.
func (b *LiIon) Charge() float64 { return b.y1 + b.y2 }

// Available returns the immediately deliverable charge.
func (b *LiIon) Available() float64 { return b.y1 }

// SetCharge implements Storage, distributing the charge between the wells
// in equilibrium proportion (h1 == h2).
func (b *LiIon) SetCharge(q float64) {
	if q < 0 {
		q = 0
	}
	if q > b.cmax {
		q = b.cmax
	}
	b.y1 = q * b.c
	b.y2 = q * (1 - b.c)
}

// Apply implements Storage by integrating the KiBaM ODEs with fixed
// substeps. Charging splits between wells through the same diffusion path.
func (b *LiIon) Apply(current, dt float64) Flow {
	if dt < 0 {
		panic(fmt.Sprintf("storage: negative duration %v", dt))
	}
	var f Flow
	if dt == 0 {
		return f
	}
	const maxStep = 0.05 // seconds; small enough for the ms-scale k values
	steps := int(dt/maxStep) + 1
	h := dt / float64(steps)
	before := b.Charge()
	for s := 0; s < steps; s++ {
		h1 := b.y1 / b.c
		h2 := b.y2 / (1 - b.c)
		diff := b.k * (h2 - h1) * h
		b.y1 += diff
		b.y2 -= diff

		delta := current * h
		switch {
		case delta >= 0:
			// Charge into the available well; overflow past total
			// capacity bleeds.
			room := b.cmax - b.Charge()
			if delta > room {
				f.Bled += delta - room
				delta = room
			}
			b.y1 += delta
			// Keep the available well within its own bound; excess
			// migrates to the bound well immediately (fast surface
			// charge relaxation).
			if cap1 := b.c * b.cmax; b.y1 > cap1 {
				b.y2 += b.y1 - cap1
				b.y1 = cap1
			}
		default:
			need := -delta
			if need <= b.y1 {
				b.y1 -= need
			} else {
				// Rate-capacity effect: demand beyond the available
				// well is unmet even though bound charge remains.
				f.Deficit += need - b.y1
				b.y1 = 0
			}
		}
	}
	f.Stored = b.Charge() - before
	return f
}

// Clone implements Storage.
func (b *LiIon) Clone() Storage {
	cp := *b
	return &cp
}

// RestoreFrom implements Restorer.
func (b *LiIon) RestoreFrom(src Storage) bool {
	o, ok := src.(*LiIon)
	if ok {
		*b = *o
	}
	return ok
}
