package storage

import "fmt"

// ConfigError reports an invalid storage construction parameter — the
// typed, recoverable form of what used to be a constructor panic.
// Capacities and initial charges arrive from scenario files and CLI
// flags, so they are user input and must surface through config
// validation and the CLI error chain rather than crash the process.
// (Panics remain for true programming errors, e.g. integrating over a
// negative duration.)
type ConfigError struct {
	Kind   string // storage model, e.g. "supercap", "liion"
	Param  string // offending parameter, e.g. "capacity"
	Detail string // what is wrong with it
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("storage: %s: invalid %s: %s", e.Kind, e.Param, e.Detail)
}
