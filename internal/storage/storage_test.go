package storage

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestPaperSuperCap(t *testing.T) {
	s := PaperSuperCap()
	if s.Capacity() != 6 {
		t.Fatalf("capacity = %v A-s, want 6 (100 mA-min)", s.Capacity())
	}
	if s.Charge() != 6 {
		t.Fatalf("initial charge = %v, want full", s.Charge())
	}
}

func TestSuperCapChargeDischarge(t *testing.T) {
	s := MustSuperCap(10, 5)
	f := s.Apply(0.5, 4) // +2 A-s
	if f.Stored != 2 || f.Bled != 0 || f.Deficit != 0 {
		t.Fatalf("charge flow = %+v", f)
	}
	if s.Charge() != 7 {
		t.Fatalf("charge = %v, want 7", s.Charge())
	}
	f = s.Apply(-1, 3) // -3 A-s
	if f.Stored != -3 || f.Deficit != 0 {
		t.Fatalf("discharge flow = %+v", f)
	}
	if s.Charge() != 4 {
		t.Fatalf("charge = %v, want 4", s.Charge())
	}
}

func TestSuperCapOverflowBleeds(t *testing.T) {
	s := MustSuperCap(10, 9)
	f := s.Apply(1, 5) // +5 into 1 A-s of room
	if f.Stored != 1 || f.Bled != 4 {
		t.Fatalf("flow = %+v, want Stored=1 Bled=4", f)
	}
	if s.Charge() != 10 {
		t.Fatalf("charge = %v, want full", s.Charge())
	}
}

func TestSuperCapUnderflowDeficit(t *testing.T) {
	s := MustSuperCap(10, 2)
	f := s.Apply(-1, 5) // -5 from 2 A-s
	if f.Stored != -2 || f.Deficit != 3 {
		t.Fatalf("flow = %+v, want Stored=-2 Deficit=3", f)
	}
	if s.Charge() != 0 {
		t.Fatalf("charge = %v, want 0", s.Charge())
	}
}

func TestSuperCapZeroCurrent(t *testing.T) {
	s := MustSuperCap(10, 5)
	f := s.Apply(0, 100)
	if f != (Flow{}) || s.Charge() != 5 {
		t.Fatalf("idle should be a no-op: %+v, q=%v", f, s.Charge())
	}
}

func TestSuperCapSetChargeClamps(t *testing.T) {
	s := MustSuperCap(10, 0)
	s.SetCharge(-5)
	if s.Charge() != 0 {
		t.Errorf("negative SetCharge gave %v", s.Charge())
	}
	s.SetCharge(50)
	if s.Charge() != 10 {
		t.Errorf("overfull SetCharge gave %v", s.Charge())
	}
}

func TestSuperCapBadConfig(t *testing.T) {
	// A non-positive capacity is user input (scenario files, flags): it
	// must come back as a typed ConfigError, not a panic.
	for _, cmax := range []float64{0, -3} {
		_, err := NewSuperCap(cmax, 0)
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("NewSuperCap(%v, 0) err = %v, want *ConfigError", cmax, err)
		}
		if ce.Kind != "supercap" || ce.Param != "capacity" {
			t.Fatalf("ConfigError = %+v", ce)
		}
	}
	t.Run("must panics", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("MustSuperCap accepted a non-positive capacity")
			}
		}()
		MustSuperCap(0, 0)
	})
	t.Run("negative duration still panics", func(t *testing.T) {
		// Integrating over a negative dt is a programming error, not
		// configuration; the panic stays.
		defer func() {
			if recover() == nil {
				t.Fatal("negative duration accepted")
			}
		}()
		MustSuperCap(1, 0).Apply(1, -1)
	})
}

func TestSuperCapClone(t *testing.T) {
	s := MustSuperCap(10, 5)
	c := s.Clone()
	c.Apply(1, 3)
	if s.Charge() != 5 {
		t.Fatal("clone mutated the original")
	}
	if c.Charge() != 8 {
		t.Fatalf("clone charge = %v", c.Charge())
	}
}

func TestTimeToFullEmpty(t *testing.T) {
	s := MustSuperCap(10, 4)
	if got := TimeToFull(s, 2); got != 3 {
		t.Errorf("TimeToFull = %v, want 3", got)
	}
	if got := TimeToFull(s, 0); !math.IsInf(got, 1) {
		t.Errorf("TimeToFull at zero current = %v, want +Inf", got)
	}
	if got := TimeToEmpty(s, -2); got != 2 {
		t.Errorf("TimeToEmpty = %v, want 2", got)
	}
	if got := TimeToEmpty(s, 1); !math.IsInf(got, 1) {
		t.Errorf("TimeToEmpty while charging = %v, want +Inf", got)
	}
}

// Property: charge conservation — stored + bled + deficit accounts exactly
// for the applied amp-seconds, and charge stays within [0, Cmax].
func TestSuperCapConservation(t *testing.T) {
	f := func(q0raw, iraw, dtraw float64) bool {
		if math.IsNaN(q0raw) || math.IsNaN(iraw) || math.IsNaN(dtraw) ||
			math.IsInf(q0raw, 0) || math.IsInf(iraw, 0) || math.IsInf(dtraw, 0) {
			return true
		}
		q0 := math.Abs(math.Mod(q0raw, 10))
		i := math.Mod(iraw, 5)
		dt := math.Abs(math.Mod(dtraw, 100))
		s := MustSuperCap(10, q0)
		before := s.Charge()
		fl := s.Apply(i, dt)
		after := s.Charge()
		applied := i * dt
		if math.Abs((after-before)-fl.Stored) > 1e-9 {
			return false
		}
		var balance float64
		if applied >= 0 {
			balance = fl.Stored + fl.Bled
		} else {
			balance = fl.Stored - fl.Deficit
		}
		if math.Abs(balance-applied) > 1e-9 {
			return false
		}
		return after >= -1e-12 && after <= 10+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestLiIonValidation(t *testing.T) {
	if _, err := NewLiIon(0, 0.5, 0.01, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := NewLiIon(10, 0, 0.01, 0); err == nil {
		t.Error("zero well fraction accepted")
	}
	if _, err := NewLiIon(10, 1, 0.01, 0); err == nil {
		t.Error("unit well fraction accepted")
	}
	if _, err := NewLiIon(10, 0.5, 0, 0); err == nil {
		t.Error("zero rate constant accepted")
	}
}

func TestLiIonRateCapacityEffect(t *testing.T) {
	// Drain the same total charge slowly vs. quickly: the fast drain must
	// hit a deficit sooner (stranded bound charge).
	slow, err := NewLiIon(100, 0.4, 0.001, 100)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewLiIon(100, 0.4, 0.001, 100)
	if err != nil {
		t.Fatal(err)
	}
	fSlow := slow.Apply(-0.5, 160) // 80 A-s over 160 s
	fFast := fast.Apply(-8, 10)    // 80 A-s over 10 s
	if fFast.Deficit <= fSlow.Deficit {
		t.Fatalf("rate-capacity effect missing: fast deficit %v <= slow %v",
			fFast.Deficit, fSlow.Deficit)
	}
}

func TestLiIonRecoveryEffect(t *testing.T) {
	b, err := NewLiIon(100, 0.4, 0.005, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Drain the available well hard.
	b.Apply(-8, 5)
	availAfterBurst := b.Available()
	// Rest: bound charge should migrate back into the available well.
	b.Apply(0, 60)
	if b.Available() <= availAfterBurst {
		t.Fatalf("recovery effect missing: available %v -> %v",
			availAfterBurst, b.Available())
	}
}

func TestLiIonChargeBounds(t *testing.T) {
	b, err := NewLiIon(10, 0.5, 0.01, 9.5)
	if err != nil {
		t.Fatal(err)
	}
	f := b.Apply(2, 10) // 20 A-s into 0.5 A-s of room
	if f.Bled < 19 {
		t.Errorf("bleed = %v, want ~19.5", f.Bled)
	}
	if b.Charge() > 10+1e-9 {
		t.Errorf("charge %v exceeds capacity", b.Charge())
	}
}

func TestLiIonSetChargeEquilibrium(t *testing.T) {
	b, err := NewLiIon(10, 0.3, 0.01, 0)
	if err != nil {
		t.Fatal(err)
	}
	b.SetCharge(5)
	if math.Abs(b.Available()-1.5) > 1e-9 {
		t.Errorf("available = %v, want 1.5 (c fraction)", b.Available())
	}
	if math.Abs(b.Charge()-5) > 1e-9 {
		t.Errorf("total = %v, want 5", b.Charge())
	}
}

func TestLiIonClone(t *testing.T) {
	b, err := NewLiIon(10, 0.5, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	c := b.Clone()
	c.Apply(-1, 2)
	if b.Charge() != 5 {
		t.Fatal("clone mutated the original")
	}
}

func TestLiIonZeroDt(t *testing.T) {
	b, err := NewLiIon(10, 0.5, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	if f := b.Apply(3, 0); f != (Flow{}) {
		t.Fatalf("zero-dt flow = %+v", f)
	}
}

// Property: LiIon total charge stays within [0, Cmax] under any bounded
// current program.
func TestLiIonBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		b, err := NewLiIon(20, 0.4, 0.01, 10)
		if err != nil {
			return false
		}
		x := seed
		for s := 0; s < 20; s++ {
			x = x*6364136223846793005 + 1442695040888963407
			i := float64(int64(x%200))/10 - 10 // [-10, 10) A
			x = x*6364136223846793005 + 1442695040888963407
			dt := float64(x%50) / 10 // [0, 5) s
			b.Apply(i, dt)
			q := b.Charge()
			if q < -1e-9 || q > 20+1e-9 {
				return false
			}
			if b.Available() < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
