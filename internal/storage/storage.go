// Package storage models the charge-storage element of the hybrid power
// source: the buffer between the FC system output current IF and the
// embedded-system load current Ild (paper §2.1). It charges when IF > Ild
// and discharges when IF < Ild.
//
// The paper's experiments use a 1 F supercapacitor (≈ 100 mA-min at 12 V)
// and assume lossless charge transfer (§3.3 assumption 2); SuperCap models
// exactly that. LiIon adds the rate-capacity and recovery non-linearities
// of batteries so that ablations can demonstrate why battery-aware DPM
// does not transfer to fuel cells.
package storage

import (
	"fmt"
	"math"
)

// Flow describes what happened to charge over one Apply call. All values
// are non-negative amp-seconds.
type Flow struct {
	// Stored is the net change in stored charge (positive when charging,
	// negative when discharging) that the element actually absorbed or
	// supplied.
	Stored float64
	// Bled is charge that could not be stored because the element was
	// full; physically it is dissipated through the bleeder by-pass
	// (paper §3.3.1, "the excess current is dissipated through the
	// bleeder by-pass").
	Bled float64
	// Deficit is discharge demand the element could not supply because it
	// was empty — a brownout. Policies are expected to avoid this; the
	// simulator reports it so tests can assert it stays zero.
	Deficit float64
}

// Storage is a charge buffer. Implementations are single-goroutine stateful
// values; use Clone to branch a simulation.
type Storage interface {
	// Capacity returns Cmax in amp-seconds.
	Capacity() float64
	// Charge returns the currently stored charge in amp-seconds.
	Charge() float64
	// SetCharge forces the stored charge, clamped to [0, Cmax].
	SetCharge(q float64)
	// Apply integrates a constant net current (amps; positive charges,
	// negative discharges) over dt seconds and returns the resulting
	// flow accounting.
	Apply(current, dt float64) Flow
	// Clone returns an independent copy with identical state.
	Clone() Storage
}

// Restorer is an optional Storage capability: RestoreFrom copies the full
// state of src into the receiver without allocating, and reports whether
// it could (it can only when src is the same concrete type). Reusable
// simulation runners use it to rewind a working copy to a pristine
// snapshot instead of cloning per run; callers must fall back to Clone
// when it reports false.
type Restorer interface {
	RestoreFrom(src Storage) bool
}

// SuperCap is the ideal coulomb buffer the paper assumes: lossless, with a
// hard capacity Cmax and hard empty floor.
type SuperCap struct {
	cmax float64
	q    float64
}

// NewSuperCap returns a supercapacitor with capacity cmax amp-seconds,
// initially holding q0. A non-positive capacity — capacities arrive from
// scenario files and CLI flags — yields a *ConfigError.
func NewSuperCap(cmax, q0 float64) (*SuperCap, error) {
	if cmax <= 0 {
		return nil, &ConfigError{Kind: "supercap", Param: "capacity",
			Detail: fmt.Sprintf("%v is not positive", cmax)}
	}
	s := &SuperCap{cmax: cmax}
	s.SetCharge(q0)
	return s, nil
}

// MustSuperCap is NewSuperCap for compile-time-fixed parameters; it panics
// on the error a literal capacity cannot produce.
func MustSuperCap(cmax, q0 float64) *SuperCap {
	s, err := NewSuperCap(cmax, q0)
	if err != nil {
		panic(err)
	}
	return s
}

// PaperSuperCap returns the experiment's 1 F supercapacitor: "equivalent to
// 100 mA-min capacity when voltage is 12 V" = 6 A-s. It starts full, as a
// freshly charged buffer would.
func PaperSuperCap() *SuperCap { return MustSuperCap(6, 6) }

// Capacity implements Storage.
func (s *SuperCap) Capacity() float64 { return s.cmax }

// Charge implements Storage.
func (s *SuperCap) Charge() float64 { return s.q }

// SetCharge implements Storage.
func (s *SuperCap) SetCharge(q float64) {
	if q < 0 {
		q = 0
	}
	if q > s.cmax {
		q = s.cmax
	}
	s.q = q
}

// Apply implements Storage.
func (s *SuperCap) Apply(current, dt float64) Flow {
	if dt < 0 {
		panic(fmt.Sprintf("storage: negative duration %v", dt))
	}
	delta := current * dt
	var f Flow
	switch {
	case delta >= 0:
		room := s.cmax - s.q
		if delta <= room {
			s.q += delta
			f.Stored = delta
		} else {
			s.q = s.cmax
			f.Stored = room
			f.Bled = delta - room
		}
	default:
		need := -delta
		if need <= s.q {
			s.q -= need
			f.Stored = -need
		} else {
			f.Stored = -s.q
			f.Deficit = need - s.q
			s.q = 0
		}
	}
	return f
}

// Clone implements Storage.
func (s *SuperCap) Clone() Storage {
	cp := *s
	return &cp
}

// RestoreFrom implements Restorer.
func (s *SuperCap) RestoreFrom(src Storage) bool {
	o, ok := src.(*SuperCap)
	if ok {
		*s = *o
	}
	return ok
}

// TimeToFull returns how long the element takes to fill at the given
// charging current, or +Inf when the current is non-positive. Policies use
// it to split segments exactly at the full boundary instead of bleeding.
func TimeToFull(s Storage, current float64) float64 {
	if current <= 0 {
		return math.Inf(1)
	}
	return (s.Capacity() - s.Charge()) / current
}

// TimeToEmpty returns how long the element can sustain the given discharge
// current, or +Inf when the current is non-negative.
func TimeToEmpty(s Storage, current float64) float64 {
	if current >= 0 {
		return math.Inf(1)
	}
	return s.Charge() / -current
}
