package storage

import (
	"fmt"
	"math"
)

// BatchKey identities let the batched simulation core (sim.BatchRunner)
// group lanes whose storage elements start identically: the simulator
// clones the element at construction and rewinds the clone before every
// run, so the construction-time state below fully determines a lane's
// storage trajectory. Keys format exact float bits — lanes group only on
// true equality.

// BatchKey implements sim.BatchKeyer.
func (s *SuperCap) BatchKey() string {
	return fmt.Sprintf("supercap|%x|%x", math.Float64bits(s.cmax), math.Float64bits(s.q))
}

// BatchKey implements sim.BatchKeyer.
func (b *LiIon) BatchKey() string {
	return fmt.Sprintf("liion|%x|%x|%x|%x|%x",
		math.Float64bits(b.cmax), math.Float64bits(b.c), math.Float64bits(b.k),
		math.Float64bits(b.y1), math.Float64bits(b.y2))
}
