// Package httpx holds the small HTTP conventions every service in the
// repo shares — the simulation server and the sweep dispatcher speak the
// same dialect: stable JSON bodies, a single typed error shape, bounded
// request bodies that reject oversized payloads with 413, and 503
// responses that carry Retry-After so client backoff is protocol-driven
// instead of guessed.
package httpx

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"fcdpm/internal/report"
)

// Error is the body of every non-2xx response.
type Error struct {
	Error string `json:"error"`
}

// WriteJSON emits v stably encoded. Errors past the header are lost to
// the wire, as always.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	b, err := report.StableJSON(v)
	if err != nil {
		http.Error(w, `{"error":"encode failure"}`, 500)
		return
	}
	WriteBody(w, code, b)
}

// WriteBody emits pre-rendered JSON bytes with a trailing newline.
func WriteBody(w http.ResponseWriter, code int, b []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)+1))
	w.WriteHeader(code)
	w.Write(b)
	w.Write([]byte("\n"))
}

// WriteErr emits a typed error body.
func WriteErr(w http.ResponseWriter, code int, format string, args ...any) {
	WriteJSON(w, code, Error{Error: fmt.Sprintf(format, args...)})
}

// WriteUnavailable emits a 503 with a Retry-After header (integer
// seconds, rounded up, at least 1) so shed and drain responses tell the
// client when to come back instead of leaving backoff to guesswork.
func WriteUnavailable(w http.ResponseWriter, retryAfter time.Duration, format string, args ...any) {
	secs := int64((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	WriteErr(w, http.StatusServiceUnavailable, format, args...)
}

// WriteBodyLimit inspects a request-decode error and, when the cause is
// the http.MaxBytesReader bound, answers 413 with a typed error and
// reports true. Any other error is the caller's to classify.
func WriteBodyLimit(w http.ResponseWriter, err error) bool {
	var mbe *http.MaxBytesError
	if !errors.As(err, &mbe) {
		return false
	}
	WriteErr(w, http.StatusRequestEntityTooLarge,
		"request body exceeds %d bytes", mbe.Limit)
	return true
}

// RetryAfter parses a response's Retry-After header as integer seconds.
// The second result is false when the header is absent or malformed
// (HTTP-date values are deliberately not parsed — both services in this
// repo emit seconds).
func RetryAfter(resp *http.Response) (time.Duration, bool) {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.ParseInt(v, 10, 64)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}
