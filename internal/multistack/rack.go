package multistack

import (
	"fmt"
	"math"

	"fcdpm/internal/fuelcell"
	"fcdpm/internal/numeric"
)

// effGrid is the resolution of the pre-solved aggregate efficiency
// curve. 512 points over the rack's output range keeps the interpolation
// error orders of magnitude below the allocation differences the curve
// exists to expose.
const effGrid = 512

// Rack is K stacks behind one bus, aggregated under an allocation
// policy into a single immutable fuelcell.System. Build one with New;
// the zero value is not usable.
type Rack struct {
	stacks []Stack
	alloc  Allocator
	sys    *fuelcell.System
	key    string
}

// rackEfficiency is the aggregate's pre-solved efficiency map. It
// carries the rack's content fingerprint so the aggregate System —
// and therefore every batch lane holding it — groups by rack content,
// not instance identity.
type rackEfficiency struct {
	t   *numeric.Table
	key string
}

// Eta implements fuelcell.EfficiencyModel.
func (e rackEfficiency) Eta(iF float64) float64 {
	eta := e.t.At(iF)
	if eta < 1e-3 {
		return 1e-3
	}
	return eta
}

// BatchKey implements the batch runner's grouping capability.
func (e rackEfficiency) BatchKey() string { return e.key }

// New validates the stack set and pre-solves the aggregate. All stacks
// must share VF and Zeta (they regulate one bus and burn one fuel), at
// least one stack must be online, and degradations must lie in [0, 1).
func New(stacks []Stack, alloc Allocator) (*Rack, error) {
	if len(stacks) == 0 {
		return nil, fmt.Errorf("multistack: empty rack")
	}
	if alloc == nil {
		return nil, fmt.Errorf("multistack: nil allocator")
	}
	var vf, zeta float64
	online := 0
	for k, s := range stacks {
		if s.Sys == nil {
			return nil, fmt.Errorf("multistack: stack %d has nil system", k)
		}
		if s.Degrade < 0 || s.Degrade >= 1 || math.IsNaN(s.Degrade) {
			return nil, fmt.Errorf("multistack: stack %d degradation %v outside [0, 1)", k, s.Degrade)
		}
		if k == 0 {
			vf, zeta = s.Sys.VF, s.Sys.Zeta
		} else if s.Sys.VF != vf || s.Sys.Zeta != zeta {
			return nil, fmt.Errorf("multistack: stack %d bus parameters (VF=%v, zeta=%v) differ from stack 0 (VF=%v, zeta=%v)",
				k, s.Sys.VF, s.Sys.Zeta, vf, zeta)
		}
		if !s.Offline {
			online++
		}
	}
	if online == 0 {
		return nil, fmt.Errorf("multistack: no online stacks")
	}
	r := &Rack{
		stacks: append([]Stack(nil), stacks...),
		alloc:  alloc,
	}
	r.key = r.contentKey()
	if err := r.solve(vf, zeta); err != nil {
		return nil, err
	}
	return r, nil
}

// contentKey fingerprints the rack: the allocator plus every stack's
// electrical content and health, order-sensitive (allocation policies
// may break ties by rack order).
func (r *Rack) contentKey() string {
	key := "rack|" + r.alloc.BatchKey()
	for _, s := range r.stacks {
		key += "|" + s.batchKey()
	}
	return key
}

// solve pre-computes the aggregate efficiency curve: for each total
// demand on a dense grid, run the allocator, sum the per-stack fuel
// rates, and back out the effective efficiency eta = VF*iF/(zeta*fuel)
// — so the aggregate System's StackCurrent(iF) reproduces the rack fuel
// rate exactly at the grid points and interpolates between them.
func (r *Rack) solve(vf, zeta float64) error {
	minOut := math.Inf(1)
	var maxOut float64
	for _, s := range r.stacks {
		if s.Offline {
			continue
		}
		minOut = math.Min(minOut, s.Sys.MinOutput)
		maxOut += s.Sys.MaxOutput
	}
	xs := make([]float64, 0, effGrid)
	ys := make([]float64, 0, effGrid)
	out := make([]float64, len(r.stacks))
	for k := 0; k < effGrid; k++ {
		iF := minOut + (maxOut-minOut)*float64(k)/float64(effGrid-1)
		fuel := r.fuelRateInto(out, iF)
		if fuel <= 0 {
			return fmt.Errorf("multistack: degenerate rack fuel rate at iF=%v", iF)
		}
		xs = append(xs, iF)
		ys = append(ys, vf*iF/(zeta*fuel))
	}
	tab, err := numeric.NewTable(xs, ys)
	if err != nil {
		return err
	}
	sys, err := fuelcell.NewSystem(vf, zeta, minOut, maxOut, rackEfficiency{t: tab, key: r.key})
	if err != nil {
		return err
	}
	r.sys = sys
	return nil
}

// fuelRateInto allocates iF into out and returns the summed fuel rate.
func (r *Rack) fuelRateInto(out []float64, iF float64) float64 {
	r.alloc.Allocate(r.stacks, iF, out)
	var fuel float64
	for k, s := range r.stacks {
		fuel += s.FuelRate(out[k])
	}
	return fuel
}

// System returns the aggregate source: an immutable fuelcell.System
// whose load-following range is [min online stack minimum, sum of
// online stack maxima] and whose fuel map is the allocator's. It plugs
// directly into sim.Config.Sys, policies, and the fuel-map memo.
func (r *Rack) System() *fuelcell.System { return r.sys }

// K returns the number of stacks, online or not.
func (r *Rack) K() int { return len(r.stacks) }

// Stacks returns a copy of the stack descriptions.
func (r *Rack) Stacks() []Stack { return append([]Stack(nil), r.stacks...) }

// Allocator returns the rack's allocation policy.
func (r *Rack) Allocator() Allocator { return r.alloc }

// BatchKey is the rack's content fingerprint (also carried by the
// aggregate System's efficiency model).
func (r *Rack) BatchKey() string { return r.key }

// Allocate returns the per-stack outputs the rack's policy chooses for
// total demand iF — the exact split the pre-solved aggregate curve was
// built from, exposed for reports and tests.
func (r *Rack) Allocate(iF float64) []float64 {
	out := make([]float64, len(r.stacks))
	r.alloc.Allocate(r.stacks, iF, out)
	return out
}

// FuelRate returns the rack's exact (non-interpolated) fuel-rate
// current at total demand iF.
func (r *Rack) FuelRate(iF float64) float64 {
	out := make([]float64, len(r.stacks))
	return r.fuelRateInto(out, iF)
}

// Uniform builds a rack of k identical stacks cloned from sys, with
// per-stack efficiency degradations cycled from degrade (nil or empty
// means all healthy) — the constructor studies and the scenario layer
// share. degrade values follow the fault.EfficiencyDegrade convention:
// fractional efficiency loss in [0, 1).
func Uniform(sys *fuelcell.System, k int, alloc Allocator, degrade []float64) (*Rack, error) {
	if k < 1 {
		return nil, fmt.Errorf("multistack: rack size %d < 1", k)
	}
	stacks := make([]Stack, k)
	for i := range stacks {
		var d float64
		if len(degrade) > 0 {
			d = degrade[i%len(degrade)]
		}
		stacks[i] = Stack{Sys: sys, Degrade: d}
	}
	return New(stacks, alloc)
}
