package multistack

import (
	"math"
	"testing"

	"fcdpm/internal/fuelcell"
)

func paperStack(degrade float64) Stack {
	return Stack{Sys: fuelcell.PaperSystem(), Degrade: degrade}
}

// degradedMix is the heterogeneous rack the study cares about: healthy
// and 30 %-degraded stacks alternating.
func degradedMix(k int) []Stack {
	stacks := make([]Stack, k)
	for i := range stacks {
		var d float64
		if i%2 == 1 {
			d = 0.3
		}
		stacks[i] = paperStack(d)
	}
	return stacks
}

func sum(xs []float64) float64 {
	var t float64
	for _, x := range xs {
		t += x
	}
	return t
}

func TestRackAggregateRange(t *testing.T) {
	r, err := New(degradedMix(4), EqualSplit{})
	if err != nil {
		t.Fatal(err)
	}
	sys := r.System()
	if sys.MinOutput != 0.1 {
		t.Fatalf("aggregate min = %v, want 0.1", sys.MinOutput)
	}
	if math.Abs(sys.MaxOutput-4.8) > 1e-12 {
		t.Fatalf("aggregate max = %v, want 4.8", sys.MaxOutput)
	}
	if !sys.IsConvexFuel(200) {
		t.Fatal("equal-split aggregate fuel map is not convex")
	}
}

// TestAllocationsSumToDemand checks every policy conserves current over
// the full feasible range, including at stack-saturation boundaries.
func TestAllocationsSumToDemand(t *testing.T) {
	stacks := degradedMix(3)
	for _, alloc := range Allocators() {
		out := make([]float64, len(stacks))
		for _, iF := range []float64{0.1, 0.5, 1.2, 1.3, 2.4, 3.5, 3.6} {
			alloc.Allocate(stacks, iF, out)
			if math.Abs(sum(out)-iF) > 1e-9 {
				t.Errorf("%s: allocation at %v sums to %v", alloc.Name(), iF, sum(out))
			}
			for k, x := range out {
				if x < -1e-12 || x > stacks[k].maxOut()+1e-12 {
					t.Errorf("%s: stack %d output %v outside [0, %v]", alloc.Name(), k, x, stacks[k].maxOut())
				}
			}
		}
	}
}

// TestWaterFillDominatesEqualSplit is the tentpole acceptance property:
// on a heterogeneous (degraded-mix) rack the water-filling fuel rate is
// strictly below equal-split wherever the split differs, and never
// above it anywhere (it solves the convex program equal-split only
// approximates).
func TestWaterFillDominatesEqualSplit(t *testing.T) {
	stacks := degradedMix(4)
	eq, err := New(stacks, EqualSplit{})
	if err != nil {
		t.Fatal(err)
	}
	wf, err := New(stacks, WaterFill{})
	if err != nil {
		t.Fatal(err)
	}
	strict := false
	for iF := 0.2; iF < 4.8; iF += 0.1 {
		fe, fw := eq.FuelRate(iF), wf.FuelRate(iF)
		if fw > fe+1e-9 {
			t.Fatalf("water-filling fuel %v above equal-split %v at iF=%v", fw, fe, iF)
		}
		if fw < fe-1e-6 {
			strict = true
		}
	}
	if !strict {
		t.Fatal("water-filling never strictly beat equal-split on a degraded mix")
	}
}

// TestWaterFillMatchesEqualSplitOnHomogeneousRack: with identical
// healthy stacks and a convex fuel map, the even split IS the optimum,
// so the two policies must agree to numerical tolerance.
func TestWaterFillMatchesEqualSplitOnHomogeneousRack(t *testing.T) {
	stacks := []Stack{paperStack(0), paperStack(0), paperStack(0)}
	eq, err := New(stacks, EqualSplit{})
	if err != nil {
		t.Fatal(err)
	}
	wf, err := New(stacks, WaterFill{})
	if err != nil {
		t.Fatal(err)
	}
	for iF := 0.3; iF < 3.6; iF += 0.3 {
		fe, fw := eq.FuelRate(iF), wf.FuelRate(iF)
		if math.Abs(fe-fw)/fe > 1e-3 {
			t.Fatalf("homogeneous rack: equal %v vs waterfill %v at iF=%v", fe, fw, iF)
		}
	}
}

// TestHealthRotationPrefersHealthyStacks: below the healthy capacity
// the degraded stacks must sit idle; above it they take only the spill.
func TestHealthRotationPrefersHealthyStacks(t *testing.T) {
	stacks := []Stack{paperStack(0.3), paperStack(0), paperStack(0.1)}
	out := make([]float64, 3)
	HealthRotation{}.Allocate(stacks, 1.0, out)
	if out[1] != 1.0 || out[0] != 0 || out[2] != 0 {
		t.Fatalf("demand below healthy ceiling: %v", out)
	}
	HealthRotation{}.Allocate(stacks, 2.0, out)
	if math.Abs(out[1]-1.2) > 1e-12 || math.Abs(out[2]-0.8) > 1e-12 || out[0] != 0 {
		t.Fatalf("spill order wrong: %v", out)
	}
	HealthRotation{}.Allocate(stacks, 3.0, out)
	if math.Abs(out[0]-0.6) > 1e-12 {
		t.Fatalf("most-degraded stack should take the final spill: %v", out)
	}
}

// TestOfflineStackExcluded: an offline stack contributes no capacity,
// no allocation, and no fuel.
func TestOfflineStackExcluded(t *testing.T) {
	stacks := []Stack{paperStack(0), {Sys: fuelcell.PaperSystem(), Offline: true}, paperStack(0)}
	r, err := New(stacks, WaterFill{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.System().MaxOutput-2.4) > 1e-12 {
		t.Fatalf("offline stack counted toward capacity: max %v", r.System().MaxOutput)
	}
	for _, iF := range []float64{0.5, 2.0, 2.4} {
		if out := r.Allocate(iF); out[1] != 0 {
			t.Fatalf("offline stack allocated %v at iF=%v", out[1], iF)
		}
	}
}

// TestAggregateReproducesRackFuel: the pre-solved System's fuel map must
// match the exact allocation sum at (and between) grid points.
func TestAggregateReproducesRackFuel(t *testing.T) {
	r, err := New(degradedMix(4), WaterFill{})
	if err != nil {
		t.Fatal(err)
	}
	sys := r.System()
	for iF := 0.15; iF < 4.8; iF += 0.37 {
		exact := r.FuelRate(iF)
		viaSys := sys.StackCurrent(iF)
		if math.Abs(exact-viaSys)/exact > 2e-3 {
			t.Fatalf("aggregate fuel map off at iF=%v: exact %v vs table %v", iF, exact, viaSys)
		}
	}
}

// TestRackBatchKeyContent: equal-content racks collapse, any divergence
// (allocation policy, degradation, K) separates.
func TestRackBatchKeyContent(t *testing.T) {
	a, err := Uniform(fuelcell.PaperSystem(), 4, WaterFill{}, []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Uniform(fuelcell.PaperSystem(), 4, WaterFill{}, []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if a.System().BatchKey() != b.System().BatchKey() {
		t.Fatal("identical racks keyed apart")
	}
	c, _ := Uniform(fuelcell.PaperSystem(), 4, EqualSplit{}, []float64{0, 0.3})
	if a.System().BatchKey() == c.System().BatchKey() {
		t.Fatal("different allocators keyed together")
	}
	d, _ := Uniform(fuelcell.PaperSystem(), 2, WaterFill{}, []float64{0, 0.3})
	if a.System().BatchKey() == d.System().BatchKey() {
		t.Fatal("different K keyed together")
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(nil, EqualSplit{}); err == nil {
		t.Error("empty rack accepted")
	}
	if _, err := New(degradedMix(2), nil); err == nil {
		t.Error("nil allocator accepted")
	}
	if _, err := New([]Stack{{Sys: nil}}, EqualSplit{}); err == nil {
		t.Error("nil stack system accepted")
	}
	if _, err := New([]Stack{paperStack(1.0)}, EqualSplit{}); err == nil {
		t.Error("degrade 1.0 accepted")
	}
	mixed := []Stack{paperStack(0), {Sys: mustSystem(t, 24, 37.5, 0.1, 1.2)}}
	if _, err := New(mixed, EqualSplit{}); err == nil {
		t.Error("mismatched bus voltage accepted")
	}
	allOff := []Stack{{Sys: fuelcell.PaperSystem(), Offline: true}}
	if _, err := New(allOff, EqualSplit{}); err == nil {
		t.Error("all-offline rack accepted")
	}
	if _, err := Uniform(fuelcell.PaperSystem(), 0, EqualSplit{}, nil); err == nil {
		t.Error("zero-stack Uniform accepted")
	}
}

func mustSystem(t *testing.T, vf, zeta, lo, hi float64) *fuelcell.System {
	t.Helper()
	s, err := fuelcell.NewSystem(vf, zeta, lo, hi, fuelcell.PaperEfficiency())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParseAllocator(t *testing.T) {
	for name, want := range map[string]string{
		"":              "equal-split",
		"equal":         "equal-split",
		"waterfill":     "water-filling",
		"Water-Filling": "water-filling",
		"rotation":      "health-rotation",
	} {
		a, err := ParseAllocator(name)
		if err != nil {
			t.Fatalf("ParseAllocator(%q): %v", name, err)
		}
		if a.Name() != want {
			t.Fatalf("ParseAllocator(%q) = %s, want %s", name, a.Name(), want)
		}
	}
	if _, err := ParseAllocator("psychic"); err == nil {
		t.Fatal("unknown allocator accepted")
	}
}
