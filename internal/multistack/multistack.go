// Package multistack models a K-stack hybrid power source: K independent
// fuel-cell systems feeding one regulated bus behind a shared storage
// element, the configuration datacenter-scale deployments use (a rack of
// stacks sized for surge capacity rather than one monolithic stack).
//
// A Rack aggregates its stacks under a power-allocation policy into a
// single fuelcell.System — the seam the simulator, the policies, and the
// fuel-map memo already consume — by pre-solving the rack's effective
// efficiency curve on a dense grid at construction, the same idiom
// fuelcell.ChainEfficiency uses. The aggregate is immutable and
// allocation-free at query time, so racks batch, memoize, and share
// across lanes exactly like single-stack systems.
package multistack

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"fcdpm/internal/fuelcell"
)

// Stack is one fuel-cell stack in a rack: its electrical description
// plus the health state allocation policies react to.
type Stack struct {
	// Sys is the stack's own system description. All stacks of a rack
	// must share the bus voltage VF and Gibbs coefficient Zeta.
	Sys *fuelcell.System
	// Degrade is the stack's fractional efficiency loss in [0, 1),
	// mirroring fault.EfficiencyDegrade: every amp the stack delivers
	// burns fuel scaled by 1/(1-Degrade). Zero is a healthy stack.
	Degrade float64
	// Offline removes the stack from allocation entirely (dropout /
	// maintenance); it contributes neither capacity nor fuel.
	Offline bool
}

// FuelRate returns the stack's fuel-rate current (A of stack current,
// proportional to mol H2/s) when delivering output x, inflated by the
// stack's efficiency degradation.
func (s Stack) FuelRate(x float64) float64 {
	if s.Offline || x <= 0 {
		return 0
	}
	return s.Sys.StackCurrent(x) / (1 - s.Degrade)
}

// maxOut returns the stack's deliverable ceiling, zero when offline.
func (s Stack) maxOut() float64 {
	if s.Offline {
		return 0
	}
	return s.Sys.MaxOutput
}

// batchKey fingerprints the stack for lane grouping.
func (s Stack) batchKey() string {
	off := 0
	if s.Offline {
		off = 1
	}
	return fmt.Sprintf("%s/%x/%d", s.Sys.BatchKey(), math.Float64bits(s.Degrade), off)
}

// Allocator splits a total rack demand across the stacks. Allocations
// treat each stack as gateable: a stack may sit at zero output while its
// siblings carry the load (the rack controller modulates stacks
// individually), so the per-stack constraint is 0 <= x_k <= MaxOutput_k
// with offline stacks pinned at zero.
type Allocator interface {
	// Name is the human-readable policy name for reports.
	Name() string
	// BatchKey is the allocator's grouping identity (see sim.BatchKeyer);
	// allocators are stateless, so the key is just the parameterization.
	BatchKey() string
	// Allocate writes the per-stack outputs for total demand iF into
	// out (len(stacks)). The demand is feasible: 0 <= iF <= sum of
	// online stack ceilings.
	Allocate(stacks []Stack, iF float64, out []float64)
}

// EqualSplit divides the demand evenly across online stacks, spilling
// the share a saturated stack cannot take onto the rest — the naive
// baseline a rack PDU implements with no efficiency feedback.
type EqualSplit struct{}

// Name implements Allocator.
func (EqualSplit) Name() string { return "equal-split" }

// BatchKey implements Allocator.
func (EqualSplit) BatchKey() string { return "equal" }

// Allocate implements Allocator.
func (EqualSplit) Allocate(stacks []Stack, iF float64, out []float64) {
	for i := range out {
		out[i] = 0
	}
	remaining := iF
	open := 0
	for _, s := range stacks {
		if s.maxOut() > 0 {
			open++
		}
	}
	// Saturation spill: each pass hands every open stack an equal share;
	// stacks that hit their ceiling close and the residual re-splits.
	for remaining > 1e-15 && open > 0 {
		share := remaining / float64(open)
		progressed := false
		for k := range stacks {
			room := stacks[k].maxOut() - out[k]
			if room <= 0 {
				continue
			}
			take := math.Min(share, room)
			out[k] += take
			remaining -= take
			if take > 0 {
				progressed = true
			}
			if out[k] >= stacks[k].maxOut()-1e-15 {
				open--
			}
		}
		if !progressed {
			break
		}
	}
}

// WaterFill allocates by marginal-cost equalization on the convex
// per-stack fuel curves: the rack's fuel rate sum(f_k(x_k)) is minimized
// subject to sum(x_k) = iF and 0 <= x_k <= max_k by finding the water
// level lambda at which every running stack's marginal fuel cost
// f_k'(x_k) equals lambda (stacks whose marginal cost at zero already
// exceeds lambda stay off; stacks saturated below lambda run at their
// ceiling) — the classic KKT structure of water-filling, valid because
// each f_k is convex (fuelcell.System.IsConvexFuel).
type WaterFill struct{}

// Name implements Allocator.
func (WaterFill) Name() string { return "water-filling" }

// BatchKey implements Allocator.
func (WaterFill) BatchKey() string { return "waterfill" }

// marginal returns df_k/dx at x via a central difference, one-sided at
// the domain edges.
func marginal(s Stack, x float64) float64 {
	const h = 1e-4
	lo, hi := x-h, x+h
	if lo < 0 {
		lo = 0
	}
	if m := s.maxOut(); hi > m {
		hi = m
	}
	if hi <= lo {
		return math.Inf(1)
	}
	return (s.FuelRate(hi) - s.FuelRate(lo)) / (hi - lo)
}

// levelOutput returns the largest x in [0, max_k] with f_k'(x) <= lambda
// (monotone in lambda because f_k' is non-decreasing).
func levelOutput(s Stack, lambda float64) float64 {
	m := s.maxOut()
	if m <= 0 || marginal(s, 0) > lambda {
		return 0
	}
	if marginal(s, m) <= lambda {
		return m
	}
	lo, hi := 0.0, m
	for i := 0; i < 48; i++ {
		mid := 0.5 * (lo + hi)
		if marginal(s, mid) <= lambda {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Allocate implements Allocator.
func (WaterFill) Allocate(stacks []Stack, iF float64, out []float64) {
	for i := range out {
		out[i] = 0
	}
	if iF <= 0 {
		return
	}
	// Bracket the water level: at lambda = 0 nothing runs; at the
	// largest saturated marginal cost everything runs flat out.
	hi := 0.0
	for _, s := range stacks {
		if m := s.maxOut(); m > 0 {
			if c := marginal(s, m); c > hi {
				hi = c
			}
		}
	}
	hi += 1
	lo := 0.0
	total := func(lambda float64) float64 {
		var t float64
		for _, s := range stacks {
			t += levelOutput(s, lambda)
		}
		return t
	}
	for i := 0; i < 60; i++ {
		mid := 0.5 * (lo + hi)
		if total(mid) < iF {
			lo = mid
		} else {
			hi = mid
		}
	}
	for k, s := range stacks {
		out[k] = levelOutput(s, hi)
	}
	// Close the bisection residual on stacks with headroom so the
	// allocation sums to the demand exactly (the residual is far below
	// any physical scale, but the sim's charge balance is exact).
	var sum float64
	for _, x := range out {
		sum += x
	}
	diff := iF - sum
	for k := range out {
		if diff == 0 {
			break
		}
		room := stacks[k].maxOut() - out[k]
		if diff > 0 && room > 0 {
			take := math.Min(diff, room)
			out[k] += take
			diff -= take
		} else if diff < 0 && out[k] > 0 {
			give := math.Min(-diff, out[k])
			out[k] -= give
			diff += give
		}
	}
}

// HealthRotation concentrates load on the healthiest stacks: stacks are
// ordered by ascending efficiency degradation (ties keep rack order) and
// filled greedily to their ceilings, so degraded stacks only run when
// the healthy prefix cannot cover the demand — the rotation a rack
// operator runs to shed wear onto stacks already scheduled for
// replacement.
type HealthRotation struct{}

// Name implements Allocator.
func (HealthRotation) Name() string { return "health-rotation" }

// BatchKey implements Allocator.
func (HealthRotation) BatchKey() string { return "rotation" }

// Allocate implements Allocator.
func (HealthRotation) Allocate(stacks []Stack, iF float64, out []float64) {
	for i := range out {
		out[i] = 0
	}
	order := make([]int, len(stacks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return stacks[order[a]].Degrade < stacks[order[b]].Degrade
	})
	remaining := iF
	for _, k := range order {
		if remaining <= 0 {
			break
		}
		take := math.Min(remaining, stacks[k].maxOut())
		out[k] = take
		remaining -= take
	}
}

// ParseAllocator maps a selector string to an allocation policy.
func ParseAllocator(name string) (Allocator, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "equal", "equal-split", "equalsplit":
		return EqualSplit{}, nil
	case "waterfill", "water-filling", "water-fill":
		return WaterFill{}, nil
	case "rotation", "health-rotation", "health":
		return HealthRotation{}, nil
	default:
		return nil, fmt.Errorf("multistack: unknown allocator %q", name)
	}
}

// Allocators returns the three built-in allocation policies in
// comparison order.
func Allocators() []Allocator {
	return []Allocator{EqualSplit{}, WaterFill{}, HealthRotation{}}
}
