package predict

import (
	"fmt"
	"math"
)

// BatchKey identities let the batched simulation core (sim.BatchRunner)
// group lanes whose predictors are guaranteed to evolve identically: the
// key covers every parameter and the initial state, formatted from exact
// float bits so lanes group only on true equality. Reset rewinds each
// predictor to its initial state before every run, so construction-time
// parameters fully determine the trajectory.

// BatchKey implements sim.BatchKeyer.
func (e *ExpAverage) BatchKey() string {
	return fmt.Sprintf("exp-avg|%x|%x", math.Float64bits(e.Rho), math.Float64bits(e.initial))
}

// BatchKey implements sim.BatchKeyer.
func (l *LastValue) BatchKey() string {
	return fmt.Sprintf("last-value|%x", math.Float64bits(l.initial))
}

// BatchKey implements sim.BatchKeyer.
func (r *Regression) BatchKey() string {
	return fmt.Sprintf("regression|%d|%x", r.Window, math.Float64bits(r.initial))
}

// BatchKey implements sim.BatchKeyer.
func (m *MovingAverage) BatchKey() string {
	return fmt.Sprintf("moving-average|%d|%x", m.Window, math.Float64bits(m.initial))
}
