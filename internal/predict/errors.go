package predict

import "fmt"

// ConfigError reports an out-of-range predictor parameter. The predictor
// constructors return it (wrapped or bare) instead of panicking, so
// parameters arriving from scenario files surface as ordinary validation
// failures — the same contract the storage and policy packages adopted in
// the typed-error sweep.
type ConfigError struct {
	// Predictor names the predictor family ("exp-average", "tree", ...).
	Predictor string
	// Param is the offending parameter ("rho", "window", "levels", ...).
	Param string
	// Detail describes the violation.
	Detail string
}

// Error implements error.
func (e *ConfigError) Error() string {
	return fmt.Sprintf("predict: %s: %s: %s", e.Predictor, e.Param, e.Detail)
}
