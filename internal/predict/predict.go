// Package predict implements the period predictors FC-DPM is built on.
//
// The paper uses the exponential-average predictor of Hwang & Wu [1] for
// the idle period (Eq 14) and proposes the same form for the active period
// (Eq 15) and average active current. The package also provides the
// alternatives the paper's related-work section surveys — last-value,
// sliding-window linear regression [2], and an adaptive learning tree [3] —
// plus an oracle, so predictor choice can be ablated.
package predict

import (
	"fmt"
	"math"

	"fcdpm/internal/numeric"
)

// Predictor forecasts the next value of a positive series (idle length,
// active length, or active current) from past observations.
type Predictor interface {
	// Predict returns the forecast for the next value.
	Predict() float64
	// Observe feeds the actual value once it is known.
	Observe(actual float64)
	// Reset clears history back to the initial state.
	Reset()
	// Name identifies the predictor in reports.
	Name() string
}

// ExpAverage is the Hwang–Wu exponential-average predictor (paper Eq 14):
//
//	T'(k) = ρ·T'(k-1) + (1-ρ)·T(k-1)
//
// ρ weighs the previous *prediction*; 1-ρ weighs the previous *actual*.
type ExpAverage struct {
	Rho     float64
	initial float64
	pred    float64
}

// NewExpAverage returns an exponential-average predictor with factor rho in
// [0, 1] and the given initial prediction. An out-of-range (or NaN) rho is
// a *ConfigError — scenario files feed this parameter directly.
func NewExpAverage(rho, initial float64) (*ExpAverage, error) {
	if math.IsNaN(rho) || rho < 0 || rho > 1 {
		return nil, &ConfigError{Predictor: "exp-average", Param: "rho",
			Detail: fmt.Sprintf("%v outside [0, 1]", rho)}
	}
	return &ExpAverage{Rho: rho, initial: initial, pred: initial}, nil
}

// MustExpAverage is NewExpAverage for fixed in-range literals; it panics on
// a construction error.
func MustExpAverage(rho, initial float64) *ExpAverage {
	e, err := NewExpAverage(rho, initial)
	if err != nil {
		panic(err)
	}
	return e
}

// Predict implements Predictor.
func (e *ExpAverage) Predict() float64 { return e.pred }

// Observe implements Predictor.
func (e *ExpAverage) Observe(actual float64) {
	e.pred = e.Rho*e.pred + (1-e.Rho)*actual
}

// Reset implements Predictor.
func (e *ExpAverage) Reset() { e.pred = e.initial }

// Name implements Predictor.
func (e *ExpAverage) Name() string { return fmt.Sprintf("exp-average(ρ=%.2f)", e.Rho) }

// LastValue predicts the previous observation (ρ = 0 exponential average).
type LastValue struct {
	initial float64
	pred    float64
}

// NewLastValue returns a last-value predictor with the given initial
// prediction.
func NewLastValue(initial float64) *LastValue {
	return &LastValue{initial: initial, pred: initial}
}

// Predict implements Predictor.
func (l *LastValue) Predict() float64 { return l.pred }

// Observe implements Predictor.
func (l *LastValue) Observe(actual float64) { l.pred = actual }

// Reset implements Predictor.
func (l *LastValue) Reset() { l.pred = l.initial }

// Name implements Predictor.
func (l *LastValue) Name() string { return "last-value" }

// Regression predicts by fitting a least-squares line through the last
// Window observations and extrapolating one step — the regression-function
// approach of Srivastava et al. [2]. With fewer than two observations it
// falls back to the initial prediction or the single observation.
type Regression struct {
	Window  int
	initial float64
	hist    []float64
}

// NewRegression returns a sliding-window regression predictor. A window
// below 2 is a *ConfigError.
func NewRegression(window int, initial float64) (*Regression, error) {
	if window < 2 {
		return nil, &ConfigError{Predictor: "regression", Param: "window",
			Detail: fmt.Sprintf("%d < 2", window)}
	}
	return &Regression{Window: window, initial: initial}, nil
}

// MustRegression is NewRegression for fixed valid literals; it panics on a
// construction error.
func MustRegression(window int, initial float64) *Regression {
	r, err := NewRegression(window, initial)
	if err != nil {
		panic(err)
	}
	return r
}

// Predict implements Predictor.
func (r *Regression) Predict() float64 {
	n := len(r.hist)
	switch n {
	case 0:
		return r.initial
	case 1:
		return r.hist[0]
	}
	// Fit y = a + b·x over x = 0..n-1, predict at x = n.
	var sx, sy, sxx, sxy float64
	for i, y := range r.hist {
		x := float64(i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	fn := float64(n)
	den := fn*sxx - sx*sx
	if den == 0 {
		return sy / fn
	}
	b := (fn*sxy - sx*sy) / den
	a := (sy - b*sx) / fn
	p := a + b*fn
	if p < 0 {
		return 0 // periods cannot be negative
	}
	return p
}

// Observe implements Predictor.
func (r *Regression) Observe(actual float64) {
	r.hist = append(r.hist, actual)
	if len(r.hist) > r.Window {
		r.hist = r.hist[1:]
	}
}

// Reset implements Predictor.
func (r *Regression) Reset() { r.hist = r.hist[:0] }

// Name implements Predictor.
func (r *Regression) Name() string { return fmt.Sprintf("regression(w=%d)", r.Window) }

// MovingAverage predicts the mean of the last Window observations.
type MovingAverage struct {
	Window  int
	initial float64
	hist    []float64
}

// NewMovingAverage returns a moving-average predictor. A non-positive
// window is a *ConfigError.
func NewMovingAverage(window int, initial float64) (*MovingAverage, error) {
	if window < 1 {
		return nil, &ConfigError{Predictor: "moving-average", Param: "window",
			Detail: fmt.Sprintf("%d < 1", window)}
	}
	return &MovingAverage{Window: window, initial: initial}, nil
}

// MustMovingAverage is NewMovingAverage for fixed valid literals; it panics
// on a construction error.
func MustMovingAverage(window int, initial float64) *MovingAverage {
	m, err := NewMovingAverage(window, initial)
	if err != nil {
		panic(err)
	}
	return m
}

// Predict implements Predictor.
func (m *MovingAverage) Predict() float64 {
	if len(m.hist) == 0 {
		return m.initial
	}
	var sum float64
	for _, v := range m.hist {
		sum += v
	}
	return sum / float64(len(m.hist))
}

// Observe implements Predictor.
func (m *MovingAverage) Observe(actual float64) {
	m.hist = append(m.hist, actual)
	if len(m.hist) > m.Window {
		m.hist = m.hist[1:]
	}
}

// Reset implements Predictor.
func (m *MovingAverage) Reset() { m.hist = m.hist[:0] }

// Name implements Predictor.
func (m *MovingAverage) Name() string { return fmt.Sprintf("moving-average(w=%d)", m.Window) }

// Oracle replays a known series — the perfect predictor, used to bound how
// much of FC-DPM's gap to the offline optimum is prediction error.
type Oracle struct {
	series   []float64
	pos      int
	fallback float64
}

// NewOracle returns an oracle over the given series. fallback is returned
// once the series is exhausted.
func NewOracle(series []float64, fallback float64) *Oracle {
	cp := make([]float64, len(series))
	copy(cp, series)
	return &Oracle{series: cp, fallback: fallback}
}

// Predict implements Predictor.
func (o *Oracle) Predict() float64 {
	if o.pos < len(o.series) {
		return o.series[o.pos]
	}
	return o.fallback
}

// Observe implements Predictor; the oracle just advances.
func (o *Oracle) Observe(float64) { o.pos++ }

// Reset implements Predictor.
func (o *Oracle) Reset() { o.pos = 0 }

// Name implements Predictor.
func (o *Oracle) Name() string { return "oracle" }

// Accuracy reports how well a predictor tracks a series.
type Accuracy struct {
	MAE, RMSE float64
	// OverRate is the fraction of predictions that exceeded the actual —
	// relevant because over-predicting the idle period makes DPM sleep on
	// slots where it should not.
	OverRate float64
}

// Evaluate resets the predictor, streams the series through it, and
// returns the prediction accuracy. An empty series — typically an empty or
// filtered-out user trace — is an error, not a panic.
func Evaluate(p Predictor, series []float64) (Accuracy, error) {
	if len(series) == 0 {
		return Accuracy{}, fmt.Errorf("predict: Evaluate on empty series")
	}
	p.Reset()
	preds := make([]float64, len(series))
	over := 0
	for i, actual := range series {
		preds[i] = p.Predict()
		if preds[i] > actual {
			over++
		}
		p.Observe(actual)
	}
	// Lengths match by construction, so the metric errors cannot fire.
	mae, _ := numeric.MeanAbsError(preds, series)
	rmse, _ := numeric.RootMeanSquareError(preds, series)
	return Accuracy{
		MAE:      mae,
		RMSE:     rmse,
		OverRate: float64(over) / float64(len(series)),
	}, nil
}

// sanity check that all predictors satisfy the interface.
var (
	_ Predictor = (*ExpAverage)(nil)
	_ Predictor = (*LastValue)(nil)
	_ Predictor = (*Regression)(nil)
	_ Predictor = (*MovingAverage)(nil)
	_ Predictor = (*Oracle)(nil)
)
