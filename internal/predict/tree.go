package predict

import "fmt"

// Tree is an adaptive-learning-tree predictor in the spirit of Chung,
// Benini & De Micheli [3]: recent observations are quantized into a small
// number of levels; the sequence of the last Depth levels indexes a node in
// a complete tree whose leaves hold per-context level predictions updated
// by a saturating confidence counter. The prediction is the centre of the
// predicted level's quantization bin.
//
// It shines on workloads with repeating idle patterns (e.g. periodic
// multimedia) where the exponential average smears structure away.
type Tree struct {
	// Levels is the number of quantization bins over [Lo, Hi].
	Levels int
	// Depth is the context length (how many past levels index the tree).
	Depth int
	// Lo and Hi bound the quantizer's input range.
	Lo, Hi float64

	initial float64
	ctx     []int          // last Depth observed levels, most recent last
	table   map[int]*entry // context hash -> prediction entry
}

type entry struct {
	level      int
	confidence int // saturating 0..3
}

// NewTree returns an adaptive learning tree predictor. levels must be at
// least 2, depth positive, and hi > lo; violations are *ConfigError.
func NewTree(levels, depth int, lo, hi, initial float64) (*Tree, error) {
	if levels < 2 {
		return nil, &ConfigError{Predictor: "tree", Param: "levels",
			Detail: fmt.Sprintf("%d < 2", levels)}
	}
	if depth < 1 {
		return nil, &ConfigError{Predictor: "tree", Param: "depth",
			Detail: fmt.Sprintf("%d < 1", depth)}
	}
	if !(hi > lo) {
		return nil, &ConfigError{Predictor: "tree", Param: "hi",
			Detail: fmt.Sprintf("bounds [%v, %v] invalid", lo, hi)}
	}
	return &Tree{
		Levels:  levels,
		Depth:   depth,
		Lo:      lo,
		Hi:      hi,
		initial: initial,
		table:   make(map[int]*entry),
	}, nil
}

// MustTree is NewTree for fixed valid literals; it panics on a
// construction error.
func MustTree(levels, depth int, lo, hi, initial float64) *Tree {
	t, err := NewTree(levels, depth, lo, hi, initial)
	if err != nil {
		panic(err)
	}
	return t
}

// quantize maps a value to a level in [0, Levels).
func (t *Tree) quantize(v float64) int {
	if v <= t.Lo {
		return 0
	}
	if v >= t.Hi {
		return t.Levels - 1
	}
	l := int(float64(t.Levels) * (v - t.Lo) / (t.Hi - t.Lo))
	if l >= t.Levels {
		l = t.Levels - 1
	}
	return l
}

// dequantize maps a level back to the centre of its bin.
func (t *Tree) dequantize(level int) float64 {
	bin := (t.Hi - t.Lo) / float64(t.Levels)
	return t.Lo + (float64(level)+0.5)*bin
}

// key hashes the current context into a table index.
func (t *Tree) key() int {
	k := 0
	for _, l := range t.ctx {
		k = k*t.Levels + l + 1
	}
	return k
}

// Predict implements Predictor.
func (t *Tree) Predict() float64 {
	if len(t.ctx) < t.Depth {
		return t.initial
	}
	e, ok := t.table[t.key()]
	if !ok {
		// Unseen context: fall back to the most recent level.
		return t.dequantize(t.ctx[len(t.ctx)-1])
	}
	return t.dequantize(e.level)
}

// Observe implements Predictor: it trains the current context's leaf toward
// the observed level with a saturating confidence counter, then shifts the
// context.
func (t *Tree) Observe(actual float64) {
	level := t.quantize(actual)
	if len(t.ctx) >= t.Depth {
		k := t.key()
		e, ok := t.table[k]
		switch {
		case !ok:
			t.table[k] = &entry{level: level, confidence: 1}
		case e.level == level:
			if e.confidence < 3 {
				e.confidence++
			}
		default:
			e.confidence--
			if e.confidence <= 0 {
				e.level = level
				e.confidence = 1
			}
		}
	}
	t.ctx = append(t.ctx, level)
	if len(t.ctx) > t.Depth {
		t.ctx = t.ctx[1:]
	}
}

// Reset implements Predictor.
func (t *Tree) Reset() {
	t.ctx = t.ctx[:0]
	t.table = make(map[int]*entry)
}

// Name implements Predictor.
func (t *Tree) Name() string {
	return fmt.Sprintf("learning-tree(L=%d,d=%d)", t.Levels, t.Depth)
}

var _ Predictor = (*Tree)(nil)
