package predict

import "fmt"

// Markov is a first-order Markov-chain predictor in the spirit of the
// stochastic-control DPM literature [4, 5]: observations are quantized
// into Levels bins over [Lo, Hi]; a transition-count matrix is learned
// online; the prediction is the expected next value (the count-weighted
// mean of bin centres) conditional on the current bin. Unseen rows fall
// back to the marginal distribution, and a cold start to the initial
// prediction.
//
// Where the adaptive learning Tree memorizes exact context patterns, the
// Markov predictor captures one-step correlation with far fewer
// parameters — the right tool when idle lengths form a drifting process
// rather than a repeating pattern.
type Markov struct {
	Levels int
	Lo, Hi float64

	initial  float64
	counts   [][]int // counts[i][j]: transitions bin i → bin j
	marginal []int
	cur      int // current bin; -1 before the first observation
	total    int
}

// NewMarkov returns a Markov-chain predictor. levels must be at least 2
// and hi > lo; violations are *ConfigError.
func NewMarkov(levels int, lo, hi, initial float64) (*Markov, error) {
	if levels < 2 {
		return nil, &ConfigError{Predictor: "markov", Param: "levels",
			Detail: fmt.Sprintf("%d < 2", levels)}
	}
	if !(hi > lo) {
		return nil, &ConfigError{Predictor: "markov", Param: "hi",
			Detail: fmt.Sprintf("bounds [%v, %v] invalid", lo, hi)}
	}
	m := &Markov{Levels: levels, Lo: lo, Hi: hi, initial: initial}
	m.Reset()
	return m, nil
}

// MustMarkov is NewMarkov for fixed valid literals; it panics on a
// construction error.
func MustMarkov(levels int, lo, hi, initial float64) *Markov {
	m, err := NewMarkov(levels, lo, hi, initial)
	if err != nil {
		panic(err)
	}
	return m
}

func (m *Markov) bin(v float64) int {
	if v <= m.Lo {
		return 0
	}
	if v >= m.Hi {
		return m.Levels - 1
	}
	i := int(float64(m.Levels) * (v - m.Lo) / (m.Hi - m.Lo))
	if i >= m.Levels {
		i = m.Levels - 1
	}
	return i
}

func (m *Markov) centre(i int) float64 {
	w := (m.Hi - m.Lo) / float64(m.Levels)
	return m.Lo + (float64(i)+0.5)*w
}

// Predict implements Predictor.
func (m *Markov) Predict() float64 {
	var row []int
	n := 0
	if m.cur >= 0 {
		row = m.counts[m.cur]
		for _, c := range row {
			n += c
		}
	}
	if n == 0 {
		// Unseen row (or cold start): fall back to the marginal.
		row = m.marginal
		n = m.total
	}
	if n == 0 {
		return m.initial
	}
	var sum float64
	for j, c := range row {
		sum += float64(c) * m.centre(j)
	}
	return sum / float64(n)
}

// Observe implements Predictor.
func (m *Markov) Observe(actual float64) {
	b := m.bin(actual)
	if m.cur >= 0 {
		m.counts[m.cur][b]++
	}
	m.marginal[b]++
	m.total++
	m.cur = b
}

// Reset implements Predictor.
func (m *Markov) Reset() {
	m.counts = make([][]int, m.Levels)
	for i := range m.counts {
		m.counts[i] = make([]int, m.Levels)
	}
	m.marginal = make([]int, m.Levels)
	m.cur = -1
	m.total = 0
}

// Name implements Predictor.
func (m *Markov) Name() string { return fmt.Sprintf("markov(L=%d)", m.Levels) }

var _ Predictor = (*Markov)(nil)
