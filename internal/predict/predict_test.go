package predict

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestExpAverageEq14(t *testing.T) {
	// Paper Eq 14 with ρ=0.5: T'(k) = 0.5·T'(k-1) + 0.5·T(k-1).
	p := MustExpAverage(0.5, 10)
	if p.Predict() != 10 {
		t.Fatalf("initial prediction = %v", p.Predict())
	}
	p.Observe(20)
	if got := p.Predict(); got != 15 {
		t.Fatalf("after 20: %v, want 15", got)
	}
	p.Observe(5)
	if got := p.Predict(); got != 10 {
		t.Fatalf("after 5: %v, want 10", got)
	}
}

func TestExpAverageRhoExtremes(t *testing.T) {
	frozen := MustExpAverage(1, 7)
	frozen.Observe(100)
	if frozen.Predict() != 7 {
		t.Error("rho=1 should never move")
	}
	follower := MustExpAverage(0, 7)
	follower.Observe(100)
	if follower.Predict() != 100 {
		t.Error("rho=0 should equal last value")
	}
}

func TestExpAverageConvergesToConstant(t *testing.T) {
	p := MustExpAverage(0.5, 0)
	for i := 0; i < 60; i++ {
		p.Observe(12)
	}
	if math.Abs(p.Predict()-12) > 1e-9 {
		t.Fatalf("did not converge: %v", p.Predict())
	}
}

func TestExpAverageReset(t *testing.T) {
	p := MustExpAverage(0.5, 3)
	p.Observe(100)
	p.Reset()
	if p.Predict() != 3 {
		t.Fatalf("reset prediction = %v", p.Predict())
	}
}

// TestExpAverageBadRhoIsTypedError is the typed-error regression test for
// the constructor sweep: an out-of-range rho must come back as a
// *ConfigError, not a panic (the pre-fix behavior).
func TestExpAverageBadRhoIsTypedError(t *testing.T) {
	for _, rho := range []float64{-0.1, 1.5, math.NaN()} {
		p, err := NewExpAverage(rho, 0)
		if p != nil || err == nil {
			t.Fatalf("rho=%v: expected construction error, got (%v, %v)", rho, p, err)
		}
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Param != "rho" {
			t.Fatalf("rho=%v: error %v is not a rho ConfigError", rho, err)
		}
	}
	if _, err := NewMovingAverage(0, 1); err == nil {
		t.Fatal("moving-average window 0 accepted")
	}
	if _, err := NewRegression(1, 1); err == nil {
		t.Fatal("regression window 1 accepted")
	}
}

// TestMustConstructorsPanic pins the Must* contract: construction errors
// on fixed literals are programmer errors and still panic.
func TestMustConstructorsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustExpAverage(1.5) did not panic")
		}
	}()
	MustExpAverage(1.5, 0)
}

func TestLastValue(t *testing.T) {
	p := NewLastValue(4)
	if p.Predict() != 4 {
		t.Fatal("initial")
	}
	p.Observe(9)
	if p.Predict() != 9 {
		t.Fatal("after observe")
	}
	p.Reset()
	if p.Predict() != 4 {
		t.Fatal("after reset")
	}
}

func TestRegressionExtrapolatesTrend(t *testing.T) {
	p := MustRegression(5, 0)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		p.Observe(v)
	}
	if got := p.Predict(); math.Abs(got-6) > 1e-9 {
		t.Fatalf("trend prediction = %v, want 6", got)
	}
}

func TestRegressionWindowSlides(t *testing.T) {
	p := MustRegression(3, 0)
	for _, v := range []float64{100, 100, 1, 2, 3} { // old values leave the window
		p.Observe(v)
	}
	if got := p.Predict(); math.Abs(got-4) > 1e-9 {
		t.Fatalf("windowed prediction = %v, want 4", got)
	}
}

func TestRegressionFewObservations(t *testing.T) {
	p := MustRegression(4, 7)
	if p.Predict() != 7 {
		t.Fatal("empty history should return initial")
	}
	p.Observe(3)
	if p.Predict() != 3 {
		t.Fatal("single observation should be returned as-is")
	}
}

func TestRegressionNeverNegative(t *testing.T) {
	p := MustRegression(3, 0)
	for _, v := range []float64{9, 5, 1} { // steep downward trend
		p.Observe(v)
	}
	if got := p.Predict(); got < 0 {
		t.Fatalf("negative period predicted: %v", got)
	}
}

func TestMovingAverage(t *testing.T) {
	p := MustMovingAverage(3, 2)
	if p.Predict() != 2 {
		t.Fatal("initial")
	}
	p.Observe(3)
	p.Observe(6)
	if got := p.Predict(); math.Abs(got-4.5) > 1e-12 {
		t.Fatalf("mean of 2 = %v", got)
	}
	p.Observe(9)
	p.Observe(12) // 3 leaves the window
	if got := p.Predict(); math.Abs(got-9) > 1e-12 {
		t.Fatalf("windowed mean = %v, want 9", got)
	}
}

func TestOracle(t *testing.T) {
	p := NewOracle([]float64{5, 7, 9}, 1)
	for _, want := range []float64{5, 7, 9} {
		if got := p.Predict(); got != want {
			t.Fatalf("oracle = %v, want %v", got, want)
		}
		p.Observe(want)
	}
	if got := p.Predict(); got != 1 {
		t.Fatalf("exhausted oracle = %v, want fallback 1", got)
	}
	p.Reset()
	if p.Predict() != 5 {
		t.Fatal("reset oracle should start over")
	}
}

func mustEval(t *testing.T, p Predictor, series []float64) Accuracy {
	t.Helper()
	acc, err := Evaluate(p, series)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

func TestOracleIsPerfect(t *testing.T) {
	series := []float64{8, 12, 20, 9, 15, 11}
	acc := mustEval(t, NewOracle(series, 0), series)
	if acc.MAE != 0 || acc.RMSE != 0 || acc.OverRate != 0 {
		t.Fatalf("oracle accuracy = %+v, want perfect", acc)
	}
}

func TestEvaluateOrdering(t *testing.T) {
	// On a noisy-but-stationary series, exp-average should beat last-value
	// (it averages the noise); oracle beats everything.
	series := make([]float64, 200)
	x := uint64(12345)
	for i := range series {
		x = x*6364136223846793005 + 1442695040888963407
		series[i] = 14 + float64(x%600)/100 - 3 // 11..17
	}
	expAcc := mustEval(t, MustExpAverage(0.5, 14), series)
	lastAcc := mustEval(t, NewLastValue(14), series)
	if expAcc.RMSE >= lastAcc.RMSE {
		t.Errorf("exp-average RMSE %v should beat last-value %v on noise", expAcc.RMSE, lastAcc.RMSE)
	}
}

func TestEvaluateErrorsOnEmpty(t *testing.T) {
	if _, err := Evaluate(NewLastValue(0), nil); err == nil {
		t.Fatal("empty series accepted")
	}
}

func TestTreeLearnsPeriodicPattern(t *testing.T) {
	// Alternating 8, 20, 8, 20... — a learning tree nails this; an
	// exponential average hovers at 14.
	series := make([]float64, 400)
	for i := range series {
		if i%2 == 0 {
			series[i] = 8
		} else {
			series[i] = 20
		}
	}
	tree := MustTree(8, 2, 5, 25, 14)
	treeAcc := mustEval(t, tree, series)
	expAcc := mustEval(t, MustExpAverage(0.5, 14), series)
	if treeAcc.MAE >= expAcc.MAE {
		t.Fatalf("tree MAE %v should beat exp-average %v on periodic input",
			treeAcc.MAE, expAcc.MAE)
	}
	// After training, prediction error should be within one quantization
	// bin (2.5 here).
	if treeAcc.RMSE > 6 {
		t.Fatalf("tree RMSE %v too high", treeAcc.RMSE)
	}
}

func TestTreeQuantizeBounds(t *testing.T) {
	tree := MustTree(4, 1, 0, 8, 0)
	if tree.quantize(-5) != 0 {
		t.Error("below-range value should map to level 0")
	}
	if tree.quantize(100) != 3 {
		t.Error("above-range value should map to top level")
	}
	if tree.quantize(8) != 3 {
		t.Error("hi boundary should map to top level")
	}
	for l := 0; l < 4; l++ {
		v := tree.dequantize(l)
		if tree.quantize(v) != l {
			t.Errorf("dequantize/quantize not inverse at level %d (v=%v)", l, v)
		}
	}
}

func TestTreeColdStart(t *testing.T) {
	tree := MustTree(4, 2, 0, 10, 5)
	if tree.Predict() != 5 {
		t.Fatal("cold tree should return initial")
	}
	tree.Observe(2)
	if tree.Predict() != 5 {
		t.Fatal("tree with short context should return initial")
	}
}

func TestTreeReset(t *testing.T) {
	tree := MustTree(4, 1, 0, 10, 5)
	tree.Observe(2)
	tree.Observe(2)
	tree.Reset()
	if tree.Predict() != 5 {
		t.Fatal("reset tree should return initial")
	}
}

func TestTreeConstructorTypedErrors(t *testing.T) {
	cases := map[string]func() (*Tree, error){
		"levels": func() (*Tree, error) { return NewTree(1, 1, 0, 10, 5) },
		"depth":  func() (*Tree, error) { return NewTree(4, 0, 0, 10, 5) },
		"hi":     func() (*Tree, error) { return NewTree(4, 1, 10, 0, 5) },
	}
	for param, f := range cases {
		tr, err := f()
		if tr != nil || err == nil {
			t.Errorf("%s: invalid tree accepted", param)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Param != param {
			t.Errorf("%s: error %v is not the expected ConfigError", param, err)
		}
	}
}

func TestNames(t *testing.T) {
	for _, p := range []Predictor{
		MustExpAverage(0.5, 0), NewLastValue(0), MustRegression(3, 0),
		MustMovingAverage(3, 0), NewOracle(nil, 0), MustTree(4, 1, 0, 10, 5),
	} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

// Property: exponential average stays within the convex hull of the initial
// prediction and all observations.
func TestExpAverageHullProperty(t *testing.T) {
	f := func(seed uint64) bool {
		x := seed
		p := MustExpAverage(0.5, 10)
		lo, hi := 10.0, 10.0
		for i := 0; i < 50; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			v := float64(x % 1000)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			p.Observe(v)
			if p.Predict() < lo-1e-9 || p.Predict() > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMarkovColdStart(t *testing.T) {
	m := MustMarkov(4, 0, 20, 7)
	if m.Predict() != 7 {
		t.Fatalf("cold prediction = %v, want initial", m.Predict())
	}
}

func TestMarkovLearnsAlternation(t *testing.T) {
	// Alternating 5, 15: after seeing a 5, predict near 15, and vice
	// versa.
	m := MustMarkov(4, 0, 20, 10)
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			m.Observe(5)
		} else {
			m.Observe(15)
		}
	}
	// Last observation was 15 (i=99): next should be ~5.
	if p := m.Predict(); math.Abs(p-5) > 3 {
		t.Fatalf("after 15, predicted %v, want ≈5", p)
	}
	m.Observe(5)
	if p := m.Predict(); math.Abs(p-15) > 3 {
		t.Fatalf("after 5, predicted %v, want ≈15", p)
	}
}

func TestMarkovBeatsExpAverageOnAlternation(t *testing.T) {
	series := make([]float64, 300)
	for i := range series {
		if i%2 == 0 {
			series[i] = 5
		} else {
			series[i] = 15
		}
	}
	mAcc := mustEval(t, MustMarkov(8, 0, 20, 10), series)
	eAcc := mustEval(t, MustExpAverage(0.5, 10), series)
	if mAcc.MAE >= eAcc.MAE {
		t.Fatalf("markov MAE %v should beat exp-average %v on alternation", mAcc.MAE, eAcc.MAE)
	}
}

func TestMarkovMarginalFallback(t *testing.T) {
	m := MustMarkov(4, 0, 20, 10)
	// Train only low values, then land in an unseen state via a high
	// observation: the unseen row falls back to the marginal.
	for i := 0; i < 10; i++ {
		m.Observe(2)
	}
	m.Observe(19) // bin 3's row has no outgoing counts
	p := m.Predict()
	// Marginal is dominated by bin 0 (centre 2.5).
	if p > 6 {
		t.Fatalf("fallback prediction = %v, want near the marginal mean", p)
	}
}

func TestMarkovReset(t *testing.T) {
	m := MustMarkov(4, 0, 20, 10)
	m.Observe(5)
	m.Observe(15)
	m.Reset()
	if m.Predict() != 10 {
		t.Fatalf("reset prediction = %v", m.Predict())
	}
}

func TestMarkovConstructorTypedErrors(t *testing.T) {
	for name, f := range map[string]func() (*Markov, error){
		"levels": func() (*Markov, error) { return NewMarkov(1, 0, 10, 5) },
		"bounds": func() (*Markov, error) { return NewMarkov(4, 10, 0, 5) },
	} {
		m, err := f()
		if m != nil || err == nil {
			t.Errorf("%s: invalid markov accepted", name)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %v is not a ConfigError", name, err)
		}
	}
}
