package runner

import (
	"errors"
	"fmt"
)

// Sentinel errors surfaced by the engine. They are returned wrapped, so
// callers must test with errors.Is.
var (
	// ErrInterrupted marks a batch stopped before every task resolved
	// (context cancellation — typically SIGTERM/Ctrl-C). With a journal
	// configured the batch is resumable: re-invoking the same task set
	// skips the completed work.
	ErrInterrupted = errors.New("runner: batch interrupted before completion")
	// ErrShed is returned by Submit when the admission queue is full and
	// load shedding is enabled.
	ErrShed = errors.New("runner: task shed, admission queue full")
	// ErrBreakerOpen marks a task skipped because its scenario's circuit
	// breaker was open.
	ErrBreakerOpen = errors.New("runner: circuit breaker open")
	// ErrClosed is returned by Submit after Drain has been called.
	ErrClosed = errors.New("runner: pool closed")
)

// RunError is the typed failure of one task: the wrapped cause, the task
// identity, how many attempts were made, and — when the run panicked —
// the recovered value and its stack. A panicking run never takes down
// sibling workers; it surfaces as a *RunError with a non-empty Stack.
type RunError struct {
	ID       string
	Scenario string
	Attempts int
	Err      error
	// PanicValue and Stack are set when the task panicked.
	PanicValue any
	Stack      string
}

// Error implements error.
func (e *RunError) Error() string {
	if e.Stack != "" {
		return fmt.Sprintf("runner: task %s panicked after %d attempt(s): %v", e.ID, e.Attempts, e.PanicValue)
	}
	return fmt.Sprintf("runner: task %s failed after %d attempt(s): %v", e.ID, e.Attempts, e.Err)
}

// Unwrap exposes the cause for errors.Is / errors.As.
func (e *RunError) Unwrap() error { return e.Err }

// Format implements fmt.Formatter so %+v appends the captured panic
// stack, which plain %v omits.
func (e *RunError) Format(f fmt.State, verb rune) {
	switch {
	case verb == 'v' && f.Flag('+') && e.Stack != "":
		fmt.Fprintf(f, "%s\n%s", e.Error(), e.Stack)
	case verb == 's' || verb == 'v':
		fmt.Fprint(f, e.Error())
	default:
		fmt.Fprintf(f, "%%!%c(*runner.RunError=%s)", verb, e.Error())
	}
}

// retryableError marks its cause as worth retrying.
type retryableError struct{ err error }

func (r *retryableError) Error() string   { return r.err.Error() }
func (r *retryableError) Unwrap() error   { return r.err }
func (r *retryableError) Retryable() bool { return true }

// MarkRetryable wraps err so the engine's retry loop will re-attempt the
// task (up to Options.Retries). Use it for transient failures — flaky
// I/O, resource contention — not for deterministic model errors, which
// retrying cannot fix.
func MarkRetryable(err error) error {
	if err == nil {
		return nil
	}
	return &retryableError{err: err}
}

// Retryable reports whether the engine should re-attempt a failed task:
// anything marked with MarkRetryable or implementing Retryable() bool,
// plus per-attempt deadline expiries (a hung run may succeed on a retry).
// Panics and parent-context cancellations are never retryable.
func Retryable(err error) bool {
	var rt interface{ Retryable() bool }
	if errors.As(err, &rt) {
		return rt.Retryable()
	}
	var at *attemptTimeoutError
	return errors.As(err, &at)
}

// attemptTimeoutError marks one attempt exceeding Options.Timeout,
// distinguishing it from a parent-context cancellation (which must stop
// the batch, not trigger a retry).
type attemptTimeoutError struct {
	id      string
	timeout float64 // seconds
	err     error
}

func (e *attemptTimeoutError) Error() string {
	return fmt.Sprintf("runner: task %s exceeded the %.3gs attempt deadline: %v", e.id, e.timeout, e.err)
}

func (e *attemptTimeoutError) Unwrap() error { return e.err }
