package runner

import (
	"context"
	"time"
)

// Clock abstracts time for the engine so backoff and breaker cooldowns
// are testable with a deterministic fake. The zero Options gets the real
// clock.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
	// latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// WallClock is the real time source, exported so other daemons (the
// sweep worker's heartbeat loop) default to it while staying injectable.
var WallClock Clock = realClock{}

// realClock is the wall-clock implementation.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
