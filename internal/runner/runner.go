// Package runner is the resilient run-orchestration engine behind every
// batch entry point (fault sweeps, ablations, scenario batches, figure
// generation): a bounded worker pool with per-run deadlines, panic
// isolation, retry with exponential backoff, per-scenario circuit
// breakers, bounded admission with explicit load shedding, graceful
// drain on cancellation, and a crash-safe checkpoint journal keyed by
// deterministic run IDs so an interrupted sweep resumes instead of
// restarting.
//
// The simulator (internal/sim) makes a *single* run survive injected
// faults; this package applies the same rigor one layer up, around the
// fleet of runs: one panicking or hanging run never takes down its
// siblings, a systematically broken scenario stops consuming workers,
// and a SIGTERM mid-batch loses no completed work.
package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"fcdpm/internal/obs"
)

// Options tunes the engine. The zero value is a sensible default:
// GOMAXPROCS workers, no per-run deadline, no retries, blocking
// admission, breakers at 3 consecutive failures, no journal.
type Options struct {
	// Workers bounds concurrent runs (default: GOMAXPROCS).
	Workers int
	// Timeout is the per-attempt deadline; 0 means none. An attempt that
	// exceeds it fails with a retryable deadline error — the run function
	// must honor its context for the worker to come back.
	Timeout time.Duration
	// Retries is how many times a failed attempt is re-run, applied only
	// to retryable failures (MarkRetryable, Retryable() bool, attempt
	// deadlines). 0 means fail fast.
	Retries int
	// BackoffBase and BackoffMax shape the exponential retry backoff
	// (defaults 100 ms and 5 s); jitter is deterministic per task ID.
	BackoffBase, BackoffMax time.Duration
	// Queue bounds the admission queue (default: 2×Workers).
	Queue int
	// ShedOverflow makes Submit reject (ErrShed) instead of block when
	// the queue is full — explicit load shedding for callers that would
	// rather drop work than build unbounded backlog.
	ShedOverflow bool
	// BreakerThreshold opens a scenario's circuit breaker after that many
	// consecutive task failures (default 3); negative disables breakers.
	BreakerThreshold int
	// BreakerCooldown is the open interval before a half-open probe is
	// admitted (default 30 s).
	BreakerCooldown time.Duration
	// Journal, when non-empty, checkpoints every completed run to this
	// JSONL file and skips already-journaled IDs on submit — crash-safe
	// resume for interrupted sweeps.
	Journal string
	// OnEvent, when set, observes the task lifecycle: one PhaseStart
	// notification per attempt and one PhaseResolve per task. Callbacks
	// run synchronously on worker (and submitter) goroutines — they must
	// be fast, concurrency-safe, and must not call back into the pool.
	OnEvent func(TaskEvent)
	// StreamOutcomes drops per-task outcome retention: Drain's report
	// carries only the counters, and results reach the caller through the
	// task functions and OnEvent. Long-lived pools (services) need this —
	// an outcome slice that only grows is a leak when the pool never
	// drains.
	StreamOutcomes bool
	// Clock substitutes a fake time source in tests.
	Clock Clock
	// Metrics, when non-nil, receives the pool's admission, resolution,
	// retry, queue-depth, and breaker-transition activity. Recording is
	// a few atomic adds per task; nil disables instrumentation entirely.
	Metrics *obs.PoolMetrics
}

// EventPhase classifies an OnEvent notification.
type EventPhase string

// Lifecycle phases.
const (
	// PhaseStart: an attempt is about to execute.
	PhaseStart EventPhase = "start"
	// PhaseResolve: the task reached its final status.
	PhaseResolve EventPhase = "resolve"
)

// TaskEvent is one lifecycle notification delivered to Options.OnEvent.
type TaskEvent struct {
	// ID and Scenario identify the task.
	ID, Scenario string
	// Phase is PhaseStart or PhaseResolve.
	Phase EventPhase
	// Attempt is the 1-based attempt number on start events and the total
	// attempts made on resolve events (0 when the task never executed:
	// resumed, shed, breaker-open).
	Attempt int
	// Status is the final status; set only on resolve events.
	Status Status
	// Err is the failure cause on failed/shed/interrupted resolutions.
	Err error
}

// withDefaults resolves the zero-value fields.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Queue <= 0 {
		o.Queue = 2 * o.Workers
	}
	if o.Clock == nil {
		o.Clock = realClock{}
	}
	return o
}

// Task is one unit of work. ID must be unique within the batch and
// deterministic across invocations (see RunID) — it is the journal key.
// Scenario groups tasks for circuit breaking: repeated failures within a
// scenario stop that scenario's remaining tasks, never its siblings'.
type Task[R any] struct {
	ID       string
	Scenario string
	Run      func(ctx context.Context) (R, error)
}

// Status classifies how a task resolved.
type Status string

// Task resolutions.
const (
	// StatusDone: ran to completion this invocation.
	StatusDone Status = "done"
	// StatusResumed: skipped, result restored from the journal.
	StatusResumed Status = "resumed"
	// StatusFailed: all attempts failed; Err holds a *RunError.
	StatusFailed Status = "failed"
	// StatusShed: rejected at admission (queue full, ShedOverflow).
	StatusShed Status = "shed"
	// StatusBreakerOpen: rejected because the scenario's breaker was open.
	StatusBreakerOpen Status = "breaker-open"
	// StatusInterrupted: the batch context was canceled before or during
	// the run; with a journal, re-invoking resumes it.
	StatusInterrupted Status = "interrupted"
)

// Outcome is one task's resolution, in submission order in the report.
type Outcome[R any] struct {
	ID       string
	Scenario string
	Status   Status
	Result   R
	Err      error
	// Attempts counts executions this invocation (0 for resumed/shed/
	// breaker-open/never-started tasks).
	Attempts int
}

// Report aggregates a batch.
type Report[R any] struct {
	Outcomes []Outcome[R]
	// Counters by resolution.
	Done, Resumed, Failed, Shed, BreakerSkipped, Interrupted int
}

// Resumable reports whether re-invoking the batch would make progress:
// something was interrupted or skipped by an open breaker.
func (r *Report[R]) Resumable() bool { return r.Interrupted > 0 }

// FirstError returns the first failed outcome's error, or nil.
func (r *Report[R]) FirstError() error {
	for i := range r.Outcomes {
		if r.Outcomes[i].Status == StatusFailed {
			return r.Outcomes[i].Err
		}
	}
	return nil
}

// Pool is the streaming face of the engine: Submit tasks, then Drain for
// the report. For a known task set, use Run.
type Pool[R any] struct {
	ctx   context.Context
	opts  Options
	queue chan poolItem[R]
	wg    sync.WaitGroup

	// sendMu serializes queue sends against the close in Drain, so a
	// Submit racing a Drain (a long-lived pool shutting down under
	// traffic) gets ErrClosed instead of a send-on-closed-channel panic.
	// Submitters hold the read side across the closed-check and the send;
	// Drain takes the write side to flip closed and close the channel.
	sendMu sync.RWMutex

	mu       sync.Mutex
	outcomes []Outcome[R]
	counts   counters
	breakers map[string]*breaker
	closed   bool

	jmu     sync.Mutex
	journal *journal
	jerr    error
}

// counters tallies resolutions by status.
type counters struct {
	done, resumed, failed, shed, breakerSkipped, interrupted int
}

// poolItem pairs a task with its outcome slot.
type poolItem[R any] struct {
	index int
	task  Task[R]
}

// NewPool starts the workers. The context governs the whole batch:
// cancel it and in-flight runs are asked to stop (their ctx), queued
// tasks resolve as interrupted, and Drain returns ErrInterrupted.
func NewPool[R any](ctx context.Context, opts Options) (*Pool[R], error) {
	opts = opts.withDefaults()
	p := &Pool[R]{
		ctx:      ctx,
		opts:     opts,
		queue:    make(chan poolItem[R], opts.Queue),
		breakers: make(map[string]*breaker),
	}
	if opts.Journal != "" {
		j, err := openJournal(opts.Journal)
		if err != nil {
			return nil, err
		}
		p.journal = j
	}
	for i := 0; i < opts.Workers; i++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for it := range p.queue {
				p.execute(it)
			}
		}()
	}
	return p, nil
}

// reserve appends a pending outcome slot and returns its index, or -1
// when the pool streams outcomes instead of retaining them.
func (p *Pool[R]) reserve(t Task[R]) int {
	if p.opts.StreamOutcomes {
		return -1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.outcomes = append(p.outcomes, Outcome[R]{ID: t.ID, Scenario: t.Scenario})
	return len(p.outcomes) - 1
}

// resolve records a task's final status: counter, outcome slot (unless
// streaming), and the PhaseResolve notification.
func (p *Pool[R]) resolve(index int, t Task[R], status Status, result R, err error, attempts int) {
	p.mu.Lock()
	switch status {
	case StatusDone:
		p.counts.done++
	case StatusResumed:
		p.counts.resumed++
	case StatusFailed:
		p.counts.failed++
	case StatusShed:
		p.counts.shed++
	case StatusBreakerOpen:
		p.counts.breakerSkipped++
	case StatusInterrupted:
		p.counts.interrupted++
	}
	if index >= 0 {
		o := &p.outcomes[index]
		o.Status, o.Result, o.Err, o.Attempts = status, result, err, attempts
	}
	p.mu.Unlock()
	p.opts.Metrics.Resolved(string(status), attempts)
	if p.opts.OnEvent != nil {
		p.opts.OnEvent(TaskEvent{ID: t.ID, Scenario: t.Scenario,
			Phase: PhaseResolve, Attempt: attempts, Status: status, Err: err})
	}
}

// Submit admits one task. Every submitted task gets exactly one outcome
// in the final report, whatever happens: journal hits resolve
// immediately as resumed, a full queue under ShedOverflow resolves as
// shed (and returns ErrShed), cancellation resolves as interrupted (and
// returns the context error).
func (p *Pool[R]) Submit(t Task[R]) error {
	if t.Run == nil {
		return fmt.Errorf("runner: task %s has no run function", t.ID)
	}
	// Hold the send guard from the closed-check through the send: Drain
	// cannot close the queue in the gap, so a racing Submit resolves to
	// ErrClosed instead of panicking on a closed channel.
	p.sendMu.RLock()
	defer p.sendMu.RUnlock()
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return ErrClosed
	}
	index := p.reserve(t)
	var zero R
	if p.journal != nil {
		p.jmu.Lock()
		rec, ok := p.journal.lookup(t.ID)
		p.jmu.Unlock()
		if ok {
			var res R
			if err := json.Unmarshal(rec.Result, &res); err == nil {
				p.resolve(index, t, StatusResumed, res, nil, 0)
				return nil
			}
			// Undecodable checkpoint (schema drift): fall through and
			// re-run rather than resurrect a stale shape.
		}
	}
	it := poolItem[R]{index: index, task: t}
	if p.opts.ShedOverflow {
		select {
		case p.queue <- it:
			p.opts.Metrics.Admitted()
			return nil
		case <-p.ctx.Done():
			p.resolve(index, t, StatusInterrupted, zero, p.ctx.Err(), 0)
			return p.ctx.Err()
		default:
			p.resolve(index, t, StatusShed, zero, ErrShed, 0)
			return ErrShed
		}
	}
	select {
	case p.queue <- it:
		p.opts.Metrics.Admitted()
		return nil
	case <-p.ctx.Done():
		p.resolve(index, t, StatusInterrupted, zero, p.ctx.Err(), 0)
		return p.ctx.Err()
	}
}

// Drain closes admission, waits for in-flight work, and returns the
// report. The error is ErrInterrupted when the batch was cut short (the
// report still describes every submitted task), or a journal I/O error
// if checkpointing failed.
func (p *Pool[R]) Drain() (*Report[R], error) {
	p.sendMu.Lock()
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.sendMu.Unlock()
	p.wg.Wait()

	rep := &Report[R]{}
	p.mu.Lock()
	rep.Outcomes = append(rep.Outcomes, p.outcomes...)
	rep.Done, rep.Resumed, rep.Failed = p.counts.done, p.counts.resumed, p.counts.failed
	rep.Shed, rep.BreakerSkipped, rep.Interrupted = p.counts.shed, p.counts.breakerSkipped, p.counts.interrupted
	p.mu.Unlock()
	p.jmu.Lock()
	jerr := p.jerr
	p.jmu.Unlock()
	if jerr != nil {
		return rep, jerr
	}
	if rep.Interrupted > 0 {
		return rep, ErrInterrupted
	}
	return rep, nil
}

// breakerFor returns (possibly creating) the scenario's breaker, or nil
// when breaking is disabled or the task carries no scenario.
func (p *Pool[R]) breakerFor(scenario string) *breaker {
	if p.opts.BreakerThreshold < 0 || scenario == "" {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.breakers[scenario]
	if !ok {
		b = newBreaker(p.opts.BreakerThreshold, p.opts.BreakerCooldown, p.opts.Clock)
		if m := p.opts.Metrics; m != nil {
			b.onChange = func(from, to breakerState) {
				m.BreakerChanged(from.String(), to.String())
			}
		}
		p.breakers[scenario] = b
	}
	return b
}

// BreakerStates snapshots every scenario breaker's current state, keyed
// by scenario and named as the breaker's String ("closed", "open",
// "half-open"). Operational surfaces (/v1/stats, worker status pages)
// report it so an operator sees which scenarios are quarantined right
// now, not just how often transitions fired.
func (p *Pool[R]) BreakerStates() map[string]string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.breakers) == 0 {
		return nil
	}
	states := make(map[string]string, len(p.breakers))
	for scenario, b := range p.breakers {
		states[scenario] = b.snapshot().String()
	}
	return states
}

// execute runs one task through admission control, the attempt loop, and
// checkpointing.
func (p *Pool[R]) execute(it poolItem[R]) {
	t := it.task
	var zero R
	p.opts.Metrics.Dequeued()
	if err := p.ctx.Err(); err != nil {
		p.resolve(it.index, t, StatusInterrupted, zero, err, 0)
		return
	}
	brk := p.breakerFor(t.Scenario)
	if brk != nil && !brk.admit() {
		p.resolve(it.index, t, StatusBreakerOpen, zero,
			fmt.Errorf("runner: scenario %s: %w", t.Scenario, ErrBreakerOpen), 0)
		return
	}

	var lastErr error
	attempts := 0
	for attempt := 1; attempt <= 1+p.opts.Retries; attempt++ {
		attempts = attempt
		if p.opts.OnEvent != nil {
			p.opts.OnEvent(TaskEvent{ID: t.ID, Scenario: t.Scenario,
				Phase: PhaseStart, Attempt: attempt})
		}
		res, err := p.attempt(t)
		if err == nil {
			if brk != nil {
				brk.success()
			}
			p.checkpoint(t, res, attempts)
			p.resolve(it.index, t, StatusDone, res, nil, attempts)
			return
		}
		lastErr = err
		if p.ctx.Err() != nil {
			// Parent cancellation, not a task fault: don't trip the
			// breaker, don't retry — report interrupted so the batch is
			// resumable.
			p.resolve(it.index, t, StatusInterrupted, zero,
				fmt.Errorf("runner: task %s interrupted: %w", t.ID, err), attempts)
			return
		}
		if attempt <= p.opts.Retries && Retryable(err) {
			delay := BackoffDelay(p.opts.BackoffBase, p.opts.BackoffMax, t.ID, attempt)
			if p.opts.Clock.Sleep(p.ctx, delay) != nil {
				p.resolve(it.index, t, StatusInterrupted, zero,
					fmt.Errorf("runner: task %s interrupted during backoff: %w", t.ID, lastErr), attempts)
				return
			}
			continue
		}
		break
	}
	if brk != nil {
		brk.failure()
	}
	runErr := &RunError{ID: t.ID, Scenario: t.Scenario, Attempts: attempts, Err: lastErr}
	var pc *panicCapture
	if errors.As(lastErr, &pc) {
		runErr.PanicValue, runErr.Stack = pc.value, pc.stack
	}
	p.resolve(it.index, t, StatusFailed, zero, runErr, attempts)
}

// attempt executes the run function once under the per-attempt deadline,
// converting panics and deadline expiries into typed errors.
func (p *Pool[R]) attempt(t Task[R]) (R, error) {
	ctx := p.ctx
	var cancel context.CancelFunc
	if p.opts.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, p.opts.Timeout)
		defer cancel()
	}
	res, err := protect(ctx, t.Run)
	if err != nil && p.opts.Timeout > 0 &&
		p.ctx.Err() == nil && errors.Is(ctx.Err(), context.DeadlineExceeded) {
		err = &attemptTimeoutError{id: t.ID, timeout: p.opts.Timeout.Seconds(), err: err}
	}
	return res, err
}

// panicCapture carries a recovered panic and its stack out of protect.
type panicCapture struct {
	value any
	stack string
}

func (p *panicCapture) Error() string { return fmt.Sprintf("panic: %v", p.value) }

// protect invokes fn, converting a panic into a *panicCapture error so
// one exploding run cannot take down its worker or siblings.
func protect[R any](ctx context.Context, fn func(context.Context) (R, error)) (res R, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &panicCapture{value: r, stack: string(debug.Stack())}
		}
	}()
	return fn(ctx)
}

// checkpoint journals a completed run; I/O errors are remembered and
// surfaced by Drain (the in-memory result is still good).
func (p *Pool[R]) checkpoint(t Task[R], res R, attempts int) {
	if p.journal == nil {
		return
	}
	raw, err := json.Marshal(res)
	if err == nil {
		p.jmu.Lock()
		defer p.jmu.Unlock()
		err = p.journal.append(journalRecord{ID: t.ID, Scenario: t.Scenario, Attempts: attempts, Result: raw})
		if err == nil {
			return
		}
		if p.jerr == nil {
			p.jerr = err
		}
		return
	}
	p.jmu.Lock()
	defer p.jmu.Unlock()
	if p.jerr == nil {
		p.jerr = fmt.Errorf("runner: journal marshal %s: %w", t.ID, err)
	}
}

// Run executes a fixed task set through a fresh pool and reports every
// task in submission order. Shed and interrupted tasks still appear in
// the report; the error mirrors Drain's.
func Run[R any](ctx context.Context, opts Options, tasks []Task[R]) (*Report[R], error) {
	p, err := NewPool[R](ctx, opts)
	if err != nil {
		return nil, err
	}
	for _, t := range tasks {
		// Submit records the outcome (shed / interrupted) itself; keep
		// going so every task is accounted for in the report.
		switch err := p.Submit(t); {
		case err == nil, errors.Is(err, ErrShed):
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		default:
			p.Drain()
			return nil, err
		}
	}
	return p.Drain()
}
