package runner

import (
	"testing"
	"time"
)

func TestBreakerStateMachine(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(3, time.Minute, clk)

	if b.snapshot() != breakerClosed || !b.admit() {
		t.Fatal("new breaker should be closed and admitting")
	}
	// Two failures: still closed.
	b.failure()
	b.failure()
	if b.snapshot() != breakerClosed {
		t.Fatalf("state after 2 failures = %s, want closed", b.snapshot())
	}
	// A success resets the consecutive count.
	b.success()
	b.failure()
	b.failure()
	if b.snapshot() != breakerClosed {
		t.Fatal("success did not reset the failure count")
	}
	// Third consecutive failure opens it.
	b.failure()
	if b.snapshot() != breakerOpen {
		t.Fatalf("state at threshold = %s, want open", b.snapshot())
	}
	if b.admit() {
		t.Fatal("open breaker admitted a task before cooldown")
	}

	// Cooldown elapses: exactly one probe admitted (half-open).
	clk.advance(2 * time.Minute)
	if !b.admit() {
		t.Fatal("cooldown elapsed but probe rejected")
	}
	if b.snapshot() != breakerHalfOpen {
		t.Fatalf("state after probe admission = %s, want half-open", b.snapshot())
	}
	if b.admit() {
		t.Fatal("half-open breaker admitted a second task while the probe is in flight")
	}

	// Probe fails: re-open for another cooldown.
	b.failure()
	if b.snapshot() != breakerOpen || b.admit() {
		t.Fatal("failed probe should re-open the breaker")
	}

	// Next probe succeeds: closed again.
	clk.advance(2 * time.Minute)
	if !b.admit() {
		t.Fatal("second probe rejected")
	}
	b.success()
	if b.snapshot() != breakerClosed || !b.admit() {
		t.Fatal("successful probe should close the breaker")
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := newBreaker(0, 0, newFakeClock())
	if b.threshold != DefaultBreakerThreshold || b.cooldown != DefaultBreakerCooldown {
		t.Errorf("defaults = (%d, %v), want (%d, %v)",
			b.threshold, b.cooldown, DefaultBreakerThreshold, DefaultBreakerCooldown)
	}
}

func TestBreakerStateString(t *testing.T) {
	for state, want := range map[breakerState]string{
		breakerClosed: "closed", breakerOpen: "open", breakerHalfOpen: "half-open",
	} {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", state, got, want)
		}
	}
}
