package runner

import (
	"testing"
	"time"
)

func TestBackoffGrowthAndCap(t *testing.T) {
	base, max := 100*time.Millisecond, 2*time.Second
	prev := time.Duration(0)
	for retry := 1; retry <= 10; retry++ {
		d := BackoffDelay(base, max, "task", retry)
		raw := base << (retry - 1)
		if raw > max {
			raw = max
		}
		// Delay is raw plus up to 50% jitter, never less than raw.
		if d < raw || d > raw+raw/2 {
			t.Errorf("retry %d: delay %v outside [%v, %v]", retry, d, raw, raw+raw/2)
		}
		if retry <= 3 && d <= prev {
			t.Errorf("retry %d: delay %v not growing past %v", retry, d, prev)
		}
		prev = d
	}
}

func TestBackoffDeterministic(t *testing.T) {
	// Same (id, retry) must always produce the same delay — batch re-runs
	// back off identically (repo-wide determinism invariant) — while
	// different IDs decorrelate.
	a1 := BackoffDelay(0, 0, "sweep/a", 2)
	a2 := BackoffDelay(0, 0, "sweep/a", 2)
	b := BackoffDelay(0, 0, "sweep/b", 2)
	if a1 != a2 {
		t.Errorf("same inputs gave %v then %v", a1, a2)
	}
	if a1 == b {
		t.Errorf("distinct IDs gave identical jitter %v (hash collision?)", a1)
	}
}

func TestJitterFractionRange(t *testing.T) {
	for retry := 1; retry <= 100; retry++ {
		f := jitterFraction("some/task", retry)
		if f < 0 || f >= 1 {
			t.Fatalf("jitterFraction(retry=%d) = %v, want [0,1)", retry, f)
		}
	}
}

func TestBackoffEdges(t *testing.T) {
	big := time.Duration(1<<62 - 1)
	cases := []struct {
		name      string
		base, max time.Duration
		retry     int
		min, max2 time.Duration // inclusive envelope for the result
	}{
		// Attempt zero (and a negative caller bug) must never produce a
		// zero or negative delay: a zero delay turns every retry loop that
		// sleeps on it into a hot loop.
		{"attempt zero", 100 * time.Millisecond, time.Second, 0, 100 * time.Millisecond, 150 * time.Millisecond},
		{"negative retry", 100 * time.Millisecond, time.Second, -3, 100 * time.Millisecond, 150 * time.Millisecond},
		// Growth must saturate at max instead of overflowing: with max near
		// the top of the int64 range, repeated doubling used to wrap
		// negative.
		{"huge retry saturates", time.Second, big, 400, big, big},
		{"cap applies", time.Second, 4 * time.Second, 10, 4 * time.Second, 6 * time.Second},
		{"base above max", 10 * time.Second, time.Second, 1, time.Second, 1500 * time.Millisecond},
	}
	for _, c := range cases {
		d := BackoffDelay(c.base, c.max, "edge/"+c.name, c.retry)
		if d <= 0 {
			t.Errorf("%s: non-positive delay %v", c.name, d)
		}
		// Jitter adds up to 50% of the capped value but must stay within
		// the envelope (saturated cases allow equality at max).
		if d < c.min || (c.max2 != big && d > c.max2) {
			t.Errorf("%s: delay %v outside [%v, %v]", c.name, d, c.min, c.max2)
		}
	}
}

func TestBackoffZeroValuesUseDefaults(t *testing.T) {
	d := BackoffDelay(0, 0, "x", 1)
	if d < DefaultBackoffBase || d > DefaultBackoffBase+DefaultBackoffBase/2 {
		t.Errorf("zero-value delay %v outside default base envelope", d)
	}
}
