package runner

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"fcdpm/internal/obs"
)

// TestPoolMetricsCounters checks the obs wiring end to end: admission,
// resolution by status, retries, and queue depth returning to zero.
func TestPoolMetricsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	m := obs.NewPoolMetrics(reg)
	opts := testOpts()
	opts.Metrics = m
	opts.Retries = 1

	flaky := 0
	tasks := []Task[int]{
		{ID: "ok", Run: func(context.Context) (int, error) { return 1, nil }},
		{ID: "flaky", Run: func(context.Context) (int, error) {
			flaky++
			if flaky == 1 {
				return 0, MarkRetryable(errors.New("transient"))
			}
			return 2, nil
		}},
		{ID: "dead", Run: func(context.Context) (int, error) {
			return 0, MarkRetryable(errors.New("always"))
		}},
	}
	opts.Workers = 1
	rep, err := Run(context.Background(), opts, tasks)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Done != 2 || rep.Failed != 1 {
		t.Fatalf("report = %+v, want 2 done 1 failed", rep)
	}
	if got := m.Submitted.Value(); got != 3 {
		t.Errorf("submitted = %v, want 3", got)
	}
	if got := m.Done.Value(); got != 2 {
		t.Errorf("done = %v, want 2", got)
	}
	if got := m.Failed.Value(); got != 1 {
		t.Errorf("failed = %v, want 1", got)
	}
	// flaky retried once, dead retried once: 2 re-attempts total.
	if got := m.Retries.Value(); got != 2 {
		t.Errorf("retries = %v, want 2", got)
	}
	if got := m.QueueDepth.Value(); got != 0 {
		t.Errorf("queue depth after drain = %v, want 0", got)
	}
}

// TestPoolMetricsBreakerTransitions checks that breaker trips and
// recoveries reach the counters.
func TestPoolMetricsBreakerTransitions(t *testing.T) {
	reg := obs.NewRegistry()
	m := obs.NewPoolMetrics(reg)
	clk := newFakeClock()
	p, err := NewPool[int](context.Background(), Options{
		Workers: 1, BreakerThreshold: 2, BreakerCooldown: time.Minute,
		Clock: clk, Metrics: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	fail := func(context.Context) (int, error) { return 0, errors.New("down") }
	for i := 0; i < 3; i++ {
		if err := p.Submit(Task[int]{ID: fmt.Sprintf("t%d", i), Scenario: "sc", Run: fail}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.Drain(); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if got := m.BreakerOpens.Value(); got != 1 {
		t.Errorf("breaker opens = %v, want 1", got)
	}
	if got := m.BreakerSkipped.Value(); got != 1 {
		t.Errorf("breaker skipped = %v, want 1", got)
	}
	if got := m.BreakerCloses.Value(); got != 0 {
		t.Errorf("breaker closes = %v, want 0 before recovery", got)
	}
	// Current-state gauges and the snapshot agree: one breaker, open.
	if got := m.BreakersOpen.Value(); got != 1 {
		t.Errorf("breakers open gauge = %v, want 1", got)
	}
	if got := m.BreakersHalfOpen.Value(); got != 0 {
		t.Errorf("breakers half-open gauge = %v, want 0", got)
	}
	if states := p.BreakerStates(); states["sc"] != "open" {
		t.Errorf("BreakerStates = %v, want sc open", states)
	}
}
