package runner

import (
	"sync"
	"time"
)

// Breaker defaults.
const (
	// DefaultBreakerThreshold is the consecutive-failure count that opens
	// a scenario's breaker.
	DefaultBreakerThreshold = 3
	// DefaultBreakerCooldown is how long an open breaker rejects tasks
	// before letting one probe through (half-open).
	DefaultBreakerCooldown = 30 * time.Second
)

// breakerState is the classic three-state circuit-breaker machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// String names the state for reports.
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker tracks one scenario's health. A scenario that fails Threshold
// times in a row stops consuming workers: its breaker opens and further
// tasks are rejected immediately (ErrBreakerOpen) until the cooldown
// elapses, after which exactly one probe task is admitted (half-open). A
// probe success closes the breaker; a probe failure re-opens it for
// another cooldown.
type breaker struct {
	mu        sync.Mutex
	state     breakerState
	failures  int // consecutive failures while closed
	openedAt  time.Time
	threshold int
	cooldown  time.Duration
	clock     Clock
	// onChange, when set, observes every state transition. It is called
	// outside the breaker lock and must be concurrency-safe.
	onChange func(from, to breakerState)
}

func newBreaker(threshold int, cooldown time.Duration, clock Clock) *breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown, clock: clock}
}

// admit reports whether a task may run now. When the cooldown of an open
// breaker has elapsed, the calling task is admitted as the half-open
// probe (at most one until it resolves).
func (b *breaker) admit() bool {
	b.mu.Lock()
	from, admitted := b.state, false
	switch b.state {
	case breakerClosed:
		admitted = true
	case breakerOpen:
		if b.clock.Now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			admitted = true
		}
	default: // half-open: a probe is already in flight
	}
	to := b.state
	b.mu.Unlock()
	b.notify(from, to)
	return admitted
}

// success records a completed task and closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	from := b.state
	b.state = breakerClosed
	b.failures = 0
	b.mu.Unlock()
	b.notify(from, breakerClosed)
}

// failure records a failed task, opening the breaker at the threshold or
// re-opening it after a failed half-open probe.
func (b *breaker) failure() {
	b.mu.Lock()
	from := b.state
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = b.clock.Now()
	default:
		b.failures++
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = b.clock.Now()
		}
	}
	to := b.state
	b.mu.Unlock()
	b.notify(from, to)
}

// notify fires the transition hook when the state actually changed.
func (b *breaker) notify(from, to breakerState) {
	if b.onChange != nil && from != to {
		b.onChange(from, to)
	}
}

// snapshot returns the state for reporting.
func (b *breaker) snapshot() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
