package runner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// eventSink collects OnEvent notifications concurrency-safely.
type eventSink struct {
	mu     sync.Mutex
	events []TaskEvent
}

func (s *eventSink) record(e TaskEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = append(s.events, e)
}

func (s *eventSink) byID(id string) []TaskEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []TaskEvent
	for _, e := range s.events {
		if e.ID == id {
			out = append(out, e)
		}
	}
	return out
}

func TestOnEventLifecycle(t *testing.T) {
	sink := &eventSink{}
	tasks := []Task[int]{
		{ID: "ok", Run: func(context.Context) (int, error) { return 7, nil }},
		{ID: "flaky", Run: func() func(context.Context) (int, error) {
			calls := 0
			return func(context.Context) (int, error) {
				calls++
				if calls == 1 {
					return 0, MarkRetryable(errors.New("transient"))
				}
				return 9, nil
			}
		}()},
		{ID: "broken", Run: func(context.Context) (int, error) {
			return 0, errors.New("deterministic")
		}},
	}
	rep, err := Run(context.Background(), Options{
		Workers: 2, Retries: 2, BackoffBase: 1, BackoffMax: 1,
		OnEvent: sink.record,
	}, tasks)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Done != 2 || rep.Failed != 1 {
		t.Fatalf("report: %+v", rep)
	}

	okEvents := sink.byID("ok")
	if len(okEvents) != 2 ||
		okEvents[0].Phase != PhaseStart || okEvents[0].Attempt != 1 ||
		okEvents[1].Phase != PhaseResolve || okEvents[1].Status != StatusDone {
		t.Fatalf("ok lifecycle: %+v", okEvents)
	}
	flaky := sink.byID("flaky")
	if len(flaky) != 3 || flaky[1].Attempt != 2 ||
		flaky[2].Status != StatusDone || flaky[2].Attempt != 2 {
		t.Fatalf("flaky lifecycle: %+v", flaky)
	}
	broken := sink.byID("broken")
	last := broken[len(broken)-1]
	if last.Phase != PhaseResolve || last.Status != StatusFailed || last.Err == nil {
		t.Fatalf("broken lifecycle: %+v", broken)
	}
}

func TestStreamOutcomes(t *testing.T) {
	sink := &eventSink{}
	var tasks []Task[int]
	for i := 0; i < 20; i++ {
		i := i
		tasks = append(tasks, Task[int]{
			ID:  fmt.Sprintf("t%d", i),
			Run: func(context.Context) (int, error) { return i, nil },
		})
	}
	rep, err := Run(context.Background(), Options{
		Workers: 4, StreamOutcomes: true, OnEvent: sink.record,
	}, tasks)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Outcomes) != 0 {
		t.Fatalf("streaming pool retained %d outcomes", len(rep.Outcomes))
	}
	if rep.Done != 20 {
		t.Fatalf("Done = %d, want 20", rep.Done)
	}
	sink.mu.Lock()
	resolves := 0
	for _, e := range sink.events {
		if e.Phase == PhaseResolve {
			resolves++
		}
	}
	sink.mu.Unlock()
	if resolves != 20 {
		t.Fatalf("resolve events = %d, want 20", resolves)
	}
}

// TestConcurrentSubmitDrain hammers Submit from many goroutines while
// Drain closes the pool: every submission must either run or get
// ErrClosed — never a send-on-closed-channel panic — and every admitted
// task must be accounted for.
func TestConcurrentSubmitDrain(t *testing.T) {
	for round := 0; round < 20; round++ {
		p, err := NewPool[int](context.Background(), Options{
			Workers: 2, Queue: 2, ShedOverflow: true, StreamOutcomes: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		admitted, refused := 0, 0
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					err := p.Submit(Task[int]{
						ID:  fmt.Sprintf("r%d-g%d-%d", round, g, i),
						Run: func(context.Context) (int, error) { return 0, nil },
					})
					mu.Lock()
					switch {
					case err == nil:
						admitted++
					case errors.Is(err, ErrClosed), errors.Is(err, ErrShed):
						refused++
					default:
						t.Errorf("unexpected submit error: %v", err)
					}
					mu.Unlock()
				}
			}(g)
		}
		rep, _ := p.Drain()
		wg.Wait()
		mu.Lock()
		gotAdmitted, gotRefused := admitted, refused
		mu.Unlock()
		// Shed submissions resolve (and count) too; refused-by-close do not.
		if rep.Done > gotAdmitted {
			t.Fatalf("round %d: %d done > %d admitted", round, rep.Done, gotAdmitted)
		}
		if gotAdmitted+gotRefused != 8*25 {
			t.Fatalf("round %d: %d+%d submissions accounted, want %d",
				round, gotAdmitted, gotRefused, 8*25)
		}
	}
}
