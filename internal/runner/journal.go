package runner

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"fcdpm/internal/vfs"
)

// journalRecord is one completed run, keyed by its deterministic ID. The
// journal holds successes only: failures are worth re-attempting on the
// next invocation, so checkpointing them would turn a transient fault
// into a permanent skip.
type journalRecord struct {
	ID       string          `json:"id"`
	Scenario string          `json:"scenario,omitempty"`
	Attempts int             `json:"attempts"`
	Result   json.RawMessage `json:"result"`
}

// journal is a crash-safe JSONL checkpoint of completed runs. Every
// append rewrites the file through a write-fsync-rename cycle, so the
// journal on disk is always a complete, parseable prefix of the batch —
// a crash or kill between records loses at most the record in flight,
// never corrupts what was already checkpointed. Sweeps are tens to
// hundreds of records, so the O(n²) rewrite cost is noise next to a
// single simulation run.
type journal struct {
	path    string
	records []journalRecord
	byID    map[string]int // index into records
}

// openJournal loads (or initializes) the journal at path. A missing file
// is an empty journal; a torn trailing line — possible only if a crash
// beat the rename — is tolerated and dropped.
func openJournal(path string) (*journal, error) {
	j := &journal{path: path, byID: make(map[string]int)}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return j, nil
		}
		return nil, fmt.Errorf("runner: open journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil || rec.ID == "" {
			// Torn or foreign line: ignore it rather than abandoning the
			// valid prefix. The affected run simply re-executes.
			continue
		}
		if _, dup := j.byID[rec.ID]; dup {
			continue
		}
		j.byID[rec.ID] = len(j.records)
		j.records = append(j.records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("runner: read journal: %w", err)
	}
	return j, nil
}

// lookup returns the checkpointed result for a run ID.
func (j *journal) lookup(id string) (journalRecord, bool) {
	if i, ok := j.byID[id]; ok {
		return j.records[i], true
	}
	return journalRecord{}, false
}

// len reports the number of checkpointed runs.
func (j *journal) len() int { return len(j.records) }

// append checkpoints one completed run: marshal, then publish the whole
// journal through vfs's write-fsync-rename cycle. After append returns
// nil, the record survives a crash at any instant. A write failure
// surfaces as a typed *vfs.WriteError (counted on
// fcdpm_io_write_failures_total) and leaves the record in memory, so
// the next successful append re-publishes it — a transient disk fault
// costs durability only until the next checkpoint lands.
func (j *journal) append(rec journalRecord) error {
	if _, dup := j.byID[rec.ID]; dup {
		return nil
	}
	j.byID[rec.ID] = len(j.records)
	j.records = append(j.records, rec)

	var buf bytes.Buffer
	for _, r := range j.records {
		b, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("runner: journal marshal %s: %w", r.ID, err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	if err := vfs.Default.WriteFileAtomic(j.path, buf.Bytes()); err != nil {
		return fmt.Errorf("runner: journal write: %w", err)
	}
	return nil
}

// RunID builds a deterministic run identifier from key=value-style parts:
// the same logical run always maps to the same journal key across
// invocations, which is what makes resume-by-skip correct. Parts are
// joined with '/'; empty parts are dropped.
func RunID(parts ...string) string {
	kept := parts[:0:0]
	for _, p := range parts {
		if p != "" {
			kept = append(kept, p)
		}
	}
	return strings.Join(kept, "/")
}
