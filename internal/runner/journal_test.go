package runner

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := openJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	recs := []journalRecord{
		{ID: "s/a", Scenario: "s", Attempts: 1, Result: json.RawMessage(`{"fuel":1.5}`)},
		{ID: "s/b", Scenario: "s", Attempts: 2, Result: json.RawMessage(`{"fuel":2.5}`)},
	}
	for _, r := range recs {
		if err := j.append(r); err != nil {
			t.Fatalf("append(%s): %v", r.ID, err)
		}
	}
	// Reload from disk: both records and their payloads survive.
	j2, err := openJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if j2.len() != 2 {
		t.Fatalf("reloaded len = %d, want 2", j2.len())
	}
	got, ok := j2.lookup("s/b")
	if !ok || got.Attempts != 2 || string(got.Result) != `{"fuel":2.5}` {
		t.Fatalf("lookup(s/b) = %+v ok=%v", got, ok)
	}
}

func TestJournalAppendIsIdempotent(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := openJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	rec := journalRecord{ID: "dup", Result: json.RawMessage(`1`)}
	if err := j.append(rec); err != nil {
		t.Fatal(err)
	}
	if err := j.append(rec); err != nil {
		t.Fatal(err)
	}
	if j.len() != 1 {
		t.Fatalf("len = %d after duplicate append, want 1", j.len())
	}
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\"dup\""); n != 1 {
		t.Fatalf("journal file holds %d copies, want 1", n)
	}
}

func TestJournalMissingFileIsEmpty(t *testing.T) {
	j, err := openJournal(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil {
		t.Fatalf("missing journal should open empty, got %v", err)
	}
	if j.len() != 0 {
		t.Fatalf("len = %d, want 0", j.len())
	}
}

func TestJournalSkipsForeignAndBlankLines(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "j.jsonl")
	content := strings.Join([]string{
		`{"id":"ok","attempts":1,"result":3}`,
		``,
		`not json at all`,
		`{"no_id_field":true}`,
		`{"id":"ok","attempts":9,"result":99}`, // duplicate: first wins
		`{"id":"ok2","attempts":1,"result":4}`,
	}, "\n")
	if err := os.WriteFile(jpath, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := openJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if j.len() != 2 {
		t.Fatalf("len = %d, want 2", j.len())
	}
	rec, _ := j.lookup("ok")
	if rec.Attempts != 1 {
		t.Errorf("duplicate ID resolved to attempts=%d, want first record kept", rec.Attempts)
	}
}

func TestJournalLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	j, err := openJournal(filepath.Join(dir, "j.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := j.append(journalRecord{ID: RunID("t", string(rune('a'+i))), Result: json.RawMessage(`0`)}); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "j.jsonl" {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("directory holds %v, want only j.jsonl (temp files cleaned up)", names)
	}
}
