package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a deterministic time source: Sleep returns immediately
// and records the requested delays; Now advances only via advance().
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	c.mu.Lock()
	c.sleeps = append(c.sleeps, d)
	c.now = c.now.Add(d)
	c.mu.Unlock()
	return ctx.Err()
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) sleepCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sleeps)
}

// testOpts keeps batches single-worker and fast so outcome ordering and
// breaker behavior are deterministic in tests.
func testOpts() Options {
	return Options{Workers: 1, Clock: newFakeClock()}
}

func okTask(id string, v int) Task[int] {
	return Task[int]{ID: id, Run: func(context.Context) (int, error) { return v, nil }}
}

func TestRunAllSucceed(t *testing.T) {
	tasks := []Task[int]{okTask("a", 1), okTask("b", 2), okTask("c", 3)}
	rep, err := Run(context.Background(), Options{Workers: 2}, tasks)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Done != 3 || rep.Failed != 0 {
		t.Fatalf("report = %+v, want 3 done", rep)
	}
	// Outcomes preserve submission order regardless of worker scheduling.
	for i, want := range []string{"a", "b", "c"} {
		if rep.Outcomes[i].ID != want {
			t.Errorf("outcome[%d].ID = %s, want %s", i, rep.Outcomes[i].ID, want)
		}
		if rep.Outcomes[i].Result != i+1 {
			t.Errorf("outcome[%d].Result = %d, want %d", i, rep.Outcomes[i].Result, i+1)
		}
		if rep.Outcomes[i].Status != StatusDone {
			t.Errorf("outcome[%d].Status = %s", i, rep.Outcomes[i].Status)
		}
	}
}

func TestPanicIsolation(t *testing.T) {
	// One panicking task must not take down its siblings: the other tasks
	// complete and the panic surfaces as a typed RunError with a stack.
	tasks := []Task[int]{
		okTask("good-1", 1),
		{ID: "boom", Scenario: "sc", Run: func(context.Context) (int, error) { panic("kaboom") }},
		okTask("good-2", 2),
	}
	rep, err := Run(context.Background(), Options{Workers: 3}, tasks)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Done != 2 || rep.Failed != 1 {
		t.Fatalf("report = %+v, want 2 done 1 failed", rep)
	}
	var re *RunError
	if !errors.As(rep.Outcomes[1].Err, &re) {
		t.Fatalf("outcome err = %v, want *RunError", rep.Outcomes[1].Err)
	}
	if re.PanicValue != "kaboom" || re.Stack == "" {
		t.Errorf("RunError = %+v, want panic value and stack", re)
	}
	if !strings.Contains(fmt.Sprintf("%+v", re), "runner_test.go") {
		t.Errorf("%%+v should include the panic stack, got %v", re)
	}
	if strings.Contains(fmt.Sprintf("%v", re), "goroutine") {
		t.Errorf("%%v should omit the stack, got %v", re)
	}
}

func TestRetryWithBackoff(t *testing.T) {
	clk := newFakeClock()
	var calls atomic.Int32
	task := Task[int]{ID: "flaky", Run: func(context.Context) (int, error) {
		if calls.Add(1) < 3 {
			return 0, MarkRetryable(errors.New("transient"))
		}
		return 42, nil
	}}
	rep, err := Run(context.Background(), Options{Workers: 1, Retries: 3, Clock: clk}, []Task[int]{task})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Outcomes[0].Status != StatusDone || rep.Outcomes[0].Result != 42 {
		t.Fatalf("outcome = %+v, want done/42", rep.Outcomes[0])
	}
	if got := rep.Outcomes[0].Attempts; got != 3 {
		t.Errorf("attempts = %d, want 3", got)
	}
	if clk.sleepCount() != 2 {
		t.Fatalf("sleeps = %d, want 2 (one per retry)", clk.sleepCount())
	}
	// Exponential: second delay is roughly double the first (both carry
	// deterministic jitter in [0, 50%)).
	if clk.sleeps[1] <= clk.sleeps[0] {
		t.Errorf("backoff not growing: %v then %v", clk.sleeps[0], clk.sleeps[1])
	}
}

func TestNonRetryableFailsFast(t *testing.T) {
	clk := newFakeClock()
	var calls atomic.Int32
	task := Task[int]{ID: "fatal", Run: func(context.Context) (int, error) {
		calls.Add(1)
		return 0, errors.New("deterministic model error")
	}}
	rep, err := Run(context.Background(), Options{Workers: 1, Retries: 5, Clock: clk}, []Task[int]{task})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Failed != 1 || calls.Load() != 1 {
		t.Fatalf("calls = %d failed = %d, want 1/1 (no retry of non-retryable)", calls.Load(), rep.Failed)
	}
	if clk.sleepCount() != 0 {
		t.Errorf("slept %d times for a non-retryable failure", clk.sleepCount())
	}
}

func TestAttemptTimeoutRetries(t *testing.T) {
	// First attempt hangs until its per-attempt deadline; the retry
	// returns promptly. Deadline expiry must be classified retryable.
	var calls atomic.Int32
	task := Task[int]{ID: "hang-once", Run: func(ctx context.Context) (int, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done()
			return 0, ctx.Err()
		}
		return 7, nil
	}}
	rep, err := Run(context.Background(),
		Options{Workers: 1, Retries: 1, Timeout: 20 * time.Millisecond, Clock: newFakeClock()},
		[]Task[int]{task})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Outcomes[0].Status != StatusDone || rep.Outcomes[0].Result != 7 {
		t.Fatalf("outcome = %+v, want done/7 after deadline retry", rep.Outcomes[0])
	}
	if rep.Outcomes[0].Attempts != 2 {
		t.Errorf("attempts = %d, want 2", rep.Outcomes[0].Attempts)
	}
}

func TestBreakerTripsPerScenario(t *testing.T) {
	// Scenario "bad" fails repeatedly: after the threshold its remaining
	// tasks are skipped with ErrBreakerOpen. Scenario "good" is untouched.
	var badCalls, goodCalls atomic.Int32
	var tasks []Task[int]
	for i := 0; i < 6; i++ {
		i := i
		tasks = append(tasks,
			Task[int]{ID: fmt.Sprintf("bad-%d", i), Scenario: "bad",
				Run: func(context.Context) (int, error) { badCalls.Add(1); return 0, errors.New("broken") }},
			Task[int]{ID: fmt.Sprintf("good-%d", i), Scenario: "good",
				Run: func(context.Context) (int, error) { goodCalls.Add(1); return i, nil }})
	}
	opts := testOpts()
	opts.BreakerThreshold = 3
	rep, err := Run(context.Background(), opts, tasks)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := badCalls.Load(); got != 3 {
		t.Errorf("bad scenario ran %d times, want 3 (then breaker open)", got)
	}
	if got := goodCalls.Load(); got != 6 {
		t.Errorf("good scenario ran %d times, want all 6", got)
	}
	if rep.BreakerSkipped != 3 {
		t.Errorf("BreakerSkipped = %d, want 3", rep.BreakerSkipped)
	}
	for _, o := range rep.Outcomes {
		if o.Status == StatusBreakerOpen && !errors.Is(o.Err, ErrBreakerOpen) {
			t.Errorf("breaker outcome err = %v, want ErrBreakerOpen", o.Err)
		}
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	// After the cooldown one probe is admitted; its success closes the
	// breaker and the scenario flows again.
	clk := newFakeClock()
	healthy := atomic.Bool{}
	run := func(context.Context) (int, error) {
		if healthy.Load() {
			return 1, nil
		}
		return 0, errors.New("down")
	}
	ctx := context.Background()
	p, err := NewPool[int](ctx, Options{Workers: 1, BreakerThreshold: 2, BreakerCooldown: time.Minute, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := p.Submit(Task[int]{ID: fmt.Sprintf("t%d", i), Scenario: "sc", Run: run}); err != nil {
			t.Fatal(err)
		}
	}
	rep, _ := p.Drain()
	if rep.Failed != 2 || rep.BreakerSkipped != 1 {
		t.Fatalf("phase 1 report = %+v, want 2 failed 1 skipped", rep)
	}

	healthy.Store(true)
	clk.advance(2 * time.Minute)
	p2, err := NewPool[int](ctx, Options{Workers: 1, BreakerThreshold: 2, BreakerCooldown: time.Minute, Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh pool: breakers are per-batch state, so the scenario runs again.
	if err := p2.Submit(Task[int]{ID: "probe", Scenario: "sc", Run: run}); err != nil {
		t.Fatal(err)
	}
	rep2, err := p2.Drain()
	if err != nil || rep2.Done != 1 {
		t.Fatalf("recovery report = %+v err = %v, want 1 done", rep2, err)
	}
}

func TestLoadShedding(t *testing.T) {
	// With ShedOverflow and a saturated queue, Submit rejects instead of
	// blocking, and the shed task appears in the report.
	release := make(chan struct{})
	blocker := func(context.Context) (int, error) { <-release; return 0, nil }
	p, err := NewPool[int](context.Background(),
		Options{Workers: 1, Queue: 1, ShedOverflow: true, Clock: newFakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	// First occupies the worker, second the queue slot; submit until one sheds
	// (the worker may not have picked up the first task yet).
	shed := 0
	for i := 0; i < 3; i++ {
		if err := p.Submit(Task[int]{ID: fmt.Sprintf("b%d", i), Run: blocker}); errors.Is(err, ErrShed) {
			shed++
		} else if err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if shed == 0 {
		t.Fatal("no Submit shed with a full queue")
	}
	close(release)
	rep, err := p.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if rep.Shed != shed {
		t.Errorf("report.Shed = %d, want %d", rep.Shed, shed)
	}
	if rep.Done != 3-shed {
		t.Errorf("report.Done = %d, want %d", rep.Done, 3-shed)
	}
}

func TestInterruptMarksRemaining(t *testing.T) {
	// Cancel mid-batch: in-flight and queued tasks resolve as interrupted,
	// Drain returns ErrInterrupted, and completed work stays completed.
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	tasks := []Task[int]{
		okTask("done-before", 1),
		{ID: "canceled-mid-run", Run: func(c context.Context) (int, error) {
			once.Do(func() { close(started) })
			<-c.Done()
			return 0, c.Err()
		}},
		okTask("never-started", 3),
	}
	p, err := NewPool[int](ctx, Options{Workers: 1, Queue: 1, Clock: newFakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		<-started
		cancel()
	}()
	for _, task := range tasks {
		if err := p.Submit(task); err != nil && !errors.Is(err, context.Canceled) {
			t.Errorf("Submit(%s): %v", task.ID, err)
		}
	}
	rep, err := p.Drain()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Drain err = %v, want ErrInterrupted", err)
	}
	if rep.Done != 1 || rep.Interrupted != 2 {
		t.Fatalf("report = %+v, want 1 done 2 interrupted", rep)
	}
	if !rep.Resumable() {
		t.Error("interrupted report should be resumable")
	}
}

func TestJournalResume(t *testing.T) {
	// Kill-and-resume: run a batch that is interrupted partway, then
	// re-invoke with the same journal — completed tasks are skipped
	// (resumed from the checkpoint, run functions not called) and the
	// batch finishes with results identical to an uninterrupted run.
	dir := t.TempDir()
	jpath := filepath.Join(dir, "sweep.jsonl")
	ids := []string{"s/a", "s/b", "s/c", "s/d"}

	var ran1 []string
	var mu sync.Mutex
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p, err := NewPool[string](ctx, Options{Workers: 1, Journal: jpath, Clock: newFakeClock()})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		id := id
		kill := i == 2
		err := p.Submit(Task[string]{ID: id, Run: func(context.Context) (string, error) {
			mu.Lock()
			ran1 = append(ran1, id)
			mu.Unlock()
			if kill {
				cancel() // simulate SIGTERM landing mid-batch
				return "", ctx.Err()
			}
			return "result-" + id, nil
		}})
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("Submit(%s): %v", id, err)
		}
	}
	rep1, err := p.Drain()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Drain err = %v, want ErrInterrupted", err)
	}
	if rep1.Done != 2 {
		t.Fatalf("first pass Done = %d, want 2", rep1.Done)
	}

	// Second invocation, same journal: a and b must not re-run.
	var ran2 []string
	var tasks []Task[string]
	for _, id := range ids {
		id := id
		tasks = append(tasks, Task[string]{ID: id, Run: func(context.Context) (string, error) {
			mu.Lock()
			ran2 = append(ran2, id)
			mu.Unlock()
			return "result-" + id, nil
		}})
	}
	rep2, err := Run(context.Background(), Options{Workers: 1, Journal: jpath, Clock: newFakeClock()}, tasks)
	if err != nil {
		t.Fatalf("resume Run: %v", err)
	}
	if rep2.Resumed != 2 || rep2.Done != 2 {
		t.Fatalf("resume report = %+v, want 2 resumed 2 done", rep2)
	}
	if len(ran2) != 2 {
		t.Fatalf("resume ran %v, want only the 2 uncompleted tasks", ran2)
	}
	for i, id := range ids {
		if got := rep2.Outcomes[i].Result; got != "result-"+id {
			t.Errorf("outcome[%d] = %q, want %q (journal round-trip)", i, got, "result-"+id)
		}
	}

	// Third invocation: everything resumes, nothing runs.
	rep3, err := Run(context.Background(), Options{Workers: 1, Journal: jpath, Clock: newFakeClock()}, tasks)
	if err != nil || rep3.Resumed != 4 || rep3.Done != 0 {
		t.Fatalf("third report = %+v err = %v, want 4 resumed", rep3, err)
	}
}

func TestJournalFailuresNotCheckpointed(t *testing.T) {
	// Failures must re-run on the next invocation: only successes are
	// journaled, so a transient fault never becomes a permanent skip.
	dir := t.TempDir()
	jpath := filepath.Join(dir, "j.jsonl")
	fail := true
	task := []Task[int]{{ID: "x", Run: func(context.Context) (int, error) {
		if fail {
			return 0, errors.New("transient outage")
		}
		return 5, nil
	}}}
	opts := Options{Workers: 1, Journal: jpath, Clock: newFakeClock()}
	rep, err := Run(context.Background(), opts, task)
	if err != nil || rep.Failed != 1 {
		t.Fatalf("report = %+v err = %v, want 1 failed", rep, err)
	}
	fail = false
	rep, err = Run(context.Background(), opts, task)
	if err != nil || rep.Done != 1 || rep.Resumed != 0 {
		t.Fatalf("report = %+v err = %v, want the task to re-run and succeed", rep, err)
	}
}

func TestSubmitAfterDrain(t *testing.T) {
	p, err := NewPool[int](context.Background(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := p.Submit(okTask("late", 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Drain = %v, want ErrClosed", err)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	// The same batch, run twice with concurrency, yields byte-identical
	// reports (order, results, statuses) — workers affect wall-clock, not
	// output.
	build := func() []Task[int] {
		var tasks []Task[int]
		for i := 0; i < 20; i++ {
			i := i
			tasks = append(tasks, Task[int]{
				ID:       fmt.Sprintf("det/%02d", i),
				Scenario: fmt.Sprintf("sc%d", i%3),
				Run:      func(context.Context) (int, error) { return i * i, nil },
			})
		}
		return tasks
	}
	encode := func(rep *Report[int]) string {
		b, err := json.Marshal(rep.Outcomes)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	rep1, err := Run(context.Background(), Options{Workers: 8}, build())
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(context.Background(), Options{Workers: 2}, build())
	if err != nil {
		t.Fatal(err)
	}
	if encode(rep1) != encode(rep2) {
		t.Error("reports differ across worker counts")
	}
}

func TestRunIDAndJournalKeys(t *testing.T) {
	if got := RunID("faults", "seed=42", "class=dcdc", "policy=fcdpm"); got != "faults/seed=42/class=dcdc/policy=fcdpm" {
		t.Errorf("RunID = %q", got)
	}
	if got := RunID("a", "", "b"); got != "a/b" {
		t.Errorf("RunID drops empties: got %q", got)
	}
}

func TestJournalTornLineTolerated(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "j.jsonl")
	good, _ := json.Marshal(journalRecord{ID: "keep", Result: json.RawMessage(`9`)})
	if err := os.WriteFile(jpath, append(append([]byte{}, good...), []byte("\n{\"id\":\"torn")...), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := openJournal(jpath)
	if err != nil {
		t.Fatalf("openJournal: %v", err)
	}
	if j.len() != 1 {
		t.Fatalf("journal len = %d, want 1 (torn line dropped)", j.len())
	}
	if _, ok := j.lookup("keep"); !ok {
		t.Error("valid prefix record lost")
	}
}
