package runner

import (
	"hash/fnv"
	"time"
)

// Backoff defaults.
const (
	// DefaultBackoffBase is the delay before the first retry.
	DefaultBackoffBase = 100 * time.Millisecond
	// DefaultBackoffMax caps the exponential growth.
	DefaultBackoffMax = 5 * time.Second
)

// BackoffDelay returns the sleep before retry number `retry` (1-based) of
// the identified task: base·2^(retry-1), capped at max, plus up to 50 %
// deterministic jitter derived from the task ID and retry index. Hashed
// jitter decorrelates sibling retries without any global randomness, so
// a re-run of the same batch backs off identically — determinism is a
// repo-wide invariant. Exported so remote workers polling a dispatcher
// pace themselves with the same schedule the pool uses for attempts.
// A retry index below 1 (attempt zero, or a caller bug) is treated as 1
// so the delay is never zero or negative, and growth saturates at max
// before the doubling can overflow — with a max near the top of the
// int64 range the old loop could wrap negative and return a negative
// delay, which time.NewTimer treats as "fire immediately", collapsing
// the backoff into a hot loop.
func BackoffDelay(base, max time.Duration, id string, retry int) time.Duration {
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	if retry < 1 {
		retry = 1
	}
	d := base
	for i := 1; i < retry; i++ {
		if d > max/2 {
			d = max // doubling again would pass (or overflow past) max
			break
		}
		d *= 2
	}
	if d > max {
		d = max
	}
	j := time.Duration(float64(d) * 0.5 * jitterFraction(id, retry))
	if sum := d + j; sum >= d {
		return sum
	}
	return d // jitter pushed past the int64 edge; saturate, don't wrap
}

// jitterFraction hashes (id, retry) into [0, 1).
func jitterFraction(id string, retry int) float64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{byte(retry), byte(retry >> 8), byte(retry >> 16), byte(retry >> 24)})
	return float64(h.Sum64()>>11) / float64(1<<53)
}
