package stochdpm

import (
	"math"
	"testing"

	"fcdpm/internal/device"
)

func dev() *device.Model {
	d := device.Synthetic() // Isdb 0.4033, Islp 0.2, τ=1 s at 1.2 A, Tbe≈10
	d.TbeOverride = 0
	return d
}

func TestExpectedChargeKnownCases(t *testing.T) {
	d := dev()
	// One idle of 20 s, timeout 5: 0.4033·5 + sleep(15).
	want := d.Isdb*5 + d.SleepEnergyCharge(15)
	if got := ExpectedCharge(d, 5, []float64{20}); math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Idle shorter than timeout: pure standby.
	if got := ExpectedCharge(d, 5, []float64{3}); math.Abs(got-d.Isdb*3) > 1e-12 {
		t.Fatalf("short idle cost = %v", got)
	}
	if got := ExpectedCharge(d, 5, nil); got != 0 {
		t.Fatalf("empty samples cost = %v", got)
	}
}

func TestOptimalTimeoutAllLongIdles(t *testing.T) {
	d := dev()
	// Every idle is enormous: sleeping immediately is optimal.
	tau := OptimalTimeout(d, []float64{500, 600, 700})
	if tau != 0 {
		t.Fatalf("tau = %v, want 0 (sleep immediately)", tau)
	}
}

func TestOptimalTimeoutAllShortIdles(t *testing.T) {
	d := dev()
	// Every idle far below break-even: never sleep (tau above max idle).
	tau := OptimalTimeout(d, []float64{1, 2, 3})
	if tau < 3 {
		t.Fatalf("tau = %v, want >= max idle (never sleep)", tau)
	}
}

func TestOptimalTimeoutBeatsBreakEvenOnMixture(t *testing.T) {
	d := dev()
	// Bimodal: many 2 s idles, some 60 s idles. The distribution-optimal
	// timeout should cost no more than the worst-case Tbe timeout.
	samples := make([]float64, 0, 100)
	for i := 0; i < 80; i++ {
		samples = append(samples, 2)
	}
	for i := 0; i < 20; i++ {
		samples = append(samples, 60)
	}
	tauStar := OptimalTimeout(d, samples)
	costStar := ExpectedCharge(d, tauStar, samples)
	costTbe := ExpectedCharge(d, d.BreakEven(), samples)
	if costStar > costTbe+1e-12 {
		t.Fatalf("optimal timeout cost %v exceeds Tbe timeout cost %v", costStar, costTbe)
	}
	// With the short idles at 2 s, the optimum waits at least past them.
	if tauStar < 2 {
		t.Fatalf("tau = %v, should wait out the 2 s cluster", tauStar)
	}
}

func TestOptimalTimeoutIsArgmin(t *testing.T) {
	d := dev()
	samples := []float64{1, 4, 7, 12, 30, 30, 45, 2, 9, 18}
	tauStar := OptimalTimeout(d, samples)
	costStar := ExpectedCharge(d, tauStar, samples)
	for tau := 0.0; tau <= 50; tau += 0.25 {
		if c := ExpectedCharge(d, tau, samples); c < costStar-1e-9 {
			t.Fatalf("tau=%v cost %v beats 'optimal' %v (tau*=%v)", tau, c, costStar, tauStar)
		}
	}
}

func TestOptimalTimeoutEmpty(t *testing.T) {
	d := dev()
	if got := OptimalTimeout(d, nil); math.Abs(got-d.BreakEven()) > 1e-9 {
		t.Fatalf("empty-sample timeout = %v, want Tbe", got)
	}
}

func TestAdaptiveTimeoutLifecycle(t *testing.T) {
	d := dev()
	a, err := NewAdaptiveTimeout(d, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.NextTimeout()-d.BreakEven()) > 1e-9 {
		t.Fatal("cold adapter should serve Tbe")
	}
	for i := 0; i < 60; i++ {
		a.Observe(500) // long idles: learn to sleep immediately
	}
	if got := a.NextTimeout(); got != 0 {
		t.Fatalf("after long idles timeout = %v, want 0", got)
	}
	a.Reset()
	if math.Abs(a.NextTimeout()-d.BreakEven()) > 1e-9 {
		t.Fatal("reset adapter should serve Tbe again")
	}
	// Window slides: flood with short idles, the long history ages out.
	for i := 0; i < 60; i++ {
		a.Observe(1)
	}
	if got := a.NextTimeout(); got < 1 {
		t.Fatalf("after short idles timeout = %v, want never-sleep", got)
	}
}

func TestAdaptiveTimeoutValidation(t *testing.T) {
	if _, err := NewAdaptiveTimeout(nil, 10); err == nil {
		t.Error("nil device accepted")
	}
	if _, err := NewAdaptiveTimeout(dev(), 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestCloneTimeoutAdapterIndependent(t *testing.T) {
	d := dev()
	a, err := NewAdaptiveTimeout(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	a.Observe(2)
	a.Observe(30)
	before := a.NextTimeout()

	c := a.CloneTimeoutAdapter()
	if c.NextTimeout() != before {
		t.Fatalf("clone starts at %v, want the source's learned timeout %v", c.NextTimeout(), before)
	}
	// Feeding the clone must not move the source, and vice versa.
	for i := 0; i < 6; i++ {
		c.Observe(100)
	}
	if got := a.NextTimeout(); got != before {
		t.Fatalf("source timeout moved to %v after clone observations, want %v", got, before)
	}
	a.Observe(0.1)
	a.Observe(0.1)
	if cTau, clTau := a.NextTimeout(), c.NextTimeout(); cTau == clTau {
		t.Fatalf("source and clone converged (%v) despite disjoint observations", cTau)
	}
}
