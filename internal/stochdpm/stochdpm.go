// Package stochdpm implements the stochastic-control branch of the DPM
// literature the paper surveys ([4, 5]): instead of predicting each idle
// period, learn the idle-length *distribution* online and choose the
// timeout that minimizes the expected idle-period energy.
//
// For a timeout τ and an idle period of length L the device spends
//
//	L ≤ τ:  Isdb·L                         (never slept)
//	L > τ:  Isdb·τ + SleepEnergyCharge(L−τ) (dwell, then sleep round trip)
//
// The expectation over the empirical distribution is piecewise linear in τ
// with knots at the observed lengths, so the optimum is found exactly by
// evaluating the candidate knots — a tiny Markov-decision problem solved
// by enumeration, refreshed as observations arrive.
//
// The resulting adaptive timeout plugs into the simulator's DPMTimeout
// mode through the sim.TimeoutAdapter interface.
package stochdpm

import (
	"fmt"
	"math"

	"fcdpm/internal/device"
	"fcdpm/internal/sim"
)

// ExpectedCharge returns the mean idle-period charge (A-s) under timeout
// tau over the given idle-length samples.
func ExpectedCharge(dev *device.Model, tau float64, samples []float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	var sum float64
	for _, l := range samples {
		if l <= tau {
			sum += dev.Isdb * l
		} else {
			sum += dev.Isdb*tau + dev.SleepEnergyCharge(l-tau)
		}
	}
	return sum / float64(len(samples))
}

// OptimalTimeout returns the timeout minimizing the expected idle-period
// charge over the samples. Candidates are 0, every sample value, and +Inf
// (never sleep, encoded as the largest sample plus one); the expected cost
// is piecewise linear between sample knots, so this enumeration is exact.
// It returns the device break-even time when no samples exist.
func OptimalTimeout(dev *device.Model, samples []float64) float64 {
	if len(samples) == 0 {
		return dev.BreakEven()
	}
	maxL := 0.0
	for _, l := range samples {
		if l > maxL {
			maxL = l
		}
	}
	best, bestCost := 0.0, math.Inf(1)
	try := func(tau float64) {
		if c := ExpectedCharge(dev, tau, samples); c < bestCost-1e-12 {
			best, bestCost = tau, c
		}
	}
	try(0)
	for _, l := range samples {
		try(l)
	}
	try(maxL + 1) // effectively "never sleep"
	return best
}

// AdaptiveTimeout learns the idle distribution over a sliding window and
// serves the per-slot optimal timeout. It implements sim.TimeoutAdapter.
type AdaptiveTimeout struct {
	dev    *device.Model
	window int
	hist   []float64
	cached float64
	dirty  bool
}

// NewAdaptiveTimeout returns an adapter with the given sliding-window
// length (at least 1). Before any observation it serves the device
// break-even time — the classic worst-case-competitive choice.
func NewAdaptiveTimeout(dev *device.Model, window int) (*AdaptiveTimeout, error) {
	if dev == nil {
		return nil, fmt.Errorf("stochdpm: nil device")
	}
	if window < 1 {
		return nil, fmt.Errorf("stochdpm: window %d < 1", window)
	}
	return &AdaptiveTimeout{dev: dev, window: window, cached: dev.BreakEven()}, nil
}

// NextTimeout implements sim.TimeoutAdapter.
func (a *AdaptiveTimeout) NextTimeout() float64 {
	if a.dirty {
		a.cached = OptimalTimeout(a.dev, a.hist)
		a.dirty = false
	}
	return a.cached
}

// Observe implements sim.TimeoutAdapter.
func (a *AdaptiveTimeout) Observe(idle float64) {
	a.hist = append(a.hist, idle)
	if len(a.hist) > a.window {
		a.hist = a.hist[1:]
	}
	a.dirty = true
}

// CloneTimeoutAdapter implements sim.TimeoutAdapterCloner: the clone
// starts from the same learned distribution but adapts independently, so
// a batched comparison or sweep can give every lane its own adaptation
// instead of serializing the rows around one shared adapter.
func (a *AdaptiveTimeout) CloneTimeoutAdapter() sim.TimeoutAdapter {
	c := *a
	c.hist = append([]float64(nil), a.hist...)
	return &c
}

// Reset clears the learned history.
func (a *AdaptiveTimeout) Reset() {
	a.hist = a.hist[:0]
	a.cached = a.dev.BreakEven()
	a.dirty = false
}
