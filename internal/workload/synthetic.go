package workload

import (
	"fmt"

	"fcdpm/internal/numeric"
)

// SyntheticConfig parameterizes the Experiment 2 trace: idle and active
// period lengths and active power drawn from uniform distributions.
type SyntheticConfig struct {
	// Duration is the total trace length in seconds.
	Duration float64
	// IdleMin and IdleMax bound the uniform idle-period distribution
	// (paper: [5 s, 25 s]).
	IdleMin, IdleMax float64
	// ActiveMin and ActiveMax bound the uniform active-period
	// distribution (paper: [2 s, 4 s]).
	ActiveMin, ActiveMax float64
	// PowerMin and PowerMax bound the uniform active-power distribution
	// in watts (paper: [12 W, 16 W]).
	PowerMin, PowerMax float64
	// V converts active power to current (12 V in the paper).
	V float64
	// Seed drives the deterministic generator.
	Seed uint64
}

// DefaultSyntheticConfig returns the Experiment 2 configuration. The paper
// does not state the synthetic trace length; we match Experiment 1's
// 28 minutes.
func DefaultSyntheticConfig() SyntheticConfig {
	return SyntheticConfig{
		Duration: 28 * 60,
		IdleMin:  5, IdleMax: 25,
		ActiveMin: 2, ActiveMax: 4,
		PowerMin: 12, PowerMax: 16,
		V:    12,
		Seed: 2,
	}
}

// Validate reports configuration errors.
func (c SyntheticConfig) Validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("workload: non-positive duration %v", c.Duration)
	case c.IdleMin < 0 || c.IdleMax <= c.IdleMin:
		return fmt.Errorf("workload: bad idle bounds [%v, %v]", c.IdleMin, c.IdleMax)
	case c.ActiveMin <= 0 || c.ActiveMax <= c.ActiveMin:
		return fmt.Errorf("workload: bad active bounds [%v, %v]", c.ActiveMin, c.ActiveMax)
	case c.PowerMin <= 0 || c.PowerMax <= c.PowerMin:
		return fmt.Errorf("workload: bad power bounds [%v, %v]", c.PowerMin, c.PowerMax)
	case c.V <= 0:
		return fmt.Errorf("workload: non-positive voltage %v", c.V)
	}
	return nil
}

// Synthetic generates the random-slot trace of Experiment 2.
func Synthetic(cfg SyntheticConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := numeric.NewRNG(cfg.Seed)
	tr := &Trace{Name: fmt.Sprintf("synthetic(seed=%d)", cfg.Seed)}
	var elapsed float64
	for elapsed < cfg.Duration {
		s := Slot{
			Idle:          rng.Uniform(cfg.IdleMin, cfg.IdleMax),
			Active:        rng.Uniform(cfg.ActiveMin, cfg.ActiveMax),
			ActiveCurrent: rng.Uniform(cfg.PowerMin, cfg.PowerMax) / cfg.V,
		}
		tr.Slots = append(tr.Slots, s)
		elapsed += s.Idle + s.Active
	}
	return tr, nil
}

// Periodic returns a fully deterministic trace of n identical slots —
// useful for tests and for reproducing the §3.2 motivational example as a
// runtime workload.
func Periodic(n int, idle, active, activeCurrent float64) *Trace {
	tr := &Trace{Name: "periodic"}
	for k := 0; k < n; k++ {
		tr.Slots = append(tr.Slots, Slot{Idle: idle, Active: active, ActiveCurrent: activeCurrent})
	}
	return tr
}
