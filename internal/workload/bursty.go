package workload

import (
	"fmt"

	"fcdpm/internal/numeric"
)

// BurstyConfig parameterizes a two-regime (Markov-modulated) workload: the
// system alternates between a BUSY regime of short idles and a CALM regime
// of long idles, with geometric dwell times. Unlike the i.i.d. generators,
// consecutive idle lengths are strongly correlated — the structure that
// history-based predictors (Markov chain, learning tree) exist to exploit.
type BurstyConfig struct {
	// Duration is the total trace length in seconds.
	Duration float64
	// BusyIdleMin/Max and CalmIdleMin/Max bound the uniform idle lengths
	// within each regime.
	BusyIdleMin, BusyIdleMax float64
	CalmIdleMin, CalmIdleMax float64
	// StayProb is the per-slot probability of remaining in the current
	// regime (dwell length geometric with mean 1/(1−StayProb) slots).
	StayProb float64
	// ActiveMin and ActiveMax bound the uniform active-period length.
	ActiveMin, ActiveMax float64
	// PowerMin and PowerMax bound the uniform active power (watts at V).
	PowerMin, PowerMax float64
	// V converts power to current.
	V float64
	// Seed drives the deterministic generator.
	Seed uint64
}

// DefaultBurstyConfig returns a configuration against the Experiment 2
// device (Tbe = 10 s): busy idles 2–6 s (never sleep-worthy), calm idles
// 20–40 s (always sleep-worthy), regimes lasting ~10 slots.
func DefaultBurstyConfig() BurstyConfig {
	return BurstyConfig{
		Duration:    28 * 60,
		BusyIdleMin: 2, BusyIdleMax: 6,
		CalmIdleMin: 20, CalmIdleMax: 40,
		StayProb:  0.9,
		ActiveMin: 2, ActiveMax: 4,
		PowerMin: 12, PowerMax: 16,
		V:    12,
		Seed: 4,
	}
}

// Validate reports configuration errors.
func (c BurstyConfig) Validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("workload: non-positive duration %v", c.Duration)
	case c.BusyIdleMin <= 0 || c.BusyIdleMax <= c.BusyIdleMin:
		return fmt.Errorf("workload: bad busy-idle bounds [%v, %v]", c.BusyIdleMin, c.BusyIdleMax)
	case c.CalmIdleMin <= c.BusyIdleMax || c.CalmIdleMax <= c.CalmIdleMin:
		return fmt.Errorf("workload: calm-idle bounds [%v, %v] must sit above busy bounds", c.CalmIdleMin, c.CalmIdleMax)
	case c.StayProb < 0 || c.StayProb >= 1:
		return fmt.Errorf("workload: stay probability %v outside [0, 1)", c.StayProb)
	case c.ActiveMin <= 0 || c.ActiveMax <= c.ActiveMin:
		return fmt.Errorf("workload: bad active bounds [%v, %v]", c.ActiveMin, c.ActiveMax)
	case c.PowerMin <= 0 || c.PowerMax <= c.PowerMin:
		return fmt.Errorf("workload: bad power bounds [%v, %v]", c.PowerMin, c.PowerMax)
	case c.V <= 0:
		return fmt.Errorf("workload: non-positive voltage %v", c.V)
	}
	return nil
}

// Bursty generates the regime-switching trace.
func Bursty(cfg BurstyConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := numeric.NewRNG(cfg.Seed)
	tr := &Trace{Name: fmt.Sprintf("bursty(seed=%d)", cfg.Seed)}
	busy := true
	var elapsed float64
	for elapsed < cfg.Duration {
		if rng.Float64() >= cfg.StayProb {
			busy = !busy
		}
		var idle float64
		if busy {
			idle = rng.Uniform(cfg.BusyIdleMin, cfg.BusyIdleMax)
		} else {
			idle = rng.Uniform(cfg.CalmIdleMin, cfg.CalmIdleMax)
		}
		s := Slot{
			Idle:          idle,
			Active:        rng.Uniform(cfg.ActiveMin, cfg.ActiveMax),
			ActiveCurrent: rng.Uniform(cfg.PowerMin, cfg.PowerMax) / cfg.V,
		}
		tr.Slots = append(tr.Slots, s)
		elapsed += s.Idle + s.Active
	}
	return tr, nil
}
