package workload

import (
	"fmt"
	"math"

	"fcdpm/internal/numeric"
)

// HeavyTailConfig parameterizes a Pareto-idle workload — the classic
// stress case of the DPM prediction literature: most idle periods are
// short (not worth sleeping through), but a heavy tail of very long ones
// carries most of the sleeping opportunity. Unlike the paper's two
// benign workloads, this one separates good predictors from bad ones.
type HeavyTailConfig struct {
	// Duration is the total trace length in seconds.
	Duration float64
	// IdleXm and IdleAlpha are the Pareto scale (minimum) and shape; the
	// mean is Xm·α/(α−1) for α > 1. Idle periods are capped at IdleCap.
	IdleXm, IdleAlpha, IdleCap float64
	// ActiveMin and ActiveMax bound the uniform active-period length.
	ActiveMin, ActiveMax float64
	// PowerMin and PowerMax bound the uniform active power (watts at V).
	PowerMin, PowerMax float64
	// V converts power to current.
	V float64
	// Seed drives the deterministic generator.
	Seed uint64
}

// DefaultHeavyTailConfig returns the Experiment 3 configuration: Pareto
// idles with scale 3 s and shape 1.6 (mean 8 s, capped at 120 s) against
// the Experiment 2 device whose break-even time is 10 s — so the *median*
// idle does not justify sleeping but the tail does.
func DefaultHeavyTailConfig() HeavyTailConfig {
	return HeavyTailConfig{
		Duration: 28 * 60,
		IdleXm:   3, IdleAlpha: 1.6, IdleCap: 120,
		ActiveMin: 2, ActiveMax: 4,
		PowerMin: 12, PowerMax: 16,
		V:    12,
		Seed: 3,
	}
}

// Validate reports configuration errors.
func (c HeavyTailConfig) Validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("workload: non-positive duration %v", c.Duration)
	case c.IdleXm <= 0:
		return fmt.Errorf("workload: non-positive Pareto scale %v", c.IdleXm)
	case c.IdleAlpha <= 1:
		return fmt.Errorf("workload: Pareto shape %v must exceed 1 (finite mean)", c.IdleAlpha)
	case c.IdleCap <= c.IdleXm:
		return fmt.Errorf("workload: idle cap %v at or below scale %v", c.IdleCap, c.IdleXm)
	case c.ActiveMin <= 0 || c.ActiveMax <= c.ActiveMin:
		return fmt.Errorf("workload: bad active bounds [%v, %v]", c.ActiveMin, c.ActiveMax)
	case c.PowerMin <= 0 || c.PowerMax <= c.PowerMin:
		return fmt.Errorf("workload: bad power bounds [%v, %v]", c.PowerMin, c.PowerMax)
	case c.V <= 0:
		return fmt.Errorf("workload: non-positive voltage %v", c.V)
	}
	return nil
}

// HeavyTail generates the Pareto-idle trace.
func HeavyTail(cfg HeavyTailConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := numeric.NewRNG(cfg.Seed)
	tr := &Trace{Name: fmt.Sprintf("heavy-tail(seed=%d)", cfg.Seed)}
	var elapsed float64
	for elapsed < cfg.Duration {
		// Inverse-CDF Pareto sample.
		u := rng.Float64()
		idle := cfg.IdleXm * math.Pow(1-u, -1/cfg.IdleAlpha)
		if idle > cfg.IdleCap {
			idle = cfg.IdleCap
		}
		s := Slot{
			Idle:          idle,
			Active:        rng.Uniform(cfg.ActiveMin, cfg.ActiveMax),
			ActiveCurrent: rng.Uniform(cfg.PowerMin, cfg.PowerMax) / cfg.V,
		}
		tr.Slots = append(tr.Slots, s)
		elapsed += s.Idle + s.Active
	}
	return tr, nil
}
