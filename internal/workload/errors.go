package workload

import "fmt"

// ValidationError reports a trace record whose timing fields are not
// physically meaningful. It is a typed error so transport layers can
// distinguish a malformed trace (client fault) from an engine failure:
// the CLI maps it to exit code 1 and the server to HTTP 400.
type ValidationError struct {
	Slot  int     // slot index within the trace, -1 for a standalone slot
	Field string  // "idle", "active", "activeCurrent", or "duration"
	Value float64 // the offending value
}

func (e *ValidationError) Error() string {
	where := "slot"
	if e.Slot >= 0 {
		where = fmt.Sprintf("slot %d", e.Slot)
	}
	return fmt.Sprintf("workload: %s: invalid %s %v", where, e.Field, e.Value)
}

// at returns a copy of the error pinned to a slot index, so Trace-level
// validation can reuse Slot-level checks without re-wrapping.
func (e *ValidationError) at(k int) *ValidationError {
	c := *e
	c.Slot = k
	return &c
}
