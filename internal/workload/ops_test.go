package workload

import (
	"math"
	"testing"
)

func TestConcat(t *testing.T) {
	a := Periodic(2, 10, 3, 1)
	b := Periodic(3, 5, 2, 0.8)
	c := Concat("joined", a, b)
	if c.Len() != 5 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Slots[0].Idle != 10 || c.Slots[4].Idle != 5 {
		t.Fatal("order broken")
	}
	if c.Name != "joined" {
		t.Fatalf("name = %q", c.Name)
	}
}

func TestRepeat(t *testing.T) {
	tr := Periodic(2, 10, 3, 1)
	r := tr.Repeat(3)
	if r.Len() != 6 {
		t.Fatalf("len = %d", r.Len())
	}
	if r.Duration() != 3*tr.Duration() {
		t.Fatalf("duration = %v", r.Duration())
	}
	if tr.Repeat(0).Len() != 0 {
		t.Fatal("Repeat(0) should be empty")
	}
}

func TestScaleTime(t *testing.T) {
	tr := Periodic(2, 10, 4, 1.2)
	s := tr.ScaleTime(0.5)
	if s.Slots[0].Idle != 5 || s.Slots[0].Active != 2 {
		t.Fatalf("scaled slot = %+v", s.Slots[0])
	}
	if s.Slots[0].ActiveCurrent != 1.2 {
		t.Fatal("current should be unchanged")
	}
	// Original untouched.
	if tr.Slots[0].Idle != 10 {
		t.Fatal("original mutated")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive factor accepted")
		}
	}()
	tr.ScaleTime(0)
}

func TestScaleCurrent(t *testing.T) {
	tr := Periodic(2, 10, 4, 1.0)
	s := tr.ScaleCurrent(1.25)
	if s.Slots[1].ActiveCurrent != 1.25 {
		t.Fatalf("scaled current = %v", s.Slots[1].ActiveCurrent)
	}
	if s.Slots[1].Idle != 10 {
		t.Fatal("timing should be unchanged")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative factor accepted")
		}
	}()
	tr.ScaleCurrent(-1)
}

func TestPerturbIdle(t *testing.T) {
	tr := Periodic(100, 10, 3, 1)
	p, err := tr.PerturbIdle(7, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for k, s := range p.Slots {
		if s.Idle < 8-1e-9 || s.Idle > 12+1e-9 {
			t.Fatalf("slot %d idle %v outside ±20%%", k, s.Idle)
		}
		if s.Idle != 10 {
			changed++
		}
		if s.Active != 3 || s.ActiveCurrent != 1 {
			t.Fatal("non-idle fields perturbed")
		}
	}
	if changed < 90 {
		t.Fatalf("only %d slots perturbed", changed)
	}
	// Deterministic per seed.
	p2, _ := tr.PerturbIdle(7, 0.2)
	for k := range p.Slots {
		if p.Slots[k] != p2.Slots[k] {
			t.Fatal("perturbation not deterministic")
		}
	}
	if _, err := tr.PerturbIdle(1, 1.0); err == nil {
		t.Fatal("frac=1 accepted")
	}
	if _, err := tr.PerturbIdle(1, -0.1); err == nil {
		t.Fatal("negative frac accepted")
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	cfg := DefaultCamcorderConfig()
	cfg.Duration = 300
	tr, err := Camcorder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := tr.Shuffle(3)
	if sh.Len() != tr.Len() {
		t.Fatalf("len changed: %d vs %d", sh.Len(), tr.Len())
	}
	if math.Abs(sh.Duration()-tr.Duration()) > 1e-9 {
		t.Fatal("duration changed")
	}
	// Same multiset of idle values.
	count := func(tr *Trace) map[float64]int {
		m := map[float64]int{}
		for _, s := range tr.Slots {
			m[s.Idle]++
		}
		return m
	}
	a, b := count(tr), count(sh)
	if len(a) != len(b) {
		t.Fatal("idle multiset changed")
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatal("idle multiset changed")
		}
	}
	// Order actually changed (overwhelmingly likely for ~20 slots).
	same := true
	for k := range tr.Slots {
		if tr.Slots[k] != sh.Slots[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("shuffle left the order intact")
	}
}

func TestFromEvents(t *testing.T) {
	events := []Event{
		{Arrival: 10, Service: 2, Current: 1.0},
		{Arrival: 20, Service: 3, Current: 1.2},
		{Arrival: 21, Service: 1, Current: 0.8}, // queued behind the previous
	}
	tr, err := FromEvents("log", events, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("slots = %d", tr.Len())
	}
	// First slot: lead-in idle of 10 s.
	if tr.Slots[0].Idle != 10 || tr.Slots[0].Active != 2 {
		t.Fatalf("slot 0 = %+v", tr.Slots[0])
	}
	// Second: idle from t=12 (prev completion) to t=20.
	if tr.Slots[1].Idle != 8 || tr.Slots[1].Active != 3 {
		t.Fatalf("slot 1 = %+v", tr.Slots[1])
	}
	// Third arrives at 21 while busy until 23: zero idle, queued.
	if tr.Slots[2].Idle != 0 {
		t.Fatalf("slot 2 = %+v, want zero idle", tr.Slots[2])
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromEventsSortsArrivals(t *testing.T) {
	events := []Event{
		{Arrival: 20, Service: 1, Current: 1},
		{Arrival: 5, Service: 1, Current: 1},
	}
	tr, err := FromEvents("unsorted", events, 5)
	if err != nil {
		t.Fatal(err)
	}
	// First slot corresponds to the t=5 arrival.
	if tr.Slots[0].Idle != 5 {
		t.Fatalf("slot 0 idle = %v", tr.Slots[0].Idle)
	}
	if tr.Slots[1].Idle != 14 { // from 6 to 20
		t.Fatalf("slot 1 idle = %v", tr.Slots[1].Idle)
	}
}

func TestFromEventsErrors(t *testing.T) {
	if _, err := FromEvents("x", nil, 0); err == nil {
		t.Error("empty log accepted")
	}
	if _, err := FromEvents("x", []Event{{Arrival: 1, Service: 0, Current: 1}}, 0); err == nil {
		t.Error("zero service accepted")
	}
	if _, err := FromEvents("x", []Event{{Arrival: 1, Service: 1, Current: -1}}, 0); err == nil {
		t.Error("negative current accepted")
	}
	if _, err := FromEvents("x", []Event{{Arrival: 1, Service: 1, Current: 1}}, -1); err == nil {
		t.Error("negative lead-in accepted")
	}
}
