package workload

import "fmt"

// Aggregate merges groups of k consecutive task slots into one slot each —
// the idle-aggregation idea behind task procrastination [6] and multi-
// device scheduling [7]: defer the active work of a group to its end so
// the small idle gaps coalesce into one long idle period that is worth
// sleeping through.
//
// The merged slot's idle period is the sum of the group's idles, its
// active period the sum of the group's actives, and its current the
// charge-weighted mean. A trailing partial group is merged the same way.
// k = 1 returns a copy.
func Aggregate(t *Trace, k int) (*Trace, error) {
	if k < 1 {
		return nil, fmt.Errorf("workload: aggregation factor %d < 1", k)
	}
	out := &Trace{Name: fmt.Sprintf("%s (aggregated x%d)", t.Name, k)}
	for start := 0; start < len(t.Slots); start += k {
		end := start + k
		if end > len(t.Slots) {
			end = len(t.Slots)
		}
		var merged Slot
		var charge float64
		for _, s := range t.Slots[start:end] {
			merged.Idle += s.Idle
			merged.Active += s.Active
			charge += s.ActiveCurrent * s.Active
		}
		if merged.Active > 0 {
			merged.ActiveCurrent = charge / merged.Active
		}
		out.Slots = append(out.Slots, merged)
	}
	return out, nil
}

// MaxDeferral returns the worst-case completion delay Aggregate(t, k)
// imposes on any task in the original trace: the last task of a group
// finishes at the same time, but the first task of a group is pushed past
// all the later idles and earlier actives of its group. Schedulers use
// this to pick the largest k whose delay fits the application's slack.
func MaxDeferral(t *Trace, k int) (float64, error) {
	if k < 1 {
		return 0, fmt.Errorf("workload: aggregation factor %d < 1", k)
	}
	var worst float64
	for start := 0; start < len(t.Slots); start += k {
		end := start + k
		if end > len(t.Slots) {
			end = len(t.Slots)
		}
		group := t.Slots[start:end]
		// Original finish time of task j (relative to group start):
		// sum_{i<=j} (idle_i + active_i). Aggregated finish time:
		// sum idles + sum_{i<=j} active_i. The deferral of task j is the
		// sum of idles after j.
		var idleAfter float64
		for _, s := range group {
			idleAfter += s.Idle
		}
		for _, s := range group {
			idleAfter -= s.Idle
			if idleAfter > worst {
				worst = idleAfter
			}
		}
	}
	return worst, nil
}
