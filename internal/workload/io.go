package workload

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteJSON serializes the trace as indented JSON.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadJSON parses a trace previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("workload: decode JSON trace: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// csvHeader is the column layout of the CSV trace format.
var csvHeader = []string{"idle_s", "active_s", "active_current_a"}

// WriteCSV serializes the trace as CSV with a header row. The trace name is
// not preserved; use JSON for lossless round trips.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, s := range t.Slots {
		rec := []string{
			strconv.FormatFloat(s.Idle, 'g', -1, 64),
			strconv.FormatFloat(s.Active, 'g', -1, 64),
			strconv.FormatFloat(s.ActiveCurrent, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: read CSV trace: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("workload: empty CSV trace")
	}
	if rows[0][0] != csvHeader[0] {
		return nil, fmt.Errorf("workload: missing CSV header, got %q", rows[0][0])
	}
	t := &Trace{Name: "csv"}
	for k, row := range rows[1:] {
		var s Slot
		if s.Idle, err = strconv.ParseFloat(row[0], 64); err != nil {
			return nil, fmt.Errorf("workload: row %d idle: %w", k+1, err)
		}
		if s.Active, err = strconv.ParseFloat(row[1], 64); err != nil {
			return nil, fmt.Errorf("workload: row %d active: %w", k+1, err)
		}
		if s.ActiveCurrent, err = strconv.ParseFloat(row[2], 64); err != nil {
			return nil, fmt.Errorf("workload: row %d current: %w", k+1, err)
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("workload: row %d: %w", k+1, err)
		}
		t.Slots = append(t.Slots, s)
	}
	return t, nil
}
