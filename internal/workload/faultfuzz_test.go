// Fault-schedule fuzzing lives in the external test package: the sim
// package imports workload, so an internal test file could not import sim
// back without a cycle.
package workload_test

import (
	"math"
	"testing"

	"fcdpm/internal/device"
	"fcdpm/internal/fault"
	"fcdpm/internal/fuelcell"
	"fcdpm/internal/policy"
	"fcdpm/internal/sim"
	"fcdpm/internal/storage"
	"fcdpm/internal/workload"
)

// FuzzFaultedRun composes a random fault schedule over a random synthetic
// trace and runs the supervised simulator. The contract under fuzzing is:
// the run either returns an error or a fully finite result — never a
// panic, never NaN/Inf fuel, never negative charge accounting.
func FuzzFaultedRun(f *testing.F) {
	f.Add(uint64(1), uint64(2), 3, 300.0)
	f.Add(uint64(7), uint64(7), 0, 600.0)
	f.Add(uint64(42), uint64(9), 12, 120.0)
	f.Add(uint64(0), uint64(0), 1, 30.0)
	f.Fuzz(func(t *testing.T, traceSeed, faultSeed uint64, events int, duration float64) {
		// Clamp the fuzzed knobs into the generators' valid domain; the
		// point here is to stress the simulator, not the input parsers
		// (config validation has its own tests).
		if math.IsNaN(duration) || math.IsInf(duration, 0) {
			duration = 300
		}
		duration = math.Min(math.Max(duration, 30), 3600)
		if events < 0 {
			events = -events
		}
		events %= 32

		wcfg := workload.DefaultSyntheticConfig()
		wcfg.Seed = traceSeed
		wcfg.Duration = duration
		trace, err := workload.Synthetic(wcfg)
		if err != nil {
			t.Fatalf("synthetic trace rejected valid config: %v", err)
		}

		sched := &fault.Schedule{}
		if events > 0 {
			sched, err = fault.Generate(fault.GenConfig{
				Seed:    faultSeed,
				Horizon: duration,
				Events:  events,
			})
			if err != nil {
				t.Fatalf("fault generator rejected valid config: %v", err)
			}
		}

		sys := fuelcell.PaperSystem()
		dev := device.Synthetic()
		res, err := sim.Run(sim.Config{
			Sys:    sys,
			Dev:    dev,
			Store:  storage.MustSuperCap(6, 3),
			Trace:  trace,
			Policy: policy.NewFCDPM(sys, dev),
			Fallbacks: []sim.Policy{
				policy.NewASAP(sys),
				policy.NewConv(sys),
			},
			Faults:    sched,
			FaultSeed: faultSeed,
		})
		if err != nil {
			// A typed error is an acceptable outcome; a panic would have
			// failed the fuzz run already.
			return
		}
		for name, v := range map[string]float64{
			"fuel":        res.Fuel,
			"deficit":     res.Deficit,
			"shed":        res.Shed,
			"bled":        res.Bled,
			"lost charge": res.LostCharge,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("%s not finite/non-negative: %v (trace seed %d, fault seed %d, %d events)",
					name, v, traceSeed, faultSeed, events)
			}
		}
		if res.FinalCharge < -1e-9 || math.IsNaN(res.FinalCharge) {
			t.Fatalf("final charge invalid: %v", res.FinalCharge)
		}
	})
}
