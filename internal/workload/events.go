package workload

import (
	"fmt"
	"sort"
)

// Event is one task request in an activity log: it arrives at Arrival
// seconds, keeps the device active for Service seconds, and draws Current
// amps while active — the raw form measured traces come in before they are
// slotted.
type Event struct {
	Arrival float64 `json:"arrival"`
	Service float64 `json:"service"`
	Current float64 `json:"current"`
}

// FromEvents converts an activity log into the slot representation the
// simulator consumes. Events are sorted by arrival; each slot's idle period
// is the gap between the previous task's completion and the next arrival.
// An event arriving before the previous task finishes is back-to-back work:
// it starts immediately after (zero idle), matching how a request queue
// drains.
//
// The optional leadIn is the idle time before the first arrival (0 if the
// log starts with the device busy).
func FromEvents(name string, events []Event, leadIn float64) (*Trace, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("workload: no events")
	}
	if leadIn < 0 {
		return nil, fmt.Errorf("workload: negative lead-in %v", leadIn)
	}
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Arrival < sorted[j].Arrival })

	tr := &Trace{Name: name}
	// busyUntil tracks when the device frees up.
	busyUntil := sorted[0].Arrival - leadIn
	for k, e := range sorted {
		if e.Service <= 0 {
			return nil, fmt.Errorf("workload: event %d has non-positive service %v", k, e.Service)
		}
		if e.Current < 0 {
			return nil, fmt.Errorf("workload: event %d has negative current %v", k, e.Current)
		}
		idle := e.Arrival - busyUntil
		start := e.Arrival
		if idle < 0 {
			// Queued behind the previous task.
			idle = 0
			start = busyUntil
		}
		tr.Slots = append(tr.Slots, Slot{Idle: idle, Active: e.Service, ActiveCurrent: e.Current})
		busyUntil = start + e.Service
	}
	return tr, nil
}
