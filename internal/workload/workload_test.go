package workload

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"fcdpm/internal/device"
)

func TestCamcorderTraceMatchesPaperStatistics(t *testing.T) {
	tr, err := Camcorder(DefaultCamcorderConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Statistics()
	// 28-minute trace (§5.1).
	if st.Duration < 27*60 || st.Duration > 30*60 {
		t.Errorf("duration = %v s, want ≈1680", st.Duration)
	}
	// Idle in [8, 20] s.
	if st.Idle.Min < 8-1e-9 || st.Idle.Max > 20+1e-9 {
		t.Errorf("idle range [%v, %v], want within [8, 20]", st.Idle.Min, st.Idle.Max)
	}
	// Idle should actually vary with MPEG content, not sit at a bound.
	if st.Idle.Stddev < 0.5 {
		t.Errorf("idle stddev = %v, too flat to represent MPEG variation", st.Idle.Stddev)
	}
	// Fixed active period = 16/5.28 ≈ 3.03 s.
	if math.Abs(st.Active.Min-16.0/5.28) > 1e-9 || math.Abs(st.Active.Max-16.0/5.28) > 1e-9 {
		t.Errorf("active period not fixed at 3.03: [%v, %v]", st.Active.Min, st.Active.Max)
	}
	// RUN current 14.65 W / 12 V.
	if math.Abs(st.ActiveCurrent.Mean-device.CamcorderRunCurrent) > 1e-12 {
		t.Errorf("active current = %v, want %v", st.ActiveCurrent.Mean, device.CamcorderRunCurrent)
	}
}

func TestCamcorderDeterminism(t *testing.T) {
	a, err := Camcorder(DefaultCamcorderConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Camcorder(DefaultCamcorderConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Slots) != len(b.Slots) {
		t.Fatalf("slot counts differ: %d vs %d", len(a.Slots), len(b.Slots))
	}
	for k := range a.Slots {
		if a.Slots[k] != b.Slots[k] {
			t.Fatalf("slot %d differs", k)
		}
	}
}

func TestCamcorderSeedsDiffer(t *testing.T) {
	cfg := DefaultCamcorderConfig()
	a, _ := Camcorder(cfg)
	cfg.Seed = 99
	b, _ := Camcorder(cfg)
	if len(a.Slots) == len(b.Slots) {
		same := true
		for k := range a.Slots {
			if a.Slots[k] != b.Slots[k] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestCamcorderConfigValidation(t *testing.T) {
	mod := func(f func(*CamcorderConfig)) CamcorderConfig {
		c := DefaultCamcorderConfig()
		f(&c)
		return c
	}
	bad := []CamcorderConfig{
		mod(func(c *CamcorderConfig) { c.Duration = 0 }),
		mod(func(c *CamcorderConfig) { c.BufferMB = 0 }),
		mod(func(c *CamcorderConfig) { c.FrameRate = 0 }),
		mod(func(c *CamcorderConfig) { c.GOPLength = 0 }),
		mod(func(c *CamcorderConfig) { c.MeanIBits = 0 }),
		mod(func(c *CamcorderConfig) { c.MinIdle = 25; c.MaxIdle = 8 }),
	}
	for k, c := range bad {
		if _, err := Camcorder(c); err == nil {
			t.Errorf("case %d: invalid config accepted", k)
		}
	}
}

func TestGOPPattern(t *testing.T) {
	c := DefaultCamcorderConfig() // N=15, M=3
	want := "IBBPBBPBBPBBPBB"
	var got strings.Builder
	for f := 0; f < 15; f++ {
		got.WriteByte(c.frameType(f))
	}
	if got.String() != want {
		t.Fatalf("GOP pattern = %s, want %s", got.String(), want)
	}
}

func TestSyntheticTraceMatchesPaperDistributions(t *testing.T) {
	cfg := DefaultSyntheticConfig()
	cfg.Duration = 4 * 3600 // long trace for tight statistics
	tr, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Statistics()
	if st.Idle.Min < 5 || st.Idle.Max > 25 {
		t.Errorf("idle range [%v, %v], want within [5, 25]", st.Idle.Min, st.Idle.Max)
	}
	if math.Abs(st.Idle.Mean-15) > 0.5 {
		t.Errorf("idle mean = %v, want ≈15", st.Idle.Mean)
	}
	if st.Active.Min < 2 || st.Active.Max > 4 {
		t.Errorf("active range [%v, %v], want within [2, 4]", st.Active.Min, st.Active.Max)
	}
	if st.ActiveCurrent.Min < 1 || st.ActiveCurrent.Max > 16.0/12 {
		t.Errorf("active current range [%v, %v], want within [1, 1.333]",
			st.ActiveCurrent.Min, st.ActiveCurrent.Max)
	}
}

func TestSyntheticConfigValidation(t *testing.T) {
	mod := func(f func(*SyntheticConfig)) SyntheticConfig {
		c := DefaultSyntheticConfig()
		f(&c)
		return c
	}
	bad := []SyntheticConfig{
		mod(func(c *SyntheticConfig) { c.Duration = -1 }),
		mod(func(c *SyntheticConfig) { c.IdleMax = c.IdleMin }),
		mod(func(c *SyntheticConfig) { c.ActiveMin = 0; c.ActiveMax = 0 }),
		mod(func(c *SyntheticConfig) { c.PowerMax = 1 }),
		mod(func(c *SyntheticConfig) { c.V = 0 }),
	}
	for k, c := range bad {
		if _, err := Synthetic(c); err == nil {
			t.Errorf("case %d: invalid config accepted", k)
		}
	}
}

func TestPeriodic(t *testing.T) {
	tr := Periodic(5, 20, 10, 1.2)
	if tr.Len() != 5 {
		t.Fatalf("len = %d", tr.Len())
	}
	if tr.Duration() != 150 {
		t.Fatalf("duration = %v, want 150", tr.Duration())
	}
	for _, s := range tr.Slots {
		if s.Idle != 20 || s.Active != 10 || s.ActiveCurrent != 1.2 {
			t.Fatalf("bad slot %+v", s)
		}
	}
}

func TestSlotValidate(t *testing.T) {
	bad := []Slot{
		{Idle: -1, Active: 1, ActiveCurrent: 1},
		{Idle: 1, Active: -1, ActiveCurrent: 1},
		{Idle: 1, Active: 1, ActiveCurrent: -1},
	}
	for k, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid slot accepted", k)
		}
	}
	if err := (Slot{Idle: 1, Active: 1, ActiveCurrent: 1}).Validate(); err != nil {
		t.Errorf("valid slot rejected: %v", err)
	}
}

func TestTraceSeries(t *testing.T) {
	tr := &Trace{Slots: []Slot{{Idle: 1, Active: 2, ActiveCurrent: 3}, {Idle: 4, Active: 5, ActiveCurrent: 6}}}
	if got := tr.IdleLengths(); got[0] != 1 || got[1] != 4 {
		t.Errorf("IdleLengths = %v", got)
	}
	if got := tr.ActiveLengths(); got[0] != 2 || got[1] != 5 {
		t.Errorf("ActiveLengths = %v", got)
	}
	if got := tr.ActiveCurrents(); got[0] != 3 || got[1] != 6 {
		t.Errorf("ActiveCurrents = %v", got)
	}
}

func TestClip(t *testing.T) {
	tr := Periodic(10, 10, 10, 1)
	clipped := tr.Clip(45)
	if clipped.Len() != 3 {
		t.Fatalf("clip len = %d, want 3 (crosses 45 s during slot 3)", clipped.Len())
	}
	if clipped.Duration() != 60 {
		t.Fatalf("clip duration = %v", clipped.Duration())
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := Periodic(3, 8, 3, 1.2)
	tr.Name = "round-trip"
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != tr.Name || back.Len() != tr.Len() {
		t.Fatalf("round trip lost data: %+v", back)
	}
	for k := range tr.Slots {
		if tr.Slots[k] != back.Slots[k] {
			t.Fatalf("slot %d differs", k)
		}
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader(`{"name":"x","slots":[{"idle":-1,"active":1,"activeCurrent":1}]}`)); err == nil {
		t.Fatal("invalid slot accepted")
	}
	if _, err := ReadJSON(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr, err := Camcorder(DefaultCamcorderConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("lengths differ: %d vs %d", back.Len(), tr.Len())
	}
	for k := range tr.Slots {
		if tr.Slots[k] != back.Slots[k] {
			t.Fatalf("slot %d differs after CSV round trip", k)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadCSV(strings.NewReader("a,b,c\n1,2,3\n")); err == nil {
		t.Error("wrong header accepted")
	}
	if _, err := ReadCSV(strings.NewReader("idle_s,active_s,active_current_a\nx,2,3\n")); err == nil {
		t.Error("non-numeric field accepted")
	}
	if _, err := ReadCSV(strings.NewReader("idle_s,active_s,active_current_a\n-1,2,3\n")); err == nil {
		t.Error("invalid slot accepted")
	}
}

// Property: any generated synthetic trace validates and covers the
// requested duration.
func TestSyntheticProperty(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := DefaultSyntheticConfig()
		cfg.Seed = seed
		cfg.Duration = 300
		tr, err := Synthetic(cfg)
		if err != nil || tr.Validate() != nil {
			return false
		}
		return tr.Duration() >= 300
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStatisticsDutyCycle(t *testing.T) {
	tr := Periodic(4, 15, 5, 1)
	st := tr.Statistics()
	if math.Abs(st.ActiveDutyCycle-0.25) > 1e-12 {
		t.Fatalf("duty cycle = %v, want 0.25", st.ActiveDutyCycle)
	}
}

func TestHeavyTailDistribution(t *testing.T) {
	cfg := DefaultHeavyTailConfig()
	cfg.Duration = 4 * 3600
	tr, err := HeavyTail(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Statistics()
	if st.Idle.Min < 3-1e-9 {
		t.Errorf("idle below Pareto scale: %v", st.Idle.Min)
	}
	if st.Idle.Max > 120+1e-9 {
		t.Errorf("idle above cap: %v", st.Idle.Max)
	}
	// Heavy tail: median well below mean.
	if st.Idle.Median >= st.Idle.Mean {
		t.Errorf("median %v >= mean %v — not heavy-tailed", st.Idle.Median, st.Idle.Mean)
	}
	// Pareto(3, 1.6) mean = 3·1.6/0.6 = 8 (slightly reduced by the cap).
	if st.Idle.Mean < 6 || st.Idle.Mean > 10 {
		t.Errorf("idle mean = %v, want ≈8", st.Idle.Mean)
	}
	// A meaningful fraction of idles sits below the Exp 2 break-even
	// time (10 s) and a meaningful tail above it.
	below := 0
	for _, v := range tr.IdleLengths() {
		if v < 10 {
			below++
		}
	}
	frac := float64(below) / float64(tr.Len())
	if frac < 0.5 || frac > 0.95 {
		t.Errorf("fraction of idles below Tbe = %v, want a genuine mix", frac)
	}
}

func TestHeavyTailValidation(t *testing.T) {
	mod := func(f func(*HeavyTailConfig)) HeavyTailConfig {
		c := DefaultHeavyTailConfig()
		f(&c)
		return c
	}
	bad := []HeavyTailConfig{
		mod(func(c *HeavyTailConfig) { c.Duration = 0 }),
		mod(func(c *HeavyTailConfig) { c.IdleXm = 0 }),
		mod(func(c *HeavyTailConfig) { c.IdleAlpha = 1 }),
		mod(func(c *HeavyTailConfig) { c.IdleCap = 2 }),
		mod(func(c *HeavyTailConfig) { c.ActiveMax = c.ActiveMin }),
		mod(func(c *HeavyTailConfig) { c.PowerMin = 0; c.PowerMax = 0 }),
		mod(func(c *HeavyTailConfig) { c.V = 0 }),
	}
	for k, c := range bad {
		if _, err := HeavyTail(c); err == nil {
			t.Errorf("case %d: invalid config accepted", k)
		}
	}
}

func TestHeavyTailDeterminism(t *testing.T) {
	a, _ := HeavyTail(DefaultHeavyTailConfig())
	b, _ := HeavyTail(DefaultHeavyTailConfig())
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for k := range a.Slots {
		if a.Slots[k] != b.Slots[k] {
			t.Fatal("not deterministic")
		}
	}
}

func TestSceneCutsIncreaseIdleVariation(t *testing.T) {
	smooth := DefaultCamcorderConfig()
	smooth.SceneCutProb = 0
	cutty := DefaultCamcorderConfig()
	cutty.SceneCutProb = 0.5
	a, err := Camcorder(smooth)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Camcorder(cutty)
	if err != nil {
		t.Fatal(err)
	}
	// Scene cuts produce larger slot-to-slot idle jumps.
	jump := func(tr *Trace) float64 {
		var sum float64
		for k := 1; k < tr.Len(); k++ {
			sum += math.Abs(tr.Slots[k].Idle - tr.Slots[k-1].Idle)
		}
		return sum / float64(tr.Len()-1)
	}
	if jump(b) <= jump(a) {
		t.Errorf("scene cuts should raise idle jumps: %v vs %v", jump(b), jump(a))
	}
	bad := DefaultCamcorderConfig()
	bad.SceneCutProb = 1.5
	if _, err := Camcorder(bad); err == nil {
		t.Error("out-of-range scene-cut probability accepted")
	}
}

func TestBurstyRegimes(t *testing.T) {
	cfg := DefaultBurstyConfig()
	cfg.Duration = 2 * 3600
	tr, err := Bursty(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Bimodal idles: every value in one of the two regime bands.
	busy, calm := 0, 0
	for _, s := range tr.Slots {
		switch {
		case s.Idle >= 2 && s.Idle <= 6:
			busy++
		case s.Idle >= 20 && s.Idle <= 40:
			calm++
		default:
			t.Fatalf("idle %v outside both regimes", s.Idle)
		}
	}
	if busy == 0 || calm == 0 {
		t.Fatalf("missing a regime: busy=%d calm=%d", busy, calm)
	}
	// Strong positive lag-1 correlation of the sleep-worthiness indicator:
	// consecutive slots usually share a regime.
	same := 0
	idles := tr.IdleLengths()
	for k := 1; k < len(idles); k++ {
		if (idles[k] > 10) == (idles[k-1] > 10) {
			same++
		}
	}
	frac := float64(same) / float64(len(idles)-1)
	if frac < 0.75 {
		t.Fatalf("regime persistence = %v, want strongly correlated", frac)
	}
}

func TestBurstyValidation(t *testing.T) {
	mod := func(f func(*BurstyConfig)) BurstyConfig {
		c := DefaultBurstyConfig()
		f(&c)
		return c
	}
	bad := []BurstyConfig{
		mod(func(c *BurstyConfig) { c.Duration = 0 }),
		mod(func(c *BurstyConfig) { c.BusyIdleMax = c.BusyIdleMin }),
		mod(func(c *BurstyConfig) { c.CalmIdleMin = 1 }), // overlaps busy band
		mod(func(c *BurstyConfig) { c.StayProb = 1 }),
		mod(func(c *BurstyConfig) { c.ActiveMax = c.ActiveMin }),
		mod(func(c *BurstyConfig) { c.PowerMax = c.PowerMin }),
		mod(func(c *BurstyConfig) { c.V = 0 }),
	}
	for k, c := range bad {
		if _, err := Bursty(c); err == nil {
			t.Errorf("case %d: invalid config accepted", k)
		}
	}
}

// TestSlotValidateRejectsNonFiniteAndZeroDuration is the regression test
// for crafted trace records: NaN slips past plain sign checks (NaN < 0
// is false), and a slot with zero total duration used to pass validation
// and feed degenerate timestep arithmetic into the storage integrators.
// Both must now be rejected with a typed *ValidationError naming the
// offending field.
func TestSlotValidateRejectsNonFiniteAndZeroDuration(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		s     Slot
		field string
	}{
		{Slot{Idle: nan, Active: 1, ActiveCurrent: 1}, "idle"},
		{Slot{Idle: 1, Active: nan, ActiveCurrent: 1}, "active"},
		{Slot{Idle: 1, Active: 1, ActiveCurrent: nan}, "activeCurrent"},
		{Slot{Idle: inf, Active: 1, ActiveCurrent: 1}, "idle"},
		{Slot{Idle: 1, Active: math.Inf(-1), ActiveCurrent: 1}, "active"},
		{Slot{Idle: -2, Active: 1, ActiveCurrent: 1}, "idle"},
		{Slot{Idle: 0, Active: 0, ActiveCurrent: 1}, "duration"},
	}
	for k, c := range cases {
		err := c.s.Validate()
		var ve *ValidationError
		if !errors.As(err, &ve) {
			t.Errorf("case %d: want *ValidationError, got %v", k, err)
			continue
		}
		if ve.Field != c.field {
			t.Errorf("case %d: field = %q, want %q", k, ve.Field, c.field)
		}
	}
	// Zero idle with positive active is back-to-back work: legal.
	if err := (Slot{Idle: 0, Active: 1, ActiveCurrent: 1}).Validate(); err != nil {
		t.Errorf("zero-idle slot rejected: %v", err)
	}
}

// TestTraceValidatePinsSlotIndex checks trace-level validation reports
// which record is bad, and that the CSV reader rejects crafted NaN rows
// (strconv.ParseFloat accepts the spelling "NaN").
func TestTraceValidatePinsSlotIndex(t *testing.T) {
	tr := &Trace{Slots: []Slot{
		{Idle: 1, Active: 1, ActiveCurrent: 1},
		{Idle: math.NaN(), Active: 1, ActiveCurrent: 1},
	}}
	var ve *ValidationError
	if err := tr.Validate(); !errors.As(err, &ve) || ve.Slot != 1 || ve.Field != "idle" {
		t.Fatalf("trace validate = %v, want slot 1 idle", tr.Validate())
	}
	csv := "idle_s,active_s,active_current_a\n10,NaN,1\n"
	if _, err := ReadCSV(strings.NewReader(csv)); !errors.As(err, &ve) || ve.Field != "active" {
		t.Fatalf("ReadCSV(NaN row) = %v, want *ValidationError on active", err)
	}
}
