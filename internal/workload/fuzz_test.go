package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary CSV input never panics and that every
// accepted trace validates and round-trips.
func FuzzReadCSV(f *testing.F) {
	f.Add("idle_s,active_s,active_current_a\n10,3,1.2\n")
	f.Add("idle_s,active_s,active_current_a\n")
	f.Add("")
	f.Add("idle_s,active_s,active_current_a\n-1,2,3\n")
	f.Add("idle_s,active_s,active_current_a\n1e300,1e300,1e300\n")
	f.Add("a,b\n1,2\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted trace fails to serialize: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip changed length: %d vs %d", back.Len(), tr.Len())
		}
	})
}

// FuzzReadJSON checks the JSON trace path the same way.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"name":"x","slots":[{"idle":1,"active":2,"activeCurrent":3}]}`)
	f.Add(`{}`)
	f.Add(`[]`)
	f.Add(`{"slots":[{"idle":-1}]}`)
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadJSON(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("accepted trace fails validation: %v", err)
		}
	})
}
