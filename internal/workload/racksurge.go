package workload

import (
	"fmt"

	"fcdpm/internal/numeric"
)

// RackSurgeConfig parameterizes a datacenter rack workload: a dense
// baseline of short idles and steady service work, punctuated by surge
// episodes in which the active current multiplies by Intensity — the
// power-surge pattern fuel-cell-powered datacenter studies size their
// storage against. Like Bursty it is a two-regime Markov chain, but the
// regimes modulate power rather than idle length: the rack never goes
// quiet, it gets hungrier.
type RackSurgeConfig struct {
	// Duration is the total trace length in seconds.
	Duration float64
	// IdleMin and IdleMax bound the uniform inter-request gaps. Rack
	// idles are short — well under any sleep threshold — so surges
	// stress the source and storage, not the DPM policy.
	IdleMin, IdleMax float64
	// ActiveMin and ActiveMax bound the uniform service-burst length.
	ActiveMin, ActiveMax float64
	// PowerMin and PowerMax bound the uniform baseline active power
	// (watts at V) outside surge episodes.
	PowerMin, PowerMax float64
	// Intensity multiplies the active current during a surge episode.
	// 1 disables surges entirely; 2 doubles draw.
	Intensity float64
	// SurgeProb is the per-slot probability of a baseline slot starting
	// a surge episode.
	SurgeProb float64
	// StayProb is the per-slot probability of a surge episode
	// continuing (episode length geometric with mean 1/(1−StayProb)).
	StayProb float64
	// V converts power to current.
	V float64
	// Seed drives the deterministic generator.
	Seed uint64
}

// DefaultRackSurgeConfig returns a rack that is busy (idles 1–3 s,
// bursts 4–8 s) at a baseline of 15–25 W on the 12 V bus, with surge
// episodes roughly every 20 slots lasting ~5 slots at twice the draw.
func DefaultRackSurgeConfig() RackSurgeConfig {
	return RackSurgeConfig{
		Duration: 28 * 60,
		IdleMin:  1, IdleMax: 3,
		ActiveMin: 4, ActiveMax: 8,
		PowerMin: 15, PowerMax: 25,
		Intensity: 2,
		SurgeProb: 0.05,
		StayProb:  0.8,
		V:         12,
		Seed:      5,
	}
}

// Validate reports configuration errors.
func (c RackSurgeConfig) Validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("workload: non-positive duration %v", c.Duration)
	case c.IdleMin <= 0 || c.IdleMax <= c.IdleMin:
		return fmt.Errorf("workload: bad idle bounds [%v, %v]", c.IdleMin, c.IdleMax)
	case c.ActiveMin <= 0 || c.ActiveMax <= c.ActiveMin:
		return fmt.Errorf("workload: bad active bounds [%v, %v]", c.ActiveMin, c.ActiveMax)
	case c.PowerMin <= 0 || c.PowerMax <= c.PowerMin:
		return fmt.Errorf("workload: bad power bounds [%v, %v]", c.PowerMin, c.PowerMax)
	case c.Intensity < 1:
		return fmt.Errorf("workload: surge intensity %v below 1", c.Intensity)
	case c.SurgeProb < 0 || c.SurgeProb >= 1:
		return fmt.Errorf("workload: surge probability %v outside [0, 1)", c.SurgeProb)
	case c.StayProb < 0 || c.StayProb >= 1:
		return fmt.Errorf("workload: stay probability %v outside [0, 1)", c.StayProb)
	case c.V <= 0:
		return fmt.Errorf("workload: non-positive voltage %v", c.V)
	}
	return nil
}

// RackSurge generates the surge-modulated rack trace.
func RackSurge(cfg RackSurgeConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := numeric.NewRNG(cfg.Seed)
	tr := &Trace{Name: fmt.Sprintf("racksurge(seed=%d,x%g)", cfg.Seed, cfg.Intensity)}
	surge := false
	var elapsed float64
	for elapsed < cfg.Duration {
		if surge {
			surge = rng.Float64() < cfg.StayProb
		} else {
			surge = rng.Float64() < cfg.SurgeProb
		}
		cur := rng.Uniform(cfg.PowerMin, cfg.PowerMax) / cfg.V
		if surge {
			cur *= cfg.Intensity
		}
		s := Slot{
			Idle:          rng.Uniform(cfg.IdleMin, cfg.IdleMax),
			Active:        rng.Uniform(cfg.ActiveMin, cfg.ActiveMax),
			ActiveCurrent: cur,
		}
		tr.Slots = append(tr.Slots, s)
		elapsed += s.Idle + s.Active
	}
	return tr, nil
}
