package workload

import (
	"fmt"
	"math"

	"fcdpm/internal/device"
	"fcdpm/internal/numeric"
)

// CamcorderConfig parameterizes the MPEG encode/write trace generator that
// substitutes for the paper's real 28-minute DVD-camcorder trace (see
// DESIGN.md §2). The camcorder encodes video into a 16 MB buffer (idle
// period for the DVD drive, 8–20 s depending on MPEG frame characteristics)
// and then writes the buffer to disc at 5.28 MB/s (active period, 3.03 s).
type CamcorderConfig struct {
	// Duration is the total trace length in seconds (paper: 28 min).
	Duration float64
	// BufferMB and WriteMBps set the active period: Active = BufferMB/WriteMBps.
	BufferMB, WriteMBps float64
	// FrameRate is the encoder frame rate in frames/s.
	FrameRate float64
	// GOPLength and GOPPattern describe the MPEG group-of-pictures: an I
	// frame every GOPLength frames with P frames every Mth position and B
	// frames between (classic IBBPBBP...).
	GOPLength, M int
	// MeanIBits is the average I-frame size in bits; P and B frames are
	// scaled fractions of it.
	MeanIBits float64
	// PFraction and BFraction scale P/B frame sizes relative to I.
	PFraction, BFraction float64
	// ComplexityWalk is the per-GOP scene-complexity random-walk step as a
	// fraction of the current complexity; complexity is clamped so idle
	// periods stay within [MinIdle, MaxIdle].
	ComplexityWalk float64
	// SceneCutProb is the per-slot probability of a scene cut, which
	// re-draws the complexity uniformly over its admissible range —
	// modelling the abrupt bitrate changes real MPEG encoders see at
	// shot boundaries.
	SceneCutProb float64
	// MinIdle and MaxIdle bound the idle-period (buffer-fill) length
	// (paper: 8 s to 20 s).
	MinIdle, MaxIdle float64
	// Seed drives the deterministic generator.
	Seed uint64
}

// DefaultCamcorderConfig returns the Experiment 1 configuration.
func DefaultCamcorderConfig() CamcorderConfig {
	return CamcorderConfig{
		Duration:       28 * 60,
		BufferMB:       16,
		WriteMBps:      5.28,
		FrameRate:      30,
		GOPLength:      15,
		M:              3,
		MeanIBits:      400e3,
		PFraction:      0.45,
		BFraction:      0.20,
		ComplexityWalk: 0.18,
		SceneCutProb:   0.08,
		MinIdle:        8,
		MaxIdle:        20,
		Seed:           1,
	}
}

// Validate reports configuration errors.
func (c CamcorderConfig) Validate() error {
	switch {
	case c.Duration <= 0:
		return fmt.Errorf("workload: non-positive duration %v", c.Duration)
	case c.BufferMB <= 0 || c.WriteMBps <= 0:
		return fmt.Errorf("workload: buffer/write rate must be positive")
	case c.FrameRate <= 0:
		return fmt.Errorf("workload: non-positive frame rate %v", c.FrameRate)
	case c.GOPLength < 1 || c.M < 1:
		return fmt.Errorf("workload: bad GOP structure N=%d M=%d", c.GOPLength, c.M)
	case c.MeanIBits <= 0:
		return fmt.Errorf("workload: non-positive I-frame size")
	case c.MinIdle <= 0 || c.MaxIdle <= c.MinIdle:
		return fmt.Errorf("workload: bad idle bounds [%v, %v]", c.MinIdle, c.MaxIdle)
	case c.SceneCutProb < 0 || c.SceneCutProb > 1:
		return fmt.Errorf("workload: scene-cut probability %v outside [0,1]", c.SceneCutProb)
	}
	return nil
}

// Camcorder generates the MPEG encode/write trace. The encoder produces
// frames whose sizes follow the GOP structure modulated by a slowly varying
// scene complexity plus per-frame noise; the idle period of a slot is the
// time for the accumulated bitstream to fill the buffer, clamped to the
// configured bounds; every active period writes the buffer at the DVD
// speed with the RUN-mode current.
func Camcorder(cfg CamcorderConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := numeric.NewRNG(cfg.Seed)
	tr := &Trace{Name: fmt.Sprintf("camcorder-mpeg(seed=%d)", cfg.Seed)}

	active := cfg.BufferMB / cfg.WriteMBps
	bufferBits := cfg.BufferMB * 8e6

	// The complexity level that fills the buffer in the middle of the
	// idle band, so the walk starts centred.
	midIdle := (cfg.MinIdle + cfg.MaxIdle) / 2
	complexity := 1.0
	// Bits per second at complexity 1.
	gopBits := cfg.gopBits()
	bps1 := gopBits * cfg.FrameRate / float64(cfg.GOPLength)
	complexity = bufferBits / (bps1 * midIdle)

	minC := bufferBits / (bps1 * cfg.MaxIdle)
	maxC := bufferBits / (bps1 * cfg.MinIdle)

	var elapsed float64
	for elapsed < cfg.Duration {
		// Scene cut: a shot boundary re-draws the complexity outright;
		// otherwise it random-walks.
		if rng.Float64() < cfg.SceneCutProb {
			complexity = rng.Uniform(minC, maxC)
		} else {
			complexity *= 1 + cfg.ComplexityWalk*(2*rng.Float64()-1)
		}
		complexity = numeric.Clamp(complexity, minC, maxC)

		// Accumulate frames until the buffer fills.
		var bits, seconds float64
		frame := 0
		for bits < bufferBits {
			fb := cfg.frameBits(frame, complexity, rng)
			bits += fb
			seconds += 1 / cfg.FrameRate
			frame++
			if seconds > 2*cfg.MaxIdle {
				break // safety: cannot happen with clamped complexity
			}
		}
		idle := numeric.Clamp(seconds, cfg.MinIdle, cfg.MaxIdle)
		tr.Slots = append(tr.Slots, Slot{
			Idle:          idle,
			Active:        active,
			ActiveCurrent: device.CamcorderRunCurrent,
		})
		elapsed += idle + active
	}
	return tr, nil
}

// gopBits returns the bit budget of one GOP at complexity 1.
func (c CamcorderConfig) gopBits() float64 {
	var bits float64
	for f := 0; f < c.GOPLength; f++ {
		switch c.frameType(f) {
		case 'I':
			bits += c.MeanIBits
		case 'P':
			bits += c.MeanIBits * c.PFraction
		default:
			bits += c.MeanIBits * c.BFraction
		}
	}
	return bits
}

// frameType returns the MPEG frame type at GOP position f.
func (c CamcorderConfig) frameType(f int) byte {
	pos := f % c.GOPLength
	if pos == 0 {
		return 'I'
	}
	if pos%c.M == 0 {
		return 'P'
	}
	return 'B'
}

// frameBits draws the size of one frame: the type budget scaled by scene
// complexity with ±15 % per-frame noise.
func (c CamcorderConfig) frameBits(f int, complexity float64, rng *numeric.RNG) float64 {
	var base float64
	switch c.frameType(f) {
	case 'I':
		base = c.MeanIBits
	case 'P':
		base = c.MeanIBits * c.PFraction
	default:
		base = c.MeanIBits * c.BFraction
	}
	noise := 1 + 0.15*(2*rng.Float64()-1)
	return math.Max(1, base*complexity*noise)
}
