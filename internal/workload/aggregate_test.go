package workload

import (
	"math"
	"testing"
)

func TestAggregateMergesGroups(t *testing.T) {
	tr := &Trace{Slots: []Slot{
		{Idle: 10, Active: 2, ActiveCurrent: 1.0},
		{Idle: 8, Active: 4, ActiveCurrent: 1.3},
		{Idle: 6, Active: 2, ActiveCurrent: 0.7},
	}}
	agg, err := Aggregate(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Len() != 2 {
		t.Fatalf("len = %d, want 2 (group of 2 + trailing 1)", agg.Len())
	}
	first := agg.Slots[0]
	if first.Idle != 18 || first.Active != 6 {
		t.Fatalf("merged slot = %+v", first)
	}
	// Charge-weighted current: (1.0·2 + 1.3·4)/6 = 1.2.
	if math.Abs(first.ActiveCurrent-1.2) > 1e-12 {
		t.Fatalf("merged current = %v, want 1.2", first.ActiveCurrent)
	}
	// Totals preserved.
	if math.Abs(agg.Duration()-tr.Duration()) > 1e-9 {
		t.Fatal("duration changed")
	}
	var origCharge, aggCharge float64
	for _, s := range tr.Slots {
		origCharge += s.ActiveCurrent * s.Active
	}
	for _, s := range agg.Slots {
		aggCharge += s.ActiveCurrent * s.Active
	}
	if math.Abs(origCharge-aggCharge) > 1e-9 {
		t.Fatal("active charge changed")
	}
}

func TestAggregateIdentity(t *testing.T) {
	tr := Periodic(4, 10, 3, 1.2)
	agg, err := Aggregate(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Len() != 4 {
		t.Fatalf("len = %d", agg.Len())
	}
	for k := range tr.Slots {
		if tr.Slots[k] != agg.Slots[k] {
			t.Fatalf("slot %d changed under k=1", k)
		}
	}
	if _, err := Aggregate(tr, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestMaxDeferral(t *testing.T) {
	tr := &Trace{Slots: []Slot{
		{Idle: 10, Active: 2, ActiveCurrent: 1},
		{Idle: 8, Active: 2, ActiveCurrent: 1},
		{Idle: 6, Active: 2, ActiveCurrent: 1},
	}}
	// k=1: no deferral.
	d, err := MaxDeferral(tr, 1)
	if err != nil || d != 0 {
		t.Fatalf("k=1 deferral = %v, %v", d, err)
	}
	// k=3: the first task waits for the other two idles: 8 + 6 = 14.
	d, err = MaxDeferral(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-14) > 1e-12 {
		t.Fatalf("k=3 deferral = %v, want 14", d)
	}
	// k=2: first group's first task waits for idle2 = 8.
	d, err = MaxDeferral(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-8) > 1e-12 {
		t.Fatalf("k=2 deferral = %v, want 8", d)
	}
	if _, err := MaxDeferral(tr, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestAggregateDeferralMonotone(t *testing.T) {
	cfg := DefaultCamcorderConfig()
	cfg.Duration = 600
	tr, err := Camcorder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, k := range []int{1, 2, 4, 8} {
		d, err := MaxDeferral(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		if d < prev {
			t.Fatalf("deferral not monotone in k at %d: %v < %v", k, d, prev)
		}
		prev = d
	}
}
