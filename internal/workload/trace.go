// Package workload defines the load timing profile of the embedded system —
// a sequence of task slots, each an idle period followed by an active
// period (paper §3.1) — together with generators for the paper's two
// experiments and trace serialization.
package workload

import (
	"errors"
	"fmt"
	"math"

	"fcdpm/internal/numeric"
)

// Slot is one task slot: an idle period of length Idle seconds followed by
// an active period of length Active seconds during which the load draws
// ActiveCurrent amps. The idle-period current is not part of the trace; it
// is determined by the device model and the DPM policy's sleep decision.
type Slot struct {
	Idle          float64 `json:"idle"`
	Active        float64 `json:"active"`
	ActiveCurrent float64 `json:"activeCurrent"`
}

// Validate reports whether the slot is physically meaningful: every
// field must be finite and non-negative, and the slot must span positive
// time (a zero idle period is legal — back-to-back work — but a slot
// whose total duration is non-positive would let crafted traces drive
// negative or NaN timestep arithmetic into the storage integrators,
// which panic on negative durations). Violations surface as a typed
// *ValidationError so callers can map them to client faults.
func (s Slot) Validate() error {
	switch {
	case s.Idle < 0 || !isFinite(s.Idle):
		return &ValidationError{Slot: -1, Field: "idle", Value: s.Idle}
	case s.Active < 0 || !isFinite(s.Active):
		return &ValidationError{Slot: -1, Field: "active", Value: s.Active}
	case s.ActiveCurrent < 0 || !isFinite(s.ActiveCurrent):
		return &ValidationError{Slot: -1, Field: "activeCurrent", Value: s.ActiveCurrent}
	case s.Idle+s.Active <= 0:
		return &ValidationError{Slot: -1, Field: "duration", Value: s.Idle + s.Active}
	}
	return nil
}

// isFinite reports whether v is neither NaN nor an infinity. NaN slips
// through plain sign checks (NaN < 0 is false), so finiteness must be
// tested explicitly.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Trace is a sequence of task slots with a descriptive name.
type Trace struct {
	Name  string `json:"name"`
	Slots []Slot `json:"slots"`
}

// Validate checks every slot, pinning errors to their slot index.
func (t *Trace) Validate() error {
	for k, s := range t.Slots {
		if err := s.Validate(); err != nil {
			var ve *ValidationError
			if errors.As(err, &ve) {
				return ve.at(k)
			}
			return fmt.Errorf("slot %d: %w", k, err)
		}
	}
	return nil
}

// Duration returns the total trace length in seconds (idle + active,
// excluding DPM transition overheads, which depend on policy decisions).
func (t *Trace) Duration() float64 {
	var d float64
	for _, s := range t.Slots {
		d += s.Idle + s.Active
	}
	return d
}

// Len returns the number of slots.
func (t *Trace) Len() int { return len(t.Slots) }

// IdleLengths returns the idle-period series, the input to idle-period
// predictors.
func (t *Trace) IdleLengths() []float64 {
	out := make([]float64, len(t.Slots))
	for k, s := range t.Slots {
		out[k] = s.Idle
	}
	return out
}

// ActiveLengths returns the active-period series.
func (t *Trace) ActiveLengths() []float64 {
	out := make([]float64, len(t.Slots))
	for k, s := range t.Slots {
		out[k] = s.Active
	}
	return out
}

// ActiveCurrents returns the active-current series.
func (t *Trace) ActiveCurrents() []float64 {
	out := make([]float64, len(t.Slots))
	for k, s := range t.Slots {
		out[k] = s.ActiveCurrent
	}
	return out
}

// Stats summarizes a trace for reports.
type Stats struct {
	Slots           int
	Duration        float64
	Idle            numeric.Summary
	Active          numeric.Summary
	ActiveCurrent   numeric.Summary
	ActiveDutyCycle float64 // fraction of time spent active
}

// Statistics computes summary statistics of the trace.
func (t *Trace) Statistics() Stats {
	st := Stats{
		Slots:         t.Len(),
		Duration:      t.Duration(),
		Idle:          numeric.Summarize(t.IdleLengths()),
		Active:        numeric.Summarize(t.ActiveLengths()),
		ActiveCurrent: numeric.Summarize(t.ActiveCurrents()),
	}
	if st.Duration > 0 {
		st.ActiveDutyCycle = st.Active.Sum / st.Duration
	}
	return st
}

// Clip returns a prefix of the trace not exceeding maxDuration seconds of
// idle+active time. At least one slot is kept if the trace is non-empty.
func (t *Trace) Clip(maxDuration float64) *Trace {
	out := &Trace{Name: t.Name}
	var d float64
	for _, s := range t.Slots {
		d += s.Idle + s.Active
		out.Slots = append(out.Slots, s)
		if d >= maxDuration {
			break
		}
	}
	return out
}
