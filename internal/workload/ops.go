package workload

import (
	"fmt"

	"fcdpm/internal/numeric"
)

// Concat joins traces end to end under a new name.
func Concat(name string, traces ...*Trace) *Trace {
	out := &Trace{Name: name}
	for _, t := range traces {
		out.Slots = append(out.Slots, t.Slots...)
	}
	return out
}

// Repeat returns the trace tiled n times. n <= 0 yields an empty trace.
func (t *Trace) Repeat(n int) *Trace {
	out := &Trace{Name: fmt.Sprintf("%s x%d", t.Name, n)}
	for k := 0; k < n; k++ {
		out.Slots = append(out.Slots, t.Slots...)
	}
	return out
}

// ScaleTime returns a copy with all idle and active periods multiplied by
// factor. It panics on a non-positive factor (a construction error).
func (t *Trace) ScaleTime(factor float64) *Trace {
	if factor <= 0 {
		panic(fmt.Sprintf("workload: non-positive time scale %v", factor))
	}
	out := &Trace{Name: fmt.Sprintf("%s (time x%g)", t.Name, factor)}
	out.Slots = make([]Slot, len(t.Slots))
	for k, s := range t.Slots {
		out.Slots[k] = Slot{Idle: s.Idle * factor, Active: s.Active * factor, ActiveCurrent: s.ActiveCurrent}
	}
	return out
}

// ScaleCurrent returns a copy with all active currents multiplied by
// factor. It panics on a negative factor.
func (t *Trace) ScaleCurrent(factor float64) *Trace {
	if factor < 0 {
		panic(fmt.Sprintf("workload: negative current scale %v", factor))
	}
	out := &Trace{Name: fmt.Sprintf("%s (current x%g)", t.Name, factor)}
	out.Slots = make([]Slot, len(t.Slots))
	for k, s := range t.Slots {
		out.Slots[k] = Slot{Idle: s.Idle, Active: s.Active, ActiveCurrent: s.ActiveCurrent * factor}
	}
	return out
}

// PerturbIdle returns a copy whose idle periods are multiplied by
// independent uniform factors in [1-frac, 1+frac] — a robustness knob for
// predictor studies. frac must lie in [0, 1).
func (t *Trace) PerturbIdle(seed uint64, frac float64) (*Trace, error) {
	if frac < 0 || frac >= 1 {
		return nil, fmt.Errorf("workload: perturbation fraction %v outside [0, 1)", frac)
	}
	rng := numeric.NewRNG(seed)
	out := &Trace{Name: fmt.Sprintf("%s (idle ±%.0f%%)", t.Name, frac*100)}
	out.Slots = make([]Slot, len(t.Slots))
	for k, s := range t.Slots {
		f := 1 + frac*(2*rng.Float64()-1)
		out.Slots[k] = Slot{Idle: s.Idle * f, Active: s.Active, ActiveCurrent: s.ActiveCurrent}
	}
	return out, nil
}

// Shuffle returns a copy with the slot order permuted (Fisher–Yates under
// the given seed). Slot contents are preserved, so aggregate statistics
// are identical while temporal correlation is destroyed — the knob for
// testing history-based predictors.
func (t *Trace) Shuffle(seed uint64) *Trace {
	rng := numeric.NewRNG(seed)
	out := &Trace{Name: fmt.Sprintf("%s (shuffled)", t.Name)}
	out.Slots = make([]Slot, len(t.Slots))
	copy(out.Slots, t.Slots)
	for i := len(out.Slots) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		out.Slots[i], out.Slots[j] = out.Slots[j], out.Slots[i]
	}
	return out
}
