package workload

import "testing"

func TestRackSurgeEpisodes(t *testing.T) {
	cfg := DefaultRackSurgeConfig()
	cfg.Duration = 2 * 3600
	tr, err := RackSurge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Bimodal currents: every slot in the baseline band or the surged
	// band (Intensity 2 doubles 15–25 W → 30–50 W at 12 V).
	base, surged := 0, 0
	baseHi := cfg.PowerMax / cfg.V
	for _, s := range tr.Slots {
		switch {
		case s.ActiveCurrent >= cfg.PowerMin/cfg.V && s.ActiveCurrent <= baseHi:
			base++
		case s.ActiveCurrent >= cfg.Intensity*cfg.PowerMin/cfg.V && s.ActiveCurrent <= cfg.Intensity*baseHi:
			surged++
		default:
			t.Fatalf("current %v outside both bands", s.ActiveCurrent)
		}
		if s.Idle < cfg.IdleMin || s.Idle > cfg.IdleMax {
			t.Fatalf("idle %v outside [%v, %v]", s.Idle, cfg.IdleMin, cfg.IdleMax)
		}
	}
	if base == 0 || surged == 0 {
		t.Fatalf("missing a regime: base=%d surged=%d", base, surged)
	}
	// Surges are episodes, not isolated slots: the surged fraction must
	// exceed the single-slot entry probability by the geometric dwell.
	frac := float64(surged) / float64(base+surged)
	if frac < 1.5*cfg.SurgeProb {
		t.Errorf("surged fraction %v shows no dwell (entry prob %v)", frac, cfg.SurgeProb)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRackSurgeIntensityOneIsFlat(t *testing.T) {
	cfg := DefaultRackSurgeConfig()
	cfg.Intensity = 1
	tr, err := RackSurge(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Slots {
		if s.ActiveCurrent < cfg.PowerMin/cfg.V-1e-12 || s.ActiveCurrent > cfg.PowerMax/cfg.V+1e-12 {
			t.Fatalf("intensity 1 produced surged current %v", s.ActiveCurrent)
		}
	}
}

func TestRackSurgeValidation(t *testing.T) {
	mod := func(f func(*RackSurgeConfig)) RackSurgeConfig {
		c := DefaultRackSurgeConfig()
		f(&c)
		return c
	}
	bad := []RackSurgeConfig{
		mod(func(c *RackSurgeConfig) { c.Duration = 0 }),
		mod(func(c *RackSurgeConfig) { c.IdleMax = c.IdleMin }),
		mod(func(c *RackSurgeConfig) { c.ActiveMax = c.ActiveMin }),
		mod(func(c *RackSurgeConfig) { c.PowerMax = c.PowerMin }),
		mod(func(c *RackSurgeConfig) { c.Intensity = 0.5 }),
		mod(func(c *RackSurgeConfig) { c.SurgeProb = 1 }),
		mod(func(c *RackSurgeConfig) { c.StayProb = 1 }),
		mod(func(c *RackSurgeConfig) { c.V = 0 }),
	}
	for k, c := range bad {
		if _, err := RackSurge(c); err == nil {
			t.Errorf("case %d: invalid config accepted", k)
		}
	}
}

func TestRackSurgeDeterminism(t *testing.T) {
	a, _ := RackSurge(DefaultRackSurgeConfig())
	b, _ := RackSurge(DefaultRackSurgeConfig())
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for k := range a.Slots {
		if a.Slots[k] != b.Slots[k] {
			t.Fatal("not deterministic")
		}
	}
}
