package version

import (
	"strings"
	"testing"
)

func TestGetStable(t *testing.T) {
	a, b := Get(), Get()
	if a != b {
		t.Fatalf("Get not stable: %+v vs %+v", a, b)
	}
	if a.Module == "" || a.Version == "" {
		t.Fatalf("missing module/version: %+v", a)
	}
}

func TestStringAndEngine(t *testing.T) {
	i := Info{Module: "fcdpm", Version: "v1.2.3",
		Revision: "0123456789abcdef0123", Modified: true, Go: "go1.22"}
	s := i.String()
	for _, want := range []string{"fcdpm v1.2.3", "rev 0123456789ab", "+dirty", "go1.22"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if e := Engine(); e == "" {
		t.Fatal("Engine() empty")
	}
	if Engine() != Engine() {
		t.Fatal("Engine not stable")
	}
}
