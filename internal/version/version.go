// Package version reports what build of fcdpm is running: the module
// version and the VCS revision baked in by the Go toolchain. The serving
// subsystem folds this into its result-cache keys, so a report computed
// by one engine build is never served as the answer for another.
package version

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// Info describes the running build.
type Info struct {
	// Module is the main module path ("fcdpm").
	Module string `json:"module"`
	// Version is the module version ("(devel)" for source builds).
	Version string `json:"version"`
	// Revision is the VCS commit hash, when the build carried one.
	Revision string `json:"revision,omitempty"`
	// Time is the VCS commit time (RFC 3339), when known.
	Time string `json:"time,omitempty"`
	// Modified reports a dirty worktree at build time.
	Modified bool `json:"modified,omitempty"`
	// Go is the toolchain version that produced the binary.
	Go string `json:"go"`
}

// get reads the build info once; the result never changes in-process.
var get = sync.OnceValue(func() Info {
	info := Info{Module: "fcdpm", Version: "(devel)"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Path != "" {
		info.Module = bi.Main.Path
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	info.Go = bi.GoVersion
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
})

// Get returns the build description of the running binary.
func Get() Info { return get() }

// String renders the build for humans: "fcdpm (devel) rev 1a2b3c4d+dirty
// (go1.22)".
func (i Info) String() string {
	s := fmt.Sprintf("%s %s", i.Module, i.Version)
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if i.Modified {
			s += "+dirty"
		}
	}
	if i.Go != "" {
		s += fmt.Sprintf(" (%s)", i.Go)
	}
	return s
}

// Engine is the compact build tag folded into content-addressed result
// cache keys: identical scenario specs evaluated by different engine
// builds must hash to different addresses.
func Engine() string {
	i := Get()
	tag := i.Version
	if i.Revision != "" {
		tag += "@" + i.Revision
		if i.Modified {
			tag += "+dirty"
		}
	}
	return tag
}
