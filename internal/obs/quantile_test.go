package obs

import (
	"math"
	"testing"
)

// TestHistogramQuantileTable pins the bounded-bucket interpolation on a
// hand-computable layout: bounds {1, 2, 4}, so buckets are
// (-inf,1], (1,2], (2,4], (4,+inf).
func TestHistogramQuantileTable(t *testing.T) {
	build := func(obs ...float64) *Histogram {
		h := newHistogram([]float64{1, 2, 4})
		for _, v := range obs {
			h.Observe(v)
		}
		return h
	}

	cases := []struct {
		name string
		h    *Histogram
		q    float64
		want float64
	}{
		// 10 observations in (1,2]: rank q·10 interpolates linearly
		// across that bucket.
		{"uniform-mid-p50", build(1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5), 0.5, 1.5},
		{"uniform-mid-p90", build(1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5), 0.9, 1.9},
		{"uniform-mid-p100", build(1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5, 1.5), 1.0, 2},
		// 4 observations, one per bucket: cum counts 1,2,3,4.
		// p25 → rank 1, top of bucket 0 → 1. p75 → rank 3, top of
		// bucket (2,4] → 4.
		{"spread-p25", build(0.5, 1.5, 3, 9), 0.25, 1},
		{"spread-p75", build(0.5, 1.5, 3, 9), 0.75, 4},
		// Rank halfway into bucket (2,4]: 2 + (2.5-2)/1 · 2 = 3.
		{"spread-p625", build(0.5, 1.5, 3, 9), 0.625, 3},
		// Overflow bucket clamps to the top finite bound.
		{"overflow-clamps", build(9, 9, 9), 0.99, 4},
		// First bucket interpolates up from zero.
		{"first-bucket-p50", build(0.2, 0.4), 0.5, 0.5},
		// q clamps.
		// Rank 0 resolves to the first bucket's upper edge (its count is
		// zero, so there is nothing to interpolate inside it).
		{"q-clamped-low", build(1.5, 1.5), -3, 1},
		{"q-clamped-high", build(9), 7, 4},
		// Empty histogram reports zero.
		{"empty", build(), 0.5, 0},
	}
	for _, tc := range cases {
		got := tc.h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: Quantile(%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
}

// TestHistogramQuantileLowEdge: rank 0 lands in the first occupied
// bucket at its lower edge.
func TestHistogramQuantileLowEdge(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	h.Observe(3)
	h.Observe(3)
	// q=0 → rank 0 → first bucket has count 0 → estimator reports that
	// empty bucket's upper bound walk-through: counts {0,0,2,0}, rank 0
	// ≤ cum 0 in bucket 0 → c == 0 → returns hi = 1.
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %v, want 1 (lower resolution bound)", got)
	}
	if got := h.Quantile(1); got != 4 {
		t.Fatalf("Quantile(1) = %v, want 4", got)
	}
}

// TestHistogramQuantilesConsistent verifies the multi-quantile form is
// monotone over one snapshot.
func TestHistogramQuantilesConsistent(t *testing.T) {
	h := newHistogram(DurationBuckets)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i%100) / 250.0) // 0 .. 0.396
	}
	qs := h.Quantiles(0.5, 0.95, 0.99)
	if len(qs) != 3 {
		t.Fatalf("Quantiles returned %d values", len(qs))
	}
	if !(qs[0] <= qs[1] && qs[1] <= qs[2]) {
		t.Fatalf("quantiles not monotone: %v", qs)
	}
	if qs[0] <= 0 || qs[2] > 1 {
		t.Fatalf("quantiles out of plausible range: %v", qs)
	}
}

// TestHistogramQuantileNil: the nil-safe contract every obs instrument
// keeps.
func TestHistogramQuantileNil(t *testing.T) {
	var h *Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("nil Quantile = %v, want 0", got)
	}
	if got := h.Quantiles(0.5, 0.9); got[0] != 0 || got[1] != 0 {
		t.Fatalf("nil Quantiles = %v, want zeros", got)
	}
}
