package obs

import "time"

// Tracer is the lightweight run-trace facility: Start stamps a span
// with the monotonic clock, End computes its duration, feeds the
// optional OnEnd hook (typically a latency histogram), and logs spans
// that exceed the slow threshold. A zero Tracer is usable and does
// nothing beyond measuring.
//
// Spans are values, not allocations: the Start/End pair is safe on hot
// paths and in handlers alike.
type Tracer struct {
	// Slow is the slow-span threshold; spans at or beyond it are logged
	// through Logf. Zero disables slow logging.
	Slow time.Duration
	// Logf receives slow-span lines; nil silences them.
	Logf func(format string, args ...any)
	// OnEnd observes every completed span (name, duration). Typical use
	// is recording into a per-span-name histogram.
	OnEnd func(name string, d time.Duration)
}

// Span is one in-flight timed region.
type Span struct {
	tr    *Tracer
	name  string
	start time.Time
}

// Start opens a span stamped with the monotonic clock.
func (t *Tracer) Start(name string) Span {
	return Span{tr: t, name: name, start: time.Now()}
}

// End closes the span and returns its duration. The duration is
// computed from the monotonic reading taken at Start, so wall-clock
// adjustments cannot produce negative or inflated spans.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	t := s.tr
	if t == nil {
		return d
	}
	if t.OnEnd != nil {
		t.OnEnd(s.name, d)
	}
	if t.Slow > 0 && d >= t.Slow && t.Logf != nil {
		t.Logf("obs: slow span %s took %s (threshold %s)", s.name, d, t.Slow)
	}
	return d
}
