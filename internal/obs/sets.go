package obs

import "time"

// SimMetrics is the simulator's standard instrument set. The simulator
// records into it once per completed run — scalar deltas only, so the
// hot loop stays allocation-free — and every consumer (the server's
// /metrics and /v1/stats, the CLI's -metrics summary) reads the same
// counters.
type SimMetrics struct {
	// Runs counts completed simulation runs; Slots the task slots they
	// simulated; Fuel the stack charge they consumed (A·s).
	Runs, Slots, Fuel *Counter
	// MemoHits and MemoMisses aggregate fuelcell.Memo.Stats deltas.
	MemoHits, MemoMisses *Counter
	// RunSeconds is the per-run wall-time distribution.
	RunSeconds *Histogram
}

// NewSimMetrics registers the simulator series on r.
func NewSimMetrics(r *Registry) *SimMetrics {
	return &SimMetrics{
		Runs:       r.Counter("fcdpm_sim_runs_total", "Completed simulation runs."),
		Slots:      r.Counter("fcdpm_sim_slots_total", "Task slots simulated across completed runs."),
		Fuel:       r.Counter("fcdpm_sim_fuel_as_total", "Stack charge consumed across completed runs (A·s)."),
		MemoHits:   r.Counter("fcdpm_sim_memo_hits_total", "Fuel-map memo lookup hits."),
		MemoMisses: r.Counter("fcdpm_sim_memo_misses_total", "Fuel-map memo lookup misses."),
		RunSeconds: r.Histogram("fcdpm_sim_run_seconds", "Simulation wall time per completed run.", DurationBuckets),
	}
}

// RecordRun folds one completed run into the set. Safe on a nil
// receiver (uninstrumented runs cost one predicted branch) and
// allocation-free.
func (m *SimMetrics) RecordRun(slots int, fuel float64, memoHits, memoMisses uint64, wall time.Duration) {
	if m == nil {
		return
	}
	m.Runs.Inc()
	m.Slots.Add(float64(slots))
	m.Fuel.Add(fuel)
	m.MemoHits.Add(float64(memoHits))
	m.MemoMisses.Add(float64(memoMisses))
	m.RunSeconds.Observe(wall.Seconds())
}

// LaneBuckets is the lane-width layout of the batch-execution histogram:
// powers of two up to the widest batches the sweep fabric submits.
var LaneBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// BatchMetrics instruments the batched simulation core (sim.BatchRunner):
// how wide the batches are and how much per-lane planning the lane
// grouping amortized away.
type BatchMetrics struct {
	// Batches counts completed batch runs; Lanes is the distribution of
	// their lane widths.
	Batches *Counter
	Lanes   *Histogram
	// PlanGroupHits counts slot executions a follower lane inherited from
	// its plan group's leader instead of planning and integrating itself —
	// the work the batch core never had to do.
	PlanGroupHits *Counter
}

// NewBatchMetrics registers the batch-execution series on r.
func NewBatchMetrics(r *Registry) *BatchMetrics {
	return &BatchMetrics{
		Batches:       r.Counter("fcdpm_sim_batches_total", "Completed BatchRunner runs."),
		Lanes:         r.Histogram("fcdpm_sim_batch_lanes", "Lane width per completed batch run.", LaneBuckets),
		PlanGroupHits: r.Counter("fcdpm_sim_batch_plan_group_hits_total", "Slot executions follower lanes inherited from their plan-group leader."),
	}
}

// RecordBatch folds one completed batch run into the set. Nil-safe and
// allocation-free.
func (m *BatchMetrics) RecordBatch(lanes int, planGroupHits uint64) {
	if m == nil {
		return
	}
	m.Batches.Inc()
	m.Lanes.Observe(float64(lanes))
	m.PlanGroupHits.Add(float64(planGroupHits))
}

// PoolMetrics is the run-orchestration engine's instrument set:
// admission, resolution, retry, and breaker activity of one
// runner.Pool.
type PoolMetrics struct {
	// Submitted counts tasks admitted to the queue (journal-resumed
	// tasks never enqueue and are counted under Resumed only).
	Submitted *Counter
	// Resolution counters, one per runner.Status.
	Done, Resumed, Failed, Shed, BreakerSkipped, Interrupted *Counter
	// Retries counts re-attempts beyond each task's first.
	Retries *Counter
	// BreakerOpens and BreakerCloses count circuit-breaker state
	// transitions into open (including a failed half-open probe
	// re-opening) and back to closed.
	BreakerOpens, BreakerCloses *Counter
	// BreakersOpen and BreakersHalfOpen track how many scenario
	// breakers are in each non-closed state right now. The transition
	// counters above answer "how often has this flapped"; these answer
	// the operator's on-call question, "which fraction of scenarios is
	// quarantined at this moment".
	BreakersOpen, BreakersHalfOpen *Gauge
	// QueueDepth tracks tasks admitted but not yet picked up by a
	// worker.
	QueueDepth *Gauge
}

// NewPoolMetrics registers the pool series on r.
func NewPoolMetrics(r *Registry) *PoolMetrics {
	return &PoolMetrics{
		Submitted:        r.Counter("fcdpm_pool_tasks_submitted_total", "Tasks admitted to the pool queue."),
		Done:             r.Counter("fcdpm_pool_tasks_done_total", "Tasks that ran to completion."),
		Resumed:          r.Counter("fcdpm_pool_tasks_resumed_total", "Tasks restored from the checkpoint journal."),
		Failed:           r.Counter("fcdpm_pool_tasks_failed_total", "Tasks that exhausted their attempts."),
		Shed:             r.Counter("fcdpm_pool_tasks_shed_total", "Tasks rejected at admission (queue full)."),
		BreakerSkipped:   r.Counter("fcdpm_pool_tasks_breaker_skipped_total", "Tasks rejected by an open scenario breaker."),
		Interrupted:      r.Counter("fcdpm_pool_tasks_interrupted_total", "Tasks cut short by batch cancellation."),
		Retries:          r.Counter("fcdpm_pool_retries_total", "Task re-attempts beyond the first."),
		BreakerOpens:     r.Counter("fcdpm_pool_breaker_opens_total", "Circuit-breaker transitions into open."),
		BreakerCloses:    r.Counter("fcdpm_pool_breaker_closes_total", "Circuit-breaker transitions back to closed."),
		BreakersOpen:     r.Gauge("fcdpm_pool_breakers_open", "Scenario breakers currently open."),
		BreakersHalfOpen: r.Gauge("fcdpm_pool_breakers_half_open", "Scenario breakers currently half-open (probe in flight)."),
		QueueDepth:       r.Gauge("fcdpm_pool_queue_depth", "Tasks admitted but not yet executing."),
	}
}

// Admitted records one task entering the queue. Nil-safe.
func (m *PoolMetrics) Admitted() {
	if m == nil {
		return
	}
	m.Submitted.Inc()
	m.QueueDepth.Add(1)
}

// Dequeued records one task leaving the queue for a worker. Nil-safe.
func (m *PoolMetrics) Dequeued() {
	if m == nil {
		return
	}
	m.QueueDepth.Add(-1)
}

// BreakerChanged records a circuit-breaker state transition; states are
// the breaker's String names ("closed", "open", "half-open"). Besides
// counting open/close transitions it keeps the current-state gauges in
// step: the from-state's gauge drops, the to-state's rises. Nil-safe.
func (m *PoolMetrics) BreakerChanged(from, to string) {
	if m == nil {
		return
	}
	switch from {
	case "open":
		m.BreakersOpen.Add(-1)
	case "half-open":
		m.BreakersHalfOpen.Add(-1)
	}
	switch to {
	case "open":
		m.BreakerOpens.Inc()
		m.BreakersOpen.Add(1)
	case "closed":
		m.BreakerCloses.Inc()
	case "half-open":
		m.BreakersHalfOpen.Add(1)
	}
}

// Resolved folds one task resolution into the set; status is the
// runner.Status string. Nil-safe.
func (m *PoolMetrics) Resolved(status string, attempts int) {
	if m == nil {
		return
	}
	switch status {
	case "done":
		m.Done.Inc()
	case "resumed":
		m.Resumed.Inc()
	case "failed":
		m.Failed.Inc()
	case "shed":
		m.Shed.Inc()
	case "breaker-open":
		m.BreakerSkipped.Inc()
	case "interrupted":
		m.Interrupted.Inc()
	}
	if attempts > 1 {
		m.Retries.Add(float64(attempts - 1))
	}
}
