package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrentAdds(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "test counter")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %v, want 8000", got)
	}
	// Counters never go down.
	c.Add(-5)
	c.Add(math.NaN())
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter after bad deltas = %v, want 8000", got)
	}
}

func TestGaugeSetAndAdd(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %v, want 7", got)
	}
}

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Sum() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	var m *SimMetrics
	m.RecordRun(10, 1.5, 2, 3, time.Second)
	var pm *PoolMetrics
	pm.Resolved("done", 2)
	pm.BreakerChanged("closed", "open")
}

// TestPoolMetricsBreakerGauges walks one breaker through its full
// lifecycle and checks the current-state gauges track it exactly: the
// transition counters say how often it flapped, the gauges say where it
// is now.
func TestPoolMetricsBreakerGauges(t *testing.T) {
	m := NewPoolMetrics(NewRegistry())
	check := func(step string, open, half float64) {
		t.Helper()
		if got := m.BreakersOpen.Value(); got != open {
			t.Errorf("%s: open gauge = %v, want %v", step, got, open)
		}
		if got := m.BreakersHalfOpen.Value(); got != half {
			t.Errorf("%s: half-open gauge = %v, want %v", step, got, half)
		}
	}
	check("initial", 0, 0)
	m.BreakerChanged("closed", "open")
	check("tripped", 1, 0)
	m.BreakerChanged("open", "half-open")
	check("probing", 0, 1)
	m.BreakerChanged("half-open", "open")
	check("probe failed", 1, 0)
	m.BreakerChanged("open", "half-open")
	m.BreakerChanged("half-open", "closed")
	check("recovered", 0, 0)
	if got := m.BreakerOpens.Value(); got != 2 {
		t.Errorf("opens counter = %v, want 2", got)
	}
	if got := m.BreakerCloses.Value(); got != 1 {
		t.Errorf("closes counter = %v, want 1", got)
	}
	// A second breaker tripping while the first is closed: gauges count
	// breakers, not transitions.
	m.BreakerChanged("closed", "open")
	m.BreakerChanged("closed", "open")
	check("two tripped", 2, 0)
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 4, 10} {
		h.Observe(v)
	}
	counts, count, sum := h.Snapshot()
	// Buckets: ≤1 gets {0.5, 1}; ≤2 gets {1.5, 2}; ≤5 gets {4}; +Inf {10}.
	want := []uint64{2, 2, 1, 1}
	if len(counts) != len(want) {
		t.Fatalf("bucket count %d, want %d", len(counts), len(want))
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, counts[i], want[i], counts)
		}
	}
	if count != 6 {
		t.Fatalf("count = %d, want 6", count)
	}
	if sum != 19 {
		t.Fatalf("sum = %v, want 19", sum)
	}
}

func TestHistogramDeterministicLayout(t *testing.T) {
	// Unsorted, duplicated, and non-finite bounds collapse to one layout.
	a := newHistogram([]float64{5, 1, 2, 2, math.Inf(1), math.NaN()})
	b := newHistogram([]float64{1, 2, 5})
	if len(a.bounds) != len(b.bounds) {
		t.Fatalf("layouts differ: %v vs %v", a.bounds, b.bounds)
	}
	for i := range a.bounds {
		if a.bounds[i] != b.bounds[i] {
			t.Fatalf("layouts differ: %v vs %v", a.bounds, b.bounds)
		}
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("dup_total", "dup")
	c2 := r.Counter("dup_total", "dup")
	if c1 != c2 {
		t.Fatal("same (name, labels) must return the same counter")
	}
	l1 := r.Counter("dup_total", "dup", Label{Key: "k", Value: "v"})
	if l1 == c1 {
		t.Fatal("distinct label sets must be distinct series")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic")
		}
	}()
	r.Gauge("dup_total", "dup")
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "a counter").Add(2)
	r.Gauge("a_gauge", "a gauge").Set(1.5)
	r.GaugeFunc("a_fn_gauge", "a callback gauge", func() float64 { return 42 })
	h := r.Histogram("c_seconds", "a histogram", []float64{0.1, 1},
		Label{Key: "path", Value: "/v1/runs"})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE a_fn_gauge gauge\na_fn_gauge 42\n",
		"# TYPE a_gauge gauge\na_gauge 1.5\n",
		"# TYPE b_total counter\nb_total 2\n",
		`c_seconds_bucket{path="/v1/runs",le="0.1"} 1` + "\n",
		`c_seconds_bucket{path="/v1/runs",le="1"} 2` + "\n",
		`c_seconds_bucket{path="/v1/runs",le="+Inf"} 3` + "\n",
		`c_seconds_sum{path="/v1/runs"} 5.55` + "\n",
		`c_seconds_count{path="/v1/runs"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// Rendering is sorted by name: a_* before b_* before c_*.
	if strings.Index(out, "a_gauge") > strings.Index(out, "b_total") ||
		strings.Index(out, "b_total") > strings.Index(out, "c_seconds") {
		t.Fatalf("exposition not sorted:\n%s", out)
	}
	// Two renders of the same state are byte-identical.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Fatal("render is not deterministic")
	}
}

func TestTracerSlowSpanLogging(t *testing.T) {
	var logged []string
	var observed time.Duration
	tr := &Tracer{
		Slow: time.Nanosecond,
		Logf: func(format string, args ...any) { logged = append(logged, format) },
		OnEnd: func(name string, d time.Duration) {
			if name != "op" {
				t.Fatalf("span name %q, want op", name)
			}
			observed = d
		},
	}
	sp := tr.Start("op")
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 || observed != d {
		t.Fatalf("span duration %v, OnEnd saw %v", d, observed)
	}
	if len(logged) != 1 {
		t.Fatalf("slow span logged %d times, want 1", len(logged))
	}
	// Below threshold: no log.
	quiet := &Tracer{Slow: time.Hour, Logf: func(string, ...any) { t.Fatal("fast span logged") }}
	quiet.Start("fast").End()
	// Zero tracer is usable.
	var zero Tracer
	if zero.Start("z").End() < 0 {
		t.Fatal("zero tracer returned a negative duration")
	}
}

func TestObserveIsAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "")
	g := r.Gauge("alloc_gauge", "")
	h := r.Histogram("alloc_seconds", "", DurationBuckets)
	m := NewSimMetrics(r)
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Add(1)
		h.Observe(0.5)
		m.RecordRun(100, 2.5, 7, 3, time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("instrument mutation allocates %v times per op, want 0", allocs)
	}
}
